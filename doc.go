// Package sccsim is a simulator of Intel's Single-Chip Cloud Computer
// (SCC) together with the low-latency collective communication library
// of Kohler, Radetzki, Gschwandtner and Fahringer, "Low-Latency
// Collectives for the Intel SCC" (IEEE CLUSTER 2012).
//
// The package lets you run SPMD programs on a simulated 48-core SCC and
// measure collective communication the way the paper does:
//
//	sys := sccsim.New(sccsim.WithStack(sccsim.StackLightweightBalanced))
//	err := sys.Run(func(r *sccsim.Rank) {
//		src := r.AllocF64(552)
//		dst := r.AllocF64(552)
//		r.WriteF64s(src, myVector)
//		r.Allreduce(src, dst, 552)
//	})
//	fmt.Println(sys.Elapsed()) // virtual time on the simulated chip
//
// Six communication stacks are available, matching the paper's measured
// configurations: the blocking RCCE baseline, iRCCE non-blocking
// primitives, the paper's lightweight non-blocking primitives (with and
// without load-balanced block partitioning), the MPB-direct Allreduce,
// and the RCKMPI comparator.
//
// The chip itself is configurable. WithTopology(rows, cols,
// coresPerTile) simulates the same protocols on any rectangular mesh
// (the paper's chip is the 4×6×2 default, also reachable as a custom
// *timing.Model via WithModel), WithHardwareBugFixed applies the
// Sec. IV-D erratum ablation, and WithChips(k) joins k chips through
// the internal/fabric inter-chip bus, where Allreduce and Broadcast
// compose hierarchically (the registered "hier" algorithm, steered by
// WithIntraAlgorithm) and the non-hierarchical collectives fail fast
// with ErrCrossChip.
//
// Collective algorithm selection is pluggable: WithAlgorithm pins one
// registered algorithm, WithTuned selects from a measured decision
// table, WithSelector installs any policy. Beyond the hand-written
// algorithms, internal/synth searches per-mesh schedules for
// Broadcast/Reduce/Allreduce and compiles the winners into registered
// algorithms named "synth:<op>:<np>:<bucket>" (see `sccbench -synth`
// and DESIGN.md §11).
//
// A run can be instrumented without changing its virtual-time result:
// construct the system with WithMetrics and execute programs with
// RunResult, then read the frozen counter snapshot off Result.Metrics
// (per-core phase split, MPB and cache traffic, per-link utilization,
// wait/hop histograms, per-collective breakdowns). The sccbench tool
// exposes the same data from the command line (-metrics, -metricsout)
// and can emit a Chrome Trace Event JSON (-tracejson) that loads
// directly into Perfetto; see the "Inspecting a run" section of the
// README.
//
// The heavy lifting lives in the internal packages: internal/simtime
// (deterministic discrete-event engine), internal/mesh (2D mesh NoC),
// internal/scc (cores, caches, message-passing buffers), internal/rcce,
// internal/ircce, internal/lwnb (the three point-to-point libraries),
// internal/core (the paper's optimized collectives), internal/rckmpi
// (the MPI comparator), internal/fabric (the inter-chip bus behind
// WithChips), internal/fault (deterministic fault injection behind
// WithFaults/WithRecovery/WithSelfHealing), internal/synth (schedule
// search and compilation), internal/gcmc (the thermodynamic
// application), internal/metrics (the zero-allocation counter registry
// behind WithMetrics), internal/trace (span recording and the
// Chrome-trace exporter) and internal/bench (the harness that
// regenerates every figure).
// DESIGN.md maps each to the paper; EXPERIMENTS.md records the
// reproduction outcomes.
package sccsim
