package simtime

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines drains the worker pool, then polls until the live
// goroutine count falls back to the baseline (pool workers park — and,
// once drained, unwind — asynchronously after shutdown hands control
// back to Run's caller). Draining first separates the two leak classes:
// a parked pool worker is expected state, a goroutine that survives the
// drain is a real leak.
func waitGoroutines(t *testing.T, base int, context string) {
	t.Helper()
	DrainWorkerPool()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s: %d goroutines leaked past baseline %d\n%s",
				context, runtime.NumGoroutine()-base, base, buf)
		}
		time.Sleep(time.Millisecond)
	}
}

// Every abnormal exit from Run must reap all process goroutines: the
// shutdown/unwind invariant says no path — deadlock, panic, or a
// RunUntil limit — may strand a parked goroutine on its resume channel.
func TestShutdownReapsGoroutinesDeadlock(t *testing.T) {
	base := runtime.NumGoroutine()
	eng := NewEngine()
	var sig Signal
	for i := 0; i < 24; i++ {
		eng.Spawn("stuck", func(p *Proc) {
			p.Sleep(Time(p.ID()))
			p.WaitOn(&sig, Site("never"))
		})
	}
	if err := eng.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want deadlock, got %v", err)
	}
	waitGoroutines(t, base, "deadlock shutdown")
}

func TestShutdownReapsGoroutinesPanic(t *testing.T) {
	base := runtime.NumGoroutine()
	eng := NewEngine()
	var sig Signal
	for i := 0; i < 24; i++ {
		eng.Spawn("waiter", func(p *Proc) {
			p.WaitOn(&sig, Site("held"))
		})
	}
	eng.Spawn("bomb", func(p *Proc) {
		p.Sleep(10)
		panic("boom")
	})
	if err := eng.Run(); err == nil {
		t.Fatal("want panic error, got nil")
	}
	waitGoroutines(t, base, "panic shutdown")
}

func TestShutdownReapsGoroutinesRunUntil(t *testing.T) {
	base := runtime.NumGoroutine()
	eng := NewEngine()
	for i := 0; i < 24; i++ {
		eng.Spawn("spinner", func(p *Proc) {
			for {
				p.Sleep(7)
			}
		})
	}
	if err := eng.RunUntil(1000); !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("want time limit, got %v", err)
	}
	waitGoroutines(t, base, "RunUntil shutdown")
}

// A clean completion must also leave nothing behind — the common case,
// but cheap to pin alongside the abnormal paths.
func TestCleanRunLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	eng := NewEngine()
	var sig Signal
	for i := 0; i < 24; i++ {
		eng.Spawn("worker", func(p *Proc) {
			if p.ID()%2 == 0 {
				p.WaitOnTimeout(&sig, 50, Site("wait"))
			} else {
				p.Sleep(25)
				sig.Broadcast(p.Engine())
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base, "clean run")
}

// Broadcast must not retain *Proc pointers in the waiter slice's backing
// array: the slice is pooled across rounds (truncated, not freed), and a
// stale pointer would keep a finished process — and everything its
// closure captured — reachable for the life of the Signal.
func TestBroadcastClearsWaiterBackingArray(t *testing.T) {
	eng := NewEngine()
	var sig Signal
	for i := 0; i < 16; i++ {
		eng.Spawn("waiter", func(p *Proc) {
			p.WaitOn(&sig, Site("pool"))
		})
	}
	eng.Spawn("releaser", func(p *Proc) {
		p.Sleep(10)
		sig.Broadcast(p.Engine())
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sig.Waiters() != 0 {
		t.Fatalf("signal still has %d waiters", sig.Waiters())
	}
	full := sig.waiters[:cap(sig.waiters)]
	for i, w := range full {
		if w != nil {
			t.Fatalf("backing array slot %d still holds %q after Broadcast", i, w.Name())
		}
	}
}

// A timed-out waiter's deregistration must likewise clear its slot, and
// the compaction that bounds the hole-ridden list must keep every
// surviving waiter's recorded index coherent — a later Broadcast must
// wake exactly the survivors, in registration order.
func TestTimeoutDeregistrationClearsSlotAndCompacts(t *testing.T) {
	eng := NewEngine()
	var sig Signal
	var woke []int
	for i := 0; i < 64; i++ {
		eng.Spawn("w", func(p *Proc) {
			if p.ID()%4 != 3 {
				// 48 of 64 time out early: enough holes to cross the
				// holes > len/2 threshold and force a mid-run compaction
				// while the survivors are still registered.
				if p.WaitOnTimeout(&sig, 10, Site("short")) {
					t.Errorf("waiter %d: signal beat a 10-tick timeout fired at t=100", p.ID())
				}
			} else {
				if p.WaitOnTimeout(&sig, 1000, Site("long")) {
					woke = append(woke, p.ID())
				}
			}
		})
	}
	eng.Spawn("releaser", func(p *Proc) {
		p.Sleep(100)
		sig.Broadcast(p.Engine())
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 16 {
		t.Fatalf("%d survivors woke, want 16", len(woke))
	}
	for i, id := range woke {
		if id != 4*i+3 {
			t.Fatalf("wake order broken at %d: got id %d, want %d", i, id, 4*i+3)
		}
	}
	full := sig.waiters[:cap(sig.waiters)]
	for i, w := range full {
		if w != nil {
			t.Fatalf("backing array slot %d still holds %q", i, w.Name())
		}
	}
}
