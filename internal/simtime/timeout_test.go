package simtime

import (
	"errors"
	"strings"
	"testing"
)

// A signal raised before the deadline must win the race, and the stale
// timer event must not perturb the waiter's subsequent virtual time.
func TestWaitOnTimeoutSignalWins(t *testing.T) {
	eng := NewEngine()
	var sig Signal
	var got bool
	var wake Time
	eng.Spawn("waiter", func(p *Proc) {
		got = p.WaitOnTimeout(&sig, 100, Site("flag"))
		wake = p.Now()
		p.Sleep(500) // cross the stale timer's deadline
	})
	eng.Spawn("signaler", func(p *Proc) {
		p.Sleep(30)
		sig.Broadcast(eng)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !got {
		t.Fatal("expected signal to win, got timeout")
	}
	if wake != 30 {
		t.Fatalf("woke at %v, want 30", wake)
	}
	if sig.Waiters() != 0 {
		t.Fatalf("signal still has %d waiters", sig.Waiters())
	}
}

// With nobody signaling, the timer must fire at exactly now+d and the
// waiter must be deregistered from the signal.
func TestWaitOnTimeoutExpires(t *testing.T) {
	eng := NewEngine()
	var sig Signal
	var got bool
	var wake Time
	eng.Spawn("waiter", func(p *Proc) {
		got = p.WaitOnTimeout(&sig, 250, Site("flag"))
		wake = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got {
		t.Fatal("expected timeout, got signal")
	}
	if wake != 250 {
		t.Fatalf("woke at %v, want 250", wake)
	}
	if sig.Waiters() != 0 {
		t.Fatalf("timed-out waiter still registered (%d waiters)", sig.Waiters())
	}
}

// A process may loop timeout-waits; each pending timer from a lost race
// must be skipped, never resuming the process early.
func TestWaitOnTimeoutRepeated(t *testing.T) {
	eng := NewEngine()
	var sig Signal
	wins := 0
	eng.Spawn("waiter", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if p.WaitOnTimeout(&sig, 10, Site("flag")) {
				wins++
			}
		}
	})
	eng.Spawn("signaler", func(p *Proc) {
		p.Sleep(5)
		sig.Broadcast(eng) // wins round 1; rounds 2 and 3 time out
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wins != 1 {
		t.Fatalf("wins = %d, want 1", wins)
	}
	if eng.Now() != 25 {
		t.Fatalf("finished at %v, want 25 (5 + 10 + 10)", eng.Now())
	}
}

// Deadlock reports include the last note set by each stuck process.
func TestDeadlockReportIncludesNote(t *testing.T) {
	eng := NewEngine()
	var sig Signal
	eng.Spawn("stuck", func(p *Proc) {
		p.SetNote(NoteString("sent chunk 3"))
		p.WaitOn(&sig, Site("ack"))
	})
	err := eng.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want deadlock, got %v", err)
	}
	if !strings.Contains(err.Error(), "last step: sent chunk 3") {
		t.Fatalf("deadlock report missing note: %v", err)
	}
	if !strings.Contains(err.Error(), "waiting: ack") {
		t.Fatalf("deadlock report missing blocking point: %v", err)
	}
}
