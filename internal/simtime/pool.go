package simtime

import (
	"runtime"
	"sync"
)

// This file is the process-goroutine pool. Before it, every Spawn paid a
// fresh goroutine (stack allocation plus scheduler registration) and
// every run teardown paid the matching exits — a bench sweep creates and
// destroys NumCores goroutines per cell, and a 10,000-core chip would
// create and destroy 10,000 per run. The pool replaces that with
// trampoline workers: a worker goroutine runs one process to completion,
// parks itself on a free list, and is re-adopted by the next Spawned
// process of any engine in the same Go process.
//
// Determinism is untouched: each Proc still owns its private resume
// channel and the engine's direct-handoff token protocol is unchanged —
// the pool only changes which OS-level goroutine the process body runs
// on, which no simulated program can observe.
//
// The pool is process-global (workers outlive engines by design), so all
// bookkeeping is mutex-guarded. The synchronization is cheap: exactly
// two pool operations per process lifetime (adopt, park), nothing on the
// event hot path.

// worker is one parked trampoline goroutine. Its jobs channel carries at
// most one process at a time (capacity 1, so handing it work never
// blocks the spawner); closing the channel retires the worker.
type worker struct {
	jobs chan *Proc
}

// loop is the trampoline: run an adopted process to completion, park,
// wait for the next. The park happens after Proc.run has passed the
// engine's control token on, so a parked worker never holds a token.
func (w *worker) loop() {
	for p := range w.jobs {
		p.run()
		parkWorker(w)
	}
}

var pool struct {
	mu   sync.Mutex
	idle []*worker
	// workers counts worker goroutines in existence (parked or running);
	// spawned and adopted are lifetime totals for stats and tests.
	workers int
	spawned uint64
	adopted uint64
}

// getWorker pops a parked worker, or creates one when the free list is
// empty. LIFO reuse keeps recently-used stacks warm.
func getWorker() *worker {
	pool.mu.Lock()
	if n := len(pool.idle); n > 0 {
		w := pool.idle[n-1]
		pool.idle[n-1] = nil
		pool.idle = pool.idle[:n-1]
		pool.adopted++
		pool.mu.Unlock()
		return w
	}
	pool.workers++
	pool.spawned++
	pool.mu.Unlock()
	w := &worker{jobs: make(chan *Proc, 1)}
	go w.loop()
	return w
}

// parkWorker returns a worker to the free list.
func parkWorker(w *worker) {
	pool.mu.Lock()
	pool.idle = append(pool.idle, w)
	pool.mu.Unlock()
}

// PoolStats is a snapshot of the worker pool.
type PoolStats struct {
	// Workers is how many worker goroutines exist right now (parked or
	// running a process); Idle is how many of them are parked.
	Workers, Idle int
	// Spawned counts workers ever created; Adopted counts processes that
	// reused a parked worker instead of costing a new goroutine.
	Spawned, Adopted uint64
}

// WorkerPoolStats reports the current pool state. Tests use it to prove
// that repeated runs re-adopt workers instead of spawning, and that
// abnormal exits leave workers parked rather than leaked.
func WorkerPoolStats() PoolStats {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	return PoolStats{
		Workers: pool.workers,
		Idle:    len(pool.idle),
		Spawned: pool.spawned,
		Adopted: pool.adopted,
	}
}

// DrainWorkerPool retires every pool worker and returns how many were
// drained. It waits for in-flight workers — ones between finishing a
// process and parking — so after it returns the pool holds no goroutines
// at all (the retired workers may still be unwinding; poll
// runtime.NumGoroutine to observe the exits). It must not be called
// while any engine is running: a worker still executing a live process
// would keep the drain waiting forever.
func DrainWorkerPool() int {
	drained := 0
	for {
		pool.mu.Lock()
		idle := pool.idle
		pool.idle = nil
		pool.workers -= len(idle)
		left := pool.workers
		pool.mu.Unlock()
		for _, w := range idle {
			close(w.jobs)
		}
		drained += len(idle)
		if left == 0 {
			return drained
		}
		runtime.Gosched()
	}
}
