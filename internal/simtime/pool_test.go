package simtime

import (
	"errors"
	"runtime"
	"testing"
)

// countingRun executes one n-process run on a fresh engine and fails the
// test on error.
func countingRun(t *testing.T, n int) {
	t.Helper()
	eng := NewEngine()
	for i := 0; i < n; i++ {
		eng.Spawn("pooled", func(p *Proc) {
			for k := 0; k < 50; k++ {
				p.Sleep(3)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// Repeated runs must re-adopt parked workers instead of spawning fresh
// goroutines: after a warm-up run, the spawned-workers counter stays
// flat while the adoption counter keeps climbing.
func TestPoolReusesWorkersAcrossRuns(t *testing.T) {
	DrainWorkerPool()
	countingRun(t, 32) // warm-up: populates the pool
	warm := WorkerPoolStats()
	for round := 0; round < 5; round++ {
		countingRun(t, 32)
	}
	after := WorkerPoolStats()
	if after.Spawned != warm.Spawned {
		t.Fatalf("runs after warm-up spawned %d new workers, want 0 (pool not re-adopting)",
			after.Spawned-warm.Spawned)
	}
	if got := after.Adopted - warm.Adopted; got != 5*32 {
		t.Fatalf("adopted %d processes across 5 warm runs, want %d", got, 5*32)
	}
	if after.Workers != after.Idle {
		t.Fatalf("%d workers exist but only %d are parked after all runs finished",
			after.Workers, after.Idle)
	}
}

// Every abnormal exit must leave pool workers parked (counted), not
// leaked and not stuck mid-process: after deadlock, panic, RunUntil and
// kill shutdowns, all workers are idle and drainable.
func TestPoolParksWorkersOnAbnormalExits(t *testing.T) {
	DrainWorkerPool()
	base := runtime.NumGoroutine()

	// Deadlock.
	eng := NewEngine()
	var sig Signal
	for i := 0; i < 16; i++ {
		eng.Spawn("stuck", func(p *Proc) { p.WaitOn(&sig, Site("never")) })
	}
	if err := eng.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want deadlock, got %v", err)
	}
	assertAllParked(t, "deadlock")

	// Panic.
	eng = NewEngine()
	for i := 0; i < 16; i++ {
		eng.Spawn("waiter", func(p *Proc) { p.WaitOn(&sig, Site("held")) })
	}
	eng.Spawn("bomb", func(p *Proc) { p.Sleep(5); panic("boom") })
	if err := eng.Run(); err == nil {
		t.Fatal("want panic error, got nil")
	}
	assertAllParked(t, "panic")

	// RunUntil limit.
	eng = NewEngine()
	for i := 0; i < 16; i++ {
		eng.Spawn("spinner", func(p *Proc) {
			for {
				p.Sleep(7)
			}
		})
	}
	if err := eng.RunUntil(100); !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("want time limit, got %v", err)
	}
	assertAllParked(t, "RunUntil")

	// Parked is not leaked: a drain must take the count back to the
	// pre-test baseline.
	waitGoroutines(t, base, "abnormal-exit drain")
}

// assertAllParked waits until every existing pool worker is idle — a
// worker that never parks after its run ended would be a stuck or leaked
// goroutine. Parking trails the engine's shutdown handshake by a few
// scheduler steps, so poll via the drain-free stats.
func assertAllParked(t *testing.T, context string) {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		s := WorkerPoolStats()
		if s.Workers == s.Idle {
			return
		}
		runtime.Gosched()
	}
	s := WorkerPoolStats()
	t.Fatalf("%s: %d of %d pool workers never parked", context, s.Workers-s.Idle, s.Workers)
}

// DrainWorkerPool must retire exactly the workers that exist and leave
// an empty pool behind, so leak baselines are exact.
func TestDrainWorkerPoolEmptiesPool(t *testing.T) {
	DrainWorkerPool()
	countingRun(t, 24)
	s := WorkerPoolStats()
	if s.Idle == 0 {
		t.Fatal("no parked workers after a 24-process run")
	}
	if got := DrainWorkerPool(); got != s.Workers {
		t.Fatalf("drained %d workers, want %d", got, s.Workers)
	}
	s = WorkerPoolStats()
	if s.Workers != 0 || s.Idle != 0 {
		t.Fatalf("pool not empty after drain: %+v", s)
	}
}

// An engine reused for many sequential programs must keep its
// bookkeeping proportional to the current program, not its spawn
// history: the active list is emptied after every run.
func TestEngineBookkeepingStaysBounded(t *testing.T) {
	eng := NewEngine()
	for round := 0; round < 50; round++ {
		for i := 0; i < 8; i++ {
			eng.Spawn("round", func(p *Proc) { p.Sleep(1) })
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if len(eng.active) != 0 || len(eng.unstarted) != 0 {
			t.Fatalf("round %d: %d active, %d unstarted procs retained after Run",
				round, len(eng.active), len(eng.unstarted))
		}
	}
	if eng.NumSpawned() != 400 {
		t.Fatalf("spawn counter = %d, want 400", eng.NumSpawned())
	}
}
