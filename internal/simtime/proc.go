package simtime

import "fmt"

// Proc is a simulated process. All methods must be called from within the
// process's own function (the fn passed to Engine.Spawn); they cooperate
// with the engine to advance virtual time.
type Proc struct {
	id   int
	name string
	eng  *Engine
	fn   func(*Proc)

	resume chan struct{} // engine -> proc: you may run
	yield  chan struct{} // proc -> engine: I am blocked or done

	done      bool
	killed    bool   // set by Engine.shutdown to abort the goroutine
	blockedAt string // description of the current blocking point, for deadlock reports
	started   bool
}

// killSentinel is the panic value used to unwind force-terminated process
// goroutines during Engine.shutdown.
type killSentinel struct{}

// ID returns the process's spawn index (0-based).
func (p *Proc) ID() int { return p.id }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// start launches the process goroutine. The goroutine immediately blocks
// waiting for its first resume.
func (p *Proc) start() {
	if p.started {
		panic("simtime: process started twice")
	}
	p.started = true
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killSentinel); !isKill && p.eng.failed == nil {
					p.eng.failed = fmt.Errorf("simtime: process %q panicked: %v", p.name, r)
				}
			}
			p.done = true
			p.yield <- struct{}{}
		}()
		if p.killed {
			return
		}
		p.fn(p)
	}()
}

// runOnce hands control to the process goroutine and waits for it to block
// again (or finish). Called only by the engine loop.
func (p *Proc) runOnce() {
	p.resume <- struct{}{}
	<-p.yield
}

// block yields control back to the engine and waits to be resumed. The
// caller must have arranged for a future wake-up (a scheduled event or a
// signal registration) first.
func (p *Proc) block(where string) {
	p.blockedAt = where
	p.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
	p.blockedAt = ""
}

// Sleep advances the process's virtual time by d ticks. Negative or zero
// durations return immediately without yielding... except d == 0, which
// still yields so that same-time events from other processes interleave
// deterministically by schedule order.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p, p.eng.now+d)
	// A sleeping process always has a pending wake-up, so it can never
	// appear in a deadlock report; skip building a description.
	p.block("sleep")
}

// Yield gives other processes scheduled at the current instant a chance to
// run before this one continues.
func (p *Proc) Yield() { p.Sleep(0) }

// WaitOn blocks the process until s is signaled. The process wakes at the
// virtual time of the Signal call. The where string appears in deadlock
// diagnostics.
func (p *Proc) WaitOn(s *Signal, where string) {
	s.waiters = append(s.waiters, p)
	p.block(where)
}

// Signal is a broadcast wake-up point: processes block on it with WaitOn
// and are all released by Broadcast. The zero value is ready to use.
type Signal struct {
	waiters []*Proc
}

// Broadcast wakes every process currently waiting on s at the present
// virtual time. It must be called from within a running process or before
// Run starts. Waiters resume in the order they began waiting.
func (s *Signal) Broadcast(eng *Engine) {
	for _, w := range s.waiters {
		eng.schedule(w, eng.now)
	}
	s.waiters = s.waiters[:0]
}

// Waiters reports how many processes are currently blocked on s.
func (s *Signal) Waiters() int { return len(s.waiters) }
