package simtime

import "fmt"

// Proc is a simulated process. All methods must be called from within the
// process's own function (the fn passed to Engine.Spawn); they cooperate
// with the engine to advance virtual time.
type Proc struct {
	id   int
	name string
	eng  *Engine
	fn   func(*Proc)

	resume chan struct{} // engine -> proc: you may run
	yield  chan struct{} // proc -> engine: I am blocked or done

	done      bool
	killed    bool     // set by Engine.shutdown to abort the goroutine
	blockedAt WaitSite // current blocking point, formatted only for deadlock reports
	note      Note     // last successful protocol step, for deadlock reports
	started   bool

	// wakeGen counts resumes. Events snapshot it at schedule time so the
	// engine can discard wake-ups that lost a race (see event.gen).
	wakeGen uint64
}

// killSentinel is the panic value used to unwind force-terminated process
// goroutines during Engine.shutdown.
type killSentinel struct{}

// ID returns the process's spawn index (0-based).
func (p *Proc) ID() int { return p.id }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// start launches the process goroutine. The goroutine immediately blocks
// waiting for its first resume.
func (p *Proc) start() {
	if p.started {
		panic("simtime: process started twice")
	}
	p.started = true
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killSentinel); !isKill && p.eng.failed == nil {
					p.eng.failed = fmt.Errorf("simtime: process %q panicked: %v", p.name, r)
				}
			}
			p.done = true
			p.yield <- struct{}{}
		}()
		if p.killed {
			return
		}
		p.fn(p)
	}()
}

// runOnce hands control to the process goroutine and waits for it to block
// again (or finish). Called only by the engine loop.
func (p *Proc) runOnce() {
	p.resume <- struct{}{}
	<-p.yield
}

// block yields control back to the engine and waits to be resumed. The
// caller must have arranged for a future wake-up (a scheduled event or a
// signal registration) first.
func (p *Proc) block(site WaitSite) {
	p.blockedAt = site
	p.yield <- struct{}{}
	<-p.resume
	p.wakeGen++ // any event scheduled before this resume is now stale
	if p.killed {
		panic(killSentinel{})
	}
	p.blockedAt = WaitSite{}
}

// Sleep advances the process's virtual time by d ticks. Negative or zero
// durations return immediately without yielding... except d == 0, which
// still yields so that same-time events from other processes interleave
// deterministically by schedule order.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p, p.eng.now+d)
	// A sleeping process always has a pending wake-up, so it can never
	// appear in a deadlock report; a static label suffices.
	p.block(siteSleep)
}

// siteSleep is the shared site for Sleep, so sleeping never allocates.
var siteSleep = Site("sleep")

// Yield gives other processes scheduled at the current instant a chance to
// run before this one continues.
func (p *Proc) Yield() { p.Sleep(0) }

// WaitOn blocks the process until s is signaled. The process wakes at the
// virtual time of the Signal call. The site appears in deadlock
// diagnostics, formatted only if a report is rendered.
func (p *Proc) WaitOn(s *Signal, site WaitSite) {
	s.waiters = append(s.waiters, p)
	p.block(site)
}

// WaitOnTimeout blocks the process until s is signaled or d ticks elapse,
// whichever comes first. It reports true if the signal fired, false on
// timeout. The loser of the race is discarded via the wake-generation
// mechanism, so a later Broadcast cannot resume the process at the wrong
// point, and an expired timer event is skipped harmlessly.
func (p *Proc) WaitOnTimeout(s *Signal, d Duration, site WaitSite) bool {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p, p.eng.now+d)
	s.waiters = append(s.waiters, p)
	p.block(site)
	// Broadcast removes its waiters from the list; if we are still
	// registered, the timer won the race and we must deregister ourselves.
	for i, w := range s.waiters {
		if w == p {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return false
		}
	}
	return true
}

// SetNote records the process's last successful protocol step. It is
// included in deadlock reports next to the blocking point, so a hang
// names both where the process is stuck and what it last achieved. The
// note is a deferred-format value: nothing is rendered unless a
// deadlock report is.
func (p *Proc) SetNote(n Note) { p.note = n }

// LastNote returns the last note set with SetNote.
func (p *Proc) LastNote() Note { return p.note }

// Signal is a broadcast wake-up point: processes block on it with WaitOn
// and are all released by Broadcast. The zero value is ready to use.
type Signal struct {
	waiters []*Proc
}

// Broadcast wakes every process currently waiting on s at the present
// virtual time. It must be called from within a running process or before
// Run starts. Waiters resume in the order they began waiting.
func (s *Signal) Broadcast(eng *Engine) {
	for _, w := range s.waiters {
		eng.schedule(w, eng.now)
	}
	s.waiters = s.waiters[:0]
}

// Waiters reports how many processes are currently blocked on s.
func (s *Signal) Waiters() int { return len(s.waiters) }
