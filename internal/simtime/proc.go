package simtime

import "fmt"

// Proc is a simulated process. All methods must be called from within the
// process's own function (the fn passed to Engine.Spawn); they cooperate
// with the engine to advance virtual time.
type Proc struct {
	id   int
	name string
	eng  *Engine
	fn   func(*Proc)

	// resume delivers the engine's control token to this process. It is
	// the only channel a process owns: blocking hands the token directly
	// to the next event's process (see Engine.next), so one event costs
	// at most one channel operation, and none at all on the same-proc
	// fast path.
	resume chan struct{}

	done      bool
	killed    bool     // set by Engine.shutdown to abort the goroutine
	blockedAt WaitSite // current blocking point, formatted only for deadlock reports
	note      Note     // last successful protocol step, for deadlock reports
	started   bool

	// wakeGen counts resumes. Events snapshot it at schedule time so the
	// engine can discard wake-ups that lost a race (see event.gen).
	wakeGen uint64
	// waitIdx is this process's slot in the waiter list of the signal it
	// is (or last was) registered on, so a timed-out WaitOnTimeout can
	// deregister in O(1) instead of scanning the list.
	waitIdx int
}

// killSentinel is the panic value used to unwind force-terminated process
// goroutines during Engine.shutdown.
type killSentinel struct{}

// ID returns the process's spawn index (0-based).
func (p *Proc) ID() int { return p.id }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// start hands the process to a pool worker (see pool.go), which parks
// on the resume channel until the engine first dispatches to it.
func (p *Proc) start() {
	if p.started {
		panic("simtime: process started twice")
	}
	p.started = true
	getWorker().jobs <- p
}

// run is the process body executed by a pool worker: wait for the first
// resume, run fn, and on any exit — normal return, panic, or the
// shutdown kill sentinel — pass the engine's control token on. When run
// returns the process holds no token and nothing will ever send on its
// resume channel again (events for done processes are discarded and
// shutdown skips them), so the worker is free to adopt its next process.
func (p *Proc) run() {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			if _, isKill := r.(killSentinel); !isKill && p.eng.failed == nil {
				p.eng.failed = fmt.Errorf("simtime: process %q panicked: %v", p.name, r)
			}
		}
		p.done = true
		p.eng.live--
		p.eng.finish()
	}()
	if p.killed {
		return
	}
	p.fn(p)
}

// block yields control to the next event's process and waits to be
// resumed. The caller must have arranged for a future wake-up (a
// scheduled event or a signal registration) first.
func (p *Proc) block(site WaitSite) {
	p.blockedAt = site
	p.eng.next(p)
	p.wakeGen++ // any event scheduled before this resume is now stale
	if p.killed {
		panic(killSentinel{})
	}
	p.blockedAt = WaitSite{}
}

// Sleep advances the process's virtual time by d ticks. Negative or zero
// durations return immediately without yielding... except d == 0, which
// still yields so that same-time events from other processes interleave
// deterministically by schedule order.
func (p *Proc) Sleep(d Duration) {
	e := p.eng
	if d < 0 {
		d = 0
	}
	at := e.now + d
	// Same-proc fast path, fused with the queue: if no pending event can
	// precede our wake-up (strictly — an equal-time event has a smaller
	// sequence number and must run first), the wake-up would be the next
	// event popped, so skip the queue and the handoff entirely and just
	// advance the clock. Not applicable past a RunUntil limit: the abort
	// must unwind through the slow path.
	if (e.queue.n == 0 || at < e.queue.min().at) && !(e.limited && at > e.limit) {
		e.fastpath++
		e.now = at
		return
	}
	e.schedule(p, at)
	// A sleeping process always has a pending wake-up, so it can never
	// appear in a deadlock report; a static label suffices.
	p.block(siteSleep)
}

// siteSleep is the shared site for Sleep, so sleeping never allocates.
var siteSleep = Site("sleep")

// Yield gives other processes scheduled at the current instant a chance to
// run before this one continues.
func (p *Proc) Yield() { p.Sleep(0) }

// WaitOn blocks the process until s is signaled. The process wakes at the
// virtual time of the Signal call. The site appears in deadlock
// diagnostics, formatted only if a report is rendered.
func (p *Proc) WaitOn(s *Signal, site WaitSite) {
	s.waiters = append(s.waiters, p)
	p.block(site)
}

// WaitOnTimeout blocks the process until s is signaled or d ticks elapse,
// whichever comes first. It reports true if the signal fired, false on
// timeout. The loser of the race is discarded via the wake-generation
// mechanism, so a later Broadcast cannot resume the process at the wrong
// point, and an expired timer event is skipped harmlessly.
func (p *Proc) WaitOnTimeout(s *Signal, d Duration, site WaitSite) bool {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p, p.eng.now+d)
	p.waitIdx = len(s.waiters)
	s.waiters = append(s.waiters, p)
	p.block(site)
	// Broadcast empties the waiter list; if our slot still holds us, the
	// timer won the race and we must deregister. Clearing the slot (not
	// splicing) keeps every other waiter's recorded index valid, so
	// deregistration is O(1); Broadcast skips the hole.
	if p.waitIdx < len(s.waiters) && s.waiters[p.waitIdx] == p {
		s.waiters[p.waitIdx] = nil
		s.holes++
		// Without an eventual Broadcast the hole-ridden list would grow
		// without bound under repeated timeouts; compact (preserving
		// order, so wake order is unchanged) once holes dominate.
		if s.holes > len(s.waiters)/2 && len(s.waiters) >= 16 {
			s.compact()
		}
		return false
	}
	return true
}

// SetNote records the process's last successful protocol step. It is
// included in deadlock reports next to the blocking point, so a hang
// names both where the process is stuck and what it last achieved. The
// note is a deferred-format value: nothing is rendered unless a
// deadlock report is.
func (p *Proc) SetNote(n Note) { p.note = n }

// LastNote returns the last note set with SetNote.
func (p *Proc) LastNote() Note { return p.note }

// Signal is a broadcast wake-up point: processes block on it with WaitOn
// and are all released by Broadcast. The zero value is ready to use.
type Signal struct {
	// waiters lists the blocked processes in registration order. A nil
	// entry is a hole left by a timed-out WaitOnTimeout (see holes).
	waiters []*Proc
	// holes counts nil entries in waiters, so Waiters stays O(1).
	holes int
}

// Broadcast wakes every process currently waiting on s at the present
// virtual time. It must be called from within a running process or before
// Run starts. Waiters resume in the order they began waiting.
func (s *Signal) Broadcast(eng *Engine) {
	for i, w := range s.waiters {
		if w != nil {
			eng.schedule(w, eng.now)
		}
		// Clear the slot before truncating: the backing array survives
		// for the next waiters, and a retained *Proc would keep a
		// finished process (and its closed-over state) from the GC.
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
	s.holes = 0
}

// compact squeezes the holes out of the waiter list in place, keeping
// registration order (so Broadcast wake order is unaffected) and fixing
// up each survivor's recorded index.
func (s *Signal) compact() {
	w := s.waiters[:0]
	for _, q := range s.waiters {
		if q != nil {
			q.waitIdx = len(w)
			w = append(w, q)
		}
	}
	for i := len(w); i < len(s.waiters); i++ {
		s.waiters[i] = nil
	}
	s.waiters = w
	s.holes = 0
}

// Waiters reports how many processes are currently blocked on s.
func (s *Signal) Waiters() int { return len(s.waiters) - s.holes }
