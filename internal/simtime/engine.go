package simtime

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrDeadlock is returned by Engine.Run when live processes remain but no
// events are pending, i.e. every remaining process waits on a signal that
// nobody will ever raise.
var ErrDeadlock = errors.New("simtime: deadlock")

// event is a scheduled wake-up of a process.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: insertion order, for determinism
	proc *Proc
	// gen snapshots the process's wake generation at schedule time. A
	// process that blocks with two pending wake-up sources (a signal and
	// a timeout, see Proc.WaitOnTimeout) is resumed by whichever fires
	// first; the loser's event is recognized as stale by its generation
	// and discarded instead of resuming the process at the wrong point.
	gen uint64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. Create one with
// NewEngine, add processes with Spawn, then call Run.
//
// The zero value is not usable.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	procs  []*Proc
	live   int // processes that have not finished
	failed error

	// RunUntil state: abort when an event beyond limit is popped.
	limit   Time
	limited bool
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time. During Run this is the timestamp
// of the event being executed.
func (e *Engine) Now() Time { return e.now }

// Procs returns the processes spawned so far, in spawn order.
func (e *Engine) Procs() []*Proc { return e.procs }

// Spawn registers a new process that will begin executing fn at time 0
// when Run is called. The name is used in diagnostics. fn runs on its own
// goroutine but only while the engine has handed it control; it must use
// the Proc's blocking methods (Sleep, WaitOn, ...) rather than real-time
// synchronization.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		id:     len(e.procs),
		name:   name,
		eng:    e,
		fn:     fn,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	return p
}

// schedule enqueues a wake-up for p at the given absolute time.
func (e *Engine) schedule(p *Proc, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("simtime: scheduling %q in the past (%d < %d)", p.name, at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, proc: p, gen: p.wakeGen})
}

// Run executes the simulation until every process has returned. It returns
// ErrDeadlock (wrapped with the list of stuck processes) if live processes
// remain with no pending events, or the panic value if a process panics.
//
// Run may be called again after it returns: processes spawned since the
// previous Run start at the current virtual time, so a sequence of
// programs accumulates time on one engine.
func (e *Engine) Run() error {
	e.live = 0
	for _, p := range e.procs {
		if p.done {
			continue
		}
		if !p.started {
			p.start()
			e.schedule(p, e.now)
		}
		e.live++
	}
	for e.live > 0 {
		if e.queue.Len() == 0 {
			err := e.deadlockError()
			e.shutdown()
			return err
		}
		ev := heap.Pop(&e.queue).(event)
		if ev.proc.done {
			continue // stale wake-up for a finished process
		}
		if ev.gen != ev.proc.wakeGen {
			continue // stale wake-up: the process was resumed by another source
		}
		if e.limited && ev.at > e.limit {
			err := fmt.Errorf("%w: next event at %v > limit %v", ErrTimeLimit, ev.at, e.limit)
			e.shutdown()
			return err
		}
		e.now = ev.at
		ev.proc.runOnce()
		if ev.proc.done {
			e.live--
		}
		if e.failed != nil {
			err := e.failed
			e.shutdown()
			return err
		}
	}
	return nil
}

// RunUntil executes like Run but aborts (with ErrTimeLimit) as soon as
// virtual time would pass the limit. A guard against livelocked
// simulated programs (e.g. a protocol that makes "progress" by
// re-polling forever): the abort fires on the first event beyond the
// limit, leaving state consistent up to that point.
func (e *Engine) RunUntil(limit Time) error {
	e.limit = limit
	e.limited = true
	defer func() { e.limited = false }()
	return e.Run()
}

// ErrTimeLimit is returned by RunUntil when the virtual clock passes the
// given limit before all processes finish.
var ErrTimeLimit = errors.New("simtime: virtual time limit exceeded")

// shutdown force-terminates every still-blocked process goroutine so that
// a failed simulation does not leak goroutines. Each victim is resumed
// once with its killed flag set; Proc.block panics with killSentinel,
// which the process wrapper swallows.
func (e *Engine) shutdown() {
	for _, p := range e.procs {
		if !p.done && p.started {
			p.killed = true
			p.runOnce()
		}
	}
}

func (e *Engine) deadlockError() error {
	var stuck []string
	for _, p := range e.procs {
		if !p.done {
			where := p.blockedAt
			if where == "" {
				where = "unknown"
			}
			if p.note != "" {
				stuck = append(stuck, fmt.Sprintf("%s (waiting: %s; last step: %s)", p.name, where, p.note))
			} else {
				stuck = append(stuck, fmt.Sprintf("%s (waiting: %s)", p.name, where))
			}
		}
	}
	sort.Strings(stuck)
	return fmt.Errorf("%w at t=%v: %d stuck processes: %s",
		ErrDeadlock, e.now, len(stuck), strings.Join(stuck, ", "))
}
