package simtime

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrDeadlock is returned by Engine.Run when live processes remain but no
// events are pending, i.e. every remaining process waits on a signal that
// nobody will ever raise.
var ErrDeadlock = errors.New("simtime: deadlock")

// event is a scheduled wake-up of a process.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: insertion order, for determinism
	proc *Proc
	// gen snapshots the process's wake generation at schedule time. A
	// process that blocks with two pending wake-up sources (a signal and
	// a timeout, see Proc.WaitOnTimeout) is resumed by whichever fires
	// first; the loser's event is recognized as stale by its generation
	// and discarded instead of resuming the process at the wrong point.
	gen uint64
}

// eventQueue is a sorted ring deque of events ordered ascending by
// (at, seq). It replaced the 4-ary min-heap when the scheduler moved to
// direct handoff: with the context-switch tax halved, the heap's
// O(log n) sift-down on every pop became the next largest term. The
// deque makes pop O(1) — take the head, advance the ring index — and
// puts the cost on push, where the simulator's real insertion patterns
// are nearly free: a sleeping process schedules the latest event so far
// (append at the tail, zero shifts), and a Broadcast schedules at the
// current instant (insert at or near the head, shifting only the
// same-time band). Arbitrary deadlines (WaitOnTimeout) binary-search
// their slot and shift the smaller side. (at, seq) is a total order
// because seq is unique, so the pop sequence is identical to both heap
// implementations before it; TestEventQueueMatchesContainerHeap pins
// that.
//
// The zero value is an empty queue.
type eventQueue struct {
	buf  []event // ring storage; len(buf) is zero or a power of two
	head int     // ring index of the minimum event
	n    int     // live events
}

func (h *eventQueue) Len() int { return h.n }

// min returns the minimum event without removing it. The queue must be
// non-empty.
func (h *eventQueue) min() *event { return &h.buf[h.head] }

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e at its sorted position.
func (h *eventQueue) push(e event) {
	if h.n == len(h.buf) {
		h.grow()
	}
	mask := len(h.buf) - 1
	// Tail fast path: the new event sorts after everything queued (every
	// Sleep in a forward-moving simulation lands here).
	if h.n == 0 || !eventLess(e, h.buf[(h.head+h.n-1)&mask]) {
		h.buf[(h.head+h.n)&mask] = e
		h.n++
		return
	}
	// Binary search the logical positions [0, n) for the first event
	// that sorts after e; unique (at, seq) keys mean no equal case.
	lo, hi := 0, h.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(e, h.buf[(h.head+mid)&mask]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Insert at logical position lo, shifting whichever side is smaller.
	if lo >= h.n-lo {
		for i := h.n; i > lo; i-- {
			h.buf[(h.head+i)&mask] = h.buf[(h.head+i-1)&mask]
		}
		h.buf[(h.head+lo)&mask] = e
	} else {
		h.head = (h.head - 1) & mask
		for i := 0; i < lo; i++ {
			h.buf[(h.head+i)&mask] = h.buf[(h.head+i+1)&mask]
		}
		h.buf[(h.head+lo)&mask] = e
	}
	h.n++
}

// pop removes and returns the minimum event. The queue must be non-empty.
func (h *eventQueue) pop() event {
	e := h.buf[h.head]
	h.head = (h.head + 1) & (len(h.buf) - 1)
	h.n--
	return e
}

// grow doubles the ring, linearizing the live events to the front.
func (h *eventQueue) grow() {
	c := len(h.buf) * 2
	if c == 0 {
		c = 64
	}
	nb := make([]event, c)
	k := copy(nb, h.buf[h.head:])
	copy(nb[k:], h.buf[:h.head])
	h.buf = nb
	h.head = 0
}

// Engine is a deterministic discrete-event scheduler. Create one with
// NewEngine, add processes with Spawn, then call Run.
//
// Scheduling is by direct handoff: there is no central dispatcher
// goroutine ping-ponging with the processes. Exactly one goroutine —
// one process, or the Run caller at the very start and end — holds the
// control token at any instant and therefore owns all engine state.
// When the running process blocks, it pops the next runnable event
// itself and resumes that event's process directly (one channel
// operation per event); when the next event is its own wake-up, it
// just advances the clock and keeps running (zero channel operations,
// the same-proc fast path). The Run caller parks on the root channel
// and is handed the token back only to report the outcome: completion,
// deadlock, a propagated panic, or the RunUntil limit.
//
// The zero value is not usable.
type Engine struct {
	now   Time
	queue eventQueue
	seq   uint64
	// spawned numbers processes (Proc.ID); unstarted queues processes
	// spawned since the last Run, and active tracks the current run's
	// started-but-unreaped processes. Keeping only these two short lists
	// makes engine bookkeeping O(active processes): an engine reused for
	// many programs does not accumulate (or rescan) every process it ever
	// ran, which is what made goroutine-per-run teardown O(total cores)
	// before the pool.
	spawned   int
	unstarted []*Proc
	active    []*Proc
	live      int // processes that have not finished
	failed    error

	// root parks the Run caller while processes hand control among
	// themselves; the process that ends the run (last finisher, deadlock
	// or limit detector, panicking process) sends the token back here.
	root chan struct{}
	// shuttingDown redirects every unwinding process straight back to
	// the root channel so Engine.shutdown can reap victims one at a time.
	shuttingDown bool

	// RunUntil state: abort when an event beyond limit is popped.
	limit   Time
	limited bool
	// limitHit/limitAt carry the abort from the process that popped the
	// offending event back to Run, which formats the error.
	limitHit bool
	limitAt  Time

	// Scheduler statistics: events delivered by cross-goroutine handoff
	// vs. absorbed inline by the same-proc fast path.
	handoffs uint64
	fastpath uint64
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{root: make(chan struct{}, 1)}
}

// Now reports the current virtual time. During Run this is the timestamp
// of the event being executed.
func (e *Engine) Now() Time { return e.now }

// NumSpawned reports how many processes have been spawned on this
// engine over its lifetime.
func (e *Engine) NumSpawned() int { return e.spawned }

// SchedStats reports how many events have been delivered by a
// cross-goroutine handoff and how many were absorbed inline by the
// same-proc fast path since the engine was created. Their sum is the
// total number of events executed; fastpath/(handoffs+fastpath) is the
// fast-path hit rate.
func (e *Engine) SchedStats() (handoffs, fastpath uint64) {
	return e.handoffs, e.fastpath
}

// Spawn registers a new process that will begin executing fn at time 0
// when Run is called. The name is used in diagnostics. fn runs on its own
// goroutine but only while it holds the engine's control token; it must
// use the Proc's blocking methods (Sleep, WaitOn, ...) rather than
// real-time synchronization.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		id:     e.spawned,
		name:   name,
		eng:    e,
		fn:     fn,
		resume: make(chan struct{}, 1),
	}
	e.spawned++
	e.unstarted = append(e.unstarted, p)
	return p
}

// schedule enqueues a wake-up for p at the given absolute time.
func (e *Engine) schedule(p *Proc, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("simtime: scheduling %q in the past (%d < %d)", p.name, at, e.now))
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, proc: p, gen: p.wakeGen})
}

// Run executes the simulation until every process has returned. It returns
// ErrDeadlock (wrapped with the list of stuck processes) if live processes
// remain with no pending events, or the panic value if a process panics.
//
// Run may be called again after it returns: processes spawned since the
// previous Run start at the current virtual time, so a sequence of
// programs accumulates time on one engine.
func (e *Engine) Run() error {
	if e.root == nil {
		e.root = make(chan struct{}, 1)
	}
	// Every earlier run ended with all its processes reaped (live == 0 on
	// every exit path), so only the processes spawned since then need
	// starting; the engine never rescans its full spawn history.
	for _, p := range e.unstarted {
		p.start()
		e.schedule(p, e.now)
		e.active = append(e.active, p)
		e.live++
	}
	e.unstarted = e.unstarted[:0]
	if e.live == 0 {
		return nil
	}
	// Hand the control token to the first runnable event's process, then
	// park until the token comes back with the run's outcome.
	if e.dispatchFromRoot() {
		<-e.root
	}
	if e.failed != nil {
		err := e.failed
		e.shutdown()
		return err
	}
	if e.limitHit {
		e.limitHit = false
		err := fmt.Errorf("%w: next event at %v > limit %v", ErrTimeLimit, e.limitAt, e.limit)
		e.shutdown()
		return err
	}
	if e.live > 0 {
		err := e.deadlockError()
		e.shutdown()
		return err
	}
	e.clearActive()
	return nil
}

// clearActive empties the active list (all its processes are done),
// dropping the *Proc references so finished processes and their
// closed-over state are collectable even while the engine lives on.
func (e *Engine) clearActive() {
	for i := range e.active {
		e.active[i] = nil
	}
	e.active = e.active[:0]
}

// dispatchFromRoot pops the next runnable event and resumes its process,
// reporting whether a handoff happened. False means the Run caller keeps
// the token: the queue drained with live processes remaining (deadlock)
// or the first event already lies beyond the RunUntil limit.
func (e *Engine) dispatchFromRoot() bool {
	for {
		if e.queue.n == 0 {
			return false
		}
		ev := e.queue.pop()
		if ev.proc.done || ev.gen != ev.proc.wakeGen {
			continue
		}
		if e.limited && ev.at > e.limit {
			e.limitHit, e.limitAt = true, ev.at
			return false
		}
		e.now = ev.at
		e.handoffs++
		ev.proc.resume <- struct{}{}
		return true
	}
}

// next is called by a blocked process that has already arranged its
// future wake-up (a scheduled event or a signal registration). It pops
// the next runnable event and either returns inline — the same-proc
// fast path, when the event is the caller's own wake-up — or resumes
// the event's process and parks until this process is woken in turn.
// When no event remains (deadlock) or an event beyond the RunUntil
// limit surfaces, the token goes back to Run and the caller parks until
// Engine.shutdown reaps it.
func (e *Engine) next(p *Proc) {
	for {
		if e.queue.n == 0 {
			e.root <- struct{}{}
			<-p.resume
			return
		}
		ev := e.queue.pop()
		if ev.proc.done || ev.gen != ev.proc.wakeGen {
			continue
		}
		if e.limited && ev.at > e.limit {
			e.limitHit, e.limitAt = true, ev.at
			e.root <- struct{}{}
			<-p.resume
			return
		}
		e.now = ev.at
		if ev.proc == p {
			e.fastpath++
			return
		}
		e.handoffs++
		ev.proc.resume <- struct{}{}
		<-p.resume
		return
	}
}

// finish is the tail of every process goroutine: the process is done
// (normally, by panic, or killed), so pass the control token on — to the
// next event's process, or back to Run when the simulation is over
// (nothing live, nothing runnable, a recorded failure, or a shutdown in
// progress).
func (e *Engine) finish() {
	if e.shuttingDown || e.failed != nil || e.live == 0 {
		e.root <- struct{}{}
		return
	}
	for {
		if e.queue.n == 0 {
			e.root <- struct{}{} // survivors are deadlocked
			return
		}
		ev := e.queue.pop()
		if ev.proc.done || ev.gen != ev.proc.wakeGen {
			continue
		}
		if e.limited && ev.at > e.limit {
			e.limitHit, e.limitAt = true, ev.at
			e.root <- struct{}{}
			return
		}
		e.now = ev.at
		e.handoffs++
		ev.proc.resume <- struct{}{}
		return
	}
}

// RunUntil executes like Run but aborts (with ErrTimeLimit) as soon as
// virtual time would pass the limit. A guard against livelocked
// simulated programs (e.g. a protocol that makes "progress" by
// re-polling forever): the abort fires on the first event beyond the
// limit, leaving state consistent up to that point.
func (e *Engine) RunUntil(limit Time) error {
	e.limit = limit
	e.limited = true
	defer func() { e.limited = false }()
	return e.Run()
}

// ErrTimeLimit is returned by RunUntil when the virtual clock passes the
// given limit before all processes finish.
var ErrTimeLimit = errors.New("simtime: virtual time limit exceeded")

// shutdown force-terminates every still-blocked process goroutine so that
// a failed simulation does not leak goroutines. Each victim is resumed
// once with its killed flag set; Proc.block panics with killSentinel, the
// process wrapper swallows it, and finish hands the token straight back
// here (shuttingDown), one victim at a time.
func (e *Engine) shutdown() {
	e.shuttingDown = true
	for _, p := range e.active {
		if !p.done {
			p.killed = true
			p.resume <- struct{}{}
			<-e.root
		}
	}
	e.shuttingDown = false
	e.clearActive()
}

func (e *Engine) deadlockError() error {
	var stuck []string
	for _, p := range e.active {
		if !p.done {
			// The sites and notes were recorded as raw integers on the hot
			// path; this is the one place they are actually formatted.
			where := "unknown"
			if p.blockedAt.Kind != WaitNone {
				where = p.blockedAt.String()
			}
			if !p.note.IsZero() {
				stuck = append(stuck, fmt.Sprintf("%s (waiting: %s; last step: %s)", p.name, where, p.note.String()))
			} else {
				stuck = append(stuck, fmt.Sprintf("%s (waiting: %s)", p.name, where))
			}
		}
	}
	sort.Strings(stuck)
	return fmt.Errorf("%w at t=%v: %d stuck processes: %s",
		ErrDeadlock, e.now, len(stuck), strings.Join(stuck, ", "))
}
