package simtime

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrDeadlock is returned by Engine.Run when live processes remain but no
// events are pending, i.e. every remaining process waits on a signal that
// nobody will ever raise.
var ErrDeadlock = errors.New("simtime: deadlock")

// event is a scheduled wake-up of a process.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: insertion order, for determinism
	proc *Proc
	// gen snapshots the process's wake generation at schedule time. A
	// process that blocks with two pending wake-up sources (a signal and
	// a timeout, see Proc.WaitOnTimeout) is resumed by whichever fires
	// first; the loser's event is recognized as stale by its generation
	// and discarded instead of resuming the process at the wrong point.
	gen uint64
}

// eventQueue is a 4-ary min-heap of events ordered by (at, seq). It is
// hand-rolled rather than built on container/heap: the concrete element
// type avoids the interface{} boxing allocation on every Push, and the
// wider fan-out halves the tree depth, so the event loop — the
// simulator's ultimate inner loop — touches fewer cache lines per
// operation. (at, seq) is a total order because seq is unique, so the
// pop sequence is identical to the old binary-heap implementation.
type eventQueue []event

func (h eventQueue) Len() int { return len(h) }

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e, sifting it up toward the root.
func (h *eventQueue) push(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

// pop removes and returns the minimum event. The queue must be non-empty.
func (h *eventQueue) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(q[c], q[min]) {
				min = c
			}
		}
		if !eventLess(q[min], q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// Engine is a deterministic discrete-event scheduler. Create one with
// NewEngine, add processes with Spawn, then call Run.
//
// The zero value is not usable.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	procs  []*Proc
	live   int // processes that have not finished
	failed error

	// RunUntil state: abort when an event beyond limit is popped.
	limit   Time
	limited bool
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time. During Run this is the timestamp
// of the event being executed.
func (e *Engine) Now() Time { return e.now }

// Procs returns the processes spawned so far, in spawn order.
func (e *Engine) Procs() []*Proc { return e.procs }

// Spawn registers a new process that will begin executing fn at time 0
// when Run is called. The name is used in diagnostics. fn runs on its own
// goroutine but only while the engine has handed it control; it must use
// the Proc's blocking methods (Sleep, WaitOn, ...) rather than real-time
// synchronization.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		id:     len(e.procs),
		name:   name,
		eng:    e,
		fn:     fn,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	return p
}

// schedule enqueues a wake-up for p at the given absolute time.
func (e *Engine) schedule(p *Proc, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("simtime: scheduling %q in the past (%d < %d)", p.name, at, e.now))
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, proc: p, gen: p.wakeGen})
}

// Run executes the simulation until every process has returned. It returns
// ErrDeadlock (wrapped with the list of stuck processes) if live processes
// remain with no pending events, or the panic value if a process panics.
//
// Run may be called again after it returns: processes spawned since the
// previous Run start at the current virtual time, so a sequence of
// programs accumulates time on one engine.
func (e *Engine) Run() error {
	e.live = 0
	for _, p := range e.procs {
		if p.done {
			continue
		}
		if !p.started {
			p.start()
			e.schedule(p, e.now)
		}
		e.live++
	}
	for e.live > 0 {
		if e.queue.Len() == 0 {
			err := e.deadlockError()
			e.shutdown()
			return err
		}
		ev := e.queue.pop()
		if ev.proc.done {
			continue // stale wake-up for a finished process
		}
		if ev.gen != ev.proc.wakeGen {
			continue // stale wake-up: the process was resumed by another source
		}
		if e.limited && ev.at > e.limit {
			err := fmt.Errorf("%w: next event at %v > limit %v", ErrTimeLimit, ev.at, e.limit)
			e.shutdown()
			return err
		}
		e.now = ev.at
		ev.proc.runOnce()
		if ev.proc.done {
			e.live--
		}
		if e.failed != nil {
			err := e.failed
			e.shutdown()
			return err
		}
	}
	return nil
}

// RunUntil executes like Run but aborts (with ErrTimeLimit) as soon as
// virtual time would pass the limit. A guard against livelocked
// simulated programs (e.g. a protocol that makes "progress" by
// re-polling forever): the abort fires on the first event beyond the
// limit, leaving state consistent up to that point.
func (e *Engine) RunUntil(limit Time) error {
	e.limit = limit
	e.limited = true
	defer func() { e.limited = false }()
	return e.Run()
}

// ErrTimeLimit is returned by RunUntil when the virtual clock passes the
// given limit before all processes finish.
var ErrTimeLimit = errors.New("simtime: virtual time limit exceeded")

// shutdown force-terminates every still-blocked process goroutine so that
// a failed simulation does not leak goroutines. Each victim is resumed
// once with its killed flag set; Proc.block panics with killSentinel,
// which the process wrapper swallows.
func (e *Engine) shutdown() {
	for _, p := range e.procs {
		if !p.done && p.started {
			p.killed = true
			p.runOnce()
		}
	}
}

func (e *Engine) deadlockError() error {
	var stuck []string
	for _, p := range e.procs {
		if !p.done {
			// The sites and notes were recorded as raw integers on the hot
			// path; this is the one place they are actually formatted.
			where := "unknown"
			if p.blockedAt.Kind != WaitNone {
				where = p.blockedAt.String()
			}
			if !p.note.IsZero() {
				stuck = append(stuck, fmt.Sprintf("%s (waiting: %s; last step: %s)", p.name, where, p.note.String()))
			} else {
				stuck = append(stuck, fmt.Sprintf("%s (waiting: %s)", p.name, where))
			}
		}
	}
	sort.Strings(stuck)
	return fmt.Errorf("%w at t=%v: %d stuck processes: %s",
		ErrDeadlock, e.now, len(stuck), strings.Join(stuck, ", "))
}
