package simtime

import "testing"

// BenchmarkEventLoop measures the engine's schedule/pop/context-switch
// cycle: 48 processes (one simulated chip's worth) each sleeping
// repeatedly, so every iteration is one full trip through the event
// queue plus one goroutine handoff.
func BenchmarkEventLoop(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	per := b.N/48 + 1
	for p := 0; p < 48; p++ {
		e.Spawn("bench", func(p *Proc) {
			for i := 0; i < per; i++ {
				p.Sleep(3)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventQueue isolates the heap itself (no goroutine handoff):
// push/pop cycles at a steady queue depth of 48, the simulator's
// standing population.
func BenchmarkEventQueue(b *testing.B) {
	b.ReportAllocs()
	var q eventQueue
	for i := 0; i < 48; i++ {
		q.push(event{at: Time(i % 7), seq: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.pop()
		e.at += Time(i % 13)
		e.seq = uint64(48 + i)
		q.push(e)
	}
}
