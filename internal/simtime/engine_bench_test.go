package simtime

import "testing"

// BenchmarkEventLoop measures the engine's schedule/pop/context-switch
// cycle: 48 processes (one simulated chip's worth) each sleeping
// repeatedly, so every iteration is one full trip through the event
// queue plus one goroutine handoff.
func BenchmarkEventLoop(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	per := b.N/48 + 1
	for p := 0; p < 48; p++ {
		e.Spawn("bench", func(p *Proc) {
			for i := 0; i < per; i++ {
				p.Sleep(3)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHandoff isolates the direct-handoff path: two processes whose
// wake-ups strictly alternate, so every Sleep finds the other process's
// event at the head of the queue and must hand the control token across
// goroutines. Zero fast-path hits by construction.
func BenchmarkHandoff(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	per := b.N/2 + 1
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1) // offset so the two wake chains interleave: 1,3,5,... vs 2,4,6,...
		for i := 0; i < per; i++ {
			p.Sleep(2)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < per; i++ {
			p.Sleep(2)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if h, f := e.SchedStats(); int(h) < b.N || f > 2 {
		b.Fatalf("not a pure handoff workload: handoffs=%d fastpath=%d N=%d", h, f, b.N)
	}
}

// BenchmarkSameProcFastPath isolates the fused Sleep fast path: a single
// process sleeping with an empty queue advances the clock inline with no
// queue operation and no channel operation at all.
func BenchmarkSameProcFastPath(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := b.N
	e.Spawn("solo", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(3)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if _, f := e.SchedStats(); int(f) < b.N {
		b.Fatalf("fast path missed: fastpath=%d N=%d", f, b.N)
	}
}

// BenchmarkTimeoutManyWaiters measures WaitOnTimeout's loser
// deregistration under a crowded signal: 512 waiters all time out every
// round, so each op is one register + one timed-out deregistration. With
// the seed's linear scan-and-splice this was O(waiters) per op; the
// recorded-index scheme is O(1) amortized.
func BenchmarkTimeoutManyWaiters(b *testing.B) {
	b.ReportAllocs()
	const waiters = 512
	e := NewEngine()
	var sig Signal
	per := b.N/waiters + 1
	for w := 0; w < waiters; w++ {
		e.Spawn("waiter", func(p *Proc) {
			for i := 0; i < per; i++ {
				if p.WaitOnTimeout(&sig, 5, Site("bench")) {
					panic("unexpected signal")
				}
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventQueue isolates the event queue itself (no goroutine
// handoff): push/pop cycles at a steady queue depth of 48, the
// simulator's standing population.
func BenchmarkEventQueue(b *testing.B) {
	b.ReportAllocs()
	var q eventQueue
	for i := 0; i < 48; i++ {
		q.push(event{at: Time(i % 7), seq: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.pop()
		e.at += Time(i % 13)
		e.seq = uint64(48 + i)
		q.push(e)
	}
}
