package simtime

import "fmt"

// This file holds the lazy diagnostics types. Blocking points and
// protocol-step notes used to be fmt.Sprintf strings built on every
// block and every chunk — pure waste on the hot path, since the strings
// are only ever read when a deadlock report is rendered. WaitSite and
// Note instead capture the raw integers at block time (a plain struct
// assignment, no allocation) and defer all formatting to String(),
// which only runs inside Engine.deadlockError.

// WaitKind classifies a blocking point so WaitSite can render it
// without carrying a formatted string.
type WaitKind uint8

// Wait-site kinds. The flag/TAS kinds mirror the scc package's wait
// primitives; WaitGeneric covers everything else via a static label.
const (
	// WaitNone is the zero value: no site recorded.
	WaitNone WaitKind = iota
	// WaitGeneric renders the static Label verbatim.
	WaitGeneric
	// WaitFlagEq: core Core blocked until MPB flag at Off equals Want.
	WaitFlagEq
	// WaitFlagPred: core Core blocked until the flag at Off matches a
	// predicate (the hardened protocol's sequence-valued waits).
	WaitFlagPred
	// WaitFlagsAny: core Core blocked on Want flags at once, the first
	// of which lives at Off.
	WaitFlagsAny
	// WaitTAS: core Core blocked on the test-and-set register of core
	// Off.
	WaitTAS
)

// WaitSite is a compact, allocation-free description of a blocking
// point: the waiting core, the flag offset, the expected value and the
// kind of wait. It is formatted only when a deadlock report is
// actually rendered.
type WaitSite struct {
	Kind WaitKind
	// Core is the waiting core's ID (-1 when the waiter is not a core).
	Core int32
	// Off is the MPB flag offset (or register index) being watched.
	Off int32
	// Want is the expected flag value (WaitFlagEq) or the number of
	// watched flags (WaitFlagsAny).
	Want int32
	// Label is a static description for WaitGeneric sites. It must be a
	// constant or long-lived string; building it dynamically would
	// defeat the lazy-formatting invariant.
	Label string
}

// Site wraps a static label as a generic wait site.
func Site(label string) WaitSite { return WaitSite{Kind: WaitGeneric, Label: label} }

// String renders the site for a deadlock report. Deadlock reports must
// still name core, flag offset and expected value, exactly as the old
// eager strings did; TestDeadlockReportGolden pins the format.
func (s WaitSite) String() string {
	switch s.Kind {
	case WaitGeneric:
		return s.Label
	case WaitFlagEq:
		return fmt.Sprintf("core%02d flag@%d==%d", s.Core, s.Off, s.Want)
	case WaitFlagPred:
		return fmt.Sprintf("core%02d flag@%d match", s.Core, s.Off)
	case WaitFlagsAny:
		return fmt.Sprintf("core%02d any-flag (%d flags, first@%d)", s.Core, s.Want, s.Off)
	case WaitTAS:
		return fmt.Sprintf("core%02d T&S %d", s.Core, s.Off)
	default:
		return "unknown"
	}
}

// Note is a deferred-format diagnostic: a static format string plus up
// to three integer arguments, rendered only when a deadlock report is
// built. The zero value means "no note".
type Note struct {
	// Format is a static fmt format string whose verbs must all consume
	// integers (or, with N == 0, a plain string rendered verbatim).
	Format string
	// Args holds the first N operands.
	Args [3]int64
	// N is how many of Args are live.
	N uint8
}

// NoteString wraps a static string as a note, rendered verbatim.
func NoteString(s string) Note { return Note{Format: s} }

// Note1, Note2 and Note3 build notes with fixed arities so that no
// variadic slice is allocated on the recording path.
func Note1(format string, a int64) Note {
	return Note{Format: format, Args: [3]int64{a}, N: 1}
}

// Note2 builds a two-operand note.
func Note2(format string, a, b int64) Note {
	return Note{Format: format, Args: [3]int64{a, b}, N: 2}
}

// Note3 builds a three-operand note.
func Note3(format string, a, b, c int64) Note {
	return Note{Format: format, Args: [3]int64{a, b, c}, N: 3}
}

// String renders the note for a deadlock report.
func (n Note) String() string {
	if n.N == 0 {
		return n.Format
	}
	var a [3]any
	for i := 0; i < int(n.N); i++ {
		a[i] = n.Args[i]
	}
	return fmt.Sprintf(n.Format, a[:n.N]...)
}

// IsZero reports whether the note is unset.
func (n Note) IsZero() bool { return n.Format == "" }
