// Package simtime provides a deterministic, process-oriented
// discrete-event simulation engine.
//
// The engine models virtual time in integer ticks. One tick is 0.625 ns,
// chosen so that both SCC clock domains are integral: one core cycle at
// 533 1/3 MHz is exactly 3 ticks and one mesh or DRAM cycle at 800 MHz is
// exactly 2 ticks. One microsecond is 1600 ticks.
//
// Simulated programs run as processes (see Proc). Each process executes on
// its own goroutine, but exactly one runs at a time: a blocking process
// pops the next event itself and hands control directly to that event's
// process (or keeps running inline when the next event is its own
// wake-up), so simulations are fully deterministic: two runs of the same
// program produce identical event orders and identical virtual
// timestamps.
package simtime

import "fmt"

// Time is a point in virtual time, measured in ticks since the start of
// the simulation. One tick is 0.625 ns.
type Time int64

// Duration is a span of virtual time in ticks.
type Duration = Time

// Tick granularity constants. The tick was chosen as the greatest common
// divisor of the SCC's 533 1/3 MHz core period (1.875 ns) and 800 MHz
// mesh/DRAM period (1.25 ns).
const (
	// TicksPerMicrosecond converts between ticks and wall microseconds.
	TicksPerMicrosecond Time = 1600
	// TicksPerCoreCycle is the length of one core clock cycle (533 MHz
	// domain) in ticks.
	TicksPerCoreCycle Time = 3
	// TicksPerMeshCycle is the length of one mesh/DRAM clock cycle
	// (800 MHz domain) in ticks.
	TicksPerMeshCycle Time = 2
)

// CoreCycles returns the duration of n core clock cycles.
func CoreCycles(n int64) Duration { return Time(n) * TicksPerCoreCycle }

// MeshCycles returns the duration of n mesh clock cycles.
func MeshCycles(n int64) Duration { return Time(n) * TicksPerMeshCycle }

// Microseconds returns the duration of n microseconds of virtual time.
func Microseconds(n int64) Duration { return Time(n) * TicksPerMicrosecond }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(TicksPerMicrosecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return t.Micros() / 1000 }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return t.Micros() / 1e6 }

// String formats the time with an adaptive unit, e.g. "12.5us" or "3.2ms".
func (t Time) String() string {
	us := t.Micros()
	switch {
	case t < 0:
		return fmt.Sprintf("%dticks", int64(t))
	case us < 1:
		return fmt.Sprintf("%dns", int64(t)*625/1000)
	case us < 1000:
		return fmt.Sprintf("%.2fus", us)
	case us < 1e6:
		return fmt.Sprintf("%.2fms", us/1000)
	default:
		return fmt.Sprintf("%.3fs", us/1e6)
	}
}
