package simtime

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the old container/heap-based implementation, kept here as
// the executable specification: the 4-ary eventQueue must pop events in
// exactly the same (time, seq) order.
type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestEventQueueMatchesContainerHeap drives the 4-ary heap and the
// container/heap reference through identical random push/pop sequences
// and requires identical pop orders. Timestamps collide on purpose (many
// events share an instant in real simulations), so the seq tie-break is
// exercised heavily.
func TestEventQueueMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		var ref refHeap
		var seq uint64
		for step := 0; step < 2000; step++ {
			if q.Len() == 0 || rng.Intn(3) != 0 {
				seq++
				e := event{at: Time(rng.Intn(50)), seq: seq}
				q.push(e)
				heap.Push(&ref, e)
			} else {
				got := q.pop()
				want := heap.Pop(&ref).(event)
				if got != want {
					t.Fatalf("trial %d step %d: pop mismatch: got (at=%d seq=%d), want (at=%d seq=%d)",
						trial, step, got.at, got.seq, want.at, want.seq)
				}
			}
		}
		// Drain: the remaining orders must agree too.
		for q.Len() > 0 {
			got := q.pop()
			want := heap.Pop(&ref).(event)
			if got != want {
				t.Fatalf("trial %d drain: pop mismatch: got (at=%d seq=%d), want (at=%d seq=%d)",
					trial, got.at, got.seq, want.at, want.seq)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: reference has %d leftover events", trial, ref.Len())
		}
	}
}

// TestEventQueueAscendingPops double-checks the heap invariant directly:
// pops from a randomly filled queue never go backwards in (at, seq).
func TestEventQueueAscendingPops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q eventQueue
	for i := 0; i < 10_000; i++ {
		q.push(event{at: Time(rng.Intn(1000)), seq: uint64(i + 1)})
	}
	prev := q.pop()
	for q.Len() > 0 {
		cur := q.pop()
		if cur.at < prev.at || (cur.at == prev.at && cur.seq < prev.seq) {
			t.Fatalf("pop order regressed: (at=%d seq=%d) after (at=%d seq=%d)",
				cur.at, cur.seq, prev.at, prev.seq)
		}
		prev = cur
	}
}
