package simtime

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := Microseconds(1); got != 1600 {
		t.Fatalf("Microseconds(1) = %d, want 1600", got)
	}
	if got := CoreCycles(1); got != 3 {
		t.Fatalf("CoreCycles(1) = %d, want 3", got)
	}
	if got := MeshCycles(1); got != 2 {
		t.Fatalf("MeshCycles(1) = %d, want 2", got)
	}
	// 533.33 MHz * 1.875ns = 1; check the ratio core:mesh = 1.5 exactly.
	if 2*CoreCycles(3) != 3*MeshCycles(3) {
		t.Fatal("core:mesh cycle ratio must be exactly 3:2")
	}
	if got := Microseconds(5).Micros(); got != 5.0 {
		t.Fatalf("Micros() = %v, want 5.0", got)
	}
	if got := Microseconds(2500).Millis(); got != 2.5 {
		t.Fatalf("Millis() = %v, want 2.5", got)
	}
	if got := Microseconds(3_000_000).Seconds(); got != 3.0 {
		t.Fatalf("Seconds() = %v, want 3.0", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{Time(160), "100ns"},
		{Microseconds(12), "12.00us"},
		{Microseconds(2500), "2.50ms"},
		{Microseconds(4_200_000), "4.200s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestSingleProcSleep(t *testing.T) {
	e := NewEngine()
	var end Time
	e.Spawn("p", func(p *Proc) {
		p.Sleep(CoreCycles(100))
		p.Sleep(Microseconds(2))
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := CoreCycles(100) + Microseconds(2)
	if end != want {
		t.Fatalf("end time = %d, want %d", end, want)
	}
}

func TestInterleavingIsDeterministicByTime(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				// Different sleep patterns so events interleave.
				for k := 0; k < 3; k++ {
					p.Sleep(Time(10*(i+1) + k))
					log = append(log, fmt.Sprintf("p%d@%d", i, p.Now()))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d diverged:\n%v\nvs\n%v", trial, got, first)
		}
	}
	// Timestamps must be non-decreasing in log order.
	var times []int
	for _, s := range first {
		var id, at int
		fmt.Sscanf(s, "p%d@%d", &id, &at)
		times = append(times, at)
	}
	if !sort.IntsAreSorted(times) {
		t.Fatalf("events executed out of time order: %v", times)
	}
}

func TestSameTimeTieBreaksBySpawnOrderAtStart(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("start order %v, want spawn order", order)
		}
	}
}

func TestSignalBroadcastWakesAllWaiters(t *testing.T) {
	e := NewEngine()
	var sig Signal
	wakeTimes := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("waiter", func(p *Proc) {
			p.WaitOn(&sig, Site("test signal"))
			wakeTimes[i] = p.Now()
		})
	}
	e.Spawn("signaler", func(p *Proc) {
		p.Sleep(Microseconds(7))
		if sig.Waiters() != 3 {
			t.Errorf("Waiters() = %d, want 3", sig.Waiters())
		}
		sig.Broadcast(p.Engine())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, w := range wakeTimes {
		if w != Microseconds(7) {
			t.Errorf("waiter %d woke at %d, want %d", i, w, Microseconds(7))
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	var sig Signal
	e.Spawn("stuck-one", func(p *Proc) {
		p.WaitOn(&sig, Site("a signal that never comes"))
	})
	e.Spawn("fine", func(p *Proc) {
		p.Sleep(10)
	})
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if msg := err.Error(); !containsAll(msg, "stuck-one", "a signal that never comes") {
		t.Fatalf("deadlock message missing details: %q", msg)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bomber", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	e.Spawn("bystander", func(p *Proc) {
		p.Sleep(1000)
	})
	err := e.Run()
	if err == nil || !containsAll(err.Error(), "bomber", "boom") {
		t.Fatalf("err = %v, want panic report", err)
	}
}

func TestZeroSleepYieldsToSameTimePeers(t *testing.T) {
	// p0 yields; p1, scheduled at the same instant, must run before p0
	// resumes because p0's re-schedule gets a later sequence number.
	e := NewEngine()
	var order []string
	e.Spawn("p0", func(p *Proc) {
		order = append(order, "p0-first")
		p.Yield()
		order = append(order, "p0-second")
	})
	e.Spawn("p1", func(p *Proc) {
		order = append(order, "p1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0-first", "p1", "p0-second"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestManyProcsStress(t *testing.T) {
	const n = 200
	e := NewEngine()
	total := 0
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("worker", func(p *Proc) {
			for k := 0; k < 50; k++ {
				p.Sleep(Time(1 + (i+k)%7))
			}
			total++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("completed %d, want %d", total, n)
	}
}

func TestNegativeSleepClampsToZero(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		before := p.Now()
		p.Sleep(-100)
		if p.Now() != before {
			t.Errorf("negative sleep moved time from %d to %d", before, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: a process that performs a random sequence of sleeps ends at
// exactly the sum of the (clamped) durations.
func TestSleepAccumulationProperty(t *testing.T) {
	f := func(raw []int16) bool {
		e := NewEngine()
		var end Time
		e.Spawn("p", func(p *Proc) {
			for _, d := range raw {
				p.Sleep(Time(d))
			}
			end = p.Now()
		})
		if err := e.Run(); err != nil {
			return false
		}
		var want Time
		for _, d := range raw {
			if d > 0 {
				want += Time(d)
			}
		}
		return end == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: events pop in non-decreasing time order regardless of the
// insertion pattern (exercises the heap through the public API).
func TestEventOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		var seen []Time
		for i := 0; i < 20; i++ {
			delays := make([]Time, 10)
			for k := range delays {
				delays[k] = Time(rng.Intn(1000))
			}
			e.Spawn("p", func(p *Proc) {
				for _, d := range delays {
					p.Sleep(d)
					seen = append(seen, p.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				t.Fatalf("trial %d: time went backwards: %d after %d", trial, seen[i], seen[i-1])
			}
		}
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !contains(s, sub) {
			return false
		}
	}
	return true
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRunUntilAbortsLivelock(t *testing.T) {
	e := NewEngine()
	e.Spawn("spinner", func(p *Proc) {
		for { // livelock: forever re-sleeping
			p.Sleep(100)
		}
	})
	err := e.RunUntil(Microseconds(10))
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
	if e.Now() > Microseconds(10) {
		t.Fatalf("clock ran past the limit: %v", e.Now())
	}
}

func TestRunUntilCompletesEarlyPrograms(t *testing.T) {
	e := NewEngine()
	done := false
	e.Spawn("quick", func(p *Proc) {
		p.Sleep(100)
		done = true
	})
	if err := e.RunUntil(Microseconds(1000)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("program did not finish")
	}
}
