package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestNamesAreStableAndDistinct(t *testing.T) {
	seen := map[string]bool{}
	for p := 0; p < NumPhases; p++ {
		name := Phase(p).String()
		if name == "" || name == "phase?" || seen[name] {
			t.Fatalf("phase %d has bad or duplicate name %q", p, name)
		}
		seen[name] = true
	}
	for c := 0; c < NumCounters; c++ {
		name := Counter(c).String()
		if name == "" || name == "counter?" || seen[name] {
			t.Fatalf("counter %d has bad or duplicate name %q", c, name)
		}
		seen[name] = true
	}
	if got := len(PhaseNames()); got != NumPhases {
		t.Fatalf("PhaseNames returned %d names, want %d", got, NumPhases)
	}
}

func TestRegistryAccumulation(t *testing.T) {
	r := New(2)
	r.InitLinks(4, func(i int) string { return fmt.Sprintf("L%d", i) })

	r.AddPhase(0, PhaseTransfer, 100)
	r.AddPhase(0, PhaseTransfer, 50)
	r.AddPhase(1, PhaseFlagWait, 30)
	r.Count(0, CtrMPBReads)
	r.CountN(0, CtrMPBBytesRead, 64)
	r.SetMax(1, CtrPendingReqsMax, 3)
	r.SetMax(1, CtrPendingReqsMax, 2) // lower: must not overwrite
	r.LinkTransfer(1, 10, 0)
	r.LinkTransfer(1, 10, 5)
	r.AddHops(3)
	r.AddHops(3)
	r.AddHops(1000) // clamps into the last bucket
	r.ObserveWait(100)

	before := r.PhaseRow(0)
	r.AddPhase(0, PhaseOverhead, 7)
	r.RecordCollective("allreduce[ring]", 40, before, r.PhaseRow(0))

	s := r.Snapshot()
	if got := s.Cores[0].Phases["transfer"]; got != 150 {
		t.Errorf("core 0 transfer = %d, want 150", got)
	}
	if got := s.Totals.Phases["flag-wait"]; got != 30 {
		t.Errorf("total flag-wait = %d, want 30", got)
	}
	if got := s.Cores[0].Counters["mpb-bytes-read"]; got != 64 {
		t.Errorf("mpb-bytes-read = %d, want 64", got)
	}
	if got := s.Totals.Counters["pending-reqs-max"]; got != 3 {
		t.Errorf("pending-reqs-max = %d, want 3 (max, not sum)", got)
	}
	if _, ok := s.Cores[1].Counters["mpb-reads"]; ok {
		t.Error("zero counter should be omitted from the snapshot")
	}
	if len(s.Links) != 1 {
		t.Fatalf("got %d links, want 1 (untouched links omitted)", len(s.Links))
	}
	l := s.Links[0]
	if l.Link != "L1" || l.BusyTicks != 20 || l.QueuedTicks != 5 || l.Transfers != 2 || l.QueuedTransfers != 1 {
		t.Errorf("link record = %+v", l)
	}
	if got := s.HopHist[3]; got != 2 {
		t.Errorf("hop bucket 3 = %d, want 2", got)
	}
	if got := s.HopHist[len(s.HopHist)-1]; got != 1 {
		t.Errorf("clamped hop bucket = %d, want 1", got)
	}
	if len(s.Collectives) != 1 {
		t.Fatalf("got %d collectives, want 1", len(s.Collectives))
	}
	c := s.Collectives[0]
	if c.Label != "allreduce[ring]" || c.Calls != 1 || c.Ticks != 40 {
		t.Errorf("collective record = %+v", c)
	}
	if got := c.Phases["overhead"]; got != 7 {
		t.Errorf("collective overhead delta = %d, want 7", got)
	}
}

func TestCollectivesSortedByLabel(t *testing.T) {
	r := New(1)
	var zero [NumPhases]int64
	r.RecordCollective("reduce[tree]", 1, zero, zero)
	r.RecordCollective("allreduce[ring]", 1, zero, zero)
	r.RecordCollective("broadcast[tree]", 1, zero, zero)
	s := r.Snapshot()
	var labels []string
	for _, c := range s.Collectives {
		labels = append(labels, c.Label)
	}
	want := []string{"allreduce[ring]", "broadcast[tree]", "reduce[tree]"}
	if fmt.Sprint(labels) != fmt.Sprint(want) {
		t.Errorf("collective order = %v, want %v", labels, want)
	}
}

// TestHotPathDoesNotAllocate pins down the package's core promise: the
// per-event recording paths never allocate, so a metrics-enabled run
// does not churn the host allocator (and cannot slow the simulator down
// asymptotically).
func TestHotPathDoesNotAllocate(t *testing.T) {
	r := New(48)
	r.InitLinks(96, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		r.AddPhase(3, PhaseFlagWait, 17)
		r.Count(3, CtrFlagProbes)
		r.CountN(3, CtrMPBBytesWritten, 32)
		r.SetMax(3, CtrPendingReqsMax, 2)
		r.LinkTransfer(5, 4, 2)
		r.AddHops(4)
		r.ObserveWait(1000)
		_ = r.PhaseRow(3)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocated %.1f times per run, want 0", allocs)
	}
}

func TestWriters(t *testing.T) {
	r := New(2)
	r.InitLinks(2, nil)
	r.AddPhase(0, PhaseTransfer, 1600)
	r.Count(0, CtrMPBReads)
	r.LinkTransfer(0, 8, 0)
	var zero [NumPhases]int64
	r.RecordCollective("allreduce[ring]", 1600, zero, r.PhaseRow(0))
	s := r.Snapshot()

	var jsonBuf bytes.Buffer
	if err := s.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON output does not parse back: %v", err)
	}
	if back.Cores[0].Phases["transfer"] != 1600 {
		t.Error("JSON round trip lost the transfer phase")
	}

	var csvBuf bytes.Buffer
	if err := s.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if lines[0] != "section,id,metric,value" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.Contains(csvBuf.String(), "phase,0,transfer,1600") {
		t.Error("CSV missing the phase row")
	}

	var tblBuf bytes.Buffer
	if err := s.WriteTable(&tblBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phase split", "mpb-reads", "allreduce[ring]"} {
		if !strings.Contains(tblBuf.String(), want) {
			t.Errorf("table output missing %q", want)
		}
	}
}
