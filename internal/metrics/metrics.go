// Package metrics is the simulator's observability layer: a
// zero-allocation-on-hot-path counter/histogram registry keyed by
// (core, directed mesh link, protocol phase).
//
// The paper's argument is latency-structural — flag-handshake round
// trips, mesh link contention, per-call software overhead — so the
// registry splits every core's virtual time into disjoint protocol
// phases (flag-wait, flag-sync, MPB transfer, private memory, software
// overhead, compute), counts the events behind each phase (MPB
// reads/writes, flag probes and test-and-set spins, cache hits/misses,
// request postings), and tracks per-directed-link busy and queued time
// on the mesh. A per-collective breakdown (one row per
// "allreduce[ring]"-style span) attributes those phases to individual
// collective calls, which is what the EXPERIMENTS.md "Where the cycles
// go" table is generated from.
//
// Recording never advances virtual time and never allocates on the hot
// path: phase and counter updates are increments into dense arrays
// indexed by core, phase and link; only the once-per-collective-call
// breakdown touches a map. Enabling metrics therefore cannot perturb a
// simulation — runs with and without a registry installed produce
// bit-identical virtual-time results (asserted by the determinism tests
// in internal/bench and the root package).
//
// A Registry is mutable state owned by one chip; Snapshot() freezes it
// into an exportable Snapshot with JSON, flat-CSV and human-readable
// table writers (see snapshot.go). Chrome-trace export of the span
// timeline lives in internal/trace.
package metrics

import (
	"math/bits"

	"scc/internal/simtime"
)

// Phase classifies where a core's virtual time went. Phases are
// disjoint: every tick a simulated program is charged lands in at most
// one phase, so per-core phase sums are directly comparable.
type Phase uint8

// The protocol phases.
const (
	// PhaseFlagWait is time spent blocked in WaitFlag / WaitFlagAny /
	// TASAcquire — the paper's rcce_wait_until time. The interval runs
	// from wait entry to wake-up, so it includes the probe reads issued
	// while blocked (exactly matching the "wait-*" trace spans).
	PhaseFlagWait Phase = iota
	// PhaseFlagSync is unblocked flag traffic: SetFlag, ProbeFlag,
	// test-and-set probes, and waits that found their flag already set.
	PhaseFlagSync
	// PhaseTransfer is bulk MPB data movement (MPBRead/MPBWrite line
	// transactions, including mesh link time and queueing).
	PhaseTransfer
	// PhaseMemory is private-memory time (L1/L2 hits, DRAM misses).
	PhaseMemory
	// PhaseOverhead is communication-library software time: per-call
	// entry costs, request management, partial-line penalties,
	// put/get copy loops, checksums and retransmission bookkeeping.
	PhaseOverhead
	// PhaseCompute is application compute (and the FP work of
	// reductions) charged through Core.ComputeCycles / Core.Compute.
	PhaseCompute

	NumPhases int = iota
)

var phaseNames = [NumPhases]string{
	"flag-wait", "flag-sync", "transfer", "memory", "overhead", "compute",
}

// String returns the stable snapshot/CSV name of the phase.
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "phase?"
}

// PhaseNames lists the phase names in Phase order.
func PhaseNames() []string { return append([]string(nil), phaseNames[:]...) }

// Counter identifies one per-core event counter.
type Counter uint8

// The per-core counters. Tick-valued counters (SendTicks, RecvTicks,
// PutTicks, GetTicks) measure inclusive intervals of the corresponding
// operations; unlike phases they overlap (a Send interval contains
// transfer, flag and overhead time), so they do not sum with anything.
const (
	CtrMPBReads Counter = iota
	CtrMPBWrites
	CtrMPBBytesRead
	CtrMPBBytesWritten
	CtrFlagSets
	CtrFlagProbes // probe reads, incl. every probe inside wait loops
	CtrBlockedWaits
	CtrTASProbes
	CtrL1Hits
	CtrL1Misses
	CtrL2Hits
	CtrL2Misses
	CtrReqsPosted // non-blocking requests posted (isend/irecv)
	CtrReqWaitRounds
	CtrPendingReqsMax // high-water mark of iRCCE's pending list (max, not sum)
	CtrSlotDrains     // lwnb posts that had to drain the busy send slot
	CtrSends
	CtrRecvs
	CtrSendTicks
	CtrRecvTicks
	CtrPuts
	CtrGets
	CtrPutTicks
	CtrGetTicks
	// Self-healing runtime counters (see internal/core/selfheal.go):
	// detector transitions, outcome votes, committed membership
	// agreements and collective re-executions.
	CtrSuspicions
	CtrSuspicionClears
	CtrVotes
	CtrVotesFailed
	CtrReconfigs
	CtrReexecs

	NumCounters int = iota
)

var counterNames = [NumCounters]string{
	"mpb-reads", "mpb-writes", "mpb-bytes-read", "mpb-bytes-written",
	"flag-sets", "flag-probes", "blocked-waits", "tas-probes",
	"l1-hits", "l1-misses", "l2-hits", "l2-misses",
	"reqs-posted", "req-wait-rounds", "pending-reqs-max", "slot-drains",
	"sends", "recvs", "send-ticks", "recv-ticks",
	"puts", "gets", "put-ticks", "get-ticks",
	"suspicions", "suspicion-clears", "votes", "votes-failed",
	"reconfigs", "reexecs",
}

// String returns the stable snapshot/CSV name of the counter.
func (c Counter) String() string {
	if int(c) < NumCounters {
		return counterNames[c]
	}
	return "counter?"
}

// linkState accumulates one directed mesh link's occupancy.
type linkState struct {
	busy      int64 // ticks the link was serializing packet bodies
	queued    int64 // ticks packet heads waited behind a busy link
	transfers int64 // packet traversals of this link
	contended int64 // traversals that queued
}

// maxHopBuckets bounds the hop histogram (the 6x4 mesh's longest XY
// route is 8 hops; 16 leaves headroom for bigger geometries).
const maxHopBuckets = 16

// numWaitBuckets bounds the log2 blocked-wait-duration histogram.
const numWaitBuckets = 40

// CollectiveStats accumulates the per-collective phase breakdown. One
// entry aggregates every per-core call of one (op, algorithm) pair,
// e.g. "allreduce[ring]": Calls counts per-core invocations (a
// full-chip collective adds NumCores calls), Ticks sums the inclusive
// per-core durations, and Phase sums the per-phase deltas observed
// across the calls.
type CollectiveStats struct {
	Calls int64
	Ticks int64
	Phase [NumPhases]int64
}

// Registry is the mutable per-chip metrics store. It is not safe for
// concurrent use; the simulation engine serializes all core processes,
// and each benchmark cell owns a private chip + registry.
type Registry struct {
	phase    [][NumPhases]int64   // [core][phase] ticks
	counters [][NumCounters]int64 // [core][counter]

	links     []linkState
	linkLabel func(int) string

	hopHist  [maxHopBuckets]int64  // transfers by route length
	waitHist [numWaitBuckets]int64 // blocked waits by log2(ticks)

	collectives map[string]*CollectiveStats
}

// New creates a registry for a chip with numCores cores. Link state is
// sized later by InitLinks (the mesh knows its own geometry).
func New(numCores int) *Registry {
	return &Registry{
		phase:       make([][NumPhases]int64, numCores),
		counters:    make([][NumCounters]int64, numCores),
		collectives: make(map[string]*CollectiveStats),
	}
}

// NumCores returns the registered core count.
func (r *Registry) NumCores() int { return len(r.phase) }

// InitLinks sizes the per-directed-link arrays and installs the label
// function used when snapshotting (index -> "(x,y)E"-style name).
// Called once by the mesh when the registry is attached.
func (r *Registry) InitLinks(n int, label func(int) string) {
	if len(r.links) != n {
		r.links = make([]linkState, n)
	}
	r.linkLabel = label
}

// AddPhase accrues d ticks of core's time to phase ph.
func (r *Registry) AddPhase(core int, ph Phase, d simtime.Duration) {
	r.phase[core][ph] += int64(d)
}

// PhaseRow returns a copy of core's per-phase tick row (used by the
// collective-span bookkeeping to compute before/after deltas).
func (r *Registry) PhaseRow(core int) [NumPhases]int64 { return r.phase[core] }

// Count increments core's counter c by 1.
func (r *Registry) Count(core int, c Counter) { r.counters[core][c]++ }

// CountN increments core's counter c by n.
func (r *Registry) CountN(core int, c Counter, n int64) { r.counters[core][c] += n }

// SetMax raises core's counter c to v if v is larger (gauge-style
// high-water marks such as CtrPendingReqsMax).
func (r *Registry) SetMax(core int, c Counter, v int64) {
	if v > r.counters[core][c] {
		r.counters[core][c] = v
	}
}

// LinkTransfer records one packet traversal of directed link li that
// serialized for busy ticks and waited queued ticks behind earlier
// traffic (queued == 0 for an uncontended crossing).
func (r *Registry) LinkTransfer(li int, busy, queued simtime.Duration) {
	l := &r.links[li]
	l.transfers++
	l.busy += int64(busy)
	if queued > 0 {
		l.contended++
		l.queued += int64(queued)
	}
}

// AddHops records one end-to-end transfer of the given route length.
func (r *Registry) AddHops(hops int) {
	if hops >= maxHopBuckets {
		hops = maxHopBuckets - 1
	}
	r.hopHist[hops]++
}

// ObserveWait records one blocked flag wait of duration d in the log2
// wait histogram.
func (r *Registry) ObserveWait(d simtime.Duration) {
	b := bits.Len64(uint64(d))
	if b >= numWaitBuckets {
		b = numWaitBuckets - 1
	}
	r.waitHist[b]++
}

// RecordCollective folds one core's traversal of one collective span
// into the per-(op,algorithm) breakdown: d is the inclusive duration
// and before/after are PhaseRow snapshots taken around the call. This
// is the only registry path that touches a map; it runs once per
// collective call per core, never per line or per probe.
func (r *Registry) RecordCollective(label string, d simtime.Duration, before, after [NumPhases]int64) {
	s := r.collectives[label]
	if s == nil {
		s = &CollectiveStats{}
		r.collectives[label] = s
	}
	s.Calls++
	s.Ticks += int64(d)
	for i := range s.Phase {
		s.Phase[i] += after[i] - before[i]
	}
}
