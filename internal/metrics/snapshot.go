package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"scc/internal/simtime"
)

// Snapshot is a frozen, exportable view of a Registry. All time values
// are virtual-time ticks (1 tick = 0.625 ns; 1600 ticks = 1 µs).
type Snapshot struct {
	// Cores holds one row per core, in core order.
	Cores []CoreMetrics `json:"cores"`
	// Links lists directed mesh links that carried at least one
	// transfer, in link-index order.
	Links []LinkMetrics `json:"links,omitempty"`
	// HopHist counts end-to-end mesh transfers by route length; index
	// is the hop count.
	HopHist []int64 `json:"hopHistogram,omitempty"`
	// WaitHist counts blocked flag waits by duration bucket; bucket i
	// holds waits with 2^(i-1) <= ticks < 2^i.
	WaitHist []int64 `json:"waitHistogram,omitempty"`
	// Collectives holds the per-(op,algorithm) phase breakdown, sorted
	// by label.
	Collectives []CollectiveMetrics `json:"collectives,omitempty"`
	// Totals aggregates phases and counters over all cores.
	Totals AggregateMetrics `json:"totals"`
}

// CoreMetrics is one core's phase split and event counters.
type CoreMetrics struct {
	Core     int              `json:"core"`
	Phases   map[string]int64 `json:"phases"`
	Counters map[string]int64 `json:"counters"`
}

// LinkMetrics is one directed mesh link's occupancy record.
type LinkMetrics struct {
	Link            string `json:"link"`
	BusyTicks       int64  `json:"busyTicks"`
	QueuedTicks     int64  `json:"queuedTicks"`
	Transfers       int64  `json:"transfers"`
	QueuedTransfers int64  `json:"queuedTransfers"`
}

// CollectiveMetrics is the aggregated breakdown of one collective
// label ("allreduce[ring]"): Calls per-core invocations, Ticks summed
// inclusive duration, Phases summed per-phase deltas.
type CollectiveMetrics struct {
	Label  string           `json:"label"`
	Calls  int64            `json:"calls"`
	Ticks  int64            `json:"ticks"`
	Phases map[string]int64 `json:"phases"`
}

// AggregateMetrics sums phases and counters chip-wide.
type AggregateMetrics struct {
	Phases   map[string]int64 `json:"phases"`
	Counters map[string]int64 `json:"counters"`
}

// Snapshot freezes the registry's current state. The registry remains
// usable (and keeps accumulating) afterwards.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Totals: AggregateMetrics{
			Phases:   map[string]int64{},
			Counters: map[string]int64{},
		},
	}
	for id := range r.phase {
		cm := CoreMetrics{
			Core:     id,
			Phases:   map[string]int64{},
			Counters: map[string]int64{},
		}
		for p, v := range r.phase[id] {
			cm.Phases[Phase(p).String()] = v
			s.Totals.Phases[Phase(p).String()] += v
		}
		for c, v := range r.counters[id] {
			if v == 0 {
				continue
			}
			cm.Counters[Counter(c).String()] = v
			if Counter(c) == CtrPendingReqsMax {
				if v > s.Totals.Counters[Counter(c).String()] {
					s.Totals.Counters[Counter(c).String()] = v
				}
			} else {
				s.Totals.Counters[Counter(c).String()] += v
			}
		}
		s.Cores = append(s.Cores, cm)
	}
	for li, l := range r.links {
		if l.transfers == 0 {
			continue
		}
		label := strconv.Itoa(li)
		if r.linkLabel != nil {
			label = r.linkLabel(li)
		}
		s.Links = append(s.Links, LinkMetrics{
			Link:            label,
			BusyTicks:       l.busy,
			QueuedTicks:     l.queued,
			Transfers:       l.transfers,
			QueuedTransfers: l.contended,
		})
	}
	s.HopHist = trimTail(r.hopHist[:])
	s.WaitHist = trimTail(r.waitHist[:])
	labels := make([]string, 0, len(r.collectives))
	for label := range r.collectives {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		cs := r.collectives[label]
		cm := CollectiveMetrics{
			Label:  label,
			Calls:  cs.Calls,
			Ticks:  cs.Ticks,
			Phases: map[string]int64{},
		}
		for p, v := range cs.Phase {
			cm.Phases[Phase(p).String()] = v
		}
		s.Collectives = append(s.Collectives, cm)
	}
	return s
}

// trimTail drops trailing zero buckets, returning nil for an all-zero
// histogram (so empty histograms vanish from JSON output).
func trimTail(h []int64) []int64 {
	last := -1
	for i, v := range h {
		if v != 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	return append([]int64(nil), h[:last+1]...)
}

// WriteJSON emits the snapshot as indented JSON. Output is
// deterministic: struct fields are fixed and encoding/json sorts map
// keys.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV emits the snapshot as flat CSV with the fixed header
// section,id,metric,value — one row per (core, phase), (core, counter),
// (link, field), histogram bucket and (collective, field/phase).
func (s *Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	row := func(section, id, metric string, v int64) {
		cw.Write([]string{section, id, metric, strconv.FormatInt(v, 10)})
	}
	cw.Write([]string{"section", "id", "metric", "value"})
	for _, c := range s.Cores {
		id := strconv.Itoa(c.Core)
		for _, p := range phaseNames {
			row("phase", id, p, c.Phases[p])
		}
		for _, name := range counterNames {
			if v := c.Counters[name]; v != 0 {
				row("counter", id, name, v)
			}
		}
	}
	for _, l := range s.Links {
		row("link", l.Link, "busy-ticks", l.BusyTicks)
		row("link", l.Link, "queued-ticks", l.QueuedTicks)
		row("link", l.Link, "transfers", l.Transfers)
		row("link", l.Link, "queued-transfers", l.QueuedTransfers)
	}
	for hops, v := range s.HopHist {
		row("hops", strconv.Itoa(hops), "transfers", v)
	}
	for b, v := range s.WaitHist {
		if v != 0 {
			row("wait-log2", strconv.Itoa(b), "waits", v)
		}
	}
	for _, c := range s.Collectives {
		row("collective", c.Label, "calls", c.Calls)
		row("collective", c.Label, "ticks", c.Ticks)
		for _, p := range phaseNames {
			row("collective", c.Label, p, c.Phases[p])
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable renders a human-readable summary: the chip-wide phase
// split, headline counters, the most contended links, and the
// per-collective breakdown with phase percentages.
func (s *Snapshot) WriteTable(w io.Writer) error {
	var totalPhase int64
	for _, p := range phaseNames {
		totalPhase += s.Totals.Phases[p]
	}
	fmt.Fprintf(w, "phase split (all %d cores, %s total attributed):\n",
		len(s.Cores), ticksStr(totalPhase))
	for _, p := range phaseNames {
		v := s.Totals.Phases[p]
		fmt.Fprintf(w, "  %-10s %14s  %5.1f%%\n", p, ticksStr(v), pct(v, totalPhase))
	}

	fmt.Fprintf(w, "counters:\n")
	for _, name := range counterNames {
		if v := s.Totals.Counters[name]; v != 0 {
			fmt.Fprintf(w, "  %-18s %12d\n", name, v)
		}
	}

	if len(s.Links) > 0 {
		links := append([]LinkMetrics(nil), s.Links...)
		sort.SliceStable(links, func(i, j int) bool { return links[i].QueuedTicks > links[j].QueuedTicks })
		n := len(links)
		if n > 8 {
			n = 8
		}
		fmt.Fprintf(w, "busiest links (of %d active, by queued time):\n", len(s.Links))
		fmt.Fprintf(w, "  %-8s %12s %12s %10s %10s\n", "link", "busy", "queued", "transfers", "contended")
		for _, l := range links[:n] {
			fmt.Fprintf(w, "  %-8s %12s %12s %10d %10d\n",
				l.Link, ticksStr(l.BusyTicks), ticksStr(l.QueuedTicks), l.Transfers, l.QueuedTransfers)
		}
	}

	if len(s.Collectives) > 0 {
		fmt.Fprintf(w, "collectives (avg ticks/call; phase %% of attributed time):\n")
		fmt.Fprintf(w, "  %-22s %6s %12s", "label", "calls", "avg/call")
		for _, p := range phaseNames {
			fmt.Fprintf(w, " %9s", p)
		}
		fmt.Fprintln(w)
		for _, c := range s.Collectives {
			var attributed int64
			for _, p := range phaseNames {
				attributed += c.Phases[p]
			}
			fmt.Fprintf(w, "  %-22s %6d %12s", c.Label, c.Calls, ticksStr(avg(c.Ticks, c.Calls)))
			for _, p := range phaseNames {
				fmt.Fprintf(w, " %8.1f%%", pct(c.Phases[p], attributed))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

func avg(sum, n int64) int64 {
	if n == 0 {
		return 0
	}
	return sum / n
}

func pct(v, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}

// ticksStr renders a tick count with its microsecond value.
func ticksStr(v int64) string {
	return fmt.Sprintf("%.1fus", simtime.Duration(v).Micros())
}
