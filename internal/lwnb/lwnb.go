// Package lwnb implements the paper's lightweight non-blocking
// primitives (Sec. IV-B): the same wire protocol as iRCCE, but with at
// most one outstanding send and one outstanding receive per core, held in
// fixed slots. No request list, no dynamic memory - the "expensive
// listkeeping" is gone, which is where the additional ~65% Allreduce
// speedup over iRCCE comes from.
package lwnb

import (
	"fmt"

	"scc/internal/metrics"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

// Costs returns the lightweight library's software-overhead profile for a
// model: fixed slots, no lists, no allocation.
func Costs(m *timing.Model) rcce.NBCosts {
	return rcce.NBCosts{
		Post:     m.OverheadLightweightPost,
		Wait:     m.OverheadLightweightWait,
		Progress: m.OverheadLightweightWait / 4,
	}
}

// Lib is a per-UE instance of the lightweight library. Its two slots are
// the entire request state: reposting overwrites the slot record in
// place (the modeled library's "no dynamic memory" discipline taken
// literally), so a returned *Request is valid until the next post of
// the same direction.
type Lib struct {
	ue    *rcce.UE
	costs rcce.NBCosts

	sendReq, recvReq rcce.Request
	sendSlot         *rcce.Request // nil until first ISend, then &sendReq
	recvSlot         *rcce.Request // nil until first IRecv, then &recvReq
}

// New creates the library instance for one UE.
func New(ue *rcce.UE) *Lib {
	return &Lib{ue: ue, costs: Costs(ue.Core().Chip().Model)}
}

// SendRobust / RecvRobust / ExchangeRobust run the hardened protocol
// (sequence numbers, checksums, retransmit with backoff) at the
// lightweight library's software-overhead profile.
func (l *Lib) SendRobust(pol rcce.Policy, dest int, addr scc.Addr, nBytes int) error {
	return l.ue.SendRobust(l.costs, pol, dest, addr, nBytes)
}

func (l *Lib) RecvRobust(pol rcce.Policy, src int, addr scc.Addr, nBytes int) error {
	return l.ue.RecvRobust(l.costs, pol, src, addr, nBytes)
}

func (l *Lib) ExchangeRobust(pol rcce.Policy, dest int, sAddr scc.Addr, sBytes int, src int, rAddr scc.Addr, rBytes int) error {
	return l.ue.ExchangeRobust(l.costs, pol, dest, sAddr, sBytes, src, rAddr, rBytes)
}

// UE returns the underlying unit of execution.
func (l *Lib) UE() *rcce.UE { return l.ue }

// ISend posts the (single) non-blocking send. It panics if a send is
// already outstanding - the restriction that buys the low overhead.
func (l *Lib) ISend(dest int, addr scc.Addr, nBytes int) *rcce.Request {
	if l.sendSlot != nil && !l.sendSlot.Done() {
		panic(fmt.Sprintf("lwnb: UE %d posted a second concurrent send", l.ue.ID()))
	}
	r := l.ue.PostSendInto(&l.sendReq, l.costs, dest, addr, nBytes)
	l.sendSlot = r
	l.observeOutstanding()
	return r
}

// IRecv posts the (single) non-blocking receive.
func (l *Lib) IRecv(src int, addr scc.Addr, nBytes int) *rcce.Request {
	if l.recvSlot != nil && !l.recvSlot.Done() {
		panic(fmt.Sprintf("lwnb: UE %d posted a second concurrent receive", l.ue.ID()))
	}
	r := l.ue.PostRecvInto(&l.recvReq, l.costs, src, addr, nBytes)
	l.recvSlot = r
	l.observeOutstanding()
	return r
}

// observeOutstanding records the outstanding-request high-water mark
// (at most 2: one send slot + one receive slot) in the same metrics
// counter iRCCE uses for its pending list, making the two libraries'
// request-management state directly comparable in a snapshot.
func (l *Lib) observeOutstanding() {
	reg := l.ue.Core().Metrics()
	if reg == nil {
		return
	}
	var n int64
	if l.sendSlot != nil && !l.sendSlot.Done() {
		n++
	}
	if l.recvSlot != nil && !l.recvSlot.Done() {
		n++
	}
	reg.SetMax(l.ue.Core().ID, metrics.CtrPendingReqsMax, n)
}

// Wait blocks until r completes.
func (l *Lib) Wait(r *rcce.Request) { l.ue.Wait(l.costs, r) }

// WaitAll blocks until all given requests complete, progressing whichever
// can move first.
func (l *Lib) WaitAll(reqs ...*rcce.Request) { l.ue.WaitAll(l.costs, reqs...) }

// Test reports whether r completed, making progress if possible.
func (l *Lib) Test(r *rcce.Request) bool {
	if !r.Done() {
		r.TryProgress(l.costs)
	}
	return r.Done()
}
