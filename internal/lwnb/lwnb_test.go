package lwnb

import (
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

func TestLightweightDelivers(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	n := 33
	var got []float64
	chip.LaunchOne(10, func(core *scc.Core) {
		lib := New(comm.UE(10))
		a := core.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = -float64(i)
		}
		core.WriteF64s(a, v)
		lib.Wait(lib.ISend(20, a, 8*n))
	})
	chip.LaunchOne(20, func(core *scc.Core) {
		lib := New(comm.UE(20))
		a := core.AllocF64(n)
		lib.Wait(lib.IRecv(10, a, 8*n))
		got = make([]float64, n)
		core.ReadF64s(a, got)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != -float64(i) {
			t.Fatalf("payload wrong at %d", i)
		}
	}
}

func TestSecondConcurrentSendPanics(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.LaunchOne(0, func(core *scc.Core) {
		lib := New(comm.UE(0))
		a := core.AllocF64(4)
		lib.ISend(1, a, 32)
		lib.ISend(2, a, 32) // second outstanding send: must panic
	})
	chip.LaunchOne(1, func(core *scc.Core) {
		lib := New(comm.UE(1))
		a := core.AllocF64(4)
		lib.Wait(lib.IRecv(0, a, 32))
	})
	if err := chip.Run(); err == nil {
		t.Fatal("expected the one-slot restriction to fail the simulation")
	}
}

func TestSlotReusableAfterCompletion(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	rounds := 0
	chip.LaunchOne(0, func(core *scc.Core) {
		lib := New(comm.UE(0))
		a := core.AllocF64(4)
		for i := 0; i < 8; i++ {
			lib.Wait(lib.ISend(1, a, 32))
		}
		rounds = 8
	})
	chip.LaunchOne(1, func(core *scc.Core) {
		lib := New(comm.UE(1))
		a := core.AllocF64(4)
		for i := 0; i < 8; i++ {
			lib.Wait(lib.IRecv(0, a, 32))
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != 8 {
		t.Fatal("rounds incomplete")
	}
}

func TestLightweightCheaperThanIRCCEPingPong(t *testing.T) {
	// Same protocol, lower software overhead: a lightweight ping-pong of
	// small messages must beat an iRCCE-cost ping-pong (Sec. IV-B).
	run := func(post, wait int64) simtime.Time {
		m := timing.Default()
		chip := scc.New(m)
		comm := rcce.NewComm(chip)
		costs := rcce.NBCosts{Post: post, Wait: wait, Progress: wait / 4}
		chip.LaunchOne(0, func(core *scc.Core) {
			ue := comm.UE(0)
			a := core.AllocF64(8)
			for i := 0; i < 20; i++ {
				ue.Wait(costs, ue.PostSend(costs, 1, a, 64))
				ue.Wait(costs, ue.PostRecv(costs, 1, a, 64))
			}
		})
		chip.LaunchOne(1, func(core *scc.Core) {
			ue := comm.UE(1)
			a := core.AllocF64(8)
			for i := 0; i < 20; i++ {
				ue.Wait(costs, ue.PostRecv(costs, 0, a, 64))
				ue.Wait(costs, ue.PostSend(costs, 0, a, 64))
			}
		})
		if err := chip.Run(); err != nil {
			t.Fatal(err)
		}
		return chip.Now()
	}
	m := timing.Default()
	ircceTime := run(m.OverheadIRCCEPost, m.OverheadIRCCEWait)
	lwTime := run(m.OverheadLightweightPost, m.OverheadLightweightWait)
	if lwTime >= ircceTime {
		t.Fatalf("lightweight (%v) not faster than iRCCE (%v)", lwTime, ircceTime)
	}
}

func TestWaitAllMixedSendRecv(t *testing.T) {
	// One outstanding send plus one receive, waited together - the exact
	// usage pattern of the ring exchange (Fig. 5).
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	var got []float64
	chip.LaunchOne(4, func(core *scc.Core) {
		lib := New(comm.UE(4))
		src := core.AllocF64(8)
		dst := core.AllocF64(8)
		core.WriteF64s(src, []float64{4, 4, 4, 4, 4, 4, 4, 4})
		s := lib.ISend(5, src, 64)
		r := lib.IRecv(5, dst, 64)
		lib.WaitAll(s, r)
		got = make([]float64, 8)
		core.ReadF64s(dst, got)
	})
	chip.LaunchOne(5, func(core *scc.Core) {
		lib := New(comm.UE(5))
		src := core.AllocF64(8)
		dst := core.AllocF64(8)
		core.WriteF64s(src, []float64{5, 5, 5, 5, 5, 5, 5, 5})
		s := lib.ISend(4, src, 64)
		r := lib.IRecv(4, dst, 64)
		lib.WaitAll(s, r)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 5 {
			t.Fatalf("element %d = %v, want 5", i, v)
		}
	}
}

func TestTestProgressesRequests(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.LaunchOne(0, func(core *scc.Core) {
		lib := New(comm.UE(0))
		a := core.AllocF64(2)
		r := lib.IRecv(1, a, 16)
		polls := 0
		for !lib.Test(r) {
			polls++
			core.ComputeCycles(2000)
			if polls > 10000 {
				t.Error("Test never completed")
				return
			}
		}
		if polls == 0 {
			t.Error("request completed before the sender even started")
		}
	})
	chip.LaunchOne(1, func(core *scc.Core) {
		lib := New(comm.UE(1))
		core.Compute(simtime.Microseconds(100))
		a := core.AllocF64(2)
		lib.Wait(lib.ISend(0, a, 16))
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
}
