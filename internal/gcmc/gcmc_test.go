package gcmc

import (
	"math"
	"testing"

	"scc/internal/core"
	"scc/internal/rcce"
	"scc/internal/rckmpi"
	"scc/internal/scc"
	"scc/internal/timing"
)

// testParams returns a scaled-down workload that keeps tests fast while
// preserving the structure (multi-atom molecules, Ewald k-vectors).
func testParams() Params {
	p := DefaultParams()
	p.NumParticles = 96
	p.NumKVecs = 64
	p.KMax = 4
	p.Cycles = 6
	return p
}

// runAll runs one GCMC simulation on all 48 cores under the given config
// and returns every core's result.
func runAll(t *testing.T, cfg core.Config, p Params) []Result {
	t.Helper()
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	results := make([]Result, chip.NumCores())
	chip.Launch(func(c *scc.Core) {
		ctx := core.NewCtx(comm.UE(c.ID), cfg)
		sim := New(c, CoreStack{Ctx: ctx}, comm.NumUEs(), p)
		results[c.ID] = sim.Run()
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	return results
}

func TestKVectorGeneration(t *testing.T) {
	ks := makeKVectors(12.0, 0.45, 8, 276)
	if len(ks) != 276 {
		t.Fatalf("got %d k-vectors, want 276", len(ks))
	}
	seen := map[[3]int]bool{}
	for i, k := range ks {
		if k.K2 <= 0 {
			t.Fatalf("k-vector %d has non-positive |k|^2", i)
		}
		if k.Coeff <= 0 {
			t.Fatalf("k-vector %d has non-positive coefficient", i)
		}
		if seen[k.N] {
			t.Fatalf("duplicate k-vector %v", k.N)
		}
		seen[k.N] = true
		// Half-space representative: first nonzero component positive.
		n := k.N
		if n[0] < 0 || (n[0] == 0 && (n[1] < 0 || (n[1] == 0 && n[2] <= 0))) {
			t.Fatalf("k-vector %v not in the canonical half space", n)
		}
		if i > 0 && ks[i].K2 < ks[i-1].K2 {
			t.Fatalf("k-vectors not sorted by magnitude at %d", i)
		}
	}
}

func TestPaperKVectorCountIs552Doubles(t *testing.T) {
	p := DefaultParams()
	if p.NumKVecs != 276 {
		t.Fatalf("default KMAXVECS = %d, want the paper's 276", p.NumKVecs)
	}
	// 276 complex coefficients = 552 doubles in the Allreduce.
	if 2*p.NumKVecs != 552 {
		t.Fatal("allreduce vector is not 552 doubles")
	}
}

func TestAllCoresAgreeOnPhysics(t *testing.T) {
	res := runAll(t, core.ConfigBalanced, testParams())
	first := res[0]
	for id, r := range res {
		if r.FinalEnergy != first.FinalEnergy || r.FinalN != first.FinalN ||
			r.Stats != first.Stats {
			t.Fatalf("core %d diverged: %+v vs %+v", id, r, first)
		}
	}
	if first.Stats.Attempted != testParams().Cycles {
		t.Fatalf("attempted %d moves, want %d", first.Stats.Attempted, testParams().Cycles)
	}
	if math.IsNaN(first.FinalEnergy) || math.IsInf(first.FinalEnergy, 0) {
		t.Fatalf("energy not finite: %v", first.FinalEnergy)
	}
}

func TestPhysicsIdenticalAcrossStacks(t *testing.T) {
	// The communication stack must not change the physics, only the
	// timing (the paper's Fig. 10 bars all compute the same system).
	p := testParams()
	a := runAll(t, core.ConfigBlocking, p)[0]
	b := runAll(t, core.ConfigMPB, p)[0]
	if a.FinalEnergy != b.FinalEnergy || a.FinalN != b.FinalN || a.Stats != b.Stats {
		t.Fatalf("physics depends on the stack: %+v vs %+v", a, b)
	}
	if a.WallTime <= b.WallTime {
		t.Fatalf("blocking (%v) should be slower than MPB-based (%v)", a.WallTime, b.WallTime)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := testParams()
	a := runAll(t, core.ConfigLightweight, p)[0]
	b := runAll(t, core.ConfigLightweight, p)[0]
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesTrajectory(t *testing.T) {
	p := testParams()
	a := runAll(t, core.ConfigBalanced, p)[0]
	p.Seed = 99
	b := runAll(t, core.ConfigBalanced, p)[0]
	if a.FinalEnergy == b.FinalEnergy && a.Stats == b.Stats {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestEnergyBookkeepingConsistent(t *testing.T) {
	// The incrementally tracked energy (Algorithm 1's en_old) must match
	// a from-scratch recomputation within floating-point tolerance.
	p := testParams()
	p.Cycles = 10
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	var drift, scale float64
	chip.Launch(func(c *scc.Core) {
		ctx := core.NewCtx(comm.UE(c.ID), core.ConfigBalanced)
		sim := New(c, CoreStack{Ctx: ctx}, comm.NumUEs(), p)
		res := sim.Run()
		d := sim.EnergyDriftCheck()
		if c.ID == 0 {
			drift = d
			scale = math.Abs(res.FinalEnergy)
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if scale < 1 {
		scale = 1
	}
	if math.Abs(drift)/scale > 1e-9 {
		t.Fatalf("incremental energy drifted by %g (scale %g)", drift, scale)
	}
}

func TestGCMCMovesChangeParticleCount(t *testing.T) {
	// With a generous Adams B, insertions should be accepted over a
	// longer run, changing N.
	p := testParams()
	p.Cycles = 40
	p.AdamsB = 6
	res := runAll(t, core.ConfigBalanced, p)[0]
	if res.Stats.AcceptedInserts == 0 && res.Stats.AcceptedDeletes == 0 {
		t.Fatalf("no grand-canonical moves accepted in %d cycles: %+v", p.Cycles, res.Stats)
	}
	if res.FinalN < 0 {
		t.Fatalf("negative particle count %d", res.FinalN)
	}
}

func TestAllreduceCountMatchesAlgorithm(t *testing.T) {
	// Every displace/insert/delete cycle calls LongEn twice
	// (Algorithm 1 lines 5 and 8... except delete which skips the
	// removed particle's short term), plus once in InitialEnergy.
	p := testParams()
	res := runAll(t, core.ConfigBalanced, p)[0]
	want := 2*p.Cycles + 1
	if res.CommAllreduce != want {
		t.Fatalf("552-double allreduces = %d, want %d", res.CommAllreduce, want)
	}
}

func TestBlockingStackSpendsSubstantialTimeWaiting(t *testing.T) {
	// Sec. IV-A: profiling showed cores spend a large share of time in
	// rcce_wait_until under the blocking stack; the optimized stacks
	// reduce it sharply.
	p := testParams()
	blk := runAll(t, core.ConfigBlocking, p)[0]
	bal := runAll(t, core.ConfigBalanced, p)[0]
	blkFrac := float64(blk.FlagWaitTime) / float64(blk.WallTime)
	balFrac := float64(bal.FlagWaitTime) / float64(bal.WallTime)
	if blkFrac < 0.10 {
		t.Fatalf("blocking wait fraction %.2f implausibly low", blkFrac)
	}
	if balFrac >= blkFrac {
		t.Fatalf("optimized stack waits more (%.2f) than blocking (%.2f)", balFrac, blkFrac)
	}
}

func TestWrap(t *testing.T) {
	cases := []struct{ x, l, want float64 }{
		{0, 10, 0},
		{3, 10, 3},
		{12, 10, 2},
		{-1, 10, 9},
		{-11, 10, 9},
	}
	for _, c := range cases {
		if got := wrap(c.x, c.l); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("wrap(%v,%v) = %v, want %v", c.x, c.l, got, c.want)
		}
	}
}

func TestMinImage(t *testing.T) {
	if got := minImage(7, 10); got != -3 {
		t.Errorf("minImage(7,10) = %v, want -3", got)
	}
	if got := minImage(-7, 10); got != 3 {
		t.Errorf("minImage(-7,10) = %v, want 3", got)
	}
	if got := minImage(2, 10); got != 2 {
		t.Errorf("minImage(2,10) = %v, want 2", got)
	}
}

func TestGCMCUnderRCKMPI(t *testing.T) {
	// The comparator stack must run the application too (Fig. 10's top
	// bar) and compute identical physics.
	p := testParams()
	p.Cycles = 3
	chipA := scc.New(timing.Default())
	commA := rcce.NewComm(chipA)
	var viaCore Result
	chipA.Launch(func(c *scc.Core) {
		ctx := core.NewCtx(commA.UE(c.ID), core.ConfigBalanced)
		res := New(c, CoreStack{Ctx: ctx}, commA.NumUEs(), p).Run()
		if c.ID == 0 {
			viaCore = res
		}
	})
	if err := chipA.Run(); err != nil {
		t.Fatal(err)
	}

	chipB := scc.New(timing.Default())
	commB := rcce.NewComm(chipB)
	var viaMPI Result
	chipB.Launch(func(c *scc.Core) {
		lib := rckmpi.New(commB.UE(c.ID))
		res := New(c, RCKMPIStack{Lib: lib}, commB.NumUEs(), p).Run()
		if c.ID == 0 {
			viaMPI = res
		}
	})
	if err := chipB.Run(); err != nil {
		t.Fatal(err)
	}
	if viaCore.FinalEnergy != viaMPI.FinalEnergy || viaCore.FinalN != viaMPI.FinalN {
		t.Fatalf("physics differs across stacks: %+v vs %+v", viaCore, viaMPI)
	}
	if viaMPI.WallTime <= viaCore.WallTime {
		t.Fatalf("RCKMPI (%v) should be slower than the optimized stack (%v)",
			viaMPI.WallTime, viaCore.WallTime)
	}
}
