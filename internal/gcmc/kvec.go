package gcmc

import (
	"math"
	"sort"
)

// KVec is one reciprocal-space vector of the Ewald sum.
type KVec struct {
	N     [3]int     // integer lattice coordinates
	K     [3]float64 // 2*pi/L * N
	K2    float64    // |K|^2
	Coeff float64    // exp(-K2/(4 alpha^2)) / K2
}

// makeKVectors generates the count lowest-|k| reciprocal vectors of a
// cubic box with side boxSide, taking one representative per +/-k pair
// (F(-k) is the conjugate of F(k), so half-space suffices - this is why
// the paper's 276 complex coefficients cover the whole sum). kmax bounds
// the per-axis integer search; it panics if the search space is too
// small for count vectors.
func makeKVectors(boxSide, alpha float64, kmax, count int) []KVec {
	twoPiL := 2 * math.Pi / boxSide
	var vecs []KVec
	for nx := 0; nx <= kmax; nx++ {
		for ny := -kmax; ny <= kmax; ny++ {
			for nz := -kmax; nz <= kmax; nz++ {
				// Half space: skip -k twins and the zero vector.
				if nx == 0 && (ny < 0 || (ny == 0 && nz <= 0)) {
					continue
				}
				k := [3]float64{twoPiL * float64(nx), twoPiL * float64(ny), twoPiL * float64(nz)}
				k2 := k[0]*k[0] + k[1]*k[1] + k[2]*k[2]
				vecs = append(vecs, KVec{
					N:     [3]int{nx, ny, nz},
					K:     k,
					K2:    k2,
					Coeff: math.Exp(-k2/(4*alpha*alpha)) / k2,
				})
			}
		}
	}
	if len(vecs) < count {
		panic("gcmc: kmax too small for requested k-vector count")
	}
	sort.Slice(vecs, func(i, j int) bool {
		a, b := vecs[i], vecs[j]
		if a.K2 != b.K2 {
			return a.K2 < b.K2
		}
		if a.N[0] != b.N[0] {
			return a.N[0] < b.N[0]
		}
		if a.N[1] != b.N[1] {
			return a.N[1] < b.N[1]
		}
		return a.N[2] < b.N[2]
	})
	return vecs[:count]
}
