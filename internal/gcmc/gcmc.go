// Package gcmc implements the paper's scientific application: a
// grand-canonical Monte Carlo (GCMC) simulation of a charged
// Lennard-Jones fluid (Adams [14]), parallelized over the SCC's cores
// exactly like the paper's Algorithms 1 and 2:
//
//   - particles (molecules of several atoms) are distributed over the
//     cores; each core evaluates the energy contribution of its local
//     particle set;
//   - the short-range energy is summed with a one-element Allreduce;
//   - the long-range (Ewald reciprocal-space) energy requires a full
//     recomputation after every move and an Allreduce over KMAXVECS=276
//     complex Fourier coefficients, i.e. a 552-double vector - the call
//     that dominates the application's communication time and that the
//     paper's optimizations target;
//   - the accepted/rejected update is broadcast from the owning core
//     (Algorithm 1, line 13).
//
// The physics runs for real (positions, Ewald sums, Metropolis
// acceptance); the simulated P54C time for the arithmetic is charged
// through the timing model's flop/trig costs.
package gcmc

import (
	"fmt"
	"math"
	"math/rand"

	"scc/internal/scc"
	"scc/internal/simtime"
)

// Collectives is the communication interface the application needs; it
// is implemented by adapters over the optimized collectives (package
// core) and over RCKMPI (package rckmpi) - see stacks.go.
type Collectives interface {
	// Allreduce sums n float64 values element-wise across all cores.
	Allreduce(src, dst scc.Addr, n int)
	// Broadcast distributes n float64 values from root to all cores.
	Broadcast(root int, addr scc.Addr, n int)
	// Barrier synchronizes all cores.
	Barrier()
}

// Params configures a GCMC run. DefaultParams matches the paper's
// communication signature (276 complex coefficients -> 552 doubles).
type Params struct {
	NumParticles     int     // initial particle (molecule) count
	AtomsPerParticle int     // atoms per rigid molecule
	BoxSide          float64 // cubic box side L (reduced units)
	Beta             float64 // inverse temperature 1/kT
	AdamsB           float64 // Adams B parameter for insert/delete
	Alpha            float64 // Ewald splitting parameter
	KMax             int     // per-axis reciprocal-space cutoff
	NumKVecs         int     // KMAXVECS; the paper's value is 276
	Cycles           int     // GCMC moves to attempt
	MaxDisplacement  float64 // translation move amplitude
	Seed             int64   // RNG seed (replicated across cores)
}

// DefaultParams returns a configuration matching the paper's workload:
// 276 k-vectors (552-double Allreduce), 3-atom molecules, and a particle
// count that gives the application its compute/communication balance
// (~60% of runtime in LongEn under the blocking stack, Sec. V-B).
func DefaultParams() Params {
	return Params{
		NumParticles:     720,
		AtomsPerParticle: 3,
		BoxSide:          12.0,
		Beta:             1.2,
		AdamsB:           3.0,
		Alpha:            0.45,
		KMax:             8,
		NumKVecs:         276,
		Cycles:           100,
		MaxDisplacement:  0.35,
		Seed:             1,
	}
}

// moveKind enumerates GCMC move types (Algorithm 1, PickRandomAction).
type moveKind int

const (
	moveTranslate moveKind = iota
	moveRotate
	moveInsert
	moveDelete
	numMoveKinds
)

func (k moveKind) String() string {
	switch k {
	case moveTranslate:
		return "translate"
	case moveRotate:
		return "rotate"
	case moveInsert:
		return "insert"
	case moveDelete:
		return "delete"
	}
	return fmt.Sprintf("moveKind(%d)", int(k))
}

// particle is one rigid molecule: a center position plus atom offsets.
// Atom charges alternate so molecules are net-neutral for odd atom
// counts sum to q0; charges live in the simulation (same for all).
type particle struct {
	center [3]float64
	off    [][3]float64 // atom offsets from center
}

// clone returns a deep copy (the offset slice must not be shared, or a
// rejected rotation could never be rolled back).
func (p particle) clone() particle {
	c := p
	c.off = make([][3]float64, len(p.off))
	copy(c.off, p.off)
	return c
}

// Stats accumulates move outcomes.
type Stats struct {
	Attempted, Accepted              int
	Translations, Rotations          int
	Insertions, Deletions            int
	AcceptedInserts, AcceptedDeletes int
}

// Result summarizes one core's view of a finished run.
type Result struct {
	FinalEnergy   float64
	FinalN        int
	Stats         Stats
	WallTime      simtime.Duration // virtual time for the whole run
	ComputeTime   simtime.Duration // charged arithmetic
	FlagWaitTime  simtime.Duration // time blocked on MPB flags
	CommAllreduce int              // number of 552-double Allreduce calls
}

// Simulation is the per-core GCMC state. All cores hold the full
// (replicated) configuration; the work split happens inside the energy
// evaluation, which only loops over the core's local particles.
type Simulation struct {
	P     Params
	core  *scc.Core
	comm  Collectives
	rank  int
	procs int

	particles []particle
	charges   []float64
	kvecs     []KVec
	enOld     float64

	rng *rand.Rand // replicated stream: same decisions on every core

	// Private-memory staging for the collectives.
	fSrc, fDst     scc.Addr
	oneSrc, oneDst scc.Addr
	bcastBuf       scc.Addr

	stats     Stats
	allreduce int
}

// New builds the simulation state for one core. nprocs is the
// communicator size; every core must use identical Params.
func New(c *scc.Core, comm Collectives, nprocs int, p Params) *Simulation {
	if p.NumKVecs <= 0 || p.AtomsPerParticle <= 0 || p.NumParticles < 0 {
		panic("gcmc: invalid parameters")
	}
	s := &Simulation{
		P:     p,
		core:  c,
		comm:  comm,
		rank:  c.ID,
		procs: nprocs,
		rng:   rand.New(rand.NewSource(p.Seed)),
		kvecs: makeKVectors(p.BoxSide, p.Alpha, p.KMax, p.NumKVecs),
	}
	// Alternating charges, slight asymmetry so the net molecular charge
	// is nonzero and the Fourier sum does not degenerate.
	s.charges = make([]float64, p.AtomsPerParticle)
	for a := range s.charges {
		if a%2 == 0 {
			s.charges[a] = 0.6
		} else {
			s.charges[a] = -0.4
		}
	}
	// Initial configuration: particles on a jittered lattice.
	for i := 0; i < p.NumParticles; i++ {
		s.particles = append(s.particles, s.randomParticle())
	}
	s.fSrc = c.AllocF64(2 * p.NumKVecs)
	s.fDst = c.AllocF64(2 * p.NumKVecs)
	s.oneSrc = c.AllocF64(1)
	s.oneDst = c.AllocF64(1)
	s.bcastBuf = c.AllocF64(8 + 3*p.AtomsPerParticle)
	return s
}

// randomParticle places a molecule at a random position with a compact
// random rigid geometry.
func (s *Simulation) randomParticle() particle {
	pt := particle{}
	for d := 0; d < 3; d++ {
		pt.center[d] = s.rng.Float64() * s.P.BoxSide
	}
	pt.off = make([][3]float64, s.P.AtomsPerParticle)
	for a := 1; a < s.P.AtomsPerParticle; a++ {
		for d := 0; d < 3; d++ {
			pt.off[a][d] = (s.rng.Float64() - 0.5) * 0.8
		}
	}
	return pt
}

// ownerOf returns the core owning particle index i (block-cyclic).
func (s *Simulation) ownerOf(i int) int { return i % s.procs }

// isLocal reports whether particle i belongs to this core's local set.
func (s *Simulation) isLocal(i int) bool { return s.ownerOf(i) == s.rank }

// Run executes the GCMC main loop (Algorithm 1) and returns this core's
// result summary.
func (s *Simulation) Run() Result {
	c := s.core
	start := c.Now()
	prof0 := c.Prof()

	s.comm.Barrier()
	s.enOld = s.totalEnergy() // InitialEnergy()

	for cycle := 0; cycle < s.P.Cycles; cycle++ {
		s.step()
	}
	s.comm.Barrier()

	prof1 := c.Prof()
	return Result{
		FinalEnergy:   s.enOld,
		FinalN:        len(s.particles),
		Stats:         s.stats,
		WallTime:      c.Now() - start,
		ComputeTime:   prof1.Compute - prof0.Compute,
		FlagWaitTime:  prof1.FlagWait - prof0.FlagWait,
		CommAllreduce: s.allreduce,
	}
}

// step performs one GCMC move (one iteration of Algorithm 1's loop).
func (s *Simulation) step() {
	s.stats.Attempted++
	action := s.pickAction()
	switch action {
	case moveTranslate, moveRotate:
		s.displaceMove(action)
	case moveInsert:
		s.insertMove()
	case moveDelete:
		s.deleteMove()
	}
}

// pickAction draws the move type (replicated RNG: every core draws the
// same value).
func (s *Simulation) pickAction() moveKind {
	if len(s.particles) == 0 {
		return moveInsert
	}
	return moveKind(s.rng.Intn(int(numMoveKinds)))
}

// displaceMove translates or rotates one particle and applies the
// Metropolis criterion.
func (s *Simulation) displaceMove(kind moveKind) {
	idx := s.rng.Intn(len(s.particles))
	saved := s.particles[idx].clone() // SaveCurrentConfig
	enNew := s.enOld - s.shortEn(idx) - s.longEn()

	if kind == moveTranslate {
		s.stats.Translations++
		for d := 0; d < 3; d++ {
			s.particles[idx].center[d] = wrap(
				s.particles[idx].center[d]+(s.rng.Float64()-0.5)*2*s.P.MaxDisplacement,
				s.P.BoxSide)
		}
	} else {
		s.stats.Rotations++
		s.rotate(&s.particles[idx])
	}
	s.chargeMoveGeneration()

	enNew += s.shortEn(idx) + s.longEn()
	if s.metropolis(enNew - s.enOld) {
		s.stats.Accepted++
		s.enOld = enNew
	} else {
		s.particles[idx] = saved // RestoreConfig
	}
	s.broadcastUpdate(idx)
}

// insertMove attempts a grand-canonical insertion (Adams acceptance).
func (s *Simulation) insertMove() {
	s.stats.Insertions++
	enNew := s.enOld - s.longEn()
	s.particles = append(s.particles, s.randomParticle())
	idx := len(s.particles) - 1
	s.chargeMoveGeneration()
	enNew += s.shortEn(idx) + s.longEn()
	delta := enNew - s.enOld
	acc := math.Exp(s.P.AdamsB-s.P.Beta*delta) / float64(len(s.particles))
	if s.rng.Float64() < math.Min(1, acc) {
		s.stats.Accepted++
		s.stats.AcceptedInserts++
		s.enOld = enNew
	} else {
		s.particles = s.particles[:idx]
	}
	s.broadcastUpdate(idx)
}

// deleteMove attempts a grand-canonical deletion.
func (s *Simulation) deleteMove() {
	s.stats.Deletions++
	idx := s.rng.Intn(len(s.particles))
	saved := s.particles[idx].clone()
	enNew := s.enOld - s.shortEn(idx) - s.longEn()
	// Remove by swapping with the tail (keeps ownership block-cyclic on
	// the index, which is all the cost model depends on).
	last := len(s.particles) - 1
	s.particles[idx] = s.particles[last]
	s.particles = s.particles[:last]
	s.chargeMoveGeneration()
	enNew += s.longEn()
	delta := enNew - s.enOld
	acc := float64(len(s.particles)+1) * math.Exp(-s.P.AdamsB-s.P.Beta*delta)
	if s.rng.Float64() < math.Min(1, acc) {
		s.stats.Accepted++
		s.stats.AcceptedDeletes++
		s.enOld = enNew
	} else {
		// Restore: undo the swap-removal.
		if idx == last {
			s.particles = append(s.particles, saved)
		} else {
			s.particles = append(s.particles, s.particles[idx])
			s.particles[idx] = saved
		}
	}
	s.broadcastUpdate(idx)
}

// metropolis applies min(1, exp(-beta*delta)) with the replicated RNG.
func (s *Simulation) metropolis(delta float64) bool {
	if delta <= 0 {
		return true
	}
	return s.rng.Float64() < math.Exp(-s.P.Beta*delta)
}

// rotate applies a random rigid rotation (Rodrigues formula) to the
// molecule's atom offsets.
func (s *Simulation) rotate(pt *particle) {
	// Random unit axis.
	var axis [3]float64
	for {
		n2 := 0.0
		for d := 0; d < 3; d++ {
			axis[d] = 2*s.rng.Float64() - 1
			n2 += axis[d] * axis[d]
		}
		if n2 > 1e-6 && n2 <= 1 {
			n := math.Sqrt(n2)
			for d := 0; d < 3; d++ {
				axis[d] /= n
			}
			break
		}
	}
	theta := (s.rng.Float64() - 0.5) * math.Pi / 2
	sin, cos := math.Sin(theta), math.Cos(theta)
	for a := range pt.off {
		v := pt.off[a]
		// v' = v cos + (axis x v) sin + axis (axis.v)(1-cos)
		cross := [3]float64{
			axis[1]*v[2] - axis[2]*v[1],
			axis[2]*v[0] - axis[0]*v[2],
			axis[0]*v[1] - axis[1]*v[0],
		}
		dot := axis[0]*v[0] + axis[1]*v[1] + axis[2]*v[2]
		for d := 0; d < 3; d++ {
			pt.off[a][d] = v[d]*cos + cross[d]*sin + axis[d]*dot*(1-cos)
		}
	}
}

// broadcastUpdate ships the updated particle state and energy from the
// owning core to everyone (Algorithm 1, line 13). All cores already
// computed the same update from the replicated RNG; the broadcast's
// cost is what the application-level benchmark measures.
func (s *Simulation) broadcastUpdate(idx int) {
	root := s.ownerOf(idx)
	n := 8 + 3*s.P.AtomsPerParticle
	if root == s.rank {
		buf := make([]float64, n)
		buf[0] = float64(idx)
		buf[1] = s.enOld
		buf[2] = float64(len(s.particles))
		if idx < len(s.particles) {
			copy(buf[3:6], s.particles[idx].center[:])
			for a, off := range s.particles[idx].off {
				copy(buf[8+3*a:], off[:])
			}
		}
		s.core.WriteF64s(s.bcastBuf, buf)
	}
	s.comm.Broadcast(root, s.bcastBuf, n)
}

// chargeMoveGeneration prices the bookkeeping of generating a trial move.
func (s *Simulation) chargeMoveGeneration() {
	m := s.core.Chip().Model
	s.core.ComputeCycles(m.FlopCoreCycles * 200)
}

// wrap applies periodic boundary conditions to one coordinate.
func wrap(x, l float64) float64 {
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	return x
}
