package gcmc

import "math"

// This file implements the energy model: short-range Lennard-Jones plus
// real-space Ewald electrostatics (incrementally updatable, Algorithm 1
// line 5/8), and the reciprocal-space Ewald sum that must be fully
// recomputed after every move (Algorithm 2), with its 552-double
// Allreduce. Arithmetic cost is charged to the simulated core through
// the timing model.

// atomPos returns the wrapped position of atom a of particle i.
func (s *Simulation) atomPos(i, a int) [3]float64 {
	p := s.particles[i]
	return [3]float64{
		wrap(p.center[0]+p.off[a][0], s.P.BoxSide),
		wrap(p.center[1]+p.off[a][1], s.P.BoxSide),
		wrap(p.center[2]+p.off[a][2], s.P.BoxSide),
	}
}

// minImage returns the minimum-image distance vector component.
func minImage(d, l float64) float64 {
	if d > l/2 {
		return d - l
	}
	if d < -l/2 {
		return d + l
	}
	return d
}

// pairEnergy computes the short-range interaction of two atoms: a
// truncated Lennard-Jones term plus the real-space (erfc-screened)
// Coulomb term of the Ewald decomposition.
func (s *Simulation) pairEnergy(pi, ai, pj, aj int) float64 {
	ri := s.atomPos(pi, ai)
	rj := s.atomPos(pj, aj)
	var r2 float64
	for d := 0; d < 3; d++ {
		dd := minImage(ri[d]-rj[d], s.P.BoxSide)
		r2 += dd * dd
	}
	rc := s.P.BoxSide / 2
	if r2 >= rc*rc {
		return 0
	}
	if r2 < 0.6 {
		r2 = 0.6 // soft core: keeps trial insertions finite
	}
	inv6 := 1 / (r2 * r2 * r2)
	lj := 4 * (inv6*inv6 - inv6)
	r := math.Sqrt(r2)
	coul := s.charges[ai] * s.charges[aj] * math.Erfc(s.P.Alpha*r) / r
	return lj + coul
}

// shortEn computes the short-range energy between particle idx and all
// other particles (Algorithm 1's ShortEn). The pair loop over the rest
// of the system is split over the cores by ownership; the partial sums
// are combined with a one-element Allreduce ("one value per core",
// Sec. V-B).
func (s *Simulation) shortEn(idx int) float64 {
	m := s.core.Chip().Model
	na := s.P.AtomsPerParticle
	local := 0.0
	pairs := 0
	for j := range s.particles {
		if j == idx || !s.isLocal(j) {
			continue
		}
		for a := 0; a < na; a++ {
			for b := 0; b < na; b++ {
				local += s.pairEnergy(idx, a, j, b)
				pairs++
			}
		}
	}
	// ~40 flops per pair (distance, LJ, erfc-screened Coulomb).
	s.core.ComputeCycles(m.FlopCoreCycles * int64(40*pairs))
	s.core.WriteF64s(s.oneSrc, []float64{local})
	s.comm.Allreduce(s.oneSrc, s.oneDst, 1)
	out := make([]float64, 1)
	s.core.ReadF64s(s.oneDst, out)
	return out[0]
}

// longEn computes the reciprocal-space Ewald energy (Algorithm 2): each
// core accumulates the structure factor over its local particles, the
// 276 complex coefficients are summed across cores with a 552-double
// Allreduce, and every core evaluates the energy from the total.
func (s *Simulation) longEn() float64 {
	m := s.core.Chip().Model
	nk := s.P.NumKVecs
	na := s.P.AtomsPerParticle

	f := make([]float64, 2*nk) // interleaved re/im (F_local)
	localAtoms := 0
	for i := range s.particles {
		if !s.isLocal(i) {
			continue
		}
		for a := 0; a < na; a++ {
			localAtoms++
			r := s.atomPos(i, a)
			q := s.charges[a]
			for k := 0; k < nk; k++ {
				kv := &s.kvecs[k]
				phase := kv.K[0]*r[0] + kv.K[1]*r[1] + kv.K[2]*r[2]
				sin, cos := math.Sincos(phase)
				f[2*k] += q * cos
				f[2*k+1] += q * sin
			}
		}
	}
	// Cost per Algorithm 2's structure: per-axis phase tables need
	// 3*KMAX trig pairs per atom (lines 6-8); the k-vector accumulation
	// is ~8 flops per (k, atom) pair (lines 10-13).
	s.core.ComputeCycles(m.TrigCoreCycles * int64(3*s.P.KMax*localAtoms))
	s.core.ComputeCycles(m.FlopCoreCycles * int64(8*nk*localAtoms))

	// ALLREDUCE(F_local, F_tot, SUM) - the paper's 552-double call.
	s.core.WriteF64s(s.fSrc, f)
	s.comm.Allreduce(s.fSrc, s.fDst, 2*nk)
	s.allreduce++
	ftot := make([]float64, 2*nk)
	s.core.ReadF64s(s.fDst, ftot)

	// energy += coeff(k)/vol * |F_tot[k]|^2 (doubled: half-space k set).
	vol := s.P.BoxSide * s.P.BoxSide * s.P.BoxSide
	energy := 0.0
	for k := 0; k < nk; k++ {
		re, im := ftot[2*k], ftot[2*k+1]
		energy += s.kvecs[k].Coeff * (re*re + im*im)
	}
	energy *= 2 * (2 * math.Pi) / vol
	s.core.ComputeCycles(m.FlopCoreCycles * int64(6*nk))
	return energy
}

// totalEnergy computes the full system energy from scratch (used for
// InitialEnergy and for the bookkeeping consistency checks in tests).
func (s *Simulation) totalEnergy() float64 {
	m := s.core.Chip().Model
	na := s.P.AtomsPerParticle
	local := 0.0
	pairs := 0
	for i := range s.particles {
		if !s.isLocal(i) {
			continue
		}
		for j := range s.particles {
			if j == i {
				continue
			}
			for a := 0; a < na; a++ {
				for b := 0; b < na; b++ {
					local += s.pairEnergy(i, a, j, b)
					pairs++
				}
			}
		}
	}
	local /= 2 // local sums count (i,j) once per side combined across cores
	s.core.ComputeCycles(m.FlopCoreCycles * int64(40*pairs))
	s.core.WriteF64s(s.oneSrc, []float64{local})
	s.comm.Allreduce(s.oneSrc, s.oneDst, 1)
	out := make([]float64, 1)
	s.core.ReadF64s(s.oneDst, out)
	return out[0] + s.longEn()
}

// EnergyDriftCheck recomputes the total energy from scratch and returns
// the difference to the incrementally tracked value (test hook).
func (s *Simulation) EnergyDriftCheck() float64 {
	return s.totalEnergy() - s.enOld
}
