package gcmc

import (
	"scc/internal/core"
	"scc/internal/rckmpi"
	"scc/internal/scc"
)

// CoreStack adapts the optimized collectives (package core) to the
// application's Collectives interface.
type CoreStack struct {
	Ctx *core.Ctx
}

// Allreduce sums element-wise across all cores.
func (s CoreStack) Allreduce(src, dst scc.Addr, n int) {
	s.Ctx.Allreduce(src, dst, n, core.Sum)
}

// Broadcast distributes from root.
func (s CoreStack) Broadcast(root int, addr scc.Addr, n int) {
	s.Ctx.Broadcast(root, addr, n)
}

// Barrier synchronizes all cores.
func (s CoreStack) Barrier() { s.Ctx.Barrier() }

// RCKMPIStack adapts the RCKMPI comparator.
type RCKMPIStack struct {
	Lib *rckmpi.Lib
}

// Allreduce sums element-wise across all cores.
func (s RCKMPIStack) Allreduce(src, dst scc.Addr, n int) {
	s.Lib.Allreduce(src, dst, n, func(a, b float64) float64 { return a + b })
}

// Broadcast distributes from root.
func (s RCKMPIStack) Broadcast(root int, addr scc.Addr, n int) {
	s.Lib.Bcast(root, addr, n)
}

// Barrier synchronizes all cores (RCKMPI delegates to the underlying
// flag barrier).
func (s RCKMPIStack) Barrier() { s.Lib.UE().Barrier() }
