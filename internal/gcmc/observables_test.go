package gcmc

import (
	"math"
	"testing"

	"scc/internal/core"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

func TestRunSampledObservables(t *testing.T) {
	p := testParams()
	p.Cycles = 8
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	results := make([]Result, 48)
	obses := make([]Observables, 48)
	chip.Launch(func(c *scc.Core) {
		ctx := core.NewCtx(comm.UE(c.ID), core.ConfigBalanced)
		sim := New(c, CoreStack{Ctx: ctx}, comm.NumUEs(), p)
		results[c.ID], obses[c.ID] = sim.RunSampled(2, 2)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	o := obses[0]
	if o.Samples != 3 { // cycles 2,4,6
		t.Fatalf("samples = %d, want 3", o.Samples)
	}
	if math.IsNaN(o.MeanEnergy) || math.IsInf(o.MeanEnergy, 0) {
		t.Fatalf("mean energy not finite: %v", o.MeanEnergy)
	}
	if o.MeanN <= 0 {
		t.Fatalf("mean N = %v", o.MeanN)
	}
	vol := p.BoxSide * p.BoxSide * p.BoxSide
	if math.Abs(o.MeanDensity-o.MeanN/vol) > 1e-12 {
		t.Fatalf("density inconsistent: %v vs %v", o.MeanDensity, o.MeanN/vol)
	}
	if math.IsNaN(o.MeanVirialPressure) || math.IsInf(o.MeanVirialPressure, 0) {
		t.Fatalf("pressure not finite: %v", o.MeanVirialPressure)
	}
	// All cores must agree (replicated physics).
	for id := 1; id < 48; id++ {
		if obses[id] != o {
			t.Fatalf("core %d observables diverged", id)
		}
	}
}

func TestVirialSymmetry(t *testing.T) {
	p := testParams()
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	ok := true
	chip.LaunchOne(0, func(c *scc.Core) {
		ctx := core.NewCtx(comm.UE(0), core.ConfigBalanced)
		sim := New(c, CoreStack{Ctx: ctx}, 1, p) // single-core communicator view
		// pairVirial must be symmetric under particle exchange.
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 6; j++ {
				a := sim.pairVirial(i, 0, j, 1)
				b := sim.pairVirial(j, 1, i, 0)
				if math.Abs(a-b) > 1e-12 {
					ok = false
				}
			}
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("pair virial not symmetric")
	}
}

func TestIdealGasPressureLimit(t *testing.T) {
	// With all charges zero and particles far apart (huge box), the
	// virial term vanishes and the pressure must approach rho/beta.
	p := testParams()
	p.NumParticles = 10
	p.BoxSide = 200
	p.Cycles = 2
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	var obs Observables
	chip.Launch(func(c *scc.Core) {
		ctx := core.NewCtx(comm.UE(c.ID), core.ConfigBalanced)
		sim := New(c, CoreStack{Ctx: ctx}, comm.NumUEs(), p)
		for i := range sim.charges {
			sim.charges[i] = 0
		}
		_, o := sim.RunSampled(0, 1)
		if c.ID == 0 {
			obs = o
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	ideal := obs.MeanDensity / p.Beta
	if ideal == 0 {
		t.Fatal("degenerate ideal pressure")
	}
	if rel := math.Abs(obs.MeanVirialPressure-ideal) / ideal; rel > 0.05 {
		t.Fatalf("dilute pressure %v deviates %.1f%% from ideal %v",
			obs.MeanVirialPressure, 100*rel, ideal)
	}
}
