package gcmc

import "math"

// Observables sampled along the Markov chain - the "thermodynamic
// properties like the internal energy or pressure of a gas or fluid"
// the paper's application exists to compute (Sec. V-B). Sampling happens
// after each cycle; averages are over the sampled portion of the chain.
type Observables struct {
	Samples int
	// MeanEnergy is the running average of the total energy.
	MeanEnergy float64
	// MeanN is the running average particle count (the grand-canonical
	// ensemble's central observable).
	MeanN float64
	// MeanDensity is MeanN divided by the box volume.
	MeanDensity float64
	// MeanVirialPressure is the pressure estimated from the virial of
	// the short-range forces plus the ideal-gas term:
	//   P = rho/beta + <W>/(3V)
	MeanVirialPressure float64

	sumE, sumN, sumW float64
}

// sample records the current configuration's contribution. W is the
// short-range virial (sum over pairs of r . F).
func (o *Observables) sample(energy float64, n int, virial, vol, beta float64) {
	o.Samples++
	o.sumE += energy
	o.sumN += float64(n)
	o.sumW += virial
	s := float64(o.Samples)
	o.MeanEnergy = o.sumE / s
	o.MeanN = o.sumN / s
	o.MeanDensity = o.MeanN / vol
	o.MeanVirialPressure = o.MeanDensity/beta + o.sumW/s/(3*vol)
}

// pairVirial computes r.F for one atom pair: for the Lennard-Jones part
// r.F = 24(2 inv12 - inv6); the screened-Coulomb contribution uses
// -r dU/dr of q_i q_j erfc(alpha r)/r.
func (s *Simulation) pairVirial(pi, ai, pj, aj int) float64 {
	ri := s.atomPos(pi, ai)
	rj := s.atomPos(pj, aj)
	var r2 float64
	for d := 0; d < 3; d++ {
		dd := minImage(ri[d]-rj[d], s.P.BoxSide)
		r2 += dd * dd
	}
	rc := s.P.BoxSide / 2
	if r2 >= rc*rc {
		return 0
	}
	if r2 < 0.6 {
		r2 = 0.6
	}
	inv6 := 1 / (r2 * r2 * r2)
	ljVirial := 24 * (2*inv6*inv6 - inv6)
	r := math.Sqrt(r2)
	qq := s.charges[ai] * s.charges[aj]
	a := s.P.Alpha
	// -r dU/dr for U = qq erfc(a r)/r:
	coulVirial := qq * (math.Erfc(a*r)/r + 2*a/math.SqrtPi*math.Exp(-a*a*r2))
	return ljVirial + coulVirial
}

// shortVirial sums the virial over this core's local particle pairs and
// combines it across cores with a one-element Allreduce (the same
// communication signature as the short-range energy).
func (s *Simulation) shortVirial() float64 {
	m := s.core.Chip().Model
	na := s.P.AtomsPerParticle
	local := 0.0
	pairs := 0
	for i := range s.particles {
		if !s.isLocal(i) {
			continue
		}
		for j := range s.particles {
			if j == i {
				continue
			}
			for a := 0; a < na; a++ {
				for b := 0; b < na; b++ {
					local += s.pairVirial(i, a, j, b)
					pairs++
				}
			}
		}
	}
	local /= 2
	s.core.ComputeCycles(m.FlopCoreCycles * int64(50*pairs))
	s.core.WriteF64s(s.oneSrc, []float64{local})
	s.comm.Allreduce(s.oneSrc, s.oneDst, 1)
	out := make([]float64, 1)
	s.core.ReadF64s(s.oneDst, out)
	return out[0]
}

// RunSampled is Run plus observable sampling every sampleEvery cycles
// (after a warm-up of warmup cycles). It returns the result and the
// collected observables.
func (s *Simulation) RunSampled(warmup, sampleEvery int) (Result, Observables) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	c := s.core
	start := c.Now()
	prof0 := c.Prof()
	var obs Observables

	s.comm.Barrier()
	s.enOld = s.totalEnergy()
	vol := s.P.BoxSide * s.P.BoxSide * s.P.BoxSide

	for cycle := 0; cycle < s.P.Cycles; cycle++ {
		s.step()
		if cycle >= warmup && (cycle-warmup)%sampleEvery == 0 {
			w := s.shortVirial()
			obs.sample(s.enOld, len(s.particles), w, vol, s.P.Beta)
		}
	}
	s.comm.Barrier()

	prof1 := c.Prof()
	return Result{
		FinalEnergy:   s.enOld,
		FinalN:        len(s.particles),
		Stats:         s.stats,
		WallTime:      c.Now() - start,
		ComputeTime:   prof1.Compute - prof0.Compute,
		FlagWaitTime:  prof1.FlagWait - prof0.FlagWait,
		CommAllreduce: s.allreduce,
	}, obs
}
