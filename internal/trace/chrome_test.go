package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"scc/internal/simtime"
)

var update = flag.Bool("update", false, "rewrite the Chrome-trace golden file")

// goldenSpans is a tiny fixed timeline covering every category class:
// a blocked wait, an MPB copy, and a collective span, deliberately
// passed out of order to exercise the writer's stable sort.
func goldenSpans() []Span {
	us := simtime.Time(simtime.TicksPerMicrosecond)
	return []Span{
		{Core: 0, Label: "allreduce[ring]", Start: 2 * us, End: 3 * us},
		{Core: 1, Label: "put line", Start: 0, End: 1 * us},
		{Core: 0, Label: "wait-flag", Start: 0, End: 2 * us},
	}
}

// TestWriteChromeTraceGolden pins the exact serialized form of the
// Chrome Trace Event export. Regenerate with
//
//	go test ./internal/trace -run Golden -update
//
// and eyeball the diff: any change here changes what Perfetto loads.
func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, goldenSpans(), map[string]any{"note": "golden"})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteChromeTraceValid checks the structural contract the viewers
// rely on: parseable JSON, a traceEvents array whose events carry the
// required phase fields, metadata naming every thread, and one complete
// event per span with non-negative times.
func TestWriteChromeTraceValid(t *testing.T) {
	spans := goldenSpans()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var complete, threadNames int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threadNames++
				if e.Args["name"] == "" {
					t.Errorf("thread %d has empty name", e.Tid)
				}
			}
		case "X":
			complete++
			if e.Ts < 0 || e.Dur == nil || *e.Dur < 0 {
				t.Errorf("event %q has bad times ts=%v dur=%v", e.Name, e.Ts, e.Dur)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if complete != len(spans) {
		t.Errorf("%d complete events for %d spans", complete, len(spans))
	}
	if threadNames != 2 {
		t.Errorf("%d thread_name records, want 2 (cores 0 and 1)", threadNames)
	}
}

// TestWriteChromeTraceDeterministic feeds the same spans in two
// different orders and demands byte-identical output.
func TestWriteChromeTraceDeterministic(t *testing.T) {
	a := goldenSpans()
	b := []Span{a[2], a[0], a[1]}
	var bufA, bufB bytes.Buffer
	if err := WriteChromeTrace(&bufA, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&bufB, b, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("span input order leaked into the serialized trace")
	}
}
