package trace

import (
	"strings"
	"testing"

	"scc/internal/simtime"
)

func us(n int64) simtime.Time { return simtime.Microseconds(n) }

func TestRecorderOrdersSpans(t *testing.T) {
	var r Recorder
	r.Record(1, "put", us(10), us(20))
	r.Record(0, "wait-flag", us(0), us(15))
	r.Record(1, "get", us(20), us(30))
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Label != "wait-flag" || spans[0].Core != 0 {
		t.Fatalf("spans not sorted by start: %+v", spans)
	}
	r.Reset()
	if len(r.Spans()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHook(t *testing.T) {
	var r Recorder
	h := r.Hook(7)
	h("send", us(1), us(2))
	if s := r.Spans(); len(s) != 1 || s[0].Core != 7 || s[0].Label != "send" {
		t.Fatalf("hook recorded %+v", s)
	}
}

func TestRenderProducesRows(t *testing.T) {
	var r Recorder
	r.Record(0, "put", us(0), us(50))
	r.Record(0, "wait-flag", us(50), us(100))
	r.Record(1, "get", us(25), us(75))
	var sb strings.Builder
	if err := Render(&sb, r.Spans(), 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "core  0 |") || !strings.Contains(out, "core  1 |") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "P") || !strings.Contains(out, ".") || !strings.Contains(out, "G") {
		t.Fatalf("missing symbols:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Fatalf("missing legend:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, nil, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no spans") {
		t.Fatal("empty render message missing")
	}
}

func TestWaitShare(t *testing.T) {
	var r Recorder
	// Core 0: busy 0..100, waiting 0..50 -> 50%.
	r.Record(0, "wait-flag", us(0), us(50))
	r.Record(0, "put", us(50), us(100))
	// Core 1: no waits.
	r.Record(1, "get", us(0), us(100))
	share := WaitShare(r.Spans())
	if s := share[0]; s < 0.49 || s > 0.51 {
		t.Fatalf("core 0 wait share = %v, want 0.5", s)
	}
	if s := share[1]; s != 0 {
		t.Fatalf("core 1 wait share = %v, want 0", s)
	}
}

// TestWaitShareZeroDuration guards the degenerate timelines: a core
// whose spans are all instantaneous has a zero-length busy interval,
// and its share must come out 0 rather than NaN or a divide-by-zero
// panic.
func TestWaitShareZeroDuration(t *testing.T) {
	var r Recorder
	r.Record(0, "wait-flag", us(10), us(10)) // instantaneous wait
	r.Record(0, "flag-set", us(10), us(10))
	r.Record(1, "wait-flag", us(0), us(40)) // a normal core alongside
	r.Record(1, "put", us(40), us(80))
	share := WaitShare(r.Spans())
	if s := share[0]; s != 0 {
		t.Errorf("zero-duration core share = %v, want exactly 0", s)
	}
	if s := share[0]; s != s { // NaN check
		t.Errorf("zero-duration core share is NaN")
	}
	if s := share[1]; s < 0.49 || s > 0.51 {
		t.Errorf("normal core share = %v, want 0.5", s)
	}
	// No spans at all: empty map, no panic.
	if got := WaitShare(nil); len(got) != 0 {
		t.Errorf("WaitShare(nil) = %v, want empty", got)
	}
}

// TestRenderGolden pins the exact rendering byte for byte, so timeline
// output (the cmd/timeline deliverable) cannot drift silently.
func TestRenderGolden(t *testing.T) {
	var r Recorder
	r.Record(0, "send", us(0), us(40))
	r.Record(0, "wait-flag", us(40), us(80))
	r.Record(1, "recv", us(20), us(60))
	r.Record(1, "compute", us(60), us(100))
	var sb strings.Builder
	if err := Render(&sb, r.Spans(), 20); err != nil {
		t.Fatal(err)
	}
	const want = "core  0 |SSSSSSSS.........   |\n" +
		"core  1 |    RRRRRRRRCCCCCCCC|\n" +
		"         t=0ns     t=100.00us\n" +
		"  legend: S=send R=recv P=put(copy to MPB) G=get(copy from MPB) C=compute .=waiting f=flag\n" +
		"  span: 0ns .. 100.00us (100.00us)\n"
	if got := sb.String(); got != want {
		t.Errorf("Render drifted.\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func TestSymbols(t *testing.T) {
	cases := map[string]byte{
		"wait-flag": '.',
		"put":       'P',
		"get":       'G',
		"send":      'S',
		"recv":      'R',
		"compute":   'C',
		"reduce":    'C',
		"flag-set":  'f',
		"other":     '#',
	}
	for label, want := range cases {
		if got := symbolFor(label); got != want {
			t.Errorf("symbolFor(%q) = %c, want %c", label, got, want)
		}
	}
}
