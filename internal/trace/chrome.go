package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"scc/internal/simtime"
)

// This file exports span timelines in the Chrome Trace Event Format
// (the JSON Object Format variant: {"traceEvents": [...], ...}), so a
// simulated protocol run can be inspected interactively in
// chrome://tracing or https://ui.perfetto.dev instead of the ASCII
// renderer. Each simulated core becomes one thread (tid) of a single
// "sccsim" process (pid 0); every span becomes a complete ("X") event.
// Timestamps and durations are microseconds of virtual time (the
// format's native unit; 1600 simulator ticks = 1 µs).
//
// Output is deterministic for a given span list: events are emitted in
// a stable order and encoding/json serializes maps with sorted keys,
// which is what the golden-file test relies on.

// chromeTrace is the top-level JSON Object Format document.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// chromeEvent is one Trace Event. Only the fields the "M" and "X"
// phases need are modeled.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeCategory buckets a span label for Perfetto's category filter,
// reusing the label-prefix classes of the ASCII renderer's legend.
func chromeCategory(label string) string {
	switch symbolFor(label) {
	case '.':
		return "wait"
	case 'P', 'G':
		return "copy"
	case 'S', 'R':
		return "transfer"
	case 'C':
		return "compute"
	case 'f':
		return "flag"
	default:
		return "collective"
	}
}

// ticksToMicros converts virtual-time ticks to the trace format's
// microsecond unit. Rounding to 1/1000 µs keeps the JSON stable across
// platforms (ticks are exact multiples of 1/1600 µs; three decimal
// digits lose at most 0.4 ns, far below the model's resolution).
func ticksToMicros(t simtime.Duration) float64 {
	return math.Round(float64(t)/float64(simtime.TicksPerMicrosecond)*1000) / 1000
}

// WriteChromeTrace emits spans as a Chrome Trace Event JSON document.
// otherData, when non-nil, is attached verbatim under "otherData"
// (sccbench stores the metrics snapshot there, so one file carries the
// timeline and the counters). Spans may be in any order; cores become
// threads named "core NN" and sorted numerically.
func WriteChromeTrace(w io.Writer, spans []Span, otherData map[string]any) error {
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].Core < ordered[j].Core
	})

	cores := map[int]bool{}
	for _, s := range ordered {
		cores[s.Core] = true
	}
	ids := make([]int, 0, len(cores))
	for id := range cores {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	doc := chromeTrace{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ns",
		OtherData:       otherData,
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "sccsim"},
	})
	for _, id := range ids {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: id,
			Args: map[string]any{"name": fmt.Sprintf("core %02d", id)},
		})
	}
	for _, s := range ordered {
		dur := ticksToMicros(s.End - s.Start)
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Label,
			Ph:   "X",
			Cat:  chromeCategory(s.Label),
			Ts:   ticksToMicros(simtime.Duration(s.Start)),
			Dur:  &dur,
			Pid:  0,
			Tid:  s.Core,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
