// Package trace records labeled time spans from simulated cores and
// renders them as ASCII timelines - the reproduction of the paper's
// protocol diagrams (Fig. 4: blocking odd-even ordering with its
// barrier-like synchronization; Fig. 5: non-blocking primitives
// overlapping the copies).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"scc/internal/simtime"
)

// Span is one labeled interval on one core's timeline.
type Span struct {
	Core  int
	Label string
	Start simtime.Time
	End   simtime.Time
}

// Recorder collects spans. The simulation engine runs one core at a
// time, so no locking is needed. The zero value is ready to use.
type Recorder struct {
	spans []Span
}

// Record appends one span.
func (r *Recorder) Record(core int, label string, start, end simtime.Time) {
	r.spans = append(r.spans, Span{Core: core, Label: label, Start: start, End: end})
}

// Hook returns a per-core recording closure suitable for
// scc.Core.SetSpanRecorder.
func (r *Recorder) Hook(core int) func(label string, start, end simtime.Time) {
	return func(label string, start, end simtime.Time) {
		r.Record(core, label, start, end)
	}
}

// Spans returns everything recorded, ordered by start time.
func (r *Recorder) Spans() []Span {
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Reset discards all spans.
func (r *Recorder) Reset() { r.spans = r.spans[:0] }

// symbolFor maps a span label to its one-character timeline mark.
func symbolFor(label string) byte {
	switch {
	case strings.HasPrefix(label, "wait"):
		return '.'
	case strings.HasPrefix(label, "put"):
		return 'P'
	case strings.HasPrefix(label, "get"):
		return 'G'
	case strings.HasPrefix(label, "send"):
		return 'S'
	case strings.HasPrefix(label, "recv"):
		return 'R'
	case strings.HasPrefix(label, "compute"), strings.HasPrefix(label, "reduce"):
		return 'C'
	case strings.HasPrefix(label, "flag"):
		return 'f'
	default:
		return '#'
	}
}

// Render draws one row per core over width character cells, with later
// spans overwriting earlier ones within a cell. A legend and the time
// range are appended.
func Render(w io.Writer, spans []Span, width int) error {
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "(no spans recorded)")
		return err
	}
	if width < 10 {
		width = 10
	}
	minT, maxT := spans[0].Start, spans[0].End
	cores := map[int]bool{}
	for _, s := range spans {
		if s.Start < minT {
			minT = s.Start
		}
		if s.End > maxT {
			maxT = s.End
		}
		cores[s.Core] = true
	}
	if maxT == minT {
		maxT = minT + 1
	}
	ids := make([]int, 0, len(cores))
	for id := range cores {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	rows := make(map[int][]byte, len(ids))
	for _, id := range ids {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		rows[id] = row
	}
	scale := func(t simtime.Time) int {
		c := int(int64(t-minT) * int64(width) / int64(maxT-minT))
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, s := range spans {
		row := rows[s.Core]
		a, b := scale(s.Start), scale(s.End)
		sym := symbolFor(s.Label)
		for i := a; i <= b; i++ {
			row[i] = sym
		}
	}
	for _, id := range ids {
		if _, err := fmt.Fprintf(w, "core %2d |%s|\n", id, rows[id]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"         %-*s\n  legend: S=send R=recv P=put(copy to MPB) G=get(copy from MPB) C=compute .=waiting f=flag\n  span: %v .. %v (%v)\n",
		width, fmt.Sprintf("t=%v%*s t=%v", minT, width-24, "", maxT),
		minT, maxT, maxT-minT)
	return err
}

// WaitShare computes the fraction of the busy interval each core spent
// in wait spans - the quantity behind the paper's "up to 50% of their
// time in rcce_wait_until".
func WaitShare(spans []Span) map[int]float64 {
	type agg struct {
		wait, total simtime.Duration
		min, max    simtime.Time
		init        bool
	}
	byCore := map[int]*agg{}
	for _, s := range spans {
		a := byCore[s.Core]
		if a == nil {
			a = &agg{}
			byCore[s.Core] = a
		}
		d := s.End - s.Start
		a.total += d
		if strings.HasPrefix(s.Label, "wait") {
			a.wait += d
		}
		if !a.init || s.Start < a.min {
			a.min = s.Start
		}
		if !a.init || s.End > a.max {
			a.max = s.End
			a.init = true
		}
	}
	out := map[int]float64{}
	for id, a := range byCore {
		span := a.max - a.min
		if span <= 0 {
			out[id] = 0
			continue
		}
		out[id] = float64(a.wait) / float64(span)
	}
	return out
}
