package synth

import (
	"strings"
	"testing"

	"scc/internal/timing"
)

// The schedule-IR validity property, checked independently of the
// simulator oracle: every schedule the enumerator emits is well-formed
// under a from-scratch reference checker (not Validate itself), and
// Validate rejects the canonical ways a schedule can be malformed.

// refCheck is an independent re-implementation of the IR's symbolic
// semantics, deliberately written as a plain contribution-set
// interpreter so a bug in the bitset machinery of ir.go cannot hide
// itself.
func refCheck(t *testing.T, s *Schedule) {
	t.Helper()
	if s.NumSteps != len(s.Steps) {
		t.Fatalf("%s np=%d gen=%s: header %d steps, body %d", s.Op, s.NP, s.Gen, s.NumSteps, len(s.Steps))
	}
	// have[r][c] = set of ranks whose contribution is in r's chunk c.
	have := make([]map[int]map[int]bool, s.NP)
	for r := range have {
		have[r] = map[int]map[int]bool{}
		for c := 0; c < s.Chunks; c++ {
			set := map[int]bool{}
			if s.Op == "broadcast" {
				if r == 0 {
					for q := 0; q < s.NP; q++ {
						set[q] = true
					}
				}
			} else {
				set[r] = true
			}
			have[r][c] = set
		}
	}
	for si, step := range s.Steps {
		type key struct{ r, c int }
		written := map[key]Move{}
		read := map[key][]Move{}
		post := map[key]map[int]bool{}
		for _, mv := range step {
			src := have[mv.From][mv.Chunk]
			dst := have[mv.To][mv.Chunk]
			if len(src) == 0 {
				t.Fatalf("%s np=%d gen=%s step %d: %+v sends empty chunk", s.Op, s.NP, s.Gen, si, mv)
			}
			wk := key{mv.To, mv.Chunk}
			if _, dup := written[wk]; dup {
				t.Fatalf("%s np=%d gen=%s step %d: double write to (%d,%d)", s.Op, s.NP, s.Gen, si, mv.To, mv.Chunk)
			}
			written[wk] = mv
			read[key{mv.From, mv.Chunk}] = append(read[key{mv.From, mv.Chunk}], mv)
			merged := map[int]bool{}
			for q := range src {
				merged[q] = true
			}
			if mv.Kind == Combine {
				for q := range dst {
					if merged[q] {
						t.Fatalf("%s np=%d gen=%s step %d: %+v double-counts rank %d", s.Op, s.NP, s.Gen, si, mv, q)
					}
					merged[q] = true
				}
			} else {
				for q := range dst {
					if !src[q] {
						t.Fatalf("%s np=%d gen=%s step %d: copy %+v discards rank %d", s.Op, s.NP, s.Gen, si, mv, q)
					}
				}
			}
			post[wk] = merged
		}
		// No reads-before-writes within a step: a chunk that is written
		// may be read by its owner only as the symmetric half of an
		// exchange with the same peer.
		for wk, w := range written {
			for _, rmv := range read[wk] {
				if len(read[wk]) > 1 || rmv.To != w.From {
					t.Fatalf("%s np=%d gen=%s step %d: (%d,%d) written by %+v and read by %+v",
						s.Op, s.NP, s.Gen, si, wk.r, wk.c, w, rmv)
				}
			}
		}
		for wk, set := range post {
			have[wk.r][wk.c] = set
		}
	}
	// Postcondition: every contribution reaches the root (reduce), or
	// everyone (broadcast / allreduce).
	checkFull := func(r int) {
		for c := 0; c < s.Chunks; c++ {
			if len(have[r][c]) != s.NP {
				t.Fatalf("%s np=%d gen=%s: rank %d chunk %d ends with %d/%d contributions",
					s.Op, s.NP, s.Gen, r, c, len(have[r][c]), s.NP)
			}
		}
	}
	if s.Op == "reduce" {
		checkFull(0)
	} else {
		for r := 0; r < s.NP; r++ {
			checkFull(r)
		}
	}
}

func TestEnumeratedSchedulesWellFormed(t *testing.T) {
	models := map[string]*timing.Model{
		"6x4x2":   timing.Default(),
		"4x4x2":   timing.Topology(4, 4, 2),
		"2x2x2":   timing.Topology(2, 2, 2),
		"16x16x2": timing.Topology(16, 16, 2),
	}
	for label, m := range models {
		nps := []int{2, 3, 8, m.NumCores()}
		for _, np := range nps {
			if np > m.NumCores() {
				continue
			}
			for _, op := range []string{"allreduce", "broadcast", "reduce"} {
				for _, n := range []int{16, 552} {
					cands, err := Enumerate(m, op, np, n, Options{})
					if err != nil {
						t.Fatalf("%s: Enumerate(%s, np=%d, n=%d): %v", label, op, np, n, err)
					}
					if len(cands) == 0 {
						t.Fatalf("%s: Enumerate(%s, np=%d, n=%d): no candidates", label, op, np, n)
					}
					for _, cand := range cands {
						if err := cand.Sched.Validate(); err != nil {
							t.Errorf("%s: %v", label, err)
						}
						refCheck(t, cand.Sched)
					}
				}
			}
		}
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	m := timing.Default()
	a, err := Enumerate(m, "allreduce", 48, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(m, "allreduce", 48, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Cost != b[i].Cost || movesFingerprint(a[i].Sched) != movesFingerprint(b[i].Sched) {
			t.Fatalf("candidate %d differs across identical enumerations", i)
		}
	}
}

func TestHalvingDoublingTemplateValid(t *testing.T) {
	for _, np := range []int{4, 8, 32, 64, 512} {
		for _, chunks := range []int{2, 4, 8} {
			s := halvingDoubling(np, chunks)
			if chunks > np {
				if s != nil {
					t.Fatalf("hd(np=%d,chunks=%d) should be nil", np, chunks)
				}
				continue
			}
			if s == nil {
				t.Fatalf("hd(np=%d,chunks=%d) unexpectedly nil", np, chunks)
			}
			s.Op = "allreduce"
			s.NP = np
			s.NumSteps = len(s.Steps)
			if err := s.Validate(); err != nil {
				t.Fatalf("hd(np=%d,chunks=%d): %v", np, chunks, err)
			}
			refCheck(t, s)
		}
	}
	if halvingDoubling(48, 2) != nil {
		t.Fatal("hd should refuse non-power-of-two np")
	}
}

// buildValid returns a minimal valid allreduce schedule on 2 ranks to
// mutate in the negative tests.
func buildValid() *Schedule {
	return &Schedule{
		Op: "allreduce", NP: 2, Chunks: 1, NumSteps: 1,
		Steps: [][]Move{{
			{Chunk: 0, From: 0, To: 1, Kind: Combine},
			{Chunk: 0, From: 1, To: 0, Kind: Combine},
		}},
	}
}

func TestValidateRejectsMalformedSchedules(t *testing.T) {
	if err := buildValid().Validate(); err != nil {
		t.Fatalf("baseline schedule invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Schedule)
		want   string
	}{
		{"header step count mismatch", func(s *Schedule) { s.NumSteps = 2 }, "header"},
		{"incomplete coverage", func(s *Schedule) { s.Steps[0] = s.Steps[0][:1] }, "contributions"},
		{"double write", func(s *Schedule) {
			s.NP, s.NumSteps = 3, 2
			s.Steps = [][]Move{
				{{Chunk: 0, From: 1, To: 0, Kind: Combine}, {Chunk: 0, From: 2, To: 0, Kind: Combine}},
				{{Chunk: 0, From: 0, To: 1, Kind: Copy}, {Chunk: 0, From: 0, To: 2, Kind: Copy}},
			}
		}, "two writes"},
		{"double count", func(s *Schedule) {
			s.NumSteps = 2
			s.Steps = append(s.Steps, []Move{{Chunk: 0, From: 0, To: 1, Kind: Combine}})
		}, "double-counts"},
		{"read of written chunk", func(s *Schedule) {
			s.NP, s.NumSteps = 3, 2
			s.Steps = [][]Move{
				{
					{Chunk: 0, From: 0, To: 1, Kind: Combine},
					{Chunk: 0, From: 1, To: 2, Kind: Combine}, // reads (1,0) which is written this step
				},
				{
					{Chunk: 0, From: 2, To: 0, Kind: Combine},
					{Chunk: 0, From: 2, To: 1, Kind: Copy},
				},
			}
		}, "without a symmetric exchange"},
		{"out of range", func(s *Schedule) { s.Steps[0][0].To = 9 }, "out of range"},
		{"self move", func(s *Schedule) { s.Steps[0][0].To = 0 }, "self-move"},
		{"broadcast with combine", func(s *Schedule) { s.Op = "broadcast" }, "broadcast"},
		{"copy discarding contributions", func(s *Schedule) {
			s.Steps[0] = []Move{
				{Chunk: 0, From: 0, To: 1, Kind: Copy},
				{Chunk: 0, From: 1, To: 0, Kind: Copy},
			}
		}, "discards"},
	}
	for _, tc := range cases {
		s := buildValid()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a malformed schedule", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestChunkSpanPartition(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 553} {
		for _, chunks := range []int{1, 2, 4, 7} {
			total, prevEnd := 0, 0
			for c := 0; c < chunks; c++ {
				off, l := chunkSpan(n, chunks, c)
				if off != prevEnd {
					t.Fatalf("n=%d chunks=%d: chunk %d starts at %d, want %d", n, chunks, c, off, prevEnd)
				}
				prevEnd = off + l
				total += l
			}
			if total != n {
				t.Fatalf("n=%d chunks=%d: spans cover %d elements", n, chunks, total)
			}
		}
	}
}
