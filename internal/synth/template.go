package synth

import "math/bits"

// halvingDoubling emits the chunked Rabenseifner allreduce for a
// power-of-two communicator: j = log2(chunks) recursive-halving
// exchange steps (each pair splits the chunk space and combines half),
// then log2(np) - j recursive-doubling steps on each rank's remaining
// chunk set within its subcube, then j allgather steps mirroring the
// halving. Per rank it moves 2*(chunks-1)/chunks + (log2(np)-j)/chunks
// vectors of data versus recursive doubling's log2(np) — the
// bandwidth-optimal end of the Pareto frontier — at the price of more
// steps and smaller messages. Returns nil when np is not a power of two
// or chunks does not divide the rank space.
func halvingDoubling(np, chunks int) *Schedule {
	if np < 2 || bits.OnesCount(uint(np)) != 1 {
		return nil
	}
	if chunks < 2 || bits.OnesCount(uint(chunks)) != 1 || chunks > np {
		return nil
	}
	k := bits.TrailingZeros(uint(np))     // log2 np
	j := bits.TrailingZeros(uint(chunks)) // log2 chunks

	// owned[r] is the chunk set rank r still reduces, as a contiguous
	// range [lo, lo+width) of chunk indices. Halving step i splits the
	// range by bit j-1-i of the chunk index, matching bit k-1-i of the
	// rank: the top j bits of a rank select its final chunk.
	type span struct{ lo, width int }
	owned := make([]span, np)
	for r := range owned {
		owned[r] = span{0, chunks}
	}
	var steps [][]Move

	// Phase 1: recursive halving. Pairs differ in rank bit k-1-i; each
	// side keeps the half of its span whose chunk bit j-1-i matches its
	// own rank bit and sends the other half to the partner (Combine).
	for i := 0; i < j; i++ {
		var step []Move
		for r := 0; r < np; r++ {
			p := r ^ (1 << uint(k-1-i))
			if p < r {
				continue // emit each pair once, lower rank first
			}
			half := owned[r].width / 2
			for _, pair := range [][2]int{{r, p}, {p, r}} {
				from, to := pair[0], pair[1]
				fromHi := (from >> uint(k-1-i)) & 1
				// from sends the half it does NOT keep: the half whose
				// chunk bit is 1-fromHi.
				start := owned[from].lo
				if fromHi == 0 {
					start += half // keeps low half, sends high half
				}
				for c := start; c < start+half; c++ {
					step = append(step, Move{Chunk: c, From: from, To: to, Kind: Combine})
				}
			}
		}
		steps = append(steps, step)
		for r := 0; r < np; r++ {
			half := owned[r].width / 2
			if (r>>uint(k-1-i))&1 == 1 {
				owned[r].lo += half
			}
			owned[r].width = half
		}
	}

	// Phase 2: recursive doubling within each subcube (ranks sharing
	// the top j bits own the same single... in general the same span)
	// over the remaining k-j dimensions: full-span exchange+combine.
	for i := j; i < k; i++ {
		var step []Move
		for r := 0; r < np; r++ {
			p := r ^ (1 << uint(k-1-i))
			if p < r {
				continue
			}
			for c := owned[r].lo; c < owned[r].lo+owned[r].width; c++ {
				step = append(step,
					Move{Chunk: c, From: r, To: p, Kind: Combine},
					Move{Chunk: c, From: p, To: r, Kind: Combine})
			}
		}
		steps = append(steps, step)
	}

	// Phase 3: allgather, mirroring the halving steps in reverse: each
	// pair copies its fully-reduced span to the partner, doubling spans
	// back to the whole chunk space.
	for i := j - 1; i >= 0; i-- {
		var step []Move
		for r := 0; r < np; r++ {
			p := r ^ (1 << uint(k-1-i))
			if p < r {
				continue
			}
			for _, pair := range [][2]int{{r, p}, {p, r}} {
				from, to := pair[0], pair[1]
				for c := owned[from].lo; c < owned[from].lo+owned[from].width; c++ {
					step = append(step, Move{Chunk: c, From: from, To: to, Kind: Copy})
				}
			}
		}
		steps = append(steps, step)
		merged := make([]span, np)
		for r := 0; r < np; r++ {
			p := r ^ (1 << uint(k-1-i))
			lo := owned[r].lo
			if owned[p].lo < lo {
				lo = owned[p].lo
			}
			merged[r] = span{lo, owned[r].width * 2}
		}
		owned = merged
	}

	return &Schedule{
		Chunks: chunks,
		Steps:  steps,
		Gen:    "hd:" + itoa(chunks),
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
