package synth

import (
	"scc/internal/mesh"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// The search ranks candidate schedules with a closed-form cost derived
// from the same timing.Model the simulator charges, so the ranking and
// the oracle agree on what is expensive: per-leg lightweight post/wait
// software overhead, per-cache-line staging plus MPB/mesh latency by
// hop distance, per-element reduction work, and a queueing penalty when
// several moves of one step load the same mesh link. The estimate is
// deliberately simpler than the simulator (no flag handshakes, no
// wrap-around chunking) — it only has to rank candidates; the winners
// are then measured exactly on the simulator.

type coster struct {
	m      *timing.Model
	np     int
	coords []mesh.Coord
}

// newCoster prices schedules for communicator ranks 0..np-1 mapped onto
// cores 0..np-1 of the model's mesh (the layout the tuner and bench
// harness use; the compiler's root relabeling swaps one pair of ranks,
// which perturbs at most two distances).
func newCoster(m *timing.Model, np int) *coster {
	c := &coster{m: m, np: np, coords: make([]mesh.Coord, np)}
	for r := 0; r < np; r++ {
		tile := r / m.CoresPerTile
		c.coords[r] = mesh.Coord{X: tile % m.MeshWidth, Y: tile / m.MeshWidth}
	}
	return c
}

func (c *coster) hops(a, b int) int { return mesh.Hops(c.coords[a], c.coords[b]) }

// lines returns the cache-line count of an elems-element chunk.
func (c *coster) lines(elems int) int {
	if elems == 0 {
		return 0
	}
	return (8*elems + c.m.CacheLineBytes - 1) / c.m.CacheLineBytes
}

// legOverhead is the software cost of posting and completing one
// lightweight transfer leg.
func (c *coster) legOverhead() simtime.Duration {
	return simtime.CoreCycles(c.m.OverheadLightweightPost + c.m.OverheadLightweightWait)
}

// stepCost prices one step: each rank's legs serialize locally, ranks
// proceed in parallel, and the worst-loaded mesh link adds a queueing
// penalty for the lines beyond its largest single message. elemsOf maps
// a chunk index to its element count for the vector size under
// evaluation.
func (c *coster) stepCost(step []Move, elemsOf func(chunk int) int) simtime.Duration {
	perRank := make([]simtime.Duration, c.np)
	type link struct{ a, b mesh.Coord }
	load := map[link]int{}
	biggest := map[link]int{}
	for _, mv := range step {
		elems := elemsOf(mv.Chunk)
		ln := c.lines(elems)
		if ln == 0 {
			continue
		}
		h := c.hops(mv.From, mv.To)
		send := c.legOverhead() +
			simtime.Duration(ln)*(simtime.CoreCycles(c.m.PutLineCoreCycles)+c.m.MPBAccess(h, false))
		recv := c.legOverhead() +
			simtime.Duration(ln)*(simtime.CoreCycles(c.m.GetLineCoreCycles)+c.m.MPBAccess(h, true))
		if mv.Kind == Combine {
			recv += simtime.CoreCycles(c.m.ReducePerElementCoreCycles * int64(elems))
		}
		perRank[mv.From] += send
		perRank[mv.To] += recv
		path := mesh.Route(c.coords[mv.From], c.coords[mv.To])
		for i := 1; i < len(path); i++ {
			l := link{path[i-1], path[i]}
			load[l] += ln
			if ln > biggest[l] {
				biggest[l] = ln
			}
		}
	}
	var worst simtime.Duration
	for _, d := range perRank {
		if d > worst {
			worst = d
		}
	}
	var queue int
	for l, n := range load {
		if extra := n - biggest[l]; extra > queue {
			queue = extra
		}
	}
	return worst + simtime.MeshCycles(c.m.LineSerializationMeshCycles()*int64(queue))
}

// scheduleCost sums the step costs for an n-element vector.
func (c *coster) scheduleCost(s *Schedule, n int) simtime.Duration {
	elemsOf := func(ch int) int {
		_, l := chunkSpan(n, s.Chunks, ch)
		return l
	}
	var total simtime.Duration
	for _, step := range s.Steps {
		total += c.stepCost(step, elemsOf)
	}
	return total
}

// minStepCost is the cheapest possible step (one tile-local single-line
// leg pair), the unit of the lower bound below.
func (c *coster) minStepCost() simtime.Duration {
	return c.legOverhead() + simtime.CoreCycles(c.m.PutLineCoreCycles) + c.m.MPBAccess(0, false)
}

// lowerBound is an admissible estimate of the remaining cost of a
// partial search state: contribution mass at any rank can at most
// triple per step under the fanout-2 generators (own mask plus two
// incoming), so finishing needs at least ceil(log3 np/biggest) more
// steps, each costing at least minStepCost.
func (c *coster) lowerBound(biggestPop int, done bool) simtime.Duration {
	if done || biggestPop >= c.np {
		return 0
	}
	steps := 0
	for have := biggestPop; have < c.np; have *= 3 {
		steps++
	}
	return simtime.Duration(steps) * c.minStepCost()
}
