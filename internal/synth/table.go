package synth

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"sync"

	"scc/internal/core"
)

// The committed schedule table: like internal/core's tuned_default.json
// it is a data artifact produced by a sweep (`sccbench -synth`) and
// checked in, so every build ships the same winning schedules. Each
// entry is a full Schedule for one (op, np, size-bucket) cell; Register
// compiles the entries into algorithms named
//
//	synth:<op>:<np>:<bucket>
//
// where <bucket> is the cell's MaxN upper edge in elements, or "inf"
// for the unbounded bucket. Registration is explicit and idempotent —
// call RegisterDefaults from main() — never done at package init: the
// root package's golden tests enumerate the registry, and their digests
// are pinned to the hand-written set.

// TableEntry is one committed cell.
type TableEntry struct {
	Op    string    `json:"op"`
	NP    int       `json:"np"`
	MaxN  int       `json:"max_n"` // bucket upper edge in elements; 0 = unbounded
	Sched *Schedule `json:"sched"`
}

// Table is the committed schedule set.
type Table struct {
	// Transport records the point-to-point configuration the sweep
	// measured under (provenance, like core.DecisionTable.Transport).
	Transport string       `json:"transport,omitempty"`
	Entries   []TableEntry `json:"entries"`
}

// NameFor builds the registry name of a cell's algorithm.
func NameFor(op string, np, maxN int) string {
	if maxN == 0 {
		return fmt.Sprintf("synth:%s:%d:inf", op, np)
	}
	return fmt.Sprintf("synth:%s:%d:%d", op, np, maxN)
}

// Validate checks every entry: schedule validity, op consistency, and
// name uniqueness.
func (t *Table) Validate() error {
	seen := map[string]bool{}
	for i, e := range t.Entries {
		if e.Sched == nil {
			return fmt.Errorf("synth: table entry %d has no schedule", i)
		}
		if e.Sched.Op != e.Op || e.Sched.NP != e.NP {
			return fmt.Errorf("synth: table entry %d header (%s,np=%d) disagrees with schedule (%s,np=%d)",
				i, e.Op, e.NP, e.Sched.Op, e.Sched.NP)
		}
		name := NameFor(e.Op, e.NP, e.MaxN)
		if seen[name] {
			return fmt.Errorf("synth: duplicate table entry %s", name)
		}
		seen[name] = true
		if err := e.Sched.Validate(); err != nil {
			return fmt.Errorf("synth: table entry %s: %w", name, err)
		}
	}
	return nil
}

// Register compiles and registers every entry not already present in
// the algorithm registry (idempotent: re-registering an existing name
// is a no-op, so tables may be loaded more than once).
func (t *Table) Register() error {
	if err := t.Validate(); err != nil {
		return err
	}
	for _, e := range t.Entries {
		name := NameFor(e.Op, e.NP, e.MaxN)
		k, err := core.ParseOpKind(e.Op)
		if err != nil {
			return err
		}
		if core.LookupAlgorithm(k, name) != nil {
			continue
		}
		a, err := Compile(e.Sched, name)
		if err != nil {
			return err
		}
		core.RegisterAlgorithm(a)
	}
	return nil
}

// Marshal renders the table as the committed JSON form: one compact
// line per entry. A 512-rank chunked schedule carries thousands of
// moves, so pretty-printing every move object would multiply the
// committed artifact's size by ~5 for no reviewability gain — diffs on
// this file are regenerations, not hand edits.
func (t *Table) Marshal() ([]byte, error) {
	var b []byte
	b = append(b, "{\n"...)
	if t.Transport != "" {
		tr, err := json.Marshal(t.Transport)
		if err != nil {
			return nil, err
		}
		b = append(b, ` "transport": `...)
		b = append(b, tr...)
		b = append(b, ',')
		b = append(b, '\n')
	}
	b = append(b, ` "entries": [`...)
	for i, e := range t.Entries {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n  "...)
		line, err := json.Marshal(e)
		if err != nil {
			return nil, err
		}
		b = append(b, line...)
	}
	b = append(b, "\n ]\n}"...)
	return b, nil
}

// ParseTable decodes and validates a committed table.
func ParseTable(data []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("synth: parse table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

//go:embed synth_default.json
var defaultTableJSON []byte

// DefaultTable parses the embedded committed table.
func DefaultTable() (*Table, error) { return ParseTable(defaultTableJSON) }

var registerOnce sync.Once

// RegisterDefaults registers the embedded table's schedules. Explicit
// and idempotent; binaries that want the synthesized algorithms call it
// once at startup. It panics on an invalid embedded table (the file is
// committed alongside this code; corruption is a build error, not a
// runtime condition).
func RegisterDefaults() {
	registerOnce.Do(func() {
		t, err := DefaultTable()
		if err != nil {
			panic(err)
		}
		if err := t.Register(); err != nil {
			panic(err)
		}
	})
}
