package synth

import (
	"fmt"
	"sort"

	"scc/internal/simtime"
	"scc/internal/timing"
)

// The enumerator. Schedules come from three sources, all mesh-aware:
//
//   - greedy rollouts of a single move-generator flavor — "near"
//     matches senders to Manhattan-nearest partners (MPB-direct pairs
//     first: distance 0 is the other core on the same tile), "xy"
//     prefers dimension-ordered partners (same tile, then same mesh
//     row, then same column) so traffic follows the XY routes the mesh
//     actually uses — at fanout 1 or 2 per sender;
//   - a beam search that mixes those flavors step by step (a schedule
//     may open with tile-local exchanges and switch to row-major
//     fanout), pruned by a timing-model lower bound on the remaining
//     cost;
//   - the halving-doubling template family ("hd:<chunks>"), the
//     chunked Rabenseifner structure for power-of-two communicators
//     that moves a fraction ~2/C of what recursive doubling moves.
//
// Every candidate is symbolically validated before it is returned;
// Enumerate never emits a schedule that Validate rejects.

// Candidate pairs a valid schedule with its model-cost estimate at the
// vector size the enumeration was asked about.
type Candidate struct {
	Sched *Schedule
	Cost  simtime.Duration
}

// Options bounds the search.
type Options struct {
	// Beam is the beam width of the flavor-mixing search (default 4).
	Beam int
	// MaxCands is how many candidates Enumerate returns (default 4).
	MaxCands int
	// MaxChunkPow caps the halving-doubling chunk count at 2^MaxChunkPow
	// (default 2, i.e. up to 4 chunks) to keep committed schedules small.
	MaxChunkPow int
}

func (o Options) withDefaults() Options {
	if o.Beam <= 0 {
		o.Beam = 4
	}
	if o.MaxCands <= 0 {
		o.MaxCands = 4
	}
	if o.MaxChunkPow <= 0 {
		o.MaxChunkPow = 2
	}
	return o
}

// flavor is one move-generator configuration.
type flavor struct {
	gen string // "near" | "xy"
	fan int    // receivers served per sender (1 or 2)
}

func (f flavor) label() string { return fmt.Sprintf("%s:f%d", f.gen, f.fan) }

// flavorsFor lists the generator flavors legal for an op. Reduce is
// fanout-1 only: the IR allows a single write per (rank, chunk) per
// step, so a convergecast absorber takes one partial per step.
func flavorsFor(op string) []flavor {
	if op == "reduce" {
		return []flavor{{"near", 1}, {"xy", 1}}
	}
	return []flavor{{"near", 1}, {"near", 2}, {"xy", 1}, {"xy", 2}}
}

// Enumerate searches schedules for one collective on np ranks (mapped
// onto cores 0..np-1 of the model's mesh) at vector size n, and returns
// the best candidates by model cost, provenance-deduplicated and
// validated. op is an OpKind string: "allreduce", "broadcast", or
// "reduce" (root = rank 0).
func Enumerate(model *timing.Model, op string, np, n int, opt Options) ([]Candidate, error) {
	if np < 2 {
		return nil, fmt.Errorf("synth: np=%d (need at least 2)", np)
	}
	if np > model.NumCores() {
		return nil, fmt.Errorf("synth: np=%d exceeds the %d-core mesh", np, model.NumCores())
	}
	if n < 1 {
		return nil, fmt.Errorf("synth: n=%d", n)
	}
	switch op {
	case "allreduce", "broadcast", "reduce":
	default:
		return nil, fmt.Errorf("synth: unknown op %q", op)
	}
	opt = opt.withDefaults()
	c := newCoster(model, np)

	var cands []Candidate
	add := func(s *Schedule) error {
		if s == nil {
			return nil
		}
		s.Op = op
		s.NP = np
		s.NumSteps = len(s.Steps)
		if err := s.Validate(); err != nil {
			return fmt.Errorf("synth: generator %q produced an invalid schedule: %w", s.Gen, err)
		}
		cands = append(cands, Candidate{Sched: s, Cost: c.scheduleCost(s, n)})
		return nil
	}

	flavors := flavorsFor(op)
	for _, f := range flavors {
		if err := add(beamSearch(c, op, np, n, []flavor{f}, 1)); err != nil {
			return nil, err
		}
	}
	if err := add(beamSearch(c, op, np, n, flavors, opt.Beam)); err != nil {
		return nil, err
	}
	if op == "allreduce" {
		for j := 1; j <= opt.MaxChunkPow; j++ {
			if err := add(halvingDoubling(np, 1<<uint(j))); err != nil {
				return nil, err
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Cost < cands[j].Cost })
	// Drop structural duplicates (different flavors can converge on the
	// same move sequence; keep the cheapest label).
	seen := map[string]bool{}
	uniq := cands[:0]
	for _, cand := range cands {
		fp := movesFingerprint(cand.Sched)
		if seen[fp] {
			continue
		}
		seen[fp] = true
		uniq = append(uniq, cand)
	}
	cands = uniq
	if len(cands) > opt.MaxCands {
		cands = cands[:opt.MaxCands]
	}
	return cands, nil
}

func movesFingerprint(s *Schedule) string {
	b := make([]byte, 0, 8+8*s.TotalMoves())
	b = append(b, byte(s.Chunks), byte(len(s.Steps)))
	for _, step := range s.Steps {
		b = append(b, 0xff)
		for _, mv := range step {
			b = append(b, byte(mv.Chunk), byte(mv.From), byte(mv.From>>8),
				byte(mv.To), byte(mv.To>>8), byte(mv.Kind))
		}
	}
	return string(b)
}

// searchState is one beam entry of the C=1 search: the contribution
// mask per rank (for broadcast: full or empty), the steps taken so far,
// and the accumulated model cost.
type searchState struct {
	masks []mask
	steps [][]Move
	cost  simtime.Duration
	// active, for rooted reduce: ranks whose partial has not yet been
	// absorbed (the convergecast frontier). nil for other ops.
	active []bool
	// mixed notes that steps came from more than one flavor.
	lastLabel string
	mixed     bool
}

func (s *searchState) clone() *searchState {
	c := &searchState{
		masks:     make([]mask, len(s.masks)),
		steps:     append([][]Move(nil), s.steps...),
		cost:      s.cost,
		lastLabel: s.lastLabel,
		mixed:     s.mixed,
	}
	for i := range s.masks {
		c.masks[i] = s.masks[i].clone()
	}
	if s.active != nil {
		c.active = append([]bool(nil), s.active...)
	}
	return c
}

// fingerprint encodes the exact mask state for beam deduplication.
func (s *searchState) fingerprint() string {
	b := make([]byte, 0, len(s.masks)*9)
	for i := range s.masks {
		m := s.masks[i]
		b = append(b, byte(m.lo), byte(m.lo>>8), byte(m.lo>>16), byte(m.lo>>24),
			byte(m.lo>>32), byte(m.lo>>40), byte(m.lo>>48), byte(m.lo>>56))
		for _, w := range m.hi {
			b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
		if s.active != nil && s.active[i] {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return string(b)
}

func (s *searchState) biggestPop() int {
	m := 0
	for i := range s.masks {
		if p := s.masks[i].pop(); p > m {
			m = p
		}
	}
	return m
}

// done reports whether the state satisfies the op's postcondition.
func (s *searchState) done(op string, np int) bool {
	full := fullMask(np)
	switch op {
	case "reduce":
		return s.masks[0].equal(full)
	default:
		for i := range s.masks {
			if !s.masks[i].equal(full) {
				return false
			}
		}
		return true
	}
}

// beamSearch explores step sequences built from the given flavors and
// returns the best terminal schedule, or nil when no flavor can finish
// within the step budget. With a single flavor and width 1 it is a
// greedy rollout of that flavor.
func beamSearch(c *coster, op string, np, n int, flavors []flavor, width int) *Schedule {
	init := &searchState{masks: make([]mask, np)}
	for r := 0; r < np; r++ {
		m := newMask(np)
		switch op {
		case "broadcast":
			if r == 0 {
				m = fullMask(np)
			}
		default:
			m.set(r)
		}
		init.masks[r] = m
	}
	if op == "reduce" {
		init.active = make([]bool, np)
		for r := range init.active {
			init.active[r] = true
		}
	}

	elemsOf := func(int) int { return n } // C=1: the chunk is the vector
	maxSteps := 2*ceilLog2(np) + 6
	beam := []*searchState{init}
	var best *searchState
	for depth := 0; depth < maxSteps && len(beam) > 0; depth++ {
		var next []*searchState
		seen := map[string]bool{}
		for _, st := range beam {
			for _, f := range flavors {
				step := nextStep(c, op, f, st)
				if len(step) == 0 {
					continue // no legal move under this flavor
				}
				child := st.clone()
				child.applyOwn(op, step)
				child.steps = append(child.steps, step)
				child.cost += c.stepCost(step, elemsOf)
				if child.lastLabel != "" && child.lastLabel != f.label() {
					child.mixed = true
				}
				child.lastLabel = f.label()
				if child.done(op, np) {
					if best == nil || child.cost < best.cost {
						best = child
					}
					continue
				}
				if best != nil && child.cost+c.lowerBound(child.biggestPop(), false) >= best.cost {
					continue // pruned by the lower bound
				}
				fp := child.fingerprint()
				if seen[fp] {
					continue
				}
				seen[fp] = true
				next = append(next, child)
			}
		}
		sort.SliceStable(next, func(i, j int) bool {
			li := next[i].cost + c.lowerBound(next[i].biggestPop(), false)
			lj := next[j].cost + c.lowerBound(next[j].biggestPop(), false)
			return li < lj
		})
		if len(next) > width {
			next = next[:width]
		}
		beam = next
	}
	if best == nil {
		return nil
	}
	label := best.lastLabel
	if best.mixed {
		label = "beam"
	}
	return &Schedule{Chunks: 1, Steps: best.steps, Gen: label}
}

// applyOwn mirrors applyStep's mask updates without its validation (the
// generators only emit legal steps; Validate re-checks the final
// schedule anyway).
func (s *searchState) applyOwn(op string, step []Move) {
	updated := make([]mask, 0, len(step))
	idx := make([]int, 0, len(step))
	for _, mv := range step {
		m := s.masks[mv.From].clone()
		if mv.Kind == Combine {
			m.union(s.masks[mv.To])
		}
		updated = append(updated, m)
		idx = append(idx, mv.To)
		if op == "reduce" && mv.Kind == Combine {
			s.active[mv.From] = false
		}
	}
	for i, r := range idx {
		s.masks[r] = updated[i]
	}
}

// partnerKey orders candidate partners for a sender: "near" by pure
// Manhattan distance, "xy" dimension-ordered (same tile, then same row,
// then same column, then the rest), with the rank as the final
// deterministic tie-break.
func partnerKey(c *coster, gen string, a, b int) [3]int {
	h := c.hops(a, b)
	class := 0
	if gen == "xy" {
		ca, cb := c.coords[a], c.coords[b]
		switch {
		case h == 0:
			class = 0
		case ca.Y == cb.Y:
			class = 1
		case ca.X == cb.X:
			class = 2
		default:
			class = 3
		}
	}
	return [3]int{class, h, b}
}

func keyLess(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// nextStep builds one legal step from st under the given flavor. The
// move list order (the compiler's global total order) is deterministic:
// moves are appended in the order decisions are made and every decision
// loop runs over rank-sorted slices.
func nextStep(c *coster, op string, f flavor, st *searchState) []Move {
	np := len(st.masks)
	full := fullMask(np)
	switch op {
	case "broadcast":
		// Holders serve the nearest non-holders, at most fan each.
		var holders, missing []int
		for r := 0; r < np; r++ {
			if st.masks[r].equal(full) {
				holders = append(holders, r)
			} else {
				missing = append(missing, r)
			}
		}
		served := map[int]int{}
		var step []Move
		for _, r := range missing {
			bestH := -1
			var bestK [3]int
			for _, h := range holders {
				if served[h] >= f.fan {
					continue
				}
				k := partnerKey(c, f.gen, h, r)
				if bestH < 0 || keyLess(k, bestK) {
					bestH, bestK = h, k
				}
			}
			if bestH >= 0 {
				served[bestH]++
				step = append(step, Move{Chunk: 0, From: bestH, To: r, Kind: Copy})
			}
		}
		return step

	case "allreduce":
		// Once full ranks exist they serve non-full ranks with copies
		// (the finish phase for np that is not a power of two);
		// otherwise pair ranks with disjoint masks for symmetric
		// exchange+combine.
		var fulls, part []int
		for r := 0; r < np; r++ {
			if st.masks[r].equal(full) {
				fulls = append(fulls, r)
			} else {
				part = append(part, r)
			}
		}
		var step []Move
		if len(fulls) > 0 {
			served := map[int]int{}
			for _, r := range part {
				bestF := -1
				var bestK [3]int
				for _, fr := range fulls {
					if served[fr] >= f.fan {
						continue
					}
					k := partnerKey(c, f.gen, fr, r)
					if bestF < 0 || keyLess(k, bestK) {
						bestF, bestK = fr, k
					}
				}
				if bestF >= 0 {
					served[bestF]++
					step = append(step, Move{Chunk: 0, From: bestF, To: r, Kind: Copy})
				}
			}
			return step
		}
		// Exchange phase: match each unpaired rank (ascending) with its
		// best disjoint partner, preferring equal contribution mass
		// (balanced doubling), then the flavor's distance order.
		paired := make([]bool, np)
		for r := 0; r < np; r++ {
			if paired[r] {
				continue
			}
			bestP := -1
			var bestK [3]int
			myPop := st.masks[r].pop()
			for p := r + 1; p < np; p++ {
				if paired[p] || !st.masks[r].disjoint(st.masks[p]) {
					continue
				}
				k := partnerKey(c, f.gen, r, p)
				popGap := st.masks[p].pop() - myPop
				if popGap < 0 {
					popGap = -popGap
				}
				k2 := [3]int{popGap*16 + k[0], k[1], k[2]}
				if bestP < 0 || keyLess(k2, bestK) {
					bestP, bestK = p, k2
				}
			}
			if bestP >= 0 {
				paired[r], paired[bestP] = true, true
				step = append(step,
					Move{Chunk: 0, From: r, To: bestP, Kind: Combine},
					Move{Chunk: 0, From: bestP, To: r, Kind: Combine})
			}
		}
		return step

	case "reduce":
		// Convergecast: active non-root ranks send their partial to the
		// nearest active rank at least as close to the root (rank 0),
		// which absorbs one partial per step (single-write rule).
		var active []int
		for r := 0; r < np; r++ {
			if st.active[r] {
				active = append(active, r)
			}
		}
		if len(active) <= 1 {
			return nil
		}
		absorbed := map[int]bool{}
		sent := map[int]bool{}
		var step []Move
		// Farthest-from-root senders choose first so leaves drain
		// toward the root.
		order := append([]int(nil), active...)
		sort.SliceStable(order, func(i, j int) bool {
			hi, hj := c.hops(order[i], 0), c.hops(order[j], 0)
			if hi != hj {
				return hi > hj
			}
			return order[i] > order[j]
		})
		for _, r := range order {
			// A rank that absorbs this step cannot also send: its chunk
			// is being written and the validator (correctly) rejects
			// reading it in the same step.
			if r == 0 || sent[r] || absorbed[r] {
				continue
			}
			bestP := -1
			var bestK [3]int
			for _, p := range active {
				if p == r || sent[p] || absorbed[p] {
					continue
				}
				if c.hops(p, 0) > c.hops(r, 0) || (c.hops(p, 0) == c.hops(r, 0) && p > r) {
					continue // only send rootward
				}
				k := partnerKey(c, f.gen, r, p)
				if bestP < 0 || keyLess(k, bestK) {
					bestP, bestK = p, k
				}
			}
			if bestP >= 0 {
				absorbed[bestP] = true
				sent[r] = true
				step = append(step, Move{Chunk: 0, From: r, To: bestP, Kind: Combine})
			}
		}
		return step
	}
	return nil
}

func ceilLog2(n int) int {
	s, v := 0, 1
	for v < n {
		v *= 2
		s++
	}
	return s
}
