package synth

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"scc/internal/core"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// The oracle-side properties: every compiled schedule computes the same
// bits as a sequential reference (dyadic inputs make float64 reduction
// exact in any association order), runs deterministically in virtual
// time, and works for any root and on proper subgroups through the
// rank relabeling.

func dyadicInputs(seed int64, cores, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, cores)
	for c := range out {
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Round(rng.Float64()*64) / 8
		}
		out[c] = v
	}
	return out
}

// runCompiled executes one compiled schedule on a chip, communicator
// cores 0..np-1 (a proper Group when np < the chip), root core 7 for
// rooted ops (or 0 when np < 8), and returns the final virtual time and
// the per-core results.
func runCompiled(t *testing.T, model *timing.Model, a core.Algorithm, op string, np, n int, in [][]float64) (simtime.Time, [][]float64, int) {
	t.Helper()
	cfg := core.ConfigBalanced
	chip := scc.New(model)
	comm := rcce.NewComm(chip)
	root := 7
	if np < 8 {
		root = np / 2
	}
	var grp *core.Group
	if np < chip.NumCores() {
		members := make([]int, np)
		for i := range members {
			members[i] = i
		}
		g, err := core.NewGroup(members, chip.NumCores())
		if err != nil {
			t.Fatal(err)
		}
		grp = g
	}
	results := make([][]float64, chip.NumCores())
	chip.Launch(func(c *scc.Core) {
		if c.ID >= np {
			return
		}
		x, err := core.NewCtxGroup(comm.UE(c.ID), cfg, grp)
		if err != nil {
			t.Errorf("ctx: %v", err)
			return
		}
		if !a.Applicable(x, n) {
			t.Errorf("%s np=%d: compiled schedule not applicable", op, np)
			return
		}
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		c.WriteF64s(src, in[c.ID])
		switch op {
		case "allreduce":
			err = a.(core.AllreduceAlgorithm).Allreduce(x, src, dst, n, core.Sum)
		case "broadcast":
			err = a.(core.BroadcastAlgorithm).Broadcast(x, root, src, n)
			dst = src
		case "reduce":
			err = a.(core.ReduceAlgorithm).Reduce(x, root, src, dst, n, core.Sum)
		}
		if err != nil {
			t.Errorf("%s[%s] np=%d n=%d core %d: %v", op, a.Name(), np, n, c.ID, err)
			return
		}
		if op == "reduce" && c.ID != root {
			return
		}
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		results[c.ID] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("%s[%s] np=%d n=%d: %v", op, a.Name(), np, n, err)
	}
	return chip.Now(), results, root
}

func refResult(op string, root, np, cores int, in [][]float64) [][]float64 {
	n := len(in[0])
	out := make([][]float64, cores)
	switch op {
	case "allreduce", "reduce":
		sum := make([]float64, n)
		for c := 0; c < np; c++ {
			for i := range in[c] {
				sum[i] += in[c][i]
			}
		}
		if op == "allreduce" {
			for c := 0; c < np; c++ {
				out[c] = sum
			}
		} else {
			out[root] = sum
		}
	case "broadcast":
		for c := 0; c < np; c++ {
			out[c] = in[root]
		}
	}
	return out
}

func TestCompiledSchedulesBitEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	model := timing.Default()
	for _, op := range []string{"allreduce", "broadcast", "reduce"} {
		for _, np := range []int{12, 48} {
			for _, n := range []int{1, 13, 64, 200} {
				cands, err := Enumerate(model, op, np, n, Options{MaxCands: 3})
				if err != nil {
					t.Fatal(err)
				}
				in := dyadicInputs(int64(len(op))*1000+int64(np*1000+n), 48, n)
				for _, cand := range cands {
					a, err := Compile(cand.Sched, NameFor(op, np, 0))
					if err != nil {
						t.Fatal(err)
					}
					now1, got1, root := runCompiled(t, model, a, op, np, n, in)
					now2, got2, _ := runCompiled(t, model, a, op, np, n, in)
					if now1 != now2 {
						t.Errorf("%s[%s] np=%d n=%d: nondeterministic virtual time %v vs %v",
							op, cand.Sched.Gen, np, n, now1, now2)
					}
					want := refResult(op, root, np, 48, in)
					for c := range want {
						if want[c] == nil {
							continue
						}
						if got1[c] == nil {
							t.Errorf("%s[%s] np=%d n=%d: core %d missing result", op, cand.Sched.Gen, np, n, c)
							continue
						}
						for i := range want[c] {
							if got1[c][i] != want[c][i] || got1[c][i] != got2[c][i] {
								t.Errorf("%s[%s] np=%d n=%d: core %d elem %d = %v, want %v (bit-exact)",
									op, cand.Sched.Gen, np, n, c, i, got1[c][i], want[c][i])
								break
							}
						}
					}
				}
			}
		}
	}
}

// The halving-doubling template is the one chunked schedule family; run
// it end to end on a power-of-two subgroup.
func TestHalvingDoublingBitEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	model := timing.Default()
	for _, chunks := range []int{2, 4} {
		s := halvingDoubling(32, chunks)
		s.Op, s.NP, s.NumSteps = "allreduce", 32, len(s.Steps)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{3, 64, 552} {
			a, err := Compile(s, NameFor("allreduce", 32, 0))
			if err != nil {
				t.Fatal(err)
			}
			in := dyadicInputs(int64(7000+chunks*100+n), 48, n)
			_, got, _ := runCompiled(t, model, a, "allreduce", 32, n, in)
			want := refResult("allreduce", 0, 32, 48, in)
			for c := range want {
				if want[c] == nil {
					continue
				}
				if got[c] == nil {
					t.Fatalf("hd:%d n=%d: core %d missing result", chunks, n, c)
				}
				for i := range want[c] {
					if got[c][i] != want[c][i] {
						t.Fatalf("hd:%d n=%d: core %d elem %d = %v, want %v", chunks, n, c, i, got[c][i], want[c][i])
					}
				}
			}
		}
	}
}

func TestNameFor(t *testing.T) {
	if got := NameFor("allreduce", 48, 64); got != "synth:allreduce:48:64" {
		t.Fatalf("NameFor = %q", got)
	}
	if got := NameFor("reduce", 512, 0); got != "synth:reduce:512:inf" {
		t.Fatalf("NameFor = %q", got)
	}
}

func TestDefaultTableRegisters(t *testing.T) {
	tab, err := DefaultTable()
	if err != nil {
		t.Fatalf("embedded table: %v", err)
	}
	RegisterDefaults()
	RegisterDefaults() // idempotent
	for _, e := range tab.Entries {
		k, err := core.ParseOpKind(e.Op)
		if err != nil {
			t.Fatal(err)
		}
		name := NameFor(e.Op, e.NP, e.MaxN)
		if !strings.HasPrefix(name, "synth:") {
			t.Fatalf("name %q does not follow synth:<op>:<np>:<bucket>", name)
		}
		a := core.LookupAlgorithm(k, name)
		if a == nil {
			t.Fatalf("entry %s not registered", name)
		}
		if a.Name() != name {
			t.Fatalf("registered name %q != %q", a.Name(), name)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	model := timing.Default()
	cands, err := Enumerate(model, "broadcast", 8, 16, Options{MaxCands: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab := &Table{
		Transport: "test",
		Entries:   []TableEntry{{Op: "broadcast", NP: 8, MaxN: 16, Sched: cands[0].Sched}},
	}
	data, err := tab.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 1 || back.Entries[0].Sched.TotalMoves() != cands[0].Sched.TotalMoves() {
		t.Fatal("table did not survive the JSON round trip")
	}
	if err := back.Register(); err != nil {
		t.Fatal(err)
	}
	if err := back.Register(); err != nil { // idempotent
		t.Fatal(err)
	}
	if core.LookupAlgorithm(core.KindBroadcast, "synth:broadcast:8:16") == nil {
		t.Fatal("round-tripped table entry not registered")
	}
}
