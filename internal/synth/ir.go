// Package synth searches for collective schedules instead of
// hand-writing them. The deterministic simulator is a cheap, exact
// oracle (two runs of a schedule are bit-identical in virtual time), so
// candidate schedules can be enumerated against the timing model,
// validated symbolically, and only the winners measured for real. The
// approach follows the SCCL line of work ("Synthesizing Optimal
// Collective Algorithms"): a schedule is a per-step list of chunk moves
// between ranks, searched per (collective, communicator, mesh) and then
// compiled onto the existing core.Endpoint transport as an ordinary
// registered algorithm named "synth:<op>:<np>:<bucket>".
package synth

import (
	"fmt"
	"math/bits"
)

// MoveKind says what the receiver does with an incoming chunk.
type MoveKind uint8

const (
	// Copy overwrites the receiver's chunk with the sender's.
	Copy MoveKind = iota
	// Combine reduces the sender's partial into the receiver's chunk.
	Combine
)

func (k MoveKind) String() string {
	if k == Combine {
		return "combine"
	}
	return "copy"
}

// Move is one chunk transfer: rank From sends chunk Chunk to rank To,
// which applies it per Kind. Ranks are schedule ranks (0..NP-1, root
// always 0 for rooted ops); the compiler relabels for other roots.
type Move struct {
	Chunk int      `json:"c"`
	From  int      `json:"f"`
	To    int      `json:"t"`
	Kind  MoveKind `json:"k"`
}

// Schedule is the synthesis IR: the vector is split into Chunks equal
// pieces and Steps[i] lists the moves of step i. All moves in a step
// read pre-step state; the list order within a step is the global total
// order the compiler uses to sequence each rank's actions (see
// compile.go for why that is deadlock-free). NumSteps is a header copy
// of len(Steps), kept explicit so a truncated or hand-edited schedule
// fails validation instead of silently running short.
type Schedule struct {
	Op       string   `json:"op"` // "allreduce" | "broadcast" | "reduce"
	NP       int      `json:"np"`
	Chunks   int      `json:"chunks"`
	NumSteps int      `json:"num_steps"`
	Steps    [][]Move `json:"steps"`
	// Gen records which generator family produced the schedule
	// ("beam", "hd:2", ...) — provenance for the Pareto tables.
	Gen string `json:"gen,omitempty"`
}

// mask is a bitset over ranks: bit r set means rank r's contribution is
// accumulated in the value. np <= 64 uses one word; larger communicators
// use the spill slice.
type mask struct {
	lo uint64
	hi []uint64 // nil for np <= 64
}

func newMask(np int) mask {
	if np <= 64 {
		return mask{}
	}
	return mask{hi: make([]uint64, (np+63)/64-1)}
}

func (m mask) clone() mask {
	c := m
	if m.hi != nil {
		c.hi = append([]uint64(nil), m.hi...)
	}
	return c
}

func (m *mask) set(r int) {
	if r < 64 {
		m.lo |= 1 << uint(r)
	} else {
		m.hi[r/64-1] |= 1 << uint(r%64)
	}
}

func (m mask) has(r int) bool {
	if r < 64 {
		return m.lo&(1<<uint(r)) != 0
	}
	return m.hi[r/64-1]&(1<<uint(r%64)) != 0
}

func (m mask) pop() int {
	n := bits.OnesCount64(m.lo)
	for _, w := range m.hi {
		n += bits.OnesCount64(w)
	}
	return n
}

func (m mask) empty() bool {
	if m.lo != 0 {
		return false
	}
	for _, w := range m.hi {
		if w != 0 {
			return false
		}
	}
	return true
}

func (a mask) disjoint(b mask) bool {
	if a.lo&b.lo != 0 {
		return false
	}
	for i := range a.hi {
		if a.hi[i]&b.hi[i] != 0 {
			return false
		}
	}
	return true
}

// subset reports a ⊆ b.
func (a mask) subset(b mask) bool {
	if a.lo&^b.lo != 0 {
		return false
	}
	for i := range a.hi {
		if a.hi[i]&^b.hi[i] != 0 {
			return false
		}
	}
	return true
}

func (a *mask) union(b mask) {
	a.lo |= b.lo
	for i := range a.hi {
		a.hi[i] |= b.hi[i]
	}
}

func (a mask) equal(b mask) bool {
	if a.lo != b.lo {
		return false
	}
	for i := range a.hi {
		if a.hi[i] != b.hi[i] {
			return false
		}
	}
	return true
}

func fullMask(np int) mask {
	m := newMask(np)
	for r := 0; r < np; r++ {
		m.set(r)
	}
	return m
}

// state is the symbolic execution state: st[rank][chunk] is the
// contribution mask held in that rank's buffer for that chunk.
type state [][]mask

func (s state) clone() state {
	c := make(state, len(s))
	for r := range s {
		c[r] = make([]mask, len(s[r]))
		for ch := range s[r] {
			c[r][ch] = s[r][ch].clone()
		}
	}
	return c
}

// initState builds the pre-schedule state for op: for broadcast every
// chunk of rank 0 (the schedule root) is "full" and everyone else is
// empty; for reduce/allreduce every rank holds exactly its own
// contribution in every chunk.
func initState(op string, np, chunks int) (state, error) {
	s := make(state, np)
	full := fullMask(np)
	for r := range s {
		s[r] = make([]mask, chunks)
		for ch := range s[r] {
			switch op {
			case "broadcast":
				if r == 0 {
					s[r][ch] = full.clone()
				} else {
					s[r][ch] = newMask(np)
				}
			case "reduce", "allreduce":
				m := newMask(np)
				m.set(r)
				s[r][ch] = m
			default:
				return nil, fmt.Errorf("synth: unknown op %q", op)
			}
		}
	}
	return s, nil
}

// applyStep symbolically executes one step on st (in place), enforcing
// the per-step well-formedness rules:
//
//   - every move is in range, From != To, and for broadcast is a Copy;
//   - reads use pre-step state: a sender must hold a non-empty mask,
//     and a (rank, chunk) written in the step may be read in the same
//     step only as half of a symmetric single-chunk exchange with the
//     same peer (the one pattern the compiler fuses into ExchangePair,
//     so the pre-step value is what actually goes on the wire);
//   - at most one write per (rank, chunk) per step;
//   - Combine requires disjoint contribution masks (no contribution is
//     ever counted twice), Copy requires the receiver's mask to be a
//     subset of the sender's (nothing is discarded).
func applyStep(op string, np, chunks int, st state, step []Move) error {
	type wkey struct{ r, c int }
	writes := map[wkey]Move{}
	reads := map[wkey][]Move{}
	for _, mv := range step {
		if mv.Chunk < 0 || mv.Chunk >= chunks || mv.From < 0 || mv.From >= np || mv.To < 0 || mv.To >= np {
			return fmt.Errorf("synth: move %+v out of range (np=%d chunks=%d)", mv, np, chunks)
		}
		if mv.From == mv.To {
			return fmt.Errorf("synth: self-move %+v", mv)
		}
		if op == "broadcast" && mv.Kind != Copy {
			return fmt.Errorf("synth: broadcast schedule contains %s move %+v", mv.Kind, mv)
		}
		if st[mv.From][mv.Chunk].empty() {
			return fmt.Errorf("synth: move %+v sends an empty chunk", mv)
		}
		wk := wkey{mv.To, mv.Chunk}
		if prev, dup := writes[wk]; dup {
			return fmt.Errorf("synth: two writes to rank %d chunk %d in one step (%+v, %+v)", mv.To, mv.Chunk, prev, mv)
		}
		writes[wk] = mv
		reads[wkey{mv.From, mv.Chunk}] = append(reads[wkey{mv.From, mv.Chunk}], mv)
		switch mv.Kind {
		case Combine:
			if !st[mv.From][mv.Chunk].disjoint(st[mv.To][mv.Chunk]) {
				return fmt.Errorf("synth: combine %+v double-counts a contribution", mv)
			}
		case Copy:
			if !st[mv.To][mv.Chunk].subset(st[mv.From][mv.Chunk]) {
				return fmt.Errorf("synth: copy %+v discards receiver contributions", mv)
			}
		default:
			return fmt.Errorf("synth: unknown move kind in %+v", mv)
		}
	}
	// Read-write overlap: a chunk both written at and sent from the same
	// rank in one step must be the symmetric exchange.
	for wk, w := range writes {
		for _, rmv := range reads[wk] {
			if len(reads[wk]) > 1 || rmv.To != w.From {
				return fmt.Errorf("synth: rank %d chunk %d is written (%+v) and read (%+v) in one step without a symmetric exchange",
					wk.r, wk.c, w, rmv)
			}
		}
	}
	// Commit: all reads used pre-step masks (captured per move above via
	// st), so apply writes from a snapshot of the senders' masks.
	type upd struct {
		wk wkey
		m  mask
	}
	var ups []upd
	for wk, mv := range writes {
		src := st[mv.From][mv.Chunk].clone()
		if mv.Kind == Combine {
			src.union(st[wk.r][wk.c])
		}
		ups = append(ups, upd{wk, src})
	}
	for _, u := range ups {
		st[u.wk.r][u.wk.c] = u.m
	}
	return nil
}

// Validate checks the whole schedule symbolically: header consistency,
// per-step well-formedness (applyStep), and the op's postcondition —
// for broadcast and allreduce every rank ends full in every chunk; for
// reduce the root (schedule rank 0) does, i.e. every core's
// contribution reaches the root.
func (s *Schedule) Validate() error {
	if s.NP < 1 {
		return fmt.Errorf("synth: schedule np=%d", s.NP)
	}
	if s.Chunks < 1 {
		return fmt.Errorf("synth: schedule chunks=%d", s.Chunks)
	}
	if s.NumSteps != len(s.Steps) {
		return fmt.Errorf("synth: header says %d steps, body has %d", s.NumSteps, len(s.Steps))
	}
	st, err := initState(s.Op, s.NP, s.Chunks)
	if err != nil {
		return err
	}
	for i, step := range s.Steps {
		if len(step) == 0 {
			return fmt.Errorf("synth: step %d is empty", i)
		}
		if err := applyStep(s.Op, s.NP, s.Chunks, st, step); err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
	}
	full := fullMask(s.NP)
	check := func(r int) error {
		for ch := 0; ch < s.Chunks; ch++ {
			if !st[r][ch].equal(full) {
				return fmt.Errorf("synth: rank %d chunk %d ends with %d/%d contributions", r, ch, st[r][ch].pop(), s.NP)
			}
		}
		return nil
	}
	switch s.Op {
	case "reduce":
		return check(0)
	case "broadcast", "allreduce":
		for r := 0; r < s.NP; r++ {
			if err := check(r); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("synth: unknown op %q", s.Op)
	}
}

// TotalMoves counts the moves across all steps (the bandwidth proxy
// reported next to step count in the Pareto tables).
func (s *Schedule) TotalMoves() int {
	n := 0
	for _, st := range s.Steps {
		n += len(st)
	}
	return n
}

// chunkSpan returns the element offset and length of chunk ch when an
// n-element vector is split into `chunks` near-equal pieces (the first
// n%chunks chunks get the extra element). Chunks may be empty when
// n < chunks; the compiler skips zero-length transfers.
func chunkSpan(n, chunks, ch int) (off, length int) {
	base := n / chunks
	rem := n % chunks
	off = ch*base + min(ch, rem)
	length = base
	if ch < rem {
		length++
	}
	return off, length
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
