package synth

import (
	"fmt"

	"scc/internal/core"
	"scc/internal/scc"
)

// The compiler lowers a validated Schedule onto core.Endpoint, yielding
// an ordinary registered algorithm: selectors, the bench harness,
// faultbench and metrics treat it exactly like the hand-written ones.
//
// Execution model. Within a step, the IR's move list is the global
// total order. Each rank extracts its own moves, fuses every
// send/receive pair it has with the same peer into one ExchangePair
// call (both ends derive the same pairing from the same list, so the
// fusions match), and runs the resulting actions ordered by the
// position of their earliest constituent move. That is deadlock-free
// for rendezvous semantics: consider the unfinished action with the
// globally smallest position; its partner rank cannot be blocked on an
// earlier action (that action would be smaller), cannot have passed it
// (the action would be finished), so it is blocked on the very same
// action — which therefore completes. Fusing matters for correctness,
// not just overlap: in a symmetric exchange each side sends the
// pre-step chunk while receiving into staging, so the value on the
// wire is the pre-step one the IR's validator reasoned about; combines
// are applied only after the exchange returns.

// Compile validates s and wraps it as a named algorithm. The returned
// value implements the per-op interface matching s.Op; Applicable
// requires an exactly matching communicator size on a single chip.
func Compile(s *Schedule, name string) (core.Algorithm, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := base{s: s, name: name}
	switch s.Op {
	case "allreduce":
		return allreduceAlg{b}, nil
	case "broadcast":
		return broadcastAlg{b}, nil
	case "reduce":
		return reduceAlg{b}, nil
	}
	return nil, fmt.Errorf("synth: compile: unknown op %q", s.Op)
}

type base struct {
	s    *Schedule
	name string
}

func (b base) Name() string { return b.name }
func (b base) Describe() string {
	return fmt.Sprintf("synthesized %s schedule (gen %s: %d steps, %d chunks, %d moves) for np=%d",
		b.s.Op, b.s.Gen, b.s.NumSteps, b.s.Chunks, b.s.TotalMoves(), b.s.NP)
}

// Applicable: the schedule is specialized to one communicator size and
// knows nothing about the inter-chip fabric.
func (b base) Applicable(x *core.Ctx, n int) bool {
	return x.NP() == b.s.NP && !x.MultiChip()
}

// action is one transport call of a rank within a step: a send, a
// receive, or a fused symmetric exchange with the same peer.
type action struct {
	pos        int // earliest constituent move's index in the step
	peer       int // schedule rank of the other side
	send, recv *Move
}

// Schedule ranks are relabeled through an involution that swaps
// schedule rank 0 with the communicator rank of the requested root, so
// rooted schedules (synthesized for root 0) serve any root; for
// allreduce the identity is used. sched2comm == comm2sched.
func rootSwap(rootR int) func(int) int {
	return func(r int) int {
		switch r {
		case 0:
			return rootR
		case rootR:
			return 0
		}
		return r
	}
}

// run executes the schedule. work is the rank's working vector (chunk
// reads and writes), stage the receive staging for combines (may be 0
// for broadcast, which only copies), relabel the rank involution, and
// op the reduction operator for Combine moves.
func (b base) run(x *core.Ctx, relabel func(int) int, work, stage scc.Addr, n int, op core.Op) error {
	ep := x.Endpoint()
	mySched := relabel(x.Rank())
	s := b.s
	for _, step := range s.Steps {
		// Gather this rank's moves, queueing per peer for fusion.
		var order []int // peers in first-occurrence order
		sendQ := map[int][]action{}
		recvQ := map[int][]action{}
		touch := func(p int) {
			if _, seen := sendQ[p]; !seen {
				if _, seen := recvQ[p]; !seen {
					order = append(order, p)
				}
			}
		}
		for i := range step {
			mv := &step[i]
			switch mySched {
			case mv.From:
				touch(mv.To)
				sendQ[mv.To] = append(sendQ[mv.To], action{pos: i, peer: mv.To, send: mv})
			case mv.To:
				touch(mv.From)
				recvQ[mv.From] = append(recvQ[mv.From], action{pos: i, peer: mv.From, recv: mv})
			}
		}
		// Fuse per-peer send/receive pairs in order; both ends compute
		// the same pairing from the same global list.
		var acts []action
		for _, p := range order {
			ss, rs := sendQ[p], recvQ[p]
			k := len(ss)
			if len(rs) < k {
				k = len(rs)
			}
			for i := 0; i < k; i++ {
				a := action{pos: ss[i].pos, peer: p, send: ss[i].send, recv: rs[i].recv}
				if rs[i].pos < a.pos {
					a.pos = rs[i].pos
				}
				acts = append(acts, a)
			}
			acts = append(acts, ss[k:]...)
			acts = append(acts, rs[k:]...)
		}
		// Order by earliest constituent (positions are unique).
		for i := 1; i < len(acts); i++ {
			for j := i; j > 0 && acts[j].pos < acts[j-1].pos; j-- {
				acts[j], acts[j-1] = acts[j-1], acts[j]
			}
		}
		for _, a := range acts {
			if err := b.runAction(x, ep, relabel, a, work, stage, n, op); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b base) runAction(x *core.Ctx, ep core.Endpoint, relabel func(int) int, a action, work, stage scc.Addr, n int, op core.Op) error {
	span := func(mv *Move) (scc.Addr, int, int) {
		off, l := chunkSpan(n, b.s.Chunks, mv.Chunk)
		return scc.Addr(8 * off), l, off
	}
	peerCore := x.Member(relabel(a.peer))
	var sOff, rOff scc.Addr
	var sLen, rLen int
	if a.send != nil {
		sOff, sLen, _ = span(a.send)
	}
	if a.recv != nil {
		rOff, rLen, _ = span(a.recv)
	}
	// Zero-length chunks (n < Chunks) drop their legs; chunk lengths
	// are pure functions of the chunk index, so both ends agree.
	switch {
	case a.send != nil && a.recv != nil && sLen > 0 && rLen > 0:
		recvInto := work + rOff
		if a.recv.Kind == Combine {
			recvInto = stage + rOff
		}
		if err := ep.ExchangePair(peerCore, work+sOff, 8*sLen, recvInto, 8*rLen); err != nil {
			return err
		}
		if a.recv.Kind == Combine {
			x.ReduceInto(work+rOff, work+rOff, stage+rOff, rLen, op)
		}
		return nil
	case a.send != nil && sLen > 0:
		return ep.Send(peerCore, work+sOff, 8*sLen)
	case a.recv != nil && rLen > 0:
		if a.recv.Kind == Combine {
			if err := ep.Recv(peerCore, stage+rOff, 8*rLen); err != nil {
				return err
			}
			x.ReduceInto(work+rOff, work+rOff, stage+rOff, rLen, op)
			return nil
		}
		return ep.Recv(peerCore, work+rOff, 8*rLen)
	}
	return nil
}

type allreduceAlg struct{ base }

func (a allreduceAlg) Allreduce(x *core.Ctx, src, dst scc.Addr, n int, op core.Op) error {
	_, stage := x.ScratchPair(n)
	x.CopyPrivate(dst, src, n)
	ident := func(r int) int { return r }
	return a.run(x, ident, dst, stage, n, op)
}

type broadcastAlg struct{ base }

func (a broadcastAlg) Broadcast(x *core.Ctx, root int, addr scc.Addr, n int) error {
	rootR, err := x.RootRank("Broadcast", root)
	if err != nil {
		return err
	}
	return a.run(x, rootSwap(rootR), addr, 0, n, nil)
}

type reduceAlg struct{ base }

func (a reduceAlg) Reduce(x *core.Ctx, root int, src, dst scc.Addr, n int, op core.Op) error {
	rootR, err := x.RootRank("Reduce", root)
	if err != nil {
		return err
	}
	work, stage := x.ScratchPair(n)
	if x.Rank() == rootR {
		work = dst
	}
	x.CopyPrivate(work, src, n)
	return a.run(x, rootSwap(rootR), work, stage, n, op)
}
