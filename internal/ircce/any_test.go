package ircce

import (
	"testing"

	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"

	"scc/internal/rcce"
)

func TestRecvAnyPicksUpFromUnknownSender(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	const sender = 29
	var gotSrc int
	var gotVal float64
	chip.LaunchOne(sender, func(c *scc.Core) {
		lib := New(comm.UE(sender))
		a := c.AllocF64(4)
		c.WriteF64s(a, []float64{42, 0, 0, 0})
		c.Compute(simtime.Microseconds(25))
		lib.Wait(lib.ISend(0, a, 32))
	})
	chip.LaunchOne(0, func(c *scc.Core) {
		lib := New(comm.UE(0))
		a := c.AllocF64(4)
		gotSrc = lib.RecvAny(a, 32)
		buf := make([]float64, 4)
		c.ReadF64s(a, buf)
		gotVal = buf[0]
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if gotSrc != sender || gotVal != 42 {
		t.Fatalf("RecvAny got src=%d val=%v, want %d/42", gotSrc, gotVal, sender)
	}
}

func TestProbe(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	probedEarly, probedLate := true, false
	chip.LaunchOne(0, func(c *scc.Core) {
		lib := New(comm.UE(0))
		probedEarly = lib.Probe(1) // nothing sent yet
		c.Compute(simtime.Microseconds(200))
		probedLate = lib.Probe(1) // now staged
		a := c.AllocF64(2)
		lib.Wait(lib.IRecv(1, a, 16))
	})
	chip.LaunchOne(1, func(c *scc.Core) {
		lib := New(comm.UE(1))
		c.Compute(simtime.Microseconds(50))
		a := c.AllocF64(2)
		lib.Wait(lib.ISend(0, a, 16))
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if probedEarly {
		t.Error("Probe returned true before any send")
	}
	if !probedLate {
		t.Error("Probe returned false after the send was staged")
	}
}

func TestCancelUnstartedRecv(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.LaunchOne(0, func(c *scc.Core) {
		lib := New(comm.UE(0))
		a := c.AllocF64(2)
		r := lib.IRecv(1, a, 16) // nothing will ever arrive
		if !lib.Cancel(r) {
			t.Error("cancel of an unstarted receive failed")
		}
		if lib.Pending() != 0 {
			t.Errorf("pending = %d after cancel", lib.Pending())
		}
		if lib.Cancel(r) {
			t.Error("double cancel succeeded")
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelSendRefused(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.LaunchOne(0, func(c *scc.Core) {
		lib := New(comm.UE(0))
		a := c.AllocF64(2)
		s := lib.ISend(1, a, 16)
		if lib.Cancel(s) {
			t.Error("cancel of a staged send must be refused")
		}
		lib.Wait(s)
	})
	chip.LaunchOne(1, func(c *scc.Core) {
		lib := New(comm.UE(1))
		a := c.AllocF64(2)
		lib.Wait(lib.IRecv(0, a, 16))
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelStartedRecvRefused(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.LaunchOne(0, func(c *scc.Core) {
		lib := New(comm.UE(0))
		c.Compute(simtime.Microseconds(100)) // let the sender stage first
		a := c.AllocF64(2)
		r := lib.IRecv(1, a, 16) // consumes the staged chunk immediately
		if lib.Cancel(r) {
			t.Error("cancel of a completed receive must be refused")
		}
		lib.Wait(r)
	})
	chip.LaunchOne(1, func(c *scc.Core) {
		lib := New(comm.UE(1))
		a := c.AllocF64(2)
		lib.Wait(lib.ISend(0, a, 16))
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
}
