package ircce

import (
	"scc/internal/rcce"
	"scc/internal/scc"
)

// The convenience features whose management cost the paper singles out
// (Sec. IV-B): receiving from an arbitrary source, probing, and request
// cancellation. They are exactly the features the lightweight library
// refuses to offer.

// RecvAny receives nBytes from whichever peer sends first and returns
// the source rank. It scans all possible senders' flags (one wait over
// 47 flags), which is why plain RCCE insists the source be known "in
// advance".
func (l *Lib) RecvAny(addr scc.Addr, nBytes int) int {
	ue := l.ue
	c := ue.Core()
	comm := ue.Comm()
	// Arbitrary-source matching costs an extra list/queue pass.
	c.ComputeCycles(l.costs.Post)

	flags := make([]int, 0, comm.NumUEs()-1)
	srcs := make([]int, 0, comm.NumUEs()-1)
	for p := 0; p < comm.NumUEs(); p++ {
		if p == ue.ID() {
			continue
		}
		flags = append(flags, comm.FlagAddr(ue.ID(), p, rcce.FlagSent))
		srcs = append(srcs, p)
	}
	idx := c.WaitFlagAny(flags, 1)
	src := srcs[idx]
	r := l.IRecv(src, addr, nBytes)
	l.Wait(r)
	return src
}

// Probe reports whether a message from src is already staged (its sent
// flag raised), without consuming anything.
func (l *Lib) Probe(src int) bool {
	ue := l.ue
	c := ue.Core()
	c.ComputeCycles(l.costs.Post / 2)
	return c.ProbeFlag(ue.Comm().FlagAddr(ue.ID(), src, rcce.FlagSent)) == 1
}

// Cancel attempts to abort a pending request. Receives that have not
// consumed any chunk can be cancelled; sends cannot (their first chunk
// is already announced to the receiver), matching iRCCE's semantics.
// It reports whether the request was cancelled, and unlinks it on
// success.
func (l *Lib) Cancel(r *rcce.Request) bool {
	l.ue.Core().ComputeCycles(l.costs.Wait) // list search + state check
	if r.Done() || r.Kind() == rcce.ReqSend || r.Started() {
		return false
	}
	r.Abort()
	l.remove(r)
	return true
}
