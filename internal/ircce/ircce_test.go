package ircce

import (
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

func TestISendIRecvDelivers(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	n := 77
	var got []float64
	chip.LaunchOne(2, func(core *scc.Core) {
		lib := New(comm.UE(2))
		a := core.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i) * 3
		}
		core.WriteF64s(a, v)
		s := lib.ISend(9, a, 8*n)
		if lib.Pending() != 1 {
			t.Errorf("pending = %d, want 1", lib.Pending())
		}
		lib.Wait(s)
		if lib.Pending() != 0 {
			t.Errorf("pending after wait = %d, want 0", lib.Pending())
		}
	})
	chip.LaunchOne(9, func(core *scc.Core) {
		lib := New(comm.UE(9))
		a := core.AllocF64(n)
		r := lib.IRecv(2, a, 8*n)
		lib.Wait(r)
		got = make([]float64, n)
		core.ReadF64s(a, got)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != float64(i)*3 {
			t.Fatalf("payload wrong at %d", i)
		}
	}
}

func TestTestCompletesAndUnlinks(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.LaunchOne(0, func(core *scc.Core) {
		lib := New(comm.UE(0))
		a := core.AllocF64(4)
		s := lib.ISend(1, a, 32)
		// Poll with Test until done (receiver will pick it up).
		for !lib.Test(s) {
			core.ComputeCycles(500)
		}
		if lib.Pending() != 0 {
			t.Errorf("pending = %d after Test completion", lib.Pending())
		}
	})
	chip.LaunchOne(1, func(core *scc.Core) {
		lib := New(comm.UE(1))
		a := core.AllocF64(4)
		core.Compute(simtime.Microseconds(40))
		r := lib.IRecv(0, a, 32)
		lib.Wait(r)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIRCCECostsComeFromModel(t *testing.T) {
	// Doubling the model's iRCCE post overhead must slow a ping-pong.
	run := func(post int64) simtime.Time {
		m := timing.Default()
		m.OverheadIRCCEPost = post
		chip := scc.New(m)
		comm := rcce.NewComm(chip)
		chip.LaunchOne(0, func(core *scc.Core) {
			lib := New(comm.UE(0))
			a := core.AllocF64(8)
			for i := 0; i < 10; i++ {
				s := lib.ISend(1, a, 64)
				lib.Wait(s)
				r := lib.IRecv(1, a, 64)
				lib.Wait(r)
			}
		})
		chip.LaunchOne(1, func(core *scc.Core) {
			lib := New(comm.UE(1))
			a := core.AllocF64(8)
			for i := 0; i < 10; i++ {
				r := lib.IRecv(0, a, 64)
				lib.Wait(r)
				s := lib.ISend(0, a, 64)
				lib.Wait(s)
			}
		})
		if err := chip.Run(); err != nil {
			t.Fatal(err)
		}
		return chip.Now()
	}
	slow, fast := run(6000), run(500)
	if slow <= fast {
		t.Fatalf("higher post overhead not reflected: %v vs %v", slow, fast)
	}
}
