// Package ircce reimplements the iRCCE extension library: non-blocking
// isend/irecv primitives that free the collectives from RCCE's rigid
// blocking handshake (paper Sec. IV-A), at the price of heavyweight
// request management - pending requests live in a linked list and posting
// and completing a request performs dynamic-memory work. That management
// cost is exactly what the paper's lightweight primitives (package lwnb)
// remove in Sec. IV-B.
package ircce

import (
	"scc/internal/metrics"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

// Costs returns iRCCE's software-overhead profile for a model: request
// allocation and pending-list management on every post and completion.
func Costs(m *timing.Model) rcce.NBCosts {
	return rcce.NBCosts{
		Post:     m.OverheadIRCCEPost,
		Wait:     m.OverheadIRCCEWait,
		Progress: m.OverheadIRCCEWait / 4,
	}
}

// Lib is a per-UE instance of the iRCCE library. It tracks the pending
// request list (the source of the overhead the paper measures).
type Lib struct {
	ue      *rcce.UE
	costs   rcce.NBCosts
	pending *node // linked list of outstanding requests
	length  int
}

type node struct {
	req  *rcce.Request
	next *node
}

// New creates the library instance for one UE.
func New(ue *rcce.UE) *Lib {
	return &Lib{ue: ue, costs: Costs(ue.Core().Chip().Model)}
}

// SendRobust / RecvRobust / ExchangeRobust run the hardened protocol
// (sequence numbers, checksums, retransmit with backoff) at iRCCE's
// software-overhead profile.
func (l *Lib) SendRobust(pol rcce.Policy, dest int, addr scc.Addr, nBytes int) error {
	return l.ue.SendRobust(l.costs, pol, dest, addr, nBytes)
}

func (l *Lib) RecvRobust(pol rcce.Policy, src int, addr scc.Addr, nBytes int) error {
	return l.ue.RecvRobust(l.costs, pol, src, addr, nBytes)
}

func (l *Lib) ExchangeRobust(pol rcce.Policy, dest int, sAddr scc.Addr, sBytes int, src int, rAddr scc.Addr, rBytes int) error {
	return l.ue.ExchangeRobust(l.costs, pol, dest, sAddr, sBytes, src, rAddr, rBytes)
}

// UE returns the underlying unit of execution.
func (l *Lib) UE() *rcce.UE { return l.ue }

// Pending returns the number of outstanding requests in the list.
func (l *Lib) Pending() int { return l.length }

// ISend posts a non-blocking send of nBytes to dest. The request is
// inserted into the pending list.
func (l *Lib) ISend(dest int, addr scc.Addr, nBytes int) *rcce.Request {
	r := l.ue.PostSend(l.costs, dest, addr, nBytes)
	l.insert(r)
	return r
}

// IRecv posts a non-blocking receive of nBytes from src.
func (l *Lib) IRecv(src int, addr scc.Addr, nBytes int) *rcce.Request {
	r := l.ue.PostRecv(l.costs, src, addr, nBytes)
	l.insert(r)
	return r
}

// Wait blocks until r completes, then unlinks it from the pending list.
func (l *Lib) Wait(r *rcce.Request) {
	l.ue.Wait(l.costs, r)
	l.remove(r)
}

// WaitAll blocks until all requests complete.
func (l *Lib) WaitAll(reqs ...*rcce.Request) {
	l.ue.WaitAll(l.costs, reqs...)
	for _, r := range reqs {
		l.remove(r)
	}
}

// Test reports whether r has completed, making progress if possible, and
// unlinks it when done (like iRCCE_test).
func (l *Lib) Test(r *rcce.Request) bool {
	if !r.Done() {
		r.TryProgress(l.costs)
	}
	if r.Done() {
		l.remove(r)
		return true
	}
	return false
}

// insert links a request at the list head; the list walk on removal is
// where iRCCE's management overhead comes from (modeled by the Post/Wait
// cost constants; the Go-level list here keeps the bookkeeping honest).
// The pending-list high-water mark is exported through the metrics
// registry: it is the state the lightweight library (lwnb) caps at one
// slot per direction.
func (l *Lib) insert(r *rcce.Request) {
	l.pending = &node{req: r, next: l.pending}
	l.length++
	if reg := l.ue.Core().Metrics(); reg != nil {
		reg.SetMax(l.ue.Core().ID, metrics.CtrPendingReqsMax, int64(l.length))
	}
}

func (l *Lib) remove(r *rcce.Request) {
	for p := &l.pending; *p != nil; p = &(*p).next {
		if (*p).req == r {
			*p = (*p).next
			l.length--
			return
		}
	}
}
