package scc

// cacheLevel is a fully-associative LRU cache model over line numbers.
// The SCC's real L1 (16 KB) and L2 (256 KB, pseudo-LRU) are set
// associative; full associativity with true LRU is a standard simulator
// simplification that preserves the behaviour the paper relies on: the
// first access to a private-memory line goes off-chip, later accesses hit
// on-chip (Sec. IV-D).
type cacheLevel struct {
	capacity int // in lines
	lines    map[int64]*cacheNode
	head     *cacheNode // most recently used
	tail     *cacheNode // least recently used

	hits, misses int64
}

type cacheNode struct {
	line       int64
	prev, next *cacheNode
}

func newCacheLevel(capacityLines int) *cacheLevel {
	hint := capacityLines
	if hint > 256 {
		hint = 256 // grow on demand; avoids large up-front allocation per core
	}
	return &cacheLevel{
		capacity: capacityLines,
		lines:    make(map[int64]*cacheNode, hint),
	}
}

// lookup probes the cache; on hit the line becomes most recently used.
func (c *cacheLevel) lookup(line int64) bool {
	n, ok := c.lines[line]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	c.moveToFront(n)
	return true
}

// insert fills a line, evicting the LRU entry if needed. Returns the
// evicted line number and true if an eviction happened.
//
// When the cache is full, the victim's node is recycled for the new
// line, so a warmed-up cache inserts without allocating — this is the
// simulator's single hottest allocation site otherwise (every private-
// memory miss of every core).
func (c *cacheLevel) insert(line int64) (evicted int64, ok bool) {
	if n, exists := c.lines[line]; exists {
		c.moveToFront(n)
		return 0, false
	}
	if len(c.lines) >= c.capacity && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		delete(c.lines, victim.line)
		evicted = victim.line
		victim.line = line
		c.lines[line] = victim
		c.pushFront(victim)
		return evicted, true
	}
	n := &cacheNode{line: line}
	c.lines[line] = n
	c.pushFront(n)
	return 0, false
}

// invalidate drops a line if present.
func (c *cacheLevel) invalidate(line int64) {
	if n, ok := c.lines[line]; ok {
		c.unlink(n)
		delete(c.lines, line)
	}
}

// flush empties the cache.
func (c *cacheLevel) flush() {
	c.lines = make(map[int64]*cacheNode)
	c.head, c.tail = nil, nil
}

func (c *cacheLevel) pushFront(n *cacheNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *cacheLevel) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *cacheLevel) moveToFront(n *cacheNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
