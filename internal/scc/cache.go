package scc

// cacheLevel is a fully-associative LRU cache model over line numbers.
// The SCC's real L1 (16 KB) and L2 (256 KB, pseudo-LRU) are set
// associative; full associativity with true LRU is a standard simulator
// simplification that preserves the behaviour the paper relies on: the
// first access to a private-memory line goes off-chip, later accesses hit
// on-chip (Sec. IV-D).
//
// Residency is tracked by a direct-index table rather than a map: line
// numbers come from the core's bump allocator (line = addr / lineBytes),
// so they are small and dense, and a slice lookup allocates nothing
// while a Go map costs tens of allocations per level just to construct.
// The table holds one int32 per line of simulated footprint (1/8 of the
// footprint per level), which is small next to the backing store itself.
type cacheLevel struct {
	capacity int     // in lines
	idx      []int32 // line -> 1-based slab slot; 0 = not resident
	head     *cacheNode
	tail     *cacheNode
	used     int // resident lines

	// slabs back every node in fixed-size chunks allocated on demand, so
	// a core's cache storage grows with the lines it actually touches,
	// never with the level's nominal capacity (a 256 KB L2 would
	// otherwise pin 8192 node structs per core on a chip where most
	// cores touch a handful of lines). Each chunk is allocated at full
	// cap and only ever appended within it, so node pointers stay valid
	// for the chunk's lifetime. Nodes freed by invalidate go on the free
	// list and are reused before a new chunk is cut.
	slabs     [][]cacheNode
	allocated int        // nodes handed out across all chunks
	free      *cacheNode // singly linked through next

	hits, misses int64
}

// cacheChunk is the slab growth quantum in nodes: small enough that a
// barely-active core stays cheap, large enough that a hot core cuts a
// new chunk rarely.
const cacheChunk = 64

type cacheNode struct {
	line       int64
	slot       int32 // 1-based index in slab, stable for the node's lifetime
	prev, next *cacheNode
}

func newCacheLevel(capacityLines int) *cacheLevel {
	return &cacheLevel{capacity: capacityLines}
}

// get returns the resident node for line, or nil.
func (c *cacheLevel) get(line int64) *cacheNode {
	if line >= 0 && line < int64(len(c.idx)) {
		if s := c.idx[line]; s != 0 {
			return &c.slabs[(s-1)/cacheChunk][(s-1)%cacheChunk]
		}
	}
	return nil
}

// setIdx records line -> slot, growing the direct-index table on demand.
func (c *cacheLevel) setIdx(line int64, slot int32) {
	if line >= int64(len(c.idx)) {
		// Grow 4x: the table is cheap (4 B/line) and footprints are
		// usually reached within a few allocations, so aggressive growth
		// keeps the copy chain short.
		n := 4 * len(c.idx)
		if n < cacheChunk {
			n = cacheChunk
		}
		for int64(n) <= line {
			n *= 4
		}
		grown := make([]int32, n)
		copy(grown, c.idx)
		c.idx = grown
	}
	c.idx[line] = slot
}

// newNode hands out node storage: free list first, then the chunked
// slabs, cutting a new fixed-cap chunk only when the current one fills.
func (c *cacheLevel) newNode(line int64) *cacheNode {
	if n := c.free; n != nil {
		c.free = n.next
		n.line = line
		n.prev, n.next = nil, nil
		return n
	}
	if c.allocated/cacheChunk == len(c.slabs) {
		c.slabs = append(c.slabs, make([]cacheNode, 0, cacheChunk))
	}
	ch := &c.slabs[len(c.slabs)-1]
	c.allocated++
	*ch = append(*ch, cacheNode{line: line, slot: int32(c.allocated)})
	return &(*ch)[len(*ch)-1]
}

// lookup probes the cache; on hit the line becomes most recently used.
func (c *cacheLevel) lookup(line int64) bool {
	n := c.get(line)
	if n == nil {
		c.misses++
		return false
	}
	c.hits++
	c.moveToFront(n)
	return true
}

// insert fills a line, evicting the LRU entry if needed. Returns the
// evicted line number and true if an eviction happened.
//
// When the cache is full, the victim's node is recycled for the new
// line, so a warmed-up cache inserts without allocating — this is the
// simulator's single hottest allocation site otherwise (every private-
// memory miss of every core).
func (c *cacheLevel) insert(line int64) (evicted int64, ok bool) {
	if n := c.get(line); n != nil {
		c.moveToFront(n)
		return 0, false
	}
	if c.used >= c.capacity && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		c.idx[victim.line] = 0
		evicted = victim.line
		victim.line = line
		c.setIdx(line, victim.slot)
		c.pushFront(victim)
		return evicted, true
	}
	n := c.newNode(line)
	c.setIdx(line, n.slot)
	c.pushFront(n)
	c.used++
	return 0, false
}

// invalidate drops a line if present; the node returns to the free list.
func (c *cacheLevel) invalidate(line int64) {
	if n := c.get(line); n != nil {
		c.unlink(n)
		c.idx[line] = 0
		c.used--
		n.next = c.free
		c.free = n
	}
}

// flush empties the cache; storage is re-acquired lazily on next use.
func (c *cacheLevel) flush() {
	c.idx = nil
	c.slabs = nil
	c.allocated = 0
	c.head, c.tail, c.free = nil, nil, nil
	c.used = 0
}

func (c *cacheLevel) pushFront(n *cacheNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *cacheLevel) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *cacheLevel) moveToFront(n *cacheNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
