package scc

import "math"

// f64bits and f64frombits wrap math's bit conversions; isolated here so
// the data-movement code reads at one level of abstraction.
func f64bits(v float64) uint64     { return math.Float64bits(v) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
