package scc

import (
	"scc/internal/metrics"
	"scc/internal/simtime"
)

// This file holds the bounded (timeout-capable) flag waits used by the
// hardened point-to-point protocol. The plain WaitFlag/WaitFlagAny in
// core.go wait forever — correct on a fault-free chip, but a single lost
// flag write turns them into a hang. The variants here bound the wait and
// match by predicate (the robust protocol's flags carry sequence numbers,
// not just 0/1).

// WaitFlagMatch blocks until pred is true of the MPB flag byte at off, or
// until limit elapses (limit <= 0 waits forever). It returns the flag
// value last observed and whether it matched. Every probe pays one MPB
// line read, and a timed-out wait still pays the final disappointing
// probe, so defensive waiting has a measured cost.
func (c *Core) WaitFlagMatch(off int, limit simtime.Duration, pred func(byte) bool) (byte, bool) {
	c.checkMPBRange(off, 1)
	owner := c.chip.MPBOwner(off)
	begin := c.Now() // flush deferred local latency before the wait interval
	reg := c.chip.metrics
	deadline := begin + limit
	blocked := false
	finish := func(v byte, ok bool) (byte, bool) {
		waited := c.proc.Now() - begin
		c.prof.FlagWait += waited
		c.recordWait(reg, waited, blocked)
		if blocked {
			c.prof.FlagWaits++
			c.RecordSpan("wait-flag", begin, c.proc.Now())
		}
		return v, ok
	}
	for {
		c.mpbLineAccess(owner, true)
		if reg != nil {
			reg.Count(c.ID, metrics.CtrFlagProbes)
		}
		if v := c.chip.mpb.byteAt(off); pred(v) {
			return finish(v, true)
		}
		if limit > 0 && c.proc.Now() >= deadline {
			return finish(c.chip.mpb.byteAt(off), false)
		}
		blocked = true
		c.chip.incWaiting(off)
		site := simtime.WaitSite{Kind: simtime.WaitFlagPred, Core: int32(c.ID), Off: int32(off)}
		if limit > 0 {
			c.proc.WaitOnTimeout(c.chip.flagSignal(off), deadline-c.proc.Now(), site)
		} else {
			c.proc.WaitOn(c.chip.flagSignal(off), site)
		}
		c.chip.decWaiting(off)
	}
}

// WaitFlagsMatch blocks until pred(i, v) is true of some watched flag, or
// until limit elapses (limit <= 0 waits forever). It returns the index and
// value of the first (lowest-index) match, or (-1, 0, false) on timeout.
// Each probe round pays one MPB read per flag checked, short-circuiting at
// the first match. This is the full-duplex engine's wait: one core watches
// its send-ack and its recv-data flags at once.
func (c *Core) WaitFlagsMatch(offs []int, limit simtime.Duration, pred func(i int, v byte) bool) (int, byte, bool) {
	if len(offs) == 0 {
		panic("scc: WaitFlagsMatch with no flags")
	}
	begin := c.Now() // flush deferred local latency before the wait interval
	reg := c.chip.metrics
	deadline := begin + limit
	blocked := false
	finish := func() {
		waited := c.proc.Now() - begin
		c.prof.FlagWait += waited
		c.recordWait(reg, waited, blocked)
		if blocked {
			c.prof.FlagWaits++
			c.RecordSpan("wait-any", begin, c.proc.Now())
		}
	}
	for {
		for i, off := range offs {
			c.checkMPBRange(off, 1)
			c.mpbLineAccess(c.chip.MPBOwner(off), true)
			if reg != nil {
				reg.Count(c.ID, metrics.CtrFlagProbes)
			}
			if v := c.chip.mpb.byteAt(off); pred(i, v) {
				finish()
				return i, v, true
			}
		}
		if limit > 0 && c.proc.Now() >= deadline {
			finish()
			return -1, 0, false
		}
		blocked = true
		if limit > 0 {
			c.waitAnyBlockTimeout(offs, deadline-c.proc.Now())
		} else {
			c.waitAnyBlock(offs)
		}
	}
}

// waitAnyBlockTimeout is waitAnyBlock with a bounded wait: it returns
// after d ticks even if no watched flag is written. Registration cleanup
// is identical on both wake-up paths, so the core's reusable anySig is
// safe here too: WaitOnTimeout deregisters itself on the timeout path,
// leaving the waiter list empty either way.
func (c *Core) waitAnyBlockTimeout(offs []int, d simtime.Duration) {
	one := &c.anySig
	for _, off := range offs {
		c.chip.anyWaiters[off] = append(c.chip.anyWaiters[off], one)
		c.chip.incWaiting(off)
	}
	c.proc.WaitOnTimeout(one, d, c.anySite(offs))
	for _, off := range offs {
		c.chip.anyWaiters[off] = removeSignal(c.chip.anyWaiters[off], one)
		c.chip.decWaiting(off)
	}
}
