package scc

import (
	"testing"

	"scc/internal/simtime"
	"scc/internal/timing"
)

func TestDefaultDividerIsStandardPreset(t *testing.T) {
	chip := New(timing.Default())
	c := chip.Cores[0]
	if c.FrequencyDivider() != 3 {
		t.Fatalf("default divider %d, want 3", c.FrequencyDivider())
	}
	if mhz := c.FrequencyMHz(); mhz < 533 || mhz > 534 {
		t.Fatalf("default frequency %.1f MHz, want ~533", mhz)
	}
	// At the preset, one core cycle is exactly simtime.CoreCycles(1).
	if c.cycleDuration(7) != simtime.CoreCycles(7) {
		t.Fatal("preset cycle duration diverges from the global constant")
	}
}

func TestDividerScalesComputeTime(t *testing.T) {
	run := func(div int) simtime.Duration {
		chip := New(timing.Default())
		var d simtime.Duration
		chip.LaunchOne(0, func(c *Core) {
			if div != 0 {
				c.SetFrequencyDivider(div)
			}
			t0 := c.Now()
			c.ComputeCycles(100000)
			d = c.Now() - t0
		})
		if err := chip.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	base := run(0) // divider 3
	slow := run(6) // half frequency
	fast := run(2) // 800 MHz
	if slow != 2*base {
		t.Fatalf("divider 6 compute = %v, want 2x of %v", slow, base)
	}
	if 3*fast != 2*base {
		t.Fatalf("divider 2 compute = %v, want 2/3 of %v", fast, base)
	}
}

func TestInvalidDividerPanics(t *testing.T) {
	chip := New(timing.Default())
	chip.LaunchOne(0, func(c *Core) {
		c.SetFrequencyDivider(1)
	})
	if err := chip.Run(); err == nil {
		t.Fatal("divider 1 must be rejected (SCC minimum is 2)")
	}
}

func TestEnergyAccounting(t *testing.T) {
	// Same work at a lower frequency+voltage must cost less energy even
	// though it takes longer (the DVFS tradeoff).
	energy := func(div int) float64 {
		chip := New(timing.Default())
		var e float64
		chip.LaunchOne(0, func(c *Core) {
			if div != 0 {
				c.SetFrequencyDivider(div)
			}
			c.ComputeCycles(1_000_000)
			e = c.EnergyEstimate()
		})
		if err := chip.Run(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	preset := energy(0)
	slow := energy(8) // 200 MHz at 0.7 V
	fast := energy(2) // 800 MHz at 1.1 V
	if preset <= 0 {
		t.Fatal("no energy recorded")
	}
	if slow >= preset {
		t.Fatalf("slow/low-voltage energy %v not below preset %v", slow, preset)
	}
	if fast <= preset {
		t.Fatalf("fast/high-voltage energy %v not above preset %v", fast, preset)
	}
}

func TestVoltageTableMonotone(t *testing.T) {
	prev := 2.0
	for div := MinFreqDivider; div <= MaxFreqDivider; div++ {
		v := voltageFor(div)
		if v > prev {
			t.Fatalf("voltage rises with divider at %d: %v > %v", div, v, prev)
		}
		prev = v
	}
}
