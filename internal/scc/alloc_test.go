package scc

import (
	"testing"

	"scc/internal/timing"
)

// The protocol hot path must not allocate in the steady state: these
// tests pin per-round allocation budgets using the delta technique (a
// chip cannot be re-Run, so per-round cost is the slope between a short
// and a long run of the same program; the fixed construction cost
// cancels).

// runFlagPingPong runs `rounds` blocking flag handshakes between two
// cores: every WaitFlag in the loop actually blocks before its partner's
// SetFlag releases it.
func runFlagPingPong(rounds int) {
	chip := New(timing.Default())
	off0 := chip.MPBBase(0)
	off1 := chip.MPBBase(1)
	chip.LaunchOne(0, func(c *Core) {
		for i := 0; i < rounds; i++ {
			c.WaitFlag(off0, 1)
			c.SetFlag(off0, 0)
			c.SetFlag(off1, 1)
		}
	})
	chip.LaunchOne(1, func(c *Core) {
		for i := 0; i < rounds; i++ {
			c.SetFlag(off0, 1)
			c.WaitFlag(off1, 1)
			c.SetFlag(off1, 0)
		}
	})
	if err := chip.Run(); err != nil {
		panic(err)
	}
}

// runFlagSpin runs `rounds` WaitFlag calls that never block (the flag is
// already set), exercising the unblocked fast path.
func runFlagSpin(rounds int) {
	chip := New(timing.Default())
	off := chip.MPBBase(0)
	chip.LaunchOne(0, func(c *Core) {
		c.SetFlag(off, 1)
		for i := 0; i < rounds; i++ {
			c.WaitFlag(off, 1)
		}
	})
	if err := chip.Run(); err != nil {
		panic(err)
	}
}

// perRound measures the marginal allocations of one loop round by
// running the program at two lengths and taking the slope.
func perRound(t *testing.T, f func(rounds int), lo, hi int) float64 {
	t.Helper()
	a := testing.AllocsPerRun(3, func() { f(lo) })
	b := testing.AllocsPerRun(3, func() { f(hi) })
	return (b - a) / float64(hi-lo)
}

func TestWaitFlagBlockedAllocFree(t *testing.T) {
	got := perRound(t, runFlagPingPong, 20, 220)
	// Budget: one blocking handshake (wait + two flag writes per side)
	// must not allocate once signals and event-queue storage are warm.
	if got > 0.05 {
		t.Fatalf("blocked WaitFlag round allocates %.3f objects; budget 0.05", got)
	}
}

func TestWaitFlagUnblockedAllocFree(t *testing.T) {
	got := perRound(t, runFlagSpin, 20, 220)
	if got > 0.05 {
		t.Fatalf("unblocked WaitFlag round allocates %.3f objects; budget 0.05", got)
	}
}
