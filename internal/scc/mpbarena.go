package scc

// mpbArena stores the chip-wide MPB SRAM sparsely. The dense
// representation it replaces — one flat byte slice of
// NumCores x MPBBytesPerCore — is fine for the paper's 48-core chip
// (384 KB) but scales quadratically with the core count, because the
// per-core MPB itself grows with NumCores (every core reserves a flag
// region for every potential writer). A 100x100-core mesh needs
// ~12.8 MB of MPB per core, ~128 GB for the chip, of which a real
// collective touches a vanishing fraction: a core's flag traffic lands
// in the few writer regions of its actual communication partners plus
// its chunk-staging area.
//
// The arena therefore pages each core's MPB region: a per-core page
// directory, allocated on that core's first MPB write, maps fixed-size
// pages that are themselves allocated on first write. Reads of
// never-written bytes return zero without allocating anything — exactly
// the all-zeroes initial state of the dense slice, so a blocked waiter
// polling a flag nobody has set yet costs no memory. Contents and
// out-of-range behavior are bit-identical to the dense slice; only the
// host-side representation changes, so virtual time and all golden
// digests are unaffected.
type mpbArena struct {
	perCore  int // MPBBytesPerCore
	pageSize int
	pages    int // pages per core (ceil(perCore / pageSize))
	total    int // NumCores * perCore
	cores    [][][]byte
}

// mpbPageSize is the write granularity of the arena. 4 KB spans a few
// per-writer flag regions, so one collective's flag working set per core
// stays within a couple of pages while an untouched core costs only its
// nil directory slot.
const mpbPageSize = 4096

func newMPBArena(numCores, perCore int) *mpbArena {
	pageSize := mpbPageSize
	if perCore < pageSize {
		pageSize = perCore
	}
	return &mpbArena{
		perCore:  perCore,
		pageSize: pageSize,
		pages:    (perCore + pageSize - 1) / pageSize,
		total:    numCores * perCore,
		cores:    make([][][]byte, numCores),
	}
}

// size returns the arena's addressable extent in bytes (the dense
// slice's len).
func (a *mpbArena) size() int { return a.total }

// byteAt reads one byte; untouched storage reads as zero.
func (a *mpbArena) byteAt(off int) byte {
	core := off / a.perCore
	dir := a.cores[core]
	if dir == nil {
		return 0
	}
	rem := off - core*a.perCore
	pg := dir[rem/a.pageSize]
	if pg == nil {
		return 0
	}
	return pg[rem%a.pageSize]
}

// setByte writes one byte, allocating its page on first touch.
func (a *mpbArena) setByte(off int, v byte) {
	core := off / a.perCore
	rem := off - core*a.perCore
	a.page(core, rem/a.pageSize)[rem%a.pageSize] = v
}

// page returns core's pg-th page, allocating directory and page on
// demand.
func (a *mpbArena) page(core, pg int) []byte {
	dir := a.cores[core]
	if dir == nil {
		dir = make([][]byte, a.pages)
		a.cores[core] = dir
	}
	p := dir[pg]
	if p == nil {
		p = make([]byte, a.pageSize)
		dir[pg] = p
	}
	return p
}

// read copies [off, off+len(dst)) into dst. Untouched ranges read as
// zeroes without allocating pages.
func (a *mpbArena) read(off int, dst []byte) {
	for len(dst) > 0 {
		core := off / a.perCore
		rem := off - core*a.perCore
		pg := rem / a.pageSize
		po := rem - pg*a.pageSize
		chunk := a.chunkLen(rem, po, len(dst))
		dir := a.cores[core]
		var p []byte
		if dir != nil {
			p = dir[pg]
		}
		if p == nil {
			clearBytes(dst[:chunk])
		} else {
			copy(dst[:chunk], p[po:])
		}
		dst = dst[chunk:]
		off += chunk
	}
}

// write copies src into [off, off+len(src)), allocating pages on demand.
func (a *mpbArena) write(off int, src []byte) {
	for len(src) > 0 {
		core := off / a.perCore
		rem := off - core*a.perCore
		pg := rem / a.pageSize
		po := rem - pg*a.pageSize
		chunk := a.chunkLen(rem, po, len(src))
		copy(a.page(core, pg)[po:], src[:chunk])
		src = src[chunk:]
		off += chunk
	}
}

// chunkLen bounds one copy step: it may not cross the page end, the
// core-region end (the last page of a region may have slack that
// belongs to no address), or the remaining request.
func (a *mpbArena) chunkLen(rem, po, want int) int {
	chunk := a.pageSize - po
	if r := a.perCore - rem; r < chunk {
		chunk = r
	}
	if want < chunk {
		chunk = want
	}
	return chunk
}

// snapshot materializes a copy of [off, off+n). Test/debug accessor
// (Chip.MPBSlice); never on a simulated hot path.
func (a *mpbArena) snapshot(off, n int) []byte {
	out := make([]byte, n)
	a.read(off, out)
	return out
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
