package scc

import (
	"testing"

	"scc/internal/simtime"
	"scc/internal/timing"
)

func TestTASMutualExclusion(t *testing.T) {
	chip := New(timing.Default())
	const reg = 7
	inCritical := 0
	violations := 0
	total := 0
	for _, id := range []int{0, 13, 26, 40} {
		chip.LaunchOne(id, func(c *Core) {
			for i := 0; i < 5; i++ {
				c.TASAcquire(reg)
				inCritical++
				if inCritical > 1 {
					violations++
				}
				c.Compute(simtime.Microseconds(3))
				total++
				inCritical--
				c.TASRelease(reg)
				c.Compute(simtime.Microseconds(1))
			}
		})
	}
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
	if total != 20 {
		t.Fatalf("completed %d critical sections, want 20", total)
	}
}

func TestTASTestNonBlocking(t *testing.T) {
	chip := New(timing.Default())
	chip.LaunchOne(0, func(c *Core) {
		if !c.TASTest(3) {
			t.Error("first probe of a free register must succeed")
		}
		if c.TASTest(3) {
			t.Error("second probe of a held register must fail")
		}
		c.TASRelease(3)
		if !c.TASTest(3) {
			t.Error("probe after release must succeed")
		}
		c.TASRelease(3)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTASReleaseOfFreeRegisterFails(t *testing.T) {
	chip := New(timing.Default())
	chip.LaunchOne(0, func(c *Core) {
		c.TASRelease(0)
	})
	if err := chip.Run(); err == nil {
		t.Fatal("releasing a free register should fail the simulation")
	}
}

func TestTASRemoteCostsMore(t *testing.T) {
	chip := New(timing.Default())
	var local, remote simtime.Duration
	chip.LaunchOne(0, func(c *Core) {
		t0 := c.Now()
		c.TASTest(0) // own tile
		local = c.Now() - t0
		t1 := c.Now()
		c.TASTest(47) // far corner
		remote = c.Now() - t1
		c.TASRelease(0)
		c.TASRelease(47)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if remote <= local {
		t.Fatalf("remote T&S (%v) not dearer than local (%v)", remote, local)
	}
}

func TestTASContentionRecordsWaitTime(t *testing.T) {
	chip := New(timing.Default())
	hold := simtime.Microseconds(100)
	var prof Profile
	chip.LaunchOne(0, func(c *Core) {
		c.TASAcquire(5)
		c.Compute(hold)
		c.TASRelease(5)
	})
	chip.LaunchOne(1, func(c *Core) {
		c.Compute(simtime.Microseconds(1)) // ensure core 0 grabs it first
		c.TASAcquire(5)
		prof = c.Prof()
		c.TASRelease(5)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if prof.FlagWaits == 0 || prof.FlagWait < hold/2 {
		t.Fatalf("contention not recorded: %+v", prof)
	}
}
