// Package scc models the Single-Chip Cloud Computer: P54C cores spread
// over a rectangular tile mesh (48 cores on a 6x4 mesh of dual-core
// tiles in the paper's configuration), per-core message-passing buffers
// (MPBs), L1/L2 private-memory caches, and edge memory controllers. The
// geometry comes entirely from the timing.Model, so arbitrary RxC
// meshes simulate with the same code.
//
// Simulated programs are written against the Core API: they allocate
// private memory, read and write it (priced through the cache model),
// access MPBs (priced by locality and the mesh), and synchronize through
// MPB flags. The package knows nothing about RCCE or MPI; the
// communication libraries are layered on top.
package scc

import (
	"errors"
	"fmt"

	"scc/internal/mesh"
	"scc/internal/metrics"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// FaultHook lets a fault-injection plan intercept shared-state actions.
// All methods are consulted on the simulated program's critical path, so
// implementations must be deterministic functions of (location, virtual
// time). A nil hook is the fault-free chip. See internal/fault for the
// seeded implementation.
type FaultHook interface {
	// StallCore returns extra latency to impose on the core's next
	// shared-state access (a transient core stall), or 0.
	StallCore(core int, now simtime.Time) simtime.Duration
	// CoreDead reports whether the core has permanently failed at or
	// before now. A dead core's process terminates at its next
	// shared-state access and never resumes.
	CoreDead(core int, now simtime.Time) bool
	// DropFlagWrite reports whether a single-byte flag write by writer
	// to MPB offset off should be lost in flight (cost is still paid,
	// the flag value never lands, no waiter wakes).
	DropFlagWrite(writer, off int, now simtime.Time) bool
	// FilterMPBWrite may corrupt a bulk MPB write in place (mutate
	// data) and/or return true to drop it entirely.
	FilterMPBWrite(writer, off int, data []byte, now simtime.Time) bool
}

// coreDeadPanic unwinds a simulated process whose core was declared dead
// by the fault hook. It is recovered by the Launch wrapper.
type coreDeadPanic struct{ id int }

// Chip is one simulated SCC plus its simulation engine.
type Chip struct {
	Model  *timing.Model
	Engine *simtime.Engine
	Net    *mesh.Network
	Cores  []*Core
	// Fault, when non-nil, intercepts shared-state actions for fault
	// injection. Install it before Run (typically right after New).
	Fault FaultHook

	mpb      *mpbArena
	flagSigs map[int]*simtime.Signal
	// sigSlab hands out Signal storage for flagSigs in chunks, so a
	// fresh chip's first barrier does not allocate once per flag.
	sigSlab []simtime.Signal
	// anyWaiters holds one-shot signals registered by WaitFlagAny under
	// every offset the waiter watches.
	anyWaiters map[int][]*simtime.Signal
	// waiting tracks MPB offsets with at least one blocked waiter,
	// indexed by the owning core, so a bulk write scans only the waiters
	// parked on the region it actually lands in — on a big chip during a
	// broadcast, thousands of cores block on their own flags at once, and
	// a per-write scan over all of them would be O(cores) per message.
	// waitingTotal keeps the no-waiters-anywhere fast path O(1).
	waiting      []map[int]int
	waitingTotal int

	// Hardware test-and-set registers, one per core (see tas.go).
	tasTaken   []bool
	tasSigs    map[int]*simtime.Signal
	tasWaiting map[int]int

	// metrics, when non-nil, receives phase/counter observations from
	// every core and the mesh (see internal/metrics). Recording never
	// advances virtual time, so an instrumented run is bit-identical
	// to an uninstrumented one.
	metrics *metrics.Registry

	// NamePrefix, when set before Launch, prefixes every core process
	// name ("chip1.core03"). Multi-chip systems sharing one engine use
	// it to keep deadlock reports and notes unambiguous; the default
	// empty prefix preserves the single-chip names byte for byte.
	NamePrefix string
}

// New builds a chip for the given model (use timing.Default for the
// paper's configuration) on a fresh simulation engine. It panics if the
// model is invalid; validate separately if the model comes from user
// input.
func New(model *timing.Model) *Chip {
	return NewOnEngine(model, simtime.NewEngine())
}

// NewOnEngine builds a chip on an existing engine, so several chips (a
// multi-chip fabric.System) can share one virtual clock and scheduler.
func NewOnEngine(model *timing.Model, eng *simtime.Engine) *Chip {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	c := &Chip{
		Model:      model,
		Engine:     eng,
		Net:        mesh.New(model),
		mpb:        newMPBArena(model.NumCores(), model.MPBBytesPerCore),
		flagSigs:   make(map[int]*simtime.Signal),
		anyWaiters: make(map[int][]*simtime.Signal),
		waiting:    make([]map[int]int, model.NumCores()),
		tasTaken:   make([]bool, model.NumCores()),
		tasSigs:    make(map[int]*simtime.Signal),
		tasWaiting: make(map[int]int),
	}
	for id := 0; id < model.NumCores(); id++ {
		c.Cores = append(c.Cores, newCore(c, id))
	}
	return c
}

// NumCores returns how many cores the chip has.
func (c *Chip) NumCores() int { return len(c.Cores) }

// SetMetrics attaches (or, with nil, detaches) a metrics registry to
// the chip and its mesh. Install it before Run (typically right after
// New). The registry must have been created for this chip's core
// count.
func (c *Chip) SetMetrics(reg *metrics.Registry) {
	if reg != nil && reg.NumCores() != c.NumCores() {
		panic(fmt.Sprintf("scc: metrics registry sized for %d cores on a %d-core chip",
			reg.NumCores(), c.NumCores()))
	}
	c.metrics = reg
	c.Net.SetMetrics(reg)
}

// Metrics returns the attached metrics registry, or nil.
func (c *Chip) Metrics() *metrics.Registry { return c.metrics }

// TileOf returns the mesh coordinate of a core's tile. Cores are numbered
// as on the real SCC: core id / CoresPerTile is the tile index, tiles are
// row-major over the mesh.
func (c *Chip) TileOf(coreID int) mesh.Coord {
	tile := coreID / c.Model.CoresPerTile
	return mesh.Coord{X: tile % c.Model.MeshWidth, Y: tile / c.Model.MeshWidth}
}

// memControllerFor returns the router coordinate of the memory controller
// serving a core. The controllers sit at the four mesh corners (on the
// SCC, the left and right edges); each quadrant of cores maps to its
// nearest controller, whatever the mesh dimensions.
func (c *Chip) memControllerFor(coreID int) mesh.Coord {
	t := c.TileOf(coreID)
	x := 0
	if t.X >= c.Model.MeshWidth/2 {
		x = c.Model.MeshWidth - 1
	}
	y := 0
	if t.Y >= c.Model.MeshHeight/2 {
		y = c.Model.MeshHeight - 1
	}
	return mesh.Coord{X: x, Y: y}
}

// MPBOwner returns which core owns the MPB byte at global offset off.
func (c *Chip) MPBOwner(off int) int { return off / c.Model.MPBBytesPerCore }

// MPBBase returns the global MPB offset of a core's MPB region
// (MPBBytesPerCore bytes each).
func (c *Chip) MPBBase(coreID int) int { return coreID * c.Model.MPBBytesPerCore }

// MPBSlice exposes a copy of raw MPB contents for tests and debugging.
// It performs no timing; simulated programs must use the Core accessors
// instead. (The MPB is stored as a paged sparse arena, so there is no
// contiguous backing slice to alias; mutations must go through the Core
// API anyway.)
func (c *Chip) MPBSlice(off, n int) []byte { return c.mpb.snapshot(off, n) }

// incWaiting registers one blocked waiter on the flag byte at off.
func (c *Chip) incWaiting(off int) {
	owner := c.MPBOwner(off)
	m := c.waiting[owner]
	if m == nil {
		m = make(map[int]int)
		c.waiting[owner] = m
	}
	m[off]++
	c.waitingTotal++
}

// decWaiting deregisters one blocked waiter from the flag byte at off.
func (c *Chip) decWaiting(off int) {
	m := c.waiting[c.MPBOwner(off)]
	if m[off]--; m[off] == 0 {
		delete(m, off)
	}
	c.waitingTotal--
}

// flagSignal returns the waiter list for an MPB flag offset.
func (c *Chip) flagSignal(off int) *simtime.Signal {
	s, ok := c.flagSigs[off]
	if !ok {
		if len(c.sigSlab) == 0 {
			c.sigSlab = make([]simtime.Signal, 64)
		}
		s = &c.sigSlab[0]
		c.sigSlab = c.sigSlab[1:]
		c.flagSigs[off] = s
	}
	return s
}

// Launch spawns one simulated process per core, all running fn with their
// own core handle (SPMD style). Call Run afterwards. A core killed by an
// injected fault in an earlier run stays dead: its process is not
// respawned — exactly like real silicon, a died core does not come back
// for the next program.
func (c *Chip) Launch(fn func(core *Core)) {
	for _, core := range c.Cores {
		core := core
		if core.dead {
			continue
		}
		core.proc = c.Engine.Spawn(fmt.Sprintf("%score%02d", c.NamePrefix, core.ID), func(p *simtime.Proc) {
			defer recoverCoreDeath(core, p)
			fn(core)
			core.flushLocal() // apply trailing deferred latency
		})
	}
}

// LaunchOne spawns a simulated process on a single core. Mixing Launch
// and LaunchOne on the same chip is allowed before Run.
func (c *Chip) LaunchOne(coreID int, fn func(core *Core)) {
	core := c.Cores[coreID]
	core.proc = c.Engine.Spawn(fmt.Sprintf("%score%02d", c.NamePrefix, coreID), func(p *simtime.Proc) {
		defer recoverCoreDeath(core, p)
		fn(core)
		core.flushLocal()
	})
}

// recoverCoreDeath absorbs the panic that unwinds a process whose core an
// injected fault declared dead: the process simply terminates (its flags
// go silent, exactly like a hung real core). Every other panic — including
// the engine's shutdown sentinel — is re-raised untouched.
func recoverCoreDeath(core *Core, p *simtime.Proc) {
	if r := recover(); r != nil {
		if _, ok := r.(coreDeadPanic); !ok {
			panic(r)
		}
		core.dead = true
		p.SetNote(simtime.Note2("core%02d died at t=%d ticks (injected fault)",
			int64(core.ID), int64(p.Now())))
	}
}

// ErrCoreDead marks a run that failed because an injected fault killed
// a core: the surviving processes deadlocked (or otherwise erred)
// waiting on flags the dead core will never write. Callers that did not
// enable recovery get this typed error instead of a bare deadlock
// report; errors.Is(err, ErrCoreDead) identifies the case.
var ErrCoreDead = errors.New("scc: core died mid-run")

// Run executes the simulation to completion and returns the engine error
// (nil, deadlock, or a propagated panic). When the run fails and one or
// more cores were killed by injected faults, the error is wrapped with
// ErrCoreDead naming the dead cores — a deadlock with a core down is a
// consequence of the death, not a protocol bug.
func (c *Chip) Run() error {
	err := c.Engine.Run()
	if err == nil {
		return nil
	}
	var dead []int
	for _, core := range c.Cores {
		if core.dead {
			dead = append(dead, core.ID)
		}
	}
	if len(dead) == 0 {
		return err
	}
	return fmt.Errorf("%w (cores %v): %v", ErrCoreDead, dead, err)
}

// Now returns the current virtual time.
func (c *Chip) Now() simtime.Time { return c.Engine.Now() }
