package scc

import (
	"strings"
	"testing"

	"scc/internal/simtime"
	"scc/internal/timing"
)

// TestDeadlockReportGolden pins the rendered deadlock report. Blocked-wait
// diagnostics are recorded as compact WaitSite/Note values and only
// formatted when a deadlock report renders; this golden test is the
// invariant that the lazy path still names the core, the flag offset, and
// the expected value — exactly what a hang investigation needs.
func TestDeadlockReportGolden(t *testing.T) {
	chip := New(timing.Default())
	off := chip.MPBBase(0) + 7
	chip.LaunchOne(0, func(c *Core) {
		c.Note(simtime.Note2("sent chunk %d of %d", 3, 9))
		c.WaitFlag(off, 1) // never satisfied: deadlock
	})
	err := chip.Run()
	if err == nil {
		t.Fatal("expected a deadlock error")
	}
	msg := err.Error()
	for _, want := range []string{
		"deadlock",
		"core00",                       // stuck process name
		"waiting: core00 flag@7==1",    // WaitSite: core, offset, expected value
		"last step: sent chunk 3 of 9", // deferred Note formatting
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock report missing %q:\n%s", want, msg)
		}
	}
}

// TestDeadlockReportTAS pins the test-and-set wait rendering.
func TestDeadlockReportTAS(t *testing.T) {
	chip := New(timing.Default())
	chip.LaunchOne(0, func(c *Core) {
		c.TASAcquire(5)
		c.TASAcquire(5) // self-deadlock on an already-held register
	})
	err := chip.Run()
	if err == nil {
		t.Fatal("expected a deadlock error")
	}
	if !strings.Contains(err.Error(), "core00 T&S 5") {
		t.Errorf("deadlock report missing TAS wait site:\n%s", err.Error())
	}
}
