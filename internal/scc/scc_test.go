package scc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"scc/internal/mesh"
	"scc/internal/simtime"
	"scc/internal/timing"
)

func TestChipGeometry(t *testing.T) {
	c := New(timing.Default())
	if c.NumCores() != 48 {
		t.Fatalf("NumCores = %d, want 48", c.NumCores())
	}
	// Cores 0 and 1 share tile (0,0); cores 46,47 share tile (5,3).
	if c.TileOf(0) != (mesh.Coord{X: 0, Y: 0}) || c.TileOf(1) != (mesh.Coord{X: 0, Y: 0}) {
		t.Fatalf("tile of cores 0/1 = %v/%v, want (0,0)", c.TileOf(0), c.TileOf(1))
	}
	if c.TileOf(47) != (mesh.Coord{X: 5, Y: 3}) {
		t.Fatalf("tile of core 47 = %v, want (5,3)", c.TileOf(47))
	}
	// Tiles are row-major: core 12 -> tile 6 -> (0,1).
	if c.TileOf(12) != (mesh.Coord{X: 0, Y: 1}) {
		t.Fatalf("tile of core 12 = %v, want (0,1)", c.TileOf(12))
	}
	if got := c.Model.MPBTotalBytes(); got != 384*1024 {
		t.Fatalf("total MPB = %d, want 384 KB", got)
	}
}

func TestMPBOwnerMapping(t *testing.T) {
	c := New(timing.Default())
	for core := 0; core < 48; core++ {
		base := c.MPBBase(core)
		if c.MPBOwner(base) != core || c.MPBOwner(base+8191) != core {
			t.Fatalf("owner mapping broken for core %d", core)
		}
	}
}

func TestMemControllerQuadrants(t *testing.T) {
	c := New(timing.Default())
	// Core 0 at (0,0) -> controller (0,0); core 47 at (5,3) -> (5,3).
	if mc := c.memControllerFor(0); mc != (mesh.Coord{X: 0, Y: 0}) {
		t.Fatalf("controller for core 0 = %v", mc)
	}
	if mc := c.memControllerFor(47); mc != (mesh.Coord{X: 5, Y: 3}) {
		t.Fatalf("controller for core 47 = %v", mc)
	}
}

func TestPrivateMemoryRoundTrip(t *testing.T) {
	c := New(timing.Default())
	rng := rand.New(rand.NewSource(1))
	want := make([]float64, 301)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	var got []float64
	c.LaunchOne(3, func(core *Core) {
		a := core.AllocF64(len(want))
		core.WriteF64s(a, want)
		got = make([]float64, len(want))
		core.ReadF64s(a, got)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestCacheMakesSecondReadCheaper(t *testing.T) {
	c := New(timing.Default())
	var first, second simtime.Duration
	c.LaunchOne(0, func(core *Core) {
		a := core.AllocF64(64)
		t0 := core.Now()
		buf := make([]float64, 64)
		core.ReadF64s(a, buf) // cold: every line goes off-chip
		first = core.Now() - t0
		t1 := core.Now()
		core.ReadF64s(a, buf) // warm: L1 hits
		second = core.Now() - t1
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if second*10 > first {
		t.Fatalf("cache ineffective: cold=%v warm=%v", first, second)
	}
}

func TestAllocIsLineAligned(t *testing.T) {
	c := New(timing.Default())
	c.LaunchOne(0, func(core *Core) {
		a := core.Alloc(5)
		b := core.Alloc(1)
		if int(a)%32 != 0 || int(b)%32 != 0 {
			t.Errorf("allocations not line aligned: %d %d", a, b)
		}
		if b <= a {
			t.Errorf("allocations overlap: %d then %d", a, b)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMPBWriteReadAcrossCores(t *testing.T) {
	c := New(timing.Default())
	payload := []float64{3.5, -1.25, 1e9, 0.0, -0.5}
	dst := c.MPBBase(40) + 256
	flag := c.MPBBase(40) // line 0 of core 40's MPB as flag
	var got []float64
	c.LaunchOne(2, func(core *Core) {
		core.MPBWriteF64s(dst, payload)
		core.SetFlag(flag, 1)
	})
	c.LaunchOne(40, func(core *Core) {
		core.WaitFlag(flag, 1)
		got = make([]float64, len(payload))
		core.MPBReadF64s(dst, got)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("MPB payload corrupted at %d: %v != %v", i, got[i], payload[i])
		}
	}
}

func TestWaitFlagRecordsWaitTime(t *testing.T) {
	c := New(timing.Default())
	flag := c.MPBBase(1)
	delay := simtime.Microseconds(50)
	var prof Profile
	c.LaunchOne(0, func(core *Core) {
		core.Compute(delay)
		core.SetFlag(flag, 7)
	})
	c.LaunchOne(1, func(core *Core) {
		core.WaitFlag(flag, 7)
		prof = core.Prof()
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if prof.FlagWaits != 1 {
		t.Fatalf("FlagWaits = %d, want 1", prof.FlagWaits)
	}
	if prof.FlagWait < delay*8/10 || prof.FlagWait > delay+simtime.Microseconds(5) {
		t.Fatalf("FlagWait = %v, want about %v", prof.FlagWait, delay)
	}
}

func TestWaitFlagAlreadySetDoesNotBlock(t *testing.T) {
	c := New(timing.Default())
	flag := c.MPBBase(5) + 32
	c.LaunchOne(5, func(core *Core) {
		core.SetFlag(flag, 3)
		core.WaitFlag(flag, 3)
		if core.Prof().FlagWaits != 0 {
			t.Errorf("blocked on an already-set flag")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalMPBBugWorkaroundCost(t *testing.T) {
	// With the erratum workaround, a local MPB line access costs
	// 45 core cycles + 8 mesh cycles; with the bug fixed, 15 core cycles.
	buggy := timing.Default()
	fixed := timing.Default()
	fixed.HardwareBugFixed = true

	lat := func(m *timing.Model) simtime.Duration {
		c := New(m)
		var d simtime.Duration
		c.LaunchOne(0, func(core *Core) {
			t0 := core.Now()
			buf := make([]byte, 32)
			core.MPBRead(c.MPBBase(0), buf)
			d = core.Now() - t0
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	lb, lf := lat(buggy), lat(fixed)
	if lb != simtime.CoreCycles(45)+simtime.MeshCycles(8) {
		t.Fatalf("buggy local MPB access = %v, want 45cc+8mc", lb)
	}
	if lf != simtime.CoreCycles(15) {
		t.Fatalf("fixed local MPB access = %v, want 15cc", lf)
	}
}

func TestRemoteMPBCostGrowsWithDistance(t *testing.T) {
	c := New(timing.Default())
	var near, far simtime.Duration
	c.LaunchOne(0, func(core *Core) {
		buf := make([]byte, 32)
		t0 := core.Now()
		core.MPBRead(c.MPBBase(2), buf) // tile (1,0): 1 hop
		near = core.Now() - t0
		t1 := core.Now()
		core.MPBRead(c.MPBBase(47), buf) // tile (5,3): 8 hops
		far = core.Now() - t1
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if far <= near {
		t.Fatalf("remote MPB cost not distance-sensitive: near=%v far=%v", near, far)
	}
}

func TestPartialLineStillCostsFullLine(t *testing.T) {
	c := New(timing.Default())
	var one, full simtime.Duration
	c.LaunchOne(0, func(core *Core) {
		t0 := core.Now()
		core.MPBWrite(c.MPBBase(4), make([]byte, 1))
		one = core.Now() - t0
		t1 := core.Now()
		core.MPBWrite(c.MPBBase(4), make([]byte, 32))
		full = core.Now() - t1
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if one != full {
		t.Fatalf("1-byte write (%v) should cost one full line (%v)", one, full)
	}
}

func TestReduceMPBToMPB(t *testing.T) {
	c := New(timing.Default())
	n := 12
	src := c.MPBBase(10) + 128
	dst := c.MPBBase(11) + 128
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = 100 * float64(i)
	}
	var got []float64
	c.LaunchOne(10, func(core *Core) {
		core.MPBWriteF64s(src, a)
		core.SetFlag(c.MPBBase(10), 1)
	})
	c.LaunchOne(11, func(core *Core) {
		priv := core.AllocF64(n)
		core.WriteF64s(priv, b)
		core.WaitFlag(c.MPBBase(10), 1)
		core.ReduceMPBToMPB(src, priv, dst, n, func(x, y float64) float64 { return x + y })
		got = make([]float64, n)
		core.MPBReadF64s(dst, got)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != a[i]+b[i] {
			t.Fatalf("reduce wrong at %d: %v != %v", i, got[i], a[i]+b[i])
		}
	}
}

func TestMPBOutOfRangePanicsViaEngine(t *testing.T) {
	c := New(timing.Default())
	c.LaunchOne(0, func(core *Core) {
		core.MPBWrite(c.Model.MPBTotalBytes()-4, make([]byte, 8))
	})
	if err := c.Run(); err == nil {
		t.Fatal("expected out-of-range MPB write to fail the simulation")
	}
}

func TestDeterministicLatencies(t *testing.T) {
	run := func() simtime.Time {
		c := New(timing.Default())
		flag := c.MPBBase(9)
		c.LaunchOne(0, func(core *Core) {
			core.MPBWriteF64s(c.MPBBase(9)+64, make([]float64, 100))
			core.SetFlag(flag, 1)
		})
		c.LaunchOne(9, func(core *Core) {
			core.WaitFlag(flag, 1)
			buf := make([]float64, 100)
			core.MPBReadF64s(c.MPBBase(9)+64, buf)
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Now()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("non-deterministic end time: %v vs %v", got, first)
		}
	}
}

// Property: private memory is a faithful store - random writes followed by
// reads return exactly what was written, regardless of interleaving.
func TestPrivateMemoryFidelityProperty(t *testing.T) {
	f := func(vals []float64, seed int64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 256 {
			vals = vals[:256]
		}
		c := New(timing.Default())
		ok := true
		c.LaunchOne(int(uint64(seed)%48), func(core *Core) {
			a := core.AllocF64(len(vals))
			core.WriteF64s(a, vals)
			got := make([]float64, len(vals))
			core.ReadF64s(a, got)
			for i := range vals {
				// NaN-safe bitwise comparison.
				if f64bits(got[i]) != f64bits(vals[i]) {
					ok = false
				}
			}
		})
		if err := c.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	cl := newCacheLevel(2)
	cl.insert(1)
	cl.insert(2)
	if ev, did := cl.insert(3); !did || ev != 1 {
		t.Fatalf("expected eviction of line 1, got %d/%v", ev, did)
	}
	if !cl.lookup(2) || !cl.lookup(3) || cl.lookup(1) {
		t.Fatal("LRU state wrong after eviction")
	}
	// Touch 2 to make 3 the LRU; inserting 4 must evict 3.
	cl.lookup(2)
	if ev, did := cl.insert(4); !did || ev != 3 {
		t.Fatalf("expected eviction of line 3, got %d/%v", ev, did)
	}
	cl.invalidate(2)
	if cl.lookup(2) {
		t.Fatal("line 2 still present after invalidate")
	}
}

func TestWaitFlagAnyReturnsFirstMatch(t *testing.T) {
	c := New(timing.Default())
	f1 := c.MPBBase(10)
	f2 := c.MPBBase(11)
	var idx int
	c.LaunchOne(0, func(core *Core) {
		idx = core.WaitFlagAny([]int{f1, f2}, 1)
	})
	c.LaunchOne(5, func(core *Core) {
		core.Compute(simtime.Microseconds(30))
		core.SetFlag(f2, 1)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("WaitFlagAny returned %d, want 1 (the second flag)", idx)
	}
}

func TestWaitFlagAnyAlreadySet(t *testing.T) {
	c := New(timing.Default())
	f1 := c.MPBBase(1)
	f2 := c.MPBBase(2)
	c.LaunchOne(0, func(core *Core) {
		core.SetFlag(f1, 1)
		if idx := core.WaitFlagAny([]int{f1, f2}, 1); idx != 0 {
			t.Errorf("idx = %d, want 0", idx)
		}
		if core.Prof().FlagWaits != 0 {
			t.Error("blocked despite an already-set flag")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitFlagAnyEmptyPanics(t *testing.T) {
	c := New(timing.Default())
	c.LaunchOne(0, func(core *Core) {
		core.WaitFlagAny(nil, 1)
	})
	if err := c.Run(); err == nil {
		t.Fatal("empty WaitFlagAny should fail the simulation")
	}
}

func TestBrokenProtocolReportsDeadlockDetail(t *testing.T) {
	// Failure injection: a receiver waiting for a sender that never
	// comes must produce a deadlock report naming the stuck core and
	// flag (the debugging surface a protocol developer relies on).
	c := New(timing.Default())
	flag := c.MPBBase(7) + 96
	c.LaunchOne(7, func(core *Core) {
		core.WaitFlag(flag, 1)
	})
	c.LaunchOne(3, func(core *Core) {
		core.Compute(simtime.Microseconds(5)) // does something, but never signals
	})
	err := c.Run()
	if err == nil {
		t.Fatal("expected deadlock")
	}
	msg := err.Error()
	if !strings.Contains(msg, "core07") || !strings.Contains(msg, "flag") {
		t.Fatalf("deadlock report lacks detail: %v", err)
	}
}

func TestSpanRecorderHook(t *testing.T) {
	c := New(timing.Default())
	var got []string
	c.LaunchOne(0, func(core *Core) {
		core.SetSpanRecorder(func(label string, start, end simtime.Time) {
			got = append(got, label)
		})
		if !core.Tracing() {
			t.Error("Tracing() false after SetSpanRecorder")
		}
		core.RecordSpan("custom", 0, 1)
	})
	c.LaunchOne(1, func(core *Core) {
		core.Compute(simtime.Microseconds(20))
		core.SetFlag(c.MPBBase(0), 1)
	})
	// Core 0 also waits on a flag to produce a wait-flag span.
	c.LaunchOne(2, func(core *Core) {})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0] != "custom" {
		t.Fatalf("span recorder not invoked: %v", got)
	}
}
