package scc

import (
	"fmt"

	"scc/internal/simtime"
)

// The SCC provides one hardware test-and-set register per core in the
// tile's configuration-register space. A read returns the current value
// and atomically clears it (so reading 1 means "lock acquired"); writing
// 1 releases. RCCE builds its lock API on these; the simulator models
// the register access like an MPB-port access at the owning tile
// (same mesh path, no erratum involvement - the registers are in the
// CRB, not the MPB).

// tasAccess charges one register access at owner's tile.
func (c *Core) tasAccess(owner int) {
	m := c.chip.Model
	hops := c.mpbHops(owner)
	if hops == 0 {
		c.flushLocal()
		c.proc.Sleep(simtime.CoreCycles(m.MPBLocalFastCoreCycles))
		return
	}
	c.flushLocal()
	c.proc.Sleep(simtime.CoreCycles(m.MPBRemoteBaseCoreCycles) +
		simtime.MeshCycles(m.MeshHopRoundTripMeshCycles*int64(hops)))
}

// TASTest performs one test-and-set probe of core target's register:
// it returns true (and holds the lock) if the register was free.
func (c *Core) TASTest(target int) bool {
	if target < 0 || target >= len(c.chip.Cores) {
		panic(fmt.Sprintf("scc: TAS register %d out of range", target))
	}
	c.tasAccess(target)
	if !c.chip.tasTaken[target] {
		c.chip.tasTaken[target] = true
		return true
	}
	return false
}

// TASAcquire spins on core target's test-and-set register until the
// caller holds it. Blocked spinners are parked on a waiter list and
// woken by the release (the simulation equivalent of the polling loop,
// with each wake-up paying one more register probe).
func (c *Core) TASAcquire(target int) {
	begin := c.proc.Now()
	blocked := false
	for !c.TASTest(target) {
		blocked = true
		c.chip.tasWaiting[target]++
		c.proc.WaitOn(c.chip.tasSignal(target),
			fmt.Sprintf("core%02d T&S %d", c.ID, target))
		if c.chip.tasWaiting[target]--; c.chip.tasWaiting[target] == 0 {
			delete(c.chip.tasWaiting, target)
		}
	}
	waited := c.proc.Now() - begin
	c.prof.FlagWait += waited
	if blocked {
		c.prof.FlagWaits++
	}
}

// TASRelease frees core target's register and wakes spinners.
func (c *Core) TASRelease(target int) {
	if target < 0 || target >= len(c.chip.Cores) {
		panic(fmt.Sprintf("scc: TAS register %d out of range", target))
	}
	c.tasAccess(target)
	if !c.chip.tasTaken[target] {
		panic(fmt.Sprintf("scc: core %d releasing free T&S register %d", c.ID, target))
	}
	c.chip.tasTaken[target] = false
	c.chip.tasSignal(target).Broadcast(c.chip.Engine)
}

// tasSignal returns the waiter list for a register.
func (c *Chip) tasSignal(target int) *simtime.Signal {
	s, ok := c.tasSigs[target]
	if !ok {
		s = &simtime.Signal{}
		c.tasSigs[target] = s
	}
	return s
}
