package scc

import (
	"fmt"

	"scc/internal/metrics"
	"scc/internal/simtime"
)

// The SCC provides one hardware test-and-set register per core in the
// tile's configuration-register space. A read returns the current value
// and atomically clears it (so reading 1 means "lock acquired"); writing
// 1 releases. RCCE builds its lock API on these; the simulator models
// the register access like an MPB-port access at the owning tile
// (same mesh path, no erratum involvement - the registers are in the
// CRB, not the MPB).

// tasAccess charges one register access at owner's tile and returns
// the paid cost.
func (c *Core) tasAccess(owner int) simtime.Duration {
	m := c.chip.Model
	hops := c.mpbHops(owner)
	var d simtime.Duration
	if hops == 0 {
		d = simtime.CoreCycles(m.MPBLocalFastCoreCycles)
	} else {
		d = simtime.CoreCycles(m.MPBRemoteBaseCoreCycles) +
			simtime.MeshCycles(m.MeshHopRoundTripMeshCycles*int64(hops))
	}
	c.flushLocal()
	c.proc.Sleep(d)
	return d
}

// TASTest performs one test-and-set probe of core target's register:
// it returns true (and holds the lock) if the register was free.
func (c *Core) TASTest(target int) bool {
	cost, ok := c.tasTest(target)
	if r := c.chip.metrics; r != nil {
		r.AddPhase(c.ID, metrics.PhaseFlagSync, cost)
	}
	return ok
}

// tasTest is the probe without phase attribution: TASAcquire's spin
// loop claims its whole interval (probes included) as flag-wait time,
// so the individual probes must not double-record.
func (c *Core) tasTest(target int) (simtime.Duration, bool) {
	if target < 0 || target >= len(c.chip.Cores) {
		panic(fmt.Sprintf("scc: TAS register %d out of range", target))
	}
	cost := c.tasAccess(target)
	if r := c.chip.metrics; r != nil {
		r.Count(c.ID, metrics.CtrTASProbes)
	}
	if !c.chip.tasTaken[target] {
		c.chip.tasTaken[target] = true
		return cost, true
	}
	return cost, false
}

// TASAcquire spins on core target's test-and-set register until the
// caller holds it. Blocked spinners are parked on a waiter list and
// woken by the release (the simulation equivalent of the polling loop,
// with each wake-up paying one more register probe).
func (c *Core) TASAcquire(target int) {
	begin := c.Now() // flush deferred local latency before the wait interval
	blocked := false
	for {
		_, ok := c.tasTest(target)
		if ok {
			break
		}
		blocked = true
		c.chip.tasWaiting[target]++
		c.proc.WaitOn(c.chip.tasSignal(target),
			simtime.WaitSite{Kind: simtime.WaitTAS, Core: int32(c.ID), Off: int32(target)})
		if c.chip.tasWaiting[target]--; c.chip.tasWaiting[target] == 0 {
			delete(c.chip.tasWaiting, target)
		}
	}
	waited := c.proc.Now() - begin
	c.prof.FlagWait += waited
	c.recordWait(c.chip.metrics, waited, blocked)
	if blocked {
		c.prof.FlagWaits++
		c.RecordSpan("wait-tas", begin, c.proc.Now())
	}
}

// TASRelease frees core target's register and wakes spinners.
func (c *Core) TASRelease(target int) {
	if target < 0 || target >= len(c.chip.Cores) {
		panic(fmt.Sprintf("scc: TAS register %d out of range", target))
	}
	cost := c.tasAccess(target)
	if r := c.chip.metrics; r != nil {
		r.AddPhase(c.ID, metrics.PhaseFlagSync, cost)
	}
	if !c.chip.tasTaken[target] {
		panic(fmt.Sprintf("scc: core %d releasing free T&S register %d", c.ID, target))
	}
	c.chip.tasTaken[target] = false
	c.chip.tasSignal(target).Broadcast(c.chip.Engine)
}

// tasSignal returns the waiter list for a register.
func (c *Chip) tasSignal(target int) *simtime.Signal {
	s, ok := c.tasSigs[target]
	if !ok {
		s = &simtime.Signal{}
		c.tasSigs[target] = s
	}
	return s
}
