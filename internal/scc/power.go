package scc

import (
	"fmt"

	"scc/internal/simtime"
)

// DVFS support in the style of the SCC's RCCE_power API. The SCC derives
// each tile's clock from a 1600 MHz root through an integer divider
// (2..16); the standard preset's 533 MHz is divider 3. The simulator's
// tick is exactly one 1600 MHz period (0.625 ns), so a core at divider d
// simply takes d ticks per cycle - the baseline's 3 ticks/cycle falls
// out of the same arithmetic.
//
// Voltage follows frequency: the chip must run a divider at or above
// the minimum voltage for that speed. The pairs below approximate the
// SCC's published operating points; dynamic power is modeled as
// P ~ f * V^2 (normalized so the 533 MHz point is 1.0), integrated over
// compute time into a per-core energy estimate.
//
// Scope: the divider scales the core's *computation and software
// overhead* (everything charged in core cycles through Compute). The
// mesh and DRAM stay in their own 800 MHz domain, as on the real chip;
// the core-cycle component of MPB access latencies is kept at the
// standard preset (documented approximation - those numbers were
// published for the 533 MHz preset only).

// Frequency divider bounds (1600 MHz root clock).
const (
	MinFreqDivider     = 2  // 800 MHz
	MaxFreqDivider     = 16 // 100 MHz
	DefaultFreqDivider = 3  // 533 MHz, the paper's standard preset
)

// voltageFor returns the minimal supply voltage (volts) for a divider.
func voltageFor(div int) float64 {
	switch {
	case div <= 2:
		return 1.1
	case div == 3:
		return 0.9
	case div == 4:
		return 0.8
	case div <= 8:
		return 0.7
	default:
		return 0.6
	}
}

// SetFrequencyDivider changes the core's clock divider (RCCE_power-
// style). It panics on dividers outside [2,16]. Returns the new
// frequency in MHz.
func (c *Core) SetFrequencyDivider(div int) float64 {
	if div < MinFreqDivider || div > MaxFreqDivider {
		panic(fmt.Sprintf("scc: frequency divider %d outside [%d,%d]",
			div, MinFreqDivider, MaxFreqDivider))
	}
	c.freqDiv = div
	return 1600.0 / float64(div)
}

// FrequencyDivider returns the active divider.
func (c *Core) FrequencyDivider() int {
	if c.freqDiv == 0 {
		return DefaultFreqDivider
	}
	return c.freqDiv
}

// FrequencyMHz returns the core's current clock in MHz.
func (c *Core) FrequencyMHz() float64 { return 1600.0 / float64(c.FrequencyDivider()) }

// cycleDuration converts n core cycles at the core's own clock.
func (c *Core) cycleDuration(n int64) simtime.Duration {
	return simtime.Time(n) * simtime.Time(c.FrequencyDivider())
}

// relativePower returns dynamic power relative to the 533 MHz preset
// (P ~ f V^2).
func (c *Core) relativePower() float64 {
	div := c.FrequencyDivider()
	f := 1600.0 / float64(div)
	v := voltageFor(div)
	base := (1600.0 / 3) * 0.9 * 0.9
	return f * v * v / base
}

// EnergyEstimate returns the core's accumulated compute energy in
// preset-power-seconds (1.0 = one second of compute at the 533 MHz
// preset).
func (c *Core) EnergyEstimate() float64 { return c.energy }
