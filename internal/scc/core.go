package scc

import (
	"encoding/binary"
	"fmt"

	"scc/internal/mesh"
	"scc/internal/metrics"
	"scc/internal/simtime"
)

// Addr is a byte offset into a core's private memory arena.
type Addr int

// Core is one simulated P54C core. All methods that bear latency must be
// called from within the core's simulated process (i.e. inside the
// function passed to Chip.Launch).
type Core struct {
	ID   int
	chip *Chip
	tile mesh.Coord
	proc *simtime.Proc

	priv []byte
	brk  Addr

	l1, l2 cacheLevel

	// pending accumulates purely local latency (compute, cache hits,
	// private-memory misses) that no other core can observe until this
	// core next touches shared state. It is flushed into a single
	// simulated sleep at every MPB/flag interaction and at Now(). This
	// batching collapses thousands of scheduler events per collective
	// without changing any observable timing.
	pending simtime.Duration

	// spanRec, when set, receives labeled time spans for protocol
	// visualization (see internal/trace).
	spanRec func(label string, start, end simtime.Time)

	// freqDiv is the DVFS clock divider (see power.go); 0 means the
	// default preset (divider 3, 533 MHz). energy accumulates the
	// relative compute energy.
	freqDiv int
	energy  float64

	// dead marks a core whose process was terminated by an injected
	// permanent-failure fault.
	dead bool

	// Steady-state scratch, reused across calls so the protocol hot path
	// performs no per-message allocation. All of it is safe to reuse
	// because a core is a single simulated process: no two of its MPB
	// operations are ever in flight at once.
	anySig   simtime.Signal // one-shot signal reused by waitAnyBlock*
	xferBuf  []byte         // MPBWriteF64s/MPBReadF64s staging
	faultBuf []byte         // fault-hook scratch copy for MPBWrite
	redA     []float64      // ReduceMPBToMPB operand vector
	redB     []float64      // ReduceMPBToMPB local vector

	prof Profile
}

// growBytes returns (*buf)[:n], reallocating only when capacity grows.
func growBytes(buf *[]byte, n int) []byte {
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	return (*buf)[:n]
}

// growF64 returns (*buf)[:n], reallocating only when capacity grows.
func growF64(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// Dead reports whether an injected fault has permanently killed this core.
func (c *Core) Dead() bool { return c.dead }

// Note records the core's last successful protocol step; it appears in
// deadlock reports next to the blocking point. The note carries a static
// format string plus integers and is only formatted if a deadlock report
// is rendered (see simtime.Note). Safe to call before Launch (no-op).
func (c *Core) Note(n simtime.Note) {
	if c.proc != nil {
		c.proc.SetNote(n)
	}
}

// faultCheck applies pending core-level faults (transient stall, permanent
// death) on the shared-state path. Called with local latency already
// flushed.
func (c *Core) faultCheck() {
	h := c.chip.Fault
	if h == nil || c.proc == nil {
		return
	}
	now := c.proc.Now()
	if d := h.StallCore(c.ID, now); d > 0 {
		c.proc.Sleep(d)
	}
	if h.CoreDead(c.ID, now) {
		c.dead = true
		panic(coreDeadPanic{c.ID})
	}
}

// SetSpanRecorder installs a span hook (nil disables recording).
func (c *Core) SetSpanRecorder(rec func(label string, start, end simtime.Time)) {
	c.spanRec = rec
}

// RecordSpan forwards a labeled interval to the span recorder, if any.
func (c *Core) RecordSpan(label string, start, end simtime.Time) {
	if c.spanRec != nil {
		c.spanRec(label, start, end)
	}
}

// Tracing reports whether a span recorder is installed.
func (c *Core) Tracing() bool { return c.spanRec != nil }

// Metrics returns the chip's metrics registry, or nil when metrics are
// off. Protocol layers use it for their own counters; all observations
// are pure recording and never advance virtual time.
func (c *Core) Metrics() *metrics.Registry { return c.chip.metrics }

// chargeLocal defers a purely local latency.
func (c *Core) chargeLocal(d simtime.Duration) { c.pending += d }

// flushLocal advances the clock by any deferred local latency. Must be
// called before interacting with shared state or reading the clock.
func (c *Core) flushLocal() {
	if c.pending > 0 {
		d := c.pending
		c.pending = 0
		c.proc.Sleep(d)
	}
}

// Profile accumulates per-core instrumentation, mirroring the paper's
// profiling of the thermodynamic application (Sec. IV-A: "cores spend up
// to 50% of their time in the rcce_wait_until method").
type Profile struct {
	// FlagWait is virtual time spent blocked waiting on MPB flags.
	FlagWait simtime.Duration
	// Compute is virtual time charged through Compute.
	Compute simtime.Duration
	// MPBBytesRead / Written count MPB traffic issued by this core.
	MPBBytesRead    int64
	MPBBytesWritten int64
	// FlagWaits counts WaitFlag invocations that actually blocked.
	FlagWaits int64
}

func newCore(chip *Chip, id int) *Core {
	m := chip.Model
	return &Core{
		ID:   id,
		chip: chip,
		tile: chip.TileOf(id),
		l1:   cacheLevel{capacity: m.L1DataBytes / m.CacheLineBytes},
		l2:   cacheLevel{capacity: m.L2Bytes / m.CacheLineBytes},
	}
}

// Chip returns the chip this core belongs to.
func (c *Core) Chip() *Chip { return c.chip }

// Tile returns the mesh coordinate of the core's tile.
func (c *Core) Tile() mesh.Coord { return c.tile }

// Proc exposes the underlying simulated process (nil before Launch).
func (c *Core) Proc() *simtime.Proc { return c.proc }

// Now returns the core's current virtual time, first applying any
// deferred local latency.
func (c *Core) Now() simtime.Time {
	c.flushLocal()
	return c.proc.Now()
}

// Prof returns a snapshot of the core's profile counters.
func (c *Core) Prof() Profile { return c.prof }

// ResetProfile clears the profile counters.
func (c *Core) ResetProfile() { c.prof = Profile{} }

// --- Private memory ---

// Alloc reserves n bytes of private memory, line-aligned, and returns its
// address. Allocation itself is free (it models static/stack data).
func (c *Core) Alloc(n int) Addr {
	line := c.chip.Model.CacheLineBytes
	c.brk = Addr((int(c.brk) + line - 1) / line * line)
	a := c.brk
	c.brk += Addr(n)
	if need := int(c.brk); need > len(c.priv) {
		if need > cap(c.priv) {
			grown := make([]byte, need, 2*need)
			copy(grown, c.priv)
			c.priv = grown
		} else {
			c.priv = c.priv[:need]
		}
	}
	return a
}

// AllocF64 reserves space for n float64 values.
func (c *Core) AllocF64(n int) Addr { return c.Alloc(8 * n) }

// privAccessCost prices one access to the private-memory line holding
// byte address a, updating cache state but not advancing time. write
// selects store semantics (L1 write-allocate, L2 non-write-allocate,
// matching the SCC tile's cache policies).
func (c *Core) privAccessCost(a Addr, write bool) simtime.Duration {
	m := c.chip.Model
	reg := c.chip.metrics
	line := int64(a) / int64(m.CacheLineBytes)
	var d simtime.Duration
	switch {
	case c.l1.lookup(line):
		if reg != nil {
			reg.Count(c.ID, metrics.CtrL1Hits)
		}
		d = m.L1Hit()
	case c.l2.lookup(line):
		c.l1.insert(line)
		if reg != nil {
			reg.Count(c.ID, metrics.CtrL1Misses)
			reg.Count(c.ID, metrics.CtrL2Hits)
		}
		d = m.L2Hit()
	default:
		hops := mesh.Hops(c.tile, c.chip.memControllerFor(c.ID))
		c.l1.insert(line)
		if !write { // L2 is non-write-allocate
			c.l2.insert(line)
		}
		if reg != nil {
			reg.Count(c.ID, metrics.CtrL1Misses)
			reg.Count(c.ID, metrics.CtrL2Misses)
		}
		d = m.DRAMAccess(hops)
	}
	if reg != nil {
		reg.AddPhase(c.ID, metrics.PhaseMemory, d)
	}
	return d
}

// chargePrivAccess prices one private-memory access (deferred: private
// memory is invisible to other cores).
func (c *Core) chargePrivAccess(a Addr, write bool) {
	c.chargeLocal(c.privAccessCost(a, write))
}

// touchRange charges cache costs for every line in [a, a+n), advancing
// time once for the whole range (per-line interleaving below the
// resolution of one bulk access is not observable by other cores, since
// private memory is private).
func (c *Core) touchRange(a Addr, n int, write bool) {
	if n <= 0 {
		return
	}
	lineSz := Addr(c.chip.Model.CacheLineBytes)
	first := a / lineSz
	last := (a + Addr(n) - 1) / lineSz
	var total simtime.Duration
	for l := first; l <= last; l++ {
		total += c.privAccessCost(l*lineSz, write)
	}
	c.chargeLocal(total)
}

// TouchRead charges cache costs for reading the byte range [a, a+n) of
// private memory without moving data (for callers that stage raw bytes).
func (c *Core) TouchRead(a Addr, n int) { c.touchRange(a, n, false) }

// TouchWrite charges cache costs for writing the byte range [a, a+n).
func (c *Core) TouchWrite(a Addr, n int) { c.touchRange(a, n, true) }

// ReadF64 loads one float64 from private memory.
func (c *Core) ReadF64(a Addr) float64 {
	c.chargePrivAccess(a, false)
	return readF64(c.priv, a)
}

// WriteF64 stores one float64 to private memory.
func (c *Core) WriteF64(a Addr, v float64) {
	c.chargePrivAccess(a, true)
	writeF64(c.priv, a, v)
}

// ReadF64s loads n float64 values starting at a into dst.
func (c *Core) ReadF64s(a Addr, dst []float64) {
	c.touchRange(a, 8*len(dst), false)
	for i := range dst {
		dst[i] = readF64(c.priv, a+Addr(8*i))
	}
}

// WriteF64s stores src into private memory starting at a.
func (c *Core) WriteF64s(a Addr, src []float64) {
	c.touchRange(a, 8*len(src), true)
	for i, v := range src {
		writeF64(c.priv, a+Addr(8*i), v)
	}
}

// PrivBytes exposes raw private memory (no timing) for tests.
func (c *Core) PrivBytes(a Addr, n int) []byte { return c.priv[a : a+Addr(n)] }

// Compute advances the core's clock by d to model pure computation
// (deferred until the next shared-state interaction).
func (c *Core) Compute(d simtime.Duration) {
	if d < 0 {
		panic("scc: negative compute duration")
	}
	c.prof.Compute += d
	c.chargeLocal(d)
	if r := c.chip.metrics; r != nil {
		r.AddPhase(c.ID, metrics.PhaseCompute, d)
	}
}

// chargeCyclesAs charges n core clock cycles at the core's current
// clock (DVFS-aware), accumulates the energy estimate, and attributes
// the time to the given metrics phase. Timing, energy and the Profile
// are identical for every phase — only the metrics classification
// differs.
func (c *Core) chargeCyclesAs(ph metrics.Phase, n int64) {
	d := c.cycleDuration(n)
	c.energy += c.relativePower() * d.Seconds()
	c.prof.Compute += d
	c.chargeLocal(d)
	if r := c.chip.metrics; r != nil {
		r.AddPhase(c.ID, ph, d)
	}
}

// ComputeCycles charges n core clock cycles of computation at the
// core's current clock (DVFS-aware) and accumulates the energy
// estimate.
func (c *Core) ComputeCycles(n int64) { c.chargeCyclesAs(metrics.PhaseCompute, n) }

// OverheadCycles charges n core clock cycles of communication-library
// software overhead. It is priced exactly like ComputeCycles (same
// clock, energy and Profile accounting) but classified as
// PhaseOverhead in the metrics registry, so the "where the cycles go"
// breakdown can separate library time from application compute.
func (c *Core) OverheadCycles(n int64) { c.chargeCyclesAs(metrics.PhaseOverhead, n) }

// --- MPB access ---

// mpbHops returns the mesh distance from this core to the MPB of owner.
func (c *Core) mpbHops(owner int) int {
	return mesh.Hops(c.tile, c.chip.TileOf(owner))
}

// mpbLineAccess charges the latency of one line-sized MPB access and
// models link occupancy for remote accesses. It returns the paid cost
// so callers can attribute it to a metrics phase.
func (c *Core) mpbLineAccess(owner int, read bool) simtime.Duration {
	d := c.mpbAccessCost(owner, 1, read)
	c.proc.Sleep(d)
	return d
}

// mpbAccessCost prices nLines consecutive line-sized MPB accesses
// (including mesh link occupancy for remote ones) without advancing
// time. On the P54C each line is a blocking transaction, so lines
// serialize; the cost is the sum of per-line costs plus any queueing
// behind contended links.
func (c *Core) mpbAccessCost(owner, nLines int, read bool) simtime.Duration {
	c.flushLocal() // MPB state is shared; local time must be applied first
	c.faultCheck()
	m := c.chip.Model
	hops := c.mpbHops(owner)
	lat := m.MPBAccess(hops, read)
	if hops == 0 {
		return lat * simtime.Time(nLines)
	}
	// Remote: packets also occupy mesh links. The data-bearing
	// direction is owner->me for reads and me->owner for writes.
	from, to := c.tile, c.chip.TileOf(owner)
	if read {
		from, to = to, from
	}
	t := c.proc.Now()
	for l := 0; l < nLines; l++ {
		arrive := c.chip.Net.Transfer(from, to, m.CacheLineBytes, t)
		end := t + lat
		if arrive > end {
			end = arrive
		}
		t = end
	}
	return t - c.proc.Now()
}

// checkMPBRange panics on out-of-bounds MPB access.
func (c *Core) checkMPBRange(off, n int) {
	if off < 0 || n < 0 || off+n > c.chip.mpb.size() {
		panic(fmt.Sprintf("scc: MPB access out of range: off=%d n=%d", off, n))
	}
}

// MPBWrite copies src into the MPB at global offset off, paying per-line
// write costs. Writes go through the write-combining buffer, so partial
// lines still cost a full line.
func (c *Core) MPBWrite(off int, src []byte) {
	c.checkMPBRange(off, len(src))
	m := c.chip.Model
	owner := c.chip.MPBOwner(off)
	cost := c.mpbAccessCost(owner, m.Lines(len(src)), false)
	c.proc.Sleep(cost)
	if r := c.chip.metrics; r != nil {
		r.AddPhase(c.ID, metrics.PhaseTransfer, cost)
		r.Count(c.ID, metrics.CtrMPBWrites)
		r.CountN(c.ID, metrics.CtrMPBBytesWritten, int64(len(src)))
	}
	if h := c.chip.Fault; h != nil {
		// Clone src into a per-core scratch buffer so the hook may corrupt
		// the payload without mutating the caller's bytes. The fault-free
		// path (h == nil) never copies.
		data := growBytes(&c.faultBuf, len(src))
		copy(data, src)
		if h.FilterMPBWrite(c.ID, off, data, c.proc.Now()) {
			// Lost in flight: the cost is paid, nothing lands, nobody
			// wakes. The caller's buffer is never mutated.
			c.prof.MPBBytesWritten += int64(len(src))
			return
		}
		src = data
	}
	c.chip.mpb.write(off, src)
	c.prof.MPBBytesWritten += int64(len(src))
	c.notifyFlagWaiters(off, len(src))
}

// MPBRead copies n bytes from the MPB at global offset off into dst,
// paying per-line read costs (each line is a blocking round trip on the
// P54C).
func (c *Core) MPBRead(off int, dst []byte) {
	c.checkMPBRange(off, len(dst))
	m := c.chip.Model
	owner := c.chip.MPBOwner(off)
	cost := c.mpbAccessCost(owner, m.Lines(len(dst)), true)
	c.proc.Sleep(cost)
	if r := c.chip.metrics; r != nil {
		r.AddPhase(c.ID, metrics.PhaseTransfer, cost)
		r.Count(c.ID, metrics.CtrMPBReads)
		r.CountN(c.ID, metrics.CtrMPBBytesRead, int64(len(dst)))
	}
	c.chip.mpb.read(off, dst)
	c.prof.MPBBytesRead += int64(len(dst))
}

// MPBWriteF64s writes float64 values to the MPB. The byte staging goes
// through a per-core scratch buffer (a core's MPB operations never
// overlap, so reuse is safe).
func (c *Core) MPBWriteF64s(off int, src []float64) {
	buf := growBytes(&c.xferBuf, 8*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[8*i:], f64bits(v))
	}
	c.MPBWrite(off, buf)
}

// MPBReadF64s reads n float64 values from the MPB.
func (c *Core) MPBReadF64s(off int, dst []float64) {
	buf := growBytes(&c.xferBuf, 8*len(dst))
	c.MPBRead(off, buf)
	for i := range dst {
		dst[i] = f64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
}

// --- Flags ---

// SetFlag writes one flag byte in the MPB (a full-line write through the
// WCB, like RCCE's line-sized flags) and wakes any cores waiting on it.
func (c *Core) SetFlag(off int, v byte) {
	c.checkMPBRange(off, 1)
	owner := c.chip.MPBOwner(off)
	cost := c.mpbLineAccess(owner, false)
	if r := c.chip.metrics; r != nil {
		r.AddPhase(c.ID, metrics.PhaseFlagSync, cost)
		r.Count(c.ID, metrics.CtrFlagSets)
	}
	if h := c.chip.Fault; h != nil && h.DropFlagWrite(c.ID, off, c.proc.Now()) {
		return // flag write lost in flight: cost paid, no update, no wake-up
	}
	c.chip.mpb.setByte(off, v)
	c.chip.flagSignal(off).Broadcast(c.chip.Engine)
	for _, s := range c.chip.anyWaiters[off] {
		s.Broadcast(c.chip.Engine)
	}
}

// ProbeFlag reads and returns the MPB flag byte at off, paying one MPB
// line read (a non-blocking test).
func (c *Core) ProbeFlag(off int) byte {
	c.checkMPBRange(off, 1)
	cost := c.mpbLineAccess(c.chip.MPBOwner(off), true)
	if r := c.chip.metrics; r != nil {
		r.AddPhase(c.ID, metrics.PhaseFlagSync, cost)
		r.Count(c.ID, metrics.CtrFlagProbes)
	}
	return c.chip.mpb.byteAt(off)
}

// WaitFlag blocks until the MPB flag byte at off equals want. Every probe
// pays one MPB read; time spent blocked is recorded in the profile (the
// paper's rcce_wait_until time). Returns the time spent waiting.
func (c *Core) WaitFlag(off int, want byte) simtime.Duration {
	c.checkMPBRange(off, 1)
	owner := c.chip.MPBOwner(off)
	// Flush deferred local latency first: it is work that happened before
	// the wait, so it must not inflate the wait interval (which becomes
	// the "wait-flag" span and the flag-wait phase).
	begin := c.Now()
	reg := c.chip.metrics
	blocked := false
	site := simtime.WaitSite{Kind: simtime.WaitFlagEq, Core: int32(c.ID), Off: int32(off), Want: int32(want)}
	for {
		c.mpbLineAccess(owner, true)
		if reg != nil {
			reg.Count(c.ID, metrics.CtrFlagProbes)
		}
		if c.chip.mpb.byteAt(off) == want {
			break
		}
		blocked = true
		c.chip.incWaiting(off)
		c.proc.WaitOn(c.chip.flagSignal(off), site)
		c.chip.decWaiting(off)
	}
	waited := c.proc.Now() - begin
	c.prof.FlagWait += waited
	c.recordWait(reg, waited, blocked)
	if blocked {
		c.prof.FlagWaits++
		c.RecordSpan("wait-flag", begin, c.proc.Now())
	}
	return waited
}

// recordWait attributes one wait interval to the metrics registry: the
// whole interval (probes included) counts as PhaseFlagWait when the
// wait actually blocked — the exact extent of the "wait-*" trace span —
// and as unblocked flag traffic (PhaseFlagSync) otherwise.
func (c *Core) recordWait(reg *metrics.Registry, waited simtime.Duration, blocked bool) {
	if reg == nil {
		return
	}
	if blocked {
		reg.AddPhase(c.ID, metrics.PhaseFlagWait, waited)
		reg.Count(c.ID, metrics.CtrBlockedWaits)
		reg.ObserveWait(waited)
	} else {
		reg.AddPhase(c.ID, metrics.PhaseFlagSync, waited)
	}
}

// WaitFlagAny blocks until at least one of the MPB flag bytes in offs
// equals want, and returns the index of the first (lowest-index) match.
// Each probe round pays one MPB read per checked flag, stopping at the
// first match (short-circuit polling, like a sequential flag scan on the
// real core). Used by non-blocking wait-all loops that must make progress
// on whichever request completes first.
func (c *Core) WaitFlagAny(offs []int, want byte) int {
	if len(offs) == 0 {
		panic("scc: WaitFlagAny with no flags")
	}
	begin := c.Now() // flush deferred local latency before the wait interval
	reg := c.chip.metrics
	blocked := false
	for {
		for i, off := range offs {
			c.checkMPBRange(off, 1)
			c.mpbLineAccess(c.chip.MPBOwner(off), true)
			if reg != nil {
				reg.Count(c.ID, metrics.CtrFlagProbes)
			}
			if c.chip.mpb.byteAt(off) == want {
				waited := c.proc.Now() - begin
				c.prof.FlagWait += waited
				c.recordWait(reg, waited, blocked)
				if blocked {
					c.prof.FlagWaits++
					c.RecordSpan("wait-any", begin, c.proc.Now())
				}
				return i
			}
		}
		blocked = true
		c.waitAnyBlock(offs)
	}
}

// waitAnyBlock blocks until any of the given flags is written. A single
// one-shot signal is registered under every offset, so the first write
// wakes the core exactly once (Broadcast empties the signal's waiter
// list; later writes find it empty). The signal is the core's reusable
// anySig: by the time the wait returns, the core has deregistered it
// from every list and its waiter slice is empty again, so the next wait
// can reuse it without allocating.
func (c *Core) waitAnyBlock(offs []int) {
	one := &c.anySig
	for _, off := range offs {
		c.chip.anyWaiters[off] = append(c.chip.anyWaiters[off], one)
		c.chip.incWaiting(off)
	}
	c.proc.WaitOn(one, c.anySite(offs))
	for _, off := range offs {
		c.chip.anyWaiters[off] = removeSignal(c.chip.anyWaiters[off], one)
		c.chip.decWaiting(off)
	}
}

// anySite describes an any-flag blocking point: the watched-flag count
// and the first offset stand in for the full list, which cannot be
// stored without allocating.
func (c *Core) anySite(offs []int) simtime.WaitSite {
	return simtime.WaitSite{
		Kind: simtime.WaitFlagsAny,
		Core: int32(c.ID),
		Off:  int32(offs[0]),
		Want: int32(len(offs)),
	}
}

func removeSignal(list []*simtime.Signal, s *simtime.Signal) []*simtime.Signal {
	for i, v := range list {
		if v == s {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// notifyFlagWaiters wakes waiters whose flag byte lies inside a bulk MPB
// write range (a data write can legitimately overwrite a flag area). The
// waiting index is keyed by owning core, so the scan touches only the
// waiters parked inside the cores this write actually lands in — on a
// 10,000-core chip with thousands of cores blocked on their own flags, a
// whole-index scan per write would turn every collective quadratic.
func (c *Core) notifyFlagWaiters(off, n int) {
	if c.chip.waitingTotal == 0 || n <= 0 {
		return
	}
	last := c.chip.MPBOwner(off + n - 1)
	for owner := c.chip.MPBOwner(off); owner <= last; owner++ {
		for o := range c.chip.waiting[owner] {
			if o >= off && o < off+n {
				c.chip.flagSignal(o).Broadcast(c.chip.Engine)
				for _, s := range c.chip.anyWaiters[o] {
					s.Broadcast(c.chip.Engine)
				}
			}
		}
	}
}

// --- MPB-direct reduction (Sec. IV-D) ---

// ReduceMPBToMPB implements the paper's MPB-direct inner loop (Fig. 8):
// read n float64 operands from srcOff (typically the left neighbor's
// MPB), combine each with the core's private-memory vector at privAddr,
// and write results to the core's own MPB at dstOff - without staging
// through private memory. Costs: per-line remote reads from srcOff,
// cached private reads, per-element FP work, per-line local writes.
func (c *Core) ReduceMPBToMPB(srcOff int, privAddr Addr, dstOff, n int, op func(a, b float64) float64) {
	m := c.chip.Model
	operand := growF64(&c.redA, n)
	c.MPBReadF64s(srcOff, operand) // remote per-line round trips
	local := growF64(&c.redB, n)
	c.ReadF64s(privAddr, local) // cached private reads
	perElem := m.MPBReducePerElementCoreCycles
	if m.HardwareBugFixed {
		perElem = m.MPBReduceFixedPerElementCoreCycles
	}
	c.ComputeCycles(perElem * int64(n))
	for i := range operand {
		operand[i] = op(operand[i], local[i])
	}
	c.MPBWriteF64s(dstOff, operand) // local (bug-afflicted) line writes
}

// --- raw helpers ---

func readF64(b []byte, a Addr) float64 {
	return f64frombits(binary.LittleEndian.Uint64(b[a:]))
}

func writeF64(b []byte, a Addr, v float64) {
	binary.LittleEndian.PutUint64(b[a:], f64bits(v))
}
