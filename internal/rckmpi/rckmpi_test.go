package rckmpi

import (
	"math"
	"math/rand"
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

func launchAll(t *testing.T, fn func(l *Lib, c *scc.Core)) {
	t.Helper()
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.Launch(func(c *scc.Core) {
		fn(New(comm.UE(c.ID)), c)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowIsSmallAndLineAligned(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	l := New(comm.UE(0))
	w := l.Window()
	if w < 32 || w%32 != 0 {
		t.Fatalf("window = %d, want a positive multiple of one line", w)
	}
	if w >= comm.DataBytes()/8 {
		t.Fatalf("window = %d not 'small' relative to the region %d", w, comm.DataBytes())
	}
}

func TestSendRecvWindowedDelivery(t *testing.T) {
	// A message much larger than the window must cross intact.
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	n := 700
	payload := make([]float64, n)
	rng := rand.New(rand.NewSource(4))
	for i := range payload {
		payload[i] = rng.NormFloat64()
	}
	var got []float64
	chip.LaunchOne(3, func(c *scc.Core) {
		l := New(comm.UE(3))
		a := c.AllocF64(n)
		c.WriteF64s(a, payload)
		l.Send(30, a, 8*n)
	})
	chip.LaunchOne(30, func(c *scc.Core) {
		l := New(comm.UE(30))
		a := c.AllocF64(n)
		l.Recv(3, a, 8*n)
		got = make([]float64, n)
		c.ReadF64s(a, got)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("windowed payload corrupted at %d", i)
		}
	}
}

func TestBcastTreeCorrect(t *testing.T) {
	for _, root := range []int{0, 5, 47} {
		n := 100
		want := make([]float64, n)
		for i := range want {
			want[i] = float64(i) + float64(root)*0.5
		}
		results := make([][]float64, 48)
		launchAll(t, func(l *Lib, c *scc.Core) {
			a := c.AllocF64(n)
			if c.ID == root {
				c.WriteF64s(a, want)
			}
			l.Bcast(root, a, n)
			got := make([]float64, n)
			c.ReadF64s(a, got)
			results[c.ID] = got
		})
		for id, got := range results {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("root %d: core %d elem %d = %v want %v", root, id, i, got[i], want[i])
				}
			}
		}
	}
}

func TestReduceTreeCorrect(t *testing.T) {
	for _, root := range []int{0, 11} {
		n := 64
		var got []float64
		launchAll(t, func(l *Lib, c *scc.Core) {
			src := c.AllocF64(n)
			dst := c.AllocF64(n)
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(c.ID) + float64(i)
			}
			c.WriteF64s(src, v)
			l.Reduce(root, src, dst, n, func(a, b float64) float64 { return a + b })
			if c.ID == root {
				got = make([]float64, n)
				c.ReadF64s(dst, got)
			}
		})
		sumIDs := float64(47 * 48 / 2)
		for i := range got {
			want := sumIDs + 48*float64(i)
			if math.Abs(got[i]-want) > 1e-9 {
				t.Fatalf("root %d elem %d = %v, want %v", root, i, got[i], want)
			}
		}
	}
}

func TestAllreduceCorrect(t *testing.T) {
	n := 552
	out := make([][]float64, 48)
	launchAll(t, func(l *Lib, c *scc.Core) {
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(c.ID)*0.25 + float64(i)
		}
		c.WriteF64s(src, v)
		l.Allreduce(src, dst, n, func(a, b float64) float64 { return a + b })
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		out[c.ID] = got
	})
	for id, got := range out {
		for i := range got {
			want := 0.25*float64(47*48/2) + 48*float64(i)
			if math.Abs(got[i]-want) > 1e-9 {
				t.Fatalf("core %d elem %d = %v, want %v", id, i, got[i], want)
			}
		}
	}
}

func TestAllgatherRingCorrect(t *testing.T) {
	nPer := 21
	out := make([][]float64, 48)
	launchAll(t, func(l *Lib, c *scc.Core) {
		src := c.AllocF64(nPer)
		dst := c.AllocF64(48 * nPer)
		v := make([]float64, nPer)
		for i := range v {
			v[i] = float64(c.ID)*100 + float64(i)
		}
		c.WriteF64s(src, v)
		l.Allgather(src, nPer, dst)
		got := make([]float64, 48*nPer)
		c.ReadF64s(dst, got)
		out[c.ID] = got
	})
	for id, got := range out {
		for q := 0; q < 48; q++ {
			for i := 0; i < nPer; i++ {
				want := float64(q)*100 + float64(i)
				if got[q*nPer+i] != want {
					t.Fatalf("core %d block %d elem %d = %v, want %v", id, q, i, got[q*nPer+i], want)
				}
			}
		}
	}
}

func TestAlltoallPairwiseCorrect(t *testing.T) {
	nPer := 5
	out := make([][]float64, 48)
	launchAll(t, func(l *Lib, c *scc.Core) {
		src := c.AllocF64(48 * nPer)
		dst := c.AllocF64(48 * nPer)
		v := make([]float64, 48*nPer)
		for q := 0; q < 48; q++ {
			for i := 0; i < nPer; i++ {
				v[q*nPer+i] = float64(c.ID)*1000 + float64(q) + float64(i)*0.01
			}
		}
		c.WriteF64s(src, v)
		l.Alltoall(src, dst, nPer)
		got := make([]float64, 48*nPer)
		c.ReadF64s(dst, got)
		out[c.ID] = got
	})
	for me := 0; me < 48; me++ {
		for q := 0; q < 48; q++ {
			for i := 0; i < nPer; i++ {
				want := float64(q)*1000 + float64(me) + float64(i)*0.01
				if math.Abs(out[me][q*nPer+i]-want) > 1e-9 {
					t.Fatalf("core %d block %d elem %d wrong", me, q, i)
				}
			}
		}
	}
}

func TestReduceScatterCorrect(t *testing.T) {
	n := 552
	got := make([][]float64, 48)
	launchAll(t, func(l *Lib, c *scc.Core) {
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(c.ID) + float64(i)*0.5
		}
		c.WriteF64s(src, v)
		l.ReduceScatter(src, dst, n, func(a, b float64) float64 { return a + b })
		// Unbalanced RCCE_comm-style partition: block 0 holds the
		// remainder.
		base := n / 48
		ln := base
		if c.ID == 0 {
			ln = base + n%48
		}
		r := make([]float64, ln)
		c.ReadF64s(dst, r)
		got[c.ID] = r
	})
	sumIDs := float64(47 * 48 / 2)
	base := n / 48
	first := base + n%48
	for id, blk := range got {
		off := 0
		if id > 0 {
			off = first + (id-1)*base
		}
		for i := range blk {
			want := sumIDs + 48*0.5*float64(off+i)
			if math.Abs(blk[i]-want) > 1e-9 {
				t.Fatalf("core %d block elem %d = %v, want %v", id, i, blk[i], want)
			}
		}
	}
}

func TestSmoothNoPartialLinePenalty(t *testing.T) {
	// RCKMPI's channel must not show the period-4 spike: the latency of
	// n=601 (partial line) must not exceed n=604 (full lines) by the
	// RCCE padding-call margin.
	lat := func(n int) float64 {
		chip := scc.New(timing.Default())
		comm := rcce.NewComm(chip)
		chip.LaunchOne(0, func(c *scc.Core) {
			l := New(comm.UE(0))
			a := c.AllocF64(n)
			l.Send(1, a, 8*n)
		})
		chip.LaunchOne(1, func(c *scc.Core) {
			l := New(comm.UE(1))
			a := c.AllocF64(n)
			l.Recv(0, a, 8*n)
		})
		if err := chip.Run(); err != nil {
			t.Fatal(err)
		}
		return chip.Now().Micros()
	}
	l601, l604 := lat(601), lat(604)
	if l601 > l604 {
		t.Fatalf("n=601 (%v us) slower than n=604 (%v us): spike present", l601, l604)
	}
}
