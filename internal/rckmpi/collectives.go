package rckmpi

import "scc/internal/scc"

// Op is an associative binary reduction operator (mirrors core.Op; the
// package does not import internal/core to stay independently usable).
type Op func(a, b float64) float64

func mod(a, p int) int { return ((a % p) + p) % p }

// Bcast broadcasts n float64 values at addr from root along a binomial
// tree (the MPICH default for this message range).
func (l *Lib) Bcast(root int, addr scc.Addr, n int) {
	p := l.ue.NumUEs()
	me := l.ue.ID()
	vrank := mod(me-root, p)
	// Receive from parent.
	if vrank != 0 {
		mask := 1
		for mask < p {
			if vrank&mask != 0 {
				parent := mod(root+(vrank&^mask), p)
				l.Recv(parent, addr, 8*n)
				break
			}
			mask <<= 1
		}
		// Forward to children below the found mask.
		for mask >>= 1; mask > 0; mask >>= 1 {
			if child := vrank | mask; child < p && child != vrank {
				l.Send(mod(root+child, p), addr, 8*n)
			}
		}
		return
	}
	// Root: send to each subtree, highest mask first.
	mask := 1
	for mask < p {
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if child := mask; child < p {
			l.Send(mod(root+child, p), addr, 8*n)
		}
	}
}

// Reduce reduces n float64 values element-wise to the root along a
// binomial tree. dst is only meaningful on the root; src is unchanged.
func (l *Lib) Reduce(root int, src, dst scc.Addr, n int, op Op) {
	p := l.ue.NumUEs()
	me := l.ue.ID()
	c := l.core()
	m := c.Chip().Model
	vrank := mod(me-root, p)

	// Working accumulator starts as a copy of src.
	acc := make([]float64, n)
	c.ReadF64s(src, acc)
	tmpAddr := c.AllocF64(n)
	tmp := make([]float64, n)

	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			parent := mod(root+(vrank&^mask), p)
			// Ship the accumulator up and stop.
			accAddr := c.AllocF64(n)
			c.WriteF64s(accAddr, acc)
			l.Send(parent, accAddr, 8*n)
			return
		}
		if child := vrank | mask; child < p {
			l.Recv(mod(root+child, p), tmpAddr, 8*n)
			c.ReadF64s(tmpAddr, tmp)
			c.ComputeCycles(m.ReducePerElementCoreCycles * int64(n))
			for i := range acc {
				acc[i] = op(acc[i], tmp[i])
			}
		}
		mask <<= 1
	}
	c.WriteF64s(dst, acc)
}

// Allreduce is RCKMPI's Reduce-to-0 followed by Bcast (the MPICH
// composition for this communicator size and message range).
func (l *Lib) Allreduce(src, dst scc.Addr, n int, op Op) {
	l.Reduce(0, src, dst, n, op)
	l.Bcast(0, dst, n)
}

// Allgather gathers each core's nPer elements (at src) into dst
// (p*nPer, rank-ordered) with the MPICH ring algorithm.
func (l *Lib) Allgather(src scc.Addr, nPer int, dst scc.Addr) {
	p := l.ue.NumUEs()
	me := l.ue.ID()
	c := l.core()
	// Place own contribution.
	v := make([]float64, nPer)
	c.ReadF64s(src, v)
	c.WriteF64s(dst+scc.Addr(8*nPer*me), v)
	right := mod(me+1, p)
	left := mod(me-1, p)
	for r := 0; r < p-1; r++ {
		sendIdx := mod(me-r, p)
		recvIdx := mod(me-1-r, p)
		sAddr := dst + scc.Addr(8*nPer*sendIdx)
		rAddr := dst + scc.Addr(8*nPer*recvIdx)
		// Rendezvous ring: odd-even ordering avoids the cycle deadlock.
		if me%2 == 0 {
			l.Send(right, sAddr, 8*nPer)
			l.Recv(left, rAddr, 8*nPer)
		} else {
			l.Recv(left, rAddr, 8*nPer)
			l.Send(right, sAddr, 8*nPer)
		}
	}
}

// Alltoall performs the complete exchange with MPICH's pairwise schedule.
func (l *Lib) Alltoall(src, dst scc.Addr, nPer int) {
	p := l.ue.NumUEs()
	me := l.ue.ID()
	c := l.core()
	for r := 0; r < p; r++ {
		partner := mod(r-me, p)
		sAddr := src + scc.Addr(8*nPer*partner)
		rAddr := dst + scc.Addr(8*nPer*partner)
		if partner == me {
			v := make([]float64, nPer)
			c.ReadF64s(sAddr, v)
			c.WriteF64s(rAddr, v)
			continue
		}
		if nPer == 0 {
			continue
		}
		l.sendRecvPair(partner, sAddr, 8*nPer, rAddr, 8*nPer)
	}
}

// ReduceScatter reduces element-wise and scatters equal consecutive
// blocks (MPI_Reduce_scatter_block semantics over the RCCE_comm-style
// partition): implemented as Reduce to 0 plus a scatter of the blocks,
// MPICH's fallback for irregular communicator sizes. dst receives this
// core's block; blocks follow the unbalanced RCCE_comm partition so the
// comparator matches the baseline's data layout.
func (l *Lib) ReduceScatter(src, dst scc.Addr, n int, op Op) {
	p := l.ue.NumUEs()
	me := l.ue.ID()
	c := l.core()
	full := c.AllocF64(n)
	l.Reduce(0, src, full, n, op)
	// Scatter the blocks from the root.
	base := n / p
	first := base + n%p
	offOf := func(q int) (off, ln int) {
		if q == 0 {
			return 0, first
		}
		return first + (q-1)*base, base
	}
	if me == 0 {
		for q := 1; q < p; q++ {
			off, ln := offOf(q)
			if ln > 0 {
				l.Send(q, full+scc.Addr(8*off), 8*ln)
			}
		}
		_, ln := offOf(0)
		v := make([]float64, ln)
		c.ReadF64s(full, v)
		c.WriteF64s(dst, v)
		return
	}
	_, ln := offOf(me)
	if ln > 0 {
		l.Recv(0, dst, 8*ln)
	}
}
