// Package rckmpi models RCKMPI, the MPICH-based full MPI implementation
// for the SCC that the paper uses as its comparator (Sec. III, Sec. V).
// Two properties matter for the reproduction and are modeled from the
// paper's own observations:
//
//   - RCKMPI's channel transfers bytes smoothly: partial cache lines do
//     not trigger the extra communication call RCCE needs, so its
//     latency curve has none of the period-4 spikes (Sec. V-A) - at the
//     price of a per-byte software cost.
//   - The full MPICH layering (request objects, matching queues, the
//     datatype engine) makes every point-to-point operation expensive:
//     "significantly higher memory footprint and runtime overhead
//     compared to RCCE", leaving it roughly 2x-5x above the RCCE_comm
//     baseline everywhere except Alltoall, whose cost is dominated by
//     raw data volume.
//
// Its collective algorithms follow the MPICH playbook: binomial trees
// for rooted collectives, a ring for Allgather, pairwise exchange for
// Alltoall.
package rckmpi

import (
	"fmt"

	"scc/internal/rcce"
	"scc/internal/scc"
)

// Lib is a per-UE RCKMPI instance.
type Lib struct {
	ue *rcce.UE
	// winBuf is the channel's window staging buffer, sized to Window()
	// on first use and reused across calls. Safe because a UE runs one
	// blocking Send or Recv at a time.
	winBuf []byte
}

// New creates the RCKMPI instance for one UE. It shares the chip's MPB
// flag layout with RCCE (RCKMPI also runs its channel through the MPBs)
// but prices operations through its own cost model.
func New(ue *rcce.UE) *Lib {
	return &Lib{ue: ue}
}

// UE returns the underlying unit of execution.
func (l *Lib) UE() *rcce.UE { return l.ue }

func (l *Lib) core() *scc.Core { return l.ue.Core() }

// chargeCall prices one MPI point-to-point call's software layering.
func (l *Lib) chargeCall() {
	l.core().OverheadCycles(l.core().Chip().Model.OverheadRCKMPICall)
}

// chargeBytes prices the channel's per-byte copy work on one side.
func (l *Lib) chargeBytes(n int) {
	l.core().OverheadCycles(l.core().Chip().Model.RCKMPIPerByteCoreCycles * int64(n))
}

// Window returns the per-sender MPB window size of the SCCMPB channel.
// RCKMPI statically partitions each core's MPB receive space among all
// possible senders, so one pair only ever streams through a small
// window and long single-pair transfers pay one flag round trip per
// window refill. This is the mechanism behind RCKMPI's Fig. 9 placement:
// tree collectives (one active pair per step) crawl, while Alltoall
// (47 windows active at once) stays competitive. The window is rounded
// down to whole cache lines.
func (l *Lib) Window() int {
	comm := l.ue.Comm()
	line := l.core().Chip().Model.CacheLineBytes
	// Half of each per-sender share holds channel metadata (read/write
	// pointers and packet headers), halving the usable payload window.
	w := comm.DataBytes() / (comm.NumUEs() - 1) / 2 / line * line
	if w < line {
		w = line
	}
	return w
}

// scratch returns the reusable window buffer, growing it if needed.
func (l *Lib) scratch(n int) []byte {
	if cap(l.winBuf) < n {
		l.winBuf = make([]byte, n)
	}
	return l.winBuf[:n]
}

// Send transmits nBytes to dest through the RCKMPI channel (blocking
// rendezvous through the MPB window, with byte-granular software costs:
// no partial-line padding call, hence the smooth latency curve).
func (l *Lib) Send(dest int, addr scc.Addr, nBytes int) {
	if dest == l.ue.ID() {
		panic(fmt.Sprintf("rckmpi: UE %d send to itself", dest))
	}
	l.chargeCall()
	comm := l.ue.Comm()
	c := l.core()
	chunk := l.Window()
	sent := comm.FlagAddr(dest, l.ue.ID(), rcce.FlagSent)
	ready := comm.FlagAddr(l.ue.ID(), dest, rcce.FlagReady)
	buf := l.scratch(chunk)
	progress := l.core().Chip().Model.OverheadRCKMPICall / 16
	for off := 0; off < nBytes || nBytes == 0; off += chunk {
		n := nBytes - off
		if n > chunk {
			n = chunk
		}
		c.OverheadCycles(progress) // channel progress engine, per window
		l.chargeBytes(n)
		c.TouchRead(addr+scc.Addr(off), n)
		copy(buf[:n], c.PrivBytes(addr+scc.Addr(off), n))
		c.MPBWrite(comm.DataBase(l.ue.ID()), buf[:n])
		c.SetFlag(sent, 1)
		c.WaitFlag(ready, 1)
		c.SetFlag(ready, 0)
		if nBytes == 0 {
			break
		}
	}
}

// Recv receives nBytes from src.
func (l *Lib) Recv(src int, addr scc.Addr, nBytes int) {
	if src == l.ue.ID() {
		panic(fmt.Sprintf("rckmpi: UE %d recv from itself", src))
	}
	l.chargeCall()
	comm := l.ue.Comm()
	c := l.core()
	chunk := l.Window()
	sent := comm.FlagAddr(l.ue.ID(), src, rcce.FlagSent)
	ready := comm.FlagAddr(src, l.ue.ID(), rcce.FlagReady)
	buf := l.scratch(chunk)
	progress := l.core().Chip().Model.OverheadRCKMPICall / 16
	for off := 0; off < nBytes || nBytes == 0; off += chunk {
		n := nBytes - off
		if n > chunk {
			n = chunk
		}
		c.OverheadCycles(progress) // channel progress engine, per window
		c.WaitFlag(sent, 1)
		c.SetFlag(sent, 0)
		c.MPBRead(comm.DataBase(src), buf[:n])
		l.chargeBytes(n)
		c.TouchWrite(addr+scc.Addr(off), n)
		copy(c.PrivBytes(addr+scc.Addr(off), n), buf[:n])
		c.SetFlag(ready, 1)
		if nBytes == 0 {
			break
		}
	}
}

// sendRecvPair exchanges with one symmetric partner. MPICH's pairwise
// exchange posts both legs as non-blocking requests and waits on both,
// so the two directions overlap on the wire; this is why RCKMPI stays
// competitive on Alltoall (Sec. V-A) while losing everywhere
// overhead-bound. The per-byte channel cost is still charged on both
// buffers.
func (l *Lib) sendRecvPair(peer int, sAddr scc.Addr, sBytes int, rAddr scc.Addr, rBytes int) {
	m := l.core().Chip().Model
	costs := rcce.NBCosts{
		Post:     m.OverheadRCKMPICall,
		Wait:     m.OverheadRCKMPICall / 4,
		Progress: m.OverheadRCKMPICall / 8,
	}
	l.chargeBytes(sBytes)
	s := l.ue.PostSend(costs, peer, sAddr, sBytes)
	r := l.ue.PostRecv(costs, peer, rAddr, rBytes)
	l.ue.WaitAll(costs, s, r)
	l.chargeBytes(rBytes)
}
