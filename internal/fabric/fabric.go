// Package fabric joins several simulated SCC chips into one System
// through a slower board-level interconnect, the substrate for the
// hierarchical collectives of internal/core.
//
// The cost model mirrors a mesh link one level up: every inter-chip
// message pays a fixed head latency (FabricBaseLatencyMeshCycles),
// serializes at the fabric width (FabricBytesPerMeshCycle), and
// occupies its directed chip-to-chip link for the serialization time,
// so back-to-back messages between the same chip pair queue exactly
// like packets on a mesh link. Gateway cores additionally pay a
// per-message software cost (FabricPerMessageCoreCycles) to post or
// drain a transfer.
//
// All chips share one simtime.Engine, so a multi-chip run is a single
// deterministic event sequence: same seed, same byte-identical result,
// at any host worker count.
package fabric

import (
	"fmt"

	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// System is K chips on one virtual clock, joined pairwise by the
// inter-chip fabric. Chip i's cores are reachable only from chip i;
// cross-chip data moves through Port Send/Recv on gateway cores.
type System struct {
	Engine *simtime.Engine
	Chips  []*scc.Chip
	model  *timing.Model

	// links holds the K*K directed mailboxes, indexed src*K+dst. The
	// diagonal entries exist but are never used (same-chip traffic
	// stays on the mesh).
	links []link
}

// link is the rendezvous mailbox of one directed chip pair plus the
// occupancy state of its physical channel.
type link struct {
	// busyUntil is when the channel finishes serializing the last
	// message injected into it; the next message queues behind it.
	busyUntil simtime.Time

	// Mailbox: one message in flight per directed pair. full guards
	// data/arriveAt; fullSig wakes the receiver, freeSig the next
	// sender waiting for the slot.
	full     bool
	data     []float64
	arriveAt simtime.Time
	fullSig  simtime.Signal
	freeSig  simtime.Signal
}

// New builds a System of k chips, all instances of the same model, on a
// fresh engine. Core process names get a "chip<i>." prefix so notes and
// deadlock reports stay unambiguous. It panics on an invalid model or
// k < 1, mirroring scc.New.
func New(model *timing.Model, k int) *System {
	if k < 1 {
		panic(fmt.Sprintf("fabric: system needs at least one chip, got %d", k))
	}
	if model.FabricBytesPerMeshCycle <= 0 {
		panic(fmt.Sprintf("fabric: fabric width must be positive, got %d",
			model.FabricBytesPerMeshCycle))
	}
	s := &System{
		Engine: simtime.NewEngine(),
		model:  model,
		links:  make([]link, k*k),
	}
	for i := 0; i < k; i++ {
		chip := scc.NewOnEngine(model, s.Engine)
		chip.NamePrefix = fmt.Sprintf("chip%d.", i)
		s.Chips = append(s.Chips, chip)
	}
	return s
}

// NumChips returns how many chips the system spans.
func (s *System) NumChips() int { return len(s.Chips) }

// Model returns the shared timing model.
func (s *System) Model() *timing.Model { return s.model }

// Port returns chip's handle to the fabric. Any core of the chip may
// drive it, but the hierarchical collectives use core 0 as the gateway.
func (s *System) Port(chip int) *Port {
	if chip < 0 || chip >= len(s.Chips) {
		panic(fmt.Sprintf("fabric: no chip %d in a %d-chip system", chip, len(s.Chips)))
	}
	return &Port{sys: s, chip: chip}
}

// Run executes the whole system to completion: one engine, one error.
// Per-chip Run must not be used in a multi-chip system (the chips share
// the engine); this is the only run entry point.
func (s *System) Run() error {
	err := s.Engine.Run()
	if err == nil {
		return nil
	}
	var dead []int
	for ci, chip := range s.Chips {
		for _, core := range chip.Cores {
			if core.Dead() {
				dead = append(dead, ci*s.model.NumCores()+core.ID)
			}
		}
	}
	if len(dead) == 0 {
		return err
	}
	return fmt.Errorf("%w (system cores %v): %v", scc.ErrCoreDead, dead, err)
}

// Port is one chip's endpoint on the fabric.
type Port struct {
	sys  *System
	chip int
}

// Chip returns the port's chip index.
func (p *Port) Chip() int { return p.chip }

// NumChips returns the system size.
func (p *Port) NumChips() int { return p.sys.NumChips() }

// serialization returns how long n doubles occupy the fabric channel.
// Even a zero-length message (a barrier token) holds the channel for
// one mesh cycle of framing.
func (s *System) serialization(n int) simtime.Duration {
	bytes := 8 * n
	cycles := int64((bytes + s.model.FabricBytesPerMeshCycle - 1) / s.model.FabricBytesPerMeshCycle)
	if cycles < 1 {
		cycles = 1
	}
	return simtime.MeshCycles(cycles)
}

// Send posts data from core c (on this port's chip) to chip dst. It
// blocks until the mailbox slot is free and the message's last byte has
// been injected into the channel; delivery completes later, when the
// head latency and serialization have elapsed (the receiver's Recv
// observes that time). data is copied, so the caller may reuse it.
func (p *Port) Send(c *scc.Core, dst int, data []float64) {
	s := p.sys
	if dst < 0 || dst >= s.NumChips() || dst == p.chip {
		panic(fmt.Sprintf("fabric: chip %d cannot send to chip %d", p.chip, dst))
	}
	var t0 simtime.Time
	if c.Tracing() {
		t0 = c.Now()
	}
	c.OverheadCycles(s.model.FabricPerMessageCoreCycles)
	now := c.Now() // flush deferred local latency before touching shared state
	l := &s.links[p.chip*s.NumChips()+dst]
	for l.full {
		c.Proc().WaitOn(&l.freeSig, simtime.Site("fabric send: mailbox full"))
	}
	now = c.Proc().Now()
	inj := now
	if l.busyUntil > inj {
		inj = l.busyUntil // queue behind the message still serializing
	}
	ser := s.serialization(len(data))
	l.busyUntil = inj + ser
	l.arriveAt = inj + simtime.MeshCycles(s.model.FabricBaseLatencyMeshCycles) + ser
	l.data = append(l.data[:0], data...)
	l.full = true
	l.fullSig.Broadcast(s.Engine)
	c.Proc().Sleep(l.busyUntil - now) // sender is occupied until the tail is injected
	if c.Tracing() {
		c.RecordSpan("fabric.send", t0, c.Now())
	}
}

// Recv blocks core c until the message from chip src has fully arrived,
// copies it into buf (lengths must match) and frees the mailbox slot
// for the next sender.
func (p *Port) Recv(c *scc.Core, src int, buf []float64) {
	s := p.sys
	if src < 0 || src >= s.NumChips() || src == p.chip {
		panic(fmt.Sprintf("fabric: chip %d cannot receive from chip %d", p.chip, src))
	}
	var t0 simtime.Time
	if c.Tracing() {
		t0 = c.Now()
	}
	c.OverheadCycles(s.model.FabricPerMessageCoreCycles)
	now := c.Now()
	l := &s.links[src*s.NumChips()+p.chip]
	for !l.full {
		c.Proc().WaitOn(&l.fullSig, simtime.Site("fabric recv: mailbox empty"))
	}
	now = c.Proc().Now()
	if l.arriveAt > now {
		c.Proc().Sleep(l.arriveAt - now)
	}
	if len(buf) != len(l.data) {
		panic(fmt.Sprintf("fabric: chip %d expected %d doubles from chip %d, got %d",
			p.chip, len(buf), src, len(l.data)))
	}
	copy(buf, l.data)
	l.full = false
	l.freeSig.Broadcast(s.Engine)
	if c.Tracing() {
		c.RecordSpan("fabric.recv", t0, c.Now())
	}
}
