package rcce

import (
	"strings"
	"testing"

	"scc/internal/scc"
	"scc/internal/simtime"
)

func TestAllocFlagDistinctAndOwned(t *testing.T) {
	chip := newChip()
	c := NewComm(chip)
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		off, err := c.AllocFlag(5)
		if err != nil {
			t.Fatal(err)
		}
		if seen[off] {
			t.Fatalf("duplicate flag offset %d", off)
		}
		seen[off] = true
		if chip.MPBOwner(off) != 5 {
			t.Fatalf("flag %d not in core 5's MPB", off)
		}
		if off >= c.DataBase(5) {
			t.Fatalf("flag %d overlaps the data region", off)
		}
	}
}

func TestAllocFlagExhaustion(t *testing.T) {
	chip := newChip()
	c := NewComm(chip)
	total := c.UserFlagCount()
	for i := 0; i < total; i++ {
		if _, err := c.AllocFlag(0); err != nil {
			t.Fatalf("alloc %d/%d failed: %v", i, total, err)
		}
	}
	if _, err := c.AllocFlag(0); err == nil {
		t.Fatal("expected exhaustion error")
	} else if !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFreeFlagReuse(t *testing.T) {
	chip := newChip()
	c := NewComm(chip)
	off, err := c.AllocFlag(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FreeFlag(off); err != nil {
		t.Fatal(err)
	}
	if err := c.FreeFlag(off); err == nil {
		t.Fatal("double free not detected")
	}
	off2, err := c.AllocFlag(3)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off {
		t.Fatalf("freed flag not reused: %d vs %d", off2, off)
	}
	if err := c.FreeFlag(c.DataBase(3) + 100); err == nil {
		t.Fatal("freeing a data-region offset must fail")
	}
}

func TestGoryFlagSynchronization(t *testing.T) {
	// Hand-rolled producer/consumer over a user flag, the gory-interface
	// style: producer writes data into its own MPB data region, raises
	// the user flag; consumer waits, reads, acknowledges via a second
	// user flag.
	chip := newChip()
	comm := NewComm(chip)
	dataOff := comm.DataBase(0)
	f1, err := comm.AllocFlag(1) // in consumer's MPB: producer -> consumer
	if err != nil {
		t.Fatal(err)
	}
	f2, err := comm.AllocFlag(0) // in producer's MPB: consumer -> producer
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	var prodDone simtime.Time
	chip.LaunchOne(0, func(core *scc.Core) {
		ue := comm.UE(0)
		a := core.AllocF64(1)
		core.WriteF64s(a, []float64{3.25})
		ue.Put(a, dataOff, 8)
		ue.FlagWrite(f1, 1)
		ue.WaitUntil(f2, 1)
		prodDone = core.Now()
	})
	chip.LaunchOne(1, func(core *scc.Core) {
		ue := comm.UE(1)
		core.Compute(simtime.Microseconds(40))
		ue.WaitUntil(f1, 1)
		a := core.AllocF64(1)
		ue.Get(dataOff, a, 8)
		out := make([]float64, 1)
		core.ReadF64s(a, out)
		got = out[0]
		ue.FlagWrite(f2, 1)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 3.25 {
		t.Fatalf("gory transfer delivered %v", got)
	}
	if prodDone < simtime.Microseconds(40) {
		t.Fatal("producer returned before consumer acknowledged")
	}
	// FlagRead sees the final state.
	chip2 := newChip()
	comm2 := NewComm(chip2)
	chip2.LaunchOne(0, func(core *scc.Core) {
		ue := comm2.UE(0)
		off, _ := comm2.AllocFlag(0)
		if ue.FlagRead(off) != 0 {
			t.Error("fresh flag not zero")
		}
		ue.FlagWrite(off, 9)
		if ue.FlagRead(off) != 9 {
			t.Error("flag write not visible")
		}
	})
	if err := chip2.Run(); err != nil {
		t.Fatal(err)
	}
}
