package rcce

import (
	"encoding/binary"
	"errors"
	"fmt"

	"scc/internal/scc"
	"scc/internal/simtime"
)

// This file implements the hardened (self-recovering) point-to-point
// protocol. The plain two-flag protocol of comm.go assumes a perfect
// chip: one lost flag write hangs both peers forever. The hardened
// variant survives lost and corrupted MPB traffic:
//
//   - Flags carry sequence numbers (1..127) instead of 0/1, so a
//     duplicate chunk is recognized and re-acknowledged, not re-consumed.
//   - Every chunk travels with an FNV-1a checksum in the sent-flag line;
//     a mismatch is NACKed (ready = seq|0x80) and the chunk is re-staged.
//   - All waits are bounded. On timeout the sender probes the receiver's
//     progress byte (the last consumed sequence number): if it equals the
//     outstanding chunk the ACK was lost and the chunk is complete;
//     otherwise the chunk is retransmitted with exponential backoff.
//
// Every defensive action is priced through the timing model (checksum
// cycles, timeout checks, retransmit staging at normal Put cost), so
// recovery latency is a measured quantity.

// ErrUnreachable is returned when the retry budget for one peer is
// exhausted — the peer is presumed dead (or unreachable mid-protocol).
var ErrUnreachable = errors.New("rcce: peer unreachable, retries exhausted")

// Policy bounds the hardened protocol's waits and retries.
type Policy struct {
	// Timeout is the initial bounded-wait window per chunk handshake.
	Timeout simtime.Duration
	// Backoff multiplies the window after each timeout (>= 1).
	Backoff int
	// MaxRetries is the per-chunk retry budget before ErrUnreachable.
	MaxRetries int
	// Jitter spreads the retransmit deadlines of concurrent peers: each
	// backed-off window is stretched by up to Jitter/16 of itself, keyed
	// deterministically by (self, peer, sequence, retry) — never by wall
	// clock — so same-seed runs stay bit-identical while synchronized
	// retransmit storms after a link stall de-correlate. 0 disables
	// jitter (the legacy behavior); 4 stretches windows by up to 25%.
	Jitter int
}

// jitterOf returns the deterministic window stretch for one retry of one
// peer pairing: window * (h mod (Jitter+1)) / 16 with h an FNV-1a mix of
// the identifying tuple. Pure function of its arguments — no clocks, no
// global state — so determinism is preserved by construction.
func (p Policy) JitterOf(window simtime.Duration, self, peer int, seq byte, try int) simtime.Duration {
	if p.Jitter <= 0 {
		return 0
	}
	h := uint32(2166136261)
	for _, v := range [4]uint32{uint32(self), uint32(peer), uint32(seq), uint32(try)} {
		h ^= v
		h *= 16777619
	}
	steps := uint32(p.Jitter) + 1
	return window * simtime.Duration(h%steps) / 16
}

// DefaultPolicy returns the policy used by the fault benchmarks: a 300 µs
// initial window (comfortably above one fault-free chunk handshake),
// doubling per retry, eight retries.
func DefaultPolicy() Policy {
	return Policy{Timeout: simtime.Microseconds(300), Backoff: 2, MaxRetries: 8}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.Timeout <= 0 {
		p.Timeout = d.Timeout
	}
	if p.Backoff < 1 {
		p.Backoff = d.Backoff
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = d.MaxRetries
	}
	return p
}

// RecoveryStats counts the hardened protocol's defensive actions on one
// UE. Recovery is the virtual time spent past the first timeout of each
// operation — the latency attributable to fault handling.
type RecoveryStats struct {
	Timeouts    int64
	Retransmits int64
	Nacks       int64 // checksum mismatches NACKed by this receiver
	DupAcks     int64 // duplicate chunks re-acknowledged
	LostAcks    int64 // completions recovered via the progress byte
	Recovery    simtime.Duration
}

// Add accumulates s2 into s.
func (s *RecoveryStats) Add(s2 RecoveryStats) {
	s.Timeouts += s2.Timeouts
	s.Retransmits += s2.Retransmits
	s.Nacks += s2.Nacks
	s.DupAcks += s2.DupAcks
	s.LostAcks += s2.LostAcks
	s.Recovery += s2.Recovery
}

// Recovery returns the UE's accumulated recovery statistics.
func (u *UE) Recovery() RecoveryStats { return u.stats }

// ResetRecovery clears the UE's recovery statistics.
func (u *UE) ResetRecovery() { u.stats = RecoveryStats{} }

// Sequence numbers occupy 1..127; 0 means "consumed / idle" and the top
// bit turns an ACK value into a NACK.
const (
	seqMax  = 0x7F
	nackBit = 0x80
)

func nextSeq(s byte) byte {
	s++
	if s > seqMax {
		s = 1
	}
	return s
}

func prevSeq(s byte) byte {
	if s <= 1 {
		return seqMax
	}
	return s - 1
}

// fnv1a is the per-chunk checksum (FNV-1a, 32-bit).
func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// robustOp is one direction of a hardened transfer: a chunked state
// machine with bounded waits. Send and receive directions share the
// engine (runRobust) so a full-duplex exchange interleaves both without
// deadlock.
type robustOp struct {
	u     *UE
	pol   Policy
	costs NBCosts
	kind  ReqKind
	peer  int
	addr  scc.Addr
	n     int

	off      int  // bytes completed
	seq      byte // sequence number of the chunk in flight / expected
	chunks   int  // chunks remaining (>= 1 even for zero-byte messages)
	retries  int
	window   simtime.Duration
	deadline simtime.Time
	done     bool
}

// initRobustOp (re)initializes caller-owned op storage. The public
// entry points pass the UE's opSend/opRecv fields, so a steady state of
// robust transfers allocates no op records: a UE drives at most one
// robust operation per direction at a time.
func (u *UE) initRobustOp(r *robustOp, kind ReqKind, costs NBCosts, pol Policy, peer int, addr scc.Addr, n int) *robustOp {
	if peer == u.ID() {
		panic(fmt.Sprintf("rcce: UE %d robust %v with itself", peer, kind))
	}
	seqm := &u.sendSeq
	if kind == ReqRecv {
		seqm = &u.recvSeq
	}
	seq := seqm.get(peer)
	if seq == 0 {
		seq = 1
	}
	cap := u.comm.DataBytes()
	chunks := (n + cap - 1) / cap
	if chunks < 1 {
		chunks = 1
	}
	*r = robustOp{
		u: u, pol: pol, costs: costs, kind: kind, peer: peer, addr: addr, n: n,
		seq: seq, chunks: chunks, window: pol.Timeout,
	}
	return r
}

// Flag offsets. For a send, "sent" and the checksum live in the peer's
// MPB (we write them); "ready" and "progress" live in ours (the peer
// writes them). A receive mirrors this.
func (r *robustOp) sentOff() int {
	if r.kind == ReqSend {
		return r.u.comm.FlagAddr(r.peer, r.u.ID(), FlagSent)
	}
	return r.u.comm.FlagAddr(r.u.ID(), r.peer, FlagSent)
}

func (r *robustOp) chkOff() int {
	if r.kind == ReqSend {
		return r.u.comm.FlagAddr(r.peer, r.u.ID(), FlagChk0)
	}
	return r.u.comm.FlagAddr(r.u.ID(), r.peer, FlagChk0)
}

func (r *robustOp) readyOff() int {
	if r.kind == ReqSend {
		return r.u.comm.FlagAddr(r.u.ID(), r.peer, FlagReady)
	}
	return r.u.comm.FlagAddr(r.peer, r.u.ID(), FlagReady)
}

func (r *robustOp) progressOff() int {
	if r.kind == ReqSend {
		return r.u.comm.FlagAddr(r.u.ID(), r.peer, FlagProgress)
	}
	return r.u.comm.FlagAddr(r.peer, r.u.ID(), FlagProgress)
}

// watchOff is the local flag whose change can advance this op.
func (r *robustOp) watchOff() int {
	if r.kind == ReqSend {
		return r.readyOff()
	}
	return r.sentOff()
}

// match reports whether a watched-flag value advances this op.
func (r *robustOp) match(v byte) bool {
	if r.kind == ReqSend {
		return v == r.seq || v == r.seq|nackBit
	}
	return v == r.seq || v == prevSeq(r.seq)
}

func (r *robustOp) chunkLen() int {
	n := r.n - r.off
	if cap := r.u.comm.DataBytes(); n > cap {
		n = cap
	}
	return n
}

func (r *robustOp) armDeadline() {
	r.deadline = r.u.core.Now() + r.window
}

func (r *robustOp) backoff() {
	r.window *= simtime.Duration(r.pol.Backoff)
	r.deadline = r.u.core.Now() + r.window +
		r.pol.JitterOf(r.window, r.u.ID(), r.peer, r.seq, r.retries)
}

// chargeChecksum prices checksumming n payload bytes (minimum one line).
func (r *robustOp) chargeChecksum(n int) {
	m := r.u.core.Chip().Model
	lines := int64(m.Lines(n))
	if lines < 1 {
		lines = 1
	}
	r.u.core.OverheadCycles(m.ChecksumPerLineCoreCycles * lines)
}

// stage copies the current chunk into the peer's staging region along
// with its checksum, then announces it with the sequence-valued sent
// flag. The checksum is computed over the private-memory source, so
// corruption or loss anywhere on the MPB path is detectable.
func (r *robustOp) stage() {
	u := r.u
	n := r.chunkLen()
	u.Put(r.addr+scc.Addr(r.off), u.comm.DataBase(u.ID()), n)
	r.chargeChecksum(n)
	sum := fnv1a(u.core.PrivBytes(r.addr+scc.Addr(r.off), n)) ^ u.epochSalt
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], sum)
	u.core.MPBWrite(r.chkOff(), b[:])
	u.core.SetFlag(r.sentOff(), r.seq)
}

// completeChunk records one finished chunk and either finishes the op or
// moves to the next chunk (staging it, for sends).
func (r *robustOp) completeChunk(n int) {
	u := r.u
	r.off += n
	r.chunks--
	seqm := &u.sendSeq
	verb := "robust sent %d/%d B peer %02d"
	if r.kind == ReqRecv {
		seqm = &u.recvSeq
		verb = "robust recvd %d/%d B peer %02d"
	}
	r.seq = nextSeq(r.seq)
	seqm.set(r.peer, r.seq)
	u.notifyPeer(r.peer, true) // a completed handshake clears suspicion
	u.core.Note(simtime.Note3(verb, int64(r.off), int64(r.n), int64(r.peer)))
	if r.chunks == 0 {
		r.done = true
		return
	}
	r.retries = 0
	r.window = r.pol.Timeout
	if r.kind == ReqSend {
		r.stage()
	}
	r.armDeadline()
}

// retransmit re-stages the chunk in flight after a timeout or NACK.
func (r *robustOp) retransmit() {
	u := r.u
	u.core.OverheadCycles(u.core.Chip().Model.OverheadRetransmit)
	u.stats.Retransmits++
	r.stage()
	r.backoff()
}

// advance consumes one matched watched-flag value.
func (r *robustOp) advance(v byte) {
	u := r.u
	if r.kind == ReqSend {
		u.core.SetFlag(r.readyOff(), 0) // consume the ACK/NACK (local line)
		if v == r.seq {
			r.completeChunk(r.chunkLen())
		} else { // NACK: the receiver saw a corrupt chunk
			r.retransmit()
		}
		return
	}
	// Receive side.
	u.core.SetFlag(r.sentOff(), 0) // consume the announcement (local line)
	if v == prevSeq(r.seq) && v != r.seq {
		// Duplicate of the previous chunk: our ACK was lost in flight.
		// Re-acknowledge; do not consume the data again.
		u.core.SetFlag(r.readyOff(), v)
		u.core.SetFlag(r.progressOff(), v)
		u.stats.DupAcks++
		r.armDeadline()
		return
	}
	n := r.chunkLen()
	u.Get(u.comm.DataBase(r.peer), r.addr+scc.Addr(r.off), n)
	r.chargeChecksum(n)
	sum := fnv1a(u.core.PrivBytes(r.addr+scc.Addr(r.off), n)) ^ u.epochSalt
	var b [4]byte
	u.core.MPBRead(r.chkOff(), b[:])
	if binary.LittleEndian.Uint32(b[:]) != sum {
		// Corrupt (or partially lost) chunk: NACK and wait for the
		// retransmission of the same sequence number.
		u.core.SetFlag(r.readyOff(), r.seq|nackBit)
		u.stats.Nacks++
		r.armDeadline()
		return
	}
	u.core.SetFlag(r.readyOff(), r.seq)
	u.core.SetFlag(r.progressOff(), r.seq)
	r.completeChunk(n)
}

// onTimeout handles an expired deadline: lost-ACK recovery via the
// progress byte for senders, retransmission with backoff otherwise.
func (r *robustOp) onTimeout() error {
	u := r.u
	m := u.core.Chip().Model
	u.core.OverheadCycles(m.OverheadTimeoutCheck)
	u.stats.Timeouts++
	if r.kind == ReqSend && u.core.ProbeFlag(r.progressOff()) == r.seq {
		// The receiver consumed this chunk; its ACK was lost. Treat as
		// acknowledged.
		u.stats.LostAcks++
		u.core.SetFlag(r.readyOff(), 0)
		r.completeChunk(r.chunkLen())
		return nil
	}
	r.retries++
	if r.retries > r.pol.MaxRetries {
		u.notifyPeer(r.peer, false) // budget exhausted: suspect the peer
		return fmt.Errorf("%w: %v peer %02d at byte %d/%d (%d retries)",
			ErrUnreachable, r.kind, r.peer, r.off, r.n, r.pol.MaxRetries)
	}
	if r.kind == ReqSend {
		r.retransmit()
	} else {
		// A receiver cannot push; it widens its window and relies on the
		// sender's retransmission (both sides run the same policy).
		r.backoff()
	}
	return nil
}

// runRobust drives a set of robust ops to completion concurrently: the
// core watches every pending op's flag with one bounded multi-flag wait
// and advances whichever fires. This is what makes a full-duplex
// exchange deadlock-free with a single simulated process per core.
func (u *UE) runRobust(ops []*robustOp) error {
	for _, r := range ops {
		if r.kind == ReqSend {
			r.stage()
		}
		r.armDeadline()
	}
	var firstTimeout simtime.Time = -1
	settle := func() {
		if firstTimeout >= 0 {
			u.stats.Recovery += u.core.Now() - firstTimeout
		}
	}
	// The per-round scratch lives on the UE (robust ops never nest
	// within one UE), and the match predicate reads the UE field so one
	// closure serves every round.
	match := func(i int, val byte) bool { return u.robustPend[i].match(val) }
	for {
		u.robustOffs = u.robustOffs[:0]
		u.robustPend = u.robustPend[:0]
		var minDL simtime.Time = -1
		for _, r := range ops {
			if r.done {
				continue
			}
			u.robustOffs = append(u.robustOffs, r.watchOff())
			u.robustPend = append(u.robustPend, r)
			if minDL < 0 || r.deadline < minDL {
				minDL = r.deadline
			}
		}
		pend := u.robustPend
		if len(pend) == 0 {
			settle()
			return nil
		}
		u.core.OverheadCycles(u.costsWaitFor(pend))
		limit := minDL - u.core.Now()
		if limit < 1 {
			limit = 1
		}
		idx, v, ok := u.core.WaitFlagsMatch(u.robustOffs, limit, match)
		if ok {
			pend[idx].advance(v)
			continue
		}
		now := u.core.Now()
		if firstTimeout < 0 {
			firstTimeout = now
		}
		for _, r := range pend {
			if !r.done && now >= r.deadline {
				if err := r.onTimeout(); err != nil {
					settle()
					return err
				}
			}
		}
	}
}

// costsWaitFor charges one wait-round's software cost (the maximum of the
// pending ops' Wait costs; they are identical in practice).
func (u *UE) costsWaitFor(pend []*robustOp) int64 {
	var c int64
	for _, r := range pend {
		if r.costs.Wait > c {
			c = r.costs.Wait
		}
	}
	return c
}

// SendRobust transmits nBytes to dest with the hardened protocol. costs
// selects the software-overhead profile of the hosting library (blocking,
// iRCCE or lightweight).
func (u *UE) SendRobust(costs NBCosts, pol Policy, dest int, addr scc.Addr, nBytes int) error {
	pol = pol.withDefaults()
	u.core.OverheadCycles(costs.Post)
	u.chargePartialLine(nBytes)
	u.opsBuf[0] = u.initRobustOp(&u.opSend, ReqSend, costs, pol, dest, addr, nBytes)
	return u.runRobust(u.opsBuf[:1])
}

// RecvRobust receives nBytes from src with the hardened protocol.
func (u *UE) RecvRobust(costs NBCosts, pol Policy, src int, addr scc.Addr, nBytes int) error {
	pol = pol.withDefaults()
	u.core.OverheadCycles(costs.Post)
	u.chargePartialLine(nBytes)
	u.opsBuf[0] = u.initRobustOp(&u.opRecv, ReqRecv, costs, pol, src, addr, nBytes)
	return u.runRobust(u.opsBuf[:1])
}

// ExchangeRobust runs a hardened send to dest and receive from src
// concurrently (full duplex): both state machines share one bounded
// multi-flag wait, so symmetric exchanges need no odd/even ordering.
func (u *UE) ExchangeRobust(costs NBCosts, pol Policy, dest int, sAddr scc.Addr, sBytes int, src int, rAddr scc.Addr, rBytes int) error {
	pol = pol.withDefaults()
	u.core.OverheadCycles(2 * costs.Post)
	u.chargePartialLine(sBytes)
	u.chargePartialLine(rBytes)
	u.opsBuf[0] = u.initRobustOp(&u.opSend, ReqSend, costs, pol, dest, sAddr, sBytes)
	u.opsBuf[1] = u.initRobustOp(&u.opRecv, ReqRecv, costs, pol, src, rAddr, rBytes)
	return u.runRobust(u.opsBuf[:2])
}

// BarrierGroup synchronizes the given members (sorted core IDs, which
// must include this UE): members report arrival to the first member with
// a generation-valued flag and wait for its release. Distinct flag roles
// and generation counters keep group barriers independent of the
// full-chip Barrier.
func (u *UE) BarrierGroup(members []int) {
	_ = u.barrierGroup(members, nil) // cannot fail with unbounded waits
}

// BarrierGroupRobust is BarrierGroup with bounded waits: members re-raise
// their arrival flag on timeout (recovering a lost arrive write) and give
// up with ErrUnreachable once the retry budget is spent.
func (u *UE) BarrierGroupRobust(members []int, pol Policy) error {
	pol = pol.withDefaults()
	return u.barrierGroup(members, &pol)
}

func (u *UE) barrierGroup(members []int, pol *Policy) error {
	if len(members) == 0 {
		panic("rcce: BarrierGroup with no members")
	}
	m := u.core.Chip().Model
	u.chargeCall(m.OverheadBlockingCall)
	if len(members) == 1 {
		return nil
	}
	root := members[0]
	gen := u.groupGen.get(root)
	gen++
	if gen == 0 {
		gen = 1
	}
	u.groupGen.set(root, gen)
	isGen := func(v byte) bool { return v == gen }

	boundedWait := func(peer, off int, onRetry func()) error {
		if pol == nil {
			u.core.WaitFlag(off, gen)
			u.notifyPeer(peer, true)
			return nil
		}
		window := pol.Timeout
		for try := 0; ; try++ {
			if _, ok := u.core.WaitFlagMatch(off, window+pol.JitterOf(window, u.ID(), peer, gen, try), isGen); ok {
				u.notifyPeer(peer, true)
				return nil
			}
			u.core.OverheadCycles(m.OverheadTimeoutCheck)
			u.stats.Timeouts++
			if try >= pol.MaxRetries {
				u.notifyPeer(peer, false)
				return fmt.Errorf("%w: group barrier (root %02d, gen %d)", ErrUnreachable, root, gen)
			}
			if onRetry != nil {
				onRetry()
			}
			window *= simtime.Duration(pol.Backoff)
		}
	}

	if u.ID() == root {
		for _, p := range members[1:] {
			if err := boundedWait(p, u.comm.FlagAddr(root, p, FlagGroupArrive), nil); err != nil {
				return err
			}
		}
		for _, p := range members[1:] {
			u.core.SetFlag(u.comm.FlagAddr(p, root, FlagGroupRelease), gen)
		}
		u.core.Note(simtime.Note1("group barrier gen %d released", int64(gen)))
		return nil
	}
	arrive := u.comm.FlagAddr(root, u.ID(), FlagGroupArrive)
	u.core.SetFlag(arrive, gen)
	err := boundedWait(root, u.comm.FlagAddr(u.ID(), root, FlagGroupRelease), func() {
		u.core.SetFlag(arrive, gen) // our arrival may have been lost
		u.stats.Retransmits++
	})
	if err == nil {
		u.core.Note(simtime.Note1("group barrier gen %d passed", int64(gen)))
	}
	return err
}
