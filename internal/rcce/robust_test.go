package rcce

import (
	"errors"
	"testing"

	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// dropHook is a minimal scc.FaultHook for protocol tests: it drops the
// first nDropFlag flag writes by a given core at or after a trigger time,
// and corrupts the first nCorrupt bulk writes.
type dropHook struct {
	core      int
	after     simtime.Time
	skipFlag  int // let this many matching flag writes through first
	nDropFlag int
	nCorrupt  int
}

func (h *dropHook) StallCore(core int, now simtime.Time) simtime.Duration { return 0 }
func (h *dropHook) CoreDead(core int, now simtime.Time) bool              { return false }

func (h *dropHook) DropFlagWrite(writer, off int, now simtime.Time) bool {
	if writer != h.core || now < h.after || h.nDropFlag <= 0 {
		return false
	}
	if h.skipFlag > 0 {
		h.skipFlag--
		return false
	}
	h.nDropFlag--
	return true
}

func (h *dropHook) FilterMPBWrite(writer, off int, data []byte, now simtime.Time) bool {
	if writer == h.core && now >= h.after && h.nCorrupt > 0 {
		h.nCorrupt--
		for i := range data {
			data[i] ^= 0xA5
		}
	}
	return false
}

// fill writes a recognizable pattern of n float64s.
func fill(core *scc.Core, a scc.Addr, n int, scale float64) {
	v := make([]float64, n)
	for i := range v {
		v[i] = scale + float64(i)
	}
	core.WriteF64s(a, v)
}

func checkVals(t *testing.T, core *scc.Core, a scc.Addr, n int, scale float64) {
	t.Helper()
	got := make([]float64, n)
	core.ReadF64s(a, got)
	for i, v := range got {
		if v != scale+float64(i) {
			t.Fatalf("value[%d] = %v, want %v", i, v, scale+float64(i))
		}
	}
}

func runRobustPair(t *testing.T, hook scc.FaultHook, n int) (simtime.Time, RecoveryStats) {
	t.Helper()
	chip := scc.New(timing.Default())
	chip.Fault = hook
	comm := NewComm(chip)
	costs := NBCosts{Post: 500, Wait: 400, Progress: 300}
	pol := Policy{Timeout: simtime.Microseconds(200), Backoff: 2, MaxRetries: 8}
	var stats RecoveryStats
	chip.LaunchOne(0, func(core *scc.Core) {
		u := comm.UE(0)
		a := core.AllocF64(n)
		fill(core, a, n, 1000)
		if err := u.SendRobust(costs, pol, 1, a, 8*n); err != nil {
			t.Errorf("SendRobust: %v", err)
		}
		stats.Add(u.Recovery())
	})
	chip.LaunchOne(1, func(core *scc.Core) {
		u := comm.UE(1)
		a := core.AllocF64(n)
		if err := u.RecvRobust(costs, pol, 0, a, 8*n); err != nil {
			t.Errorf("RecvRobust: %v", err)
		}
		checkVals(t, core, a, n, 1000)
		stats.Add(u.Recovery())
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return chip.Now(), stats
}

func TestRobustSendRecvFaultFree(t *testing.T) {
	_, stats := runRobustPair(t, nil, 1000) // multi-chunk: 8000 B > 6528 B region
	if stats.Retransmits != 0 || stats.Nacks != 0 {
		t.Fatalf("fault-free run did defensive work: %+v", stats)
	}
}

func TestRobustRecoversLostFlagWrite(t *testing.T) {
	// Drop one flag write by the sender early on: the sent announcement
	// vanishes and the timeout/retransmit path must recover it.
	end, stats := runRobustPair(t, &dropHook{core: 0, nDropFlag: 1}, 64)
	if stats.Timeouts == 0 || stats.Retransmits == 0 {
		t.Fatalf("expected timeout+retransmit recovery, got %+v", stats)
	}
	if stats.Recovery <= 0 {
		t.Fatalf("recovery latency not measured: %+v", stats)
	}
	// Determinism: same fault, same latency.
	end2, stats2 := runRobustPair(t, &dropHook{core: 0, nDropFlag: 1}, 64)
	if end != end2 || stats != stats2 {
		t.Fatalf("recovery not deterministic: %v/%+v vs %v/%+v", end, stats, end2, stats2)
	}
}

func TestRobustRecoversLostAck(t *testing.T) {
	// Drop the receiver's ACK write (its second flag write; the first is
	// the local clear of the sent flag): the sender must recover via the
	// progress byte or a duplicate retransmission.
	_, stats := runRobustPair(t, &dropHook{core: 1, skipFlag: 1, nDropFlag: 1}, 64)
	if stats.Timeouts == 0 {
		t.Fatalf("expected a timeout, got %+v", stats)
	}
	if stats.LostAcks == 0 && stats.DupAcks == 0 {
		t.Fatalf("expected lost-ACK recovery, got %+v", stats)
	}
}

func TestRobustDetectsCorruption(t *testing.T) {
	// Corrupt the sender's first bulk MPB write (the data chunk): the
	// checksum must catch it and a NACK must trigger retransmission.
	_, stats := runRobustPair(t, &dropHook{core: 0, nCorrupt: 1}, 64)
	if stats.Nacks == 0 {
		t.Fatalf("corruption not NACKed: %+v", stats)
	}
	if stats.Retransmits == 0 {
		t.Fatalf("corrupt chunk not retransmitted: %+v", stats)
	}
}

func TestRobustExchangeFullDuplex(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := NewComm(chip)
	costs := NBCosts{Post: 500, Wait: 400, Progress: 300}
	pol := DefaultPolicy()
	const n = 256
	for id := 0; id < 2; id++ {
		id := id
		chip.LaunchOne(id, func(core *scc.Core) {
			u := comm.UE(id)
			src := core.AllocF64(n)
			dst := core.AllocF64(n)
			fill(core, src, n, float64(100*(id+1)))
			peer := 1 - id
			// Both cores send first (no odd/even ordering): full duplex
			// must not deadlock.
			if err := u.ExchangeRobust(costs, pol, peer, src, 8*n, peer, dst, 8*n); err != nil {
				t.Errorf("ExchangeRobust: %v", err)
			}
			checkVals(t, core, dst, n, float64(100*(peer+1)))
		})
	}
	if err := chip.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRobustUnreachablePeer(t *testing.T) {
	// Nobody ever receives: the sender must give up with ErrUnreachable
	// instead of hanging, and the engine must not report a deadlock.
	chip := scc.New(timing.Default())
	comm := NewComm(chip)
	pol := Policy{Timeout: simtime.Microseconds(50), Backoff: 2, MaxRetries: 3}
	var sendErr error
	chip.LaunchOne(0, func(core *scc.Core) {
		u := comm.UE(0)
		a := core.AllocF64(8)
		sendErr = u.SendRobust(NBCosts{Post: 500, Wait: 400}, pol, 1, a, 64)
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(sendErr, ErrUnreachable) {
		t.Fatalf("sendErr = %v, want ErrUnreachable", sendErr)
	}
}

func TestBarrierGroup(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := NewComm(chip)
	members := []int{1, 3, 5, 7}
	reached := make([]simtime.Time, 8)
	for _, id := range members {
		id := id
		chip.LaunchOne(id, func(core *scc.Core) {
			u := comm.UE(id)
			if id == 3 {
				core.Compute(simtime.Microseconds(500)) // straggler
			}
			u.BarrierGroup(members)
			reached[id] = core.Now()
		})
	}
	if err := chip.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, id := range members {
		if reached[id] < simtime.Time(simtime.Microseconds(500)) {
			t.Fatalf("core %d passed the barrier at %v, before the straggler", id, reached[id])
		}
	}
}
