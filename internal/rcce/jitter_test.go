package rcce

import (
	"testing"

	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// TestJitterOfPureAndBounded pins the contract the self-healing runtime
// relies on: JitterOf is a pure function of its arguments (no clocks, no
// global state), bounded by window*Jitter/16, zero when disabled, and
// actually spreads distinct pairings apart.
func TestJitterOfPureAndBounded(t *testing.T) {
	pol := Policy{Timeout: simtime.Microseconds(300), Backoff: 2, MaxRetries: 5, Jitter: 4}
	window := simtime.Microseconds(600)
	max := window * simtime.Duration(pol.Jitter) / 16

	distinct := map[simtime.Duration]bool{}
	for self := 0; self < 4; self++ {
		for peer := 0; peer < 4; peer++ {
			for seq := byte(1); seq < 4; seq++ {
				for try := 0; try < 4; try++ {
					j := pol.JitterOf(window, self, peer, seq, try)
					if j != pol.JitterOf(window, self, peer, seq, try) {
						t.Fatalf("JitterOf not pure for (%d,%d,%d,%d)", self, peer, seq, try)
					}
					if j < 0 || j > max {
						t.Fatalf("JitterOf(%d,%d,%d,%d) = %v outside [0,%v]", self, peer, seq, try, j, max)
					}
					distinct[j] = true
				}
			}
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("jitter produced a single value across all pairings; it spreads nothing")
	}

	pol.Jitter = 0
	if j := pol.JitterOf(window, 1, 2, 3, 4); j != 0 {
		t.Fatalf("Jitter=0 must disable the stretch, got %v", j)
	}
}

// jitteredGiveUpTime runs one send toward a peer that never answers
// under a jittered policy and returns the virtual time at which the
// retry budget gave up.
func jitteredGiveUpTime(t *testing.T, jitter int) simtime.Time {
	t.Helper()
	chip := scc.New(timing.Default())
	comm := NewComm(chip)
	pol := Policy{Timeout: simtime.Microseconds(50), Backoff: 2, MaxRetries: 4, Jitter: jitter}
	var end simtime.Time
	chip.LaunchOne(0, func(core *scc.Core) {
		u := comm.UE(0)
		a := core.AllocF64(8)
		if err := u.SendRobust(NBCosts{Post: 500, Wait: 400}, pol, 1, a, 64); err == nil {
			t.Error("send toward a silent peer unexpectedly succeeded")
		}
		end = core.Now()
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return end
}

// TestJitterDeterministicRegression is the determinism regression for
// the jittered backoff path: identical runs give bit-identical give-up
// times, and enabling jitter genuinely stretches the budget relative to
// the unjittered baseline (proving the stretch is wired into the
// transport, not just computed).
func TestJitterDeterministicRegression(t *testing.T) {
	base := jitteredGiveUpTime(t, 0)
	j1 := jitteredGiveUpTime(t, 4)
	j2 := jitteredGiveUpTime(t, 4)
	if j1 != j2 {
		t.Fatalf("same-seed jittered runs differ: %d vs %d ticks", j1, j2)
	}
	if j1 < base {
		t.Fatalf("jittered budget (%d) shorter than unjittered (%d)", j1, base)
	}
	if j1 == base {
		t.Fatalf("jitter had no effect on the retry schedule (both gave up at %d)", j1)
	}
}
