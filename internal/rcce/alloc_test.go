package rcce_test

import (
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

// Steady-state allocation budgets for the blocking point-to-point path:
// after the per-UE staging arena warms up on the first message, Send and
// Recv must not allocate per message or per chunk. Per-message cost is
// the slope between a short and a long run (construction cancels).

func runSendRecv(msgs, nBytes int) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.LaunchOne(0, func(c *scc.Core) {
		addr := c.Alloc(nBytes)
		ue := comm.UE(0)
		for i := 0; i < msgs; i++ {
			ue.Send(1, addr, nBytes)
		}
	})
	chip.LaunchOne(1, func(c *scc.Core) {
		addr := c.Alloc(nBytes)
		ue := comm.UE(1)
		for i := 0; i < msgs; i++ {
			ue.Recv(0, addr, nBytes)
		}
	})
	if err := chip.Run(); err != nil {
		panic(err)
	}
}

func perMessage(t *testing.T, nBytes, lo, hi int) float64 {
	t.Helper()
	a := testing.AllocsPerRun(3, func() { runSendRecv(lo, nBytes) })
	b := testing.AllocsPerRun(3, func() { runSendRecv(hi, nBytes) })
	return (b - a) / float64(hi-lo)
}

func TestSendRecvSmallAllocFree(t *testing.T) {
	got := perMessage(t, 32, 10, 110)
	if got > 0.05 {
		t.Fatalf("32 B Send/Recv allocates %.3f objects per message; budget 0.05", got)
	}
}

func TestSendRecvLargeAllocFree(t *testing.T) {
	// 8 KB spans many MPB chunks: the per-chunk loop must reuse the
	// staging arena, not allocate per chunk.
	got := perMessage(t, 8192, 5, 55)
	if got > 0.05 {
		t.Fatalf("8 KB Send/Recv allocates %.3f objects per message; budget 0.05", got)
	}
}
