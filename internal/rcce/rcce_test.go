package rcce

import (
	"math/rand"
	"testing"

	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

func newChip() *scc.Chip { return scc.New(timing.Default()) }

func TestLayoutConstants(t *testing.T) {
	chip := newChip()
	c := NewComm(chip)
	if c.NumUEs() != 48 {
		t.Fatalf("NumUEs = %d", c.NumUEs())
	}
	// 48 pair-flag lines + 4 user-flag lines of 32 B leave
	// 8192-1664 = 6528 B of chunk space.
	if got := c.DataBytes(); got != 6528 {
		t.Fatalf("DataBytes = %d, want 6528", got)
	}
	// Flag lines precede the data region and are owned correctly.
	for owner := 0; owner < 48; owner += 13 {
		for writer := 0; writer < 48; writer += 11 {
			a := c.FlagAddr(owner, writer, flagSent)
			if chip.MPBOwner(a) != owner {
				t.Fatalf("flag (%d,%d) lands in core %d's MPB", owner, writer, chip.MPBOwner(a))
			}
			if a >= c.DataBase(owner) {
				t.Fatalf("flag (%d,%d) overlaps data region", owner, writer)
			}
		}
	}
}

func TestBlockingSendRecvDeliversPayload(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	rng := rand.New(rand.NewSource(9))
	payload := make([]float64, 123)
	for i := range payload {
		payload[i] = rng.NormFloat64()
	}
	var got []float64
	chip.LaunchOne(7, func(core *scc.Core) {
		ue := comm.UE(7)
		a := core.AllocF64(len(payload))
		core.WriteF64s(a, payload)
		ue.SendF64s(31, a, len(payload))
	})
	chip.LaunchOne(31, func(core *scc.Core) {
		ue := comm.UE(31)
		a := core.AllocF64(len(payload))
		ue.RecvF64s(7, a, len(payload))
		got = make([]float64, len(payload))
		core.ReadF64s(a, got)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestBlockingSendChunksLargeMessages(t *testing.T) {
	// 3000 doubles = 24000 bytes >> 6528-byte chunk region: must arrive
	// intact through multiple handshakes.
	chip := newChip()
	comm := NewComm(chip)
	n := 3000
	payload := make([]float64, n)
	for i := range payload {
		payload[i] = float64(i) * 1.5
	}
	var got []float64
	chip.LaunchOne(0, func(core *scc.Core) {
		ue := comm.UE(0)
		a := core.AllocF64(n)
		core.WriteF64s(a, payload)
		ue.SendF64s(1, a, n)
	})
	chip.LaunchOne(1, func(core *scc.Core) {
		ue := comm.UE(1)
		a := core.AllocF64(n)
		ue.RecvF64s(0, a, n)
		got = make([]float64, n)
		core.ReadF64s(a, got)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("chunked payload corrupted at %d: %v != %v", i, got[i], payload[i])
		}
	}
}

func TestBlockingSendWaitsForReceiver(t *testing.T) {
	// Sender must not return before the receiver picked the data up
	// (Fig. 3: "the sender waits until the receiver has picked up the
	// data").
	chip := newChip()
	comm := NewComm(chip)
	delay := simtime.Microseconds(300)
	var sendDone simtime.Time
	chip.LaunchOne(0, func(core *scc.Core) {
		ue := comm.UE(0)
		a := core.AllocF64(4)
		ue.SendF64s(1, a, 4)
		sendDone = core.Now()
	})
	chip.LaunchOne(1, func(core *scc.Core) {
		ue := comm.UE(1)
		core.Compute(delay) // receiver is late
		a := core.AllocF64(4)
		ue.RecvF64s(0, a, 4)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone < delay {
		t.Fatalf("send returned at %v, before the receiver even posted (%v)", sendDone, delay)
	}
}

func TestBarrierSynchronizesAllCores(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	arrive := make([]simtime.Time, 48)
	depart := make([]simtime.Time, 48)
	chip.Launch(func(core *scc.Core) {
		ue := comm.UE(core.ID)
		// Stagger arrivals.
		core.Compute(simtime.Microseconds(int64(core.ID * 10)))
		arrive[core.ID] = core.Now()
		ue.Barrier()
		depart[core.ID] = core.Now()
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	var maxArrive simtime.Time
	for _, a := range arrive {
		if a > maxArrive {
			maxArrive = a
		}
	}
	for id, d := range depart {
		if d < maxArrive {
			t.Fatalf("core %d left the barrier at %v before the last arrival %v", id, d, maxArrive)
		}
	}
}

func TestBarrierIsReusable(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	rounds := 0
	chip.Launch(func(core *scc.Core) {
		ue := comm.UE(core.ID)
		for r := 0; r < 5; r++ {
			ue.Barrier()
		}
		if core.ID == 0 {
			rounds = 5
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != 5 {
		t.Fatal("barrier rounds did not complete")
	}
}

func TestNativeBcastDelivers(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	n := 40
	results := make([][]float64, 48)
	chip.Launch(func(core *scc.Core) {
		ue := comm.UE(core.ID)
		a := core.AllocF64(n)
		if core.ID == 3 {
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(i) + 0.5
			}
			core.WriteF64s(a, v)
		}
		ue.NativeBcast(3, a, n)
		got := make([]float64, n)
		core.ReadF64s(a, got)
		results[core.ID] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for id, got := range results {
		for i := range got {
			if got[i] != float64(i)+0.5 {
				t.Fatalf("core %d element %d = %v", id, i, got[i])
			}
		}
	}
}

func TestNativeReduceSumsAllCores(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	n := 20
	var got []float64
	chip.Launch(func(core *scc.Core) {
		ue := comm.UE(core.ID)
		src := core.AllocF64(n)
		dst := core.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(core.ID) + float64(i)*0.01
		}
		core.WriteF64s(src, v)
		ue.NativeReduce(0, src, dst, n, func(a, b float64) float64 { return a + b })
		if core.ID == 0 {
			got = make([]float64, n)
			core.ReadF64s(dst, got)
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	// sum over cores of (id + i*0.01) = sum(ids) + 48*i*0.01
	sumIDs := float64(47 * 48 / 2)
	for i := range got {
		want := sumIDs + 48*float64(i)*0.01
		if diff := got[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("reduce element %d = %v, want %v", i, got[i], want)
		}
	}
}

func TestNonBlockingRingNoOddEvenNeeded(t *testing.T) {
	// Every core posts isend+irecv in the same (send-first) order around
	// a ring. With blocking primitives this deadlocks; with non-blocking
	// ones it must complete (Sec. IV-A).
	chip := newChip()
	comm := NewComm(chip)
	costs := NBCosts{Post: 100, Wait: 100, Progress: 25}
	n := 50
	ok := make([]bool, 48)
	chip.Launch(func(core *scc.Core) {
		ue := comm.UE(core.ID)
		p := ue.NumUEs()
		right := (core.ID + 1) % p
		left := (core.ID + p - 1) % p
		src := core.AllocF64(n)
		dst := core.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(core.ID)*1000 + float64(i)
		}
		core.WriteF64s(src, v)
		s := ue.PostSend(costs, right, src, 8*n)
		r := ue.PostRecv(costs, left, dst, 8*n)
		ue.WaitAll(costs, s, r)
		got := make([]float64, n)
		core.ReadF64s(dst, got)
		good := true
		for i := range got {
			if got[i] != float64(left)*1000+float64(i) {
				good = false
			}
		}
		ok[core.ID] = good
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for id, good := range ok {
		if !good {
			t.Fatalf("core %d received wrong ring payload", id)
		}
	}
}

func TestNonBlockingChunkedMessage(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	costs := NBCosts{Post: 100, Wait: 100, Progress: 25}
	n := 2000 // 16000 bytes: 3 chunks
	var got []float64
	chip.LaunchOne(5, func(core *scc.Core) {
		ue := comm.UE(5)
		a := core.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i) * 0.25
		}
		core.WriteF64s(a, v)
		s := ue.PostSend(costs, 6, a, 8*n)
		ue.Wait(costs, s)
	})
	chip.LaunchOne(6, func(core *scc.Core) {
		ue := comm.UE(6)
		a := core.AllocF64(n)
		r := ue.PostRecv(costs, 5, a, 8*n)
		ue.Wait(costs, r)
		got = make([]float64, n)
		core.ReadF64s(a, got)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != float64(i)*0.25 {
			t.Fatalf("chunked NB payload corrupted at %d", i)
		}
	}
}

func TestSecondPostSendDrainsFirst(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	costs := NBCosts{Post: 100, Wait: 100, Progress: 25}
	var got1, got2 []float64
	chip.LaunchOne(0, func(core *scc.Core) {
		ue := comm.UE(0)
		a := core.AllocF64(8)
		b := core.AllocF64(8)
		core.WriteF64s(a, []float64{1, 1, 1, 1, 1, 1, 1, 1})
		core.WriteF64s(b, []float64{2, 2, 2, 2, 2, 2, 2, 2})
		s1 := ue.PostSend(costs, 1, a, 64)
		s2 := ue.PostSend(costs, 1, b, 64) // must drain s1 first
		ue.WaitAll(costs, s1, s2)
	})
	chip.LaunchOne(1, func(core *scc.Core) {
		ue := comm.UE(1)
		a := core.AllocF64(8)
		b := core.AllocF64(8)
		r1 := ue.PostRecv(costs, 0, a, 64)
		ue.Wait(costs, r1)
		r2 := ue.PostRecv(costs, 0, b, 64)
		ue.Wait(costs, r2)
		got1 = make([]float64, 8)
		got2 = make([]float64, 8)
		core.ReadF64s(a, got1)
		core.ReadF64s(b, got2)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got1[i] != 1 || got2[i] != 2 {
			t.Fatalf("ordered sends arrived wrong: %v / %v", got1, got2)
		}
	}
}

func TestPartialLineMessageCostsMore(t *testing.T) {
	// A 5-double (40 B) message needs 2 lines and the extra padding
	// call; an 8-double (64 B) message needs 2 lines and no extra call,
	// so the 5-double send/recv pair must be at least as expensive.
	lat := func(n int) simtime.Time {
		chip := newChip()
		comm := NewComm(chip)
		chip.LaunchOne(0, func(core *scc.Core) {
			ue := comm.UE(0)
			a := core.AllocF64(n)
			ue.SendF64s(1, a, n)
		})
		chip.LaunchOne(1, func(core *scc.Core) {
			ue := comm.UE(1)
			a := core.AllocF64(n)
			ue.RecvF64s(0, a, n)
		})
		if err := chip.Run(); err != nil {
			t.Fatal(err)
		}
		return chip.Now()
	}
	l5, l8 := lat(5), lat(8)
	if l5 <= l8 {
		t.Fatalf("partial-line message (%v) should cost more than full-line (%v)", l5, l8)
	}
}

func TestSendToSelfPanics(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	chip.LaunchOne(0, func(core *scc.Core) {
		ue := comm.UE(0)
		a := core.AllocF64(1)
		ue.SendF64s(0, a, 1)
	})
	if err := chip.Run(); err == nil {
		t.Fatal("self-send should fail the simulation")
	}
}
