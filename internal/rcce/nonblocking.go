package rcce

import (
	"fmt"

	"scc/internal/metrics"
	"scc/internal/scc"
)

// This file implements the shared non-blocking request engine. Both the
// iRCCE library (package ircce) and the paper's lightweight primitives
// (package lwnb) drive the same wire protocol - the difference the paper
// measures is purely the per-call software overhead (request lists and
// dynamic memory in iRCCE versus fixed slots in the lightweight library,
// Sec. IV-B) - so the protocol lives here once and the two packages
// instantiate it with their own NBCosts.

// NBCosts parameterizes the software overhead of a non-blocking
// primitive implementation, in core cycles.
type NBCosts struct {
	// Post is charged by each isend/irecv invocation.
	Post int64
	// Wait is charged per request completion inside wait/waitall.
	Wait int64
	// Progress is charged per progress probe of a pending request
	// (testing flags, advancing the chunk state machine).
	Progress int64
}

// ReqKind distinguishes send and receive requests.
type ReqKind int

// Request kinds.
const (
	ReqSend ReqKind = iota
	ReqRecv
)

func (k ReqKind) String() string {
	if k == ReqSend {
		return "send"
	}
	return "recv"
}

// Request is a pending non-blocking operation. Its state machine mirrors
// the chunked two-flag protocol of the blocking primitives, but posting
// returns as soon as the first local action is done, so a core can have
// a send and a receive in flight at once and overlap their copies
// (Fig. 5).
type Request struct {
	kind ReqKind
	ue   *UE
	peer int
	addr scc.Addr
	n    int // total bytes

	off  int // bytes fully handed over
	done bool

	// staged reports, for sends, that the current chunk has been copied
	// into the local MPB and announced via the sent flag.
	staged int // bytes staged for the current chunk (send only)
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// Started reports whether the request has made wire-level progress
// (consumed or announced at least one chunk). Unstarted receives can
// still be cancelled.
func (r *Request) Started() bool { return r.off > 0 || r.staged > 0 }

// Abort marks an unstarted receive as completed without transferring
// data. Callers (iRCCE's Cancel) must check Started first; aborting a
// request whose peer already staged data would strand the sender, so
// Abort panics on sends and on started requests.
func (r *Request) Abort() {
	if r.kind == ReqSend || r.Started() {
		panic("rcce: aborting a request that has wire-level state")
	}
	r.done = true
}

// Kind returns the request kind.
func (r *Request) Kind() ReqKind { return r.kind }

// Peer returns the remote UE id.
func (r *Request) Peer() int { return r.peer }

// PostSend begins a non-blocking send: it stages the first chunk into the
// local MPB, raises the sent flag and returns without waiting for the
// receiver. Completion (the ready flag, plus any further chunks) happens
// in Wait/WaitAll.
func (u *UE) PostSend(costs NBCosts, dest int, addr scc.Addr, nBytes int) *Request {
	return u.PostSendInto(new(Request), costs, dest, addr, nBytes)
}

// PostSendInto is PostSend with caller-owned request storage: r is
// overwritten and returned, so fixed-slot libraries (package lwnb)
// repost into the same record without allocating. The previous contents
// of r must not be an in-flight request.
func (u *UE) PostSendInto(r *Request, costs NBCosts, dest int, addr scc.Addr, nBytes int) *Request {
	if dest == u.ID() {
		panic(fmt.Sprintf("rcce: UE %d isend to itself", dest))
	}
	// The chunk staging area is a single region per core, so only one
	// send can be on the wire. A second post drains the first (iRCCE
	// would queue it; the wire-level serialization is the same).
	if u.activeSend != nil && !u.activeSend.done {
		if reg := u.core.Metrics(); reg != nil {
			reg.Count(u.core.ID, metrics.CtrSlotDrains)
		}
		u.WaitAll(costs, u.activeSend)
	}
	u.core.OverheadCycles(costs.Post)
	u.chargePartialLine(nBytes)
	if reg := u.core.Metrics(); reg != nil {
		reg.Count(u.core.ID, metrics.CtrReqsPosted)
	}
	*r = Request{kind: ReqSend, ue: u, peer: dest, addr: addr, n: nBytes}
	r.stageChunk()
	u.activeSend = r
	return r
}

// PostRecv begins a non-blocking receive. If the sender's chunk is
// already staged, the data is consumed immediately (and the request may
// complete on the spot); otherwise completion happens in Wait/WaitAll.
func (u *UE) PostRecv(costs NBCosts, src int, addr scc.Addr, nBytes int) *Request {
	return u.PostRecvInto(new(Request), costs, src, addr, nBytes)
}

// PostRecvInto is PostRecv with caller-owned request storage (see
// PostSendInto).
func (u *UE) PostRecvInto(r *Request, costs NBCosts, src int, addr scc.Addr, nBytes int) *Request {
	if src == u.ID() {
		panic(fmt.Sprintf("rcce: UE %d irecv from itself", src))
	}
	u.core.OverheadCycles(costs.Post)
	u.chargePartialLine(nBytes)
	if reg := u.core.Metrics(); reg != nil {
		reg.Count(u.core.ID, metrics.CtrReqsPosted)
	}
	*r = Request{kind: ReqRecv, ue: u, peer: src, addr: addr, n: nBytes}
	// Opportunistic probe, like iRCCE_irecv's immediate push.
	r.tryProgress(costs)
	return r
}

// stageChunk copies the next chunk of a send into the local MPB and
// raises the sent flag.
func (r *Request) stageChunk() {
	u := r.ue
	chunk := u.comm.DataBytes()
	n := min(chunk, r.n-r.off)
	u.Put(r.addr+scc.Addr(r.off), u.comm.DataBase(u.ID()), n)
	u.core.SetFlag(u.comm.FlagAddr(r.peer, u.ID(), flagSent), 1)
	r.staged = n
}

// pendingFlag returns the MPB flag offset whose value 1 unblocks the
// request's next transition.
func (r *Request) pendingFlag() int {
	u := r.ue
	if r.kind == ReqSend {
		return u.comm.FlagAddr(u.ID(), r.peer, flagReady)
	}
	return u.comm.FlagAddr(u.ID(), r.peer, flagSent)
}

// TryProgress advances the request as far as possible without blocking
// (the Test operation). It returns true if any transition fired.
func (r *Request) TryProgress(costs NBCosts) bool { return r.tryProgress(costs) }

// tryProgress advances the request as far as possible without blocking.
// It returns true if any transition fired.
func (r *Request) tryProgress(costs NBCosts) bool {
	if r.done {
		return false
	}
	u := r.ue
	u.core.OverheadCycles(costs.Progress)
	advanced := false
	for !r.done {
		flag := r.pendingFlag()
		// One probe read; charged like any MPB access (local line).
		if u.core.ProbeFlag(flag) != 1 {
			break
		}
		advanced = true
		u.core.SetFlag(flag, 0) // consume the flag (local line write)
		if r.kind == ReqSend {
			// Receiver consumed the staged chunk.
			r.off += r.staged
			r.staged = 0
			if r.off >= r.n {
				r.done = true
				break
			}
			r.stageChunk()
		} else {
			chunk := u.comm.DataBytes()
			n := min(chunk, r.n-r.off)
			u.Get(u.comm.DataBase(r.peer), r.addr+scc.Addr(r.off), n)
			u.core.SetFlag(u.comm.FlagAddr(r.peer, u.ID(), flagReady), 1)
			r.off += n
			if r.off >= r.n {
				r.done = true
			}
		}
	}
	return advanced
}

// Wait blocks until the request completes, making progress on its state
// machine as flags arrive.
func (u *UE) Wait(costs NBCosts, r *Request) {
	u.WaitAll(costs, r)
}

// WaitAll blocks until every request completes. Progress is made on
// whichever request's flag fires first (via a multi-flag wait), so
// cyclic communication patterns cannot deadlock regardless of posting
// order - the property Sec. IV-A relies on.
func (u *UE) WaitAll(costs NBCosts, reqs ...*Request) {
	for _, r := range reqs {
		if r != nil && r.ue != u {
			panic("rcce: WaitAll on a foreign UE's request")
		}
	}
	// The round scratch lives on the UE: WaitAll cannot nest within one
	// UE (the PostSendInto drain happens before any wait), so reuse is
	// safe and the steady state allocates nothing.
	for {
		flags := u.waitFlags[:0]
		pending := u.waitPend[:0]
		for _, r := range reqs {
			if r == nil || r.done {
				continue
			}
			flags = append(flags, r.pendingFlag())
			pending = append(pending, r)
		}
		u.waitFlags, u.waitPend = flags, pending
		if len(pending) == 0 {
			break
		}
		u.core.OverheadCycles(costs.Wait)
		if reg := u.core.Metrics(); reg != nil {
			reg.Count(u.core.ID, metrics.CtrReqWaitRounds)
		}
		idx := u.core.WaitFlagAny(flags, 1)
		pending[idx].tryProgress(costs)
		// Opportunistically push the others, too (their flags may have
		// fired while we were blocked).
		for i, r := range pending {
			if i != idx {
				r.tryProgress(costs)
			}
		}
	}
}
