package rcce

import "scc/internal/scc"

// Native RCCE collectives (Sec. III): the root communicates with the
// remaining cores serially, and for Reduce the root computes the entire
// reduction alone. They "do not scale well ... and suffer from both high
// latency and low efficiency" - reproduced here as the pre-optimization
// baseline referenced by the paper and its related work ([8], [9] report
// tree-based alternatives beating these by >20x for Broadcast).

// NativeBcast broadcasts n float64 values at addr from root to everyone,
// one serial blocking send per peer.
func (u *UE) NativeBcast(root int, addr scc.Addr, n int) {
	if u.ID() == root {
		for p := 0; p < u.NumUEs(); p++ {
			if p != root {
				u.SendF64s(p, addr, n)
			}
		}
		return
	}
	u.RecvF64s(root, addr, n)
}

// NativeReduce reduces n float64 values element-wise into the root: every
// peer sends its vector to the root serially and the root alone combines
// them. src and dst are private-memory addresses; dst is only meaningful
// on the root.
func (u *UE) NativeReduce(root int, src, dst scc.Addr, n int, op func(a, b float64) float64) {
	m := u.core.Chip().Model
	if u.ID() != root {
		u.SendF64s(root, src, n)
		return
	}
	acc := make([]float64, n)
	u.core.ReadF64s(src, acc)
	tmpAddr := u.core.AllocF64(n)
	tmp := make([]float64, n)
	for p := 0; p < u.NumUEs(); p++ {
		if p == root {
			continue
		}
		u.RecvF64s(p, tmpAddr, n)
		u.core.ReadF64s(tmpAddr, tmp)
		u.core.ComputeCycles(m.ReducePerElementCoreCycles * int64(n))
		for i := range acc {
			acc[i] = op(acc[i], tmp[i])
		}
	}
	u.core.WriteF64s(dst, acc)
}

// NativeAllreduce is RCCE's Reduce-then-Broadcast composition.
func (u *UE) NativeAllreduce(src, dst scc.Addr, n int, op func(a, b float64) float64) {
	const root = 0
	u.NativeReduce(root, src, dst, n, op)
	u.NativeBcast(root, dst, n)
}
