package rcce

// peerBytes is a sparse byte array indexed by peer core ID. The dense
// form it replaces — a make([]byte, NumUEs) per counter per UE — is
// invisible on the paper's 48-core chip but turns quadratic with the
// core count: 10,240 UEs each carrying four 10,240-entry counters is
// ~420 MB of zeroes for state that a real program touches only for its
// actual communication partners (a handful of tree neighbors, ring
// neighbors, or dissemination peers).
//
// Storage is paged: a small directory of fixed-size pages, both grown
// on first write. Reads of never-written peers return zero without
// allocating, matching the dense slice's initial state, and writing
// zero to an untracked peer stays allocation-free too (the value is
// already zero) — so epoch resets and cold reads cost nothing.
type peerBytes struct {
	pages [][]byte
}

// peerPage is the page granularity in peers. 64 covers every partner a
// logarithmic collective talks to with one or two pages.
const peerPage = 64

// get returns the counter for peer; untracked peers read as zero.
func (b *peerBytes) get(peer int) byte {
	pg := peer / peerPage
	if pg >= len(b.pages) || b.pages[pg] == nil {
		return 0
	}
	return b.pages[pg][peer%peerPage]
}

// set stores the counter for peer, allocating its page on first real
// (non-zero-into-empty) write.
func (b *peerBytes) set(peer int, v byte) {
	pg := peer / peerPage
	if pg >= len(b.pages) {
		if v == 0 {
			return
		}
		grown := make([][]byte, pg+1)
		copy(grown, b.pages)
		b.pages = grown
	}
	p := b.pages[pg]
	if p == nil {
		if v == 0 {
			return
		}
		p = make([]byte, peerPage)
		b.pages[pg] = p
	}
	p[peer%peerPage] = v
}

// reset returns every counter to zero by dropping the pages — the
// sparse equivalent of zeroing the dense slice.
func (b *peerBytes) reset() { b.pages = nil }
