package rcce

// RCCE's lock API over the SCC's per-core hardware test-and-set
// registers (the "gory" interface exposes them as RCCE_acquire_lock /
// RCCE_release_lock). Each core owns one register; any core may use any
// register, so they double as global mutexes.

// AcquireLock spins until the caller holds core target's test-and-set
// register.
func (u *UE) AcquireLock(target int) {
	m := u.core.Chip().Model
	u.chargeCall(m.OverheadBlockingCall / 4) // thin wrapper, no MPB work
	u.core.TASAcquire(target)
}

// ReleaseLock frees core target's register.
func (u *UE) ReleaseLock(target int) {
	m := u.core.Chip().Model
	u.chargeCall(m.OverheadBlockingCall / 4)
	u.core.TASRelease(target)
}

// TryLock performs one non-blocking probe of the register.
func (u *UE) TryLock(target int) bool {
	m := u.core.Chip().Model
	u.chargeCall(m.OverheadBlockingCall / 4)
	return u.core.TASTest(target)
}
