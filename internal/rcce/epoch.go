package rcce

// Epoch support for the self-healing runtime layered on top of the
// hardened protocol (see internal/core). A membership change bumps the
// communicator epoch on every surviving core; adopting an epoch must
// neutralize all protocol state a previous, possibly half-finished
// collective attempt left behind:
//
//   - Chunk checksums are salted with the epoch, so a stale chunk staged
//     under the old epoch fails verification and is NACKed into a fresh
//     retransmission instead of being consumed as data.
//   - The per-peer sequence counters restart, so both sides of every
//     pairing expect the same numbering.
//   - The data-protocol flag bytes this core owns are wiped, so a stale
//     ACK or progress byte cannot fake a completed handshake (the
//     lost-ACK probe would otherwise trust it).
//
// The flag roles of the agreement protocol itself (member/epoch
// arrive/release) are deliberately NOT wiped here: they are in use while
// the adoption runs, and their token disciplines make stale values
// harmless (see internal/core/selfheal.go).

// SetPeerObserver installs fn as the UE's per-peer outcome observer
// (nil uninstalls). The hardened protocol calls it with alive=false
// when a retry budget toward a peer is exhausted and with alive=true on
// every successfully completed chunk or barrier handshake with that
// peer. Observers must not advance virtual time: they are bookkeeping
// on the host side only.
func (u *UE) SetPeerObserver(fn func(peer int, alive bool)) { u.peerObs = fn }

func (u *UE) notifyPeer(peer int, alive bool) {
	if u.peerObs != nil {
		u.peerObs(peer, alive)
	}
}

// SetEpoch installs communicator epoch e: it salts all hardened-protocol
// checksums with a mix of e and restarts the per-peer send/receive
// sequence counters and group-barrier generations. Epoch 0 is the
// unsalted legacy state a fresh UE starts in. Both sides of every pairing
// must adopt the same epoch before exchanging hardened traffic again;
// the self-healing runtime guarantees that with its epoch barrier.
func (u *UE) SetEpoch(e uint32) {
	u.epochSalt = e * 0x9E3779B1 // golden-ratio mix; 0 stays 0
	u.sendSeq.reset()
	u.recvSeq.reset()
	u.groupGen.reset()
}

// resetRoles lists the flag-line bytes wiped by ResetProtocolFlags: the
// data-protocol roles (sent/ready, MPB-direct double-buffer, checksum,
// progress), the group-barrier generations (restarted by SetEpoch), and
// the outcome-vote flags. The full-chip barrier generations (roles 2,3)
// survive — they are monotonic and never reset — as do the agreement
// roles (member/epoch arrive-release, the view bitmap and epoch word,
// the call-sequence byte), which are live while an adoption runs.
var resetRoles = []int{
	FlagSent, FlagReady,
	FlagMPBSent0, FlagMPBSent1, FlagMPBReady0, FlagMPBReady1,
	FlagChk0, FlagChk0 + 1, FlagChk0 + 2, FlagChk0 + 3,
	FlagProgress,
	FlagGroupArrive, FlagGroupRelease,
	FlagVoteArrive, FlagVoteRelease,
}

// ResetProtocolFlags wipes, in this core's own MPB, the data-protocol
// flag bytes of every writer line (see resetRoles). Each dirty role is
// zeroed with its own single-byte flag write: a full-line write-back
// would race the peers' concurrent agreement-flag writes into the same
// line (a barrier arrive landing between this core's line read and its
// write-back would be silently erased). Peers wipe their own MPBs
// symmetrically during epoch adoption, which between them clears every
// flag a post-reconfiguration operation could read stale.
func (u *UE) ResetProtocolFlags() {
	line := make([]byte, u.core.Chip().Model.CacheLineBytes)
	for w := 0; w < u.NumUEs(); w++ {
		if w == u.ID() {
			continue
		}
		off := u.comm.FlagAddr(u.ID(), w, 0)
		u.core.MPBRead(off, line)
		for _, role := range resetRoles {
			if line[role] != 0 {
				u.core.SetFlag(off+role, 0)
			}
		}
	}
}
