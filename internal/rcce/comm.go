// Package rcce reimplements the SCC's native communication library RCCE
// on the simulated chip: line-granular put/get through the MPBs, the
// two-flag blocking send/receive protocol of the paper's Fig. 3, a
// generation-counted barrier, and the very basic native collectives whose
// poor scaling motivates the paper (Sec. III).
//
// The package also hosts the shared non-blocking request engine that the
// iRCCE and lightweight libraries (packages ircce and lwnb) instantiate
// with their respective software-overhead constants.
package rcce

import (
	"fmt"

	"scc/internal/metrics"
	"scc/internal/scc"
	"scc/internal/simtime"
)

// Flag roles within a core's per-writer flag line. Writer p owns line p
// in every other core's MPB (whole-line ownership mirrors RCCE's
// write-combining-safe flag design); the bytes of that line hold the
// individual flags p may set there.
const (
	// FlagSent: p -> me, "data for you is staged in my MPB".
	FlagSent = 0
	// FlagReady: p -> me, "I consumed the data you staged".
	FlagReady = 1
	// FlagBarrierArrive: p -> root, barrier arrival (generation-valued).
	FlagBarrierArrive = 2
	// FlagBarrierRelease: root -> p, barrier release (generation-valued).
	FlagBarrierRelease = 3
	// FlagMPBSent0/1: ring producer -> consumer, "double-buffer half 0/1
	// holds fresh data" (the MPB-direct Allreduce of Sec. IV-D).
	FlagMPBSent0 = 4
	FlagMPBSent1 = 5
	// FlagMPBReady0/1: ring consumer -> producer, "I am done reading
	// double-buffer half 0/1, you may overwrite it".
	FlagMPBReady0 = 6
	FlagMPBReady1 = 7
	// FlagChk0..FlagChk0+3: sender -> receiver, FNV-1a checksum of the
	// staged chunk (hardened protocol only; lives in the sent-flag line).
	FlagChk0 = 8
	// FlagProgress: receiver -> sender, sequence number of the last chunk
	// the receiver fully consumed. The hardened sender probes it on
	// timeout to distinguish a lost data chunk from a lost ACK.
	FlagProgress = 12
	// FlagGroupArrive/Release: generation-valued barrier flags for
	// group (survivor-set) barriers, kept separate from the full-chip
	// barrier's so the two generation counters cannot desynchronize.
	FlagGroupArrive  = 13
	FlagGroupRelease = 14
	// FlagVoteArrive/Release: the self-healing runtime's outcome vote
	// after every collective (see internal/core). Token-valued; cleared
	// on epoch adoption so a stale vote can never alias a fresh one.
	FlagVoteArrive  = 15
	FlagVoteRelease = 16
	// FlagMemberArrive/Release: membership-agreement participation and
	// view-publication flags. Arrive carries a per-member monotonic
	// token; Release announces that the view payload below is valid.
	FlagMemberArrive  = 17
	FlagMemberRelease = 18
	// FlagEpochArrive/Release: the commit barrier that seals a newly
	// agreed epoch. Token = 1 + epoch mod 127, so attempts at distinct
	// epochs cannot alias.
	FlagEpochArrive  = 19
	FlagEpochRelease = 20
	// FlagSuspBase starts the membership bitmap payload region (one bit
	// per core, so ceil(NumCores/8) bytes — Comm.ViewBitmapBytes).
	// member -> coordinator lines carry the member's suspicion bitmap;
	// coordinator -> member lines carry the agreed view bitmap. The
	// agreed-epoch word and the call-sequence byte follow; their offsets
	// depend on the core count, so they are Comm methods (FlagViewEpoch,
	// FlagCollSeq) rather than constants.
	FlagSuspBase = 21
)

// ViewBitmapBytes returns the size of the membership bitmaps shipped
// through the flag region: one bit per core.
func (c *Comm) ViewBitmapBytes() int { return c.chip.Model.ViewBitmapBytes() }

// FlagViewEpoch returns the role offset of the agreed epoch
// (little-endian uint32), right after the view bitmap.
func (c *Comm) FlagViewEpoch() int { return FlagSuspBase + c.ViewBitmapBytes() }

// FlagCollSeq returns the role offset of the wrapped-collective call
// sequence (mod 256), shipped with each agreement arrival so a member
// stranded on a different collective call than the majority cohort is
// evicted instead of exchanging mismatched payloads. Last byte of the
// per-writer flag region.
func (c *Comm) FlagCollSeq() int { return c.chip.Model.FlagBytesPerWriter() - 1 }

// Unexported aliases keep the package-internal protocol code terse.
const (
	flagSent           = FlagSent
	flagReady          = FlagReady
	flagBarrierArrive  = FlagBarrierArrive
	flagBarrierRelease = FlagBarrierRelease
)

// Comm is an RCCE communicator spanning all cores of a chip. It owns
// the MPB layout: the first NumCores flag regions of every core's MPB
// belong to the potential writers (one region each, sized by the
// model's FlagBytesPerWriter); the rest is the chunk data region.
type Comm struct {
	chip *scc.Chip
	// userFlags tracks per-core allocation of gory-interface user flags
	// (see gory.go).
	userFlags map[int][]bool
}

// NewComm lays an RCCE communicator over the chip.
func NewComm(chip *scc.Chip) *Comm {
	return &Comm{chip: chip}
}

// Chip returns the underlying chip.
func (c *Comm) Chip() *scc.Chip { return c.chip }

// NumUEs returns the number of units of execution (cores).
func (c *Comm) NumUEs() int { return c.chip.NumCores() }

// FlagAddr returns the global MPB offset of the flag that `writer` may
// set in `owner`'s MPB, for the given flag role (a byte offset within
// the writer's flag region).
func (c *Comm) FlagAddr(owner, writer, role int) int {
	return c.chip.MPBBase(owner) + writer*c.chip.Model.FlagBytesPerWriter() + role
}

// DataBase returns the global MPB offset of a core's chunk data region
// (after the per-writer flag regions and the gory-interface user-flag
// region).
func (c *Comm) DataBase(core int) int {
	return c.userFlagBase(core) + c.UserFlagCount()
}

// DataBytes returns the usable size of each core's chunk data region
// (the per-core MPB minus the flag reservations; on the default
// 48-core chip that is 8192 - (48+4)*32 = 6528 bytes).
func (c *Comm) DataBytes() int {
	return c.chip.Model.MPBDataBytes()
}

// UE returns the unit-of-execution handle for a core. Call from inside
// the core's simulated program. The four per-peer protocol counters are
// sparse paged arrays (see peerBytes): a fresh UE allocates no per-peer
// state at all, and a running one pays only for the peers it actually
// talks to — on a 10,000-core chip a dense NumUEs-sized slice per
// counter per UE would dominate the whole simulation's footprint.
func (c *Comm) UE(coreID int) *UE {
	return &UE{
		comm: c,
		core: c.chip.Cores[coreID],
	}
}

// UE ("unit of execution" in RCCE terminology) is the per-core handle to
// the communication library.
type UE struct {
	comm *Comm
	core *scc.Core

	// barrierGen tracks the barrier generation per root so barriers are
	// reusable without extra clearing round trips; dissemGen does the
	// same for the dissemination barrier, groupGen for group barriers.
	// The per-peer counters are sparse paged arrays indexed by peer
	// core ID; untouched peers cost nothing.
	barrierGen peerBytes
	groupGen   peerBytes
	dissemGen  byte

	// activeSend is the send request currently occupying the core's MPB
	// staging region (see PostSend).
	activeSend *Request

	// sendSeq / recvSeq hold the hardened protocol's next sequence
	// number per peer (see robust.go); stats accumulates its recovery
	// counters.
	sendSeq peerBytes
	recvSeq peerBytes
	stats   RecoveryStats

	// epochSalt is folded into every hardened-protocol chunk checksum
	// (see epoch.go): after a membership change, chunks staged under the
	// previous epoch fail verification and are NACKed away instead of
	// being consumed as fresh data. Zero (epoch 0) is the unsalted
	// legacy behavior.
	epochSalt uint32

	// peerObs, when installed, observes per-peer protocol outcomes: it
	// is called with alive=false when a peer exhausts a retry budget and
	// alive=true on any successful handshake with it. The in-band
	// failure detector of internal/core hangs off this hook.
	peerObs func(peer int, alive bool)

	// stage is the UE's staging arena for Put/Get: a core moves at most
	// one message chunk at a time, so one reusable buffer replaces the
	// per-call make([]byte, nBytes).
	stage []byte

	// Scratch for the request engine's WaitAll rounds and the robust
	// path's multi-op wait (see nonblocking.go, robust.go). Safe to
	// reuse because these loops never nest within one UE.
	waitFlags  []int
	waitPend   []*Request
	robustOffs []int
	robustPend []*robustOp
	// opSend/opRecv are the robust-op storage reused by SendRobust /
	// RecvRobust / ExchangeRobust, with opsBuf the argument slice.
	opSend, opRecv robustOp
	opsBuf         [2]*robustOp
}

// scratch returns the staging arena resized to n bytes, reallocating
// only when the requested size exceeds the current capacity.
func (u *UE) scratch(n int) []byte {
	if cap(u.stage) < n {
		u.stage = make([]byte, n)
	}
	return u.stage[:n]
}

// ID returns the UE's rank (== core ID).
func (u *UE) ID() int { return u.core.ID }

// Core exposes the underlying simulated core.
func (u *UE) Core() *scc.Core { return u.core }

// Comm returns the owning communicator.
func (u *UE) Comm() *Comm { return u.comm }

// NumUEs returns the communicator size.
func (u *UE) NumUEs() int { return u.comm.NumUEs() }

// chargeCall prices one library-call entry of n core cycles
// (classified as software overhead in the metrics registry).
func (u *UE) chargeCall(n int64) {
	u.core.OverheadCycles(n)
}

// chargePartialLine adds the extra communication-function call RCCE
// makes when a message does not fill whole cache lines (Sec. V-A).
func (u *UE) chargePartialLine(nBytes int) {
	m := u.core.Chip().Model
	if nBytes%m.CacheLineBytes != 0 {
		u.core.OverheadCycles(m.OverheadPartialLineCall)
	}
}

// Put stages nBytes from private memory into the MPB at global offset
// mpbOff: per-line cached reads on the private side, write-combined
// line writes on the MPB side.
func (u *UE) Put(privAddr scc.Addr, mpbOff, nBytes int) {
	m := u.core.Chip().Model
	reg := u.core.Metrics()
	var t0 simtime.Time
	if u.core.Tracing() || reg != nil {
		t0 = u.core.Now()
	}
	buf := u.scratch(nBytes)
	u.core.OverheadCycles(m.PutLineCoreCycles * int64(m.Lines(nBytes)))
	u.readPriv(privAddr, buf)
	u.core.MPBWrite(mpbOff, buf)
	if u.core.Tracing() {
		u.core.RecordSpan("put", t0, u.core.Now())
	}
	if reg != nil {
		reg.Count(u.core.ID, metrics.CtrPuts)
		reg.CountN(u.core.ID, metrics.CtrPutTicks, int64(u.core.Now()-t0))
	}
}

// Get copies nBytes from the MPB at global offset mpbOff into private
// memory at privAddr.
func (u *UE) Get(mpbOff int, privAddr scc.Addr, nBytes int) {
	m := u.core.Chip().Model
	reg := u.core.Metrics()
	var t0 simtime.Time
	if u.core.Tracing() || reg != nil {
		t0 = u.core.Now()
	}
	buf := u.scratch(nBytes)
	u.core.OverheadCycles(m.GetLineCoreCycles * int64(m.Lines(nBytes)))
	u.core.MPBRead(mpbOff, buf)
	u.writePriv(privAddr, buf)
	if u.core.Tracing() {
		u.core.RecordSpan("get", t0, u.core.Now())
	}
	if reg != nil {
		reg.Count(u.core.ID, metrics.CtrGets)
		reg.CountN(u.core.ID, metrics.CtrGetTicks, int64(u.core.Now()-t0))
	}
}

// readPriv / writePriv move raw bytes between the simulation and the
// core's private memory, charging cache costs.
func (u *UE) readPriv(a scc.Addr, buf []byte) {
	u.core.TouchRead(a, len(buf))
	copy(buf, u.core.PrivBytes(a, len(buf)))
}

func (u *UE) writePriv(a scc.Addr, buf []byte) {
	u.core.TouchWrite(a, len(buf))
	copy(u.core.PrivBytes(a, len(buf)), buf)
}

// Send transmits nBytes from private memory to UE dest using the blocking
// two-flag protocol of Fig. 3. It returns only after dest has consumed
// every chunk.
func (u *UE) Send(dest int, addr scc.Addr, nBytes int) {
	if dest == u.ID() {
		panic(fmt.Sprintf("rcce: UE %d sending to itself", dest))
	}
	m := u.core.Chip().Model
	reg := u.core.Metrics()
	var t0 simtime.Time
	if reg != nil {
		t0 = u.core.Now()
	}
	u.chargeCall(m.OverheadBlockingCall)
	u.chargePartialLine(nBytes)
	chunk := u.comm.DataBytes()
	sent := u.comm.FlagAddr(dest, u.ID(), flagSent)   // I set this in dest's MPB
	ready := u.comm.FlagAddr(u.ID(), dest, flagReady) // dest sets this in my MPB
	for off := 0; off < nBytes || nBytes == 0; off += chunk {
		n := min(chunk, nBytes-off)
		u.Put(addr+scc.Addr(off), u.comm.DataBase(u.ID()), n)
		u.core.SetFlag(sent, 1)
		u.core.WaitFlag(ready, 1)
		u.core.SetFlag(ready, 0) // clear ready (local line)
		u.core.Note(simtime.Note3("send->%02d: %d/%d B acked",
			int64(dest), int64(off+n), int64(nBytes)))
		if nBytes == 0 {
			break
		}
	}
	if reg != nil {
		reg.Count(u.core.ID, metrics.CtrSends)
		reg.CountN(u.core.ID, metrics.CtrSendTicks, int64(u.core.Now()-t0))
	}
}

// Recv receives nBytes from UE src into private memory, blocking.
func (u *UE) Recv(src int, addr scc.Addr, nBytes int) {
	if src == u.ID() {
		panic(fmt.Sprintf("rcce: UE %d receiving from itself", src))
	}
	m := u.core.Chip().Model
	reg := u.core.Metrics()
	var t0 simtime.Time
	if reg != nil {
		t0 = u.core.Now()
	}
	u.chargeCall(m.OverheadBlockingCall)
	u.chargePartialLine(nBytes)
	chunk := u.comm.DataBytes()
	sent := u.comm.FlagAddr(u.ID(), src, flagSent)   // src sets this in my MPB
	ready := u.comm.FlagAddr(src, u.ID(), flagReady) // I set this in src's MPB
	for off := 0; off < nBytes || nBytes == 0; off += chunk {
		n := min(chunk, nBytes-off)
		u.core.WaitFlag(sent, 1)
		u.core.SetFlag(sent, 0) // clear sent (local line)
		u.Get(u.comm.DataBase(src), addr+scc.Addr(off), n)
		u.core.SetFlag(ready, 1)
		u.core.Note(simtime.Note3("recv<-%02d: %d/%d B consumed",
			int64(src), int64(off+n), int64(nBytes)))
		if nBytes == 0 {
			break
		}
	}
	if reg != nil {
		reg.Count(u.core.ID, metrics.CtrRecvs)
		reg.CountN(u.core.ID, metrics.CtrRecvTicks, int64(u.core.Now()-t0))
	}
}

// SendF64s / RecvF64s are float64-vector conveniences.
func (u *UE) SendF64s(dest int, addr scc.Addr, n int) { u.Send(dest, addr, 8*n) }
func (u *UE) RecvF64s(src int, addr scc.Addr, n int)  { u.Recv(src, addr, 8*n) }

// Barrier synchronizes all UEs: members report arrival to UE 0 with a
// generation-valued flag; UE 0 releases everyone by writing the same
// generation into their release flags. Generations make the barrier
// reusable with no clearing round trips.
func (u *UE) Barrier() {
	const root = 0
	m := u.core.Chip().Model
	u.chargeCall(m.OverheadBlockingCall)
	gen := u.barrierGen.get(root)
	gen++
	if gen == 0 {
		gen = 1
	}
	u.barrierGen.set(root, gen)
	if u.ID() == root {
		for p := 0; p < u.NumUEs(); p++ {
			if p == root {
				continue
			}
			u.core.WaitFlag(u.comm.FlagAddr(root, p, flagBarrierArrive), gen)
		}
		for p := 0; p < u.NumUEs(); p++ {
			if p == root {
				continue
			}
			u.core.SetFlag(u.comm.FlagAddr(p, root, flagBarrierRelease), gen)
		}
		return
	}
	u.core.SetFlag(u.comm.FlagAddr(root, u.ID(), flagBarrierArrive), gen)
	u.core.WaitFlag(u.comm.FlagAddr(u.ID(), root, flagBarrierRelease), gen)
}
