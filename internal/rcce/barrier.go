package rcce

// Dissemination barrier: an optimized alternative to RCCE's centralized
// barrier, in the spirit of the paper's lightweight collectives. Instead
// of funnelling 47 arrivals through core 0 (2(p-1) serialized flag
// waits at the root), every core signals its partner at distance 2^r in
// round r and waits for the partner at distance -2^r; after ceil(log2 p)
// rounds everyone transitively knows everyone arrived. Generation
// values make it reusable without clearing.

// Flag roles 8..15 of each writer line are reserved for the
// dissemination rounds (6 rounds cover up to 64 cores).
const flagDissemBase = 8

// maxDissemRounds bounds the reserved flag space.
const maxDissemRounds = 8

// BarrierDissemination synchronizes all UEs in ceil(log2 p) rounds.
func (u *UE) BarrierDissemination() {
	m := u.core.Chip().Model
	u.chargeCall(m.OverheadLightweightPost) // thin entry, no list keeping
	p := u.NumUEs()
	me := u.ID()
	gen := u.dissemGen
	gen++
	if gen == 0 {
		gen = 1
	}
	u.dissemGen = gen

	round := 0
	for dist := 1; dist < p; dist *= 2 {
		if round >= maxDissemRounds {
			panic("rcce: dissemination barrier round overflow")
		}
		to := (me + dist) % p
		from := (me - dist + p) % p
		// Signal my partner, then wait for the symmetric signal.
		u.core.SetFlag(u.comm.FlagAddr(to, me, flagDissemBase+round), gen)
		u.core.WaitFlag(u.comm.FlagAddr(me, from, flagDissemBase+round), gen)
		round++
	}
}
