package rcce

import (
	"fmt"

	"scc/internal/timing"
)

// The "gory" interface. RCCE ships two API levels: the high-level
// ("non-gory") send/receive used so far, and the gory interface exposing
// raw MPB space and user-allocated flags for hand-rolled protocols
// (RCCE_flag_alloc / RCCE_flag_free / RCCE_flag_write / RCCE_wait_until).
// The simulator reserves a user-flag region between the per-writer flag
// regions and the chunk data region: timing.UserFlagLines cache lines
// per core, one byte per flag, allocated with a per-core free list.

// UserFlagLines re-exports the size of each core's user-flag region in
// lines (the timing model owns the layout constants).
const UserFlagLines = timing.UserFlagLines

// userFlagBase returns the global MPB offset of a core's user-flag
// region (right after the per-writer flag regions).
func (c *Comm) userFlagBase(core int) int {
	return c.chip.MPBBase(core) + c.NumUEs()*c.chip.Model.FlagBytesPerWriter()
}

// UserFlagCount returns how many user flags each core can hold.
func (c *Comm) UserFlagCount() int {
	return UserFlagLines * c.chip.Model.CacheLineBytes
}

// AllocFlag reserves one user flag in owner's MPB and returns its global
// offset, for use with UE.FlagWrite / FlagRead / WaitUntil. It fails
// when owner's flag region is exhausted (RCCE_error-style).
func (c *Comm) AllocFlag(owner int) (int, error) {
	if c.userFlags == nil {
		c.userFlags = make(map[int][]bool)
	}
	used := c.userFlags[owner]
	if used == nil {
		used = make([]bool, c.UserFlagCount())
		c.userFlags[owner] = used
	}
	for i, taken := range used {
		if !taken {
			used[i] = true
			return c.userFlagBase(owner) + i, nil
		}
	}
	return 0, fmt.Errorf("rcce: core %d's user flag space exhausted (%d flags)",
		owner, c.UserFlagCount())
}

// FreeFlag releases a flag previously returned by AllocFlag.
func (c *Comm) FreeFlag(off int) error {
	owner := c.chip.MPBOwner(off)
	base := c.userFlagBase(owner)
	idx := off - base
	if idx < 0 || idx >= c.UserFlagCount() {
		return fmt.Errorf("rcce: offset %d is not a user flag", off)
	}
	used := c.userFlags[owner]
	if used == nil || !used[idx] {
		return fmt.Errorf("rcce: double free of user flag %d", off)
	}
	used[idx] = false
	return nil
}

// FlagWrite sets a flag byte (RCCE_flag_write). Costs one MPB line
// write at the flag owner's tile.
func (u *UE) FlagWrite(off int, v byte) {
	u.core.SetFlag(off, v)
}

// FlagRead probes a flag byte (RCCE_flag_read).
func (u *UE) FlagRead(off int) byte {
	return u.core.ProbeFlag(off)
}

// WaitUntil blocks until the flag equals v (RCCE_wait_until). The time
// spent is accounted in the core's FlagWait profile - this is the very
// method the paper's application profile shows eating up to 50% of the
// runtime (Sec. IV-A).
func (u *UE) WaitUntil(off int, v byte) {
	u.core.WaitFlag(off, v)
}
