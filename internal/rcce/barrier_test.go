package rcce

import (
	"testing"

	"scc/internal/scc"
	"scc/internal/simtime"
)

func TestDisseminationBarrierSynchronizes(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	arrive := make([]simtime.Time, 48)
	depart := make([]simtime.Time, 48)
	chip.Launch(func(core *scc.Core) {
		ue := comm.UE(core.ID)
		core.Compute(simtime.Microseconds(int64((core.ID * 7) % 90)))
		arrive[core.ID] = core.Now()
		ue.BarrierDissemination()
		depart[core.ID] = core.Now()
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	var maxArrive simtime.Time
	for _, a := range arrive {
		if a > maxArrive {
			maxArrive = a
		}
	}
	for id, d := range depart {
		if d < maxArrive {
			t.Fatalf("core %d left at %v before last arrival %v", id, d, maxArrive)
		}
	}
}

func TestDisseminationBarrierReusable(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	done := 0
	chip.Launch(func(core *scc.Core) {
		ue := comm.UE(core.ID)
		for i := 0; i < 300; i++ { // enough rounds to wrap the generation byte
			ue.BarrierDissemination()
		}
		if core.ID == 0 {
			done = 300
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 300 {
		t.Fatal("barrier rounds incomplete")
	}
}

func TestDisseminationFasterThanCentralized(t *testing.T) {
	// log2(48) rounds of neighbor flags must beat 47 serialized arrivals
	// plus 47 serialized releases at the root.
	run := func(dissem bool) simtime.Time {
		chip := newChip()
		comm := NewComm(chip)
		chip.Launch(func(core *scc.Core) {
			ue := comm.UE(core.ID)
			for i := 0; i < 5; i++ {
				if dissem {
					ue.BarrierDissemination()
				} else {
					ue.Barrier()
				}
			}
		})
		if err := chip.Run(); err != nil {
			t.Fatal(err)
		}
		return chip.Now()
	}
	central := run(false)
	dissem := run(true)
	if dissem >= central {
		t.Fatalf("dissemination (%v) not faster than centralized (%v)", dissem, central)
	}
}

func TestLocksThroughUE(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	counter := 0
	for _, id := range []int{3, 9, 21} {
		chip.LaunchOne(id, func(core *scc.Core) {
			ue := comm.UE(core.ID)
			for i := 0; i < 4; i++ {
				ue.AcquireLock(0)
				counter++
				core.Compute(simtime.Microseconds(2))
				ue.ReleaseLock(0)
			}
		})
	}
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != 12 {
		t.Fatalf("critical sections = %d, want 12", counter)
	}
}

func TestTryLockThroughUE(t *testing.T) {
	chip := newChip()
	comm := NewComm(chip)
	chip.LaunchOne(0, func(core *scc.Core) {
		ue := comm.UE(0)
		if !ue.TryLock(5) {
			t.Error("first TryLock failed")
		}
		if ue.TryLock(5) {
			t.Error("second TryLock succeeded while held")
		}
		ue.ReleaseLock(5)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
}
