package mesh

import (
	"testing"

	"scc/internal/simtime"
	"scc/internal/timing"
)

// BenchmarkTransfer measures the mesh hot path with destinations cycling
// over the whole 6x4 grid (route lengths 0..8 hops, like real traffic).
// The acceptance bar for the allocation-free XY walk is 0 allocs/op.
func BenchmarkTransfer(b *testing.B) {
	n := New(timing.Default())
	b.ReportAllocs()
	b.ResetTimer()
	var at simtime.Time
	for i := 0; i < b.N; i++ {
		at = n.Transfer(Coord{0, 0}, Coord{X: i % 6, Y: (i / 6) % 4}, 256, at)
	}
}

// BenchmarkTransferContended drives all traffic over one shared link so
// every transfer hits the occupancy/queueing branch.
func BenchmarkTransferContended(b *testing.B) {
	n := New(timing.Default())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Transfer(Coord{0, 0}, Coord{1, 0}, 256, 0)
	}
}

// BenchmarkReset verifies the epoch-based reset stays O(1) rather than
// reallocating the occupancy table.
func BenchmarkReset(b *testing.B) {
	n := New(timing.Default())
	n.Transfer(Coord{0, 0}, Coord{5, 3}, 256, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Reset()
	}
}
