// Package mesh simulates the SCC's 2D on-chip mesh network.
//
// The SCC connects 24 tiles (6 columns x 4 rows) through a mesh of
// routers with deterministic XY (dimension-ordered) routing. The model
// here is wormhole-flavored: a packet pays a fixed per-hop router
// latency, serializes on each link at the link width, and links are
// occupied for the serialization time, so competing packets queue.
package mesh

import (
	"fmt"

	"scc/internal/simtime"
	"scc/internal/timing"
)

// Coord addresses a tile (router) in the mesh. X grows along a row,
// Y across rows.
type Coord struct {
	X, Y int
}

// String formats the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Hops returns the Manhattan distance between two routers, which is the
// XY route length.
func Hops(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// Route returns the XY route from a to b as the sequence of routers
// visited, including both endpoints. X is routed first, then Y, matching
// the SCC's dimension-ordered routing.
func Route(a, b Coord) []Coord {
	route := []Coord{a}
	cur := a
	for cur.X != b.X {
		cur.X += sign(b.X - cur.X)
		route = append(route, cur)
	}
	for cur.Y != b.Y {
		cur.Y += sign(b.Y - cur.Y)
		route = append(route, cur)
	}
	return route
}

// linkKey identifies a directed link between two adjacent routers.
type linkKey struct {
	from, to Coord
}

// Injector lets a fault model add delay to individual link traversals.
// LinkDelay is consulted once per directed link a packet head crosses,
// with the virtual time of the crossing; a positive return stalls the
// head (and everything queued behind it) by that many ticks. A nil or
// always-zero injector leaves timing bit-identical to the fault-free
// network.
type Injector interface {
	LinkDelay(from, to Coord, at simtime.Time) simtime.Duration
}

// Network is the mesh fabric. It tracks per-link occupancy so that
// overlapping transfers contend. Methods are not safe for concurrent use;
// the simulation engine serializes all processes.
type Network struct {
	model *timing.Model

	busyUntil map[linkKey]simtime.Time
	inj       Injector

	// Statistics.
	transfers    int64
	totalHops    int64
	totalBytes   int64
	contended    int64 // transfers that waited on at least one busy link
	totalQueueed simtime.Duration
	faultHits    int64
	faultDelay   simtime.Duration
}

// SetInjector installs (or, with nil, removes) a fault injector.
func (n *Network) SetInjector(inj Injector) { n.inj = inj }

// New creates a network using the model's geometry and link parameters.
func New(model *timing.Model) *Network {
	return &Network{
		model:     model,
		busyUntil: make(map[linkKey]simtime.Time),
	}
}

// InBounds reports whether c addresses a router of this network.
func (n *Network) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < n.model.MeshWidth && c.Y >= 0 && c.Y < n.model.MeshHeight
}

// Transfer models moving nBytes from router `from` to router `to`
// starting no earlier than `start`. It reserves every link along the XY
// route and returns the arrival time of the tail of the packet. A
// zero-hop transfer (from == to) returns start unchanged; the caller
// prices local port access separately.
func (n *Network) Transfer(from, to Coord, nBytes int, start simtime.Time) simtime.Time {
	if !n.InBounds(from) || !n.InBounds(to) {
		panic(fmt.Sprintf("mesh: transfer endpoint out of bounds: %v -> %v", from, to))
	}
	n.transfers++
	n.totalBytes += int64(nBytes)
	if from == to {
		return start
	}
	route := Route(from, to)
	n.totalHops += int64(len(route) - 1)

	// Serialization: cycles the packet body occupies one link.
	serCycles := int64((nBytes + n.model.MeshLinkBytesPerCycle - 1) / n.model.MeshLinkBytesPerCycle)
	if serCycles < 1 {
		serCycles = 1
	}
	ser := simtime.MeshCycles(serCycles)
	hop := simtime.MeshCycles(n.model.MeshHopRoundTripMeshCycles / 2) // one-way per-hop latency

	headAt := start
	contendedHere := false
	for i := 0; i+1 < len(route); i++ {
		lk := linkKey{route[i], route[i+1]}
		headAt += hop
		if n.inj != nil {
			if d := n.inj.LinkDelay(lk.from, lk.to, headAt); d > 0 {
				headAt += d
				n.faultHits++
				n.faultDelay += d
			}
		}
		if until, ok := n.busyUntil[lk]; ok && until > headAt {
			n.totalQueueed += until - headAt
			headAt = until
			contendedHere = true
		}
		n.busyUntil[lk] = headAt + ser
	}
	if contendedHere {
		n.contended++
	}
	return headAt + ser
}

// Stats is a snapshot of network counters.
type Stats struct {
	Transfers  int64
	TotalHops  int64
	TotalBytes int64
	Contended  int64
	Queued     simtime.Duration
	// FaultHits / FaultDelay count injected link stalls and their total
	// added latency (zero when no injector is installed).
	FaultHits  int64
	FaultDelay simtime.Duration
}

// Stats returns the accumulated counters.
func (n *Network) Stats() Stats {
	return Stats{
		Transfers:  n.transfers,
		TotalHops:  n.totalHops,
		TotalBytes: n.totalBytes,
		Contended:  n.contended,
		Queued:     n.totalQueueed,
		FaultHits:  n.faultHits,
		FaultDelay: n.faultDelay,
	}
}

// Reset clears link occupancy and statistics. The injector, if any,
// stays installed.
func (n *Network) Reset() {
	n.busyUntil = make(map[linkKey]simtime.Time)
	n.transfers, n.totalHops, n.totalBytes, n.contended, n.totalQueueed = 0, 0, 0, 0, 0
	n.faultHits, n.faultDelay = 0, 0
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}
