// Package mesh simulates the SCC's 2D on-chip mesh network.
//
// The SCC connects its tiles (24 in a 6x4 grid on the real chip; any
// rectangular geometry here, taken from the timing.Model) through a mesh
// of routers with deterministic XY (dimension-ordered) routing. The model
// here is wormhole-flavored: a packet pays a fixed per-hop router
// latency, serializes on each link at the link width, and links are
// occupied for the serialization time, so competing packets queue.
package mesh

import (
	"fmt"

	"scc/internal/metrics"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// Coord addresses a tile (router) in the mesh. X grows along a row,
// Y across rows.
type Coord struct {
	X, Y int
}

// String formats the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Hops returns the Manhattan distance between two routers, which is the
// XY route length.
func Hops(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// Route returns the XY route from a to b as the sequence of routers
// visited, including both endpoints. X is routed first, then Y, matching
// the SCC's dimension-ordered routing.
//
// Route allocates; the Transfer hot path walks the same route
// incrementally (see nextHop) without materializing it.
func Route(a, b Coord) []Coord {
	route := []Coord{a}
	cur := a
	for cur != b {
		cur = nextHop(cur, b)
		route = append(route, cur)
	}
	return route
}

// nextHop returns the router after cur on the XY route to dst. It must
// only be called with cur != dst.
func nextHop(cur, dst Coord) Coord {
	if cur.X != dst.X {
		cur.X += sign(dst.X - cur.X)
		return cur
	}
	cur.Y += sign(dst.Y - cur.Y)
	return cur
}

// Directed-link direction codes. Each router owns the four outgoing
// links of its tile, so a directed link is (tile, direction).
const (
	dirEast  = 0 // X+1
	dirWest  = 1 // X-1
	dirSouth = 2 // Y+1
	dirNorth = 3 // Y-1
	numDirs  = 4
)

// linkIndex returns the dense index of the directed link from -> to,
// where to must be a 4-neighbor of from.
func (n *Network) linkIndex(from, to Coord) int {
	dir := dirEast
	switch {
	case to.X == from.X-1:
		dir = dirWest
	case to.Y == from.Y+1:
		dir = dirSouth
	case to.Y == from.Y-1:
		dir = dirNorth
	}
	return (from.Y*n.model.MeshWidth+from.X)*numDirs + dir
}

// Injector lets a fault model add delay to individual link traversals.
// LinkDelay is consulted once per directed link a packet head crosses,
// with the virtual time of the crossing; a positive return stalls the
// head (and everything queued behind it) by that many ticks. A nil or
// always-zero injector leaves timing bit-identical to the fault-free
// network.
type Injector interface {
	LinkDelay(from, to Coord, at simtime.Time) simtime.Duration
}

// Network is the mesh fabric. It tracks per-link occupancy so that
// overlapping transfers contend. Methods are not safe for concurrent use;
// the simulation engine serializes all processes.
//
// Occupancy lives in a dense per-directed-link array (4 directions per
// tile) rather than a map: Transfer is the simulator's hottest function
// and the array keeps it allocation-free. An entry is only valid when its
// epoch matches the network's, so Reset is O(1) — it just bumps the epoch.
type Network struct {
	model    *timing.Model
	numLinks int

	// The occupancy arrays are allocated on the first real transfer, not
	// at construction: a network that never carries a packet (an idle
	// chip in a multi-chip fabric, or a huge mesh probed only locally)
	// costs two nil slices instead of 16 bytes per directed link.
	busyUntil []simtime.Time // indexed by linkIndex
	busyEpoch []uint64       // busyUntil[i] valid iff busyEpoch[i] == epoch
	epoch     uint64
	inj       Injector
	reg       *metrics.Registry

	// Statistics.
	transfers   int64
	totalHops   int64
	totalBytes  int64
	contended   int64 // transfers that waited on at least one busy link
	totalQueued simtime.Duration
	faultHits   int64
	faultDelay  simtime.Duration
}

// SetInjector installs (or, with nil, removes) a fault injector.
func (n *Network) SetInjector(inj Injector) { n.inj = inj }

// SetMetrics attaches (or, with nil, detaches) a metrics registry. The
// registry's link arrays are sized to this network's geometry and its
// link labels name tiles and directions ("(x,y)E" is the eastbound
// link out of the router at column x, row y). Recording only counts —
// it never changes what Transfer returns.
func (n *Network) SetMetrics(reg *metrics.Registry) {
	n.reg = reg
	if reg != nil {
		reg.InitLinks(n.numLinks, n.LinkLabel)
	}
}

// LinkLabel names a directed link by its dense index, e.g. "(2,1)N".
func (n *Network) LinkLabel(li int) string {
	tile := li / numDirs
	dir := [numDirs]string{"E", "W", "S", "N"}[li%numDirs]
	return fmt.Sprintf("(%d,%d)%s", tile%n.model.MeshWidth, tile/n.model.MeshWidth, dir)
}

// New creates a network using the model's geometry and link parameters.
func New(model *timing.Model) *Network {
	return &Network{
		model:    model,
		numLinks: model.MeshWidth * model.MeshHeight * numDirs,
		epoch:    1, // zero-valued busyEpoch entries start out stale
	}
}

// InBounds reports whether c addresses a router of this network.
func (n *Network) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < n.model.MeshWidth && c.Y >= 0 && c.Y < n.model.MeshHeight
}

// Transfer models moving nBytes from router `from` to router `to`
// starting no earlier than `start`. It reserves every link along the XY
// route and returns the arrival time of the tail of the packet. A
// zero-hop transfer (from == to) returns start unchanged; the caller
// prices local port access separately.
func (n *Network) Transfer(from, to Coord, nBytes int, start simtime.Time) simtime.Time {
	if !n.InBounds(from) || !n.InBounds(to) {
		panic(fmt.Sprintf("mesh: transfer endpoint out of bounds: %v -> %v", from, to))
	}
	n.transfers++
	n.totalBytes += int64(nBytes)
	if from == to {
		return start
	}
	n.totalHops += int64(Hops(from, to))
	if n.reg != nil {
		n.reg.AddHops(Hops(from, to))
	}
	if n.busyUntil == nil {
		n.busyUntil = make([]simtime.Time, n.numLinks)
		n.busyEpoch = make([]uint64, n.numLinks)
	}

	// Serialization: cycles the packet body occupies one link.
	serCycles := int64((nBytes + n.model.MeshLinkBytesPerCycle - 1) / n.model.MeshLinkBytesPerCycle)
	if serCycles < 1 {
		serCycles = 1
	}
	ser := simtime.MeshCycles(serCycles)
	hop := simtime.MeshCycles(n.model.MeshHopRoundTripMeshCycles / 2) // one-way per-hop latency

	// Walk the XY route incrementally instead of materializing it: this
	// loop runs once per hop of every transfer in the simulation.
	headAt := start
	contendedHere := false
	for cur := from; cur != to; {
		next := nextHop(cur, to)
		li := n.linkIndex(cur, next)
		headAt += hop
		if n.inj != nil {
			if d := n.inj.LinkDelay(cur, next, headAt); d > 0 {
				headAt += d
				n.faultHits++
				n.faultDelay += d
			}
		}
		var queued simtime.Duration
		if n.busyEpoch[li] == n.epoch && n.busyUntil[li] > headAt {
			queued = n.busyUntil[li] - headAt
			n.totalQueued += queued
			headAt = n.busyUntil[li]
			contendedHere = true
		}
		n.busyUntil[li] = headAt + ser
		n.busyEpoch[li] = n.epoch
		if n.reg != nil {
			n.reg.LinkTransfer(li, ser, queued)
		}
		cur = next
	}
	if contendedHere {
		n.contended++
	}
	return headAt + ser
}

// Stats is a snapshot of network counters.
type Stats struct {
	Transfers  int64
	TotalHops  int64
	TotalBytes int64
	Contended  int64
	Queued     simtime.Duration
	// FaultHits / FaultDelay count injected link stalls and their total
	// added latency (zero when no injector is installed).
	FaultHits  int64
	FaultDelay simtime.Duration
}

// Stats returns the accumulated counters.
func (n *Network) Stats() Stats {
	return Stats{
		Transfers:  n.transfers,
		TotalHops:  n.totalHops,
		TotalBytes: n.totalBytes,
		Contended:  n.contended,
		Queued:     n.totalQueued,
		FaultHits:  n.faultHits,
		FaultDelay: n.faultDelay,
	}
}

// Reset clears link occupancy and statistics in O(1): advancing the epoch
// invalidates every busyUntil entry without touching the arrays. The
// injector, if any, stays installed.
func (n *Network) Reset() {
	n.epoch++
	n.transfers, n.totalHops, n.totalBytes, n.contended, n.totalQueued = 0, 0, 0, 0, 0
	n.faultHits, n.faultDelay = 0, 0
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}
