package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scc/internal/simtime"
	"scc/internal/timing"
)

func TestHops(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{5, 0}, 5},
		{Coord{0, 0}, Coord{5, 3}, 8},
		{Coord{2, 1}, Coord{3, 3}, 3},
		{Coord{5, 3}, Coord{0, 0}, 8},
	}
	for _, c := range cases {
		if got := Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRouteXYOrder(t *testing.T) {
	r := Route(Coord{1, 1}, Coord{4, 3})
	want := []Coord{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {4, 2}, {4, 3}}
	if len(r) != len(want) {
		t.Fatalf("route %v, want %v", r, want)
	}
	for i := range r {
		if r[i] != want[i] {
			t.Fatalf("route %v, want %v", r, want)
		}
	}
}

// Property: routes have Hops()+1 routers, start and end correctly, and
// every step moves to a 4-neighbor.
func TestRouteProperty(t *testing.T) {
	f := func(ax, ay, bx, by uint8) bool {
		a := Coord{int(ax % 6), int(ay % 4)}
		b := Coord{int(bx % 6), int(by % 4)}
		r := Route(a, b)
		if len(r) != Hops(a, b)+1 || r[0] != a || r[len(r)-1] != b {
			return false
		}
		for i := 1; i < len(r); i++ {
			if Hops(r[i-1], r[i]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferLatencyScalesWithHops(t *testing.T) {
	m := timing.Default()
	n := New(m)
	lat := func(to Coord) simtime.Duration {
		n.Reset()
		return n.Transfer(Coord{0, 0}, to, 32, 0)
	}
	l1 := lat(Coord{1, 0})
	l2 := lat(Coord{2, 0})
	l8 := lat(Coord{5, 3})
	if !(l1 < l2 && l2 < l8) {
		t.Fatalf("latency not monotone in hops: %v %v %v", l1, l2, l8)
	}
	// Per-hop delta must be the one-way hop latency.
	perHop := simtime.MeshCycles(m.MeshHopRoundTripMeshCycles / 2)
	if l2-l1 != perHop {
		t.Fatalf("per-hop delta = %v, want %v", l2-l1, perHop)
	}
}

func TestZeroHopTransferIsFree(t *testing.T) {
	n := New(timing.Default())
	if got := n.Transfer(Coord{2, 2}, Coord{2, 2}, 4096, 77); got != 77 {
		t.Fatalf("same-tile transfer arrival = %v, want 77", got)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	m := timing.Default()
	n := New(m)
	// Two packets over the same single link at the same instant: the
	// second must queue behind the first's serialization.
	a1 := n.Transfer(Coord{0, 0}, Coord{1, 0}, 64, 0)
	a2 := n.Transfer(Coord{0, 0}, Coord{1, 0}, 64, 0)
	if a2 <= a1 {
		t.Fatalf("second packet not delayed: %v then %v", a1, a2)
	}
	ser := simtime.MeshCycles(int64(64 / m.MeshLinkBytesPerCycle))
	if a2-a1 != ser {
		t.Fatalf("queueing delta = %v, want serialization %v", a2-a1, ser)
	}
	st := n.Stats()
	if st.Contended != 1 || st.Transfers != 2 {
		t.Fatalf("stats = %+v, want 1 contended of 2", st)
	}
}

func TestDisjointPathsDoNotContend(t *testing.T) {
	n := New(timing.Default())
	a1 := n.Transfer(Coord{0, 0}, Coord{1, 0}, 32, 0)
	a2 := n.Transfer(Coord{0, 1}, Coord{1, 1}, 32, 0)
	if a1 != a2 {
		t.Fatalf("disjoint transfers differ: %v vs %v", a1, a2)
	}
	if st := n.Stats(); st.Contended != 0 {
		t.Fatalf("unexpected contention: %+v", st)
	}
}

func TestLargerPacketsTakeLonger(t *testing.T) {
	n := New(timing.Default())
	small := n.Transfer(Coord{0, 0}, Coord{3, 2}, 32, 0)
	n.Reset()
	big := n.Transfer(Coord{0, 0}, Coord{3, 2}, 4096, 0)
	if big <= small {
		t.Fatalf("4096B (%v) not slower than 32B (%v)", big, small)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	n := New(timing.Default())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds endpoint")
		}
	}()
	n.Transfer(Coord{0, 0}, Coord{6, 0}, 32, 0)
}

// Property: arrival is never before start + minimal hop latency, and
// reruns after Reset are identical (determinism).
func TestTransferArrivalProperty(t *testing.T) {
	m := timing.Default()
	rng := rand.New(rand.NewSource(7))
	n := New(m)
	type tr struct {
		a, b  Coord
		bytes int
		start simtime.Time
	}
	var trs []tr
	for i := 0; i < 500; i++ {
		trs = append(trs, tr{
			a:     Coord{rng.Intn(6), rng.Intn(4)},
			b:     Coord{rng.Intn(6), rng.Intn(4)},
			bytes: 32 * (1 + rng.Intn(64)),
			start: simtime.Time(rng.Intn(100000)),
		})
	}
	run := func() []simtime.Time {
		n.Reset()
		out := make([]simtime.Time, len(trs))
		for i, x := range trs {
			out[i] = n.Transfer(x.a, x.b, x.bytes, x.start)
			minLat := simtime.MeshCycles(int64(Hops(x.a, x.b)) * m.MeshHopRoundTripMeshCycles / 2)
			if out[i] < x.start+minLat {
				t.Fatalf("arrival %v before physical minimum %v", out[i], x.start+minLat)
			}
		}
		return out
	}
	r1 := run()
	r2 := run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("non-deterministic arrival at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestHotspotTrafficQueues(t *testing.T) {
	// All-to-one traffic into tile (0,0) must contend heavily; the same
	// volume spread across disjoint neighbor pairs must not. This is the
	// congestion behavior behind the SCC's memory-controller hotspots.
	m := timing.Default()
	hot := New(m)
	var lastArrival simtime.Time
	for x := 0; x < 6; x++ {
		for y := 0; y < 4; y++ {
			if x == 0 && y == 0 {
				continue
			}
			a := hot.Transfer(Coord{X: x, Y: y}, Coord{X: 0, Y: 0}, 512, 0)
			if a > lastArrival {
				lastArrival = a
			}
		}
	}
	hotStats := hot.Stats()

	cool := New(m)
	var coolLast simtime.Time
	for y := 0; y < 4; y++ {
		for x := 0; x < 5; x += 2 {
			a := cool.Transfer(Coord{X: x, Y: y}, Coord{X: x + 1, Y: y}, 512, 0)
			if a > coolLast {
				coolLast = a
			}
		}
	}
	if hotStats.Contended == 0 {
		t.Fatal("hotspot produced no contention")
	}
	if cool.Stats().Contended != 0 {
		t.Fatal("disjoint traffic contended")
	}
	if lastArrival <= coolLast {
		t.Fatalf("hotspot last arrival %v not later than disjoint %v", lastArrival, coolLast)
	}
	if hotStats.Queued <= 0 {
		t.Fatal("no queueing time recorded at the hotspot")
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	n := New(timing.Default())
	n.Transfer(Coord{X: 0, Y: 0}, Coord{X: 3, Y: 2}, 96, 0)
	st := n.Stats()
	if st.Transfers != 1 || st.TotalBytes != 96 || st.TotalHops != 5 {
		t.Fatalf("stats = %+v", st)
	}
	n.Reset()
	if st := n.Stats(); st.Transfers != 0 || st.TotalBytes != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}
