package core

import (
	"scc/internal/rcce"
	"scc/internal/scc"
)

// This file implements the hardware-specific Allreduce of Sec. IV-D:
// the bucket/ring algorithm operating directly on the MPBs (Fig. 8). A
// core's partial result lives in its own MPB; the right neighbor feeds
// the reduction operator straight from that MPB instead of staging the
// block through private memory. Each MPB data region is split in half
// for double buffering, so a core can fill one buffer while its right
// neighbor still reads the other; sent/ready flag pairs per buffer half
// implement the same handshake as the non-blocking primitives.
//
// On the real (bug-afflicted) SCC the local MPB write costs 45 core
// cycles + 8 mesh cycles instead of 15 core cycles, which is why the
// paper measures only ~10% over the lightweight balanced version; set
// timing.Model.HardwareBugFixed to probe the paper's prediction that the
// fixed hardware would show "significantly higher speedups".

// mpbRing carries the per-call state of the MPB-direct ring.
type mpbRing struct {
	ue          *rcce.UE
	left, right int
	bufOff      [2]int // my two MPB buffer halves (global offsets)
	leftBufOff  [2]int // left neighbor's buffer halves
	// announced counts how often each of my buffer halves has been
	// handed to the right neighbor, to know when an overwrite must wait
	// for the consumed (ready) flag. waited counts how many of those
	// hand-offs have been acknowledged-and-cleared; the difference is
	// drained before the collective returns so no stale ready flag
	// leaks into the next call.
	announced [2]int
	waited    [2]int
}

func newMPBRing(ue *rcce.UE) mpbRing {
	comm := ue.Comm()
	p := ue.NumUEs()
	me := ue.ID()
	half := comm.DataBytes() / 2
	// Align the second half down to a line boundary.
	line := ue.Core().Chip().Model.CacheLineBytes
	half = half / line * line
	left, right := mod(me-1, p), mod(me+1, p)
	return mpbRing{
		ue:    ue,
		left:  left,
		right: right,
		bufOff: [2]int{
			comm.DataBase(me),
			comm.DataBase(me) + half,
		},
		leftBufOff: [2]int{
			comm.DataBase(left),
			comm.DataBase(left) + half,
		},
	}
}

// sentFlagToRight returns my sent flag for buffer half b in the right
// neighbor's MPB; readyFlagFromRight is where the right neighbor
// acknowledges consumption in my MPB. Mirrored helpers address the left
// neighbor's flags.
func (r *mpbRing) sentFlagToRight(b int) int {
	return r.ue.Comm().FlagAddr(r.right, r.ue.ID(), rcce.FlagMPBSent0+b)
}

func (r *mpbRing) readyFlagFromRight(b int) int {
	return r.ue.Comm().FlagAddr(r.ue.ID(), r.right, rcce.FlagMPBReady0+b)
}

func (r *mpbRing) sentFlagFromLeft(b int) int {
	return r.ue.Comm().FlagAddr(r.ue.ID(), r.left, rcce.FlagMPBSent0+b)
}

func (r *mpbRing) readyFlagToLeft(b int) int {
	return r.ue.Comm().FlagAddr(r.left, r.ue.ID(), rcce.FlagMPBReady0+b)
}

// reserveBuffer blocks until my buffer half b may be overwritten (the
// right neighbor has consumed its previous content), then marks it as
// about to be announced again.
func (r *mpbRing) reserveBuffer(b int) {
	core := r.ue.Core()
	if r.announced[b] > r.waited[b] {
		core.WaitFlag(r.readyFlagFromRight(b), 1)
		core.SetFlag(r.readyFlagFromRight(b), 0)
		r.waited[b]++
	}
}

// drain collects every acknowledgement still owed by the right neighbor
// so the pair flags are all zero when the collective returns (required
// for back-to-back calls).
func (r *mpbRing) drain() {
	core := r.ue.Core()
	for b := 0; b < 2; b++ {
		for r.announced[b] > r.waited[b] {
			core.WaitFlag(r.readyFlagFromRight(b), 1)
			core.SetFlag(r.readyFlagFromRight(b), 0)
			r.waited[b]++
		}
	}
}

// announce signals the right neighbor that buffer half b holds fresh
// data.
func (r *mpbRing) announce(b int) {
	r.ue.Core().SetFlag(r.sentFlagToRight(b), 1)
	r.announced[b]++
}

// consumeLeft waits for fresh data in the left neighbor's buffer half b.
// Call ackLeft after the data has been read.
func (r *mpbRing) consumeLeft(b int) {
	core := r.ue.Core()
	core.WaitFlag(r.sentFlagFromLeft(b), 1)
	core.SetFlag(r.sentFlagFromLeft(b), 0)
}

func (r *mpbRing) ackLeft(b int) {
	r.ue.Core().SetFlag(r.readyFlagToLeft(b), 1)
}

// allreduceMPB is the Sec. IV-D Allreduce. The reduce-scatter phase keeps
// partials in MPB buffers (the reduction reads the left neighbor's MPB
// directly and writes the local MPB); the allgather phase forwards
// finished blocks MPB-to-MPB while each core also lands them in its
// private result vector. Only reached on the full-chip, fault-free path
// (grp == nil, Recovery == nil).
func (x *Ctx) allreduceMPB(src, dst scc.Addr, n int, op Op) error {
	ue := x.ue
	core := ue.Core()
	m := core.Chip().Model
	p := ue.NumUEs()
	me := ue.ID()
	blocks := x.partitionFor(n, p, true) // Sec. IV-D builds on all prior optimizations
	if p == 1 {
		x.copyPriv(dst, src, n)
		return nil
	}
	if maxBlockLen(blocks)*8 > ue.Comm().DataBytes()/2 {
		// Blocks must fit a double-buffer half; fall back to the
		// lightweight balanced path for oversized vectors. The fallback
		// context runs the paper heuristic (Selector nil): a Fixed("mpb")
		// selector must not re-enter this function.
		cfg := x.cfg
		cfg.MPBDirect = false
		cfg.Selector = nil
		fallback := &Ctx{ue: ue, ep: x.ep, cfg: cfg, scratchLen: -1}
		return fallback.Allreduce(src, dst, n, op)
	}
	ring := newMPBRing(ue)
	// Each ring round still runs the lightweight handshake state machine
	// (post a send announcement, wait for the neighbor's flags), so the
	// per-round software cost of the lightweight primitives remains; the
	// MPB optimization removes only the private-memory staging copies.
	roundSoftware := m.OverheadLightweightPost + m.OverheadLightweightWait

	// --- Phase 1: reduce-scatter on MPBs ---
	// Round r: my partial for block (me-1-r) sits in buffer r%2 and is
	// consumed by the right neighbor; I combine the left neighbor's
	// buffer r%2 with my input block (me-2-r) into buffer (r+1)%2.
	for r := 0; r < p-1; r++ {
		core.OverheadCycles(roundSoftware)
		b := r % 2
		if r == 0 {
			// Seed: copy my raw input block (me-1) into buffer 0.
			seed := blocks[mod(me-1, p)]
			ring.reserveBuffer(0)
			ue.Put(src+scc.Addr(8*seed.Off), ring.bufOff[0], 8*seed.Len)
			ring.announce(0)
		}
		recvIdx := mod(me-2-r, p)
		rb := blocks[recvIdx]
		nb := (r + 1) % 2
		ring.consumeLeft(b)
		ring.reserveBuffer(nb)
		core.ReduceMPBToMPB(ring.leftBufOff[b], src+scc.Addr(8*rb.Off), ring.bufOff[nb], rb.Len, op)
		ring.ackLeft(b)
		// After the final round, buffer nb holds my finished block and
		// this announcement doubles as the first allgather handover.
		ring.announce(nb)
	}

	// My finished block lives in buffer B = (p-1)%2; land it in dst.
	finalBuf := (p - 1) % 2
	myBlock := blocks[me]
	ue.Get(ring.bufOff[finalBuf], dst+scc.Addr(8*myBlock.Off), 8*myBlock.Len)

	// --- Phase 2: allgather, forwarding blocks MPB-to-MPB ---
	// Round g: the left neighbor's buffer (B+g)%2 holds block
	// (me-1-g); I copy it into my buffer (B+g+1)%2 (to forward) and
	// into my private dst. The final round needs no forwarding.
	buf := scratchF64(&x.gatherBuf, maxBlockLen(blocks))
	for g := 0; g < p-1; g++ {
		core.OverheadCycles(roundSoftware)
		b := (finalBuf + g) % 2
		nb := (finalBuf + g + 1) % 2
		blkIdx := mod(me-1-g, p)
		blk := blocks[blkIdx]
		ring.consumeLeft(b)
		// One remote read of the block; the data then fans out to the
		// forwarding buffer and the private result without re-reading.
		v := buf[:blk.Len]
		core.MPBReadF64s(ring.leftBufOff[b], v)
		ring.ackLeft(b)
		if g < p-2 {
			ring.reserveBuffer(nb)
			core.MPBWriteF64s(ring.bufOff[nb], v)
			ring.announce(nb)
		}
		core.WriteF64s(dst+scc.Addr(8*blk.Off), v)
	}
	ring.drain()
	return nil
}
