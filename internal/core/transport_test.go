package core

import (
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

func TestTransportKindStrings(t *testing.T) {
	want := map[TransportKind]string{
		TransportBlocking:    "blocking",
		TransportIRCCE:       "iRCCE",
		TransportLightweight: "lightweight non-blocking",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), w)
		}
	}
	if TransportKind(99).String() == "" {
		t.Error("unknown kind must still stringify")
	}
}

func TestConfigNames(t *testing.T) {
	cases := map[string]Config{
		"blocking":                           ConfigBlocking,
		"iRCCE":                              ConfigIRCCE,
		"lightweight non-blocking":           ConfigLightweight,
		"lightweight non-blocking, balanced": ConfigBalanced,
		"MPB-based Allreduce":                ConfigMPB,
	}
	for want, cfg := range cases {
		if cfg.Name() != want {
			t.Errorf("Name() = %q, want %q", cfg.Name(), want)
		}
	}
	if len(Configs()) != 5 {
		t.Fatalf("Configs() returned %d entries, want 5", len(Configs()))
	}
}

func TestNewEndpointUnknownKindPanics(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown transport kind")
		}
	}()
	NewEndpoint(comm.UE(0), TransportKind(42))
}

// exchangeRing runs one full ring round on every core with the given
// transport and returns the end-to-end time plus the received data.
func exchangeRing(t *testing.T, kind TransportKind, n int) (simtime.Time, [][]float64) {
	t.Helper()
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	out := make([][]float64, 48)
	chip.Launch(func(c *scc.Core) {
		ue := comm.UE(c.ID)
		ep := NewEndpoint(ue, kind)
		p := ue.NumUEs()
		right, left := (c.ID+1)%p, (c.ID+p-1)%p
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(c.ID)*100 + float64(i)
		}
		c.WriteF64s(src, v)
		ep.Exchange(right, src, 8*n, left, dst, 8*n)
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		out[c.ID] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	return chip.Now(), out
}

func TestExchangeCorrectAcrossTransports(t *testing.T) {
	for _, kind := range []TransportKind{TransportBlocking, TransportIRCCE, TransportLightweight} {
		_, out := exchangeRing(t, kind, 40)
		for me := 0; me < 48; me++ {
			left := (me + 47) % 48
			for i := 0; i < 40; i++ {
				want := float64(left)*100 + float64(i)
				if out[me][i] != want {
					t.Fatalf("%v: core %d elem %d = %v, want %v", kind, me, i, out[me][i], want)
				}
			}
		}
	}
}

func TestBlockingExchangeSlowerThanNonBlocking(t *testing.T) {
	// The odd-even double phase makes the blocking ring round strictly
	// slower than the overlapped non-blocking one (the Fig. 4 vs Fig. 5
	// difference).
	blk, _ := exchangeRing(t, TransportBlocking, 64)
	lw, _ := exchangeRing(t, TransportLightweight, 64)
	if lw >= blk {
		t.Fatalf("lightweight round (%v) not faster than blocking (%v)", lw, blk)
	}
}

func TestExchangePairSymmetric(t *testing.T) {
	// Pairwise symmetric exchange between same-parity partners (the case
	// odd-even cannot handle) must complete under every transport.
	for _, kind := range []TransportKind{TransportBlocking, TransportIRCCE, TransportLightweight} {
		chip := scc.New(timing.Default())
		comm := rcce.NewComm(chip)
		got := make([]float64, 2)
		// Cores 2 and 4: same parity.
		for _, pair := range [][2]int{{2, 4}} {
			a, b := pair[0], pair[1]
			chip.LaunchOne(a, func(c *scc.Core) {
				ue := comm.UE(a)
				ep := NewEndpoint(ue, kind)
				src := c.AllocF64(1)
				dst := c.AllocF64(1)
				c.WriteF64s(src, []float64{float64(a)})
				ep.ExchangePair(b, src, 8, dst, 8)
				v := make([]float64, 1)
				c.ReadF64s(dst, v)
				got[0] = v[0]
			})
			chip.LaunchOne(b, func(c *scc.Core) {
				ue := comm.UE(b)
				ep := NewEndpoint(ue, kind)
				src := c.AllocF64(1)
				dst := c.AllocF64(1)
				c.WriteF64s(src, []float64{float64(b)})
				ep.ExchangePair(a, src, 8, dst, 8)
				v := make([]float64, 1)
				c.ReadF64s(dst, v)
				got[1] = v[0]
			})
		}
		if err := chip.Run(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got[0] != 4 || got[1] != 2 {
			t.Fatalf("%v: pair exchange wrong: %v", kind, got)
		}
	}
}
