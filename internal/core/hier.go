package core

import (
	"fmt"

	"scc/internal/fabric"
	"scc/internal/rcce"
	"scc/internal/scc"
)

// Hierarchical collectives: a multi-chip system composes any registered
// intra-chip algorithm with an inter-chip exchange over the fabric —
// reduce inside each chip, exchange the per-chip partials between
// gateway cores (core 0 of every chip), broadcast the global result
// back inside each chip. Because the composition is itself a registered
// algorithm ("hier"), the tuner, metrics breakdowns, trace spans and
// the self-healing wrapper all see it like any other algorithm.

// Fabric describes a context's place in a multi-chip fabric.System.
// The same value is shared by every core of one chip.
type Fabric struct {
	// Port is the chip's fabric endpoint.
	Port *fabric.Port
	// Chip is this chip's index, Chips the system size.
	Chip, Chips int
	// Intra optionally forces the intra-chip algorithm by registry name
	// ("ring", "tree", ...); empty means the context's own selector (or
	// the paper heuristic) picks per phase.
	Intra string
}

// ErrCrossChip marks collectives with no hierarchical implementation:
// on a multi-chip context only Allreduce, Broadcast and Barrier span
// chips; the rest return this typed error instead of silently running
// chip-local.
var ErrCrossChip = fmt.Errorf("%w: collective does not span chips", ErrInvalid)

// NewCtxFabric builds a collectives context for one core of a
// multi-chip system. With a nil fabric (or a single chip) it degrades
// to the plain full-chip context.
func NewCtxFabric(ue *rcce.UE, cfg Config, f *Fabric) (*Ctx, error) {
	if f == nil || f.Chips <= 1 {
		return NewCtx(ue, cfg), nil
	}
	if f.Port == nil {
		return nil, fmt.Errorf("core: %w: fabric context needs a port", ErrInvalid)
	}
	if f.Chip < 0 || f.Chip >= f.Chips {
		return nil, fmt.Errorf("core: %w: chip %d outside [0,%d)", ErrInvalid, f.Chip, f.Chips)
	}
	if f.Intra != "" && LookupAlgorithm(KindAllreduce, f.Intra) == nil {
		return nil, fmt.Errorf("core: %w: unknown intra-chip algorithm %q (have %v)",
			ErrInvalid, f.Intra, AlgorithmNames(KindAllreduce))
	}
	cfg = cfg.withSelfHealDefaults()
	x := &Ctx{ue: ue, ep: newEndpoint(ue, cfg), cfg: cfg, scratchLen: -1, fab: f}
	x.adoptScratch()
	if cfg.SelfHeal != nil {
		x.healer = NewHealer(ue, *cfg.SelfHeal)
	}
	return x, nil
}

// Fabric returns the context's fabric placement, or nil on single-chip
// contexts.
func (x *Ctx) Fabric() *Fabric { return x.fab }

// multiChip reports whether collectives must span chips.
func (x *Ctx) multiChip() bool { return x.fab != nil && x.fab.Chips > 1 }

// GlobalNP returns the system-wide rank count (all chips).
func (x *Ctx) GlobalNP() int {
	if x.multiChip() {
		return x.fab.Chips * x.ue.NumUEs()
	}
	return x.np()
}

// hierAlg is the sixth-layer composition. Applicable only on fabric
// contexts spanning more than one chip, where the dispatcher forces it;
// on single-chip contexts the tuner and selectors skip it.
type hierAlg struct{}

func (hierAlg) Name() string { return "hier" }
func (hierAlg) Describe() string {
	return "hierarchical multi-chip composition: intra-chip reduce, gateway fabric exchange, intra-chip broadcast"
}
func (hierAlg) Applicable(x *Ctx, n int) bool { return x.multiChip() }

// inner returns the chip-local sub-context the intra-chip phases run
// on: same UE, transport and healer, no fabric, optionally a forced
// intra-chip algorithm. Built once per Ctx and cached — its scratch
// then persists across calls just like the parent's.
func (x *Ctx) inner() *Ctx {
	if x.hierInner == nil {
		in := *x
		in.fab = nil
		if x.fab != nil && x.fab.Intra != "" {
			in.cfg.Selector = Fixed(x.fab.Intra)
		}
		// Fresh scratch: the parent's buffers may be live mid-call.
		in.vecA, in.vecB, in.gatherBuf = nil, nil, nil
		in.blocksBuf, in.partBuf = nil, nil
		in.partN, in.partP, in.partBal = 0, 0, false
		in.scratchLen = -1
		in.scrNode = nil
		in.hierInner = nil
		x.hierInner = &in
	}
	return x.hierInner
}

// gatewayExchange combines the chip-local partial at dst (n elements)
// across chips through the fabric and leaves the global result at dst.
// Gateway (core 0) only. Chip 0 is the hub: it collects every other
// chip's partial, reduces them in order (deterministic for any op, even
// a non-commutative one), and ships the result back.
func (x *Ctx) gatewayExchange(dst scc.Addr, n int, op Op) {
	f := x.fab
	core := x.ue.Core()
	v := scratchF64(&x.gatherBuf, n)
	core.ReadF64s(dst, v)
	if f.Chip == 0 {
		r := scratchF64(&x.vecB, n)
		for c := 1; c < f.Chips; c++ {
			f.Port.Recv(core, c, r)
			core.ComputeCycles(core.Chip().Model.ReducePerElementCoreCycles * int64(n))
			for i := range v {
				v[i] = op(v[i], r[i])
			}
		}
		for c := 1; c < f.Chips; c++ {
			f.Port.Send(core, c, v)
		}
	} else {
		f.Port.Send(core, 0, v)
		f.Port.Recv(core, 0, v)
	}
	core.WriteF64s(dst, v)
}

func (hierAlg) Allreduce(x *Ctx, src, dst scc.Addr, n int, op Op) error {
	in := x.inner()
	if err := in.Allreduce(src, dst, n, op); err != nil {
		return err
	}
	if x.ue.ID() == 0 && n > 0 {
		x.gatewayExchange(dst, n, op)
	}
	// Intra-chip broadcast of the global result from the gateway. For
	// n == 0 this still runs (a no-op data-wise) so every rank leaves
	// the collective having synchronized with its gateway.
	return in.Broadcast(0, dst, n)
}

func (hierAlg) Broadcast(x *Ctx, root int, addr scc.Addr, n int) error {
	f := x.fab
	in := x.inner()
	perChip := x.ue.NumUEs()
	rootChip, localRoot := root/perChip, root%perChip
	core := x.ue.Core()
	if f.Chip == rootChip {
		if err := in.Broadcast(localRoot, addr, n); err != nil {
			return err
		}
		if x.ue.ID() == 0 {
			v := scratchF64(&x.gatherBuf, n)
			core.ReadF64s(addr, v)
			for c := 0; c < f.Chips; c++ {
				if c != f.Chip {
					f.Port.Send(core, c, v)
				}
			}
		}
		return nil
	}
	if x.ue.ID() == 0 {
		v := scratchF64(&x.gatherBuf, n)
		f.Port.Recv(core, rootChip, v)
		core.WriteF64s(addr, v)
	}
	return in.Broadcast(0, addr, n)
}

// hierBarrier is the multi-chip barrier: intra-chip barrier (arrival),
// a zero-payload gateway token exchange through chip 0, then a second
// intra-chip barrier (release). Dispatched from barrierBody, not the
// registry — Barrier has no algorithm selection.
func (x *Ctx) hierBarrier() error {
	in := x.inner()
	if err := in.Barrier(); err != nil {
		return err
	}
	if x.ue.ID() == 0 {
		f := x.fab
		core := x.ue.Core()
		if f.Chip == 0 {
			for c := 1; c < f.Chips; c++ {
				f.Port.Recv(core, c, nil)
			}
			for c := 1; c < f.Chips; c++ {
				f.Port.Send(core, c, nil)
			}
		} else {
			f.Port.Send(core, 0, nil)
			f.Port.Recv(core, 0, nil)
		}
	}
	return in.Barrier()
}
