package core

import "scc/internal/scc"

// Short-message variants. RCCE_comm "contains the most complete suite of
// collective operations currently available for the SCC, including
// variants for different message sizes" (Sec. III): for vectors too
// short to amortize the 47-round scatter/ring structure, binomial trees
// ([8], [9]) finish in ceil(log2 p) levels. Broadcast and Reduce select
// the tree below the threshold; above it they use the block-partitioned
// long-message algorithms of Sec. IV.

// shortMessageThresholdBytes separates the tree variants from the
// scatter/ring variants. Below ~one cache line per block the ring's
// per-round handshakes dominate any bandwidth advantage.
const shortMessageThresholdBytes = 512

// BroadcastTree distributes n float64 values from root (a core ID) along
// a binomial tree, regardless of size.
func (x *Ctx) BroadcastTree(root int, addr scc.Addr, n int) error {
	if err := checkCount("BroadcastTree", n); err != nil {
		return err
	}
	rootR, err := x.rootRank("BroadcastTree", root)
	if err != nil {
		return err
	}
	p := x.np()
	me := x.rank()
	if p == 1 || n == 0 {
		return nil
	}
	vrank := mod(me-rootR, p)
	if vrank != 0 {
		// Find my lowest set bit: the parent holds the rest.
		mask := 1
		for vrank&mask == 0 {
			mask <<= 1
		}
		parent := x.member(mod(rootR+(vrank&^mask), p))
		if err := x.ep.Recv(parent, addr, 8*n); err != nil {
			return err
		}
		// Forward to my subtree (bits below my lowest set bit).
		for mask >>= 1; mask > 0; mask >>= 1 {
			if child := vrank | mask; child < p {
				if err := x.ep.Send(x.member(mod(rootR+child, p)), addr, 8*n); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Root: highest subtree first.
	mask := 1
	for mask < p {
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if mask < p {
			if err := x.ep.Send(x.member(mod(rootR+mask, p)), addr, 8*n); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReduceTree reduces to root (a core ID) along a binomial tree: each
// inner node combines its children's partials before forwarding one
// message up. dst is only meaningful on the root; src is left untouched.
func (x *Ctx) ReduceTree(root int, src, dst scc.Addr, n int, op Op) error {
	if err := checkCount("ReduceTree", n); err != nil {
		return err
	}
	rootR, err := x.rootRank("ReduceTree", root)
	if err != nil {
		return err
	}
	p := x.np()
	me := x.rank()
	if p == 1 {
		x.copyPriv(dst, src, n)
		return nil
	}
	vrank := mod(me-rootR, p)
	x.ensureScratch(n)
	acc := x.curAddr
	x.copyPriv(acc, src, n)

	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			parent := x.member(mod(rootR+(vrank&^mask), p))
			return x.ep.Send(parent, acc, 8*n)
		}
		if child := vrank | mask; child < p {
			if err := x.ep.Recv(x.member(mod(rootR+child, p)), x.rbufAddr, 8*n); err != nil {
				return err
			}
			x.reduceInto(acc, acc, x.rbufAddr, n, op)
		}
		mask <<= 1
	}
	x.copyPriv(dst, acc, n)
	return nil
}

// shortMessage reports whether the tree variants should handle a vector
// of n float64 values.
func (x *Ctx) shortMessage(n int) bool {
	return 8*n < shortMessageThresholdBytes
}
