package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

// irregularBlocks builds a contiguous layout with random per-rank sizes.
func irregularBlocks(p int, rng *rand.Rand, maxLen int) []Block {
	blocks := make([]Block, p)
	off := 0
	for i := range blocks {
		l := rng.Intn(maxLen + 1)
		blocks[i] = Block{Off: off, Len: l}
		off += l
	}
	return blocks
}

func totalLen(blocks []Block) int {
	n := 0
	for _, b := range blocks {
		n += b.Len
	}
	return n
}

func TestAllgatherVIrregular(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	blocks := irregularBlocks(48, rng, 9)
	n := totalLen(blocks)
	out := make([][]float64, 48)
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), ConfigLightweight)
		b := blocks[c.ID]
		src := c.AllocF64(b.Len + 1)
		dst := c.AllocF64(n)
		v := make([]float64, b.Len)
		for i := range v {
			v[i] = float64(c.ID)*100 + float64(i)
		}
		c.WriteF64s(src, v)
		x.AllgatherV(src, blocks, dst)
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		out[c.ID] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for me := 0; me < 48; me++ {
		for q, b := range blocks {
			for i := 0; i < b.Len; i++ {
				want := float64(q)*100 + float64(i)
				if out[me][b.Off+i] != want {
					t.Fatalf("core %d block %d elem %d = %v, want %v",
						me, q, i, out[me][b.Off+i], want)
				}
			}
		}
	}
}

func TestAlltoallVIrregular(t *testing.T) {
	// sendBlocks[me][q].Len must equal recvBlocks[q][me].Len; build a
	// symmetric random count matrix counts[s][d].
	p := 48
	rng := rand.New(rand.NewSource(12))
	counts := make([][]int, p)
	for s := range counts {
		counts[s] = make([]int, p)
		for d := range counts[s] {
			counts[s][d] = rng.Intn(4)
		}
	}
	layout := func(row []int) []Block {
		blocks := make([]Block, p)
		off := 0
		for i, l := range row {
			blocks[i] = Block{Off: off, Len: l}
			off += l
		}
		return blocks
	}
	out := make([][]float64, p)
	recvLayouts := make([][]Block, p)
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.Launch(func(c *scc.Core) {
		me := c.ID
		x := NewCtx(comm.UE(me), ConfigLightweight)
		sendBlocks := layout(counts[me])
		recvCounts := make([]int, p)
		for q := 0; q < p; q++ {
			recvCounts[q] = counts[q][me]
		}
		recvBlocks := layout(recvCounts)
		recvLayouts[me] = recvBlocks

		ns, nr := totalLen(sendBlocks), totalLen(recvBlocks)
		src := c.AllocF64(ns + 1)
		dst := c.AllocF64(nr + 1)
		v := make([]float64, ns)
		for q, b := range sendBlocks {
			for i := 0; i < b.Len; i++ {
				v[b.Off+i] = float64(me)*1000 + float64(q)*10 + float64(i)
			}
		}
		c.WriteF64s(src, v)
		x.AlltoallV(src, sendBlocks, dst, recvBlocks)
		got := make([]float64, nr)
		c.ReadF64s(dst, got)
		out[me] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for me := 0; me < p; me++ {
		for q, b := range recvLayouts[me] {
			for i := 0; i < b.Len; i++ {
				want := float64(q)*1000 + float64(me)*10 + float64(i)
				if math.Abs(out[me][b.Off+i]-want) > 1e-12 {
					t.Fatalf("core %d from %d elem %d = %v, want %v",
						me, q, i, out[me][b.Off+i], want)
				}
			}
		}
	}
}

func TestGatherVScatterVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	blocks := irregularBlocks(48, rng, 7)
	n := totalLen(blocks)
	var before, after []float64
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), ConfigBalanced)
		b := blocks[c.ID]
		full := c.AllocF64(n + 1)
		mine := c.AllocF64(b.Len + 1)
		back := c.AllocF64(n + 1)
		if c.ID == 0 {
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(i) + 0.25
			}
			c.WriteF64s(full, v)
			before = v
		}
		x.ScatterV(0, full, blocks, mine)
		x.GatherV(0, mine, blocks, back)
		if c.ID == 0 {
			after = make([]float64, n)
			c.ReadF64s(back, after)
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("round trip corrupted at %d", i)
		}
	}
}

func TestVectorVariantsValidate(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	var gotErr error
	chip.LaunchOne(0, func(c *scc.Core) {
		x := NewCtx(comm.UE(0), ConfigLightweight)
		src := c.AllocF64(4)
		dst := c.AllocF64(4)
		gotErr = x.AllgatherV(src, []Block{{0, 1}}, dst) // wrong count
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrInvalid) {
		t.Fatalf("malformed block layout: got %v, want ErrInvalid", gotErr)
	}
	// Negative geometry is rejected too.
	chip2 := scc.New(timing.Default())
	comm2 := rcce.NewComm(chip2)
	chip2.LaunchOne(0, func(c *scc.Core) {
		x := NewCtx(comm2.UE(0), ConfigLightweight)
		src := c.AllocF64(4)
		dst := c.AllocF64(4)
		gotErr = x.AllgatherV(src, []Block{{Off: -1, Len: 1}}, dst)
	})
	if err := chip2.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrInvalid) {
		t.Fatalf("negative geometry: got %v, want ErrInvalid", gotErr)
	}
}
