package core

import (
	"errors"
	"testing"

	"scc/internal/fabric"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// Topology and hierarchy tests: the cross-algorithm equivalence
// property must hold on any mesh geometry, and the multi-chip
// hierarchical composition must compute the same bits as a flat
// sequential reference for every registered intra-chip algorithm,
// deterministically.

// TestTopologyCrossAlgorithmEquivalence re-runs the cross-algorithm
// bit-equivalence sweep on non-default geometries: a 4x4 mesh of
// single-core tiles (16 cores, one flag line) and an 8x8 mesh of
// dual-core tiles (128 cores, two flag lines and a grown MPB).
func TestTopologyCrossAlgorithmEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, g := range []struct{ rows, cols, per int }{
		{4, 4, 1},
		{8, 8, 2},
	} {
		model := timing.Topology(g.rows, g.cols, g.per)
		cores := model.NumCores()
		root := cores/2 + 1 // off-gateway, off-center
		for _, k := range OpKinds() {
			for _, algo := range AlgorithmNames(k) {
				if algo == "hier" {
					continue // never applicable on a single chip
				}
				for _, n := range []int{3, 64} {
					in := dyadicInputs(int64(100000*g.rows*g.per+1000*int(k)+n), cores, n)
					want := reference(k, root, cores, in)

					now1, got1 := crossRun(t, model, k, algo, n, root, in)
					now2, got2 := crossRun(t, model, k, algo, n, root, in)

					if now1 != now2 {
						t.Errorf("%dx%dx%d %s[%s] n=%d: nondeterministic virtual time %v vs %v",
							g.rows, g.cols, g.per, k, algo, n, now1, now2)
					}
					if !sameResults(got1, got2) {
						t.Errorf("%dx%dx%d %s[%s] n=%d: nondeterministic results across identical runs",
							g.rows, g.cols, g.per, k, algo, n)
					}
					for c := range want {
						if want[c] == nil {
							continue
						}
						if got1[c] == nil {
							t.Errorf("%dx%dx%d %s[%s] n=%d: core %d missing result",
								g.rows, g.cols, g.per, k, algo, n, c)
							continue
						}
						for i := range want[c] {
							if got1[c][i] != want[c][i] {
								t.Errorf("%dx%dx%d %s[%s] n=%d: core %d elem %d = %v, want %v (bit-exact)",
									g.rows, g.cols, g.per, k, algo, n, c, i, got1[c][i], want[c][i])
								break
							}
						}
					}
				}
			}
		}
	}
}

// hierRun executes one collective across a multi-chip system with the
// given forced intra-chip algorithm and returns the final virtual time
// plus per-global-rank results.
func hierRun(t *testing.T, model *timing.Model, chips int, intra string, k OpKind, n, root int, in [][]float64) (simtime.Time, [][]float64) {
	t.Helper()
	sys := fabric.New(model, chips)
	perChip := model.NumCores()
	results := make([][]float64, chips*perChip)
	for ci := 0; ci < chips; ci++ {
		ci := ci
		comm := rcce.NewComm(sys.Chips[ci])
		port := sys.Port(ci)
		sys.Chips[ci].Launch(func(c *scc.Core) {
			gid := ci*perChip + c.ID
			x, err := NewCtxFabric(comm.UE(c.ID), ConfigBalanced, &Fabric{
				Port: port, Chip: ci, Chips: chips, Intra: intra,
			})
			if err != nil {
				t.Errorf("chip %d core %d: NewCtxFabric: %v", ci, c.ID, err)
				return
			}
			src := c.AllocF64(n)
			dst := c.AllocF64(n)
			c.WriteF64s(src, in[gid])
			switch k {
			case KindAllreduce:
				err = x.Allreduce(src, dst, n, Sum)
			case KindBroadcast:
				err = x.Broadcast(root, src, n)
				dst = src
			default:
				t.Errorf("hierRun does not support %s", k)
				return
			}
			if err != nil {
				t.Errorf("%s[hier/%s] n=%d rank %d: %v", k, intra, n, gid, err)
				return
			}
			got := make([]float64, n)
			c.ReadF64s(dst, got)
			results[gid] = got
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("%s[hier/%s] n=%d: %v", k, intra, n, err)
	}
	return sys.Engine.Now(), results
}

// TestHierarchicalAllreduceMatchesFlat: a 2-chip hierarchical Allreduce
// must produce the flat sequential sum on every rank, bit-exactly, for
// every registered allreduce algorithm as the intra-chip phase, and be
// deterministic in both values and virtual time.
func TestHierarchicalAllreduceMatchesFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	const chips = 2
	model := timing.Default()
	total := chips * model.NumCores()
	for _, intra := range AlgorithmNames(KindAllreduce) {
		if intra == "hier" {
			continue // the composition itself is not an intra-chip phase
		}
		for _, n := range []int{1, 160} {
			in := dyadicInputs(int64(7000+n), total, n)
			want := reference(KindAllreduce, 0, total, in)

			now1, got1 := hierRun(t, model, chips, intra, KindAllreduce, n, 0, in)
			now2, got2 := hierRun(t, model, chips, intra, KindAllreduce, n, 0, in)

			if now1 != now2 {
				t.Errorf("hier/%s n=%d: nondeterministic virtual time %v vs %v", intra, n, now1, now2)
			}
			if !sameResults(got1, got2) {
				t.Errorf("hier/%s n=%d: nondeterministic results across identical runs", intra, n)
			}
			for r := range want {
				if got1[r] == nil {
					t.Errorf("hier/%s n=%d: rank %d missing result", intra, n, r)
					continue
				}
				for i := range want[r] {
					if got1[r][i] != want[r][i] {
						t.Errorf("hier/%s n=%d: rank %d elem %d = %v, want %v (bit-exact)",
							intra, n, r, i, got1[r][i], want[r][i])
						break
					}
				}
			}
		}
	}
}

// TestHierarchicalBroadcastRemoteRoot: a global root living on a
// non-hub chip must reach every rank of every chip.
func TestHierarchicalBroadcastRemoteRoot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	const chips = 3
	model := timing.Default()
	total := chips * model.NumCores()
	root := model.NumCores() + 7 // chip 1, local rank 7
	n := 48
	in := dyadicInputs(9001, total, n)
	want := reference(KindBroadcast, root, total, in)
	_, got := hierRun(t, model, chips, "tree", KindBroadcast, n, root, in)
	for r := range want {
		if got[r] == nil {
			t.Fatalf("rank %d missing result", r)
		}
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestHierarchicalBarrierAndCrossChipTyped: the multi-chip Barrier
// completes (no rank proceeds before the last arrives, enforced by the
// token exchange), and the collectives without a hierarchical
// implementation fail with the typed ErrCrossChip instead of silently
// running chip-local.
func TestHierarchicalBarrierAndCrossChipTyped(t *testing.T) {
	const chips = 2
	model := timing.Default()
	sys := fabric.New(model, chips)
	for ci := 0; ci < chips; ci++ {
		ci := ci
		comm := rcce.NewComm(sys.Chips[ci])
		port := sys.Port(ci)
		sys.Chips[ci].Launch(func(c *scc.Core) {
			x, err := NewCtxFabric(comm.UE(c.ID), ConfigBalanced, &Fabric{
				Port: port, Chip: ci, Chips: chips,
			})
			if err != nil {
				t.Errorf("chip %d core %d: %v", ci, c.ID, err)
				return
			}
			if err := x.Barrier(); err != nil {
				t.Errorf("chip %d core %d: Barrier: %v", ci, c.ID, err)
			}
			src := c.AllocF64(8)
			dst := c.AllocF64(8)
			if err := x.Reduce(0, src, dst, 8, Sum); !errors.Is(err, ErrCrossChip) {
				t.Errorf("chip %d core %d: Reduce = %v, want ErrCrossChip", ci, c.ID, err)
			}
			if err := x.Allgather(src, 4, dst); !errors.Is(err, ErrCrossChip) {
				t.Errorf("chip %d core %d: Allgather = %v, want ErrCrossChip", ci, c.ID, err)
			}
			// The typed error must also satisfy ErrInvalid for callers
			// filtering on the coarse class.
			if err := x.Barrier(); err != nil {
				t.Errorf("chip %d core %d: second Barrier: %v", ci, c.ID, err)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("system run: %v", err)
	}
	if !errors.Is(ErrCrossChip, ErrInvalid) {
		t.Error("ErrCrossChip must wrap ErrInvalid")
	}
}
