package core

import (
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// These tests lock in the paper's performance *shape*: the relative
// speedups of Sec. IV and the qualitative curve features of Sec. V-A.
// They run the same simulations as the benchmarks but assert tolerance
// bands, so a regression in the protocol code or the timing model fails
// the suite rather than silently bending the figures. The bands are
// generous (the paper itself reports "approximately").

// allreduceLatency measures one warm allreduce at size n.
func allreduceLatency(t *testing.T, model *timing.Model, cfg Config, n int) simtime.Duration {
	t.Helper()
	chip := scc.New(model)
	comm := rcce.NewComm(chip)
	var lat simtime.Duration
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), cfg)
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		x.Allreduce(src, dst, n, Sum) // warm-up
		x.Barrier()
		t0 := c.Now()
		x.Allreduce(src, dst, n, Sum)
		if c.ID == 0 {
			lat = c.Now() - t0
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	return lat
}

func ratio(a, b simtime.Duration) float64 { return float64(a) / float64(b) }

func TestSecIVOptimizationLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	m := timing.Default()
	n := 552
	blocking := allreduceLatency(t, m, ConfigBlocking, n)
	ircce := allreduceLatency(t, m, ConfigIRCCE, n)
	lw := allreduceLatency(t, m, ConfigLightweight, n)
	bal := allreduceLatency(t, m, ConfigBalanced, n)
	mpb := allreduceLatency(t, m, ConfigMPB, n)

	// Sec. IV-A: ~25% from relaxed synchronization.
	if r := ratio(blocking, ircce); r < 1.10 || r > 1.45 {
		t.Errorf("blocking/iRCCE = %.2f, want ~1.25", r)
	}
	// Sec. IV-B: ~65% more from lightweight primitives.
	if r := ratio(ircce, lw); r < 1.45 || r > 1.90 {
		t.Errorf("iRCCE/lightweight = %.2f, want ~1.65", r)
	}
	// Sec. IV-C: ~28% more from balancing at 552 elements.
	if r := ratio(lw, bal); r < 1.15 || r > 1.50 {
		t.Errorf("lightweight/balanced = %.2f, want ~1.28", r)
	}
	// Sec. IV-D: ~10% more from the MPB-direct ring (buggy hardware).
	if r := ratio(bal, mpb); r < 1.00 || r > 1.25 {
		t.Errorf("balanced/MPB = %.2f, want ~1.10", r)
	}
	// Combined: between 2x and 3x at 552 (the text's "factors roughly
	// between 2 to 3").
	if r := ratio(blocking, bal); r < 2.0 || r > 3.2 {
		t.Errorf("combined speedup = %.2f, want 2-3", r)
	}
}

func TestMaxSpeedupNear574(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Sec. V-A: "a maximum of 3.6x is achieved for Allreduce at a vector
	// size of 574 elements" (the worst imbalance point).
	m := timing.Default()
	blocking := allreduceLatency(t, m, ConfigBlocking, 574)
	bal := allreduceLatency(t, m, ConfigBalanced, 574)
	if r := ratio(blocking, bal); r < 3.0 || r > 4.3 {
		t.Errorf("574-element speedup = %.2f, want ~3.6", r)
	}
}

func TestSawtoothEliminatedByBalancing(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Sec. V-A: unbalanced latency is lowest at multiples of 48 and
	// grows toward the next multiple; balanced stays level.
	m := timing.Default()
	lwAt := func(n int) simtime.Duration { return allreduceLatency(t, m, ConfigLightweight, n) }
	balAt := func(n int) simtime.Duration { return allreduceLatency(t, m, ConfigBalanced, n) }

	low, mid, high := lwAt(528), lwAt(552), lwAt(572)
	if !(low < mid && mid < high) {
		t.Errorf("unbalanced sawtooth not rising: %v %v %v", low, mid, high)
	}
	if after := lwAt(576); after >= high {
		t.Errorf("sawtooth did not reset at 576: %v >= %v", after, high)
	}
	bLow, bHigh := balAt(528), balAt(572)
	// Balanced variation across the tooth must be far smaller than the
	// unbalanced swing.
	unbalSwing := float64(high - low)
	balSwing := float64(bHigh - bLow)
	if balSwing < 0 {
		balSwing = -balSwing
	}
	if balSwing > unbalSwing/3 {
		t.Errorf("balanced swing %.0f not flat vs unbalanced %.0f", balSwing, unbalSwing)
	}
}

func TestPeriod4SpikesFromLinePadding(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Sec. V-A: sizes divisible by 4 are the best cases (lower ends of
	// the spikes) because partial cache lines need an extra transfer
	// plus an extra communication call. Compare 600 (aligned) against
	// its unaligned neighbors under the blocking stack.
	m := timing.Default()
	aligned := allreduceLatency(t, m, ConfigBlocking, 600)
	plus1 := allreduceLatency(t, m, ConfigBlocking, 601)
	minus1 := allreduceLatency(t, m, ConfigBlocking, 599)
	if plus1 <= aligned {
		t.Errorf("n=601 (%v) not above aligned n=600 (%v)", plus1, aligned)
	}
	if minus1 <= aligned {
		t.Errorf("n=599 (%v) not above aligned n=600 (%v)", minus1, aligned)
	}
}

func TestBugFixedHardwareUnlocksMPBWin(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Sec. IV-D: "with the hardware bug resolved, we expect to see
	// significantly higher speedups."
	buggy := timing.Default()
	fixed := timing.Default()
	fixed.HardwareBugFixed = true
	rBuggy := ratio(allreduceLatency(t, buggy, ConfigBalanced, 552),
		allreduceLatency(t, buggy, ConfigMPB, 552))
	rFixed := ratio(allreduceLatency(t, fixed, ConfigBalanced, 552),
		allreduceLatency(t, fixed, ConfigMPB, 552))
	if rFixed < rBuggy+0.3 {
		t.Errorf("bug fix gain too small: %.2f -> %.2f", rBuggy, rFixed)
	}
}

func TestMPBDirectUsesLessPrivateTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// The MPB path's whole point (Fig. 7 vs Fig. 8): in-transit blocks
	// never stage through private memory, so the cores issue more MPB
	// traffic but the wall time beats the staged variant.
	m := timing.Default()
	bal := allreduceLatency(t, m, ConfigBalanced, 552)
	mpb := allreduceLatency(t, m, ConfigMPB, 552)
	if mpb >= bal {
		t.Errorf("MPB-direct (%v) not faster than staged (%v)", mpb, bal)
	}
}
