package core

import (
	"math"
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

func TestScatterDelivers(t *testing.T) {
	for _, cfg := range []Config{ConfigBlocking, ConfigBalanced} {
		for _, root := range []int{0, 31} {
			nPer := 7
			out := make([][]float64, 48)
			chip := scc.New(timing.Default())
			comm := rcce.NewComm(chip)
			chip.Launch(func(c *scc.Core) {
				x := NewCtx(comm.UE(c.ID), cfg)
				src := c.AllocF64(48 * nPer)
				dst := c.AllocF64(nPer)
				if c.ID == root {
					v := make([]float64, 48*nPer)
					for q := 0; q < 48; q++ {
						for i := 0; i < nPer; i++ {
							v[q*nPer+i] = float64(q)*10 + float64(i)
						}
					}
					c.WriteF64s(src, v)
				}
				x.Scatter(root, src, nPer, dst)
				got := make([]float64, nPer)
				c.ReadF64s(dst, got)
				out[c.ID] = got
			})
			if err := chip.Run(); err != nil {
				t.Fatalf("%s root=%d: %v", cfg.Name(), root, err)
			}
			for q := 0; q < 48; q++ {
				for i := 0; i < nPer; i++ {
					want := float64(q)*10 + float64(i)
					if out[q][i] != want {
						t.Fatalf("%s root=%d: core %d elem %d = %v, want %v",
							cfg.Name(), root, q, i, out[q][i], want)
					}
				}
			}
		}
	}
}

func TestGatherCollects(t *testing.T) {
	for _, root := range []int{0, 17} {
		nPer := 5
		var got []float64
		chip := scc.New(timing.Default())
		comm := rcce.NewComm(chip)
		chip.Launch(func(c *scc.Core) {
			x := NewCtx(comm.UE(c.ID), ConfigBalanced)
			src := c.AllocF64(nPer)
			dst := c.AllocF64(48 * nPer)
			v := make([]float64, nPer)
			for i := range v {
				v[i] = float64(c.ID) + float64(i)*0.1
			}
			c.WriteF64s(src, v)
			x.Gather(root, src, nPer, dst)
			if c.ID == root {
				got = make([]float64, 48*nPer)
				c.ReadF64s(dst, got)
			}
		})
		if err := chip.Run(); err != nil {
			t.Fatalf("root=%d: %v", root, err)
		}
		for q := 0; q < 48; q++ {
			for i := 0; i < nPer; i++ {
				want := float64(q) + float64(i)*0.1
				if math.Abs(got[q*nPer+i]-want) > 1e-12 {
					t.Fatalf("root=%d: block %d elem %d = %v, want %v", root, q, i, got[q*nPer+i], want)
				}
			}
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	// Scatter then Gather must reproduce the root's original buffer.
	nPer := 11
	var before, after []float64
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), ConfigLightweight)
		src := c.AllocF64(48 * nPer)
		mine := c.AllocF64(nPer)
		back := c.AllocF64(48 * nPer)
		if c.ID == 0 {
			v := make([]float64, 48*nPer)
			for i := range v {
				v[i] = float64(i) * 1.5
			}
			c.WriteF64s(src, v)
			before = v
		}
		x.Scatter(0, src, nPer, mine)
		x.Gather(0, mine, nPer, back)
		if c.ID == 0 {
			after = make([]float64, 48*nPer)
			c.ReadF64s(back, after)
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("round trip corrupted at %d", i)
		}
	}
}

func TestScanPrefixSums(t *testing.T) {
	n := 6
	out := make([][]float64, 48)
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), ConfigBalanced)
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(c.ID + i)
		}
		c.WriteF64s(src, v)
		x.Scan(src, dst, n, Sum)
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		out[c.ID] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 48; k++ {
		for i := 0; i < n; i++ {
			// sum over j<=k of (j+i) = (k+1)*i + k(k+1)/2
			want := float64((k+1)*i) + float64(k*(k+1)/2)
			if math.Abs(out[k][i]-want) > 1e-9 {
				t.Fatalf("scan rank %d elem %d = %v, want %v", k, i, out[k][i], want)
			}
		}
	}
}

func TestTreeVariantsMatchLongVariants(t *testing.T) {
	// Broadcast/Reduce results must be identical regardless of which
	// size variant runs; force both paths with sizes around the
	// threshold (64 doubles = 512 bytes).
	for _, n := range []int{63, 64, 65} {
		var viaAuto, viaTree []float64
		for _, forceTree := range []bool{false, true} {
			chip := scc.New(timing.Default())
			comm := rcce.NewComm(chip)
			out := make([]float64, n)
			chip.Launch(func(c *scc.Core) {
				x := NewCtx(comm.UE(c.ID), ConfigBalanced)
				src := c.AllocF64(n)
				dst := c.AllocF64(n)
				v := make([]float64, n)
				for i := range v {
					v[i] = float64(c.ID) + float64(i)
				}
				c.WriteF64s(src, v)
				if forceTree {
					x.ReduceTree(3, src, dst, n, Sum)
				} else {
					x.Reduce(3, src, dst, n, Sum)
				}
				if c.ID == 3 {
					c.ReadF64s(dst, out)
				}
			})
			if err := chip.Run(); err != nil {
				t.Fatal(err)
			}
			if forceTree {
				viaTree = out
			} else {
				viaAuto = out
			}
		}
		for i := range viaAuto {
			if math.Abs(viaAuto[i]-viaTree[i]) > 1e-9 {
				t.Fatalf("n=%d: tree and auto variants disagree at %d", n, i)
			}
		}
	}
}

func TestShortMessagesUseTreePath(t *testing.T) {
	// For a 1-double Allreduce the tree variant must be far cheaper than
	// the 94-round ring would be; sanity-check the latency is well under
	// the ring's floor (94 rounds x ~4us would exceed 350us).
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	var lat float64
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), ConfigBalanced)
		src := c.AllocF64(1)
		dst := c.AllocF64(1)
		x.Allreduce(src, dst, 1, Sum)
		x.Barrier()
		t0 := c.Now()
		x.Allreduce(src, dst, 1, Sum)
		if c.ID == 0 {
			lat = (c.Now() - t0).Micros()
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if lat > 300 {
		t.Fatalf("1-double allreduce took %.1fus: short-message variant not in effect", lat)
	}
}
