package core

import "scc/internal/scc"

// Scatter and Gather complete the RCCE_comm-style collective suite. Both
// exist in two variants, selected like Broadcast/Reduce: a binomial tree
// for short per-rank blocks (forwarding subtree aggregates) and a simple
// linear root loop for long blocks, where the root's injection bandwidth
// dominates anyway and the tree's extra copies only add latency.

// Scatter distributes block q of the root's src buffer (p blocks of nPer
// elements) to rank q's dst. src is only read on the root.
func (x *Ctx) Scatter(root int, src scc.Addr, nPer int, dst scc.Addr) {
	ue := x.ue
	p := ue.NumUEs()
	me := ue.ID()
	if p == 1 || nPer == 0 {
		if nPer > 0 {
			x.copyPriv(dst, src, nPer)
		}
		return
	}
	if me == root {
		for q := 0; q < p; q++ {
			if q == root {
				x.copyPriv(dst, src+scc.Addr(8*nPer*q), nPer)
				continue
			}
			x.ep.Send(q, src+scc.Addr(8*nPer*q), 8*nPer)
		}
		return
	}
	x.ep.Recv(root, dst, 8*nPer)
}

// Gather collects each rank's nPer-element src block into the root's dst
// buffer (p blocks, rank-ordered). dst is only written on the root.
func (x *Ctx) Gather(root int, src scc.Addr, nPer int, dst scc.Addr) {
	ue := x.ue
	p := ue.NumUEs()
	me := ue.ID()
	if p == 1 || nPer == 0 {
		if nPer > 0 {
			x.copyPriv(dst, src, nPer)
		}
		return
	}
	if me == root {
		for q := 0; q < p; q++ {
			if q == root {
				x.copyPriv(dst+scc.Addr(8*nPer*q), src, nPer)
				continue
			}
			x.ep.Recv(q, dst+scc.Addr(8*nPer*q), 8*nPer)
		}
		return
	}
	x.ep.Send(root, src, 8*nPer)
}

// Scan computes an inclusive prefix reduction: rank k's dst receives
// op(v_0, ..., v_k) element-wise. Implemented as the linear pipeline
// used by small-communicator MPI implementations: rank k receives the
// prefix from k-1, combines its contribution, and forwards to k+1.
func (x *Ctx) Scan(src, dst scc.Addr, n int, op Op) {
	ue := x.ue
	p := ue.NumUEs()
	me := ue.ID()
	x.copyPriv(dst, src, n)
	if p == 1 || n == 0 {
		return
	}
	if me > 0 {
		x.ensureScratch(n)
		x.ep.Recv(me-1, x.rbufAddr, 8*n)
		x.reduceInto(dst, x.rbufAddr, src, n, op)
	}
	if me < p-1 {
		x.ep.Send(me+1, dst, 8*n)
	}
}
