package core

import (
	"fmt"

	"scc/internal/scc"
)

// Scatter and Gather complete the RCCE_comm-style collective suite. Both
// exist in two variants, selected like Broadcast/Reduce: a binomial tree
// for short per-rank blocks (forwarding subtree aggregates) and a simple
// linear root loop for long blocks, where the root's injection bandwidth
// dominates anyway and the tree's extra copies only add latency.

// Scatter distributes block q of the root's src buffer (p blocks of nPer
// elements) to rank q's dst. src is only read on the root.
func (x *Ctx) Scatter(root int, src scc.Addr, nPer int, dst scc.Addr) error {
	if err := checkCount("Scatter", nPer); err != nil {
		return err
	}
	if x.healer != nil {
		return x.healer.run(x, func() error { return x.scatterBody(root, src, nPer, dst) })
	}
	return x.scatterBody(root, src, nPer, dst)
}

func (x *Ctx) scatterBody(root int, src scc.Addr, nPer int, dst scc.Addr) error {
	if x.multiChip() {
		return fmt.Errorf("core: Scatter: %w", ErrCrossChip)
	}
	rootR, err := x.rootRank("Scatter", root)
	if err != nil {
		return err
	}
	p := x.np()
	me := x.rank()
	if p == 1 || nPer == 0 {
		if nPer > 0 {
			x.copyPriv(dst, src, nPer)
		}
		return nil
	}
	if me == rootR {
		for q := 0; q < p; q++ {
			if q == rootR {
				x.copyPriv(dst, src+scc.Addr(8*nPer*q), nPer)
				continue
			}
			if err := x.ep.Send(x.member(q), src+scc.Addr(8*nPer*q), 8*nPer); err != nil {
				return err
			}
		}
		return nil
	}
	return x.ep.Recv(root, dst, 8*nPer)
}

// Gather collects each rank's nPer-element src block into the root's dst
// buffer (p blocks, rank-ordered). dst is only written on the root.
func (x *Ctx) Gather(root int, src scc.Addr, nPer int, dst scc.Addr) error {
	if err := checkCount("Gather", nPer); err != nil {
		return err
	}
	if x.healer != nil {
		return x.healer.run(x, func() error { return x.gatherBody(root, src, nPer, dst) })
	}
	return x.gatherBody(root, src, nPer, dst)
}

func (x *Ctx) gatherBody(root int, src scc.Addr, nPer int, dst scc.Addr) error {
	if x.multiChip() {
		return fmt.Errorf("core: Gather: %w", ErrCrossChip)
	}
	rootR, err := x.rootRank("Gather", root)
	if err != nil {
		return err
	}
	p := x.np()
	me := x.rank()
	if p == 1 || nPer == 0 {
		if nPer > 0 {
			x.copyPriv(dst, src, nPer)
		}
		return nil
	}
	if me == rootR {
		for q := 0; q < p; q++ {
			if q == rootR {
				x.copyPriv(dst+scc.Addr(8*nPer*q), src, nPer)
				continue
			}
			if err := x.ep.Recv(x.member(q), dst+scc.Addr(8*nPer*q), 8*nPer); err != nil {
				return err
			}
		}
		return nil
	}
	return x.ep.Send(root, src, 8*nPer)
}

// Scan computes an inclusive prefix reduction: rank k's dst receives
// op(v_0, ..., v_k) element-wise. Implemented as the linear pipeline
// used by small-communicator MPI implementations: rank k receives the
// prefix from k-1, combines its contribution, and forwards to k+1.
func (x *Ctx) Scan(src, dst scc.Addr, n int, op Op) error {
	if err := checkCount("Scan", n); err != nil {
		return err
	}
	if x.healer != nil {
		return x.healer.run(x, func() error { return x.scanBody(src, dst, n, op) })
	}
	return x.scanBody(src, dst, n, op)
}

func (x *Ctx) scanBody(src, dst scc.Addr, n int, op Op) error {
	if x.multiChip() {
		return fmt.Errorf("core: Scan: %w", ErrCrossChip)
	}
	p := x.np()
	me := x.rank()
	x.copyPriv(dst, src, n)
	if p == 1 || n == 0 {
		return nil
	}
	if me > 0 {
		x.ensureScratch(n)
		if err := x.ep.Recv(x.member(me-1), x.rbufAddr, 8*n); err != nil {
			return err
		}
		x.reduceInto(dst, x.rbufAddr, src, n, op)
	}
	if me < p-1 {
		return x.ep.Send(x.member(me+1), dst, 8*n)
	}
	return nil
}
