package core

import "testing"

// FuzzPartitionInvariants checks the structural invariants both
// partitioning strategies must uphold for any (n, p): blocks tile the
// vector exactly (contiguous, in order, lengths summing to n), the
// balanced split never differs by more than one element between blocks,
// and the standard split puts the entire remainder on block 0.
func FuzzPartitionInvariants(f *testing.F) {
	f.Add(552, 48)
	f.Add(575, 48)
	f.Add(0, 1)
	f.Add(1, 48)
	f.Add(47, 48)
	f.Add(1000000, 7)
	f.Fuzz(func(t *testing.T, n, p int) {
		if p <= 0 || n < 0 || p > 1<<16 || n > 1<<26 {
			t.Skip()
		}
		for _, balanced := range []bool{false, true} {
			blocks := PartitionFor(n, p, balanced)
			if len(blocks) != p {
				t.Fatalf("balanced=%v: got %d blocks, want %d", balanced, len(blocks), p)
			}
			off, total := 0, 0
			minLen, maxLen := blocks[0].Len, blocks[0].Len
			for i, b := range blocks {
				if b.Len < 0 {
					t.Fatalf("balanced=%v: block %d has negative length %d", balanced, i, b.Len)
				}
				if b.Off != off {
					t.Fatalf("balanced=%v: block %d at offset %d, want contiguous %d", balanced, i, b.Off, off)
				}
				off += b.Len
				total += b.Len
				if b.Len < minLen {
					minLen = b.Len
				}
				if b.Len > maxLen {
					maxLen = b.Len
				}
			}
			if total != n {
				t.Fatalf("balanced=%v: block lengths sum to %d, want %d", balanced, total, n)
			}
			if balanced {
				if maxLen-minLen > 1 {
					t.Fatalf("balanced: max-min = %d-%d > 1", maxLen, minLen)
				}
			} else {
				// Standard split: block 0 absorbs the remainder, all
				// others carry exactly n/p elements.
				for i := 1; i < p; i++ {
					if blocks[i].Len != n/p {
						t.Fatalf("standard: block %d length %d, want %d", i, blocks[i].Len, n/p)
					}
				}
				if blocks[0].Len != n/p+n%p {
					t.Fatalf("standard: block 0 length %d, want %d", blocks[0].Len, n/p+n%p)
				}
			}
		}
	})
}
