package core

import (
	"fmt"

	"scc/internal/ircce"
	"scc/internal/lwnb"
	"scc/internal/rcce"
	"scc/internal/scc"
)

// TransportKind selects the point-to-point layer under the collectives.
type TransportKind int

// Available transports, in the order the paper introduces them.
const (
	// TransportBlocking is plain RCCE: blocking send/receive with the
	// odd-even ordering in exchanges (the paper's baseline).
	TransportBlocking TransportKind = iota
	// TransportIRCCE uses iRCCE's non-blocking primitives (Sec. IV-A).
	TransportIRCCE
	// TransportLightweight uses the paper's lightweight non-blocking
	// primitives (Sec. IV-B).
	TransportLightweight
)

// String names the transport like the paper's figure legends.
func (k TransportKind) String() string {
	switch k {
	case TransportBlocking:
		return "blocking"
	case TransportIRCCE:
		return "iRCCE"
	case TransportLightweight:
		return "lightweight non-blocking"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(k))
	}
}

// Endpoint is the per-core transport instance the collectives call into.
// The fault-free transports never fail and always return nil; the
// hardened transport (Config.Recovery != nil) returns rcce.ErrUnreachable
// when a peer stays silent past the retry budget.
type Endpoint interface {
	// Send transmits nBytes of private memory to UE `to`, completing
	// before return.
	Send(to int, addr scc.Addr, nBytes int) error
	// Recv receives nBytes from UE `from` into private memory.
	Recv(from int, addr scc.Addr, nBytes int) error
	// Exchange performs one ring/pairwise round: send to `to` and
	// receive from `from`, completing both before returning. With a
	// blocking transport the two legs are ordered odd-even (Fig. 4);
	// with non-blocking transports both are posted at once (Fig. 5).
	Exchange(to int, sendAddr scc.Addr, sendBytes int, from int, recvAddr scc.Addr, recvBytes int) error
	// ExchangePair exchanges with a single symmetric partner (both
	// directions with the same peer). The blocking transport orders the
	// legs by rank - the odd-even rule is parity-based and would
	// deadlock when symmetric partners share parity.
	ExchangePair(peer int, sendAddr scc.Addr, sendBytes int, recvAddr scc.Addr, recvBytes int) error
}

// NewEndpoint builds the fault-free endpoint of the given kind for one
// UE.
func NewEndpoint(ue *rcce.UE, kind TransportKind) Endpoint {
	return newEndpoint(ue, Config{Transport: kind})
}

// newEndpoint builds the endpoint for a configuration: the plain
// transport, or its hardened counterpart when Recovery is set.
func newEndpoint(ue *rcce.UE, cfg Config) Endpoint {
	if cfg.Recovery != nil {
		return newRobustEP(ue, cfg.Transport, *cfg.Recovery)
	}
	switch cfg.Transport {
	case TransportBlocking:
		return &blockingEP{ue: ue}
	case TransportIRCCE:
		return &ircceEP{lib: ircce.New(ue)}
	case TransportLightweight:
		return &lwEP{lib: lwnb.New(ue)}
	default:
		panic(fmt.Sprintf("core: unknown transport kind %d", int(cfg.Transport)))
	}
}

// blockingEP drives plain RCCE. Exchange must order its two blocking
// calls so that the cyclic pattern cannot deadlock: odd cores receive
// first, even cores send first (the RCCE_comm odd-even scheme whose
// barrier-like over-synchronization Sec. IV-A identifies).
type blockingEP struct {
	ue *rcce.UE
}

func (e *blockingEP) Send(to int, addr scc.Addr, n int) error {
	e.ue.Send(to, addr, n)
	return nil
}

func (e *blockingEP) Recv(from int, addr scc.Addr, n int) error {
	e.ue.Recv(from, addr, n)
	return nil
}

func (e *blockingEP) Exchange(to int, sAddr scc.Addr, sBytes int, from int, rAddr scc.Addr, rBytes int) error {
	if e.ue.ID()%2 == 0 {
		e.ue.Send(to, sAddr, sBytes)
		e.ue.Recv(from, rAddr, rBytes)
	} else {
		e.ue.Recv(from, rAddr, rBytes)
		e.ue.Send(to, sAddr, sBytes)
	}
	return nil
}

func (e *blockingEP) ExchangePair(peer int, sAddr scc.Addr, sBytes int, rAddr scc.Addr, rBytes int) error {
	if e.ue.ID() < peer {
		e.ue.Send(peer, sAddr, sBytes)
		e.ue.Recv(peer, rAddr, rBytes)
	} else {
		e.ue.Recv(peer, rAddr, rBytes)
		e.ue.Send(peer, sAddr, sBytes)
	}
	return nil
}

// ircceEP drives the iRCCE library: both legs posted, then waited.
type ircceEP struct {
	lib *ircce.Lib
}

func (e *ircceEP) Send(to int, addr scc.Addr, n int) error {
	e.lib.Wait(e.lib.ISend(to, addr, n))
	return nil
}

func (e *ircceEP) Recv(from int, addr scc.Addr, n int) error {
	e.lib.Wait(e.lib.IRecv(from, addr, n))
	return nil
}

func (e *ircceEP) Exchange(to int, sAddr scc.Addr, sBytes int, from int, rAddr scc.Addr, rBytes int) error {
	s := e.lib.ISend(to, sAddr, sBytes)
	r := e.lib.IRecv(from, rAddr, rBytes)
	e.lib.WaitAll(s, r)
	return nil
}

func (e *ircceEP) ExchangePair(peer int, sAddr scc.Addr, sBytes int, rAddr scc.Addr, rBytes int) error {
	return e.Exchange(peer, sAddr, sBytes, peer, rAddr, rBytes)
}

// lwEP drives the lightweight non-blocking library.
type lwEP struct {
	lib *lwnb.Lib
}

func (e *lwEP) Send(to int, addr scc.Addr, n int) error {
	e.lib.Wait(e.lib.ISend(to, addr, n))
	return nil
}

func (e *lwEP) Recv(from int, addr scc.Addr, n int) error {
	e.lib.Wait(e.lib.IRecv(from, addr, n))
	return nil
}

func (e *lwEP) Exchange(to int, sAddr scc.Addr, sBytes int, from int, rAddr scc.Addr, rBytes int) error {
	s := e.lib.ISend(to, sAddr, sBytes)
	r := e.lib.IRecv(from, rAddr, rBytes)
	e.lib.WaitAll(s, r)
	return nil
}

func (e *lwEP) ExchangePair(peer int, sAddr scc.Addr, sBytes int, rAddr scc.Addr, rBytes int) error {
	return e.Exchange(peer, sAddr, sBytes, peer, rAddr, rBytes)
}

// robustEP runs every leg over the hardened protocol (sequence numbers,
// per-line checksums, bounded waits, retransmit with backoff) at the
// software-overhead profile of the selected transport. Exchanges run
// full duplex through the shared robust engine — the hardened protocol
// is deadlock-free without odd-even ordering, since every wait is
// bounded — so even the "blocking" profile exchanges both legs at once.
type robustEP struct {
	ue    *rcce.UE
	costs rcce.NBCosts
	pol   rcce.Policy
}

func newRobustEP(ue *rcce.UE, kind TransportKind, pol rcce.Policy) Endpoint {
	m := ue.Core().Chip().Model
	var costs rcce.NBCosts
	switch kind {
	case TransportBlocking:
		// Blocking RCCE has no post/progress machinery; its per-call
		// overhead all lands on the synchronous call itself.
		costs = rcce.NBCosts{Post: m.OverheadBlockingCall, Wait: 0, Progress: 0}
	case TransportIRCCE:
		costs = ircce.Costs(m)
	case TransportLightweight:
		costs = lwnb.Costs(m)
	default:
		panic(fmt.Sprintf("core: unknown transport kind %d", int(kind)))
	}
	return &robustEP{ue: ue, costs: costs, pol: pol}
}

func (e *robustEP) Send(to int, addr scc.Addr, n int) error {
	return e.ue.SendRobust(e.costs, e.pol, to, addr, n)
}

func (e *robustEP) Recv(from int, addr scc.Addr, n int) error {
	return e.ue.RecvRobust(e.costs, e.pol, from, addr, n)
}

func (e *robustEP) Exchange(to int, sAddr scc.Addr, sBytes int, from int, rAddr scc.Addr, rBytes int) error {
	return e.ue.ExchangeRobust(e.costs, e.pol, to, sAddr, sBytes, from, rAddr, rBytes)
}

func (e *robustEP) ExchangePair(peer int, sAddr scc.Addr, sBytes int, rAddr scc.Addr, rBytes int) error {
	return e.ue.ExchangeRobust(e.costs, e.pol, peer, sAddr, sBytes, peer, rAddr, rBytes)
}
