package core

import (
	"fmt"

	"scc/internal/ircce"
	"scc/internal/lwnb"
	"scc/internal/rcce"
	"scc/internal/scc"
)

// TransportKind selects the point-to-point layer under the collectives.
type TransportKind int

// Available transports, in the order the paper introduces them.
const (
	// TransportBlocking is plain RCCE: blocking send/receive with the
	// odd-even ordering in exchanges (the paper's baseline).
	TransportBlocking TransportKind = iota
	// TransportIRCCE uses iRCCE's non-blocking primitives (Sec. IV-A).
	TransportIRCCE
	// TransportLightweight uses the paper's lightweight non-blocking
	// primitives (Sec. IV-B).
	TransportLightweight
)

// String names the transport like the paper's figure legends.
func (k TransportKind) String() string {
	switch k {
	case TransportBlocking:
		return "blocking"
	case TransportIRCCE:
		return "iRCCE"
	case TransportLightweight:
		return "lightweight non-blocking"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(k))
	}
}

// Endpoint is the per-core transport instance the collectives call into.
type Endpoint interface {
	// Send transmits nBytes of private memory to UE `to`, completing
	// before return.
	Send(to int, addr scc.Addr, nBytes int)
	// Recv receives nBytes from UE `from` into private memory.
	Recv(from int, addr scc.Addr, nBytes int)
	// Exchange performs one ring/pairwise round: send to `to` and
	// receive from `from`, completing both before returning. With a
	// blocking transport the two legs are ordered odd-even (Fig. 4);
	// with non-blocking transports both are posted at once (Fig. 5).
	Exchange(to int, sendAddr scc.Addr, sendBytes int, from int, recvAddr scc.Addr, recvBytes int)
	// ExchangePair exchanges with a single symmetric partner (both
	// directions with the same peer). The blocking transport orders the
	// legs by rank - the odd-even rule is parity-based and would
	// deadlock when symmetric partners share parity.
	ExchangePair(peer int, sendAddr scc.Addr, sendBytes int, recvAddr scc.Addr, recvBytes int)
}

// NewEndpoint builds the endpoint of the given kind for one UE.
func NewEndpoint(ue *rcce.UE, kind TransportKind) Endpoint {
	switch kind {
	case TransportBlocking:
		return &blockingEP{ue: ue}
	case TransportIRCCE:
		return &ircceEP{lib: ircce.New(ue)}
	case TransportLightweight:
		return &lwEP{lib: lwnb.New(ue)}
	default:
		panic(fmt.Sprintf("core: unknown transport kind %d", kind))
	}
}

// blockingEP drives plain RCCE. Exchange must order its two blocking
// calls so that the cyclic pattern cannot deadlock: odd cores receive
// first, even cores send first (the RCCE_comm odd-even scheme whose
// barrier-like over-synchronization Sec. IV-A identifies).
type blockingEP struct {
	ue *rcce.UE
}

func (e *blockingEP) Send(to int, addr scc.Addr, n int)   { e.ue.Send(to, addr, n) }
func (e *blockingEP) Recv(from int, addr scc.Addr, n int) { e.ue.Recv(from, addr, n) }

func (e *blockingEP) Exchange(to int, sAddr scc.Addr, sBytes int, from int, rAddr scc.Addr, rBytes int) {
	if e.ue.ID()%2 == 0 {
		e.ue.Send(to, sAddr, sBytes)
		e.ue.Recv(from, rAddr, rBytes)
	} else {
		e.ue.Recv(from, rAddr, rBytes)
		e.ue.Send(to, sAddr, sBytes)
	}
}

func (e *blockingEP) ExchangePair(peer int, sAddr scc.Addr, sBytes int, rAddr scc.Addr, rBytes int) {
	if e.ue.ID() < peer {
		e.ue.Send(peer, sAddr, sBytes)
		e.ue.Recv(peer, rAddr, rBytes)
	} else {
		e.ue.Recv(peer, rAddr, rBytes)
		e.ue.Send(peer, sAddr, sBytes)
	}
}

// ircceEP drives the iRCCE library: both legs posted, then waited.
type ircceEP struct {
	lib *ircce.Lib
}

func (e *ircceEP) Send(to int, addr scc.Addr, n int)   { e.lib.Wait(e.lib.ISend(to, addr, n)) }
func (e *ircceEP) Recv(from int, addr scc.Addr, n int) { e.lib.Wait(e.lib.IRecv(from, addr, n)) }

func (e *ircceEP) Exchange(to int, sAddr scc.Addr, sBytes int, from int, rAddr scc.Addr, rBytes int) {
	s := e.lib.ISend(to, sAddr, sBytes)
	r := e.lib.IRecv(from, rAddr, rBytes)
	e.lib.WaitAll(s, r)
}

func (e *ircceEP) ExchangePair(peer int, sAddr scc.Addr, sBytes int, rAddr scc.Addr, rBytes int) {
	e.Exchange(peer, sAddr, sBytes, peer, rAddr, rBytes)
}

// lwEP drives the lightweight non-blocking library.
type lwEP struct {
	lib *lwnb.Lib
}

func (e *lwEP) Send(to int, addr scc.Addr, n int)   { e.lib.Wait(e.lib.ISend(to, addr, n)) }
func (e *lwEP) Recv(from int, addr scc.Addr, n int) { e.lib.Wait(e.lib.IRecv(from, addr, n)) }

func (e *lwEP) Exchange(to int, sAddr scc.Addr, sBytes int, from int, rAddr scc.Addr, rBytes int) {
	s := e.lib.ISend(to, sAddr, sBytes)
	r := e.lib.IRecv(from, rAddr, rBytes)
	e.lib.WaitAll(s, r)
}

func (e *lwEP) ExchangePair(peer int, sAddr scc.Addr, sBytes int, rAddr scc.Addr, rBytes int) {
	e.Exchange(peer, sAddr, sBytes, peer, rAddr, rBytes)
}
