package core

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Selector picks the algorithm a Ctx runs for one collective call. The
// registry makes algorithms available; the selector is the policy that
// chooses among them. Three policies ship built in:
//
//   - Fixed(name): always the named algorithm (benchmarks, -algo flags)
//   - PaperHeuristic(): the paper's size threshold plus Config flags,
//     bit-for-bit the pre-registry behavior
//   - Tuned(): a measured decision table keyed by (op, np, size bucket),
//     the Open MPI "tuned" approach
type Selector interface {
	// Name identifies the policy in logs and bench output.
	Name() string
	// Select returns the algorithm name to run for collective k on x's
	// communicator with an n-element vector. An unknown or inapplicable
	// name makes the dispatcher fall back to the paper heuristic.
	Select(x *Ctx, k OpKind, n int) string
}

// --- Fixed ---

type fixedSel struct{ algo string }

// Fixed returns a selector that always picks the named algorithm.
// Collectives for which the name is not registered or not applicable
// fall back to the paper heuristic.
func Fixed(name string) Selector { return fixedSel{algo: name} }

func (s fixedSel) Name() string                    { return "fixed:" + s.algo }
func (s fixedSel) Select(*Ctx, OpKind, int) string { return s.algo }

// --- PaperHeuristic ---

type paperSel struct{}

// PaperHeuristic returns the selection policy the paper's code used
// before the registry existed: binomial trees below the short-message
// threshold, the MPB-direct ring when Config.MPBDirect applies, and the
// block-partitioned ring otherwise. TestPaperHeuristicMatchesLegacy
// locks the equivalence in.
func PaperHeuristic() Selector { return paperSel{} }

func (paperSel) Name() string { return "paper-heuristic" }

func (paperSel) Select(x *Ctx, k OpKind, n int) string {
	if x.shortMessage(n) {
		return "tree"
	}
	if k == KindAllreduce && x.cfg.MPBDirect && x.grp == nil && x.cfg.Recovery == nil {
		return "mpb"
	}
	return "ring"
}

// --- Tuned ---

// TableEntry is one decision-table cell: for collective Op on an NP-rank
// communicator and vectors of up to MaxN elements (0 = unbounded), run
// Algorithm.
type TableEntry struct {
	Op        string `json:"op"`
	NP        int    `json:"np"`
	MaxN      int    `json:"max_n"`
	Algorithm string `json:"algorithm"`
}

// DecisionTable is the Go-loadable form of a tuner sweep: the winning
// algorithm per (op, np, message-size bucket) cell. Produced by
// internal/bench.Tune (sccbench -tune) and consumed by the Tuned
// selector.
type DecisionTable struct {
	// Transport records which point-to-point configuration the table
	// was measured under (provenance only; lookup ignores it).
	Transport string       `json:"transport,omitempty"`
	Entries   []TableEntry `json:"entries"`
}

// normalize sorts entries for deterministic lookup: by op, then np,
// then MaxN with the unbounded bucket (0) last.
func (t *DecisionTable) normalize() {
	sort.SliceStable(t.Entries, func(i, j int) bool {
		a, b := t.Entries[i], t.Entries[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.NP != b.NP {
			return a.NP < b.NP
		}
		return bucketLess(a.MaxN, b.MaxN)
	})
}

func bucketLess(a, b int) bool {
	if a == 0 {
		return false // unbounded sorts last
	}
	if b == 0 {
		return true
	}
	return a < b
}

// Validate checks every entry against the registry and op-kind names.
func (t *DecisionTable) Validate() error {
	for _, e := range t.Entries {
		k, err := ParseOpKind(e.Op)
		if err != nil {
			return fmt.Errorf("core: decision table: %w", err)
		}
		if LookupAlgorithm(k, e.Algorithm) == nil {
			return fmt.Errorf("core: decision table: %w: no %s algorithm %q (have %v)",
				ErrInvalid, e.Op, e.Algorithm, AlgorithmNames(k))
		}
		if e.NP < 1 {
			return fmt.Errorf("core: decision table: %w: entry %s/np=%d", ErrInvalid, e.Op, e.NP)
		}
		if e.MaxN < 0 {
			return fmt.Errorf("core: decision table: %w: entry %s/np=%d has negative max_n", ErrInvalid, e.Op, e.NP)
		}
	}
	return nil
}

// ParseDecisionTable loads and validates a JSON decision table.
func ParseDecisionTable(data []byte) (*DecisionTable, error) {
	var t DecisionTable
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("core: decision table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.normalize()
	return &t, nil
}

// Lookup returns the algorithm name for (k, np, n), or "" when the
// table has no matching cell. NP matching is conservative: the largest
// tuned np not exceeding the requested one (communicators bigger than
// anything measured reuse the widest measurement), else the smallest
// tuned np.
func (t *DecisionTable) Lookup(k OpKind, np, n int) string {
	opName := k.String()
	// Collect the candidate nps for this op (entries are sorted).
	bestNP, haveLE := 0, false
	minNP := 0
	for _, e := range t.Entries {
		if e.Op != opName {
			continue
		}
		if minNP == 0 || e.NP < minNP {
			minNP = e.NP
		}
		if e.NP <= np && e.NP > bestNP {
			bestNP = e.NP
			haveLE = true
		}
	}
	if !haveLE {
		bestNP = minNP
	}
	if bestNP == 0 {
		return ""
	}
	for _, e := range t.Entries {
		if e.Op != opName || e.NP != bestNP {
			continue
		}
		if e.MaxN == 0 || n <= e.MaxN {
			return e.Algorithm
		}
	}
	return ""
}

type tunedSel struct {
	table *DecisionTable
}

// NewTuned returns a selector driven by a measured decision table.
func NewTuned(t *DecisionTable) Selector { return tunedSel{table: t} }

func (s tunedSel) Name() string { return "tuned" }

func (s tunedSel) Select(x *Ctx, k OpKind, n int) string {
	if s.table == nil {
		return ""
	}
	return s.table.Lookup(k, x.np(), n)
}

// tunedDefaultJSON is the committed table measured by the tuner sweep
// (internal/bench.Tune on the default timing model over the lightweight
// balanced transport; regenerate with `sccbench -tune`).
//
//go:embed tuned_default.json
var tunedDefaultJSON []byte

var (
	tunedDefaultOnce  sync.Once
	tunedDefaultTable *DecisionTable
	tunedDefaultErr   error
)

// DefaultTable returns the committed tuner-measured decision table.
func DefaultTable() (*DecisionTable, error) {
	tunedDefaultOnce.Do(func() {
		tunedDefaultTable, tunedDefaultErr = ParseDecisionTable(tunedDefaultJSON)
	})
	return tunedDefaultTable, tunedDefaultErr
}

// Tuned returns the table-driven selector backed by the committed
// default table. A corrupt embedded table degrades to the paper
// heuristic (the selector returns "" and the dispatcher falls back)
// rather than failing collective calls.
func Tuned() Selector {
	t, err := DefaultTable()
	if err != nil {
		return tunedSel{table: nil}
	}
	return tunedSel{table: t}
}
