package core

import (
	"fmt"
	"sort"
)

// Group is a communicator subset: the ordered set of live cores a
// failure-aware collective runs over. Ranks within a group are dense
// (0..Size()-1, in ascending core-ID order), so the ring, tree and
// partition machinery works unchanged on the survivor set — an Allreduce
// over 47 live cores is the same algorithm with p=47.
type Group struct {
	members []int
	rank    map[int]int
}

// NewGroup builds a group from the given core IDs (order-insensitive,
// duplicates rejected). numCores bounds the valid ID range.
func NewGroup(members []int, numCores int) (*Group, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: %w: empty group", ErrInvalid)
	}
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	g := &Group{members: sorted, rank: make(map[int]int, len(sorted))}
	for r, id := range sorted {
		if id < 0 || id >= numCores {
			return nil, fmt.Errorf("core: %w: group member %d outside [0,%d)", ErrInvalid, id, numCores)
		}
		if _, dup := g.rank[id]; dup {
			return nil, fmt.Errorf("core: %w: duplicate group member %d", ErrInvalid, id)
		}
		g.rank[id] = r
	}
	return g, nil
}

// Survivors builds the group of all cores except the given dead ones —
// the membership a failure-aware collective rebuilds after core death.
// Duplicate dead entries are tolerated (a fault plan can report a core
// dead more than once); a dead ID outside [0,numCores) or a dead set
// covering every core returns a clean ErrInvalid instead of producing a
// degenerate group.
func Survivors(numCores int, dead []int) (*Group, error) {
	if numCores <= 0 {
		return nil, fmt.Errorf("core: %w: %d cores", ErrInvalid, numCores)
	}
	isDead := make(map[int]bool, len(dead))
	for _, id := range dead {
		if id < 0 || id >= numCores {
			return nil, fmt.Errorf("core: %w: dead core %d outside [0,%d)", ErrInvalid, id, numCores)
		}
		isDead[id] = true
	}
	var live []int
	for id := 0; id < numCores; id++ {
		if !isDead[id] {
			live = append(live, id)
		}
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("core: %w: no survivors (all %d cores dead)", ErrInvalid, numCores)
	}
	return NewGroup(live, numCores)
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.members) }

// Members returns the member core IDs in rank order (a copy).
func (g *Group) Members() []int { return append([]int(nil), g.members...) }

// Member returns the core ID holding the given group rank.
func (g *Group) Member(rank int) int { return g.members[rank] }

// RankOf returns the group rank of a core ID, or -1 if it is not a
// member.
func (g *Group) RankOf(core int) int {
	if r, ok := g.rank[core]; ok {
		return r
	}
	return -1
}

// Contains reports whether the core is a member.
func (g *Group) Contains(core int) bool { return g.RankOf(core) >= 0 }
