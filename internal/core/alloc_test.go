package core_test

import (
	"fmt"
	"testing"

	"scc/internal/core"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

// Per-algorithm steady-state allocation budget for a full 48-core
// Allreduce at the paper's application size. One full chip run cannot be
// repeated, so the per-op cost is the slope between a short and a long
// repetition loop inside one program; chip, comm, and Ctx construction
// plus all first-use scratch warming cancel out.

func runAllreduceOps(algo string, ops, n int) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	cfg := core.ConfigBalanced
	cfg.Selector = core.Fixed(algo)
	chip.Launch(func(c *scc.Core) {
		ue := comm.UE(c.ID)
		x := core.NewCtx(ue, cfg)
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		for i := 0; i < ops; i++ {
			if err := x.Allreduce(src, dst, n, core.Sum); err != nil {
				panic(fmt.Sprintf("allreduce[%s]: %v", algo, err))
			}
		}
		x.Release()
	})
	if err := chip.Run(); err != nil {
		panic(err)
	}
}

func TestAllreduceAlgorithmsAllocBudget(t *testing.T) {
	const n = 552
	for _, algo := range core.AlgorithmNames(core.KindAllreduce) {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			a := testing.AllocsPerRun(2, func() { runAllreduceOps(algo, 2, n) })
			b := testing.AllocsPerRun(2, func() { runAllreduceOps(algo, 8, n) })
			perOp := (b - a) / 6
			// Budget: one 48-core Allreduce may allocate at most 48
			// objects total (one per core) in the steady state; the
			// paper-path algorithms measure essentially zero and the
			// budget leaves headroom for Go runtime noise only.
			if perOp > 48 {
				t.Fatalf("Allreduce[%s] allocates %.1f objects/op; budget 48", algo, perOp)
			}
			t.Logf("Allreduce[%s]: %.2f allocs/op", algo, perOp)
		})
	}
}
