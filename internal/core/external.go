package core

import "scc/internal/scc"

// This file is the extension surface for algorithms implemented outside
// internal/core (today: the synthesized schedules in internal/synth).
// The built-in algorithms use the unexported helpers directly; external
// packages get the same primitives through these thin exported
// wrappers, so an out-of-package Algorithm is a peer of the built-ins
// rather than a special case. Nothing here adds simulated work.

// NP returns the communicator size (group size, or the whole chip).
func (x *Ctx) NP() int { return x.np() }

// Rank returns the caller's rank within the communicator.
func (x *Ctx) Rank() int { return x.rank() }

// Member maps a communicator rank to its core ID.
func (x *Ctx) Member(r int) int { return x.member(r) }

// MultiChip reports whether collectives on this context must span
// chips (see Fabric); single-chip algorithms are not applicable then.
func (x *Ctx) MultiChip() bool { return x.multiChip() }

// Endpoint exposes the context's point-to-point transport, the same
// layer the built-in algorithms run over.
func (x *Ctx) Endpoint() Endpoint { return x.ep }

// RootRank validates a root core ID for collective fn and returns its
// communicator rank, exactly as the built-in rooted collectives do.
func (x *Ctx) RootRank(fn string, root int) (int, error) { return x.rootRank(fn, root) }

// ScratchPair sizes the two private scratch vectors to at least n
// elements and returns their addresses (working copy, receive staging).
// The pair is reused across calls on the same context; a collective
// owns it only for the duration of one call.
func (x *Ctx) ScratchPair(n int) (cur, rbuf scc.Addr) {
	x.ensureScratch(n)
	return x.curAddr, x.rbufAddr
}

// ReduceInto computes dst[i] = op(a[i], b[i]) over n elements of
// private memory, charging the model's per-element reduction cost.
func (x *Ctx) ReduceInto(dst, a, b scc.Addr, n int, op Op) { x.reduceInto(dst, a, b, n, op) }

// CopyPrivate copies n elements between private addresses, with the
// usual cached read/write costs.
func (x *Ctx) CopyPrivate(dst, src scc.Addr, n int) { x.copyPriv(dst, src, n) }
