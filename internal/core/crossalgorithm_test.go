package core

import (
	"math"
	"math/rand"
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// The cross-algorithm equivalence property: every registered algorithm
// for an op computes the same bits as a sequential reference on random
// inputs, and is deterministic — two identical runs agree on both the
// values and the chip's virtual completion time. Inputs are dyadic
// rationals (multiples of 1/8), so float64 summation is exact in any
// association order and "same bits" is a fair demand across ring, tree,
// recursive-doubling and MPB schedules.

// dyadicInputs generates one reproducible vector per core.
func dyadicInputs(seed int64, cores, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, cores)
	for c := range out {
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Round(rng.Float64()*64) / 8
		}
		out[c] = v
	}
	return out
}

// crossRun executes one pinned-algorithm collective on a chip of the
// given model and returns the chip's final virtual time plus per-core
// results (root-only for Reduce, all cores otherwise).
func crossRun(t *testing.T, model *timing.Model, k OpKind, algo string, n int, root int, in [][]float64) (simtime.Time, [][]float64) {
	t.Helper()
	cfg := ConfigBalanced
	cfg.Selector = Fixed(algo)
	chip := scc.New(model)
	comm := rcce.NewComm(chip)
	results := make([][]float64, chip.NumCores())
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), cfg)
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		c.WriteF64s(src, in[c.ID])
		var err error
		switch k {
		case KindAllreduce:
			err = x.Allreduce(src, dst, n, Sum)
		case KindBroadcast:
			err = x.Broadcast(root, src, n)
			dst = src
		case KindReduce:
			err = x.Reduce(root, src, dst, n, Sum)
		}
		if err != nil {
			t.Errorf("%s[%s] n=%d core %d: %v", k, algo, n, c.ID, err)
			return
		}
		if k == KindReduce && c.ID != root {
			return
		}
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		results[c.ID] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("%s[%s] n=%d: %v", k, algo, n, err)
	}
	return chip.Now(), results
}

// reference computes the expected result sequentially.
func reference(k OpKind, root, cores int, in [][]float64) [][]float64 {
	n := len(in[0])
	out := make([][]float64, cores)
	switch k {
	case KindAllreduce, KindReduce:
		sum := make([]float64, n)
		for _, v := range in {
			for i := range v {
				sum[i] += v[i]
			}
		}
		if k == KindAllreduce {
			for c := range out {
				out[c] = sum
			}
		} else {
			out[root] = sum
		}
	case KindBroadcast:
		for c := range out {
			out[c] = in[root]
		}
	}
	return out
}

func TestCrossAlgorithmEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	const root = 7
	for _, k := range OpKinds() {
		for _, algo := range AlgorithmNames(k) {
			for _, n := range []int{1, 13, 64, 200} {
				in := dyadicInputs(int64(1000*int(k)+n), 48, n)
				want := reference(k, root, 48, in)

				now1, got1 := crossRun(t, timing.Default(), k, algo, n, root, in)
				now2, got2 := crossRun(t, timing.Default(), k, algo, n, root, in)

				if now1 != now2 {
					t.Errorf("%s[%s] n=%d: nondeterministic virtual time %v vs %v", k, algo, n, now1, now2)
				}
				if !sameResults(got1, got2) {
					t.Errorf("%s[%s] n=%d: nondeterministic results across identical runs", k, algo, n)
				}
				for c := range want {
					if want[c] == nil {
						continue
					}
					if got1[c] == nil {
						t.Errorf("%s[%s] n=%d: core %d missing result", k, algo, n, c)
						continue
					}
					for i := range want[c] {
						if got1[c][i] != want[c][i] {
							t.Errorf("%s[%s] n=%d: core %d elem %d = %v, want %v (bit-exact)",
								k, algo, n, c, i, got1[c][i], want[c][i])
							break
						}
					}
				}
			}
		}
	}
}
