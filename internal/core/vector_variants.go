package core

import (
	"fmt"

	"scc/internal/scc"
)

// Variable-count collectives (the MPI "v" variants). RCCE_comm-era
// applications with irregular decompositions need per-rank counts; the
// ring and pairwise schedules generalize directly, reusing the Block
// machinery of the partitioned collectives.

// validateBlocks rejects malformed per-rank layouts.
func validateBlocks(fn string, blocks []Block, p int) error {
	if len(blocks) != p {
		return fmt.Errorf("core: %s: %w: got %d blocks, need exactly one per rank (%d)", fn, ErrInvalid, len(blocks), p)
	}
	for i, b := range blocks {
		if b.Len < 0 || b.Off < 0 {
			return fmt.Errorf("core: %s: %w: block %d has negative geometry {Off:%d Len:%d}", fn, ErrInvalid, i, b.Off, b.Len)
		}
	}
	return nil
}

// AllgatherV concatenates variable-sized contributions: rank q owns
// blocks[q] of the destination layout and provides blocks[q].Len
// elements at src. After the call every rank's dst holds all blocks at
// their offsets.
func (x *Ctx) AllgatherV(src scc.Addr, blocks []Block, dst scc.Addr) error {
	p := x.np()
	me := x.rank()
	if err := validateBlocks("AllgatherV", blocks, p); err != nil {
		return err
	}
	x.copyPriv(dst+scc.Addr(8*blocks[me].Off), src, blocks[me].Len)
	return x.allgatherBlocks(dst, blocks)
}

// AlltoallV performs a complete exchange with per-pair counts:
// sendBlocks[q] describes the slice of src destined for rank q and
// recvBlocks[q] the slice of dst receiving from rank q. Lengths must
// agree pairwise across ranks (sendBlocks[q].Len here ==
// recvBlocks[me].Len there); the simulation deadlock detector flags
// violations. Uses the same symmetric pairwise schedule as Alltoall.
func (x *Ctx) AlltoallV(src scc.Addr, sendBlocks []Block, dst scc.Addr, recvBlocks []Block) error {
	p := x.np()
	me := x.rank()
	if err := validateBlocks("AlltoallV", sendBlocks, p); err != nil {
		return err
	}
	if err := validateBlocks("AlltoallV", recvBlocks, p); err != nil {
		return err
	}
	for r := 0; r < p; r++ {
		partner := mod(r-me, p)
		sb, rb := sendBlocks[partner], recvBlocks[partner]
		sAddr := src + scc.Addr(8*sb.Off)
		rAddr := dst + scc.Addr(8*rb.Off)
		if partner == me {
			x.copyPriv(rAddr, sAddr, min(sb.Len, rb.Len))
			continue
		}
		if sb.Len == 0 && rb.Len == 0 {
			continue
		}
		if err := x.ep.ExchangePair(x.member(partner), sAddr, 8*sb.Len, rAddr, 8*rb.Len); err != nil {
			return err
		}
	}
	return nil
}

// GatherV collects variable-sized blocks to the root: rank q sends
// blocks[q].Len elements from src, landing at blocks[q].Off in the
// root's dst.
func (x *Ctx) GatherV(root int, src scc.Addr, blocks []Block, dst scc.Addr) error {
	rootR, err := x.rootRank("GatherV", root)
	if err != nil {
		return err
	}
	p := x.np()
	me := x.rank()
	if err := validateBlocks("GatherV", blocks, p); err != nil {
		return err
	}
	if me == rootR {
		for q := 0; q < p; q++ {
			if q == rootR {
				x.copyPriv(dst+scc.Addr(8*blocks[q].Off), src, blocks[q].Len)
				continue
			}
			if blocks[q].Len > 0 {
				if err := x.ep.Recv(x.member(q), dst+scc.Addr(8*blocks[q].Off), 8*blocks[q].Len); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if blocks[me].Len > 0 {
		return x.ep.Send(root, src, 8*blocks[me].Len)
	}
	return nil
}

// ScatterV distributes variable-sized blocks from the root: rank q
// receives blocks[q].Len elements into dst, taken from blocks[q].Off of
// the root's src.
func (x *Ctx) ScatterV(root int, src scc.Addr, blocks []Block, dst scc.Addr) error {
	rootR, err := x.rootRank("ScatterV", root)
	if err != nil {
		return err
	}
	p := x.np()
	me := x.rank()
	if err := validateBlocks("ScatterV", blocks, p); err != nil {
		return err
	}
	if me == rootR {
		for q := 0; q < p; q++ {
			if q == rootR {
				x.copyPriv(dst, src+scc.Addr(8*blocks[q].Off), blocks[q].Len)
				continue
			}
			if blocks[q].Len > 0 {
				if err := x.ep.Send(x.member(q), src+scc.Addr(8*blocks[q].Off), 8*blocks[q].Len); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if blocks[me].Len > 0 {
		return x.ep.Recv(root, dst, 8*blocks[me].Len)
	}
	return nil
}
