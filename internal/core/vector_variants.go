package core

import "scc/internal/scc"

// Variable-count collectives (the MPI "v" variants). RCCE_comm-era
// applications with irregular decompositions need per-rank counts; the
// ring and pairwise schedules generalize directly, reusing the Block
// machinery of the partitioned collectives.

// validateBlocks panics if the per-rank layout is malformed.
func validateBlocks(fn string, blocks []Block, p int) {
	if len(blocks) != p {
		panic("core: " + fn + ": need exactly one block per rank")
	}
	for i, b := range blocks {
		if b.Len < 0 || b.Off < 0 {
			panic("core: " + fn + ": negative block geometry")
		}
		_ = i
	}
}

// AllgatherV concatenates variable-sized contributions: rank q owns
// blocks[q] of the destination layout and provides blocks[q].Len
// elements at src. After the call every rank's dst holds all blocks at
// their offsets.
func (x *Ctx) AllgatherV(src scc.Addr, blocks []Block, dst scc.Addr) {
	ue := x.ue
	p := ue.NumUEs()
	me := ue.ID()
	validateBlocks("AllgatherV", blocks, p)
	x.copyPriv(dst+scc.Addr(8*blocks[me].Off), src, blocks[me].Len)
	x.allgatherBlocks(dst, blocks)
}

// AlltoallV performs a complete exchange with per-pair counts:
// sendBlocks[q] describes the slice of src destined for rank q and
// recvBlocks[q] the slice of dst receiving from rank q. Lengths must
// agree pairwise across ranks (sendBlocks[q].Len here ==
// recvBlocks[me].Len there); the simulation deadlock detector flags
// violations. Uses the same symmetric pairwise schedule as Alltoall.
func (x *Ctx) AlltoallV(src scc.Addr, sendBlocks []Block, dst scc.Addr, recvBlocks []Block) {
	ue := x.ue
	p := ue.NumUEs()
	me := ue.ID()
	validateBlocks("AlltoallV", sendBlocks, p)
	validateBlocks("AlltoallV", recvBlocks, p)
	for r := 0; r < p; r++ {
		partner := mod(r-me, p)
		sb, rb := sendBlocks[partner], recvBlocks[partner]
		sAddr := src + scc.Addr(8*sb.Off)
		rAddr := dst + scc.Addr(8*rb.Off)
		if partner == me {
			x.copyPriv(rAddr, sAddr, min(sb.Len, rb.Len))
			continue
		}
		if sb.Len == 0 && rb.Len == 0 {
			continue
		}
		x.ep.ExchangePair(partner, sAddr, 8*sb.Len, rAddr, 8*rb.Len)
	}
}

// GatherV collects variable-sized blocks to the root: rank q sends
// blocks[q].Len elements from src, landing at blocks[q].Off in the
// root's dst.
func (x *Ctx) GatherV(root int, src scc.Addr, blocks []Block, dst scc.Addr) {
	ue := x.ue
	p := ue.NumUEs()
	me := ue.ID()
	validateBlocks("GatherV", blocks, p)
	if me == root {
		for q := 0; q < p; q++ {
			if q == root {
				x.copyPriv(dst+scc.Addr(8*blocks[q].Off), src, blocks[q].Len)
				continue
			}
			if blocks[q].Len > 0 {
				x.ep.Recv(q, dst+scc.Addr(8*blocks[q].Off), 8*blocks[q].Len)
			}
		}
		return
	}
	if blocks[me].Len > 0 {
		x.ep.Send(root, src, 8*blocks[me].Len)
	}
}

// ScatterV distributes variable-sized blocks from the root: rank q
// receives blocks[q].Len elements into dst, taken from blocks[q].Off of
// the root's src.
func (x *Ctx) ScatterV(root int, src scc.Addr, blocks []Block, dst scc.Addr) {
	ue := x.ue
	p := ue.NumUEs()
	me := ue.ID()
	validateBlocks("ScatterV", blocks, p)
	if me == root {
		for q := 0; q < p; q++ {
			if q == root {
				x.copyPriv(dst, src+scc.Addr(8*blocks[q].Off), blocks[q].Len)
				continue
			}
			if blocks[q].Len > 0 {
				x.ep.Send(q, src+scc.Addr(8*blocks[q].Off), 8*blocks[q].Len)
			}
		}
		return
	}
	if blocks[me].Len > 0 {
		x.ep.Recv(root, dst, 8*blocks[me].Len)
	}
}
