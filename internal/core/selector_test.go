package core

import (
	"math"
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// runKind executes one collective of kind k under cfg on a fresh chip
// and returns the completion latency seen by core 0 plus every core's
// result vector (only the root's for Reduce). Inputs are a fixed
// function of (core, index), so two calls with equal arguments must be
// bit-identical in both time and values.
func runKind(t *testing.T, cfg Config, k OpKind, n int) (simtime.Duration, [][]float64) {
	t.Helper()
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	root := 5
	var lat simtime.Duration
	results := make([][]float64, chip.NumCores())
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), cfg)
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Round(float64(c.ID)*3.5+float64(i)*0.25*8) / 8
		}
		c.WriteF64s(src, v)
		x.Barrier()
		t0 := c.Now()
		var err error
		switch k {
		case KindAllreduce:
			err = x.Allreduce(src, dst, n, Sum)
		case KindBroadcast:
			err = x.Broadcast(root, src, n)
			dst = src
		case KindReduce:
			err = x.Reduce(root, src, dst, n, Sum)
		}
		if err != nil {
			t.Errorf("%s n=%d on core %d: %v", k, n, c.ID, err)
			return
		}
		if c.ID == 0 {
			lat = c.Now() - t0
		}
		if k == KindReduce && c.ID != root {
			return
		}
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		results[c.ID] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("%s n=%d: %v", k, n, err)
	}
	return lat, results
}

func sameResults(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// legacySelect replicates the pre-registry branch order of the
// dispatchers, straight from the old Allreduce/Broadcast/Reduce bodies:
// short messages to the tree, then the MPB-direct flag (Allreduce on
// the fault-free full chip only), then the ring.
func legacySelect(cfg Config, k OpKind, n int) string {
	if 8*n < shortMessageThresholdBytes {
		return "tree"
	}
	if k == KindAllreduce && cfg.MPBDirect && cfg.Recovery == nil {
		return "mpb"
	}
	return "ring"
}

// TestPaperHeuristicMatchesLegacy is the sequence-equivalence proof the
// refactor rests on: for every config, op and size class, the nil
// selector, the explicit PaperHeuristic selector, and the legacy branch
// order pinned via Fixed all produce the same virtual completion time
// and the same bits.
func TestPaperHeuristicMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, cfg := range []Config{ConfigBlocking, ConfigIRCCE, ConfigBalanced, ConfigMPB} {
		for _, k := range OpKinds() {
			for _, n := range []int{1, 17, 63, 64, 200} {
				base := cfg
				base.Selector = nil
				lat0, res0 := runKind(t, base, k, n)

				heur := cfg
				heur.Selector = PaperHeuristic()
				lat1, res1 := runKind(t, heur, k, n)

				fixed := cfg
				fixed.Selector = Fixed(legacySelect(cfg, k, n))
				lat2, res2 := runKind(t, fixed, k, n)

				if lat1 != lat0 || !sameResults(res1, res0) {
					t.Errorf("%s/%s n=%d: PaperHeuristic diverges from nil selector (%v vs %v)",
						cfg.Name(), k, n, lat1, lat0)
				}
				if lat2 != lat0 || !sameResults(res2, res0) {
					t.Errorf("%s/%s n=%d: Fixed(%q) diverges from nil selector (%v vs %v)",
						cfg.Name(), k, n, legacySelect(cfg, k, n), lat2, lat0)
				}
			}
		}
	}
}

// TestFixedSelectorFallback: an unregistered name and an inapplicable
// algorithm must both degrade to the paper heuristic, never fail.
func TestFixedSelectorFallback(t *testing.T) {
	cfg := ConfigBalanced
	cfg.Selector = Fixed("no-such-algorithm")
	latBad, resBad := runKind(t, cfg, KindAllreduce, 100)

	base := ConfigBalanced
	lat0, res0 := runKind(t, base, KindAllreduce, 100)
	if latBad != lat0 || !sameResults(resBad, res0) {
		t.Errorf("Fixed(unknown) should match the heuristic exactly, got %v vs %v", latBad, lat0)
	}

	// "mpb" under the hardened protocol is inapplicable; the call must
	// still complete via the heuristic.
	pol := rcce.DefaultPolicy()
	hard := ConfigBalanced
	hard.Recovery = &pol
	hard.Selector = Fixed("mpb")
	_, res := runKind(t, hard, KindAllreduce, 100)
	if len(res) == 0 || res[0] == nil {
		t.Fatal("Fixed(mpb)+Recovery produced no result")
	}
}

func TestDecisionTableLookup(t *testing.T) {
	tab := &DecisionTable{Entries: []TableEntry{
		{Op: "allreduce", NP: 8, MaxN: 64, Algorithm: "tree"},
		{Op: "allreduce", NP: 8, MaxN: 0, Algorithm: "ring"},
		{Op: "allreduce", NP: 48, MaxN: 64, Algorithm: "recdouble"},
		{Op: "allreduce", NP: 48, MaxN: 0, Algorithm: "mpb"},
		{Op: "broadcast", NP: 48, MaxN: 0, Algorithm: "tree"},
	}}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	tab.normalize()
	cases := []struct {
		k     OpKind
		np, n int
		want  string
	}{
		{KindAllreduce, 48, 10, "recdouble"},
		{KindAllreduce, 48, 64, "recdouble"},
		{KindAllreduce, 48, 65, "mpb"},
		{KindAllreduce, 8, 64, "tree"},
		{KindAllreduce, 8, 1000, "ring"},
		{KindAllreduce, 20, 10, "tree"},       // largest np <= 20 is 8
		{KindAllreduce, 100, 10, "recdouble"}, // wider than measured: reuse np=48
		{KindAllreduce, 4, 10, "tree"},        // below smallest: reuse np=8
		{KindBroadcast, 48, 9999, "tree"},
		{KindReduce, 48, 10, ""}, // op absent from the table
	}
	for _, c := range cases {
		if got := tab.Lookup(c.k, c.np, c.n); got != c.want {
			t.Errorf("Lookup(%s, np=%d, n=%d) = %q, want %q", c.k, c.np, c.n, got, c.want)
		}
	}
}

func TestDecisionTableValidateRejects(t *testing.T) {
	bad := []DecisionTable{
		{Entries: []TableEntry{{Op: "allreduce", NP: 48, Algorithm: "nope"}}},
		{Entries: []TableEntry{{Op: "frobnicate", NP: 48, Algorithm: "ring"}}},
		{Entries: []TableEntry{{Op: "reduce", NP: 0, Algorithm: "ring"}}},
		{Entries: []TableEntry{{Op: "reduce", NP: 8, MaxN: -1, Algorithm: "ring"}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("table %d validated but should not have", i)
		}
	}
	if _, err := ParseDecisionTable([]byte("{not json")); err == nil {
		t.Error("ParseDecisionTable accepted malformed JSON")
	}
}

// TestDefaultTableValid: the committed tuner output must load, validate
// against the registry, and cover every dispatched op on the full chip.
func TestDefaultTableValid(t *testing.T) {
	tab, err := DefaultTable()
	if err != nil {
		t.Fatalf("embedded default table: %v", err)
	}
	for _, k := range OpKinds() {
		for _, n := range []int{1, 64, 552, 100000} {
			name := tab.Lookup(k, 48, n)
			if name == "" {
				t.Errorf("default table has no %s entry for np=48 n=%d", k, n)
				continue
			}
			if LookupAlgorithm(k, name) == nil {
				t.Errorf("default table names unregistered %s algorithm %q", k, name)
			}
		}
	}
}

// TestDefaultTableCoversLargeMeshes: the committed table carries rows
// measured at 128 and 512 cores (tuned on a 16x16x2 mesh), so Tuned()
// on a large mesh no longer inherits the 48-core rows' picks. The
// pinned regression is EXPERIMENTS.md's heuristic-misfire band: at 512
// cores and n = 552 the 48-core tables said ring, which leaves
// ~1-element blocks and runs 2.7x slower than recursive doubling.
func TestDefaultTableCoversLargeMeshes(t *testing.T) {
	tab, err := DefaultTable()
	if err != nil {
		t.Fatalf("embedded default table: %v", err)
	}
	for _, np := range []int{128, 512} {
		for _, k := range OpKinds() {
			found := false
			for _, e := range tab.Entries {
				if e.Op == k.String() && e.NP == np {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("default table has no %s rows measured at np=%d", k, np)
			}
		}
	}
	if got := tab.Lookup(KindAllreduce, 512, 552); got == "ring" || got == "" {
		t.Errorf("Lookup(allreduce, np=512, n=552) = %q — the 48-core ring pick must not survive at 512 cores", got)
	}
	// The 48-core rows themselves must be untouched by the new entries
	// (Lookup picks the largest measured np <= requested).
	if got := tab.Lookup(KindAllreduce, 48, 552); got != "mpb" {
		t.Errorf("Lookup(allreduce, np=48, n=552) = %q, want the committed 48-core pick %q", got, "mpb")
	}
}

// TestTunedClampsAboveLargestMeasuredRow: a communicator wider than
// anything the tuner measured must clamp to the widest measured row —
// for the committed table (widest row np=512) that means np=2048 and a
// 10,000-core chip resolve every op to exactly the np=512 pick, never
// to "" (which would silently fall back to the paper heuristic and its
// known large-mesh misfires) and never to a narrower row.
func TestTunedClampsAboveLargestMeasuredRow(t *testing.T) {
	tab, err := DefaultTable()
	if err != nil {
		t.Fatalf("embedded default table: %v", err)
	}
	widest := 0
	for _, e := range tab.Entries {
		if e.NP > widest {
			widest = e.NP
		}
	}
	if widest != 512 {
		t.Logf("note: widest measured row is now np=%d", widest)
	}
	for _, np := range []int{2048, 10000} {
		for _, k := range OpKinds() {
			for _, n := range []int{1, 64, 552, 100000} {
				got := tab.Lookup(k, np, n)
				if got == "" {
					t.Errorf("Lookup(%s, np=%d, n=%d) = \"\" — no clamp to the widest measured row", k, np, n)
					continue
				}
				if want := tab.Lookup(k, widest, n); got != want {
					t.Errorf("Lookup(%s, np=%d, n=%d) = %q, want the np=%d row's pick %q",
						k, np, n, got, widest, want)
				}
			}
		}
	}
}

// TestRegistryEnumeration locks the registration order (the tuner's
// tie-break) and the per-op membership.
func TestRegistryEnumeration(t *testing.T) {
	want := map[OpKind][]string{
		KindAllreduce: {"ring", "tree", "recdouble", "mpb", "linear", "hier"},
		KindBroadcast: {"ring", "tree", "linear", "hier"},
		KindReduce:    {"ring", "tree", "linear"},
	}
	for k, names := range want {
		got := AlgorithmNames(k)
		if len(got) != len(names) {
			t.Fatalf("%s: got %v, want %v", k, got, names)
		}
		for i := range names {
			if got[i] != names[i] {
				t.Fatalf("%s: got %v, want %v", k, got, names)
			}
		}
	}
}
