package core

import (
	"fmt"
	"sort"

	"scc/internal/metrics"
	"scc/internal/scc"
)

// This file defines the pluggable collective-algorithm registry. The
// paper's central finding is that the right algorithm depends on the
// message size, the communicator size and the point-to-point layer
// underneath (Sec. IV, Figs. 7-9); production MPI stacks (Open MPI
// "tuned") and the SCCL line of work encode that as an explicit set of
// named algorithms plus a selection layer instead of scattered size
// branches. Every algorithm is a named, self-describing unit over the
// Endpoint transport; Ctx dispatches through a Selector (see
// selector.go), so a new algorithm - e.g. a topology-aware tree on the
// 6x4 mesh - is a drop-in registration, not another Config flag.

// OpKind identifies which collective an algorithm implements. It is the
// selection key, distinct from Op (the reduction operator).
type OpKind uint8

// The collectives with more than one registered algorithm.
const (
	KindAllreduce OpKind = iota
	KindBroadcast
	KindReduce
	numOpKinds
)

// String names the op kind like the bench harness does.
func (k OpKind) String() string {
	switch k {
	case KindAllreduce:
		return "allreduce"
	case KindBroadcast:
		return "broadcast"
	case KindReduce:
		return "reduce"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// OpKinds lists every selectable collective.
func OpKinds() []OpKind {
	return []OpKind{KindAllreduce, KindBroadcast, KindReduce}
}

// ParseOpKind resolves an op-kind name.
func ParseOpKind(s string) (OpKind, error) {
	for _, k := range OpKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: %w: unknown collective %q", ErrInvalid, s)
}

// Algorithm is one named collective implementation. A concrete
// algorithm additionally implements the per-op interfaces below for
// every collective it supports; the registry indexes it per op.
type Algorithm interface {
	// Name is the registry key ("ring", "tree", ...); it appears in
	// trace span labels, bench CSV columns and decision tables.
	Name() string
	// Describe is a one-line summary for -list-algos.
	Describe() string
	// Applicable reports whether the algorithm can run on this context
	// for an n-element vector. Selection falls back to the paper
	// heuristic when the chosen algorithm is not applicable.
	Applicable(x *Ctx, n int) bool
}

// AllreduceAlgorithm is implemented by algorithms that provide
// Allreduce.
type AllreduceAlgorithm interface {
	Algorithm
	Allreduce(x *Ctx, src, dst scc.Addr, n int, op Op) error
}

// BroadcastAlgorithm is implemented by algorithms that provide
// Broadcast. root is a core ID, already validated by the dispatcher.
type BroadcastAlgorithm interface {
	Algorithm
	Broadcast(x *Ctx, root int, addr scc.Addr, n int) error
}

// ReduceAlgorithm is implemented by algorithms that provide Reduce.
// root is a core ID, already validated by the dispatcher.
type ReduceAlgorithm interface {
	Algorithm
	Reduce(x *Ctx, root int, src, dst scc.Addr, n int, op Op) error
}

// registry holds the per-op algorithm lists in registration order (the
// deterministic tie-break order for the tuner).
var registry [numOpKinds][]Algorithm

// RegisterAlgorithm adds an algorithm to the registry under every op
// kind whose per-op interface it implements. It panics on a duplicate
// name for the same op or on an algorithm implementing no op at all
// (registration happens at init time; a bad registration is a
// programming error, not a runtime condition).
func RegisterAlgorithm(a Algorithm) {
	registered := false
	add := func(k OpKind) {
		for _, have := range registry[k] {
			if have.Name() == a.Name() {
				panic(fmt.Sprintf("core: duplicate %s algorithm %q", k, a.Name()))
			}
		}
		registry[k] = append(registry[k], a)
		registered = true
	}
	if _, ok := a.(AllreduceAlgorithm); ok {
		add(KindAllreduce)
	}
	if _, ok := a.(BroadcastAlgorithm); ok {
		add(KindBroadcast)
	}
	if _, ok := a.(ReduceAlgorithm); ok {
		add(KindReduce)
	}
	if !registered {
		panic(fmt.Sprintf("core: algorithm %q implements no collective", a.Name()))
	}
}

// AlgorithmsFor returns the algorithms registered for one collective,
// in registration order.
func AlgorithmsFor(k OpKind) []Algorithm {
	if int(k) >= len(registry) {
		return nil
	}
	return append([]Algorithm(nil), registry[k]...)
}

// AlgorithmNames returns the registered names for one collective, in
// registration order.
func AlgorithmNames(k OpKind) []string {
	algs := AlgorithmsFor(k)
	names := make([]string, len(algs))
	for i, a := range algs {
		names[i] = a.Name()
	}
	return names
}

// AllAlgorithmNames returns the union of registered names across all
// collectives, sorted (for flag validation messages).
func AllAlgorithmNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, k := range OpKinds() {
		for _, a := range registry[k] {
			if !seen[a.Name()] {
				seen[a.Name()] = true
				names = append(names, a.Name())
			}
		}
	}
	sort.Strings(names)
	return names
}

// LookupAlgorithm resolves a name for one collective; nil when absent.
func LookupAlgorithm(k OpKind, name string) Algorithm {
	if int(k) >= len(registry) {
		return nil
	}
	for _, a := range registry[k] {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// selectAlg resolves the context's selector for collective k at vector
// size n, falling back to the always-applicable paper heuristic when
// the selector picks an unknown or inapplicable algorithm (e.g. a tuned
// table requesting "mpb" on a survivor group).
func (x *Ctx) selectAlg(k OpKind, n int) Algorithm {
	// A multi-chip context must span chips, so the hierarchical
	// composition overrides any selector; the selector still steers the
	// intra-chip phases through Fabric.Intra or the inner context.
	if x.multiChip() {
		if a := LookupAlgorithm(k, "hier"); a != nil && a.Applicable(x, n) {
			return a
		}
	}
	sel := x.cfg.Selector
	if sel == nil {
		sel = paperSel{}
	}
	if a := LookupAlgorithm(k, sel.Select(x, k, n)); a != nil && a.Applicable(x, n) {
		return a
	}
	return LookupAlgorithm(k, paperSel{}.Select(x, k, n))
}

// traced runs body and, when a span recorder is installed on the core,
// records the whole collective as one labeled span ("allreduce[ring]").
// When a metrics registry is attached it additionally folds the call's
// per-phase time deltas into the per-(op,algorithm) breakdown — the
// data behind the "where the cycles go" table. Without either hook
// this adds no simulated work at all, so bench results are unaffected;
// with them, the only extra actions are Now() reads (which merely
// apply already-deferred local latency early), so virtual-time results
// are bit-identical either way.
func (x *Ctx) traced(k OpKind, a Algorithm, body func() error) error {
	c := x.ue.Core()
	reg := c.Metrics()
	if !c.Tracing() && reg == nil {
		return body()
	}
	t0 := c.Now()
	var before [metrics.NumPhases]int64
	if reg != nil {
		before = reg.PhaseRow(c.ID)
	}
	err := body()
	t1 := c.Now()
	label := k.String() + "[" + a.Name() + "]"
	if reg != nil {
		reg.RecordCollective(label, t1-t0, before, reg.PhaseRow(c.ID))
	}
	c.RecordSpan(label, t0, t1)
	return err
}
