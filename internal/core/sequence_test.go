package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

// Randomized cross-collective sequences: a fresh chip runs a random
// program of mixed collectives (random op, size, root) and every result
// is checked against a sequential reference executor. This guards
// against state leaking between consecutive collectives (stale flags,
// scratch aliasing, partition mismatches) - the class of bug that only
// shows up when operations are chained, as in the GCMC application.

type seqOp struct {
	kind string
	n    int
	root int
}

// refState is the sequential reference: per-core vectors updated by the
// same operations.
type refState struct {
	p    int
	vecs [][]float64 // current value of each core's working vector
}

func (r *refState) apply(op seqOp) {
	switch op.kind {
	case "allreduce":
		sum := make([]float64, op.n)
		for _, v := range r.vecs {
			for i := 0; i < op.n; i++ {
				sum[i] += v[i]
			}
		}
		for _, v := range r.vecs {
			copy(v[:op.n], sum)
		}
	case "broadcast":
		src := r.vecs[op.root]
		for q, v := range r.vecs {
			if q != op.root {
				copy(v[:op.n], src[:op.n])
			}
		}
	case "reduce":
		sum := make([]float64, op.n)
		for _, v := range r.vecs {
			for i := 0; i < op.n; i++ {
				sum[i] += v[i]
			}
		}
		copy(r.vecs[op.root][:op.n], sum)
	}
}

func TestRandomCollectiveSequences(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	kinds := []string{"allreduce", "broadcast", "reduce"}
	for _, cfg := range []Config{ConfigBlocking, ConfigBalanced, ConfigMPB} {
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*17 + 5))
			const maxN = 200
			const steps = 6
			p := 48

			// Build the random program (shared by sim and reference).
			ops := make([]seqOp, steps)
			for i := range ops {
				ops[i] = seqOp{
					kind: kinds[rng.Intn(len(kinds))],
					n:    1 + rng.Intn(maxN),
					root: rng.Intn(p),
				}
			}
			// Initial vectors.
			init := make([][]float64, p)
			for q := range init {
				init[q] = make([]float64, maxN)
				for i := range init[q] {
					init[q][i] = math.Round(rng.Float64()*64) / 8
				}
			}

			// Reference execution.
			ref := &refState{p: p, vecs: make([][]float64, p)}
			for q := range ref.vecs {
				ref.vecs[q] = append([]float64(nil), init[q]...)
			}
			for _, op := range ops {
				ref.apply(op)
			}

			// Simulated execution.
			chip := scc.New(timing.Default())
			comm := rcce.NewComm(chip)
			final := make([][]float64, p)
			chip.Launch(func(c *scc.Core) {
				x := NewCtx(comm.UE(c.ID), cfg)
				work := c.AllocF64(maxN)
				tmp := c.AllocF64(maxN)
				c.WriteF64s(work, init[c.ID])
				for _, op := range ops {
					switch op.kind {
					case "allreduce":
						x.Allreduce(work, tmp, op.n, Sum)
						x.copyPriv(work, tmp, op.n)
					case "broadcast":
						x.Broadcast(op.root, work, op.n)
					case "reduce":
						x.Reduce(op.root, work, tmp, op.n, Sum)
						if c.ID == op.root {
							x.copyPriv(work, tmp, op.n)
						}
					}
				}
				out := make([]float64, maxN)
				c.ReadF64s(work, out)
				final[c.ID] = out
			})
			if err := chip.Run(); err != nil {
				t.Fatalf("%s trial %d (%v): %v", cfg.Name(), trial, ops, err)
			}
			for q := 0; q < p; q++ {
				for i := 0; i < maxN; i++ {
					if math.Abs(final[q][i]-ref.vecs[q][i]) > 1e-6 {
						t.Fatalf("%s trial %d: core %d elem %d = %v, want %v\nprogram: %v",
							cfg.Name(), trial, q, i, final[q][i], ref.vecs[q][i], ops)
					}
				}
			}
		}
	}
}

func TestBackToBackMPBAllreducesLeaveCleanFlags(t *testing.T) {
	// Regression guard for the drained-flag bug: many consecutive
	// MPB-direct Allreduces with varying sizes must keep working and
	// leave all pair flags zero at the end.
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	sizes := []int{96, 100, 144, 97, 200, 96}
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), ConfigMPB)
		src := c.AllocF64(200)
		dst := c.AllocF64(200)
		v := make([]float64, 200)
		for i := range v {
			v[i] = 1
		}
		c.WriteF64s(src, v)
		for _, n := range sizes {
			x.Allreduce(src, dst, n, Sum)
			out := make([]float64, 1)
			c.ReadF64s(dst, out)
			if out[0] != 48 {
				panic(fmt.Sprintf("iteration n=%d: sum %v", n, out[0]))
			}
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	// Every MPB ring flag (roles 4..7) must be back to zero.
	for owner := 0; owner < 48; owner++ {
		for writer := 0; writer < 48; writer++ {
			for role := rcce.FlagMPBSent0; role <= rcce.FlagMPBReady1; role++ {
				off := comm.FlagAddr(owner, writer, role)
				if v := chip.MPBSlice(off, 1)[0]; v != 0 {
					t.Fatalf("stale MPB flag owner=%d writer=%d role=%d value=%d",
						owner, writer, role, v)
				}
			}
		}
	}
}
