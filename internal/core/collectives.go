package core

import (
	"errors"
	"fmt"
	"sync"

	"scc/internal/rcce"
	"scc/internal/scc"
)

// ErrInvalid marks user errors (bad counts, bad roots, malformed block
// layouts). Collectives return it wrapped instead of panicking, so a
// simulated program can degrade gracefully.
var ErrInvalid = errors.New("invalid argument")

// Op is an associative binary reduction operator over float64.
type Op func(a, b float64) float64

// Built-in reduction operators.
var (
	Sum  Op = func(a, b float64) float64 { return a + b }
	Prod Op = func(a, b float64) float64 { return a * b }
	Max  Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	Min Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Config selects which of the paper's optimization steps are active.
type Config struct {
	// Transport picks the point-to-point layer (Sec. IV-A/B).
	Transport TransportKind
	// Balanced enables the load-balanced block partitioning (Sec. IV-C).
	Balanced bool
	// MPBDirect enables the MPB-resident double-buffered Allreduce
	// (Sec. IV-D). It only affects Allreduce and implies the ring
	// phases run on MPB buffers instead of private memory.
	MPBDirect bool
	// Recovery, when non-nil, runs the transport over the hardened
	// protocol (sequence numbers, checksums, bounded waits, retransmit
	// with backoff): collectives then return errors instead of hanging
	// when faults exceed the retry budget. The MPB-direct Allreduce is
	// not hardened; it falls back to the staged path under Recovery.
	Recovery *rcce.Policy
	// SelfHeal, when non-nil, runs the collectives under the
	// self-healing loop (selfheal.go): in-band failure detection,
	// outcome votes, agreed membership and epoched re-execution —
	// no oracle tells the survivors who died. It implies Recovery
	// (defaulting to SelfHeal.Detect when Recovery is nil), since
	// detection is fed by the hardened transport's bounded waits.
	SelfHeal *HealPolicy
	// Selector picks the algorithm per collective call (see
	// selector.go). nil means PaperHeuristic, the pre-registry
	// behavior; an unknown or inapplicable pick also falls back to the
	// heuristic, so a Selector can never make a collective fail.
	Selector Selector
}

// Name renders the configuration like the paper's figure legends.
func (c Config) Name() string {
	if c.MPBDirect {
		return "MPB-based Allreduce"
	}
	if c.Balanced {
		return c.Transport.String() + ", balanced"
	}
	return c.Transport.String()
}

// The paper's five measured configurations, in presentation order.
var (
	ConfigBlocking    = Config{Transport: TransportBlocking}
	ConfigIRCCE       = Config{Transport: TransportIRCCE}
	ConfigLightweight = Config{Transport: TransportLightweight}
	ConfigBalanced    = Config{Transport: TransportLightweight, Balanced: true}
	ConfigMPB         = Config{Transport: TransportLightweight, Balanced: true, MPBDirect: true}
)

// Configs lists the paper's measured configurations in order.
func Configs() []Config {
	return []Config{ConfigBlocking, ConfigIRCCE, ConfigLightweight, ConfigBalanced, ConfigMPB}
}

// Ctx is the per-core collectives context: one UE plus its transport
// endpoint and scratch buffers. Create one per core inside the simulated
// program via NewCtx (full chip) or NewCtxGroup (survivor set).
type Ctx struct {
	ue  *rcce.UE
	ep  Endpoint
	cfg Config
	// grp restricts the collective to a member subset; nil means all
	// cores. All ring/tree/partition logic runs on group ranks. Under
	// self-healing the healer rewrites grp at each committed
	// membership agreement.
	grp *Group

	// healer, when non-nil, wraps every collective call in the
	// detection/vote/reconfigure/re-execute loop of selfheal.go.
	healer *Healer

	// fab, when non-nil with Chips > 1, makes Allreduce/Broadcast/
	// Barrier span a multi-chip system through the "hier" composition
	// (see hier.go); hierInner caches its chip-local sub-context.
	fab       *Fabric
	hierInner *Ctx

	// scratch private-memory vectors for ring partials, sized lazily.
	curAddr, rbufAddr scc.Addr
	scratchLen        int

	// Reusable host-side scratch for the reduction steps: vecA/vecB back
	// reduceInto and copyPriv, gatherBuf backs the MPB-direct phase-2
	// staging, blocksBuf backs Allgather's uniform partition. Reuse is
	// safe because a Ctx runs one collective step at a time.
	vecA, vecB []float64
	gatherBuf  []float64
	blocksBuf  []Block

	// Memoized partition: collectives over the same shape (the common
	// case — every rep of a sweep cell) share one read-only block list.
	// Safe because Block slices are never mutated after construction.
	partBuf      []Block
	partN, partP int
	partBal      bool

	// scrNode holds the pool wrapper this context's scratch came from,
	// so Release can return it without allocating.
	scrNode *ctxScratch
}

// ctxScratch bundles a retired context's host-side scratch buffers for
// reuse by the next Ctx (see Release). Pooling is what keeps a sweep —
// one fresh chip and one fresh Ctx per core per cell — allocation-free
// in the steady state.
type ctxScratch struct {
	vecA, vecB, gatherBuf []float64
	blocksBuf, partBuf    []Block
}

var ctxScratchPool sync.Pool

// adoptScratch seeds a new context with pooled scratch, if any.
func (x *Ctx) adoptScratch() {
	s, ok := ctxScratchPool.Get().(*ctxScratch)
	if !ok {
		return
	}
	x.vecA, x.vecB, x.gatherBuf = s.vecA, s.vecB, s.gatherBuf
	x.blocksBuf, x.partBuf = s.blocksBuf, s.partBuf
	*s = ctxScratch{}
	x.scrNode = s
}

// Release returns the context's scratch buffers to a shared pool for
// reuse by future contexts. The context must not be used afterwards.
// Calling Release is optional; an unreleased context's buffers are
// simply garbage collected.
func (x *Ctx) Release() {
	s := x.scrNode
	if s == nil {
		s = &ctxScratch{}
	}
	*s = ctxScratch{
		vecA: x.vecA, vecB: x.vecB, gatherBuf: x.gatherBuf,
		blocksBuf: x.blocksBuf, partBuf: x.partBuf,
	}
	x.vecA, x.vecB, x.gatherBuf = nil, nil, nil
	x.blocksBuf, x.partBuf = nil, nil
	x.partN, x.partP, x.partBal = 0, 0, false
	x.scrNode = nil
	x.hierInner = nil
	ctxScratchPool.Put(s)
}

// scratchF64 returns (*buf)[:n], reallocating only when capacity grows.
func scratchF64(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// withSelfHealDefaults normalizes a self-healing configuration:
// policies are filled from DefaultHealPolicy and Recovery — required to
// feed the failure detector — defaults to SelfHeal.Detect.
func (c Config) withSelfHealDefaults() Config {
	if c.SelfHeal == nil {
		return c
	}
	p := c.SelfHeal.withDefaults()
	c.SelfHeal = &p
	if c.Recovery == nil {
		r := p.Detect
		c.Recovery = &r
	}
	return c
}

// NewCtx builds a collectives context for one UE, spanning all cores.
func NewCtx(ue *rcce.UE, cfg Config) *Ctx {
	cfg = cfg.withSelfHealDefaults()
	x := &Ctx{ue: ue, ep: newEndpoint(ue, cfg), cfg: cfg, scratchLen: -1}
	x.adoptScratch()
	if cfg.SelfHeal != nil {
		x.healer = NewHealer(ue, *cfg.SelfHeal)
	}
	return x
}

// NewCtxGroup builds a collectives context restricted to a group (the
// failure-aware mode: g is typically Survivors of the dead set). The UE
// must be a member.
func NewCtxGroup(ue *rcce.UE, cfg Config, g *Group) (*Ctx, error) {
	if g == nil {
		return NewCtx(ue, cfg), nil
	}
	if !g.Contains(ue.ID()) {
		return nil, fmt.Errorf("core: %w: core %d is not a member of the group", ErrInvalid, ue.ID())
	}
	cfg = cfg.withSelfHealDefaults()
	x := &Ctx{ue: ue, ep: newEndpoint(ue, cfg), cfg: cfg, grp: g, scratchLen: -1}
	x.adoptScratch()
	if cfg.SelfHeal != nil {
		x.healer = NewHealer(ue, *cfg.SelfHeal)
		x.healer.seedMembers(g.Members())
	}
	return x, nil
}

// NewCtxHealer builds a self-healing context around a persistent Healer
// (the façade keeps one healer per core across Runs: suspicions, the
// agreed member set and the epoch survive a Run boundary). The context
// starts on the healer's current member set; a core the previous
// agreement evicted gets ErrEvicted instead of a context.
func NewCtxHealer(ue *rcce.UE, cfg Config, h *Healer) (*Ctx, error) {
	if h == nil {
		return NewCtx(ue, cfg), nil
	}
	if cfg.SelfHeal == nil {
		p := h.pol
		cfg.SelfHeal = &p
	}
	cfg = cfg.withSelfHealDefaults()
	h.Bind(ue)
	g, err := h.groupFor()
	if err != nil {
		return nil, err
	}
	if g != nil && !g.Contains(ue.ID()) {
		return nil, fmt.Errorf("core: %w: core %d (epoch %d)", ErrEvicted, ue.ID(), h.epoch)
	}
	x := &Ctx{ue: ue, ep: newEndpoint(ue, cfg), cfg: cfg, grp: g, scratchLen: -1, healer: h}
	x.adoptScratch()
	return x, nil
}

// Healer returns the self-healing state machine, or nil when the
// context is not self-healing.
func (x *Ctx) Healer() *Healer { return x.healer }

// UE returns the underlying unit of execution.
func (x *Ctx) UE() *rcce.UE { return x.ue }

// Config returns the active configuration.
func (x *Ctx) Config() Config { return x.cfg }

// Group returns the member group (nil when spanning all cores).
func (x *Ctx) Group() *Group { return x.grp }

// np returns the communicator size (group size, or all cores).
func (x *Ctx) np() int {
	if x.grp != nil {
		return x.grp.Size()
	}
	return x.ue.NumUEs()
}

// rank returns this core's rank within the communicator.
func (x *Ctx) rank() int {
	if x.grp != nil {
		return x.grp.RankOf(x.ue.ID())
	}
	return x.ue.ID()
}

// member translates a communicator rank to a core ID.
func (x *Ctx) member(r int) int {
	if x.grp != nil {
		return x.grp.Member(r)
	}
	return r
}

// rootRank validates a root core ID and returns its communicator rank.
func (x *Ctx) rootRank(fn string, root int) (int, error) {
	if x.grp != nil {
		r := x.grp.RankOf(root)
		if r < 0 {
			return 0, fmt.Errorf("core: %s: %w: root %d is not a group member", fn, ErrInvalid, root)
		}
		return r, nil
	}
	if root < 0 || root >= x.ue.NumUEs() {
		return 0, fmt.Errorf("core: %s: %w: root %d outside [0,%d)", fn, ErrInvalid, root, x.ue.NumUEs())
	}
	return root, nil
}

// checkCount rejects negative element counts.
func checkCount(fn string, n int) error {
	if n < 0 {
		return fmt.Errorf("core: %s: %w: negative count %d", fn, ErrInvalid, n)
	}
	return nil
}

// partitionFor returns the (read-only) partition for the given shape,
// reusing the previous result when the shape is unchanged.
func (x *Ctx) partitionFor(n, p int, balanced bool) []Block {
	if x.partBuf != nil && x.partN == n && x.partP == p && x.partBal == balanced {
		return x.partBuf
	}
	if cap(x.partBuf) < p {
		x.partBuf = make([]Block, p)
	}
	x.partBuf = x.partBuf[:p]
	partitionInto(x.partBuf, n, balanced)
	x.partN, x.partP, x.partBal = n, p, balanced
	return x.partBuf
}

// ensureScratch sizes the two ring scratch vectors to at least n
// elements.
func (x *Ctx) ensureScratch(n int) {
	if n <= x.scratchLen {
		return
	}
	x.curAddr = x.ue.Core().AllocF64(n)
	x.rbufAddr = x.ue.Core().AllocF64(n)
	x.scratchLen = n
}

func mod(a, p int) int { return ((a % p) + p) % p }

// maxBlockLen returns the largest block length of a partition.
func maxBlockLen(blocks []Block) int {
	m := 0
	for _, b := range blocks {
		if b.Len > m {
			m = b.Len
		}
	}
	return m
}

// reduceInto computes dst[i] = op(a[i], b[i]) for n elements, charging
// cached private-memory reads/writes plus per-element FP work. a, b and
// dst are private addresses.
func (x *Ctx) reduceInto(dst, a, b scc.Addr, n int, op Op) {
	if n == 0 {
		return
	}
	core := x.ue.Core()
	va := scratchF64(&x.vecA, n)
	vb := scratchF64(&x.vecB, n)
	core.ReadF64s(a, va)
	core.ReadF64s(b, vb)
	core.ComputeCycles(core.Chip().Model.ReducePerElementCoreCycles * int64(n))
	for i := range va {
		va[i] = op(va[i], vb[i])
	}
	core.WriteF64s(dst, va)
}

// copyPriv copies n elements between private addresses, with costs.
func (x *Ctx) copyPriv(dst, src scc.Addr, n int) {
	if n == 0 {
		return
	}
	core := x.ue.Core()
	v := scratchF64(&x.vecA, n)
	core.ReadF64s(src, v)
	core.WriteF64s(dst, v)
}

// ReduceScatter reduces p vectors of n elements element-wise and leaves
// block `me` of the result (per the active partitioning) at dst. It uses
// the bucket/ring algorithm of Fig. 2: p-1 rounds, each core pushing
// partial blocks to its right neighbor. dst must hold at least the
// largest block. It returns the partition used.
func (x *Ctx) ReduceScatter(src, dst scc.Addr, n int, op Op) ([]Block, error) {
	if err := checkCount("ReduceScatter", n); err != nil {
		return nil, err
	}
	if x.healer != nil {
		var blocks []Block
		err := x.healer.run(x, func() error {
			var e error
			blocks, e = x.reduceScatterBody(src, dst, n, op)
			return e
		})
		return blocks, err
	}
	return x.reduceScatterBody(src, dst, n, op)
}

func (x *Ctx) reduceScatterBody(src, dst scc.Addr, n int, op Op) ([]Block, error) {
	if x.multiChip() {
		return nil, fmt.Errorf("core: ReduceScatter: %w", ErrCrossChip)
	}
	p := x.np()
	me := x.rank()
	blocks := x.partitionFor(n, p, x.cfg.Balanced)
	if p == 1 {
		x.copyPriv(dst, src, n)
		return blocks, nil
	}
	x.ensureScratch(maxBlockLen(blocks))
	right := x.member(mod(me+1, p))
	left := x.member(mod(me-1, p))

	for r := 0; r < p-1; r++ {
		sendIdx := mod(me-1-r, p)
		recvIdx := mod(me-2-r, p)
		sb, rb := blocks[sendIdx], blocks[recvIdx]
		sendAddr := x.curAddr
		if r == 0 {
			// First round sends the raw input block directly.
			sendAddr = src + scc.Addr(8*sb.Off)
		}
		if err := x.ep.Exchange(right, sendAddr, 8*sb.Len, left, x.rbufAddr, 8*rb.Len); err != nil {
			return nil, err
		}
		// Combine the received partial with my own contribution; the
		// result is next round's send (or the final block).
		x.reduceInto(x.curAddr, x.rbufAddr, src+scc.Addr(8*rb.Off), rb.Len, op)
	}
	myBlock := blocks[me]
	x.copyPriv(dst, x.curAddr, myBlock.Len)
	return blocks, nil
}

// allgatherBlocks runs the ring allgather over an arbitrary partition:
// each core starts owning blocks[me] inside dst (at its block offset)
// and after p-1 rounds every block is present in every core's dst.
func (x *Ctx) allgatherBlocks(dst scc.Addr, blocks []Block) error {
	p := x.np()
	me := x.rank()
	if p == 1 {
		return nil
	}
	right := x.member(mod(me+1, p))
	left := x.member(mod(me-1, p))
	for r := 0; r < p-1; r++ {
		sendIdx := mod(me-r, p)
		recvIdx := mod(me-1-r, p)
		sb, rb := blocks[sendIdx], blocks[recvIdx]
		if err := x.ep.Exchange(right, dst+scc.Addr(8*sb.Off), 8*sb.Len,
			left, dst+scc.Addr(8*rb.Off), 8*rb.Len); err != nil {
			return err
		}
	}
	return nil
}

// Allreduce reduces p vectors of n elements element-wise and leaves the
// full result at dst on every core. The algorithm — ring
// ReduceScatter+Allgather, binomial tree composition, recursive
// doubling, or the MPB-direct variant — is picked per call by the
// configured Selector (default: the paper's size heuristic).
func (x *Ctx) Allreduce(src, dst scc.Addr, n int, op Op) error {
	if err := checkCount("Allreduce", n); err != nil {
		return err
	}
	if x.healer != nil {
		return x.healer.run(x, func() error { return x.allreduceBody(src, dst, n, op) })
	}
	return x.allreduceBody(src, dst, n, op)
}

// allreduceBody is one attempt: the group size, algorithm pick and
// execution all happen inside the healed region, so a re-execution
// after membership shrank re-selects for the survivor count.
func (x *Ctx) allreduceBody(src, dst scc.Addr, n int, op Op) error {
	if x.np() == 1 && !x.multiChip() {
		x.copyPriv(dst, src, n)
		return nil
	}
	a := x.selectAlg(KindAllreduce, n).(AllreduceAlgorithm)
	return x.traced(KindAllreduce, a, func() error {
		return a.Allreduce(x, src, dst, n, op)
	})
}

// Reduce reduces to a single root. dst is only meaningful on the root.
// The algorithm (ring ReduceScatter+gather, binomial tree, or the
// linear baseline) is picked per call by the configured Selector.
func (x *Ctx) Reduce(root int, src, dst scc.Addr, n int, op Op) error {
	if err := checkCount("Reduce", n); err != nil {
		return err
	}
	if x.healer != nil {
		return x.healer.run(x, func() error { return x.reduceBody(root, src, dst, n, op) })
	}
	return x.reduceBody(root, src, dst, n, op)
}

// reduceBody validates the root inside the healed region: if the root
// itself died, the re-execution surfaces a deterministic ErrInvalid on
// every survivor instead of retrying a rootless collective.
func (x *Ctx) reduceBody(root int, src, dst scc.Addr, n int, op Op) error {
	if x.multiChip() {
		return fmt.Errorf("core: Reduce: %w (use Allreduce)", ErrCrossChip)
	}
	if _, err := x.rootRank("Reduce", root); err != nil {
		return err
	}
	if x.np() == 1 {
		x.copyPriv(dst, src, n)
		return nil
	}
	a := x.selectAlg(KindReduce, n).(ReduceAlgorithm)
	return x.traced(KindReduce, a, func() error {
		return a.Reduce(x, root, src, dst, n, op)
	})
}

// Broadcast distributes n elements at addr from root to every core. The
// algorithm (scatter+allgather ring, binomial tree, or the linear
// baseline) is picked per call by the configured Selector.
func (x *Ctx) Broadcast(root int, addr scc.Addr, n int) error {
	if err := checkCount("Broadcast", n); err != nil {
		return err
	}
	if x.healer != nil {
		return x.healer.run(x, func() error { return x.broadcastBody(root, addr, n) })
	}
	return x.broadcastBody(root, addr, n)
}

func (x *Ctx) broadcastBody(root int, addr scc.Addr, n int) error {
	if x.multiChip() {
		// The root is a system-global core ID: chip root/NumUEs, local
		// core root%NumUEs (the "hier" algorithm decodes it the same way).
		if root < 0 || root >= x.GlobalNP() {
			return fmt.Errorf("core: Broadcast: %w: root %d outside [0,%d)",
				ErrInvalid, root, x.GlobalNP())
		}
	} else if _, err := x.rootRank("Broadcast", root); err != nil {
		return err
	}
	if x.np() == 1 && !x.multiChip() {
		return nil
	}
	a := x.selectAlg(KindBroadcast, n).(BroadcastAlgorithm)
	return x.traced(KindBroadcast, a, func() error {
		return a.Broadcast(x, root, addr, n)
	})
}

// Allgather concatenates each core's nPer-element contribution (at src)
// into dst (p*nPer elements, ordered by rank) on every core, using the
// ring algorithm.
func (x *Ctx) Allgather(src scc.Addr, nPer int, dst scc.Addr) error {
	if err := checkCount("Allgather", nPer); err != nil {
		return err
	}
	if x.healer != nil {
		return x.healer.run(x, func() error { return x.allgatherBody(src, nPer, dst) })
	}
	return x.allgatherBody(src, nPer, dst)
}

func (x *Ctx) allgatherBody(src scc.Addr, nPer int, dst scc.Addr) error {
	if x.multiChip() {
		return fmt.Errorf("core: Allgather: %w", ErrCrossChip)
	}
	p := x.np()
	me := x.rank()
	// Place my contribution, then ring-rotate contributions.
	x.copyPriv(dst+scc.Addr(8*nPer*me), src, nPer)
	if cap(x.blocksBuf) < p {
		x.blocksBuf = make([]Block, p)
	}
	blocks := x.blocksBuf[:p]
	for i := range blocks {
		blocks[i] = Block{Off: i * nPer, Len: nPer}
	}
	return x.allgatherBlocks(dst, blocks)
}

// Alltoall performs a complete exchange: src holds p blocks of nPer
// elements (block q destined for rank q); after the call dst holds p
// blocks of nPer elements (block q received from rank q). The schedule
// is the linear pairwise exchange (partner = (round - me) mod p), which
// pairs cores symmetrically in every round and therefore stays
// deadlock-free even with the blocking transport ordered by rank.
func (x *Ctx) Alltoall(src, dst scc.Addr, nPer int) error {
	if err := checkCount("Alltoall", nPer); err != nil {
		return err
	}
	if x.healer != nil {
		return x.healer.run(x, func() error { return x.alltoallBody(src, dst, nPer) })
	}
	return x.alltoallBody(src, dst, nPer)
}

func (x *Ctx) alltoallBody(src, dst scc.Addr, nPer int) error {
	if x.multiChip() {
		return fmt.Errorf("core: Alltoall: %w", ErrCrossChip)
	}
	p := x.np()
	me := x.rank()
	for r := 0; r < p; r++ {
		partner := mod(r-me, p)
		sAddr := src + scc.Addr(8*nPer*partner)
		rAddr := dst + scc.Addr(8*nPer*partner)
		if partner == me {
			x.copyPriv(rAddr, sAddr, nPer)
			continue
		}
		if nPer == 0 {
			continue
		}
		if err := x.ep.ExchangePair(x.member(partner), sAddr, 8*nPer, rAddr, 8*nPer); err != nil {
			return err
		}
	}
	return nil
}

// Barrier synchronizes the communicator. The full-chip, fault-free case
// delegates to RCCE's barrier; group or hardened contexts use the group
// barrier (bounded waits under Recovery).
func (x *Ctx) Barrier() error {
	if x.healer != nil {
		return x.healer.run(x, x.barrierBody)
	}
	return x.barrierBody()
}

func (x *Ctx) barrierBody() error {
	if x.multiChip() {
		return x.hierBarrier()
	}
	if x.grp == nil && x.cfg.Recovery == nil {
		x.ue.Barrier()
		return nil
	}
	var members []int
	if x.grp != nil {
		members = x.grp.Members()
	} else {
		members = make([]int, x.ue.NumUEs())
		for i := range members {
			members[i] = i
		}
	}
	if x.cfg.Recovery != nil {
		return x.ue.BarrierGroupRobust(members, *x.cfg.Recovery)
	}
	x.ue.BarrierGroup(members)
	return nil
}

// sanity guard used by tests.
func (x *Ctx) String() string {
	return fmt.Sprintf("Ctx(ue=%d, %s)", x.ue.ID(), x.cfg.Name())
}
