package core

import (
	"testing"
	"testing/quick"
)

func TestPartitionMatchesFig6a(t *testing.T) {
	// 528 elements: all blocks 11 (ratio 1:1).
	blocks := Partition(528, 48)
	for i, b := range blocks {
		if b.Len != 11 {
			t.Fatalf("528: block %d len %d, want 11", i, b.Len)
		}
	}
	// 552 elements: first block 35, rest 11 (~3.2:1).
	blocks = Partition(552, 48)
	if blocks[0].Len != 35 {
		t.Fatalf("552: first block %d, want 35", blocks[0].Len)
	}
	for i := 1; i < 48; i++ {
		if blocks[i].Len != 11 {
			t.Fatalf("552: block %d len %d, want 11", i, blocks[i].Len)
		}
	}
	if r := ImbalanceRatio(blocks); r < 3.1 || r > 3.3 {
		t.Fatalf("552 ratio = %.2f, want ~3.2", r)
	}
	// 575 elements: first block 58 (~5.3:1).
	blocks = Partition(575, 48)
	if blocks[0].Len != 58 {
		t.Fatalf("575: first block %d, want 58", blocks[0].Len)
	}
	if r := ImbalanceRatio(blocks); r < 5.2 || r > 5.4 {
		t.Fatalf("575 ratio = %.2f, want ~5.3", r)
	}
}

func TestPartitionBalancedMatchesFig6b(t *testing.T) {
	// 552 elements: 24 blocks of 12 and 24 of 11 (~1.1:1).
	blocks := PartitionBalanced(552, 48)
	twelves, elevens := 0, 0
	for _, b := range blocks {
		switch b.Len {
		case 12:
			twelves++
		case 11:
			elevens++
		default:
			t.Fatalf("552 balanced: unexpected block length %d", b.Len)
		}
	}
	if twelves != 24 || elevens != 24 {
		t.Fatalf("552 balanced: %dx12 + %dx11, want 24+24", twelves, elevens)
	}
	if r := ImbalanceRatio(blocks); r > 12.0/11.0+1e-9 {
		t.Fatalf("552 balanced ratio = %.3f, want <= 12/11", r)
	}
	// 575: 47 blocks of 12, one of 11.
	blocks = PartitionBalanced(575, 48)
	if ImbalanceRatio(blocks) > 12.0/11.0+1e-9 {
		t.Fatalf("575 balanced ratio too high")
	}
}

// Property: both partitionings cover the vector exactly - contiguous,
// non-overlapping, total length n - and balanced block sizes differ by
// at most one.
func TestPartitionProperties(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw % 2000)
		p := int(pRaw%63) + 1
		for _, balanced := range []bool{false, true} {
			blocks := PartitionFor(n, p, balanced)
			if len(blocks) != p {
				return false
			}
			off := 0
			minLen, maxLen := 1<<30, 0
			for _, b := range blocks {
				if b.Off != off || b.Len < 0 {
					return false
				}
				off += b.Len
				if b.Len < minLen {
					minLen = b.Len
				}
				if b.Len > maxLen {
					maxLen = b.Len
				}
			}
			if off != n {
				return false
			}
			if balanced && maxLen-minLen > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: balancing never increases the largest block.
func TestBalancedNeverWorse(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw % 5000)
		p := int(pRaw%63) + 1
		return maxBlockLen(PartitionBalanced(n, p)) <= maxBlockLen(Partition(n, p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	// n < p: standard puts everything in block 0; balanced spreads 1s.
	std := Partition(5, 48)
	if std[0].Len != 5 {
		t.Fatalf("n<p standard: first block %d, want 5", std[0].Len)
	}
	bal := PartitionBalanced(5, 48)
	ones := 0
	for _, b := range bal {
		if b.Len == 1 {
			ones++
		} else if b.Len != 0 {
			t.Fatalf("n<p balanced: block length %d", b.Len)
		}
	}
	if ones != 5 {
		t.Fatalf("n<p balanced: %d unit blocks, want 5", ones)
	}
	// n == 0.
	for _, b := range PartitionFor(0, 48, true) {
		if b.Len != 0 {
			t.Fatal("zero-length vector produced non-empty blocks")
		}
	}
	// p == 1.
	if got := Partition(100, 1); got[0].Len != 100 {
		t.Fatal("single-block partition wrong")
	}
}

func TestPartitionPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { Partition(10, 0) },
		func() { Partition(-1, 4) },
		func() { PartitionBalanced(10, -2) },
		func() { PartitionBalanced(-5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid partition arguments")
				}
			}()
			f()
		}()
	}
}

func TestImbalanceRatioEdge(t *testing.T) {
	if r := ImbalanceRatio(nil); r != 1 {
		t.Fatalf("empty ratio = %v, want 1", r)
	}
	if r := ImbalanceRatio([]Block{{0, 0}, {0, 0}}); r != 1 {
		t.Fatalf("all-empty ratio = %v, want 1", r)
	}
	if r := ImbalanceRatio([]Block{{0, 10}, {10, 2}, {12, 0}}); r != 5 {
		t.Fatalf("ratio = %v, want 5", r)
	}
}
