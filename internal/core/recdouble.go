package core

import "scc/internal/scc"

// AllreduceRecursiveDoubling is the log-depth Allreduce alternative:
// ceil(log2 p) full-vector exchange+reduce steps instead of the ring's
// 2(p-1) block rounds. For non-power-of-two communicators the standard
// fold applies: the first 2*(p - 2^k) ranks collapse pairwise onto the
// odd member, the surviving 2^k ranks run the doubling, and the folded
// ranks receive the result afterwards.
//
// The tradeoff against the ring (Sec. IV's choice for long vectors):
// recursive doubling moves the FULL vector log2(p) times per core, the
// ring moves it ~2x total in p-sized pieces - so doubling wins on
// latency-dominated short vectors and loses on copy-dominated long
// ones. BenchmarkRingVsRecursiveDoubling locates the crossover.
func (x *Ctx) AllreduceRecursiveDoubling(src, dst scc.Addr, n int, op Op) error {
	if err := checkCount("AllreduceRecursiveDoubling", n); err != nil {
		return err
	}
	p := x.np()
	me := x.rank()
	x.copyPriv(dst, src, n)
	if p == 1 || n == 0 {
		return nil
	}
	x.ensureScratch(n)

	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2

	// Fold: ranks [0, 2*rem) collapse pairwise; evens hand their vector
	// to the odd neighbor and sit out the doubling.
	newRank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		if err := x.ep.Send(x.member(me+1), dst, 8*n); err != nil {
			return err
		}
	case me < 2*rem:
		if err := x.ep.Recv(x.member(me-1), x.rbufAddr, 8*n); err != nil {
			return err
		}
		x.reduceInto(dst, dst, x.rbufAddr, n, op)
		newRank = me / 2
	default:
		newRank = me - rem
	}

	if newRank >= 0 {
		realOf := func(nr int) int {
			if nr < rem {
				return nr*2 + 1
			}
			return nr + rem
		}
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := x.member(realOf(newRank ^ mask))
			if err := x.ep.ExchangePair(partner, dst, 8*n, x.rbufAddr, 8*n); err != nil {
				return err
			}
			x.reduceInto(dst, dst, x.rbufAddr, n, op)
		}
	}

	// Unfold: folded even ranks receive the finished vector from the odd
	// neighbor that carried their contribution.
	switch {
	case me < 2*rem && me%2 == 0:
		return x.ep.Recv(x.member(me+1), dst, 8*n)
	case me < 2*rem:
		return x.ep.Send(x.member(me-1), dst, 8*n)
	}
	return nil
}
