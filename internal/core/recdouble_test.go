package core

import (
	"math"
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

func runRecDouble(t *testing.T, m *timing.Model, cfg Config, n int, seed int64) ([][]float64, simtime.Time) {
	t.Helper()
	chip := scc.New(m)
	comm := rcce.NewComm(chip)
	p := chip.NumCores()
	in := makeInputs(p, n, seed)
	out := make([][]float64, p)
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), cfg)
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		c.WriteF64s(src, in[c.ID])
		x.AllreduceRecursiveDoubling(src, dst, n, Sum)
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		out[c.ID] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("%s: %v", cfg.Name(), err)
	}
	// Verify against the reference.
	want := sumRef(in)
	for id := range out {
		for i := range want {
			if math.Abs(out[id][i]-want[i]) > 1e-9 {
				t.Fatalf("%s: core %d elem %d = %v, want %v", cfg.Name(), id, i, out[id][i], want[i])
			}
		}
	}
	return out, chip.Now()
}

func TestRecursiveDoublingCorrect(t *testing.T) {
	for _, cfg := range []Config{ConfigBlocking, ConfigLightweight} {
		for _, n := range []int{1, 5, 48, 200, 552} {
			runRecDouble(t, timing.Default(), cfg, n, int64(n))
		}
	}
}

func TestRecursiveDoublingOddCoreCounts(t *testing.T) {
	// 9 and 12 cores exercise the fold (non-power-of-two).
	for _, g := range []struct{ w, h, per int }{{3, 3, 1}, {3, 2, 2}} {
		m := timing.Default()
		m.MeshWidth, m.MeshHeight, m.CoresPerTile = g.w, g.h, g.per
		runRecDouble(t, m, ConfigLightweight, 100, 3)
	}
}

func TestRingVsRecursiveDoublingCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Short vectors: log-depth wins. Long vectors: the ring's lower data
	// volume wins - the reason RCCE_comm (and the paper) use the ring
	// for the 500-700 double range.
	lat := func(n int, recdouble bool) simtime.Time {
		chip := scc.New(timing.Default())
		comm := rcce.NewComm(chip)
		chip.Launch(func(c *scc.Core) {
			x := NewCtx(comm.UE(c.ID), ConfigLightweight)
			src := c.AllocF64(n)
			dst := c.AllocF64(n)
			if recdouble {
				x.AllreduceRecursiveDoubling(src, dst, n, Sum)
				x.Barrier()
				t0 := c.Now()
				x.AllreduceRecursiveDoubling(src, dst, n, Sum)
				_ = t0
			} else {
				// Force the ring (bypass the short-message selection).
				blocks := PartitionFor(n, 48, false)
				x.ReduceScatter(src, dst+scc.Addr(8*blocks[c.ID].Off), n, Sum)
				x.allgatherBlocks(dst, blocks)
			}
		})
		if err := chip.Run(); err != nil {
			t.Fatal(err)
		}
		return chip.Now()
	}
	shortRing, shortRD := lat(16, false), lat(16, true)
	longRing, longRD := lat(4000, false), lat(4000, true)
	if shortRD >= shortRing {
		t.Errorf("16 doubles: recursive doubling (%v) should beat the ring (%v)", shortRD, shortRing)
	}
	if longRing >= longRD {
		t.Errorf("4000 doubles: ring (%v) should beat recursive doubling (%v)", longRing, longRD)
	}
}
