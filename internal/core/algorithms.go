package core

import "scc/internal/scc"

// The built-in algorithm units. Each is a stateless named wrapper over
// the Ctx helpers (ring rounds, binomial trees, the MPB-direct ring,
// the naive linear loops); per-call state stays in the Ctx scratch
// buffers exactly as before the registry existed, so registering an
// algorithm costs nothing at collective-call time.

func init() {
	RegisterAlgorithm(ringAlg{})
	RegisterAlgorithm(treeAlg{})
	RegisterAlgorithm(recdoubleAlg{})
	RegisterAlgorithm(mpbAlg{})
	RegisterAlgorithm(linearAlg{})
	RegisterAlgorithm(hierAlg{})
}

// ringAlg is the paper's long-vector workhorse (Sec. IV): the
// bucket/ring ReduceScatter+Allgather structure of Barnett et al.,
// over the active block partitioning.
type ringAlg struct{}

func (ringAlg) Name() string { return "ring" }
func (ringAlg) Describe() string {
	return "bucket/ring ReduceScatter+Allgather over the block partition (Sec. IV long-vector path)"
}
func (ringAlg) Applicable(x *Ctx, n int) bool { return true }

func (ringAlg) Allreduce(x *Ctx, src, dst scc.Addr, n int, op Op) error {
	p := x.np()
	me := x.rank()
	blocks := x.partitionFor(n, p, x.cfg.Balanced)
	// Reduce-scatter phase, with my block landing directly in dst.
	x.ensureScratch(maxBlockLen(blocks))
	if _, err := x.ReduceScatter(src, dst+scc.Addr(8*blocks[me].Off), n, op); err != nil {
		return err
	}
	// Allgather phase over the same partition.
	return x.allgatherBlocks(dst, blocks)
}

func (ringAlg) Broadcast(x *Ctx, root int, addr scc.Addr, n int) error {
	rootR, err := x.rootRank("Broadcast", root)
	if err != nil {
		return err
	}
	p := x.np()
	me := x.rank()
	blocks := x.partitionFor(n, p, x.cfg.Balanced)
	// Scatter phase: the root ships block q to rank q.
	if me == rootR {
		for q := 0; q < p; q++ {
			if q == rootR || blocks[q].Len == 0 {
				continue
			}
			if err := x.ep.Send(x.member(q), addr+scc.Addr(8*blocks[q].Off), 8*blocks[q].Len); err != nil {
				return err
			}
		}
	} else if blocks[me].Len > 0 {
		if err := x.ep.Recv(root, addr+scc.Addr(8*blocks[me].Off), 8*blocks[me].Len); err != nil {
			return err
		}
	}
	// Allgather phase over the same partition reassembles the vector
	// everywhere.
	return x.allgatherBlocks(addr, blocks)
}

func (ringAlg) Reduce(x *Ctx, root int, src, dst scc.Addr, n int, op Op) error {
	rootR, err := x.rootRank("Reduce", root)
	if err != nil {
		return err
	}
	p := x.np()
	me := x.rank()
	blocks := x.partitionFor(n, p, x.cfg.Balanced)
	var blockDst scc.Addr
	if me == rootR {
		blockDst = dst + scc.Addr(8*blocks[me].Off)
	} else {
		x.ensureScratch(maxBlockLen(blocks))
		blockDst = x.curAddr // reduced block staged in scratch
	}
	if _, err := x.ReduceScatter(src, blockDst, n, op); err != nil {
		return err
	}
	// Gather phase: everyone ships its block to the root.
	if me == rootR {
		for q := 0; q < p; q++ {
			if q == rootR || blocks[q].Len == 0 {
				continue
			}
			if err := x.ep.Recv(x.member(q), dst+scc.Addr(8*blocks[q].Off), 8*blocks[q].Len); err != nil {
				return err
			}
		}
		return nil
	}
	if blocks[me].Len > 0 {
		return x.ep.Send(root, blockDst, 8*blocks[me].Len)
	}
	return nil
}

// treeAlg is the short-vector variant suite: binomial trees finish in
// ceil(log2 p) levels instead of the ring's p-1 handshake rounds
// (RCCE_comm's size-selected variants, refs [8], [9]).
type treeAlg struct{}

func (treeAlg) Name() string { return "tree" }
func (treeAlg) Describe() string {
	return "binomial tree (Reduce/Broadcast; Allreduce = Reduce then Broadcast), log-depth short-vector variant"
}
func (treeAlg) Applicable(x *Ctx, n int) bool { return true }

func (treeAlg) Allreduce(x *Ctx, src, dst scc.Addr, n int, op Op) error {
	// Tree Reduce to the lowest member followed by tree Broadcast
	// (RCCE_comm's composition; 2*log2(p) levels beat 2*(p-1) ring
	// rounds for tiny vectors).
	if err := x.ReduceTree(x.member(0), src, dst, n, op); err != nil {
		return err
	}
	return x.BroadcastTree(x.member(0), dst, n)
}

func (treeAlg) Broadcast(x *Ctx, root int, addr scc.Addr, n int) error {
	return x.BroadcastTree(root, addr, n)
}

func (treeAlg) Reduce(x *Ctx, root int, src, dst scc.Addr, n int, op Op) error {
	return x.ReduceTree(root, src, dst, n, op)
}

// recdoubleAlg is log-depth Allreduce moving the full vector each
// level: wins on latency-dominated sizes, loses on copy-dominated ones
// (see recdouble.go for the fold handling of non-power-of-two p).
type recdoubleAlg struct{}

func (recdoubleAlg) Name() string { return "recdouble" }
func (recdoubleAlg) Describe() string {
	return "recursive-doubling Allreduce: ceil(log2 p) full-vector exchange+reduce steps"
}
func (recdoubleAlg) Applicable(x *Ctx, n int) bool { return true }

func (recdoubleAlg) Allreduce(x *Ctx, src, dst scc.Addr, n int, op Op) error {
	return x.AllreduceRecursiveDoubling(src, dst, n, op)
}

// mpbAlg is the hardware-specific Allreduce of Sec. IV-D: the ring
// operating directly on the MPBs with double buffering. Full-chip,
// fault-free only (the hardened protocol does not cover the MPB-direct
// handshake); oversized vectors fall back internally to the staged
// ring, mirroring the pre-registry behavior.
type mpbAlg struct{}

func (mpbAlg) Name() string { return "mpb" }
func (mpbAlg) Describe() string {
	return "MPB-resident double-buffered ring Allreduce (Sec. IV-D, full chip only)"
}
func (mpbAlg) Applicable(x *Ctx, n int) bool {
	return x.grp == nil && x.cfg.Recovery == nil
}

func (mpbAlg) Allreduce(x *Ctx, src, dst scc.Addr, n int, op Op) error {
	return x.allreduceMPB(src, dst, n, op)
}

// linearAlg is the naive serial-root baseline (the RCCE native
// collectives of Sec. III that "do not scale well"): every transfer
// moves the full vector through the root. Registered so the tuner and
// the equivalence suite exercise a known-bad reference point.
type linearAlg struct{}

func (linearAlg) Name() string { return "linear" }
func (linearAlg) Describe() string {
	return "serial root loop moving full vectors (RCCE-native baseline, Sec. III)"
}
func (linearAlg) Applicable(x *Ctx, n int) bool { return true }

func (linearAlg) Broadcast(x *Ctx, root int, addr scc.Addr, n int) error {
	rootR, err := x.rootRank("Broadcast", root)
	if err != nil {
		return err
	}
	p := x.np()
	me := x.rank()
	if n == 0 {
		return nil
	}
	if me == rootR {
		for q := 0; q < p; q++ {
			if q == rootR {
				continue
			}
			if err := x.ep.Send(x.member(q), addr, 8*n); err != nil {
				return err
			}
		}
		return nil
	}
	return x.ep.Recv(root, addr, 8*n)
}

func (linearAlg) Reduce(x *Ctx, root int, src, dst scc.Addr, n int, op Op) error {
	rootR, err := x.rootRank("Reduce", root)
	if err != nil {
		return err
	}
	p := x.np()
	me := x.rank()
	if me != rootR {
		if n == 0 {
			return nil
		}
		return x.ep.Send(root, src, 8*n)
	}
	x.copyPriv(dst, src, n)
	if n == 0 {
		return nil
	}
	x.ensureScratch(n)
	for q := 0; q < p; q++ {
		if q == rootR {
			continue
		}
		if err := x.ep.Recv(x.member(q), x.rbufAddr, 8*n); err != nil {
			return err
		}
		x.reduceInto(dst, dst, x.rbufAddr, n, op)
	}
	return nil
}

func (a linearAlg) Allreduce(x *Ctx, src, dst scc.Addr, n int, op Op) error {
	root := x.member(0)
	if err := a.Reduce(x, root, src, dst, n, op); err != nil {
		return err
	}
	return a.Broadcast(x, root, dst, n)
}
