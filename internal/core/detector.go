package core

import (
	"scc/internal/metrics"
	"scc/internal/rcce"
	"scc/internal/simtime"
)

// Detector is the in-band failure detector: per-peer suspicion state fed
// by the hardened protocol's bounded-wait machinery. A peer becomes
// suspected when a deadline-with-backoff retry budget toward it is
// exhausted (the transport's ErrUnreachable path) and is cleared again
// by any successful handshake with it. Suspicion is a local, fallible
// hint — live cores routinely get suspected when a shared neighbor dies
// and stalls them — so membership decisions never consume it directly;
// the agreement protocol in selfheal.go uses participation instead and
// suspicions only steer coordinator choice and wait budgets.
//
// The detector mutates host-side state only and never advances virtual
// time, so installing one keeps runs bit-identical.
type Detector struct {
	ue        *rcce.UE
	suspected []bool
	firstAt   []simtime.Time // virtual time of first (current) suspicion, -1 = none
	susp      int64          // suspicion transitions (cumulative)
	clears    int64          // suspicion clears (cumulative)
	firstEver simtime.Time   // first suspicion ever, -1 = never (detection latency anchor)
}

// newDetector builds a detector for the UE and installs itself as the
// UE's peer observer.
func newDetector(ue *rcce.UE) *Detector {
	d := &Detector{
		suspected: make([]bool, ue.NumUEs()),
		firstAt:   make([]simtime.Time, ue.NumUEs()),
	}
	for i := range d.firstAt {
		d.firstAt[i] = -1
	}
	d.firstEver = -1
	d.bind(ue)
	return d
}

// bind re-attaches the detector to a (possibly fresh) UE for the same
// core, keeping accumulated suspicion state. The façade rebuilds UEs per
// Run; detector state must survive that.
func (d *Detector) bind(ue *rcce.UE) {
	d.ue = ue
	ue.SetPeerObserver(d.observe)
}

func (d *Detector) observe(peer int, alive bool) {
	if alive {
		d.Clear(peer)
	} else {
		d.Suspect(peer)
	}
}

// Suspect marks a peer suspected (idempotent); the first transition
// records the current virtual time.
func (d *Detector) Suspect(peer int) {
	if peer < 0 || peer >= len(d.suspected) || d.suspected[peer] {
		return
	}
	d.suspected[peer] = true
	d.firstAt[peer] = d.ue.Core().Now()
	if d.firstEver < 0 {
		d.firstEver = d.firstAt[peer]
	}
	d.susp++
	if reg := d.ue.Core().Metrics(); reg != nil {
		reg.Count(d.ue.ID(), metrics.CtrSuspicions)
	}
}

// Clear removes suspicion from a peer (idempotent).
func (d *Detector) Clear(peer int) {
	if peer < 0 || peer >= len(d.suspected) || !d.suspected[peer] {
		return
	}
	d.suspected[peer] = false
	d.firstAt[peer] = -1
	d.clears++
	if reg := d.ue.Core().Metrics(); reg != nil {
		reg.Count(d.ue.ID(), metrics.CtrSuspicionClears)
	}
}

// Suspected reports whether the peer is currently suspected.
func (d *Detector) Suspected(peer int) bool {
	return peer >= 0 && peer < len(d.suspected) && d.suspected[peer]
}

// FirstSuspectedAt returns the virtual time the current suspicion of the
// peer began, or -1 when the peer is not suspected.
func (d *Detector) FirstSuspectedAt(peer int) simtime.Time {
	if !d.Suspected(peer) {
		return -1
	}
	return d.firstAt[peer]
}

// FirstSuspicionAt returns the virtual time of the first suspicion this
// detector ever raised (never reset by clears), or -1 when none was.
func (d *Detector) FirstSuspicionAt() simtime.Time { return d.firstEver }

// Suspicions and Clears report the cumulative transition counts.
func (d *Detector) Suspicions() int64 { return d.susp }

// Clears reports how many suspicions were later cleared.
func (d *Detector) Clears() int64 { return d.clears }

// fillBitmap writes the suspicion set as a little-endian bitmap (bit
// i%8 of byte i/8 set = core i suspected) into buf.
func (d *Detector) fillBitmap(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	for i, s := range d.suspected {
		if s {
			buf[i/8] |= 1 << (i % 8)
		}
	}
}
