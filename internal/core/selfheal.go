package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"scc/internal/metrics"
	"scc/internal/rcce"
	"scc/internal/simtime"
)

// Self-healing collective runtime: no oracle tells the survivors who
// died. Instead the runtime closes the loop in-band:
//
//  1. Detection. The hardened transport's bounded waits feed a per-peer
//     Detector (detector.go): a retry budget exhausted toward a peer
//     raises a suspicion, any later successful handshake clears it.
//     Suspicions are fallible local hints — a live core is routinely
//     suspected when a shared neighbor dies and stalls it — so they are
//     recorded (detection latency is a measured quantity) but never
//     filter membership or steer coordinator choice.
//
//  2. Outcome vote. After every wrapped collective each member reaches
//     the vote (its attempt either failed or completed); a flag-token
//     round over the MPB establishes whether *all* members succeeded.
//     Only a unanimous success commits the collective — otherwise
//     everyone proceeds to reconfiguration together, including members
//     whose own attempt happened to complete.
//
//  3. Membership agreement. Coordinator choice is attempt-indexed
//     rotation over the current member list — a pure function of shared
//     state, so every live member tries the same candidate at the same
//     attempt no matter how their local suspicion sets diverge. The
//     coordinator collects exact attempt-derived arrive tokens under a
//     deadline shared by the whole collection phase (dead members run
//     the clock down together instead of each consuming a private
//     budget), assembles the view from the arrivals, and publishes view
//     bitmap + epoch through each member's MPB line. Members stuck on a
//     different collective call (a dropped vote release can strand one)
//     ship their call sequence with the arrival; only the largest
//     same-call cohort enters the view, so desynchronized members are
//     evicted with a typed error instead of exchanging mismatched
//     payloads. Every phase of a failed attempt ends with an idle pad
//     to a fixed attempt-relative deadline, so the drift between
//     members stays bounded by their initial skew instead of
//     compounding across attempts.
//
//  4. Epoch adoption. Each member salts the hardened protocol's
//     checksums with the new epoch, restarts its sequence counters and
//     wipes its own data-protocol flag bytes (rcce.SetEpoch +
//     ResetProtocolFlags), so no stale chunk, ACK or progress byte of
//     the aborted attempt can be mistaken for fresh traffic. The epoch
//     barrier doubles as the commit point: only members that passed it
//     re-execute the collective on the agreed survivor group.
//
// Everything above runs on simulated cores over the MPB with priced
// flag traffic and deterministic timeouts, so same-seed runs are
// bit-identical and recovery cost is a measured quantity.

// Sentinel errors of the self-healing runtime.
var (
	// ErrEvicted: the agreed survivor view does not contain this core
	// (it was partitioned away from the quorum, or stranded on a
	// different collective call than the majority cohort).
	ErrEvicted = errors.New("core: evicted from agreed survivor group")
	// ErrNoQuorum: membership agreement could not assemble a majority of
	// the previous group.
	ErrNoQuorum = errors.New("core: no quorum for membership agreement")
	// ErrHealGiveUp: the vote/reconfigure/re-execute loop exceeded
	// HealPolicy.MaxRounds.
	ErrHealGiveUp = errors.New("core: self-healing rounds exhausted")
)

// HealPolicy bounds the self-healing runtime's waits and retries.
type HealPolicy struct {
	// Detect is the hardened-transport policy installed for the
	// collectives themselves: short, so a dead peer is given up on
	// quickly and the failure surfaces as ErrUnreachable.
	Detect rcce.Policy
	// Member's total budget is the agreement protocol's unit of time B:
	// collection phases run against a shared deadline of 2B, release
	// waits against 4B (vote) or 6B (membership), and a failed attempt
	// is padded to 7B. B must cover the worst-case skew between members
	// entering the protocol — a live member still burning its own
	// Detect budget toward the dead core — with ample margin.
	Member rcce.Policy
	// MaxRounds caps vote → reconfigure → re-execute cycles per
	// collective call before ErrHealGiveUp.
	MaxRounds int
}

// DefaultHealPolicy returns the tuned defaults used by the chaos soak
// and the faultbench self-healing sweeps. Detect carries jitter so the
// survivors' retransmit storms toward a dead core de-correlate. Its
// total budget (≈ 76 ms of virtual time) must exceed the slowest
// legitimate wait inside any collective — a linear-algorithm root
// serving 47 sequential 16 KB transfers keeps its last sender waiting
// ≈ 25 ms, and a shorter budget makes late ranks abort a merely busy
// root forever. Member is sized so its total budget (≈ 254 ms) dwarfs
// the worst-case entry skew (a peer's full Detect budget).
func DefaultHealPolicy() HealPolicy {
	return HealPolicy{
		Detect:    rcce.Policy{Timeout: simtime.Microseconds(300), Backoff: 2, MaxRetries: 7, Jitter: 4},
		Member:    rcce.Policy{Timeout: simtime.Microseconds(2000), Backoff: 2, MaxRetries: 6},
		MaxRounds: 8,
	}
}

func (p HealPolicy) withDefaults() HealPolicy {
	d := DefaultHealPolicy()
	if p.Detect == (rcce.Policy{}) {
		p.Detect = d.Detect
	}
	if p.Member == (rcce.Policy{}) {
		p.Member = d.Member
	}
	if p.MaxRounds <= 0 {
		p.MaxRounds = d.MaxRounds
	}
	return p
}

// RecoveryReport summarizes one core's self-healing activity.
type RecoveryReport struct {
	Suspicions  int64 // detector suspicion transitions
	Clears      int64 // suspicions later cleared (false alarms)
	Votes       int64 // outcome-vote rounds participated in
	VotesFailed int64 // votes that did not reach unanimous success
	Reconfigs   int64 // committed membership agreements
	Reexecs     int64 // collective re-executions after reconfiguration
	Evicted     int64 // members dropped across all reconfigurations

	Epoch          uint32       // current communicator epoch
	FirstSuspectAt simtime.Time // first suspicion ever (-1 = none)
	LastAgreeAt    simtime.Time // last committed agreement (-1 = none)
}

// Healer is one core's self-healing state machine. It persists across
// collective calls (and across façade Runs): suspicions, the agreed
// member set and the communicator epoch are durable, so a second
// failure starts from the already-shrunk group.
type Healer struct {
	ue  *rcce.UE
	det *Detector
	pol HealPolicy

	epoch   uint32
	members []int
	voteSeq uint32 // vote-token counter within the epoch
	collSeq uint32 // wrapped-collective call counter (mod 256 on the wire)
	active  bool   // reentrancy guard: algorithms call wrapped collectives

	rep RecoveryReport

	// MPB payload scratch.
	bitmap  []byte
	viewBuf []int
	seqBuf  []byte // per-core call-sequence bytes read during coordination
}

// NewHealer builds a self-healing state machine for the UE, initially
// spanning all cores at epoch 0.
func NewHealer(ue *rcce.UE, pol HealPolicy) *Healer {
	n := ue.NumUEs()
	comm := ue.Comm()
	bl := comm.ViewBitmapBytes()
	if bl != (n+7)/8 || rcce.FlagSuspBase+bl != comm.FlagViewEpoch() ||
		comm.FlagViewEpoch()+4 > comm.FlagCollSeq() {
		panic(fmt.Sprintf("core: %d cores need a %d-byte suspicion bitmap plus epoch word; flag region ends at %d",
			n, bl, comm.FlagCollSeq()))
	}
	h := &Healer{
		ue:      ue,
		pol:     pol.withDefaults(),
		members: make([]int, n),
		bitmap:  make([]byte, bl),
		viewBuf: make([]int, 0, n),
		seqBuf:  make([]byte, n),
	}
	for i := range h.members {
		h.members[i] = i
	}
	h.det = newDetector(ue)
	h.rep.FirstSuspectAt = -1
	h.rep.LastAgreeAt = -1
	return h
}

// Bind re-attaches the healer to a fresh UE for the same core (the
// façade rebuilds UEs per Run) and re-applies the current epoch to the
// new UE's protocol state.
func (h *Healer) Bind(ue *rcce.UE) {
	h.ue = ue
	h.det.bind(ue)
	if h.epoch != 0 {
		ue.SetEpoch(h.epoch)
	}
}

// Detector exposes the failure detector (read-only use).
func (h *Healer) Detector() *Detector { return h.det }

// Epoch returns the current communicator epoch.
func (h *Healer) Epoch() uint32 { return h.epoch }

// Members returns the current agreed member set (a copy).
func (h *Healer) Members() []int { return append([]int(nil), h.members...) }

// Report returns the healing activity summary, folding in the
// detector's live counts.
func (h *Healer) Report() RecoveryReport {
	r := h.rep
	r.Suspicions = h.det.Suspicions()
	r.Clears = h.det.Clears()
	r.FirstSuspectAt = h.det.FirstSuspicionAt()
	r.Epoch = h.epoch
	return r
}

// seedMembers restricts the healer's initial membership (used when a
// context is built over an explicit group).
func (h *Healer) seedMembers(members []int) {
	h.members = append(h.members[:0], members...)
}

// groupFor materializes the current member set as a Group, or nil when
// it still spans all cores.
func (h *Healer) groupFor() (*Group, error) {
	if len(h.members) == h.ue.NumUEs() {
		return nil, nil
	}
	return NewGroup(h.members, h.ue.NumUEs())
}

// count bumps a self-healing metrics counter, if a registry is attached.
func (h *Healer) count(c metrics.Counter) {
	if reg := h.ue.Core().Metrics(); reg != nil {
		reg.Count(h.ue.ID(), c)
	}
}

// policyBudget returns the total wait budget pol grants across all its
// retries: the sum of the exponentially widened windows.
func policyBudget(pol rcce.Policy) simtime.Duration {
	total := simtime.Duration(0)
	w := pol.Timeout
	for i := 0; i <= pol.MaxRetries; i++ {
		total += w
		w *= simtime.Duration(pol.Backoff)
	}
	return total
}

// unit returns B, the agreement protocol's unit of time.
func (h *Healer) unit() simtime.Duration { return policyBudget(h.pol.Member) }

// waitUntil waits for pred on the flag byte at off until the absolute
// deadline. The deadline is shared by a whole collection phase: several
// missing peers run the clock down together instead of each consuming a
// private budget, which keeps the phase length — and with it the
// release-wait budgets of everyone else — independent of how many
// peers died. A timed-out wait pays one timeout check; a wait entered
// past the deadline degenerates to a single priced probe.
func (h *Healer) waitUntil(off int, deadline simtime.Time, pred func(byte) bool) (byte, bool) {
	c := h.ue.Core()
	if rem := deadline - c.Now(); rem > 0 {
		v, ok := c.WaitFlagMatch(off, rem, pred)
		if !ok {
			c.OverheadCycles(c.Chip().Model.OverheadTimeoutCheck)
		}
		return v, ok
	}
	v := c.ProbeFlag(off)
	return v, pred(v)
}

// padTo idles the core until absolute time t. Failure paths of one
// protocol attempt differ in length (a coordinator strikes out after
// its 2B collection, a follower only after its 6B release wait);
// padding every failed attempt to the same attempt-relative deadline
// keeps the members aligned, so the drift between them stays bounded
// by their initial skew instead of compounding attempt over attempt.
func (h *Healer) padTo(t simtime.Time) {
	c := h.ue.Core()
	if d := t - c.Now(); d > 0 {
		c.Compute(d)
	}
}

// quorum returns the minimum view size that may commit: a strict
// majority of the previous membership. Anything smaller could be the
// minority side of a partition — committing it risks two disjoint
// groups both "succeeding" — so sub-majority agreement returns
// ErrNoQuorum instead.
func (h *Healer) quorum(oldSize int) int { return oldSize/2 + 1 }

// arriveTok derives the membership arrive token for one agreement
// attempt. It is a pure function of shared state (epoch, attempt), so
// aligned members compute identical values and the coordinator matches
// arrivals exactly — no clearing, no change-detection races. 13 is
// coprime to 127, so consecutive attempts and epochs never alias; a
// stale flag from ≥127 attempts ago can alias (and at worst costs one
// failed attempt when the phantom member misses the epoch barrier).
func arriveTok(epoch uint32, attempt int) byte {
	return byte(1 + (epoch+uint32(attempt))*13%127)
}

// seqAfter reports whether call sequence a is ahead of b in the mod-256
// window.
func seqAfter(a, b byte) bool { return a != b && a-b < 128 }

// run executes body under the self-healing loop: every outermost call
// votes on its outcome, and anything short of unanimous success leads
// the members to agree on a survivor view, adopt a fresh epoch and
// re-execute. Nested collective calls (ring allreduce calls
// ReduceScatter, linear allreduce calls Reduce) pass through unwrapped —
// only the outermost call heals.
func (h *Healer) run(x *Ctx, body func() error) error {
	if h.active {
		return body()
	}
	h.active = true
	h.collSeq++
	defer func() { h.active = false }()

	var err error
	for round := 0; ; round++ {
		err = body()
		if err != nil && !errors.Is(err, rcce.ErrUnreachable) {
			return err // deterministic user error: same on every member
		}
		if len(h.members) <= 1 {
			return err // nobody left to vote with
		}
		if h.vote(err == nil) && err == nil {
			return nil // unanimous success
		}
		if round+1 >= h.pol.MaxRounds {
			return fmt.Errorf("core: self-heal: %w: %d rounds at epoch %d (last error: %v)",
				ErrHealGiveUp, round+1, h.epoch, err)
		}
		if rerr := h.reconfigure(x); rerr != nil {
			return rerr
		}
		h.rep.Reexecs++
		h.count(metrics.CtrReexecs)
	}
}

// vote runs one outcome-vote round over the current members and reports
// whether all of them succeeded. The lowest member collects a per-member
// token (tok = success, tok|0x80 = failure) from each member's
// vote-arrive flag under a shared 2B deadline and publishes the verdict
// through the vote-release flags; members wait for the verdict until
// 4B. Tokens are derived from (epoch, voteSeq), so consecutive votes
// use distinct values and a stale flag can never satisfy the wait; the
// vote flags are wiped at epoch adoption, which kills the cross-epoch
// aliasing case. A member that cannot reach the collector treats the
// vote as failed (and suspects the collector), which safely funnels it
// into reconfiguration. A failed vote pads every member to the same
// 4B mark so they enter reconfiguration aligned.
func (h *Healer) vote(ok bool) bool {
	u, c := h.ue, h.ue.Core()
	comm := u.Comm()
	m := c.Chip().Model
	c.OverheadCycles(m.OverheadBlockingCall)
	t0 := c.Now()
	B := h.unit()

	h.voteSeq++
	tok := byte(1 + (h.epoch*31+h.voteSeq)%127)
	fail := tok | 0x80
	isVote := func(v byte) bool { return v == tok || v == fail }

	me := u.ID()
	root := h.members[0]
	h.rep.Votes++
	h.count(metrics.CtrVotes)

	agreed := false
	if me == root {
		all := ok
		deadline := t0 + 2*B
		for _, p := range h.members {
			if p == me {
				continue
			}
			v, got := h.waitUntil(comm.FlagAddr(root, p, rcce.FlagVoteArrive), deadline, isVote)
			if !got {
				h.det.Suspect(p)
				all = false
				continue
			}
			h.det.Clear(p)
			if v != tok {
				all = false
			}
		}
		rel := tok
		if !all {
			rel = fail
		}
		for _, p := range h.members {
			if p != me {
				c.SetFlag(comm.FlagAddr(p, root, rcce.FlagVoteRelease), rel)
			}
		}
		agreed = all
	} else {
		val := tok
		if !ok {
			val = fail
		}
		c.SetFlag(comm.FlagAddr(root, me, rcce.FlagVoteArrive), val)
		v, got := h.waitUntil(comm.FlagAddr(me, root, rcce.FlagVoteRelease), t0+4*B, isVote)
		if got {
			h.det.Clear(root)
			agreed = v == tok
		} else {
			h.det.Suspect(root)
		}
	}
	if !agreed {
		h.rep.VotesFailed++
		h.count(metrics.CtrVotesFailed)
		h.padTo(t0 + 4*B)
	}
	c.RecordSpan("heal-vote", t0, c.Now())
	return agreed
}

// reconfigure drives membership agreement until a quorum view commits.
// Coordinator choice is attempt-indexed rotation over the member list —
// identical on every live member regardless of how their suspicion
// sets diverge — and each attempt proposes epoch = current + attempt,
// so retries never reuse a token. A failed attempt (dead coordinator,
// sub-quorum arrivals, failed epoch barrier) pads to the fixed 7B
// attempt length and moves everyone to the next candidate together.
// On commit the context's group is rebuilt over the agreed survivors.
func (h *Healer) reconfigure(x *Ctx) error {
	u, c := h.ue, h.ue.Core()
	m := c.Chip().Model
	c.OverheadCycles(m.OverheadBlockingCall)
	t0 := c.Now()
	me := u.ID()
	B := h.unit()

	oldSize := len(h.members)
	maxAttempts := oldSize + 2
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		ta := c.Now()
		coord := h.members[(attempt-1)%oldSize]

		var view []int
		var epoch uint32
		var ok bool
		if coord == me {
			epoch = h.epoch + uint32(attempt)
			view, ok = h.coordinate(epoch, attempt, ta, B)
		} else {
			view, epoch, ok = h.follow(coord, attempt, ta, B)
			if ok && epoch <= h.epoch {
				ok = false // stale or bogus proposal
			}
		}
		if ok && len(view) >= h.quorum(oldSize) {
			if !containsInt(view, me) {
				return fmt.Errorf("core: self-heal: %w: view of %d cores at epoch %d excludes core %d",
					ErrEvicted, len(view), epoch, me)
			}
			// Tentative adoption: salt the hardened protocol with the new
			// epoch and wipe this core's data-protocol flag bytes so the
			// aborted attempt's chunks, ACKs and progress bytes are inert.
			// Committed only if the epoch barrier over the view passes.
			u.SetEpoch(epoch)
			u.ResetProtocolFlags()
			if h.epochBarrier(view, epoch, ta, B) {
				h.rep.Evicted += int64(len(h.members) - len(view))
				h.members = append(h.members[:0], view...)
				h.epoch = epoch
				h.voteSeq = 0
				h.rep.Reconfigs++
				h.rep.LastAgreeAt = c.Now()
				h.count(metrics.CtrReconfigs)

				g, err := NewGroup(h.members, u.NumUEs())
				if err != nil {
					return err
				}
				x.grp = g
				c.RecordSpan("heal-membership", t0, c.Now())
				return nil
			}
		}
		h.padTo(ta + 7*B)
	}
	return fmt.Errorf("core: self-heal: %w: no stable view after %d attempts (epoch %d)",
		ErrNoQuorum, maxAttempts, h.epoch)
}

// coordinate runs the coordinator side of one agreement attempt: wait
// for each current member's exact arrive token under the shared 2B
// collection deadline, read the arrivals' call-sequence bytes, keep the
// largest same-call cohort (ties to the cohort that is further along),
// and publish view bitmap + epoch + release token to every view member.
// Returns ok=false when the cohort falls short of quorum. A coordinator
// whose own call sequence is in the minority publishes the view it
// assembled and is then evicted by its caller — the view members commit
// without it.
func (h *Healer) coordinate(epoch uint32, attempt int, ta simtime.Time, B simtime.Duration) ([]int, bool) {
	u, c := h.ue, h.ue.Core()
	comm := u.Comm()
	me := u.ID()
	tok := arriveTok(h.epoch, attempt)
	deadline := ta + 2*B

	arrived := h.viewBuf[:0]
	for _, p := range h.members {
		if p == me {
			h.seqBuf[me] = byte(h.collSeq)
			arrived = append(arrived, me)
			continue
		}
		off := comm.FlagAddr(me, p, rcce.FlagMemberArrive)
		if _, ok := h.waitUntil(off, deadline, func(v byte) bool { return v == tok }); !ok {
			h.det.Suspect(p)
			continue
		}
		h.det.Clear(p)
		h.seqBuf[p] = c.ProbeFlag(comm.FlagAddr(me, p, comm.FlagCollSeq()))
		arrived = append(arrived, p)
	}

	// Largest same-call cohort: a member stranded on a different
	// collective call must not exchange payload with this view.
	var bestSeq byte
	best := -1
	for _, p := range arrived {
		s := h.seqBuf[p]
		n := 0
		for _, q := range arrived {
			if h.seqBuf[q] == s {
				n++
			}
		}
		if n > best || (n == best && seqAfter(s, bestSeq)) {
			best, bestSeq = n, s
		}
	}
	k := 0
	for _, p := range arrived {
		if h.seqBuf[p] == bestSeq {
			arrived[k] = p
			k++
		}
	}
	view := arrived[:k]
	if len(view) < h.quorum(len(h.members)) {
		return nil, false
	}

	// Publish: payload first (bitmap + epoch), release flag last — the
	// flag write lands after the payload in virtual time, so a member
	// that sees the release reads a complete proposal.
	fillViewBitmap(h.bitmap, view)
	var eb [4]byte
	binary.LittleEndian.PutUint32(eb[:], epoch)
	rel := byte(1 + epoch%127)
	for _, p := range view {
		if p == me {
			continue
		}
		c.MPBWrite(comm.FlagAddr(p, me, rcce.FlagSuspBase), h.bitmap)
		c.MPBWrite(comm.FlagAddr(p, me, comm.FlagViewEpoch()), eb[:])
		c.SetFlag(comm.FlagAddr(p, me, rcce.FlagMemberRelease), rel)
	}
	h.viewBuf = view
	return view, true
}

// follow runs the member side of one agreement attempt against coord:
// clear my own release line (so a stale proposal can't be re-adopted),
// ship my suspicion bitmap and call-sequence byte, raise the exact
// attempt-derived arrive token, and wait for the proposal until the 6B
// mark — long enough for the coordinator's full 2B collection plus
// publication, short enough that a dead candidate costs one padded
// attempt. A timeout suspects the coordinator (a diagnostic hint only;
// rotation moves past it regardless).
func (h *Healer) follow(coord, attempt int, ta simtime.Time, B simtime.Duration) ([]int, uint32, bool) {
	u, c := h.ue, h.ue.Core()
	comm := u.Comm()
	me := u.ID()

	relOff := comm.FlagAddr(me, coord, rcce.FlagMemberRelease)
	c.SetFlag(relOff, 0)

	h.det.fillBitmap(h.bitmap)
	c.MPBWrite(comm.FlagAddr(coord, me, rcce.FlagSuspBase), h.bitmap)
	c.SetFlag(comm.FlagAddr(coord, me, comm.FlagCollSeq()), byte(h.collSeq))
	c.SetFlag(comm.FlagAddr(coord, me, rcce.FlagMemberArrive), arriveTok(h.epoch, attempt))

	_, ok := h.waitUntil(relOff, ta+6*B, func(v byte) bool { return v != 0 })
	if !ok {
		h.det.Suspect(coord)
		return nil, 0, false
	}
	h.det.Clear(coord)

	c.MPBRead(comm.FlagAddr(me, coord, rcce.FlagSuspBase), h.bitmap)
	var eb [4]byte
	c.MPBRead(comm.FlagAddr(me, coord, comm.FlagViewEpoch()), eb[:])
	epoch := binary.LittleEndian.Uint32(eb[:])

	view := h.viewBuf[:0]
	for i := 0; i < u.NumUEs(); i++ {
		if h.bitmap[i/8]&(1<<(i%8)) != 0 {
			view = append(view, i)
		}
	}
	h.viewBuf = view
	return view, epoch, true
}

// epochBarrier seals a proposed view: every member raises an
// epoch-derived arrive token toward the view's lowest member, which
// releases everyone only after all arrivals (collected under a shared
// deadline at the 5B mark; members wait for the release until 6B). A
// member that passes the barrier knows every other view member adopted
// the same epoch (their arrive write happens after their SetEpoch), so
// hardened traffic under the new epoch cannot race a peer still on the
// old one. Root-side failure suspects the missing members and withholds
// the release; member-side failure aborts without suspecting the root
// (the root may have aborted because of a third member — rotation moves
// everyone to the next candidate together).
func (h *Healer) epochBarrier(view []int, epoch uint32, ta simtime.Time, B simtime.Duration) bool {
	if len(view) <= 1 {
		return true
	}
	u, c := h.ue, h.ue.Core()
	comm := u.Comm()
	m := c.Chip().Model
	c.OverheadCycles(m.OverheadBlockingCall)

	me := u.ID()
	root := view[0]
	tok := byte(1 + epoch%127)
	isTok := func(v byte) bool { return v == tok }

	if me == root {
		deadline := ta + 5*B
		ok := true
		for _, p := range view[1:] {
			if _, got := h.waitUntil(comm.FlagAddr(root, p, rcce.FlagEpochArrive), deadline, isTok); !got {
				h.det.Suspect(p)
				ok = false
			}
		}
		if !ok {
			return false
		}
		for _, p := range view[1:] {
			c.SetFlag(comm.FlagAddr(p, root, rcce.FlagEpochRelease), tok)
		}
		return true
	}

	c.SetFlag(comm.FlagAddr(root, me, rcce.FlagEpochArrive), tok)
	_, ok := h.waitUntil(comm.FlagAddr(me, root, rcce.FlagEpochRelease), ta+6*B, isTok)
	return ok
}

// fillViewBitmap encodes a member list as the wire bitmap (bit i%8 of
// byte i/8 = core i in view).
func fillViewBitmap(buf []byte, view []int) {
	for i := range buf {
		buf[i] = 0
	}
	for _, id := range view {
		buf[id/8] |= 1 << (id % 8)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
