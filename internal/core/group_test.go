package core

import (
	"errors"
	"math"
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

func TestGroupConstruction(t *testing.T) {
	g, err := NewGroup([]int{7, 3, 11}, 48)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 {
		t.Fatalf("Size = %d, want 3", g.Size())
	}
	want := []int{3, 7, 11}
	for r, id := range g.Members() {
		if id != want[r] {
			t.Fatalf("Members()[%d] = %d, want %d", r, id, want[r])
		}
		if g.Member(r) != id || g.RankOf(id) != r {
			t.Fatalf("rank/member mapping broken at rank %d", r)
		}
	}
	if g.RankOf(5) != -1 || g.Contains(5) {
		t.Fatal("non-member 5 should have rank -1")
	}

	for _, bad := range [][]int{{}, {-1}, {48}, {3, 3}} {
		if _, err := NewGroup(bad, 48); !errors.Is(err, ErrInvalid) {
			t.Fatalf("NewGroup(%v) = %v, want ErrInvalid", bad, err)
		}
	}

	surv, err := Survivors(48, []int{17})
	if err != nil {
		t.Fatal(err)
	}
	if surv.Size() != 47 || surv.Contains(17) {
		t.Fatalf("Survivors(48, [17]): size %d, contains17 %v", surv.Size(), surv.Contains(17))
	}
}

// TestSurvivorsEdgeCases pins the degenerate inputs a fault plan (or a
// confused caller) can produce: duplicate dead entries are tolerated, a
// fully dead chip and out-of-range IDs return clean typed errors, and a
// nonsensical core count is rejected outright.
func TestSurvivorsEdgeCases(t *testing.T) {
	// Duplicates: a fault plan can report the same core dead twice.
	g, err := Survivors(48, []int{17, 17, 3, 17})
	if err != nil {
		t.Fatalf("duplicate dead entries: %v", err)
	}
	if g.Size() != 46 || g.Contains(17) || g.Contains(3) {
		t.Fatalf("Survivors(48, [17,17,3,17]): size %d, want 46 without 3 and 17", g.Size())
	}

	// All dead: no survivors is an error, not an empty group.
	allDead := make([]int, 48)
	for i := range allDead {
		allDead[i] = i
	}
	if _, err := Survivors(48, allDead); !errors.Is(err, ErrInvalid) {
		t.Fatalf("all-dead: err = %v, want ErrInvalid", err)
	}

	// Out-of-range dead IDs.
	for _, bad := range [][]int{{-1}, {48}, {0, 99}} {
		if _, err := Survivors(48, bad); !errors.Is(err, ErrInvalid) {
			t.Fatalf("Survivors(48, %v) = %v, want ErrInvalid", bad, err)
		}
	}

	// Nonsensical chip sizes.
	for _, n := range []int{0, -3} {
		if _, err := Survivors(n, nil); !errors.Is(err, ErrInvalid) {
			t.Fatalf("Survivors(%d, nil) = %v, want ErrInvalid", n, err)
		}
	}

	// No dead cores at all: the full chip survives.
	g, err = Survivors(4, nil)
	if err != nil || g.Size() != 4 {
		t.Fatalf("Survivors(4, nil) = %v, %v; want a 4-member group", g, err)
	}
}

func TestNewCtxGroupRejectsNonMember(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	g, err := NewGroup([]int{0, 1}, chip.NumCores())
	if err != nil {
		t.Fatal(err)
	}
	var ctxErr error
	chip.LaunchOne(2, func(c *scc.Core) {
		_, ctxErr = NewCtxGroup(comm.UE(2), ConfigLightweight, g)
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(ctxErr, ErrInvalid) {
		t.Fatalf("NewCtxGroup for non-member: %v, want ErrInvalid", ctxErr)
	}
}

// TestGroupAllreduceSurvivors runs the failure-aware mode's core claim:
// an Allreduce over the 47 survivors of a dead core completes with
// correct sums, for every transport, long and short vectors.
func TestGroupAllreduceSurvivors(t *testing.T) {
	const dead = 17
	for _, cfg := range []Config{ConfigBlocking, ConfigIRCCE, ConfigLightweight, ConfigBalanced} {
		for _, n := range []int{13, 552} { // tree path and ring path
			chip := scc.New(timing.Default())
			comm := rcce.NewComm(chip)
			g, err := Survivors(chip.NumCores(), []int{dead})
			if err != nil {
				t.Fatal(err)
			}
			in := makeInputs(48, n, 11)
			want := make([]float64, n)
			for id := 0; id < 48; id++ {
				if id == dead {
					continue
				}
				for i, v := range in[id] {
					want[i] += v
				}
			}
			got := make([][]float64, 48)
			chip.Launch(func(core *scc.Core) {
				if core.ID == dead {
					return // the dead core never participates
				}
				x, err := NewCtxGroup(comm.UE(core.ID), cfg, g)
				if err != nil {
					t.Errorf("NewCtxGroup: %v", err)
					return
				}
				src := core.AllocF64(n)
				dst := core.AllocF64(n)
				core.WriteF64s(src, in[core.ID])
				if err := x.Allreduce(src, dst, n, Sum); err != nil {
					t.Errorf("Allreduce: %v", err)
					return
				}
				if err := x.Barrier(); err != nil {
					t.Errorf("Barrier: %v", err)
					return
				}
				v := make([]float64, n)
				core.ReadF64s(dst, v)
				got[core.ID] = v
			})
			if err := chip.Run(); err != nil {
				t.Fatalf("%s n=%d: %v", cfg.Name(), n, err)
			}
			for id := 0; id < 48; id++ {
				if id == dead {
					continue
				}
				for i := range want {
					if math.Abs(got[id][i]-want[i]) > 1e-9 {
						t.Fatalf("%s n=%d: core %d element %d = %v, want %v",
							cfg.Name(), n, id, i, got[id][i], want[i])
					}
				}
			}
		}
	}
}

// TestGroupCollectivesRootTranslation checks root handling over a group:
// roots are core IDs, and a root outside the group is rejected.
func TestGroupCollectivesRootTranslation(t *testing.T) {
	members := []int{2, 5, 9, 30, 41}
	root := 9
	const n = 32
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	g, err := NewGroup(members, chip.NumCores())
	if err != nil {
		t.Fatal(err)
	}
	in := makeInputs(48, n, 3)
	want := make([]float64, n)
	for _, id := range members {
		for i, v := range in[id] {
			want[i] += v
		}
	}
	var rootGot []float64
	var badRootErr error
	for _, id := range members {
		id := id
		chip.LaunchOne(id, func(core *scc.Core) {
			x, err := NewCtxGroup(comm.UE(id), ConfigLightweight, g)
			if err != nil {
				t.Errorf("NewCtxGroup: %v", err)
				return
			}
			src := core.AllocF64(n)
			dst := core.AllocF64(n)
			core.WriteF64s(src, in[id])
			if err := x.Reduce(root, src, dst, n, Sum); err != nil {
				t.Errorf("Reduce: %v", err)
				return
			}
			if id == root {
				rootGot = make([]float64, n)
				core.ReadF64s(dst, rootGot)
				// Root 4 is alive on the chip but not a member: invalid.
				badRootErr = x.BroadcastTree(4, dst, n)
			}
		})
	}
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(rootGot[i]-want[i]) > 1e-9 {
			t.Fatalf("element %d = %v, want %v", i, rootGot[i], want[i])
		}
	}
	if !errors.Is(badRootErr, ErrInvalid) {
		t.Fatalf("non-member root: %v, want ErrInvalid", badRootErr)
	}
}
