package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// makeInputs builds deterministic per-core input vectors.
func makeInputs(p, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([][]float64, p)
	for j := range in {
		in[j] = make([]float64, n)
		for i := range in[j] {
			in[j][i] = math.Round(rng.Float64()*100) / 4 // exact in binary
		}
	}
	return in
}

// sumRef computes the element-wise sum over all cores' vectors.
func sumRef(in [][]float64) []float64 {
	out := make([]float64, len(in[0]))
	for _, v := range in {
		for i, x := range v {
			out[i] += x
		}
	}
	return out
}

// runAllreduce executes one Allreduce on a fresh 48-core chip and
// returns every core's result and the simulated end time.
func runAllreduce(t *testing.T, cfg Config, in [][]float64) ([][]float64, simtime.Time) {
	t.Helper()
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	p := chip.NumCores()
	n := len(in[0])
	out := make([][]float64, p)
	chip.Launch(func(core *scc.Core) {
		x := NewCtx(comm.UE(core.ID), cfg)
		src := core.AllocF64(n)
		dst := core.AllocF64(n)
		core.WriteF64s(src, in[core.ID])
		x.Allreduce(src, dst, n, Sum)
		got := make([]float64, n)
		core.ReadF64s(dst, got)
		out[core.ID] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("%s allreduce: %v", cfg.Name(), err)
	}
	return out, chip.Now()
}

func checkAll(t *testing.T, label string, out [][]float64, want []float64) {
	t.Helper()
	for id, got := range out {
		if len(got) != len(want) {
			t.Fatalf("%s: core %d result length %d, want %d", label, id, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("%s: core %d element %d = %v, want %v", label, id, i, got[i], want[i])
			}
		}
	}
}

func TestAllreduceAllConfigsCorrect(t *testing.T) {
	sizes := []int{1, 4, 47, 48, 49, 52, 96, 200, 552}
	for _, cfg := range Configs() {
		for _, n := range sizes {
			in := makeInputs(48, n, int64(n))
			want := sumRef(in)
			out, _ := runAllreduce(t, cfg, in)
			checkAll(t, fmt.Sprintf("%s n=%d", cfg.Name(), n), out, want)
		}
	}
}

func TestReduceScatterCorrect(t *testing.T) {
	for _, cfg := range Configs() {
		if cfg.MPBDirect {
			continue // ReduceScatter has no MPB-direct variant by itself
		}
		n := 552
		in := makeInputs(48, n, 7)
		want := sumRef(in)
		blocksWant := PartitionFor(n, 48, cfg.Balanced)
		got := make([][]float64, 48)
		chip := scc.New(timing.Default())
		comm := rcce.NewComm(chip)
		chip.Launch(func(core *scc.Core) {
			x := NewCtx(comm.UE(core.ID), cfg)
			src := core.AllocF64(n)
			dst := core.AllocF64(n) // oversized, fine
			core.WriteF64s(src, in[core.ID])
			blocks, err := x.ReduceScatter(src, dst, n, Sum)
			if err != nil {
				t.Errorf("ReduceScatter: %v", err)
				return
			}
			b := blocks[core.ID]
			v := make([]float64, b.Len)
			core.ReadF64s(dst, v)
			got[core.ID] = v
		})
		if err := chip.Run(); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		for id := range got {
			b := blocksWant[id]
			for i := 0; i < b.Len; i++ {
				if math.Abs(got[id][i]-want[b.Off+i]) > 1e-9 {
					t.Fatalf("%s: core %d block element %d wrong", cfg.Name(), id, i)
				}
			}
		}
	}
}

func TestReduceCorrect(t *testing.T) {
	for _, cfg := range Configs() {
		if cfg.MPBDirect {
			continue
		}
		for _, root := range []int{0, 17, 47} {
			n := 300
			in := makeInputs(48, n, int64(root))
			want := sumRef(in)
			var got []float64
			chip := scc.New(timing.Default())
			comm := rcce.NewComm(chip)
			chip.Launch(func(core *scc.Core) {
				x := NewCtx(comm.UE(core.ID), cfg)
				src := core.AllocF64(n)
				dst := core.AllocF64(n)
				core.WriteF64s(src, in[core.ID])
				x.Reduce(root, src, dst, n, Sum)
				if core.ID == root {
					got = make([]float64, n)
					core.ReadF64s(dst, got)
				}
			})
			if err := chip.Run(); err != nil {
				t.Fatalf("%s root=%d: %v", cfg.Name(), root, err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("%s root=%d: element %d = %v want %v", cfg.Name(), root, i, got[i], want[i])
				}
			}
		}
	}
}

func TestBroadcastCorrect(t *testing.T) {
	for _, cfg := range Configs() {
		if cfg.MPBDirect {
			continue
		}
		for _, root := range []int{0, 23} {
			n := 575
			src := make([]float64, n)
			for i := range src {
				src[i] = float64(i)*0.5 + float64(root)
			}
			out := make([][]float64, 48)
			chip := scc.New(timing.Default())
			comm := rcce.NewComm(chip)
			chip.Launch(func(core *scc.Core) {
				x := NewCtx(comm.UE(core.ID), cfg)
				a := core.AllocF64(n)
				if core.ID == root {
					core.WriteF64s(a, src)
				}
				x.Broadcast(root, a, n)
				got := make([]float64, n)
				core.ReadF64s(a, got)
				out[core.ID] = got
			})
			if err := chip.Run(); err != nil {
				t.Fatalf("%s root=%d: %v", cfg.Name(), root, err)
			}
			checkAll(t, fmt.Sprintf("bcast %s root=%d", cfg.Name(), root), out, src)
		}
	}
}

func TestAllgatherCorrect(t *testing.T) {
	for _, cfg := range Configs() {
		if cfg.MPBDirect {
			continue
		}
		nPer := 37
		in := makeInputs(48, nPer, 5)
		want := make([]float64, 48*nPer)
		for j, v := range in {
			copy(want[j*nPer:], v)
		}
		out := make([][]float64, 48)
		chip := scc.New(timing.Default())
		comm := rcce.NewComm(chip)
		chip.Launch(func(core *scc.Core) {
			x := NewCtx(comm.UE(core.ID), cfg)
			src := core.AllocF64(nPer)
			dst := core.AllocF64(48 * nPer)
			core.WriteF64s(src, in[core.ID])
			x.Allgather(src, nPer, dst)
			got := make([]float64, 48*nPer)
			core.ReadF64s(dst, got)
			out[core.ID] = got
		})
		if err := chip.Run(); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		checkAll(t, "allgather "+cfg.Name(), out, want)
	}
}

func TestAlltoallCorrect(t *testing.T) {
	for _, cfg := range Configs() {
		if cfg.MPBDirect {
			continue
		}
		nPer := 9
		p := 48
		// srcs[j] block q = unique value base j*1000+q.
		out := make([][]float64, p)
		chip := scc.New(timing.Default())
		comm := rcce.NewComm(chip)
		chip.Launch(func(core *scc.Core) {
			x := NewCtx(comm.UE(core.ID), cfg)
			src := core.AllocF64(p * nPer)
			dst := core.AllocF64(p * nPer)
			v := make([]float64, p*nPer)
			for q := 0; q < p; q++ {
				for i := 0; i < nPer; i++ {
					v[q*nPer+i] = float64(core.ID)*1000 + float64(q) + float64(i)*0.001
				}
			}
			core.WriteF64s(src, v)
			x.Alltoall(src, dst, nPer)
			got := make([]float64, p*nPer)
			core.ReadF64s(dst, got)
			out[core.ID] = got
		})
		if err := chip.Run(); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		for me := 0; me < p; me++ {
			for q := 0; q < p; q++ {
				for i := 0; i < nPer; i++ {
					want := float64(q)*1000 + float64(me) + float64(i)*0.001
					got := out[me][q*nPer+i]
					if math.Abs(got-want) > 1e-9 {
						t.Fatalf("%s: core %d block %d elem %d = %v want %v",
							cfg.Name(), me, q, i, got, want)
					}
				}
			}
		}
	}
}

func TestAllreduceMPBFallbackForHugeVectors(t *testing.T) {
	// A vector whose blocks exceed half an MPB data region must still
	// reduce correctly via the fallback path. Blocks ~ n/48 doubles;
	// half-region = 3328 B = 416 doubles -> n > 416*48 (with balanced
	// partition) forces the fallback.
	n := 48*416 + 96
	in := makeInputs(48, n, 99)
	want := sumRef(in)
	out, _ := runAllreduce(t, ConfigMPB, in)
	checkAll(t, "mpb fallback", out, want)
}

func TestAllreduceOtherOps(t *testing.T) {
	n := 100
	in := makeInputs(48, n, 3)
	wantMax := make([]float64, n)
	for i := range wantMax {
		wantMax[i] = math.Inf(-1)
		for j := range in {
			if in[j][i] > wantMax[i] {
				wantMax[i] = in[j][i]
			}
		}
	}
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	out := make([][]float64, 48)
	chip.Launch(func(core *scc.Core) {
		x := NewCtx(comm.UE(core.ID), ConfigBalanced)
		src := core.AllocF64(n)
		dst := core.AllocF64(n)
		core.WriteF64s(src, in[core.ID])
		x.Allreduce(src, dst, n, Max)
		got := make([]float64, n)
		core.ReadF64s(dst, got)
		out[core.ID] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	checkAll(t, "allreduce max", out, wantMax)
}
