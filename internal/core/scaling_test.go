package core

import (
	"math"
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// smallModel builds a chip with the given mesh geometry (the paper's
// intro argues on-chip latencies enable "scaling of problems to higher
// core counts"; the simulator supports arbitrary mesh sizes).
func smallModel(w, h, perTile int) *timing.Model {
	m := timing.Default()
	m.MeshWidth = w
	m.MeshHeight = h
	m.CoresPerTile = perTile
	return m
}

func TestCollectivesOnSmallerChips(t *testing.T) {
	geometries := []struct{ w, h, per int }{
		{1, 1, 2}, // 2 cores
		{2, 2, 2}, // 8 cores
		{3, 2, 2}, // 12 cores
		{4, 3, 1}, // 12 cores, one per tile
	}
	for _, g := range geometries {
		m := smallModel(g.w, g.h, g.per)
		p := m.NumCores()
		n := 100
		chip := scc.New(m)
		comm := rcce.NewComm(chip)
		out := make([][]float64, p)
		chip.Launch(func(c *scc.Core) {
			x := NewCtx(comm.UE(c.ID), ConfigBalanced)
			src := c.AllocF64(n)
			dst := c.AllocF64(n)
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(c.ID) + float64(i)
			}
			c.WriteF64s(src, v)
			x.Allreduce(src, dst, n, Sum)
			got := make([]float64, n)
			c.ReadF64s(dst, got)
			out[c.ID] = got
		})
		if err := chip.Run(); err != nil {
			t.Fatalf("%dx%dx%d: %v", g.w, g.h, g.per, err)
		}
		sumIDs := float64(p*(p-1)) / 2
		for id := range out {
			for i := 0; i < n; i++ {
				want := sumIDs + float64(p*i)
				if math.Abs(out[id][i]-want) > 1e-9 {
					t.Fatalf("%dx%dx%d: core %d elem %d = %v, want %v",
						g.w, g.h, g.per, id, i, out[id][i], want)
				}
			}
		}
	}
}

func TestAllreduceLatencyGrowsWithCoreCount(t *testing.T) {
	// The ring algorithms are O(p) rounds: a 48-core Allreduce of the
	// same vector must take longer than an 8-core one.
	lat := func(m *timing.Model) simtime.Time {
		chip := scc.New(m)
		comm := rcce.NewComm(chip)
		chip.Launch(func(c *scc.Core) {
			x := NewCtx(comm.UE(c.ID), ConfigBalanced)
			src := c.AllocF64(480)
			dst := c.AllocF64(480)
			x.Allreduce(src, dst, 480, Sum)
		})
		if err := chip.Run(); err != nil {
			t.Fatal(err)
		}
		return chip.Now()
	}
	small := lat(smallModel(2, 2, 2))
	full := lat(timing.Default())
	if full <= small {
		t.Fatalf("48-core allreduce (%v) not slower than 8-core (%v)", full, small)
	}
}

func TestAlltoallOnOddCoreCount(t *testing.T) {
	// 9 cores (3x3x1): the pairwise schedule and the blocking ordering
	// must stay deadlock-free for odd communicator sizes too.
	m := smallModel(3, 3, 1)
	p := m.NumCores()
	nPer := 3
	chip := scc.New(m)
	comm := rcce.NewComm(chip)
	out := make([][]float64, p)
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), ConfigBlocking)
		src := c.AllocF64(p * nPer)
		dst := c.AllocF64(p * nPer)
		v := make([]float64, p*nPer)
		for q := 0; q < p; q++ {
			for i := 0; i < nPer; i++ {
				v[q*nPer+i] = float64(c.ID)*100 + float64(q)
			}
		}
		c.WriteF64s(src, v)
		x.Alltoall(src, dst, nPer)
		got := make([]float64, p*nPer)
		c.ReadF64s(dst, got)
		out[c.ID] = got
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	for me := 0; me < p; me++ {
		for q := 0; q < p; q++ {
			if out[me][q*nPer] != float64(q)*100+float64(me) {
				t.Fatalf("core %d block %d wrong", me, q)
			}
		}
	}
}

func TestGCMCStyleRingOnTinyChip(t *testing.T) {
	// Two cores: the ring degenerates to a single pair; everything must
	// still work (regression guard for mod arithmetic).
	m := smallModel(1, 1, 2)
	chip := scc.New(m)
	comm := rcce.NewComm(chip)
	var got float64
	chip.Launch(func(c *scc.Core) {
		x := NewCtx(comm.UE(c.ID), ConfigMPB)
		src := c.AllocF64(96)
		dst := c.AllocF64(96)
		v := make([]float64, 96)
		for i := range v {
			v[i] = float64(c.ID + 1)
		}
		c.WriteF64s(src, v)
		x.Allreduce(src, dst, 96, Sum)
		if c.ID == 0 {
			out := make([]float64, 1)
			c.ReadF64s(dst, out)
			got = out[0]
		}
	})
	if err := chip.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("2-core allreduce sum = %v, want 3", got)
	}
}
