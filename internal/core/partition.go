// Package core implements the paper's contribution: collective
// communication operations optimized for on-chip networks (Broadcast,
// Reduce, Allreduce, Allgather, Alltoall, ReduceScatter), built over
// pluggable point-to-point transports (blocking RCCE, iRCCE, the
// lightweight non-blocking primitives) with the paper's load-balanced
// block partitioning (Sec. IV-C) and the MPB-direct double-buffered
// Allreduce (Sec. IV-D).
package core

// Block describes one contiguous piece of a partitioned vector, in
// elements.
type Block struct {
	Off int // element offset of the block within the vector
	Len int // element count
}

// Partition splits n elements over p blocks the way RCCE_comm does
// (Fig. 6a): the general block size is the integer part of n/p and the
// FIRST block absorbs the entire remainder, so it can grow to more than
// five times the general size (575 elements over 48 cores: 58 vs 11).
func Partition(n, p int) []Block {
	if p <= 0 {
		panic("core: partition over non-positive block count")
	}
	if n < 0 {
		panic("core: partition of negative length")
	}
	blocks := make([]Block, p)
	partitionInto(blocks, n, false)
	return blocks
}

// partitionInto fills blocks (one per target) in place, using the RCCE
// layout (balanced=false) or the paper's balanced layout (Fig. 6b).
func partitionInto(blocks []Block, n int, balanced bool) {
	p := len(blocks)
	base := n / p
	extra := n % p
	if !balanced {
		blocks[0] = Block{Off: 0, Len: base + extra}
		off := base + extra
		for i := 1; i < p; i++ {
			blocks[i] = Block{Off: off, Len: base}
			off += base
		}
		return
	}
	off := 0
	for i := range blocks {
		l := base
		if i < extra {
			l++
		}
		blocks[i] = Block{Off: off, Len: l}
		off += l
	}
}

// PartitionBalanced splits n elements over p blocks the paper's way
// (Fig. 6b): the first n mod p blocks get one extra element, so the
// worst-case size ratio drops from ~5x to at most (base+1)/base (~1.1x
// for the thermodynamic application's 552-element vectors).
func PartitionBalanced(n, p int) []Block {
	if p <= 0 {
		panic("core: partition over non-positive block count")
	}
	if n < 0 {
		panic("core: partition of negative length")
	}
	blocks := make([]Block, p)
	partitionInto(blocks, n, true)
	return blocks
}

// PartitionFor selects the partitioning strategy by the balanced flag.
func PartitionFor(n, p int, balanced bool) []Block {
	if balanced {
		return PartitionBalanced(n, p)
	}
	return Partition(n, p)
}

// ImbalanceRatio returns the ratio of the largest to the smallest
// non-empty block, the figure of merit of Fig. 6 ("~3.2:1", "~1.1:1").
// It returns 1 if fewer than two non-empty blocks exist.
func ImbalanceRatio(blocks []Block) float64 {
	maxLen, minLen := 0, 0
	for _, b := range blocks {
		if b.Len == 0 {
			continue
		}
		if maxLen == 0 || b.Len > maxLen {
			maxLen = b.Len
		}
		if minLen == 0 || b.Len < minLen {
			minLen = b.Len
		}
	}
	if minLen == 0 {
		return 1
	}
	return float64(maxLen) / float64(minLen)
}
