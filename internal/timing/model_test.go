package timing

import (
	"testing"
	"testing/quick"

	"scc/internal/simtime"
)

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometry(t *testing.T) {
	m := Default()
	if m.NumTiles() != 24 || m.NumCores() != 48 {
		t.Fatalf("geometry %d tiles / %d cores, want 24/48", m.NumTiles(), m.NumCores())
	}
	if m.MPBTotalBytes() != 384*1024 {
		t.Fatalf("MPB total = %d, want 384 KB (Sec. II)", m.MPBTotalBytes())
	}
}

func TestLines(t *testing.T) {
	m := Default()
	cases := []struct{ bytes, want int }{
		{0, 0}, {1, 1}, {32, 1}, {33, 2}, {64, 2}, {65, 3},
	}
	for _, c := range cases {
		if got := m.Lines(c.bytes); got != c.want {
			t.Errorf("Lines(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestPaperLatencyAnchors(t *testing.T) {
	m := Default()
	// Sec. IV-D: local MPB with the erratum workaround costs 45 core
	// cycles + 8 mesh cycles; with the bug fixed, 15 core cycles.
	if got := m.MPBAccess(0, true); got != simtime.CoreCycles(45)+simtime.MeshCycles(8) {
		t.Fatalf("buggy local access = %v", got)
	}
	fixed := Default()
	fixed.HardwareBugFixed = true
	if got := fixed.MPBAccess(0, true); got != simtime.CoreCycles(15) {
		t.Fatalf("fixed local access = %v", got)
	}
	// Off-chip: 40 core cycles + 8d mesh cycles (+ DRAM array time).
	d0 := m.DRAMAccess(0)
	d3 := m.DRAMAccess(3)
	if d3-d0 != simtime.MeshCycles(8*3) {
		t.Fatalf("DRAM distance term = %v, want 24 mesh cycles", d3-d0)
	}
}

func TestMPBAccessMonotoneInHops(t *testing.T) {
	m := Default()
	f := func(h uint8) bool {
		hops := int(h%8) + 1
		return m.MPBAccess(hops+1, true) > m.MPBAccess(hops, true) &&
			m.MPBAccess(hops+1, false) > m.MPBAccess(hops, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadsCostMoreThanWrites(t *testing.T) {
	// Remote reads are round trips; posted writes are one-way.
	m := Default()
	for hops := 1; hops <= 8; hops++ {
		if m.MPBAccess(hops, true) <= m.MPBAccess(hops, false) {
			t.Fatalf("read not dearer than write at %d hops", hops)
		}
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	cases := []func(*Model){
		func(m *Model) { m.MeshWidth = 0 },
		func(m *Model) { m.CoresPerTile = -1 },
		func(m *Model) { m.CacheLineBytes = 20 },
		func(m *Model) { m.MPBBytesPerCore = 16 },
		func(m *Model) { m.L2Bytes = m.L1DataBytes - 1 },
		func(m *Model) { m.MeshLinkBytesPerCycle = 0 },
	}
	for i, mutate := range cases {
		m := Default()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestLineSerialization(t *testing.T) {
	m := Default()
	if got := m.LineSerializationMeshCycles(); got != 2 {
		t.Fatalf("32B over 16B/cycle links = %d cycles, want 2", got)
	}
}

func TestOverheadOrdering(t *testing.T) {
	// The calibrated constants must preserve the paper's qualitative
	// ordering: lightweight < blocking-ish <= iRCCE << RCKMPI.
	m := Default()
	if !(m.OverheadLightweightPost < m.OverheadIRCCEPost) {
		t.Fatal("lightweight post must be cheaper than iRCCE post (Sec. IV-B)")
	}
	if !(m.OverheadLightweightWait < m.OverheadIRCCEWait) {
		t.Fatal("lightweight wait must be cheaper than iRCCE wait")
	}
	if !(m.OverheadIRCCEPost < m.OverheadRCKMPICall) {
		t.Fatal("iRCCE must be cheaper than full MPI per call (Sec. III)")
	}
}

// TestTopologyDerivation pins the derived layout facts for a spread of
// geometries: the flag region grows with ceil(NumCores/8), the MPB
// grows in default-sized steps until the chunk-data region is at least
// the default chip's, and the default geometry reproduces Default()
// exactly.
func TestTopologyDerivation(t *testing.T) {
	floor := Default().MPBDataBytes()
	cases := []struct {
		rows, cols, per                int
		cores, flagLines, mpbPer, data int
	}{
		{4, 6, 2, 48, 1, 8192, 6528},   // the paper's chip
		{4, 4, 1, 16, 1, 8192, 7552},   // small mesh, single-core tiles
		{8, 8, 2, 128, 2, 16384, 8064}, // two flag lines, grown MPB
		{16, 16, 2, 512, 3, 57344, 8064},
	}
	for _, c := range cases {
		m := Topology(c.rows, c.cols, c.per)
		if err := m.Validate(); err != nil {
			t.Errorf("Topology(%d,%d,%d): %v", c.rows, c.cols, c.per, err)
			continue
		}
		if m.NumCores() != c.cores {
			t.Errorf("Topology(%d,%d,%d): %d cores, want %d", c.rows, c.cols, c.per, m.NumCores(), c.cores)
		}
		if got := m.FlagLinesPerWriter; got != c.flagLines {
			t.Errorf("Topology(%d,%d,%d): %d flag lines, want %d", c.rows, c.cols, c.per, got, c.flagLines)
		}
		if m.MPBBytesPerCore != c.mpbPer {
			t.Errorf("Topology(%d,%d,%d): %d MPB bytes/core, want %d", c.rows, c.cols, c.per, m.MPBBytesPerCore, c.mpbPer)
		}
		if got := m.MPBDataBytes(); got != c.data {
			t.Errorf("Topology(%d,%d,%d): %d data bytes, want %d", c.rows, c.cols, c.per, got, c.data)
		}
		if got := m.MPBDataBytes(); got < floor {
			t.Errorf("Topology(%d,%d,%d): data region %d below the default floor %d", c.rows, c.cols, c.per, got, floor)
		}
		if got := m.ViewBitmapBytes(); got != (c.cores+7)/8 {
			t.Errorf("Topology(%d,%d,%d): view bitmap %d bytes, want %d", c.rows, c.cols, c.per, got, (c.cores+7)/8)
		}
	}
	if d := Topology(4, 6, 2); *d != *Default() {
		t.Errorf("Topology(4,6,2) differs from Default():\n got %+v\nwant %+v", d, Default())
	}
}

// TestTopologyValidateRejectsGeometry: each geometry invariant has a
// dedicated rejection.
func TestTopologyValidateRejectsGeometry(t *testing.T) {
	cases := []struct {
		name string
		make func() *Model
	}{
		{"zero rows", func() *Model { return Topology(0, 6, 2) }},
		{"zero cols", func() *Model { return Topology(4, 0, 2) }},
		{"zero cores per tile", func() *Model { return Topology(4, 6, 0) }},
		{"negative rows", func() *Model { return Topology(-1, 6, 2) }},
		{"flag region too small for the view bitmap", func() *Model {
			m := Topology(8, 8, 2) // needs 2 flag lines
			m.FlagLinesPerWriter = 1
			return m
		}},
		{"negative flag lines", func() *Model {
			m := Default()
			m.FlagLinesPerWriter = -1
			return m
		}},
		{"no data region left", func() *Model {
			m := Topology(16, 16, 2) // 512 cores x 96 B of flags
			m.MPBBytesPerCore = 8192
			return m
		}},
	}
	for _, c := range cases {
		if err := c.make().Validate(); err == nil {
			t.Errorf("%s: invalid model accepted", c.name)
		}
	}
}
