// Package timing defines the latency cost model of the simulated SCC.
//
// Every latency-bearing action in the simulator (cache hits and misses,
// message-passing-buffer accesses, mesh traversals, per-call software
// overhead of the communication libraries) is priced by a Model. The
// hardware parameters come from the paper and the SCC documentation it
// cites; the software-overhead parameters are calibrated so that a single
// Allreduce reproduces the step-by-step speedups the paper reports in
// Section IV (+25 % non-blocking, +65 % lightweight, +28 % balanced,
// +10 % MPB-direct). See DESIGN.md §1 and EXPERIMENTS.md for the
// calibration record.
package timing

import (
	"fmt"

	"scc/internal/simtime"
)

// Model holds every tunable latency parameter of the simulated chip and
// software stack. Use Default for the paper's configuration ("standard
// preset": cores at 533 MHz, mesh and DRAM at 800 MHz).
type Model struct {
	// ---- Geometry (fixed by the SCC design, Section II) ----

	MeshWidth    int // tiles per row (6)
	MeshHeight   int // tile rows (4)
	CoresPerTile int
	// MPBBytesPerCore is the per-core share of the on-die SRAM
	// (8 KB per core, 16 KB per tile, 384 KB total).
	MPBBytesPerCore int
	// CacheLineBytes is the L1/L2 line size and the write-combining
	// granularity (32 B = 4 doubles). This produces the period-4
	// latency spikes of Fig. 9.
	CacheLineBytes int
	// L1DataBytes and L2Bytes size the private-memory cache model
	// (16 KB L1D, 256 KB L2 per core).
	L1DataBytes int
	L2Bytes     int

	// ---- Hardware latencies ----

	// L1HitCoreCycles is the load-to-use latency of an L1 data hit.
	L1HitCoreCycles int64
	// L2HitCoreCycles is the penalty of an L1 miss that hits in L2
	// (~18 core cycles on the P54C/SCC tile).
	L2HitCoreCycles int64
	// DRAMBaseCoreCycles + MeshHopRoundTripMeshCycles*d + DRAMAccessDRAMCycles
	// price an off-chip access: the paper gives "40 core cycles + 8d mesh
	// cycles, where d is the number of hops between core and memory
	// controller" (Sec. IV-D); DRAMAccessDRAMCycles adds the DDR3 array
	// access itself.
	DRAMBaseCoreCycles   int64
	DRAMAccessDRAMCycles int64
	// MPBLocalFastCoreCycles is a local MPB access without the hardware
	// bug workaround: 15 core cycles (Sec. IV-D).
	MPBLocalFastCoreCycles int64
	// MPBLocalBugCoreCycles/...MeshCycles is a local MPB access with the
	// erratum workaround (core sends a packet to itself): 45 core cycles
	// plus 8 mesh cycles (Sec. IV-D).
	MPBLocalBugCoreCycles int64
	MPBLocalBugMeshCycles int64
	// MPBRemoteBaseCoreCycles is the core-side cost of a remote MPB
	// access; the mesh adds MeshHopRoundTripMeshCycles per hop for reads
	// (round trip) and half that for posted writes.
	MPBRemoteBaseCoreCycles    int64
	MeshHopRoundTripMeshCycles int64
	// MeshLinkBytesPerCycle is the link width used for serialization /
	// occupancy of multi-line transfers (16 B flits at mesh clock).
	MeshLinkBytesPerCycle int
	// HardwareBugFixed, when true, removes the local-MPB erratum
	// workaround (the ablation the paper predicts would make the
	// MPB-direct Allreduce win clearly).
	HardwareBugFixed bool

	// ---- Data movement (per cache line of 32 B) ----

	// PutLineCoreCycles is the core-side cost of staging one line from
	// private memory (cached) into an MPB through the write-combining
	// buffer, excluding mesh and MPB-port costs.
	PutLineCoreCycles int64
	// GetLineCoreCycles is the core-side cost of landing one line read
	// from an MPB into private memory.
	GetLineCoreCycles int64
	// ReducePerElementCoreCycles prices one double-precision reduction
	// step (load two operands, FP add, store) on the P54C when both
	// operands live in cached private memory.
	ReducePerElementCoreCycles int64
	// MPBReducePerElementCoreCycles prices one reduction step of the
	// MPB-direct loop (Sec. IV-D) on the *bug-afflicted* chip: the
	// erratum workaround turns every local MPB store into a self-routed
	// packet (no write combining), so each result element pays a
	// per-word port transaction on top of the FPU work. This is why the
	// paper measures only ~10% benefit for the MPB variant.
	MPBReducePerElementCoreCycles int64
	// MPBReduceFixedPerElementCoreCycles prices the same step with the
	// hardware bug fixed: stores combine into 15-cycle line writes
	// again and mostly the FPU work remains - the regime in which the
	// paper expects "significantly higher speedups".
	MPBReduceFixedPerElementCoreCycles int64

	// ---- Software per-call overhead (core cycles) ----
	// These are the calibrated constants; everything above is hardware.

	// OverheadBlockingCall: one RCCE_send or RCCE_recv invocation
	// (argument checking, flag bookkeeping, L1 MPB-type invalidation).
	OverheadBlockingCall int64
	// OverheadIRCCEPost: one iRCCE_isend/irecv invocation including the
	// request allocation and pending-list insertion the paper blames
	// for iRCCE's low efficiency (Sec. IV-B).
	OverheadIRCCEPost int64
	// OverheadIRCCEWait: per-request completion cost inside
	// iRCCE_wait/waitall (list removal, dynamic memory release).
	OverheadIRCCEWait int64
	// OverheadLightweightPost / Wait: the paper's lightweight primitives
	// (one static slot, no lists, no allocation).
	OverheadLightweightPost int64
	OverheadLightweightWait int64
	// OverheadPartialLineCall is the extra communication-function call
	// RCCE makes when a message is not a multiple of one cache line
	// (write-combining padding, Sec. V-A) - the source of the spikes.
	OverheadPartialLineCall int64
	// OverheadRCKMPICall is RCKMPI's per point-to-point operation
	// software cost (full MPICH layering: request objects, matching
	// queues, datatype engine).
	OverheadRCKMPICall int64
	// RCKMPIPerByteCoreCycles replaces line-granular staging in RCKMPI's
	// channel: a smooth per-byte cost (no padding call), which is why
	// its curve in Fig. 9 has no period-4 spikes.
	RCKMPIPerByteCoreCycles int64

	// ---- Recovery protocol overhead (core cycles) ----
	// Costs of the hardened (fault-tolerant) point-to-point protocol:
	// sequence numbers, per-chunk checksums and retransmit-with-backoff.
	// Recovery latency is a measured quantity, so every defensive action
	// is priced here rather than being free.

	// ChecksumPerLineCoreCycles prices checksumming one 32 B cache line
	// of payload (FNV-1a over the staged chunk, both sides).
	ChecksumPerLineCoreCycles int64
	// OverheadTimeoutCheck is the bookkeeping cost of arming/expiring one
	// bounded flag wait (deadline computation, backoff update).
	OverheadTimeoutCheck int64
	// OverheadRetransmit is the sender-side cost of re-staging a chunk
	// after a timeout or NACK, excluding the data movement itself (which
	// is re-charged at normal Put/mesh rates).
	OverheadRetransmit int64

	// ---- Application compute throughput ----

	// FlopCoreCycles prices one double-precision floating-point
	// operation (incl. operand loads) in GCMC's energy loops on the
	// P54C (no SSE, blocking FPU).
	FlopCoreCycles int64
	// TrigCoreCycles prices one sin/cos evaluation (x87 FSIN/FCOS).
	TrigCoreCycles int64
}

// Default returns the model for the paper's experimental setup. Hardware
// numbers are from the paper (Sections II, IV-D and V) and the SCC
// programmer's guide it cites; software overheads are calibrated against
// the paper's reported per-step speedups.
func Default() *Model {
	return &Model{
		MeshWidth:       6,
		MeshHeight:      4,
		CoresPerTile:    2,
		MPBBytesPerCore: 8192,
		CacheLineBytes:  32,
		L1DataBytes:     16 * 1024,
		L2Bytes:         256 * 1024,

		L1HitCoreCycles:      1,
		L2HitCoreCycles:      18,
		DRAMBaseCoreCycles:   40,
		DRAMAccessDRAMCycles: 30,

		MPBLocalFastCoreCycles:     15,
		MPBLocalBugCoreCycles:      45,
		MPBLocalBugMeshCycles:      8,
		MPBRemoteBaseCoreCycles:    45,
		MeshHopRoundTripMeshCycles: 8,
		MeshLinkBytesPerCycle:      16,

		PutLineCoreCycles:                  100,
		GetLineCoreCycles:                  260,
		ReducePerElementCoreCycles:         18,
		MPBReducePerElementCoreCycles:      340,
		MPBReduceFixedPerElementCoreCycles: 60,

		OverheadBlockingCall:    2000,
		OverheadIRCCEPost:       1800,
		OverheadIRCCEWait:       1700,
		OverheadLightweightPost: 520,
		OverheadLightweightWait: 450,
		OverheadPartialLineCall: 250,
		OverheadRCKMPICall:      32000,
		RCKMPIPerByteCoreCycles: 6,

		ChecksumPerLineCoreCycles: 20,
		OverheadTimeoutCheck:      60,
		OverheadRetransmit:        800,

		FlopCoreCycles: 5,
		TrigCoreCycles: 100,
	}
}

// NumTiles returns the tile count of the mesh.
func (m *Model) NumTiles() int { return m.MeshWidth * m.MeshHeight }

// NumCores returns the core count of the chip.
func (m *Model) NumCores() int { return m.NumTiles() * m.CoresPerTile }

// MPBTotalBytes returns the size of the chip-wide MPB SRAM.
func (m *Model) MPBTotalBytes() int { return m.NumCores() * m.MPBBytesPerCore }

// Lines returns how many cache lines n bytes occupy (rounded up).
func (m *Model) Lines(nBytes int) int {
	return (nBytes + m.CacheLineBytes - 1) / m.CacheLineBytes
}

// --- Composite latencies ---

// L1Hit returns the latency of an L1 data-cache hit.
func (m *Model) L1Hit() simtime.Duration { return simtime.CoreCycles(m.L1HitCoreCycles) }

// L2Hit returns the latency of an L1 miss that hits in L2.
func (m *Model) L2Hit() simtime.Duration {
	return simtime.CoreCycles(m.L1HitCoreCycles + m.L2HitCoreCycles)
}

// DRAMAccess returns the latency of an off-chip access from a core d mesh
// hops away from its memory controller.
func (m *Model) DRAMAccess(hops int) simtime.Duration {
	return simtime.CoreCycles(m.DRAMBaseCoreCycles) +
		simtime.MeshCycles(m.MeshHopRoundTripMeshCycles*int64(hops)) +
		simtime.MeshCycles(m.DRAMAccessDRAMCycles)
}

// MPBAccess returns the core-observed latency of one line-sized MPB
// access. hops is the mesh distance between the requesting core's tile
// and the MPB's tile (0 = the core's own tile). read selects a round-trip
// (load) versus a posted write.
func (m *Model) MPBAccess(hops int, read bool) simtime.Duration {
	if hops == 0 {
		if m.HardwareBugFixed {
			return simtime.CoreCycles(m.MPBLocalFastCoreCycles)
		}
		// Erratum workaround: the core routes a packet to itself.
		return simtime.CoreCycles(m.MPBLocalBugCoreCycles) +
			simtime.MeshCycles(m.MPBLocalBugMeshCycles)
	}
	mesh := m.MeshHopRoundTripMeshCycles * int64(hops)
	if !read {
		mesh /= 2 // posted write: one-way
		return simtime.CoreCycles(m.MPBLocalFastCoreCycles) + simtime.MeshCycles(mesh)
	}
	return simtime.CoreCycles(m.MPBRemoteBaseCoreCycles) + simtime.MeshCycles(mesh)
}

// LineSerializationMeshCycles returns how many mesh cycles one cache line
// occupies a link.
func (m *Model) LineSerializationMeshCycles() int64 {
	return int64((m.CacheLineBytes + m.MeshLinkBytesPerCycle - 1) / m.MeshLinkBytesPerCycle)
}

// Validate checks the model for impossible configurations.
func (m *Model) Validate() error {
	switch {
	case m.MeshWidth <= 0 || m.MeshHeight <= 0:
		return errf("mesh dimensions must be positive, got %dx%d", m.MeshWidth, m.MeshHeight)
	case m.CoresPerTile <= 0:
		return errf("cores per tile must be positive, got %d", m.CoresPerTile)
	case m.CacheLineBytes <= 0 || m.CacheLineBytes%8 != 0:
		return errf("cache line must be a positive multiple of 8, got %d", m.CacheLineBytes)
	case m.MPBBytesPerCore < 4*m.CacheLineBytes:
		return errf("MPB per core too small: %d bytes", m.MPBBytesPerCore)
	case m.L1DataBytes < m.CacheLineBytes || m.L2Bytes < m.L1DataBytes:
		return errf("cache hierarchy sizes invalid: L1=%d L2=%d", m.L1DataBytes, m.L2Bytes)
	case m.MeshLinkBytesPerCycle <= 0:
		return errf("mesh link width must be positive, got %d", m.MeshLinkBytesPerCycle)
	}
	return nil
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf("timing: "+format, args...)
}
