// Package timing defines the latency cost model of the simulated SCC.
//
// Every latency-bearing action in the simulator (cache hits and misses,
// message-passing-buffer accesses, mesh traversals, per-call software
// overhead of the communication libraries) is priced by a Model. The
// hardware parameters come from the paper and the SCC documentation it
// cites; the software-overhead parameters are calibrated so that a single
// Allreduce reproduces the step-by-step speedups the paper reports in
// Section IV (+25 % non-blocking, +65 % lightweight, +28 % balanced,
// +10 % MPB-direct). See DESIGN.md §1 and EXPERIMENTS.md for the
// calibration record.
package timing

import (
	"fmt"

	"scc/internal/simtime"
)

// Flag-region layout constants shared by the timing model and the RCCE
// layer above it. They describe roles, not geometry: the number of
// *bytes* a writer's flag region needs grows with the core count (the
// membership view bitmap is one bit per core), which is exactly what
// FlagBytesPerWriter and Validate account for.
const (
	// FlagFixedRoles counts the fixed-position flag roles at the start
	// of every per-writer flag region (sent/ready, barrier, MPB-direct
	// double-buffer, checksum, progress, group/vote/member/epoch
	// arrive-release — see internal/rcce). The membership view bitmap
	// starts right after them.
	FlagFixedRoles = 21
	// FlagViewEpochBytes is the width of the agreed-epoch word that
	// follows the view bitmap (little-endian uint32).
	FlagViewEpochBytes = 4
	// UserFlagLines is the size of each core's gory-interface user-flag
	// region in cache lines (see internal/rcce/gory.go).
	UserFlagLines = 4
)

// Model holds every tunable latency parameter of the simulated chip and
// software stack. Use Default for the paper's configuration ("standard
// preset": cores at 533 MHz, mesh and DRAM at 800 MHz) or Topology for
// an arbitrary mesh geometry derived from it.
type Model struct {
	// ---- Geometry (the SCC design fixes these to 6x4x2, Section II;
	// Topology() builds consistent variants) ----

	MeshWidth    int // tiles per row
	MeshHeight   int // tile rows
	CoresPerTile int
	// MPBBytesPerCore is the per-core share of the on-die SRAM
	// (8 KB per core on the SCC: 16 KB per tile, 384 KB total).
	MPBBytesPerCore int
	// FlagLinesPerWriter sizes each writer's flag region in every core's
	// MPB, in cache lines. One line suffices up to the point where the
	// fixed roles plus the ceil(NumCores/8)-byte membership view bitmap
	// plus the epoch word and call-sequence byte no longer fit; larger
	// meshes need more (Validate rejects regions that are too small).
	// Zero means one line, so legacy literal Models stay valid.
	FlagLinesPerWriter int
	// CacheLineBytes is the L1/L2 line size and the write-combining
	// granularity (32 B = 4 doubles). This produces the period-4
	// latency spikes of Fig. 9.
	CacheLineBytes int
	// L1DataBytes and L2Bytes size the private-memory cache model
	// (16 KB L1D, 256 KB L2 per core).
	L1DataBytes int
	L2Bytes     int

	// ---- Hardware latencies ----

	// L1HitCoreCycles is the load-to-use latency of an L1 data hit.
	L1HitCoreCycles int64
	// L2HitCoreCycles is the penalty of an L1 miss that hits in L2
	// (~18 core cycles on the P54C/SCC tile).
	L2HitCoreCycles int64
	// DRAMBaseCoreCycles + MeshHopRoundTripMeshCycles*d + DRAMAccessDRAMCycles
	// price an off-chip access: the paper gives "40 core cycles + 8d mesh
	// cycles, where d is the number of hops between core and memory
	// controller" (Sec. IV-D); DRAMAccessDRAMCycles adds the DDR3 array
	// access itself.
	DRAMBaseCoreCycles   int64
	DRAMAccessDRAMCycles int64
	// MPBLocalFastCoreCycles is a local MPB access without the hardware
	// bug workaround: 15 core cycles (Sec. IV-D).
	MPBLocalFastCoreCycles int64
	// MPBLocalBugCoreCycles/...MeshCycles is a local MPB access with the
	// erratum workaround (core sends a packet to itself): 45 core cycles
	// plus 8 mesh cycles (Sec. IV-D).
	MPBLocalBugCoreCycles int64
	MPBLocalBugMeshCycles int64
	// MPBRemoteBaseCoreCycles is the core-side cost of a remote MPB
	// access; the mesh adds MeshHopRoundTripMeshCycles per hop for reads
	// (round trip) and half that for posted writes.
	MPBRemoteBaseCoreCycles    int64
	MeshHopRoundTripMeshCycles int64
	// MeshLinkBytesPerCycle is the link width used for serialization /
	// occupancy of multi-line transfers (16 B flits at mesh clock).
	MeshLinkBytesPerCycle int
	// HardwareBugFixed, when true, removes the local-MPB erratum
	// workaround (the ablation the paper predicts would make the
	// MPB-direct Allreduce win clearly).
	HardwareBugFixed bool

	// ---- Data movement (per cache line of 32 B) ----

	// PutLineCoreCycles is the core-side cost of staging one line from
	// private memory (cached) into an MPB through the write-combining
	// buffer, excluding mesh and MPB-port costs.
	PutLineCoreCycles int64
	// GetLineCoreCycles is the core-side cost of landing one line read
	// from an MPB into private memory.
	GetLineCoreCycles int64
	// ReducePerElementCoreCycles prices one double-precision reduction
	// step (load two operands, FP add, store) on the P54C when both
	// operands live in cached private memory.
	ReducePerElementCoreCycles int64
	// MPBReducePerElementCoreCycles prices one reduction step of the
	// MPB-direct loop (Sec. IV-D) on the *bug-afflicted* chip: the
	// erratum workaround turns every local MPB store into a self-routed
	// packet (no write combining), so each result element pays a
	// per-word port transaction on top of the FPU work. This is why the
	// paper measures only ~10% benefit for the MPB variant.
	MPBReducePerElementCoreCycles int64
	// MPBReduceFixedPerElementCoreCycles prices the same step with the
	// hardware bug fixed: stores combine into 15-cycle line writes
	// again and mostly the FPU work remains - the regime in which the
	// paper expects "significantly higher speedups".
	MPBReduceFixedPerElementCoreCycles int64

	// ---- Software per-call overhead (core cycles) ----
	// These are the calibrated constants; everything above is hardware.

	// OverheadBlockingCall: one RCCE_send or RCCE_recv invocation
	// (argument checking, flag bookkeeping, L1 MPB-type invalidation).
	OverheadBlockingCall int64
	// OverheadIRCCEPost: one iRCCE_isend/irecv invocation including the
	// request allocation and pending-list insertion the paper blames
	// for iRCCE's low efficiency (Sec. IV-B).
	OverheadIRCCEPost int64
	// OverheadIRCCEWait: per-request completion cost inside
	// iRCCE_wait/waitall (list removal, dynamic memory release).
	OverheadIRCCEWait int64
	// OverheadLightweightPost / Wait: the paper's lightweight primitives
	// (one static slot, no lists, no allocation).
	OverheadLightweightPost int64
	OverheadLightweightWait int64
	// OverheadPartialLineCall is the extra communication-function call
	// RCCE makes when a message is not a multiple of one cache line
	// (write-combining padding, Sec. V-A) - the source of the spikes.
	OverheadPartialLineCall int64
	// OverheadRCKMPICall is RCKMPI's per point-to-point operation
	// software cost (full MPICH layering: request objects, matching
	// queues, datatype engine).
	OverheadRCKMPICall int64
	// RCKMPIPerByteCoreCycles replaces line-granular staging in RCKMPI's
	// channel: a smooth per-byte cost (no padding call), which is why
	// its curve in Fig. 9 has no period-4 spikes.
	RCKMPIPerByteCoreCycles int64

	// ---- Recovery protocol overhead (core cycles) ----
	// Costs of the hardened (fault-tolerant) point-to-point protocol:
	// sequence numbers, per-chunk checksums and retransmit-with-backoff.
	// Recovery latency is a measured quantity, so every defensive action
	// is priced here rather than being free.

	// ChecksumPerLineCoreCycles prices checksumming one 32 B cache line
	// of payload (FNV-1a over the staged chunk, both sides).
	ChecksumPerLineCoreCycles int64
	// OverheadTimeoutCheck is the bookkeeping cost of arming/expiring one
	// bounded flag wait (deadline computation, backoff update).
	OverheadTimeoutCheck int64
	// OverheadRetransmit is the sender-side cost of re-staging a chunk
	// after a timeout or NACK, excluding the data movement itself (which
	// is re-charged at normal Put/mesh rates).
	OverheadRetransmit int64

	// ---- Application compute throughput ----

	// FlopCoreCycles prices one double-precision floating-point
	// operation (incl. operand loads) in GCMC's energy loops on the
	// P54C (no SSE, blocking FPU).
	FlopCoreCycles int64
	// TrigCoreCycles prices one sin/cos evaluation (x87 FSIN/FCOS).
	TrigCoreCycles int64

	// ---- Inter-chip fabric (internal/fabric) ----
	// A multi-chip System joins K chips through a slower serial fabric
	// between per-chip gateway cores. The cost model mirrors a mesh
	// link: per-message base latency, serialization at the fabric width,
	// and link occupancy so overlapping messages queue.

	// FabricBaseLatencyMeshCycles is the head latency of one inter-chip
	// message (board traces, SerDes, protocol framing) in mesh cycles.
	FabricBaseLatencyMeshCycles int64
	// FabricBytesPerMeshCycle is the inter-chip link width used for
	// serialization and occupancy (much narrower than a mesh link).
	FabricBytesPerMeshCycle int
	// FabricPerMessageCoreCycles is the gateway core's software cost of
	// posting or draining one fabric message.
	FabricPerMessageCoreCycles int64
}

// Default returns the model for the paper's experimental setup. Hardware
// numbers are from the paper (Sections II, IV-D and V) and the SCC
// programmer's guide it cites; software overheads are calibrated against
// the paper's reported per-step speedups.
func Default() *Model {
	return &Model{
		MeshWidth:          6,
		MeshHeight:         4,
		CoresPerTile:       2,
		MPBBytesPerCore:    8192,
		FlagLinesPerWriter: 1,
		CacheLineBytes:     32,
		L1DataBytes:        16 * 1024,
		L2Bytes:            256 * 1024,

		L1HitCoreCycles:      1,
		L2HitCoreCycles:      18,
		DRAMBaseCoreCycles:   40,
		DRAMAccessDRAMCycles: 30,

		MPBLocalFastCoreCycles:     15,
		MPBLocalBugCoreCycles:      45,
		MPBLocalBugMeshCycles:      8,
		MPBRemoteBaseCoreCycles:    45,
		MeshHopRoundTripMeshCycles: 8,
		MeshLinkBytesPerCycle:      16,

		PutLineCoreCycles:                  100,
		GetLineCoreCycles:                  260,
		ReducePerElementCoreCycles:         18,
		MPBReducePerElementCoreCycles:      340,
		MPBReduceFixedPerElementCoreCycles: 60,

		OverheadBlockingCall:    2000,
		OverheadIRCCEPost:       1800,
		OverheadIRCCEWait:       1700,
		OverheadLightweightPost: 520,
		OverheadLightweightWait: 450,
		OverheadPartialLineCall: 250,
		OverheadRCKMPICall:      32000,
		RCKMPIPerByteCoreCycles: 6,

		ChecksumPerLineCoreCycles: 20,
		OverheadTimeoutCheck:      60,
		OverheadRetransmit:        800,

		FlopCoreCycles: 5,
		TrigCoreCycles: 100,

		FabricBaseLatencyMeshCycles: 2000,
		FabricBytesPerMeshCycle:     2,
		FabricPerMessageCoreCycles:  1200,
	}
}

// Topology derives a model for an arbitrary rows x cols mesh with
// coresPerTile cores per tile from the paper's Default calibration: all
// latency constants are kept, while the flag-region and MPB geometry
// are resized so the layout invariants hold at the new core count. The
// per-writer flag region grows to fit the membership view bitmap
// (ceil(NumCores/8) bytes) plus the fixed roles, the epoch word and the
// call-sequence byte; the per-core MPB grows in 8 KB steps until the
// chunk data region is at least as large as the default chip's. Called
// with the default geometry (4 rows, 6 cols, 2 cores/tile) it returns a
// model identical to Default().
func Topology(rows, cols, coresPerTile int) *Model {
	m := Default()
	m.MeshHeight = rows
	m.MeshWidth = cols
	m.CoresPerTile = coresPerTile
	if rows <= 0 || cols <= 0 || coresPerTile <= 0 {
		return m // Validate reports the error with full context
	}
	dataFloor := Default().MPBDataBytes()
	need := FlagFixedRoles + m.ViewBitmapBytes() + FlagViewEpochBytes + 1
	m.FlagLinesPerWriter = (need + m.CacheLineBytes - 1) / m.CacheLineBytes
	step := Default().MPBBytesPerCore
	m.MPBBytesPerCore = step
	for m.MPBDataBytes() < dataFloor {
		m.MPBBytesPerCore += step
	}
	return m
}

// NumTiles returns the tile count of the mesh.
func (m *Model) NumTiles() int { return m.MeshWidth * m.MeshHeight }

// NumCores returns the core count of the chip.
func (m *Model) NumCores() int { return m.NumTiles() * m.CoresPerTile }

// MPBTotalBytes returns the size of the chip-wide MPB SRAM.
func (m *Model) MPBTotalBytes() int { return m.NumCores() * m.MPBBytesPerCore }

// Lines returns how many cache lines n bytes occupy (rounded up).
func (m *Model) Lines(nBytes int) int {
	return (nBytes + m.CacheLineBytes - 1) / m.CacheLineBytes
}

// FlagBytesPerWriter returns the size of one writer's flag region in
// every core's MPB. A zero FlagLinesPerWriter counts as one line, so
// Models built as plain literals keep the legacy single-line layout.
func (m *Model) FlagBytesPerWriter() int {
	lines := m.FlagLinesPerWriter
	if lines <= 0 {
		lines = 1
	}
	return lines * m.CacheLineBytes
}

// ViewBitmapBytes returns the size of the membership view bitmap the
// self-healing agreement ships through a flag region: one bit per core.
func (m *Model) ViewBitmapBytes() int { return (m.NumCores() + 7) / 8 }

// MPBDataBytes returns the usable chunk-data capacity of each core's
// MPB after the per-writer flag regions and the gory-interface
// user-flag lines are reserved.
func (m *Model) MPBDataBytes() int {
	return m.MPBBytesPerCore - m.NumCores()*m.FlagBytesPerWriter() - UserFlagLines*m.CacheLineBytes
}

// --- Composite latencies ---

// L1Hit returns the latency of an L1 data-cache hit.
func (m *Model) L1Hit() simtime.Duration { return simtime.CoreCycles(m.L1HitCoreCycles) }

// L2Hit returns the latency of an L1 miss that hits in L2.
func (m *Model) L2Hit() simtime.Duration {
	return simtime.CoreCycles(m.L1HitCoreCycles + m.L2HitCoreCycles)
}

// DRAMAccess returns the latency of an off-chip access from a core d mesh
// hops away from its memory controller.
func (m *Model) DRAMAccess(hops int) simtime.Duration {
	return simtime.CoreCycles(m.DRAMBaseCoreCycles) +
		simtime.MeshCycles(m.MeshHopRoundTripMeshCycles*int64(hops)) +
		simtime.MeshCycles(m.DRAMAccessDRAMCycles)
}

// MPBAccess returns the core-observed latency of one line-sized MPB
// access. hops is the mesh distance between the requesting core's tile
// and the MPB's tile (0 = the core's own tile). read selects a round-trip
// (load) versus a posted write.
func (m *Model) MPBAccess(hops int, read bool) simtime.Duration {
	if hops == 0 {
		if m.HardwareBugFixed {
			return simtime.CoreCycles(m.MPBLocalFastCoreCycles)
		}
		// Erratum workaround: the core routes a packet to itself.
		return simtime.CoreCycles(m.MPBLocalBugCoreCycles) +
			simtime.MeshCycles(m.MPBLocalBugMeshCycles)
	}
	mesh := m.MeshHopRoundTripMeshCycles * int64(hops)
	if !read {
		mesh /= 2 // posted write: one-way
		return simtime.CoreCycles(m.MPBLocalFastCoreCycles) + simtime.MeshCycles(mesh)
	}
	return simtime.CoreCycles(m.MPBRemoteBaseCoreCycles) + simtime.MeshCycles(mesh)
}

// LineSerializationMeshCycles returns how many mesh cycles one cache line
// occupies a link.
func (m *Model) LineSerializationMeshCycles() int64 {
	return int64((m.CacheLineBytes + m.MeshLinkBytesPerCycle - 1) / m.MeshLinkBytesPerCycle)
}

// Validate checks the model for impossible configurations, including
// the geometry-dependent MPB layout invariants: every writer's flag
// region must hold the fixed roles plus the ceil(NumCores/8)-byte
// membership view bitmap, the epoch word and the call-sequence byte,
// and reserving NumCores flag regions per core must still leave a
// non-empty chunk data region.
func (m *Model) Validate() error {
	switch {
	case m.MeshWidth <= 0 || m.MeshHeight <= 0:
		return errf("mesh dimensions must be positive, got %dx%d (at least one tile required)",
			m.MeshWidth, m.MeshHeight)
	case m.CoresPerTile <= 0:
		return errf("cores per tile must be positive, got %d", m.CoresPerTile)
	case m.CacheLineBytes <= 0 || m.CacheLineBytes%8 != 0:
		return errf("cache line must be a positive multiple of 8, got %d", m.CacheLineBytes)
	case m.MPBBytesPerCore < 4*m.CacheLineBytes:
		return errf("MPB per core too small: %d bytes", m.MPBBytesPerCore)
	case m.L1DataBytes < m.CacheLineBytes || m.L2Bytes < m.L1DataBytes:
		return errf("cache hierarchy sizes invalid: L1=%d L2=%d", m.L1DataBytes, m.L2Bytes)
	case m.MeshLinkBytesPerCycle <= 0:
		return errf("mesh link width must be positive, got %d", m.MeshLinkBytesPerCycle)
	case m.FlagLinesPerWriter < 0:
		return errf("flag lines per writer must be non-negative, got %d", m.FlagLinesPerWriter)
	}
	if need := FlagFixedRoles + m.ViewBitmapBytes() + FlagViewEpochBytes + 1; need > m.FlagBytesPerWriter() {
		return errf("flag region too small: %d cores need %d bytes per writer "+
			"(%d fixed roles + %d-byte view bitmap + epoch + sequence), have %d",
			m.NumCores(), need, FlagFixedRoles, m.ViewBitmapBytes(), m.FlagBytesPerWriter())
	}
	if m.MPBDataBytes() <= 0 {
		return errf("MPB layout leaves no data region: %d cores x %d-byte flag regions + %d user-flag lines exceed %d bytes per core",
			m.NumCores(), m.FlagBytesPerWriter(), UserFlagLines, m.MPBBytesPerCore)
	}
	// The chip-wide MPB address space is NumCores x MPBBytesPerCore and
	// must stay int-addressable: the MPB arena, offset arithmetic, and
	// flag indexing all use int offsets. The space is virtual (sparse
	// storage allocates only touched pages), but a product that overflows
	// would silently wrap offsets. 1<<56 bounds ~9000x the largest
	// supported topology while rejecting any wrapped product.
	if total := int64(m.NumCores()) * int64(m.MPBBytesPerCore); total <= 0 || total > 1<<56 {
		return errf("MPB address space %d cores x %d bytes overflows addressable range",
			m.NumCores(), m.MPBBytesPerCore)
	}
	return nil
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf("timing: "+format, args...)
}
