// Package fault provides deterministic, seeded fault injection for the
// simulated SCC. A Plan schedules faults at virtual times and locations —
// transient mesh-link stalls, lost or corrupted MPB writes, dropped flag
// writes, transient core stalls and permanent core death — and implements
// both hook interfaces the lower layers expose (scc.FaultHook and
// mesh.Injector). Because every fault is a pure function of (location,
// virtual time) and the simulation itself is deterministic, a given seed
// reproduces the exact same failure history and the exact same recovery
// latency, tick for tick.
//
// The package deliberately knows nothing about RCCE or the collectives:
// it perturbs the hardware model only. Recovery is the job of the
// hardened protocol in internal/rcce and the failure-aware collectives in
// internal/core.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"scc/internal/mesh"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// Kind enumerates the fault classes the plan can inject.
type Kind int

const (
	// LinkStall delays every packet head crossing one directed mesh
	// link during the window [At, At+Dur) until the window closes —
	// a transient routing stall.
	LinkStall Kind = iota
	// FlagDrop loses the next single-byte flag write issued by core
	// Core at or after At (optionally only at MPB offset Off).
	FlagDrop
	// MPBDrop loses the next bulk MPB write issued by core Core at or
	// after At — a vanished data chunk.
	MPBDrop
	// MPBCorrupt XORs the first cache line of the next bulk MPB write
	// by core Core at or after At with pattern XOR — a single-line
	// corruption the checksum must catch.
	MPBCorrupt
	// CoreStall freezes core Core for Dur at its first shared-state
	// access at or after At.
	CoreStall
	// CoreDie permanently kills core Core at its first shared-state
	// access at or after At. Unrecoverable by retransmission; survivors
	// need a failure-aware collective (see core.Group).
	CoreDie
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case LinkStall:
		return "link-stall"
	case FlagDrop:
		return "flag-drop"
	case MPBDrop:
		return "mpb-drop"
	case MPBCorrupt:
		return "mpb-corrupt"
	case CoreStall:
		return "core-stall"
	case CoreDie:
		return "core-die"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled fault. Which fields matter depends on Kind; see
// the Kind constants.
type Fault struct {
	Kind Kind
	At   simtime.Time     // activation time (virtual)
	Dur  simtime.Duration // LinkStall window / CoreStall length
	Core int              // affected core (writer, for the drop/corrupt kinds)
	From mesh.Coord       // LinkStall: directed link source router
	To   mesh.Coord       // LinkStall: directed link destination router
	Off  int              // FlagDrop: MPB offset filter (-1 = any flag write)
	XOR  byte             // MPBCorrupt: corruption pattern (0 treated as 0xFF)

	fired bool
}

// Event records one fault actually firing.
type Event struct {
	Kind Kind
	At   simtime.Time // virtual time the fault took effect
	Site string       // human-readable location ("core07 flag@2081", "(2,1)->(3,1)")
}

// String formats the event for logs and tests.
func (e Event) String() string {
	return fmt.Sprintf("%v %s @ %v", e.Kind, e.Site, e.At)
}

// Plan is an ordered set of scheduled faults. It implements scc.FaultHook
// and mesh.Injector; install it on a chip with Install. The zero value is
// an empty (fault-free) plan. Not safe for use on multiple chips at once:
// one-shot faults carry firing state.
type Plan struct {
	faults []*Fault
	events []Event
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// Add schedules a fault and returns the plan for chaining.
func (p *Plan) Add(f Fault) *Plan {
	c := f
	p.faults = append(p.faults, &c)
	return p
}

// Len reports how many faults are scheduled.
func (p *Plan) Len() int { return len(p.faults) }

// Events returns the faults that have fired so far, in firing order.
func (p *Plan) Events() []Event { return append([]Event(nil), p.events...) }

// DeadCores returns the IDs of cores with a CoreDie fault, sorted — the
// membership a failure-aware collective must exclude.
func (p *Plan) DeadCores() []int {
	var ids []int
	for _, f := range p.faults {
		if f.Kind == CoreDie {
			ids = append(ids, f.Core)
		}
	}
	sort.Ints(ids)
	return ids
}

// Install wires the plan into a chip: core/flag/MPB faults through the
// scc.FaultHook and link faults through the mesh injector.
func Install(c *scc.Chip, p *Plan) {
	c.Fault = p
	c.Net.SetInjector(p)
}

func (p *Plan) record(f *Fault, at simtime.Time, site string) {
	f.fired = true
	p.events = append(p.events, Event{Kind: f.Kind, At: at, Site: site})
}

// LinkDelay implements mesh.Injector: packets crossing a stalled link
// inside its window are held until the window closes.
func (p *Plan) LinkDelay(from, to mesh.Coord, at simtime.Time) simtime.Duration {
	var d simtime.Duration
	for _, f := range p.faults {
		if f.Kind != LinkStall || f.From != from || f.To != to {
			continue
		}
		if at < f.At || at >= f.At+f.Dur {
			continue
		}
		if !f.fired {
			p.record(f, at, fmt.Sprintf("link %v->%v", from, to))
		}
		if hold := f.At + f.Dur - at; hold > d {
			d = hold
		}
	}
	return d
}

// StallCore implements scc.FaultHook.
func (p *Plan) StallCore(core int, now simtime.Time) simtime.Duration {
	var d simtime.Duration
	for _, f := range p.faults {
		if f.Kind == CoreStall && f.Core == core && !f.fired && now >= f.At {
			p.record(f, now, fmt.Sprintf("core%02d", core))
			d += f.Dur
		}
	}
	return d
}

// CoreDead implements scc.FaultHook.
func (p *Plan) CoreDead(core int, now simtime.Time) bool {
	for _, f := range p.faults {
		if f.Kind == CoreDie && f.Core == core && now >= f.At {
			if !f.fired {
				p.record(f, now, fmt.Sprintf("core%02d", core))
			}
			return true
		}
	}
	return false
}

// DropFlagWrite implements scc.FaultHook.
func (p *Plan) DropFlagWrite(writer, off int, now simtime.Time) bool {
	for _, f := range p.faults {
		if f.Kind != FlagDrop || f.fired || f.Core != writer || now < f.At {
			continue
		}
		if f.Off >= 0 && f.Off != off {
			continue
		}
		p.record(f, now, fmt.Sprintf("core%02d flag@%d", writer, off))
		return true
	}
	return false
}

// FilterMPBWrite implements scc.FaultHook.
func (p *Plan) FilterMPBWrite(writer, off int, data []byte, now simtime.Time) bool {
	for _, f := range p.faults {
		if f.fired || f.Core != writer || now < f.At {
			continue
		}
		switch f.Kind {
		case MPBDrop:
			p.record(f, now, fmt.Sprintf("core%02d mpb@%d (%dB)", writer, off, len(data)))
			return true
		case MPBCorrupt:
			pat := f.XOR
			if pat == 0 {
				pat = 0xFF
			}
			n := len(data)
			if n > 32 {
				n = 32 // single-line corruption
			}
			for i := 0; i < n; i++ {
				data[i] ^= pat
			}
			p.record(f, now, fmt.Sprintf("core%02d mpb@%d (%dB)", writer, off, len(data)))
			return false
		}
	}
	return false
}

// Random builds a plan of n recoverable faults drawn deterministically
// from seed, with activation times uniform over [0, horizon). The mix —
// link stalls, flag drops, dropped and corrupted MPB writes, core stalls
// — is exactly the set the hardened protocol can survive; CoreDie is
// never generated (it requires survivor-set collectives, not retries).
func Random(seed int64, n int, horizon simtime.Duration, m *timing.Model) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := NewPlan()
	if horizon <= 0 {
		horizon = 1
	}
	for i := 0; i < n; i++ {
		at := simtime.Time(rng.Int63n(int64(horizon)))
		core := rng.Intn(m.NumCores())
		switch rng.Intn(5) {
		case 0: // link stall on a random directed mesh link
			x := rng.Intn(m.MeshWidth)
			y := rng.Intn(m.MeshHeight)
			from := mesh.Coord{X: x, Y: y}
			to := from
			if rng.Intn(2) == 0 && m.MeshWidth > 1 {
				to.X = x + 1
				if to.X >= m.MeshWidth {
					to.X = x - 1
				}
			} else if m.MeshHeight > 1 {
				to.Y = y + 1
				if to.Y >= m.MeshHeight {
					to.Y = y - 1
				}
			} else {
				to.X = (x + 1) % m.MeshWidth
			}
			dur := simtime.Microseconds(int64(2 + rng.Intn(20)))
			p.Add(Fault{Kind: LinkStall, At: at, Dur: dur, From: from, To: to})
		case 1:
			p.Add(Fault{Kind: FlagDrop, At: at, Core: core, Off: -1})
		case 2:
			p.Add(Fault{Kind: MPBDrop, At: at, Core: core})
		case 3:
			p.Add(Fault{Kind: MPBCorrupt, At: at, Core: core, XOR: byte(1 + rng.Intn(255))})
		default:
			dur := simtime.Microseconds(int64(5 + rng.Intn(45)))
			p.Add(Fault{Kind: CoreStall, At: at, Dur: dur, Core: core})
		}
	}
	return p
}
