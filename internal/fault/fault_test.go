package fault

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"scc/internal/core"
	"scc/internal/mesh"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// makeInputs builds deterministic per-core input vectors.
func makeInputs(p, n int, scale float64) [][]float64 {
	in := make([][]float64, p)
	for id := range in {
		v := make([]float64, n)
		for i := range v {
			v[i] = scale*float64(id+1) + float64(i)*0.25
		}
		in[id] = v
	}
	return in
}

func sumRef(in [][]float64) []float64 {
	want := make([]float64, len(in[0]))
	for _, v := range in {
		for i, x := range v {
			want[i] += x
		}
	}
	return want
}

// runRobustAllreduce runs a 48-core 552-double Allreduce over the
// hardened lightweight balanced configuration with the given plan
// installed, returning the end time, the chip-wide recovery stats and
// the fired fault events.
func runRobustAllreduce(t *testing.T, plan *Plan, n int) (simtime.Time, rcce.RecoveryStats, []Event) {
	t.Helper()
	chip := scc.New(timing.Default())
	Install(chip, plan)
	comm := rcce.NewComm(chip)
	pol := rcce.DefaultPolicy()
	cfg := core.Config{Transport: core.TransportLightweight, Balanced: true, Recovery: &pol}
	in := makeInputs(48, n, 7)
	want := sumRef(in)
	var stats rcce.RecoveryStats
	chip.Launch(func(c *scc.Core) {
		x := core.NewCtx(comm.UE(c.ID), cfg)
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		c.WriteF64s(src, in[c.ID])
		if err := x.Allreduce(src, dst, n, core.Sum); err != nil {
			t.Errorf("core %d Allreduce: %v", c.ID, err)
			return
		}
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Errorf("core %d element %d = %v, want %v", c.ID, i, got[i], want[i])
				return
			}
		}
		stats.Add(x.UE().Recovery())
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return chip.Now(), stats, plan.Events()
}

// acceptancePlan schedules the ISSUE's acceptance faults relative to the
// fault-free run length: three transient link stalls on busy row-0 ring
// links plus one lost flag write (core 5's sent announcement to its ring
// neighbor, at MPB offset sentOff — the write whose loss stalls the
// pipeline until the sender's bounded wait expires and it retransmits).
func acceptancePlan(horizon simtime.Time, sentOff int) *Plan {
	h := simtime.Duration(horizon)
	stall := simtime.Microseconds(10)
	return NewPlan().
		Add(Fault{Kind: LinkStall, At: simtime.Time(h / 8), Dur: stall,
			From: mesh.Coord{X: 0, Y: 0}, To: mesh.Coord{X: 1, Y: 0}}).
		Add(Fault{Kind: LinkStall, At: simtime.Time(h / 4), Dur: stall,
			From: mesh.Coord{X: 1, Y: 0}, To: mesh.Coord{X: 2, Y: 0}}).
		Add(Fault{Kind: LinkStall, At: simtime.Time(3 * h / 8), Dur: stall,
			From: mesh.Coord{X: 2, Y: 0}, To: mesh.Coord{X: 3, Y: 0}}).
		// The lost flag write goes last: its timeout+retransmit recovery
		// quiesces the mesh for a while, which would starve later link
		// stalls of traffic to delay.
		Add(Fault{Kind: FlagDrop, At: simtime.Time(5 * h / 8), Core: 5, Off: sentOff})
}

// TestAllreduceRecoversFromAcceptanceFaults is the ISSUE's headline
// acceptance scenario: a seeded plan injecting three transient link
// faults and one lost flag write into a 48-core, 552-double Allreduce.
// The hardened collective completes with correct sums, the recovery
// latency is measured, there is no deadlock — and a second run of the
// same plan is tick-for-tick identical.
func TestAllreduceRecoversFromAcceptanceFaults(t *testing.T) {
	const n = 552
	base, baseStats, _ := runRobustAllreduce(t, NewPlan(), n)
	if baseStats.Timeouts != 0 || baseStats.Retransmits != 0 {
		t.Fatalf("fault-free run did defensive work: %+v", baseStats)
	}
	// Flag layout is a pure function of the model, so any chip's comm
	// gives the offset of core 5's sent announcement to core 6.
	sentOff := rcce.NewComm(scc.New(timing.Default())).FlagAddr(6, 5, rcce.FlagSent)

	end1, stats1, ev1 := runRobustAllreduce(t, acceptancePlan(base, sentOff), n)
	if len(ev1) != 4 {
		t.Fatalf("want all 4 faults to fire, got %d: %v", len(ev1), ev1)
	}
	if stats1.Timeouts == 0 || stats1.Retransmits == 0 {
		t.Fatalf("lost flag write not recovered by retransmission: %+v", stats1)
	}
	if stats1.Recovery <= 0 {
		t.Fatalf("recovery latency not measured: %+v", stats1)
	}
	if end1 <= base {
		t.Fatalf("faulted run (%v) not slower than fault-free run (%v)", end1, base)
	}

	end2, stats2, ev2 := runRobustAllreduce(t, acceptancePlan(base, sentOff), n)
	if end1 != end2 || stats1 != stats2 {
		t.Fatalf("recovery not deterministic:\n run1 %v %+v\n run2 %v %+v", end1, stats1, end2, stats2)
	}
	if fmt.Sprint(ev1) != fmt.Sprint(ev2) {
		t.Fatalf("fault histories differ:\n%v\n%v", ev1, ev2)
	}
}

// TestAllreduceSurvivesCoreDeath kills one core outright; the remaining
// 47 rebuild the communicator (ring and partition excluded the dead
// core) and complete the Allreduce with correct sums.
func TestAllreduceSurvivesCoreDeath(t *testing.T) {
	const dead = 17
	const n = 552
	plan := NewPlan().Add(Fault{Kind: CoreDie, At: 0, Core: dead})
	chip := scc.New(timing.Default())
	Install(chip, plan)
	comm := rcce.NewComm(chip)
	g, err := core.Survivors(chip.NumCores(), plan.DeadCores())
	if err != nil {
		t.Fatal(err)
	}
	pol := rcce.DefaultPolicy()
	cfg := core.Config{Transport: core.TransportLightweight, Balanced: true, Recovery: &pol}
	in := makeInputs(48, n, 3)
	want := make([]float64, n)
	for id := 0; id < 48; id++ {
		if id == dead {
			continue
		}
		for i, v := range in[id] {
			want[i] += v
		}
	}
	completed := 0
	chip.Launch(func(c *scc.Core) {
		if c.ID == dead {
			// The doomed core touches its MPB and never returns.
			c.MPBWriteF64s(comm.DataBase(c.ID), []float64{1})
			t.Errorf("core %d survived its own death", c.ID)
			return
		}
		x, err := core.NewCtxGroup(comm.UE(c.ID), cfg, g)
		if err != nil {
			t.Errorf("NewCtxGroup: %v", err)
			return
		}
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		c.WriteF64s(src, in[c.ID])
		if err := x.Allreduce(src, dst, n, core.Sum); err != nil {
			t.Errorf("core %d Allreduce: %v", c.ID, err)
			return
		}
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Errorf("core %d element %d = %v, want %v", c.ID, i, got[i], want[i])
				return
			}
		}
		completed++
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !chip.Cores[dead].Dead() {
		t.Fatal("core 17 should be dead")
	}
	if completed != 47 {
		t.Fatalf("completed = %d, want 47 survivors", completed)
	}
	evs := plan.Events()
	if len(evs) != 1 || evs[0].Kind != CoreDie {
		t.Fatalf("events = %v, want one core-die", evs)
	}
}

// TestHangNamesFaultSite checks the diagnosability requirement: when a
// NON-hardened protocol hangs because of an injected fault, the deadlock
// report names the exact fault site (the MPB flag offset whose write was
// lost).
func TestHangNamesFaultSite(t *testing.T) {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	sentOff := comm.FlagAddr(1, 0, rcce.FlagSent)
	plan := NewPlan().Add(Fault{Kind: FlagDrop, At: 0, Core: 0, Off: sentOff})
	Install(chip, plan)
	chip.LaunchOne(0, func(c *scc.Core) {
		u := comm.UE(0)
		a := c.AllocF64(8)
		u.Send(1, a, 64) // sent-flag announcement is dropped: hangs
	})
	chip.LaunchOne(1, func(c *scc.Core) {
		u := comm.UE(1)
		a := c.AllocF64(8)
		u.Recv(0, a, 64)
	})
	err := chip.Run()
	if err == nil {
		t.Fatal("expected a deadlock")
	}
	site := fmt.Sprintf("flag@%d", sentOff)
	if !strings.Contains(err.Error(), site) {
		t.Fatalf("deadlock report does not name fault site %q:\n%v", site, err)
	}
	evs := plan.Events()
	if len(evs) != 1 || !strings.Contains(evs[0].Site, site) {
		t.Fatalf("fault event does not record site %q: %v", site, evs)
	}
}

// TestRandomPlanShape checks the seeded generator: n recoverable faults,
// never a core death, and the same seed produces the same schedule.
func TestRandomPlanShape(t *testing.T) {
	m := timing.Default()
	h := simtime.Microseconds(2000)
	p1 := Random(42, 25, h, m)
	p2 := Random(42, 25, h, m)
	if p1.Len() != 25 || p2.Len() != 25 {
		t.Fatalf("Len = %d/%d, want 25", p1.Len(), p2.Len())
	}
	if len(p1.DeadCores()) != 0 {
		t.Fatalf("Random generated core deaths: %v", p1.DeadCores())
	}
	for i := range p1.faults {
		if *p1.faults[i] != *p2.faults[i] {
			t.Fatalf("fault %d differs across same-seed plans:\n%+v\n%+v", i, p1.faults[i], p2.faults[i])
		}
	}
	if Random(43, 25, h, m).faults[0].At == p1.faults[0].At &&
		*Random(43, 25, h, m).faults[0] == *p1.faults[0] {
		t.Fatal("different seeds produced an identical first fault")
	}
}
