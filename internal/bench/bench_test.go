package bench

import (
	"strings"
	"testing"

	"scc/internal/core"
	"scc/internal/gcmc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

func TestStacksForPanels(t *testing.T) {
	// Allgather/Alltoall: 4 legend entries (no balancing); rooted and
	// reduction collectives: 5; Allreduce: 6 (adds the MPB stack).
	if got := len(StacksFor(OpAllgather)); got != 4 {
		t.Fatalf("allgather legend = %d entries, want 4", got)
	}
	if got := len(StacksFor(OpBroadcast)); got != 5 {
		t.Fatalf("broadcast legend = %d entries, want 5", got)
	}
	stacks := StacksFor(OpAllreduce)
	if got := len(stacks); got != 6 {
		t.Fatalf("allreduce legend = %d entries, want 6", got)
	}
	if stacks[5].Name != "MPB-based Allreduce" || !stacks[5].Cfg.MPBDirect {
		t.Fatalf("allreduce legend missing the MPB stack: %+v", stacks[5])
	}
	if !stacks[0].RCKMPI {
		t.Fatal("RCKMPI must be the first legend entry (paper order)")
	}
}

func TestMeasureIsDeterministic(t *testing.T) {
	m := timing.Default()
	st := Stack{Name: "bal", Cfg: core.ConfigBalanced}
	a := Measure(m, OpAllreduce, st, 100, 1)
	b := Measure(m, OpAllreduce, st, 100, 1)
	if a != b {
		t.Fatalf("measurements differ: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatal("non-positive latency")
	}
}

func TestMeasureEveryOpRuns(t *testing.T) {
	m := timing.Default()
	st := Stack{Name: "lw", Cfg: core.ConfigLightweight}
	rk := Stack{Name: "rck", RCKMPI: true}
	for _, op := range AllOps() {
		if d := Measure(m, op, st, 52, 1); d <= 0 {
			t.Fatalf("%s: non-positive latency", op)
		}
		if d := Measure(m, op, rk, 52, 1); d <= 0 {
			t.Fatalf("%s under RCKMPI: non-positive latency", op)
		}
	}
}

func TestSizes(t *testing.T) {
	s := Sizes(500, 520, 4)
	want := []int{500, 504, 508, 512, 516, 520}
	if len(s) != len(want) {
		t.Fatalf("sizes %v, want %v", s, want)
	}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("sizes %v, want %v", s, want)
		}
	}
	if got := Sizes(5, 7, 0); len(got) != 3 {
		t.Fatalf("step 0 must clamp to 1, got %v", got)
	}
}

func TestSweepAndStats(t *testing.T) {
	m := timing.Default()
	base := Sweep(m, OpAllreduce, Stack{Name: "blocking", Cfg: core.ConfigBlocking}, []int{96, 144}, 1)
	fast := Sweep(m, OpAllreduce, Stack{Name: "bal", Cfg: core.ConfigBalanced}, []int{96, 144}, 1)
	if len(base.Points) != 2 || base.Points[0].N != 96 {
		t.Fatalf("sweep points wrong: %+v", base.Points)
	}
	if MeanLatency(base) <= 0 {
		t.Fatal("mean latency not positive")
	}
	if sp := SpeedupVsBaseline(base, fast); sp <= 1 {
		t.Fatalf("optimized stack speedup %.2f, want > 1", sp)
	}
	if MeanLatency(Series{}) != 0 || SpeedupVsBaseline(base, Series{}) != 0 {
		t.Fatal("empty series edge cases broken")
	}
}

func TestWriteCSVAndTable(t *testing.T) {
	series := []Series{
		{Stack: Stack{Name: "a"}, Points: []Point{{N: 10, Latency: simtime.Microseconds(5)}}},
		{Stack: Stack{Name: "b"}, Points: []Point{{N: 10, Latency: simtime.Microseconds(7)}}},
	}
	var csv strings.Builder
	if err := WriteCSV(&csv, series); err != nil {
		t.Fatal(err)
	}
	if got := csv.String(); got != "n,a,b\n10,5.00,7.00\n" {
		t.Fatalf("csv = %q", got)
	}
	var tab strings.Builder
	if err := WriteTable(&tab, "title", series); err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "5.0us") {
		t.Fatalf("table = %q", out)
	}
	if err := WriteCSV(&csv, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunGCMCSmoke(t *testing.T) {
	p := gcmc.DefaultParams()
	p.NumParticles = 96
	p.NumKVecs = 48
	p.KMax = 4
	p.Cycles = 3
	blk := RunGCMC(timing.Default(), Stack{Name: "blocking", Cfg: core.ConfigBlocking}, p)
	bal := RunGCMC(timing.Default(), Stack{Name: "bal", Cfg: core.ConfigBalanced}, p)
	if blk.FinalEnergy != bal.FinalEnergy || blk.FinalN != bal.FinalN {
		t.Fatalf("stacks disagree on physics: %+v vs %+v", blk, bal)
	}
	if blk.WallTime <= bal.WallTime {
		t.Fatalf("blocking (%v) not slower than balanced (%v)", blk.WallTime, bal.WallTime)
	}
	if f := blk.WaitFraction(); f <= 0 || f >= 1 {
		t.Fatalf("wait fraction %v out of range", f)
	}
	if len(GCMCStacks()) != 6 {
		t.Fatalf("Fig. 10 has %d bars, want 6", len(GCMCStacks()))
	}
}

func TestRenderChart(t *testing.T) {
	series := []Series{
		{Stack: Stack{Name: "a"}, Points: []Point{
			{N: 10, Latency: simtime.Microseconds(100)},
			{N: 20, Latency: simtime.Microseconds(200)},
		}},
		{Stack: Stack{Name: "b"}, Points: []Point{
			{N: 10, Latency: simtime.Microseconds(50)},
			{N: 20, Latency: simtime.Microseconds(60)},
		}},
	}
	var sb strings.Builder
	if err := RenderChart(&sb, "test panel", series, 40, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"test panel", "legend", "R=a", "b=b", "n=10", "n=20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Empty chart does not crash.
	if err := RenderChart(&sb, "empty", nil, 40, 8); err != nil {
		t.Fatal(err)
	}
}
