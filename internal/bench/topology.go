package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"scc/internal/core"
	"scc/internal/fabric"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// This file makes topology a measurable axis: flag-spec parsing for
// arbitrary meshes and chip counts, hierarchical multi-chip latency
// measurement over the fabric, and panel writers that label every row
// with the geometry so sweeps over different topologies concatenate
// into one file.

// SpecError is the typed parse error for the topology flags. Callers
// (the cmd tools) match on it with errors.As to separate user input
// mistakes from harness bugs.
type SpecError struct {
	Flag  string // the flag name, e.g. "-mesh"
	Value string // the rejected input
	Why   string // what was wrong with it
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("%s=%q: %s", e.Flag, e.Value, e.Why)
}

// ParseMeshSpec parses a ROWSxCOLS[xCORES_PER_TILE] mesh spec ("4x6x2"
// is the paper's chip, "8x8x1" a 64-core variant) into a derived
// timing model, validating the resulting geometry. The two-part form
// means one core per tile ("100x100" is the 10,000-core scaling
// target). The empty string means the paper's default chip.
func ParseMeshSpec(spec string) (*timing.Model, error) {
	if spec == "" {
		return timing.Default(), nil
	}
	parts := strings.Split(spec, "x")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, &SpecError{Flag: "-mesh", Value: spec,
			Why: "want ROWSxCOLS or ROWSxCOLSxCORES_PER_TILE, e.g. 100x100 or 4x6x2"}
	}
	dims := [3]int{0, 0, 1} // cores per tile defaults to 1
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, &SpecError{Flag: "-mesh", Value: spec,
				Why: fmt.Sprintf("%q is not an integer", p)}
		}
		if v < 1 {
			return nil, &SpecError{Flag: "-mesh", Value: spec,
				Why: fmt.Sprintf("dimension %d must be positive", v)}
		}
		dims[i] = v
	}
	m := timing.Topology(dims[0], dims[1], dims[2])
	if err := m.Validate(); err != nil {
		return nil, &SpecError{Flag: "-mesh", Value: spec, Why: err.Error()}
	}
	return m, nil
}

// ParseChips parses the -chips flag: a positive chip count.
func ParseChips(val string) (int, error) {
	k, err := strconv.Atoi(val)
	if err != nil {
		return 0, &SpecError{Flag: "-chips", Value: val, Why: "not an integer"}
	}
	if k < 1 {
		return 0, &SpecError{Flag: "-chips", Value: val, Why: "need at least one chip"}
	}
	return k, nil
}

// MeshLabel renders a system geometry for titles and CSV rows:
// "6x4x2" for one chip, "2x 6x4x2" for a multi-chip system.
func MeshLabel(model *timing.Model, chips int) string {
	mesh := fmt.Sprintf("%dx%dx%d", model.MeshHeight, model.MeshWidth, model.CoresPerTile)
	if chips > 1 {
		return fmt.Sprintf("%dx %s", chips, mesh)
	}
	return mesh
}

// MeasureHier measures one hierarchical collective (Allreduce or
// Broadcast) of n doubles across a multi-chip system, forcing intra as
// the intra-chip phase ("" = the selector's choice), and returns the
// average latency over reps timed repetitions as seen by the global
// rank 0 (chip 0, core 0). With chips <= 1 it degrades to the flat
// single-chip measurement on the balanced stack, so flat-vs-hier
// crossover sweeps share one entry point.
func MeasureHier(model *timing.Model, chips int, intra string, op Op, n, reps int) simtime.Duration {
	if chips <= 1 {
		st := Stack{Name: "lightweight non-blocking, balanced", Cfg: core.ConfigBalanced, Algo: intra}
		return Measure(model, op, st, n, reps)
	}
	if op != OpAllreduce && op != OpBroadcast {
		panic("bench: hierarchical measurement supports allreduce and broadcast, not " + string(op))
	}
	if reps < 1 {
		reps = 1
	}
	sys := fabric.New(model, chips)
	rp := getReps(reps)
	perRep := *rp
	for ci := 0; ci < chips; ci++ {
		ci := ci
		comm := rcce.NewComm(sys.Chips[ci])
		port := sys.Port(ci)
		sys.Chips[ci].Launch(func(c *scc.Core) {
			x, err := core.NewCtxFabric(comm.UE(c.ID), core.ConfigBalanced, &core.Fabric{
				Port: port, Chip: ci, Chips: chips, Intra: intra,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: hier ctx: %v", err))
			}
			src := c.AllocF64(n)
			dst := c.AllocF64(n)
			vp := getStage(n)
			v := *vp
			for i := range v {
				v[i] = float64(c.ID) + float64(i)*0.001
			}
			c.WriteF64s(src, v)
			putStage(vp)
			runOnce := func() {
				var err error
				if op == OpAllreduce {
					err = x.Allreduce(src, dst, n, core.Sum)
				} else {
					err = x.Broadcast(0, src, n)
				}
				if err != nil {
					panic(fmt.Sprintf("bench: hier %s n=%d: %v", op, n, err))
				}
			}
			x.Barrier()
			runOnce() // warm-up, as in Measure
			for r := 0; r < reps; r++ {
				x.Barrier()
				t0 := c.Now()
				runOnce()
				if ci == 0 && c.ID == 0 {
					perRep[r] = c.Now() - t0
				}
			}
			x.Release()
		})
	}
	if err := sys.Run(); err != nil {
		panic(fmt.Sprintf("bench: hier %s n=%d over %d chips: %v", op, n, chips, err))
	}
	var total simtime.Duration
	for _, d := range perRep {
		total += d
	}
	putReps(rp)
	return total / simtime.Time(reps)
}

// HierSweep measures the hierarchical latency curve of one op across
// the given vector sizes, labeled with the system geometry.
func HierSweep(model *timing.Model, chips int, intra string, op Op, sizes []int, reps int) Series {
	name := "hierarchical " + MeshLabel(model, chips)
	if intra != "" {
		name += " [" + intra + "]"
	}
	s := Series{Stack: Stack{Name: name}}
	for _, n := range sizes {
		s.Points = append(s.Points, Point{N: n, Latency: MeasureHier(model, chips, intra, op, n, reps)})
	}
	return s
}

// WriteTopologyCSV emits a panel like WriteCSV with leading mesh,
// cores and chips columns derived from the measured system, so sweeps
// over different geometries concatenate into one self-describing file.
func WriteTopologyCSV(w io.Writer, model *timing.Model, chips int, series []Series) error {
	if len(series) == 0 {
		return nil
	}
	if err := checkAligned(series); err != nil {
		return err
	}
	if chips < 1 {
		chips = 1
	}
	headers := []string{"mesh", "cores", "chips", "n"}
	for _, s := range series {
		headers = append(headers, s.Stack.Label())
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	mesh := fmt.Sprintf("%dx%dx%d", model.MeshHeight, model.MeshWidth, model.CoresPerTile)
	cores := chips * model.NumCores()
	for i, pt := range series[0].Points {
		row := []string{mesh, fmt.Sprintf("%d", cores), fmt.Sprintf("%d", chips), fmt.Sprintf("%d", pt.N)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.2f", s.Points[i].Latency.Micros()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteTopologyTable renders a panel as an aligned text table titled
// with the system geometry.
func WriteTopologyTable(w io.Writer, title string, model *timing.Model, chips int, series []Series) error {
	if chips < 1 {
		chips = 1
	}
	full := fmt.Sprintf("%s  [mesh %s, %d cores]", title, MeshLabel(model, chips), chips*model.NumCores())
	return WriteTable(w, full, series)
}
