// Package bench is the measurement harness that regenerates the paper's
// evaluation: per-collective latency sweeps over vector sizes (Fig. 9),
// the block-partitioning tables (Fig. 6), the application runtimes
// (Fig. 10), and the summary speedup table of Sec. V-A.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"scc/internal/core"
	"scc/internal/rcce"
	"scc/internal/rckmpi"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// stagePool recycles the per-core input-staging vectors across sweep
// cells (48 per cell otherwise). sync.Pool keeps it safe under the
// parallel runner's worker pool.
var stagePool = sync.Pool{New: func() any { return new([]float64) }}

// getStage returns a pooled vector of length n; return it with putStage.
func getStage(n int) *[]float64 {
	vp := stagePool.Get().(*[]float64)
	if cap(*vp) < n {
		*vp = make([]float64, n)
	}
	*vp = (*vp)[:n]
	return vp
}

func putStage(vp *[]float64) { stagePool.Put(vp) }

// repPool recycles the per-cell repetition-latency buffers.
var repPool = sync.Pool{New: func() any { return new([]simtime.Duration) }}

func getReps(n int) *[]simtime.Duration {
	rp := repPool.Get().(*[]simtime.Duration)
	if cap(*rp) < n {
		*rp = make([]simtime.Duration, n)
	}
	*rp = (*rp)[:n]
	for i := range *rp {
		(*rp)[i] = 0
	}
	return rp
}

func putReps(rp *[]simtime.Duration) { repPool.Put(rp) }

// Op names one collective operation, matching the paper's Fig. 9 panels.
type Op string

// The six collectives of Fig. 9.
const (
	OpAllgather     Op = "allgather"
	OpAlltoall      Op = "alltoall"
	OpReduceScatter Op = "reducescatter"
	OpBroadcast     Op = "broadcast"
	OpReduce        Op = "reduce"
	OpAllreduce     Op = "allreduce"
)

// AllOps returns the Fig. 9 panels in order (a)..(f).
func AllOps() []Op {
	return []Op{OpAllgather, OpAlltoall, OpReduceScatter, OpBroadcast, OpReduce, OpAllreduce}
}

// Stack identifies one measured communication stack (a figure legend
// entry).
type Stack struct {
	Name string
	// Cfg is the collectives configuration; ignored when RCKMPI is set.
	Cfg    core.Config
	RCKMPI bool
	// Algo, when non-empty, pins every collective to the named registry
	// algorithm (core.Fixed) instead of the stack's selector. Ignored
	// for RCKMPI.
	Algo string
}

// Label is the legend/CSV column name: the stack name, suffixed with
// the pinned algorithm when one is set.
func (st Stack) Label() string {
	if st.Algo == "" {
		return st.Name
	}
	return st.Name + " [" + st.Algo + "]"
}

// StacksFor returns the legend entries of the Fig. 9 panel for op, in
// the paper's order. The MPB-based stack exists only for Allreduce; the
// balanced stack only for the block-partitioned collectives.
func StacksFor(op Op) []Stack {
	s := []Stack{
		{Name: "RCKMPI", RCKMPI: true},
		{Name: "blocking", Cfg: core.ConfigBlocking},
		{Name: "iRCCE", Cfg: core.ConfigIRCCE},
		{Name: "lightweight non-blocking", Cfg: core.ConfigLightweight},
	}
	switch op {
	case OpAllgather, OpAlltoall:
		// These move whole vectors; block balancing does not apply.
	case OpReduceScatter, OpBroadcast, OpReduce:
		s = append(s, Stack{Name: "lightweight non-blocking, balanced", Cfg: core.ConfigBalanced})
	case OpAllreduce:
		s = append(s,
			Stack{Name: "lightweight non-blocking, balanced", Cfg: core.ConfigBalanced},
			Stack{Name: "MPB-based Allreduce", Cfg: core.ConfigMPB},
		)
	}
	return s
}

// StacksForAlgo returns StacksFor(op) with every non-RCKMPI stack
// pinned to the named registry algorithm ("" leaves the stacks' own
// selectors in place, identical to StacksFor). Labels grow an
// "[algo]" suffix so tables and CSVs stay self-describing.
func StacksForAlgo(op Op, algo string) []Stack {
	s := StacksFor(op)
	if algo == "" {
		return s
	}
	for i := range s {
		if !s[i].RCKMPI {
			s[i].Algo = algo
		}
	}
	return s
}

// Measure runs one collective of the given vector size on a fresh chip
// of the model's geometry and returns the average latency over reps repetitions as
// observed on core 0 (like the paper's methodology; the first, cache-cold
// repetition is treated as warm-up and excluded).
func Measure(model *timing.Model, op Op, st Stack, n, reps int) simtime.Duration {
	if reps < 1 {
		reps = 1
	}
	chip := scc.New(model)
	comm := rcce.NewComm(chip)
	rp := getReps(reps)
	perRep := *rp
	chip.Launch(func(c *scc.Core) {
		runCollectiveProgram(c, comm, op, st, n, reps, perRep)
	})
	if err := chip.Run(); err != nil {
		panic(fmt.Sprintf("bench: %s/%s n=%d: %v", op, st.Name, n, err))
	}
	var total simtime.Duration
	for _, d := range perRep {
		total += d
	}
	putReps(rp)
	return total / simtime.Time(reps)
}

// runCollectiveProgram is the SPMD body: warm-up plus timed repetitions,
// separated by barriers.
func runCollectiveProgram(c *scc.Core, comm *rcce.Comm, op Op, st Stack, n, reps int, perRep []simtime.Duration) {
	p := comm.NumUEs()
	ue := comm.UE(c.ID)
	var x *core.Ctx
	var mp *rckmpi.Lib
	if st.RCKMPI {
		mp = rckmpi.New(ue)
	} else {
		cfg := st.Cfg
		if st.Algo != "" {
			cfg.Selector = core.Fixed(st.Algo)
		}
		x = core.NewCtx(ue, cfg)
	}

	// Buffers sized for the worst case (alltoall/allgather need p*n).
	big := n * p
	src := c.AllocF64(big)
	dst := c.AllocF64(big)
	vp := getStage(big)
	v := *vp
	for i := range v {
		v[i] = float64(c.ID) + float64(i)*0.001
	}
	c.WriteF64s(src, v)
	putStage(vp) // staged into simulated memory; the host copy is done

	runOnce := func() {
		if st.RCKMPI {
			runRCKMPIOp(mp, op, src, dst, n)
			return
		}
		runCoreOp(x, op, src, dst, n)
	}

	ue.Barrier()
	runOnce() // warm-up: first touch of all buffers
	for r := 0; r < reps; r++ {
		ue.Barrier()
		t0 := c.Now()
		runOnce()
		if c.ID == 0 {
			perRep[r] = c.Now() - t0
		}
	}
	if x != nil {
		x.Release()
	}
}

func runCoreOp(x *core.Ctx, op Op, src, dst scc.Addr, n int) {
	switch op {
	case OpAllgather:
		x.Allgather(src, n, dst)
	case OpAlltoall:
		x.Alltoall(src, dst, n)
	case OpReduceScatter:
		x.ReduceScatter(src, dst, n, core.Sum)
	case OpBroadcast:
		x.Broadcast(0, src, n)
	case OpReduce:
		x.Reduce(0, src, dst, n, core.Sum)
	case OpAllreduce:
		x.Allreduce(src, dst, n, core.Sum)
	default:
		panic("bench: unknown op " + string(op))
	}
}

func runRCKMPIOp(mp *rckmpi.Lib, op Op, src, dst scc.Addr, n int) {
	switch op {
	case OpAllgather:
		mp.Allgather(src, n, dst)
	case OpAlltoall:
		mp.Alltoall(src, dst, n)
	case OpReduceScatter:
		mp.ReduceScatter(src, dst, n, rckmpi.Op(core.Sum))
	case OpBroadcast:
		mp.Bcast(0, src, n)
	case OpReduce:
		mp.Reduce(0, src, dst, n, rckmpi.Op(core.Sum))
	case OpAllreduce:
		mp.Allreduce(src, dst, n, rckmpi.Op(core.Sum))
	default:
		panic("bench: unknown op " + string(op))
	}
}

// Point is one sample of a latency curve.
type Point struct {
	N       int
	Latency simtime.Duration
}

// Series is one labeled latency curve of a Fig. 9 panel.
type Series struct {
	Stack  Stack
	Points []Point
}

// Sweep measures one stack across the given vector sizes.
func Sweep(model *timing.Model, op Op, st Stack, sizes []int, reps int) Series {
	s := Series{Stack: st}
	for _, n := range sizes {
		s.Points = append(s.Points, Point{N: n, Latency: Measure(model, op, st, n, reps)})
	}
	return s
}

// Panel runs the complete Fig. 9 panel for op: every legend stack over
// the size range.
func Panel(model *timing.Model, op Op, sizes []int, reps int) []Series {
	var out []Series
	for _, st := range StacksFor(op) {
		out = append(out, Sweep(model, op, st, sizes, reps))
	}
	return out
}

// Sizes returns the paper's x-axis: every vector size in [lo, hi].
func Sizes(lo, hi, step int) []int {
	if step < 1 {
		step = 1
	}
	var out []int
	for n := lo; n <= hi; n += step {
		out = append(out, n)
	}
	return out
}

// MeanLatency averages a series (used for the paper's "average speedup"
// statements).
func MeanLatency(s Series) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Latency.Micros()
	}
	return sum / float64(len(s.Points))
}

// SpeedupVsBaseline computes mean(baseline)/mean(s) - the paper reports
// all speedups relative to the blocking RCCE/RCCE_comm stack.
func SpeedupVsBaseline(baseline, s Series) float64 {
	m := MeanLatency(s)
	if m == 0 {
		return 0
	}
	return MeanLatency(baseline) / m
}

// checkAligned verifies that every series has the same number of points
// as the first, so row-major rendering cannot index out of range.
func checkAligned(series []Series) error {
	for _, s := range series {
		if len(s.Points) != len(series[0].Points) {
			return fmt.Errorf("bench: ragged panel: series %q has %d points, %q has %d",
				s.Stack.Label(), len(s.Points), series[0].Stack.Label(), len(series[0].Points))
		}
	}
	return nil
}

// WriteCSV emits a panel as CSV: n, then one latency column (in
// microseconds) per stack.
func WriteCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return nil
	}
	if err := checkAligned(series); err != nil {
		return err
	}
	headers := []string{"n"}
	for _, s := range series {
		headers = append(headers, s.Stack.Label())
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for i, pt := range series[0].Points {
		row := []string{fmt.Sprintf("%d", pt.N)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.2f", s.Points[i].Latency.Micros()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders a panel as an aligned text table.
func WriteTable(w io.Writer, title string, series []Series) error {
	if err := checkAligned(series); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if len(series) == 0 {
		return nil
	}
	cols := []string{"n"}
	for _, s := range series {
		cols = append(cols, s.Stack.Label())
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
		if widths[i] < 12 {
			widths[i] = 12
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(cols); err != nil {
		return err
	}
	for i, pt := range series[0].Points {
		cells := []string{fmt.Sprintf("%d", pt.N)}
		for _, s := range series {
			cells = append(cells, fmt.Sprintf("%.1fus", s.Points[i].Latency.Micros()))
		}
		if err := writeRow(cells); err != nil {
			return err
		}
	}
	return nil
}

// SummaryRow is one line of the Sec. V-A summary: per-collective average
// speedup of the best non-MPB optimized stack over the blocking baseline.
type SummaryRow struct {
	Op       Op
	Speedup  float64
	BestName string
}

// Summary computes the paper's closing table ("all collectives show
// speedups between approximately 1.6x and 2.8x on average"). It returns
// an error if any panel lacks the blocking baseline every speedup is
// measured against.
func Summary(model *timing.Model, sizes []int, reps int) ([]SummaryRow, error) {
	panels := make([][]Series, 0, len(AllOps()))
	for _, op := range AllOps() {
		panels = append(panels, Panel(model, op, sizes, reps))
	}
	return SummarizePanels(AllOps(), panels)
}

// SummarizePanels reduces already-measured panels (one per op, in op
// order) to the Sec. V-A summary rows. Speedups are relative to each
// panel's "blocking" series; a panel without that baseline is an error —
// silently dividing against a zero-value series would emit speedup-0
// rows that look like measurements.
func SummarizePanels(ops []Op, panels [][]Series) ([]SummaryRow, error) {
	if len(ops) != len(panels) {
		return nil, fmt.Errorf("bench: %d ops but %d panels", len(ops), len(panels))
	}
	var rows []SummaryRow
	for i, op := range ops {
		panel := panels[i]
		var baseline *Series
		for j := range panel {
			if panel[j].Stack.Name == "blocking" {
				baseline = &panel[j]
			}
		}
		if baseline == nil || len(baseline.Points) == 0 {
			return nil, fmt.Errorf("bench: %s panel has no blocking baseline series to compare against", op)
		}
		best, bestName := 0.0, ""
		for _, s := range panel {
			if s.Stack.RCKMPI || s.Stack.Name == "blocking" || s.Stack.Cfg.MPBDirect {
				continue
			}
			if sp := SpeedupVsBaseline(*baseline, s); sp > best {
				best, bestName = sp, s.Stack.Name
			}
		}
		rows = append(rows, SummaryRow{Op: op, Speedup: best, BestName: bestName})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Op < rows[j].Op })
	return rows, nil
}
