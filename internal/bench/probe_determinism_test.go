package bench

import (
	"testing"

	"scc/internal/timing"
)

// TestProbeCountersDeterministic audits the wait-path probe accounting:
// flag-probes and tas-probes must be exact functions of the simulated
// program — one count per probe, per flag, per round — and in particular
// must not depend on how (or whether) blocked-wait diagnostics are
// rendered. Two identical instrumented runs across every transport
// family must agree per core, exactly.
func TestProbeCountersDeterministic(t *testing.T) {
	model := timing.Default()
	for _, cell := range instrumentCells() {
		a := MeasureInstrumented(model, cell.op, cell.st, 96, 2)
		b := MeasureInstrumented(model, cell.op, cell.st, 96, 2)
		for _, ctr := range []string{"flag-probes", "tas-probes", "blocked-waits", "flag-sets"} {
			for id := range a.Metrics.Cores {
				va := a.Metrics.Cores[id].Counters[ctr]
				vb := b.Metrics.Cores[id].Counters[ctr]
				if va != vb {
					t.Errorf("%s/%s: core %d %s differs between identical runs: %d vs %d",
						cell.op, cell.st.Label(), id, ctr, va, vb)
				}
			}
		}
		// A run that never probes a flag would make the audit vacuous.
		var total int64
		for id := range a.Metrics.Cores {
			total += a.Metrics.Cores[id].Counters["flag-probes"]
		}
		if total == 0 {
			t.Errorf("%s/%s: no flag probes recorded", cell.op, cell.st.Label())
		}
	}
}
