package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"scc/internal/core"
	"scc/internal/mesh"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// This file is the simulator's wall-clock self-benchmark: where the rest
// of the package measures virtual time inside the simulation, SelfBench
// measures how fast the simulator itself runs on the host. It feeds the
// repo's perf trajectory (BENCH_sim.json) so throughput regressions are
// visible across commits.

// SelfBenchResult is one record of the self-benchmark report.
type SelfBenchResult struct {
	// Name identifies the measured path, e.g. "mesh.Transfer" or
	// "panel.parallel".
	Name string `json:"name"`
	// Ops is how many operations the measured loop executed.
	Ops int64 `json:"ops"`
	// NsPerOp is host wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// WallMs is the total wall-clock time of the measured loop.
	WallMs float64 `json:"wall_ms"`
	// BytesPerCore is heap bytes retained per simulated core; only set
	// for footprint records (see MeasureFootprint).
	BytesPerCore float64 `json:"bytes_per_core,omitempty"`
	// CellsPerSec is sweep throughput in panel cells (one (op, stack, n)
	// simulation) per second; only set for panel records.
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
	// Workers is the pool size used; only set for panel records.
	Workers int `json:"workers,omitempty"`
	// SpeedupVsSerial compares the parallel panel against the serial one
	// from the same report; only set on the parallel record.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// measureLoop times fn, which must perform ops operations, and reports
// wall clock and allocation counts around it.
func measureLoop(name string, ops int64, fn func()) SelfBenchResult {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	fn()
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	return SelfBenchResult{
		Name:        name,
		Ops:         ops,
		NsPerOp:     float64(wall.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
		WallMs:      float64(wall.Nanoseconds()) / 1e6,
	}
}

// SelfBench measures the simulator's host-side throughput at three
// levels: the mesh-transfer micro path, the event loop, one full 48-core
// Allreduce, and a reduced Fig. 9 panel swept serially and then with a
// workers-wide pool. It returns one record per measurement.
func SelfBench(model *timing.Model, workers int) []SelfBenchResult {
	var out []SelfBenchResult

	// Micro: the mesh hot path. Destinations cycle over the whole mesh so
	// the walk lengths vary like real traffic.
	const transfers = 2_000_000
	net := mesh.New(model)
	out = append(out, measureLoop("mesh.Transfer", transfers, func() {
		var at simtime.Time
		for i := 0; i < transfers; i++ {
			at = net.Transfer(mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: i % model.MeshWidth, Y: (i / model.MeshWidth) % model.MeshHeight}, 256, at)
		}
	}))

	// Micro: the event loop, one process per core ping-ponging through
	// the queue.
	const sleepsPerProc = 10_000
	nCores := model.NumCores()
	eng := simtime.NewEngine()
	for p := 0; p < nCores; p++ {
		eng.Spawn("bench", func(p *simtime.Proc) {
			for i := 0; i < sleepsPerProc; i++ {
				p.Sleep(3)
			}
		})
	}
	out = append(out, measureLoop("simtime.EventLoop", int64(nCores)*sleepsPerProc, func() {
		if err := eng.Run(); err != nil {
			panic(fmt.Sprintf("selfbench event loop: %v", err))
		}
	}))

	// Micro: the pure cross-goroutine handoff. Two processes whose
	// wake-ups strictly alternate, so every event pays exactly one channel
	// rendezvous and zero fast-path hits — the scheduler's floor when
	// control must change goroutines.
	const handoffs = 1_000_000
	heng := simtime.NewEngine()
	heng.Spawn("a", func(p *simtime.Proc) {
		p.Sleep(1)
		for i := 0; i < handoffs/2; i++ {
			p.Sleep(2)
		}
	})
	heng.Spawn("b", func(p *simtime.Proc) {
		for i := 0; i < handoffs/2; i++ {
			p.Sleep(2)
		}
	})
	out = append(out, measureLoop("simtime.Handoff", handoffs, func() {
		if err := heng.Run(); err != nil {
			panic(fmt.Sprintf("selfbench handoff: %v", err))
		}
	}))

	// Micro: the same-proc fast path. A single process sleeping against an
	// empty queue advances the clock inline — no queue, no channel.
	const fastSleeps = 20_000_000
	feng := simtime.NewEngine()
	feng.Spawn("solo", func(p *simtime.Proc) {
		for i := 0; i < fastSleeps; i++ {
			p.Sleep(3)
		}
	})
	out = append(out, measureLoop("simtime.SameProcFastPath", fastSleeps, func() {
		if err := feng.Run(); err != nil {
			panic(fmt.Sprintf("selfbench fast path: %v", err))
		}
	}))

	// Macro: one full-chip Allreduce at the paper's application size.
	// The record name is a stable BENCH_sim.json key (named for the
	// default 48-core chip), so it does not vary with the model.
	lw := Stack{Name: "lightweight non-blocking", Cfg: core.ConfigLightweight}
	out = append(out, measureLoop("chip.Allreduce48", 1, func() {
		Measure(model, OpAllreduce, lw, 552, 1)
	}))

	// Macro: a reduced Fig. 9 Allreduce panel, serial then parallel. The
	// parallel run must produce byte-identical series (the runner tests
	// prove it), so the only difference is wall clock.
	sizes := Sizes(500, 540, 8)
	cells := int64(len(StacksFor(OpAllreduce)) * len(sizes))
	serial := measureLoop("panel.serial", cells, func() {
		Panel(model, OpAllreduce, sizes, 1)
	})
	serial.Workers = 1
	serial.CellsPerSec = float64(cells) / (serial.WallMs / 1e3)
	out = append(out, serial)

	r := NewRunner(workers)
	par := measureLoop("panel.parallel", cells, func() {
		r.Panel(model, OpAllreduce, sizes, 1)
	})
	par.Workers = r.workers()
	par.CellsPerSec = float64(cells) / (par.WallMs / 1e3)
	par.SpeedupVsSerial = serial.WallMs / par.WallMs
	out = append(out, par)

	// Footprint: heap bytes per simulated core at the tracked chip
	// sizes, so a dense per-core structure creeping back in fails the
	// gate long before anyone tries a 10k-core run.
	out = append(out, SelfBenchFootprints()...)

	return out
}

// WriteSelfBench emits the report as an indented JSON array, the format
// of the repo's BENCH_*.json perf-trajectory files.
func WriteSelfBench(w io.Writer, results []SelfBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// ReadSelfBench parses a report written by WriteSelfBench.
func ReadSelfBench(r io.Reader) ([]SelfBenchResult, error) {
	var results []SelfBenchResult
	if err := json.NewDecoder(r).Decode(&results); err != nil {
		return nil, fmt.Errorf("bench: parsing self-benchmark report: %w", err)
	}
	return results, nil
}

// GateSelfBench compares a fresh report against a committed baseline and
// returns one violation per entry whose ns_per_op or allocs_per_op
// regressed by more than tol (0.15 = 15% slack). Entries present in only
// one report are ignored, so the benchmark set can evolve; a baseline
// value of zero gates on an absolute slack of 1 instead of a ratio.
func GateSelfBench(baseline, current []SelfBenchResult, tol float64) []string {
	base := make(map[string]SelfBenchResult, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	var violations []string
	check := func(name, metric string, old, now float64) {
		limit := old * (1 + tol)
		if old <= 0 {
			limit = 1
		}
		if now > limit {
			violations = append(violations,
				fmt.Sprintf("%s: %s regressed %.1f -> %.1f (limit %.1f)", name, metric, old, now, limit))
		}
	}
	for _, r := range current {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		check(r.Name, "ns_per_op", b.NsPerOp, r.NsPerOp)
		check(r.Name, "allocs_per_op", b.AllocsPerOp, r.AllocsPerOp)
		// A zero baseline here means the record predates footprint
		// tracking (or GC noise swallowed the delta), not a 1-byte
		// budget. The ratio check gets a 4 KB/core absolute floor on
		// top: on a small chip the total delta is a few hundred KB and
		// one stray pooled buffer shifts the per-core number by
		// kilobytes, while the regressions this gate exists for — a
		// dense per-core structure creeping back in — are 10-100x.
		if b.BytesPerCore > 0 {
			if limit := b.BytesPerCore*(1+tol) + 4096; r.BytesPerCore > limit {
				violations = append(violations,
					fmt.Sprintf("%s: bytes_per_core regressed %.1f -> %.1f (limit %.1f)",
						r.Name, b.BytesPerCore, r.BytesPerCore, limit))
			}
		}
	}
	return violations
}
