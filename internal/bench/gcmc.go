package bench

import (
	"fmt"

	"scc/internal/core"
	"scc/internal/gcmc"
	"scc/internal/rcce"
	"scc/internal/rckmpi"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// GCMCResult is one bar of Fig. 10: the application runtime under one
// communication stack, plus the profile the paper discusses (Sec. IV-A:
// up to 50% of time in rcce_wait_until under the blocking stack).
type GCMCResult struct {
	Stack        Stack
	WallTime     simtime.Duration
	ComputeTime  simtime.Duration
	FlagWaitTime simtime.Duration
	FinalEnergy  float64
	FinalN       int
	Accepted     int
	Attempted    int
	Allreduces   int
}

// WaitFraction returns the share of wall time core 0 spent blocked on
// MPB flags.
func (r GCMCResult) WaitFraction() float64 {
	if r.WallTime == 0 {
		return 0
	}
	return float64(r.FlagWaitTime) / float64(r.WallTime)
}

// RunGCMC executes the thermodynamic application under one stack and
// returns core 0's result (all cores agree on physics by construction).
func RunGCMC(model *timing.Model, st Stack, p gcmc.Params) GCMCResult {
	chip := scc.New(model)
	comm := rcce.NewComm(chip)
	var out GCMCResult
	out.Stack = st
	chip.Launch(func(c *scc.Core) {
		ue := comm.UE(c.ID)
		var collectives gcmc.Collectives
		if st.RCKMPI {
			collectives = gcmc.RCKMPIStack{Lib: rckmpi.New(ue)}
		} else {
			collectives = gcmc.CoreStack{Ctx: core.NewCtx(ue, st.Cfg)}
		}
		sim := gcmc.New(c, collectives, comm.NumUEs(), p)
		res := sim.Run()
		if c.ID == 0 {
			out.WallTime = res.WallTime
			out.ComputeTime = res.ComputeTime
			out.FlagWaitTime = res.FlagWaitTime
			out.FinalEnergy = res.FinalEnergy
			out.FinalN = res.FinalN
			out.Accepted = res.Stats.Accepted
			out.Attempted = res.Stats.Attempted
			out.Allreduces = res.CommAllreduce
		}
	})
	if err := chip.Run(); err != nil {
		panic(fmt.Sprintf("bench: gcmc under %s: %v", st.Name, err))
	}
	return out
}

// GCMCStacks returns the six bars of Fig. 10, top to bottom.
func GCMCStacks() []Stack {
	return []Stack{
		{Name: "RCKMPI", RCKMPI: true},
		{Name: "blocking", Cfg: core.ConfigBlocking},
		{Name: "iRCCE (non-blocking)", Cfg: core.ConfigIRCCE},
		{Name: "Lightweight non-blocking", Cfg: core.ConfigLightweight},
		{Name: "Lightweight non-blocking, balanced", Cfg: core.ConfigBalanced},
		{Name: "MPB-based Allreduce", Cfg: core.ConfigMPB},
	}
}

// RunFig10 measures the whole figure.
func RunFig10(model *timing.Model, p gcmc.Params) []GCMCResult {
	var out []GCMCResult
	for _, st := range GCMCStacks() {
		out = append(out, RunGCMC(model, st, p))
	}
	return out
}
