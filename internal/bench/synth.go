package bench

import (
	"fmt"
	"sort"
	"strings"

	"scc/internal/core"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/synth"
	"scc/internal/timing"
)

// The synthesis sweep: like Tune, but instead of racing the registered
// hand-written algorithms against each other, it enumerates candidate
// schedules per (op, np, size-bucket) cell, measures every candidate
// AND every applicable hand algorithm on the simulator oracle, and
// emits the winning schedules as a committed synth.Table (the artifact
// internal/synth embeds). Candidates are measured by direct invocation
// — they are compiled but never registered, so the sweep cannot
// perturb the registry the rest of the process sees.

// SynthSpec parameterizes a synthesis sweep.
type SynthSpec struct {
	// NPs are the communicator sizes to synthesize for.
	NPs []int
	// Buckets are size boundaries in elements, like TuneSpec.Buckets
	// (ascending, optional trailing 0 = unbounded).
	Buckets []int
	// Ops restricts the sweep (nil = all selectable collectives).
	Ops []core.OpKind
	// Reps is the timed repetition count per measurement. The simulator
	// is deterministic, so 1 suffices; higher values only smooth
	// warm-up effects.
	Reps int
	// Cfg is the point-to-point configuration (selector/MPBDirect are
	// cleared; the schedule under test is invoked directly).
	Cfg core.Config
	// Transport labels the emitted table's provenance.
	Transport string
	// Opt bounds the per-cell enumeration.
	Opt synth.Options
}

// SynthSpecFor is the default sweep shape for a chip of numCores
// cores: the full chip, a short bucket at the paper's 512-byte
// threshold (64 elements) and a long bucket at 552 elements — the
// vector size of EXPERIMENTS.md's 512-core heuristic-misfire band, so
// the committed table always carries a schedule for that cell.
func SynthSpecFor(numCores int) SynthSpec {
	return SynthSpec{
		NPs:       []int{numCores},
		Buckets:   []int{64, 552},
		Reps:      1,
		Cfg:       core.ConfigBalanced,
		Transport: "lightweight non-blocking, balanced",
	}
}

func (sp SynthSpec) validate(numCores int) error {
	if len(sp.NPs) == 0 || len(sp.Buckets) == 0 {
		return fmt.Errorf("bench: synth spec needs at least one np and one bucket")
	}
	for i, np := range sp.NPs {
		if np < 2 || np > numCores {
			return fmt.Errorf("bench: synth spec np=%d outside [2,%d]", np, numCores)
		}
		if i > 0 && np <= sp.NPs[i-1] {
			return fmt.Errorf("bench: synth spec nps must be ascending")
		}
	}
	for i, b := range sp.Buckets {
		if b == 0 {
			if i != len(sp.Buckets)-1 {
				return fmt.Errorf("bench: synth spec unbounded bucket (0) must be last")
			}
			if i == 0 {
				return fmt.Errorf("bench: synth spec needs a bounded bucket before the unbounded one")
			}
			continue
		}
		if b < 1 || (i > 0 && b <= sp.Buckets[i-1]) {
			return fmt.Errorf("bench: synth spec buckets must be ascending")
		}
	}
	if sp.Reps < 1 {
		return fmt.Errorf("bench: synth spec reps=%d", sp.Reps)
	}
	return nil
}

func (sp SynthSpec) ops() []core.OpKind {
	if len(sp.Ops) > 0 {
		return sp.Ops
	}
	return core.OpKinds()
}

// CandResult is one measured schedule candidate of a cell.
type CandResult struct {
	Gen     string // generator label ("near:f1", "beam", "hd:4", ...)
	Steps   int
	Moves   int
	Latency simtime.Duration // summed over the bucket's representative sizes
	Sched   *synth.Schedule
}

// SynthCell is one sweep cell: every candidate and every applicable
// hand algorithm measured on the same sizes, plus the verdict.
type SynthCell struct {
	Op   core.OpKind
	NP   int
	MaxN int // bucket upper edge; 0 = unbounded
	NS   []int

	Cands []CandResult                // model-cost order from the enumerator
	Hand  map[string]simtime.Duration // applicable hand algorithms

	Winner   string // best candidate's gen label
	HandBest string // best hand algorithm
	// BeatsAll: the best candidate is strictly faster than every
	// applicable hand-written algorithm on this cell.
	BeatsAll bool
}

// measureSchedule compiles sched and measures it by direct invocation
// (never registered): average latency over reps at core 0, communicator
// cores 0..np-1, remaining cores idle.
func measureSchedule(model *timing.Model, cfg core.Config, sched *synth.Schedule, np, n, reps int) (simtime.Duration, error) {
	a, err := synth.Compile(sched, "synth:probe")
	if err != nil {
		return 0, err
	}
	k, err := core.ParseOpKind(sched.Op)
	if err != nil {
		return 0, err
	}
	if reps < 1 {
		reps = 1
	}
	cfg.Selector = nil
	cfg.MPBDirect = false
	chip := scc.New(model)
	comm := rcce.NewComm(chip)
	var grp *core.Group
	if np < chip.NumCores() {
		members := make([]int, np)
		for i := range members {
			members[i] = i
		}
		g, err := core.NewGroup(members, chip.NumCores())
		if err != nil {
			return 0, err
		}
		grp = g
	}
	rp := getReps(reps)
	perRep := *rp
	var runErr error
	chip.Launch(func(c *scc.Core) {
		if c.ID >= np {
			return
		}
		x, err := core.NewCtxGroup(comm.UE(c.ID), cfg, grp)
		if err != nil {
			panic(fmt.Sprintf("bench: synth ctx: %v", err))
		}
		if !a.Applicable(x, n) {
			if c.ID == 0 {
				runErr = fmt.Errorf("bench: synth schedule %s/np=%d not applicable", sched.Op, np)
			}
			return
		}
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		vp := getStage(n)
		v := *vp
		for i := range v {
			v[i] = float64(c.ID) + float64(i)*0.001
		}
		c.WriteF64s(src, v)
		putStage(vp)
		runOnce := func() {
			var err error
			switch k {
			case core.KindAllreduce:
				err = a.(core.AllreduceAlgorithm).Allreduce(x, src, dst, n, core.Sum)
			case core.KindBroadcast:
				err = a.(core.BroadcastAlgorithm).Broadcast(x, 0, src, n)
			case core.KindReduce:
				err = a.(core.ReduceAlgorithm).Reduce(x, 0, src, dst, n, core.Sum)
			}
			if err != nil {
				panic(fmt.Sprintf("bench: synth %s np=%d n=%d: %v", sched.Op, np, n, err))
			}
		}
		x.Barrier()
		runOnce() // warm-up, as in Measure
		for r := 0; r < reps; r++ {
			x.Barrier()
			t0 := c.Now()
			runOnce()
			if c.ID == 0 {
				perRep[r] = c.Now() - t0
			}
		}
		x.Release()
	})
	if err := chip.Run(); err != nil {
		putReps(rp)
		return 0, fmt.Errorf("bench: synth %s np=%d n=%d: %w", sched.Op, np, n, err)
	}
	if runErr != nil {
		putReps(rp)
		return 0, runErr
	}
	var total simtime.Duration
	for _, d := range perRep {
		total += d
	}
	putReps(rp)
	return total / simtime.Time(reps), nil
}

// Synthesize runs the sweep on the runner's worker pool and returns
// the winners table (one entry per cell: the fastest candidate) plus
// the full per-cell measurements behind the Pareto tables.
func Synthesize(r *Runner, model *timing.Model, sp SynthSpec) (*synth.Table, []SynthCell, error) {
	if err := sp.validate(model.NumCores()); err != nil {
		return nil, nil, err
	}
	cfg := sp.Cfg
	cfg.MPBDirect = false
	cfg.Selector = nil
	ts := TuneSpec{Buckets: sp.Buckets}

	type cellJob struct {
		k    core.OpKind
		np   int
		bi   int
		cell *SynthCell
		err  error
	}
	var jobs []*cellJob
	for _, k := range sp.ops() {
		for _, np := range sp.NPs {
			for bi := range sp.Buckets {
				jobs = append(jobs, &cellJob{k: k, np: np, bi: bi})
			}
		}
	}
	r.runCells(len(jobs), func(i int) {
		j := jobs[i]
		ns := ts.bucketSizes(j.bi)
		cell := &SynthCell{Op: j.k, NP: j.np, MaxN: sp.Buckets[j.bi], NS: ns,
			Hand: map[string]simtime.Duration{}}
		// Enumerate at the bucket's upper representative size: the cost
		// model ranks candidates for the sizes this cell serves.
		cands, err := synth.Enumerate(model, j.k.String(), j.np, ns[len(ns)-1], sp.Opt)
		if err != nil {
			j.err = err
			return
		}
		for _, cand := range cands {
			var total simtime.Duration
			for _, n := range ns {
				lat, err := measureSchedule(model, cfg, cand.Sched, j.np, n, sp.Reps)
				if err != nil {
					j.err = err
					return
				}
				total += lat
			}
			cell.Cands = append(cell.Cands, CandResult{
				Gen: cand.Sched.Gen, Steps: cand.Sched.NumSteps,
				Moves: cand.Sched.TotalMoves(), Latency: total, Sched: cand.Sched,
			})
		}
		for _, algo := range core.AlgorithmNames(j.k) {
			if strings.HasPrefix(algo, "synth:") {
				continue // never race the committed schedules against themselves
			}
			var total simtime.Duration
			ok := true
			for _, n := range ns {
				lat, applicable := MeasureAlgorithm(model, cfg, j.k, algo, j.np, n, sp.Reps)
				if !applicable {
					ok = false
					break
				}
				total += lat
			}
			if ok {
				cell.Hand[algo] = total
			}
		}
		j.cell = cell
	})

	table := &synth.Table{Transport: sp.Transport}
	var cells []SynthCell
	for _, j := range jobs {
		if j.err != nil {
			return nil, nil, j.err
		}
		cell := j.cell
		if len(cell.Cands) == 0 {
			return nil, nil, fmt.Errorf("bench: synth: no candidates for %s np=%d max_n=%d", cell.Op, cell.NP, cell.MaxN)
		}
		best := 0
		for i := 1; i < len(cell.Cands); i++ {
			if cell.Cands[i].Latency < cell.Cands[best].Latency {
				best = i
			}
		}
		cell.Winner = cell.Cands[best].Gen
		handNames := make([]string, 0, len(cell.Hand))
		for name := range cell.Hand {
			handNames = append(handNames, name)
		}
		sort.Strings(handNames)
		for _, name := range handNames {
			if cell.HandBest == "" || cell.Hand[name] < cell.Hand[cell.HandBest] {
				cell.HandBest = name
			}
		}
		cell.BeatsAll = cell.HandBest != "" && cell.Cands[best].Latency < cell.Hand[cell.HandBest]
		cells = append(cells, *cell)
		table.Entries = append(table.Entries, synth.TableEntry{
			Op: cell.Op.String(), NP: cell.NP, MaxN: cell.MaxN, Sched: cell.Cands[best].Sched,
		})
	}
	if err := table.Validate(); err != nil {
		return nil, nil, err
	}
	return table, cells, nil
}
