package bench

import (
	"fmt"
	"strings"

	"scc/internal/core"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// This file is the tuner: the sweep that races every registered
// algorithm per (op, np, message-size bucket) cell and emits the
// winners as a core.DecisionTable (the Open MPI "tuned" approach).
// `sccbench -tune` runs it and writes the JSON that internal/core
// embeds as the default table.

// TuneSpec parameterizes a tuner sweep.
type TuneSpec struct {
	// NPs are the communicator sizes to measure (cores 0..np-1 active,
	// the rest of the chip idle). Must be ascending.
	NPs []int
	// Buckets are the message-size boundaries in elements: one table
	// entry per bucket with MaxN = boundary, plus a trailing unbounded
	// entry (MaxN = 0) when the last boundary is 0. Must be ascending
	// with 0 (unbounded) last.
	Buckets []int
	// Reps is the timed repetition count per measurement.
	Reps int
	// Cfg is the point-to-point configuration every algorithm runs
	// over. The tuner clears MPBDirect/Selector itself: the algorithm
	// under test is pinned per cell.
	Cfg core.Config
	// Transport labels the table's provenance (DecisionTable.Transport).
	Transport string
}

// DefaultTuneSpec is the sweep behind the committed default table:
// the lightweight balanced transport, power-of-two communicator sizes
// plus the full chip, and size buckets bracketing the paper's 512-byte
// short-message threshold (64 float64 elements).
func DefaultTuneSpec() TuneSpec {
	return TuneSpecFor(timing.Default().NumCores())
}

// TuneSpecFor builds the default sweep shape for a chip of numCores
// cores: communicator sizes doubling from 4 up to (and including) the
// full chip, with the default buckets and transport. On the paper's
// 48-core chip this reproduces the committed table's spec exactly.
func TuneSpecFor(numCores int) TuneSpec {
	var nps []int
	for np := 4; np < numCores; np *= 2 {
		nps = append(nps, np)
	}
	if len(nps) == 0 || nps[len(nps)-1] < numCores {
		nps = append(nps, numCores)
	}
	return TuneSpec{
		NPs:       nps,
		Buckets:   []int{16, 64, 256, 1024, 0},
		Reps:      3,
		Cfg:       core.ConfigBalanced,
		Transport: "lightweight non-blocking, balanced",
	}
}

// validate rejects specs the sweep cannot interpret deterministically.
func (sp TuneSpec) validate(numCores int) error {
	if len(sp.NPs) == 0 || len(sp.Buckets) == 0 {
		return fmt.Errorf("bench: tune spec needs at least one np and one bucket")
	}
	for i, np := range sp.NPs {
		if np < 2 || np > numCores {
			return fmt.Errorf("bench: tune spec np=%d outside [2,%d]", np, numCores)
		}
		if i > 0 && np <= sp.NPs[i-1] {
			return fmt.Errorf("bench: tune spec nps must be ascending")
		}
	}
	for i, b := range sp.Buckets {
		if b == 0 {
			if i != len(sp.Buckets)-1 {
				return fmt.Errorf("bench: tune spec unbounded bucket (0) must be last")
			}
			continue
		}
		if b < 1 || (i > 0 && sp.Buckets[i-1] != 0 && b <= sp.Buckets[i-1]) {
			return fmt.Errorf("bench: tune spec buckets must be ascending")
		}
	}
	return nil
}

// bucketSizes returns the vector sizes that represent bucket i: its
// lower and upper edge (buckets are half-open (prev, max]). The
// unbounded bucket is represented by its lower edge and 4x the last
// bounded boundary.
func (sp TuneSpec) bucketSizes(i int) []int {
	lo := 1
	if i > 0 {
		lo = sp.Buckets[i-1] + 1
	}
	hi := sp.Buckets[i]
	if hi == 0 {
		hi = 4 * sp.Buckets[i-1]
		if hi < lo {
			hi = 4 * lo
		}
	}
	if lo == hi {
		return []int{hi}
	}
	return []int{lo, hi}
}

// MeasureAlgorithm measures one registered algorithm for collective k
// over an np-core communicator (cores 0..np-1; the rest of the chip
// stays idle) and returns the average latency over reps timed
// repetitions as seen by core 0. ok is false when the algorithm is not
// applicable on that communicator (e.g. "mpb" on a proper subgroup),
// in which case the latency is meaningless.
func MeasureAlgorithm(model *timing.Model, cfg core.Config, k core.OpKind, algo string, np, n, reps int) (lat simtime.Duration, ok bool) {
	a := core.LookupAlgorithm(k, algo)
	if a == nil {
		return 0, false
	}
	if reps < 1 {
		reps = 1
	}
	cfg.Selector = core.Fixed(algo)
	chip := scc.New(model)
	comm := rcce.NewComm(chip)
	var grp *core.Group
	if np < chip.NumCores() {
		members := make([]int, np)
		for i := range members {
			members[i] = i
		}
		g, err := core.NewGroup(members, chip.NumCores())
		if err != nil {
			panic(fmt.Sprintf("bench: tune group: %v", err))
		}
		grp = g
	}
	rp := getReps(reps)
	perRep := *rp
	applicable := true
	chip.Launch(func(c *scc.Core) {
		if c.ID >= np {
			return // idle spectator outside the communicator
		}
		ue := comm.UE(c.ID)
		x, err := core.NewCtxGroup(ue, cfg, grp)
		if err != nil {
			panic(fmt.Sprintf("bench: tune ctx: %v", err))
		}
		// Applicability is uniform across members (it depends only on
		// group/config), so every member takes the same early exit.
		if !a.Applicable(x, n) {
			if c.ID == 0 {
				applicable = false
			}
			return
		}
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		vp := getStage(n)
		v := *vp
		for i := range v {
			v[i] = float64(c.ID) + float64(i)*0.001
		}
		c.WriteF64s(src, v)
		putStage(vp)
		runOnce := func() {
			var err error
			switch k {
			case core.KindAllreduce:
				err = x.Allreduce(src, dst, n, core.Sum)
			case core.KindBroadcast:
				err = x.Broadcast(0, src, n)
			case core.KindReduce:
				err = x.Reduce(0, src, dst, n, core.Sum)
			default:
				panic("bench: tune: unknown op kind " + k.String())
			}
			if err != nil {
				panic(fmt.Sprintf("bench: tune %s[%s] np=%d n=%d: %v", k, algo, np, n, err))
			}
		}
		x.Barrier()
		runOnce() // warm-up, as in Measure
		for r := 0; r < reps; r++ {
			x.Barrier()
			t0 := c.Now()
			runOnce()
			if c.ID == 0 {
				perRep[r] = c.Now() - t0
			}
		}
		x.Release()
	})
	if err := chip.Run(); err != nil {
		panic(fmt.Sprintf("bench: tune %s[%s] np=%d n=%d: %v", k, algo, np, n, err))
	}
	if !applicable {
		putReps(rp)
		return 0, false
	}
	var total simtime.Duration
	for _, d := range perRep {
		total += d
	}
	putReps(rp)
	return total / simtime.Time(reps), true
}

// CellResult records one tuner cell: the measured latency of every
// applicable algorithm (summed over the bucket's representative sizes)
// and the winner.
type CellResult struct {
	Op      core.OpKind
	NP      int
	MaxN    int // 0 = unbounded
	Winner  string
	Latency map[string]simtime.Duration // total over representative sizes; applicable algorithms only
}

// Tune races every registered algorithm over the spec's cells on the
// runner's worker pool and returns the winning decision table plus the
// per-cell measurements behind it. Ties break toward registration
// order, which puts the paper's algorithms ahead of the baselines.
func Tune(r *Runner, model *timing.Model, sp TuneSpec) (*core.DecisionTable, []CellResult, error) {
	if err := sp.validate(model.NumCores()); err != nil {
		return nil, nil, err
	}
	cfg := sp.Cfg
	cfg.MPBDirect = false // the algorithm is pinned per cell, not by flag
	cfg.Selector = nil

	type cellKey struct {
		ki, npi, bi int
	}
	type job struct {
		cellKey
		k    core.OpKind
		algo string
		np   int
		ns   []int
	}
	var jobs []job
	for ki, k := range core.OpKinds() {
		for npi, np := range sp.NPs {
			for bi := range sp.Buckets {
				for _, algo := range core.AlgorithmNames(k) {
					// The tuner ranks the hand-written algorithms only:
					// its table is embedded by internal/core, which does
					// not link the synthesized schedules, so a "synth:"
					// winner would make the committed artifact invalid.
					// Synthesized schedules have their own table (synth.go).
					if strings.HasPrefix(algo, "synth:") {
						continue
					}
					jobs = append(jobs, job{
						cellKey: cellKey{ki: ki, npi: npi, bi: bi},
						k:       k, algo: algo, np: np, ns: sp.bucketSizes(bi),
					})
				}
			}
		}
	}
	type measurement struct {
		lat simtime.Duration
		ok  bool
	}
	results := make([]measurement, len(jobs))
	r.runCells(len(jobs), func(i int) {
		j := jobs[i]
		var total simtime.Duration
		for _, n := range j.ns {
			lat, ok := MeasureAlgorithm(model, cfg, j.k, j.algo, j.np, n, sp.Reps)
			if !ok {
				results[i] = measurement{}
				return
			}
			total += lat
		}
		results[i] = measurement{lat: total, ok: true}
	})

	// Reduce jobs to cells in deterministic (op, np, bucket) order;
	// within a cell the jobs appear in registration order, so a strict
	// less-than keeps the earlier registrant on ties.
	byCell := make(map[cellKey]*CellResult)
	var order []cellKey
	for i, j := range jobs {
		m := results[i]
		cell, seen := byCell[j.cellKey]
		if !seen {
			cell = &CellResult{Op: j.k, NP: j.np, MaxN: sp.Buckets[j.bi], Latency: map[string]simtime.Duration{}}
			byCell[j.cellKey] = cell
			order = append(order, j.cellKey)
		}
		if !m.ok {
			continue
		}
		cell.Latency[j.algo] = m.lat
		if cell.Winner == "" || m.lat < cell.Latency[cell.Winner] {
			cell.Winner = j.algo
		}
	}

	table := &core.DecisionTable{Transport: sp.Transport}
	var cells []CellResult
	for _, key := range order {
		cell := byCell[key]
		cells = append(cells, *cell)
		if cell.Winner == "" {
			return nil, nil, fmt.Errorf("bench: tune: no applicable algorithm for %s np=%d max_n=%d",
				cell.Op, cell.NP, cell.MaxN)
		}
		table.Entries = append(table.Entries, core.TableEntry{
			Op: cell.Op.String(), NP: cell.NP, MaxN: cell.MaxN, Algorithm: cell.Winner,
		})
	}
	if err := table.Validate(); err != nil {
		return nil, nil, err
	}
	return table, cells, nil
}
