package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestGateSelfBench(t *testing.T) {
	baseline := []SelfBenchResult{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "b", NsPerOp: 200, AllocsPerOp: 0},
		{Name: "gone", NsPerOp: 1, AllocsPerOp: 1},
	}
	current := []SelfBenchResult{
		{Name: "a", NsPerOp: 114, AllocsPerOp: 10},  // within 15%
		{Name: "b", NsPerOp: 200, AllocsPerOp: 0.5}, // zero baseline: absolute slack 1
		{Name: "new", NsPerOp: 9999, AllocsPerOp: 9999},
	}
	if v := GateSelfBench(baseline, current, 0.15); len(v) != 0 {
		t.Fatalf("expected clean gate, got %v", v)
	}

	current[0].NsPerOp = 116 // past 15%
	current[1].AllocsPerOp = 1.5
	v := GateSelfBench(baseline, current, 0.15)
	if len(v) != 2 {
		t.Fatalf("expected 2 violations, got %v", v)
	}
	if !strings.Contains(v[0], "a: ns_per_op") || !strings.Contains(v[1], "b: allocs_per_op") {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestSelfBenchRoundTrip(t *testing.T) {
	in := []SelfBenchResult{{Name: "x", Ops: 3, NsPerOp: 1.5, AllocsPerOp: 2, WallMs: 0.1}}
	var buf bytes.Buffer
	if err := WriteSelfBench(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSelfBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}
