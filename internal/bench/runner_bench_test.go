package bench

import (
	"testing"

	"scc/internal/core"
	"scc/internal/timing"
)

// BenchmarkAllreduce48 is the macro benchmark: one complete 48-core
// Allreduce simulation at the paper's application size (552 doubles,
// lightweight stack), including chip construction.
func BenchmarkAllreduce48(b *testing.B) {
	m := timing.Default()
	st := Stack{Name: "lightweight non-blocking", Cfg: core.ConfigLightweight}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Measure(m, OpAllreduce, st, 552, 1)
	}
}

// benchSizes is a reduced Fig. 9 x-axis so the panel benchmarks finish
// in seconds rather than minutes.
var benchSizes = []int{500, 508, 516}

// BenchmarkPanelSerial measures sweep throughput of the serial path over
// a reduced Allreduce panel (6 stacks x 3 sizes = 18 cells).
func BenchmarkPanelSerial(b *testing.B) {
	m := timing.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Panel(m, OpAllreduce, benchSizes, 1)
	}
}

// BenchmarkPanelParallel measures the same panel through the worker
// pool at GOMAXPROCS; compare against BenchmarkPanelSerial for the
// host-parallel speedup.
func BenchmarkPanelParallel(b *testing.B) {
	m := timing.Default()
	r := NewRunner(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Panel(m, OpAllreduce, benchSizes, 1)
	}
}
