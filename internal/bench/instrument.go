package bench

import (
	"fmt"

	"scc/internal/metrics"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
	"scc/internal/trace"
)

// InstrumentedRun is one fully observed benchmark cell: the same average
// latency Measure reports, plus the metrics snapshot and the span
// timeline of the whole run (warm-up and barriers included).
type InstrumentedRun struct {
	Latency simtime.Duration
	Metrics *metrics.Snapshot
	Spans   []trace.Span
}

// MeasureInstrumented is Measure with observability attached: the fresh
// chip gets a metrics registry and every core a span recorder. The
// virtual-time result is identical to Measure's for the same arguments -
// the hooks only read state and apply already-deferred local latency
// early - which the determinism test in instrument_test.go pins down.
func MeasureInstrumented(model *timing.Model, op Op, st Stack, n, reps int) InstrumentedRun {
	if reps < 1 {
		reps = 1
	}
	chip := scc.New(model)
	reg := metrics.New(chip.NumCores())
	chip.SetMetrics(reg)
	comm := rcce.NewComm(chip)
	rec := &trace.Recorder{}
	perRep := make([]simtime.Duration, reps)
	chip.Launch(func(c *scc.Core) {
		c.SetSpanRecorder(rec.Hook(c.ID))
		runCollectiveProgram(c, comm, op, st, n, reps, perRep)
	})
	if err := chip.Run(); err != nil {
		panic(fmt.Sprintf("bench: %s/%s n=%d: %v", op, st.Name, n, err))
	}
	var total simtime.Duration
	for _, d := range perRep {
		total += d
	}
	return InstrumentedRun{
		Latency: total / simtime.Time(reps),
		Metrics: reg.Snapshot(),
		Spans:   rec.Spans(),
	}
}
