package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// plotMarks assigns one rune per series, in legend order.
var plotMarks = []byte{'R', 'b', 'i', 'l', 'B', 'M', '1', '2', '3'}

// RenderChart draws a Fig. 9-style panel as ASCII art: latency (log
// scale) against vector size, one mark per series. Later series
// overwrite earlier ones where curves overlap, which makes the fastest
// stacks (drawn last, like the paper's legend order) stand out.
func RenderChart(w io.Writer, title string, series []Series, width, height int) error {
	if len(series) == 0 || len(series[0].Points) == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minN, maxN := series[0].Points[0].N, series[0].Points[0].N
	minL, maxL := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			if p.N < minN {
				minN = p.N
			}
			if p.N > maxN {
				maxN = p.N
			}
			l := p.Latency.Micros()
			if l > 0 {
				minL = math.Min(minL, l)
				maxL = math.Max(maxL, l)
			}
		}
	}
	if maxN == minN {
		maxN = minN + 1
	}
	if !(minL < maxL) {
		maxL = minL * 1.01
	}
	logMin, logMax := math.Log(minL), math.Log(maxL)

	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := plotMarks[si%len(plotMarks)]
		for _, p := range s.Points {
			l := p.Latency.Micros()
			if l <= 0 {
				continue
			}
			x := (p.N - minN) * (width - 1) / (maxN - minN)
			fy := (math.Log(l) - logMin) / (logMax - logMin)
			y := height - 1 - int(fy*float64(height-1)+0.5)
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = mark
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for y, row := range grid {
		label := ""
		switch y {
		case 0:
			label = fmt.Sprintf("%9.0fus", maxL)
		case height - 1:
			label = fmt.Sprintf("%9.0fus", minL)
		default:
			label = strings.Repeat(" ", 11)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s  n=%-8d%*s n=%d   (log latency scale)\n",
		strings.Repeat(" ", 11), minN, width-20, "", maxN); err != nil {
		return err
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", plotMarks[si%len(plotMarks)], s.Stack.Label()))
	}
	_, err := fmt.Fprintf(w, "  legend: %s\n", strings.Join(legend, "  "))
	return err
}
