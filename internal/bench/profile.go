package bench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts a CPU profile and/or arranges a heap profile for
// the -cpuprofile/-memprofile flags of the bench commands. Either path
// may be empty. The returned stop function finishes both profiles; call
// it exactly once, before exiting.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("bench: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("bench: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("bench: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("bench: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
