package bench

import (
	"fmt"
	"runtime"
	"time"

	"scc/internal/core"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// This file measures the simulator's host-side memory footprint: how
// many heap bytes one simulated core costs once the chip has actually
// run a collective. The number is the scaling budget — at 10,000 cores,
// every dense per-core structure multiplies by 10,000 — so it is
// tracked in BENCH_sim.json and gated like the throughput numbers.

// FootprintResult reports one footprint measurement.
type FootprintResult struct {
	// Cores is the simulated chip's core count.
	Cores int `json:"cores"`
	// LiveBytes is the heap retained by the chip, comm layer, and run
	// residue after a full GC, with the chip still referenced.
	LiveBytes uint64 `json:"live_bytes"`
	// BytesPerCore is LiveBytes / Cores.
	BytesPerCore float64 `json:"bytes_per_core"`
	// PeakHeapMB is the high-water HeapAlloc observed right after the
	// run, before the post-run GC.
	PeakHeapMB float64 `json:"peak_heap_mb"`
	// WallMs is the host wall-clock time of build + run.
	WallMs float64 `json:"wall_ms"`
	// BarrierTicks / BroadcastTicks are the virtual latencies of the
	// measured collectives (a cheap cross-check that the big chip
	// actually synchronized).
	BarrierTicks   simtime.Duration `json:"barrier_ticks"`
	BroadcastTicks simtime.Duration `json:"broadcast_ticks"`
}

// MeasureFootprint builds a chip for the model, runs one Barrier and one
// small Broadcast on every core through the lightweight stack, and
// reports the heap retained per simulated core.
//
// Goroutine stacks are not part of HeapAlloc, so the number isolates the
// simulator's data structures; the pooled process workers are accounted
// for by the scheduler benchmarks instead.
func MeasureFootprint(model *timing.Model) FootprintResult {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()

	chip := scc.New(model)
	comm := rcce.NewComm(chip)
	var barrier, bcast simtime.Duration
	chip.Launch(func(c *scc.Core) {
		ue := comm.UE(c.ID)
		x := core.NewCtx(ue, core.ConfigLightweight)
		src := c.AllocF64(8)
		begin := c.Now()
		x.Barrier()
		mid := c.Now()
		x.Broadcast(0, src, 8)
		end := c.Now()
		if c.ID == 0 {
			barrier = mid - begin
			bcast = end - mid
		}
		x.Release()
	})
	if err := chip.Run(); err != nil {
		panic(fmt.Sprintf("bench: footprint run on %d cores: %v", model.NumCores(), err))
	}
	wall := time.Since(t0)

	var peak runtime.MemStats
	runtime.ReadMemStats(&peak)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	cores := chip.NumCores() // keeps the chip live across the GC above
	live := after.HeapAlloc - before.HeapAlloc
	if after.HeapAlloc < before.HeapAlloc {
		live = 0 // GC reclaimed more than the chip costs; footprint is noise
	}
	return FootprintResult{
		Cores:          cores,
		LiveBytes:      live,
		BytesPerCore:   float64(live) / float64(cores),
		PeakHeapMB:     float64(peak.HeapAlloc) / (1 << 20),
		WallMs:         float64(wall.Nanoseconds()) / 1e6,
		BarrierTicks:   barrier,
		BroadcastTicks: bcast,
	}
}

// footprintGeometries are the chip sizes tracked in the perf trajectory:
// the paper's chip, a mid-size mesh, and the 10k-core scaling target.
func footprintGeometries() []*timing.Model {
	return []*timing.Model{
		timing.Default(),
		timing.Topology(32, 32, 1),  // 1,024 cores
		timing.Topology(80, 128, 1), // 10,240 cores
	}
}

// SelfBenchFootprints measures the tracked geometries and returns them
// as self-benchmark records (name "footprint.<cores>"): NsPerOp carries
// wall time per core and BytesPerCore the footprint, so the existing
// gate machinery bounds both.
func SelfBenchFootprints() []SelfBenchResult {
	var out []SelfBenchResult
	for _, m := range footprintGeometries() {
		fp := MeasureFootprint(m)
		out = append(out, SelfBenchResult{
			Name:         fmt.Sprintf("footprint.%d", fp.Cores),
			Ops:          int64(fp.Cores),
			NsPerOp:      fp.WallMs * 1e6 / float64(fp.Cores),
			BytesPerCore: fp.BytesPerCore,
			WallMs:       fp.WallMs,
		})
	}
	return out
}
