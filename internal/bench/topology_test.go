package bench

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"scc/internal/timing"
)

func TestParseMeshSpec(t *testing.T) {
	good := []struct {
		spec                   string
		rows, cols, per, cores int
	}{
		{"", 4, 6, 2, 48},      // default chip
		{"4x6x2", 4, 6, 2, 48}, // the default, spelled out (rows x cols x cores/tile)
		{"4x4x1", 4, 4, 1, 16},
		{"8x8x2", 8, 8, 2, 128},
		{"6x4", 6, 4, 1, 24}, // two-part spec: cores/tile defaults to 1
		{"100x100", 100, 100, 1, 10000},
	}
	for _, c := range good {
		m, err := ParseMeshSpec(c.spec)
		if err != nil {
			t.Errorf("ParseMeshSpec(%q): %v", c.spec, err)
			continue
		}
		if m.MeshHeight != c.rows || m.MeshWidth != c.cols || m.CoresPerTile != c.per || m.NumCores() != c.cores {
			t.Errorf("ParseMeshSpec(%q) = %dx%dx%d (%d cores), want %dx%dx%d (%d)",
				c.spec, m.MeshHeight, m.MeshWidth, m.CoresPerTile, m.NumCores(),
				c.rows, c.cols, c.per, c.cores)
		}
	}
	// The default spec must be the paper's model exactly, not merely the
	// same geometry.
	m, _ := ParseMeshSpec("4x6x2")
	if *m != *timing.Default() {
		t.Error("ParseMeshSpec(4x6x2) differs from timing.Default()")
	}

	bad := []string{"6x4x2x1", "ax4x2", "6x-1x2", "0x4x2", "6x4x0", "6 x 4 x 2"}
	for _, spec := range bad {
		_, err := ParseMeshSpec(spec)
		if err == nil {
			t.Errorf("ParseMeshSpec(%q) accepted invalid spec", spec)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("ParseMeshSpec(%q): error %v is not a *SpecError", spec, err)
		} else if se.Flag != "-mesh" || se.Value != spec {
			t.Errorf("ParseMeshSpec(%q): SpecError names %s=%q", spec, se.Flag, se.Value)
		}
	}
}

func TestParseChips(t *testing.T) {
	if k, err := ParseChips("4"); err != nil || k != 4 {
		t.Errorf("ParseChips(4) = %d, %v", k, err)
	}
	for _, val := range []string{"", "x", "0", "-2", "1.5"} {
		_, err := ParseChips(val)
		var se *SpecError
		if err == nil || !errors.As(err, &se) {
			t.Errorf("ParseChips(%q) = %v, want *SpecError", val, err)
		}
	}
}

func TestMeshLabel(t *testing.T) {
	if got := MeshLabel(timing.Default(), 1); got != "4x6x2" {
		t.Errorf("single-chip label = %q", got)
	}
	if got := MeshLabel(timing.Topology(8, 8, 2), 4); got != "4x 8x8x2" {
		t.Errorf("multi-chip label = %q", got)
	}
}

// TestTopologyPanelWorkerIndependence: an 8x8x2 (128-core) panel sweep
// must be byte-identical between the serial runner and a 4-worker pool
// — topology changes nothing about same-seed determinism.
func TestTopologyPanelWorkerIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	model := timing.Topology(8, 8, 2)
	sizes := []int{64, 96}
	var serial, par bytes.Buffer
	if err := WriteTopologyCSV(&serial, model, 1, NewRunner(1).Panel(model, OpAllreduce, sizes, 1)); err != nil {
		t.Fatal(err)
	}
	if err := WriteTopologyCSV(&par, model, 1, NewRunner(4).Panel(model, OpAllreduce, sizes, 1)); err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Errorf("8x8x2 allreduce panel differs between workers=1 and workers=4:\n%s\nvs\n%s",
			serial.String(), par.String())
	}
	if !strings.HasPrefix(serial.String(), "mesh,cores,chips,n,") {
		t.Errorf("topology CSV missing geometry columns: %q", strings.SplitN(serial.String(), "\n", 2)[0])
	}
	if !strings.Contains(serial.String(), "8x8x2,128,1,64,") {
		t.Errorf("topology CSV rows not labeled with the geometry:\n%s", serial.String())
	}
}

// TestHierarchicalMeasurement: the hierarchical measurement completes
// deterministically, costs more than a single chip of the same model
// (the fabric is slower than the mesh), and the sweep labels rows with
// the system geometry.
func TestHierarchicalMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	model := timing.Default()
	flat := MeasureHier(model, 1, "ring", OpAllreduce, 256, 1)
	hier1 := MeasureHier(model, 2, "ring", OpAllreduce, 256, 1)
	hier2 := MeasureHier(model, 2, "ring", OpAllreduce, 256, 1)
	if hier1 != hier2 {
		t.Errorf("hierarchical measurement nondeterministic: %v vs %v", hier1, hier2)
	}
	if hier1 <= flat {
		t.Errorf("2-chip hierarchical Allreduce (%v) not dearer than one chip (%v)", hier1, flat)
	}

	var buf bytes.Buffer
	s := HierSweep(model, 2, "", OpAllreduce, []int{64}, 1)
	if err := WriteTopologyCSV(&buf, model, 2, []Series{s}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hierarchical 2x 4x6x2") {
		t.Errorf("hier sweep label missing geometry:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "4x6x2,96,2,64,") {
		t.Errorf("topology CSV row mislabeled:\n%s", buf.String())
	}
}
