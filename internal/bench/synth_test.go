package bench

import (
	"testing"

	"scc/internal/core"
	"scc/internal/synth"
	"scc/internal/timing"
)

// The synthesis acceptance gate: on the paper's 48-core chip, at least
// one searched schedule must strictly beat every hand-written algorithm
// on its cell — otherwise the synthesizer is decorative and the
// committed table is stale. The exact cells that win are reported in
// EXPERIMENTS.md's Pareto tables; this test pins only the existence of
// a winner, not the cell, so unrelated tuning of the hand algorithms
// does not spuriously fail it.
func TestSynthesizeBeatsHandAlgorithmsSomewhere(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	model := timing.Default()
	sp := SynthSpecFor(model.NumCores())
	table, cells, err := Synthesize(NewRunner(0), model, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Entries) != len(cells) {
		t.Fatalf("table has %d entries for %d cells", len(table.Entries), len(cells))
	}
	won := false
	for _, cell := range cells {
		t.Logf("%s np=%d max_n=%d: winner=%s handBest=%s beatsAll=%v",
			cell.Op, cell.NP, cell.MaxN, cell.Winner, cell.HandBest, cell.BeatsAll)
		for _, c := range cell.Cands {
			t.Logf("  cand %-8s steps=%d moves=%d lat=%d", c.Gen, c.Steps, c.Moves, c.Latency)
		}
		for name, lat := range cell.Hand {
			t.Logf("  hand %-10s lat=%d", name, lat)
		}
		if cell.BeatsAll {
			won = true
		}
	}
	if !won {
		t.Fatal("no synthesized schedule beats the hand-written algorithms on any cell")
	}
}

// The emitted table must survive the committed JSON form. The sweep
// must NOT register anything (the registry is process-global and other
// tests in this binary enumerate it), so this only round-trips the
// bytes; synth's own tests cover Register.
func TestSynthesizeTableRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	model := timing.Default()
	sp := SynthSpecFor(model.NumCores())
	sp.Ops = []core.OpKind{core.KindBroadcast} // one op keeps this cheap
	table, _, err := Synthesize(NewRunner(0), model, sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.OpKinds() {
		for _, name := range core.AlgorithmNames(k) {
			if len(name) >= 6 && name[:6] == "synth:" {
				t.Fatalf("Synthesize registered %q into the global registry", name)
			}
		}
	}
	data, err := table.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := synth.ParseTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(table.Entries) {
		t.Fatalf("round trip lost entries: %d != %d", len(back.Entries), len(table.Entries))
	}
}
