package bench

import (
	"fmt"
	"io"
	"math"

	"scc/internal/core"
	"scc/internal/fault"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// This file measures the self-healing evaluation ("Fig. R2"): what a
// mid-collective core death costs when no oracle tells the survivors who
// died. Each sample kills one core at a fraction of the fault-free run
// and decomposes the end-to-end latency into detection (kill → first
// suspicion), agreement (first suspicion → committed membership) and
// re-execution, against two comparators: the same self-healing stack
// fault-free (its standing overhead is the outcome vote) and an oracle
// run where the survivor group is known for free. Everything is
// deterministic: same model, same kill point, bit-identical numbers.

// HealPoint is one sample of the self-healing sweep.
type HealPoint struct {
	Algo   string
	KillAt simtime.Duration // virtual kill time (0 = fault-free row)

	Plain    simtime.Duration // hardened transport, no self-healing, fault-free
	Overhead simtime.Duration // self-healing enabled, fault-free (vote cost)
	Oracle   simtime.Duration // survivors-only run with perfect knowledge
	Total    simtime.Duration // self-healing, victim killed at KillAt

	Detect simtime.Duration // kill → first suspicion on any survivor
	Agree  simtime.Duration // first suspicion → last committed agreement

	Reconfigs int64  // committed membership agreements (max over cores)
	Reexecs   int64  // collective re-executions (max over cores)
	Evicted   int64  // members dropped (max over cores)
	Epoch     uint32 // final communicator epoch
	Survivors int    // cores that completed with the survivor-group sum
	Errs      int    // cores that returned an error (typed, honest)
	Wrong     int    // cores that completed with an incorrect sum
}

// HealVictimFor picks the core killed by every faulted sample: core 17
// on the paper's chip (mid-chip, so its death stalls both ring
// neighbors and tree subtrees), clamped to mid-chip on meshes too small
// to have a core 17.
func HealVictimFor(numCores int) int {
	if numCores > 17 {
		return 17
	}
	return numCores / 2
}

// measureSelfHealAllreduce runs one full-chip Allreduce of n doubles under
// the self-healing runtime, with the victim killed at killAt (0 =
// fault-free), and reports latency, the aggregated recovery report and
// honest failure counts. Completed cores are checked against the sum of
// the group that actually committed: all cores when nobody died, the
// survivor set once the victim was evicted.
func measureSelfHealAllreduce(model *timing.Model, kind core.TransportKind, pol core.HealPolicy, algo string, n int, killAt simtime.Duration) HealPoint {
	chip := scc.New(model)
	victim := HealVictimFor(chip.NumCores())
	if killAt > 0 {
		fault.Install(chip, fault.NewPlan().Add(fault.Fault{
			Kind: fault.CoreDie, At: simtime.Time(killAt), Core: victim,
		}))
	}
	comm := rcce.NewComm(chip)
	cfg := core.Config{Transport: kind, Balanced: true, SelfHeal: &pol}
	if algo != "" {
		cfg.Selector = core.Fixed(algo)
	}
	p := chip.NumCores()
	sum := func(excluded int) []float64 {
		want := make([]float64, n)
		for id := 0; id < p; id++ {
			if id == excluded {
				continue
			}
			for i := 0; i < n; i++ {
				want[i] += float64(id+1) + float64(i)*0.5
			}
		}
		return want
	}
	wantFull := sum(-1)
	wantSurv := sum(victim)

	pt := HealPoint{Algo: algo, KillAt: killAt}
	firstSuspect := simtime.Time(-1)
	lastAgree := simtime.Time(-1)
	chip.Launch(func(c *scc.Core) {
		x := core.NewCtx(comm.UE(c.ID), cfg)
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(c.ID+1) + float64(i)*0.5
		}
		c.WriteF64s(src, v)
		err := x.Allreduce(src, dst, n, core.Sum)

		rep := x.Healer().Report()
		if rep.FirstSuspectAt >= 0 && (firstSuspect < 0 || rep.FirstSuspectAt < firstSuspect) {
			firstSuspect = rep.FirstSuspectAt
		}
		if rep.LastAgreeAt > lastAgree {
			lastAgree = rep.LastAgreeAt
		}
		if rep.Reconfigs > pt.Reconfigs {
			pt.Reconfigs = rep.Reconfigs
		}
		if rep.Reexecs > pt.Reexecs {
			pt.Reexecs = rep.Reexecs
		}
		if rep.Evicted > pt.Evicted {
			pt.Evicted = rep.Evicted
		}
		if rep.Epoch > pt.Epoch {
			pt.Epoch = rep.Epoch
		}

		if c.ID == victim && killAt > 0 {
			return // the victim's error (if it got one) is not a survivor outcome
		}
		if err != nil {
			pt.Errs++
			return
		}
		want := wantFull
		if killAt > 0 && rep.Evicted > 0 {
			want = wantSurv
		}
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				pt.Wrong++
				return
			}
		}
		pt.Survivors++
	})
	if err := chip.Run(); err != nil {
		pt.Errs = p // a deadlock under self-healing is a bug; don't hide it
	}
	pt.Total = simtime.Duration(chip.Now())
	if killAt > 0 && firstSuspect >= 0 {
		pt.Detect = simtime.Duration(firstSuspect) - killAt
		if lastAgree > firstSuspect {
			pt.Agree = simtime.Duration(lastAgree - firstSuspect)
		}
	}
	return pt
}

// measureOracleAllreduce is the perfect-knowledge comparator: the
// victim never participates, every survivor runs the collective over
// the survivor group directly — no detection, no vote, no
// agreement. Its latency is the floor any recovery mechanism pays.
func measureOracleAllreduce(model *timing.Model, kind core.TransportKind, pol rcce.Policy, algo string, n int) simtime.Duration {
	chip := scc.New(model)
	comm := rcce.NewComm(chip)
	cfg := core.Config{Transport: kind, Balanced: true, Recovery: &pol}
	if algo != "" {
		cfg.Selector = core.Fixed(algo)
	}
	victim := HealVictimFor(chip.NumCores())
	g, err := core.Survivors(chip.NumCores(), []int{victim})
	if err != nil {
		panic(err) // static input; cannot fail
	}
	chip.Launch(func(c *scc.Core) {
		if c.ID == victim {
			return
		}
		x, err := core.NewCtxGroup(comm.UE(c.ID), cfg, g)
		if err != nil {
			panic(err)
		}
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(c.ID+1) + float64(i)*0.5
		}
		c.WriteF64s(src, v)
		if err := x.Allreduce(src, dst, n, core.Sum); err != nil {
			panic(err) // fault-free oracle run must not fail
		}
	})
	if err := chip.Run(); err != nil {
		panic(err)
	}
	return simtime.Duration(chip.Now())
}

// measurePlainAllreduce is the hardened-but-unhealed fault-free
// baseline (the pre-self-healing stack).
func measurePlainAllreduce(model *timing.Model, kind core.TransportKind, pol rcce.Policy, algo string, n int) simtime.Duration {
	pt := measureFaultedAllreduce(model, kind, pol, algo, nil, n)
	return pt.Latency
}

// SelfHealSweep measures, for each algorithm, the fault-free self-healing
// overhead and the full recovery decomposition with the victim killed at
// each fraction of the plain fault-free latency. Kill times derive from
// each algorithm's own baseline, so "killed at 0.5" means mid-collective
// for every algorithm regardless of how long it runs.
func SelfHealSweep(model *timing.Model, kind core.TransportKind, pol core.HealPolicy, algos []string, n int, fracs []float64) []HealPoint {
	var out []HealPoint
	for _, algo := range algos {
		plain := measurePlainAllreduce(model, kind, pol.Detect, algo, n)
		oracle := measureOracleAllreduce(model, kind, pol.Detect, algo, n)
		overhead := measureSelfHealAllreduce(model, kind, pol, algo, n, 0)
		overhead.Plain = plain
		overhead.Oracle = oracle
		overhead.Overhead = overhead.Total
		out = append(out, overhead)
		for _, f := range fracs {
			killAt := simtime.Duration(float64(plain) * f)
			if killAt < 1 {
				killAt = 1
			}
			pt := measureSelfHealAllreduce(model, kind, pol, algo, n, killAt)
			pt.Plain = plain
			pt.Oracle = oracle
			pt.Overhead = overhead.Total
			out = append(out, pt)
		}
	}
	return out
}

// WriteHealTable renders the self-healing sweep as an aligned table
// (the "Fig. R2" deliverable).
func WriteHealTable(w io.Writer, title string, points []HealPoint) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%9s  %10s  %10s  %10s  %10s  %10s  %10s  %5s  %5s  %4s  %4s  %4s\n",
		"algo", "killat", "plain", "oracle", "total", "detect", "agree", "recfg", "reexe", "surv", "errs", "bad"); err != nil {
		return err
	}
	for _, pt := range points {
		kill := "-"
		if pt.KillAt > 0 {
			kill = fmt.Sprintf("%.0fus", pt.KillAt.Micros())
		}
		detect, agree := "-", "-"
		if pt.KillAt > 0 {
			detect = fmt.Sprintf("%.0fus", pt.Detect.Micros())
			agree = fmt.Sprintf("%.0fus", pt.Agree.Micros())
		}
		total := pt.Total
		if pt.KillAt == 0 {
			total = pt.Overhead
		}
		if _, err := fmt.Fprintf(w, "%9s  %10s  %8.0fus  %8.0fus  %8.0fus  %10s  %10s  %5d  %5d  %4d  %4d  %4d\n",
			pt.Algo, kill, pt.Plain.Micros(), pt.Oracle.Micros(), total.Micros(),
			detect, agree, pt.Reconfigs, pt.Reexecs, pt.Survivors, pt.Errs, pt.Wrong); err != nil {
			return err
		}
	}
	return nil
}
