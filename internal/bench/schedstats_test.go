package bench

import (
	"testing"

	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// measureSchedStats runs one collective program on a fresh chip and
// returns the scheduler's handoff and fast-path counters.
func measureSchedStats(t *testing.T, op Op, st Stack, n int) (handoffs, fastpath uint64) {
	t.Helper()
	model := timing.Default()
	chip := scc.New(model)
	comm := rcce.NewComm(chip)
	perRep := make([]simtime.Duration, 1)
	chip.Launch(func(c *scc.Core) {
		runCollectiveProgram(c, comm, op, st, n, 1, perRep)
	})
	if err := chip.Run(); err != nil {
		t.Fatalf("%s/%s n=%d: %v", op, st.Name, n, err)
	}
	return chip.Engine.SchedStats()
}

// TestFastPathCarriesRealCollectives pins the same-proc fast path on
// actual protocol workloads, not just the microbenchmark. With 48 cores
// live the event queue is rarely empty, so most events still pay the
// (single) handoff — measured hit rates run 1.5–11% across the stacks —
// but the path must keep firing where it applies: a collapse to zero
// means the fused Sleep condition rotted and even uncontended stretches
// pay the channel rendezvous.
func TestFastPathCarriesRealCollectives(t *testing.T) {
	for _, st := range StacksFor(OpAllreduce) {
		h, f := measureSchedStats(t, OpAllreduce, st, 552)
		total := h + f
		if total == 0 {
			t.Fatalf("%s: no events recorded", st.Name)
		}
		rate := float64(f) / float64(total)
		t.Logf("allreduce/%s n=552: handoffs=%d fastpath=%d hit-rate=%.1f%%",
			st.Name, h, f, 100*rate)
		if rate < 0.005 {
			t.Errorf("allreduce/%s: fast-path hit rate %.2f%% — fused Sleep no longer firing on protocol code",
				st.Name, 100*rate)
		}
	}
}
