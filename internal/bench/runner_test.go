package bench

import (
	"reflect"
	"strings"
	"testing"

	"scc/internal/core"
	"scc/internal/rcce"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// TestParallelPanelMatchesSerial is the determinism contract of the
// parallel runner: for every one of the six collectives, the pooled
// sweep must reproduce the serial Panel bit for bit. Virtual-time
// results may never depend on host scheduling.
func TestParallelPanelMatchesSerial(t *testing.T) {
	m := timing.Default()
	sizes := []int{24, 52}
	for _, op := range AllOps() {
		serial := Panel(m, op, sizes, 1)
		parallel := NewRunner(4).Panel(m, op, sizes, 1)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("%s: parallel panel differs from serial:\nserial:   %+v\nparallel: %+v", op, serial, parallel)
		}
	}
}

// TestParallelPanelAnyWorkerCount re-checks one panel across several
// pool sizes, including more workers than cells and the degenerate
// serial pool.
func TestParallelPanelAnyWorkerCount(t *testing.T) {
	m := timing.Default()
	sizes := []int{24, 52}
	serial := Panel(m, OpAllreduce, sizes, 1)
	for _, w := range []int{1, 2, 7, 64} {
		got := NewRunner(w).Panel(m, OpAllreduce, sizes, 1)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d: panel differs from serial", w)
		}
	}
}

// TestRunnerPanelsMatchesPerOpPanels checks the pooled multi-panel path
// (-op all) against per-op serial panels.
func TestRunnerPanelsMatchesPerOpPanels(t *testing.T) {
	m := timing.Default()
	sizes := []int{40}
	ops := []Op{OpBroadcast, OpReduce}
	got := NewRunner(3).Panels(m, ops, sizes, 1)
	for i, op := range ops {
		want := Panel(m, op, sizes, 1)
		if !reflect.DeepEqual(want, got[i]) {
			t.Fatalf("%s: pooled Panels result differs from serial Panel", op)
		}
	}
}

// TestParallelFaultSweepMatchesSerial pins the parallelized Fig. R1
// sweep (including the injected-fault cells, whose plans derive from the
// fault-free baseline) to the serial implementation.
func TestParallelFaultSweepMatchesSerial(t *testing.T) {
	m := timing.Default()
	pol := rcce.Policy{Timeout: simtime.Microseconds(300), Backoff: 2, MaxRetries: 8}
	counts := []int{0, 3}
	serial := FaultSweep(m, core.TransportLightweight, pol, 1, 64, counts)
	parallel := NewRunner(4).FaultSweep(m, core.TransportLightweight, pol, 1, 64, counts)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel fault sweep differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestRunnerSummaryMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("summary sweeps all six panels")
	}
	m := timing.Default()
	sizes := []int{32}
	serial, err := Summary(m, sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(4).Summary(m, sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel summary differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestSummarizePanelsMissingBaseline: a panel without the blocking
// series must be a loud error, not a table of speedup-0 rows.
func TestSummarizePanelsMissingBaseline(t *testing.T) {
	panels := [][]Series{{
		{Stack: Stack{Name: "iRCCE", Cfg: core.ConfigIRCCE}, Points: []Point{{N: 8, Latency: 100}}},
	}}
	if _, err := SummarizePanels([]Op{OpAllreduce}, panels); err == nil {
		t.Fatal("missing blocking baseline not reported")
	} else if !strings.Contains(err.Error(), "blocking baseline") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// Mismatched ops/panels lengths are an error too.
	if _, err := SummarizePanels([]Op{OpAllreduce, OpReduce}, panels); err == nil {
		t.Fatal("ops/panels length mismatch not reported")
	}
	// An empty baseline series is as useless as a missing one.
	panels = [][]Series{{
		{Stack: Stack{Name: "blocking", Cfg: core.ConfigBlocking}},
		{Stack: Stack{Name: "iRCCE", Cfg: core.ConfigIRCCE}, Points: []Point{{N: 8, Latency: 100}}},
	}}
	if _, err := SummarizePanels([]Op{OpAllreduce}, panels); err == nil {
		t.Fatal("empty blocking baseline not reported")
	}
}

// TestRaggedPanelIsAnError: WriteCSV and WriteTable must reject series
// of unequal lengths instead of panicking on the short one.
func TestRaggedPanelIsAnError(t *testing.T) {
	ragged := []Series{
		{Stack: Stack{Name: "a"}, Points: []Point{{N: 10, Latency: 1}, {N: 20, Latency: 2}}},
		{Stack: Stack{Name: "b"}, Points: []Point{{N: 10, Latency: 3}}},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, ragged); err == nil {
		t.Fatal("WriteCSV accepted a ragged panel")
	} else if !strings.Contains(err.Error(), "ragged") {
		t.Fatalf("unhelpful WriteCSV error: %v", err)
	}
	if err := WriteTable(&sb, "t", ragged); err == nil {
		t.Fatal("WriteTable accepted a ragged panel")
	}
	// Empty input stays fine for both.
	if err := WriteTable(&sb, "t", nil); err != nil {
		t.Fatalf("WriteTable(nil) = %v", err)
	}
}

// TestSelfBenchSmoke keeps the self-benchmark wired up; sizes here are
// tiny so it is not a real measurement, just an execution check of
// measureLoop and the JSON writer.
func TestSelfBenchWriter(t *testing.T) {
	res := []SelfBenchResult{{Name: "x", Ops: 10, NsPerOp: 1.5, WallMs: 2}}
	var sb strings.Builder
	if err := WriteSelfBench(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"name": "x"`, `"ns_per_op": 1.5`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON report missing %q:\n%s", want, out)
		}
	}
}
