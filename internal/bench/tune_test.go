package bench

import (
	"testing"

	"scc/internal/core"
	"scc/internal/timing"
)

// TestTuneSweepDeterministic runs a small tuner sweep twice and demands
// identical tables: the tuner is a measurement, and measurements on the
// virtual chip are reproducible.
func TestTuneSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sp := TuneSpec{
		NPs:       []int{4, 48},
		Buckets:   []int{16, 0},
		Reps:      1,
		Cfg:       core.ConfigBalanced,
		Transport: "test",
	}
	r := NewRunner(0)
	tab1, cells1, err := Tune(r, timing.Default(), sp)
	if err != nil {
		t.Fatal(err)
	}
	tab2, _, err := Tune(NewRunner(1), timing.Default(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab1.Entries) != len(core.OpKinds())*len(sp.NPs)*len(sp.Buckets) {
		t.Fatalf("got %d entries, want one per cell", len(tab1.Entries))
	}
	if len(tab1.Entries) != len(tab2.Entries) {
		t.Fatalf("parallel and serial sweeps disagree on entry count")
	}
	for i := range tab1.Entries {
		if tab1.Entries[i] != tab2.Entries[i] {
			t.Errorf("entry %d differs across runs: %+v vs %+v", i, tab1.Entries[i], tab2.Entries[i])
		}
	}
	for _, c := range cells1 {
		if c.Winner == "" {
			t.Errorf("cell %s/np=%d/max_n=%d has no winner", c.Op, c.NP, c.MaxN)
		}
		if lat, ok := c.Latency[c.Winner]; !ok || lat <= 0 {
			t.Errorf("cell %s/np=%d/max_n=%d winner %q has no positive latency", c.Op, c.NP, c.MaxN, c.Winner)
		}
		for algo, lat := range c.Latency {
			if lat < c.Latency[c.Winner] {
				t.Errorf("cell %s/np=%d/max_n=%d: %q (%v) beats declared winner %q (%v)",
					c.Op, c.NP, c.MaxN, algo, lat, c.Winner, c.Latency[c.Winner])
			}
		}
	}
}

// TestTuneSpecValidation rejects malformed sweeps.
func TestTuneSpecValidation(t *testing.T) {
	bad := []TuneSpec{
		{},
		{NPs: []int{1}, Buckets: []int{0}, Cfg: core.ConfigBalanced},
		{NPs: []int{8, 4}, Buckets: []int{0}, Cfg: core.ConfigBalanced},
		{NPs: []int{8}, Buckets: []int{0, 16}, Cfg: core.ConfigBalanced},
		{NPs: []int{8}, Buckets: []int{64, 16}, Cfg: core.ConfigBalanced},
	}
	for i, sp := range bad {
		if _, _, err := Tune(NewRunner(1), timing.Default(), sp); err == nil {
			t.Errorf("spec %d accepted but should not be", i)
		}
	}
}

// measureWithSelector measures the balanced stack under an explicit
// selection policy.
func measureWithSelector(model *timing.Model, op Op, sel core.Selector, n int) float64 {
	cfg := core.ConfigBalanced
	cfg.Selector = sel
	st := Stack{Name: "balanced/" + sel.Name(), Cfg: cfg}
	return Measure(model, op, st, n, 1).Micros()
}

// TestTunedAtLeastPaperHeuristic is the PR's acceptance criterion: on
// Fig. 9 panel cells the tuned selector never loses to the paper
// heuristic, and it wins outright on the short-message Broadcast and
// Reduce cells where the binomial tree beats the ring but the
// heuristic's 512-byte threshold has already switched to the ring.
func TestTunedAtLeastPaperHeuristic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	model := timing.Default()
	tuned := core.Tuned()
	heur := core.PaperHeuristic()
	for _, op := range []Op{OpBroadcast, OpReduce, OpAllreduce} {
		for _, n := range []int{16, 63, 64, 100, 256, 552} {
			h := measureWithSelector(model, op, heur, n)
			tu := measureWithSelector(model, op, tuned, n)
			// Identical picks must tie exactly; different picks must not
			// regress. The tiny epsilon only absorbs float formatting of
			// the microsecond conversion, not a real slowdown.
			if tu > h*1.0001 {
				t.Errorf("%s n=%d: tuned %.2fus slower than heuristic %.2fus", op, n, tu, h)
			}
			// Strict wins where the heuristic has switched to the ring
			// (8n >= 512 bytes) but the tree still dominates.
			if (op == OpBroadcast || op == OpReduce) && n >= 64 && n <= 256 {
				if !(tu < h) {
					t.Errorf("%s n=%d: tuned %.2fus should beat heuristic %.2fus strictly", op, n, tu, h)
				}
			}
		}
	}
}

// TestStackAlgoPinsAlgorithm: a Stack with Algo set must actually run
// that algorithm — observable because pinning the tree for a long
// vector costs measurably more than the ring the heuristic picks.
func TestStackAlgoPinsAlgorithm(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	model := timing.Default()
	base := Stack{Name: "balanced", Cfg: core.ConfigBalanced}
	pinned := Stack{Name: "balanced", Cfg: core.ConfigBalanced, Algo: "linear"}
	n := 552
	lb := Measure(model, OpAllreduce, base, n, 1)
	lp := Measure(model, OpAllreduce, pinned, n, 1)
	if float64(lp) < 2*float64(lb) {
		t.Errorf("pinning linear should be much slower than the heuristic: got %v vs %v", lp, lb)
	}
	if got, want := pinned.Label(), "balanced [linear]"; got != want {
		t.Errorf("Label() = %q, want %q", got, want)
	}
	if got, want := base.Label(), "balanced"; got != want {
		t.Errorf("Label() = %q, want %q", got, want)
	}
}
