package bench

import (
	"bytes"
	"strings"
	"testing"

	"scc/internal/simtime"
	"scc/internal/timing"
	"scc/internal/trace"
)

// instrumentCells are the (op, stack) pairs the determinism tests sweep:
// one per transport family, covering the blocking handshake, both
// non-blocking engines, the balanced partitioning and the MPB fast path.
func instrumentCells() []struct {
	op Op
	st Stack
} {
	return []struct {
		op Op
		st Stack
	}{
		{OpAllreduce, StacksFor(OpAllreduce)[1]},         // blocking
		{OpAllreduce, StacksFor(OpAllreduce)[3]},         // lightweight non-blocking
		{OpAllreduce, StacksFor(OpAllreduce)[5]},         // MPB-based
		{OpBroadcast, StacksFor(OpBroadcast)[2]},         // iRCCE
		{OpAllgather, StacksFor(OpAllgather)[0]},         // RCKMPI
		{OpReduceScatter, StacksFor(OpReduceScatter)[4]}, // balanced
	}
}

// TestMetricsDoNotPerturbMeasure is the PR's central invariant: an
// instrumented run (metrics registry + span recorders on every core)
// reports exactly the virtual-time latency of the plain run. The hooks
// only read simulator state; the extra Now() calls merely apply
// already-deferred local latency early, which never moves a shared
// interaction.
func TestMetricsDoNotPerturbMeasure(t *testing.T) {
	model := timing.Default()
	for _, cell := range instrumentCells() {
		plain := Measure(model, cell.op, cell.st, 96, 2)
		inst := MeasureInstrumented(model, cell.op, cell.st, 96, 2)
		if inst.Latency != plain {
			t.Errorf("%s/%s: instrumented latency %v != plain %v",
				cell.op, cell.st.Label(), inst.Latency, plain)
		}
		if inst.Metrics == nil || len(inst.Metrics.Cores) == 0 {
			t.Errorf("%s/%s: empty metrics snapshot", cell.op, cell.st.Label())
		}
		if len(inst.Spans) == 0 {
			t.Errorf("%s/%s: no spans recorded", cell.op, cell.st.Label())
		}
	}
}

// TestInstrumentedRunReproducible runs the same instrumented cell twice
// and demands identical latency, an identical serialized snapshot, and
// an identical span list — the reproducibility that makes snapshots
// diffable across code changes.
func TestInstrumentedRunReproducible(t *testing.T) {
	model := timing.Default()
	a := MeasureInstrumented(model, OpAllreduce, StacksFor(OpAllreduce)[3], 128, 1)
	b := MeasureInstrumented(model, OpAllreduce, StacksFor(OpAllreduce)[3], 128, 1)
	if a.Latency != b.Latency {
		t.Fatalf("latencies differ: %v vs %v", a.Latency, b.Latency)
	}
	var ja, jb bytes.Buffer
	if err := a.Metrics.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.Metrics.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Error("metrics snapshots differ between identical runs")
	}
	if len(a.Spans) != len(b.Spans) {
		t.Fatalf("span counts differ: %d vs %d", len(a.Spans), len(b.Spans))
	}
	for i := range a.Spans {
		if a.Spans[i] != b.Spans[i] {
			t.Fatalf("span %d differs: %+v vs %+v", i, a.Spans[i], b.Spans[i])
		}
	}
}

// TestWaitSpansMatchFlagWaitPhase cross-checks the two observability
// channels against each other: for every core, the summed duration of
// its "wait-*" trace spans must equal the flag-wait phase ticks in the
// metrics snapshot exactly — both record the same blocked intervals at
// the same boundaries. trace.WaitShare, which divides that same wait
// time by the core's busy extent, must agree with the ratio recomputed
// from the snapshot to within float rounding.
func TestWaitSpansMatchFlagWaitPhase(t *testing.T) {
	model := timing.Default()
	run := MeasureInstrumented(model, OpAllreduce, StacksFor(OpAllreduce)[1], 96, 1)

	waitByCore := map[int]simtime.Duration{}
	extent := map[int][2]simtime.Time{}
	for _, s := range run.Spans {
		if strings.HasPrefix(s.Label, "wait") {
			waitByCore[s.Core] += s.End - s.Start
		}
		e, ok := extent[s.Core]
		if !ok {
			e = [2]simtime.Time{s.Start, s.End}
		}
		if s.Start < e[0] {
			e[0] = s.Start
		}
		if s.End > e[1] {
			e[1] = s.End
		}
		extent[s.Core] = e
	}

	shares := trace.WaitShare(run.Spans)
	var checked int
	for _, cm := range run.Metrics.Cores {
		phaseWait := simtime.Duration(cm.Phases["flag-wait"])
		if got := waitByCore[cm.Core]; got != phaseWait {
			t.Errorf("core %d: wait spans sum to %d ticks, flag-wait phase has %d",
				cm.Core, got, phaseWait)
		}
		if phaseWait > 0 {
			checked++
		}
		e := extent[cm.Core]
		if span := e[1] - e[0]; span > 0 {
			want := float64(phaseWait) / float64(span)
			if got := shares[cm.Core]; got < want-1e-9 || got > want+1e-9 {
				t.Errorf("core %d: WaitShare %.6f, snapshot-derived share %.6f",
					cm.Core, got, want)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no core recorded any blocked wait; the cross-check tested nothing")
	}
}
