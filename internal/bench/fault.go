package bench

import (
	"fmt"
	"io"
	"math"

	"scc/internal/core"
	"scc/internal/fault"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// This file measures the robustness evaluation ("Fig. R1"): completion
// latency of a hardened full-chip Allreduce as a function of the injected
// fault count, per transport. Faults are drawn deterministically from a
// seed, so every point — including the measured recovery latency — is
// bit-identical across runs with the same seed.

// FaultPoint is one sample of the fault-rate sweep.
type FaultPoint struct {
	Faults  int                // injected fault count
	Fired   int                // faults that actually took effect
	Latency simtime.Duration   // completion latency of the collective
	Stats   rcce.RecoveryStats // chip-wide recovery work
	Errs    int                // cores whose collective returned an error
	Wrong   int                // cores that completed with incorrect sums
}

// measureFaultedAllreduce runs one hardened full-chip Allreduce of n
// doubles under the given plan (nil = fault-free) and reports completion
// latency, aggregated recovery statistics and honest failure counts. A
// non-empty algo pins the registry algorithm (an algorithm that is
// inapplicable under the hardened protocol, like "mpb", falls back to
// the paper heuristic, as everywhere else).
func measureFaultedAllreduce(model *timing.Model, kind core.TransportKind, pol rcce.Policy, algo string, plan *fault.Plan, n int) FaultPoint {
	chip := scc.New(model)
	fired := 0
	if plan != nil {
		fault.Install(chip, plan)
	}
	comm := rcce.NewComm(chip)
	cfg := core.Config{Transport: kind, Balanced: true, Recovery: &pol}
	if algo != "" {
		cfg.Selector = core.Fixed(algo)
	}
	p := chip.NumCores()
	want := make([]float64, n)
	for id := 0; id < p; id++ {
		for i := 0; i < n; i++ {
			want[i] += float64(id+1) + float64(i)*0.5
		}
	}
	pt := FaultPoint{}
	chip.Launch(func(c *scc.Core) {
		x := core.NewCtx(comm.UE(c.ID), cfg)
		src := c.AllocF64(n)
		dst := c.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(c.ID+1) + float64(i)*0.5
		}
		c.WriteF64s(src, v)
		err := x.Allreduce(src, dst, n, core.Sum)
		pt.Stats.Add(x.UE().Recovery())
		if err != nil {
			pt.Errs++ // honest: this core gave up (e.g. rcce.ErrUnreachable)
			return
		}
		got := make([]float64, n)
		c.ReadF64s(dst, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				pt.Wrong++
				return
			}
		}
	})
	if err := chip.Run(); err != nil {
		// A deadlock under the hardened protocol would be a bug; count
		// every core as failed rather than hiding it.
		pt.Errs = p
	}
	if plan != nil {
		fired = len(plan.Events())
	}
	pt.Fired = fired
	pt.Latency = simtime.Duration(chip.Now())
	return pt
}

// FaultSweep measures completion latency vs injected fault count for one
// transport. The fault-free point (count 0) doubles as the horizon
// estimate: random fault activation times are drawn from the fault-free
// run length, so higher counts genuinely overlap the collective. Each
// count derives its own deterministic sub-seed, so adding a count to the
// sweep never perturbs the other points.
func FaultSweep(model *timing.Model, kind core.TransportKind, pol rcce.Policy, seed int64, n int, counts []int) []FaultPoint {
	return FaultSweepAlgo(model, kind, pol, "", seed, n, counts)
}

// FaultSweepAlgo is FaultSweep with the Allreduce algorithm pinned to a
// registry name ("" = the paper heuristic, identical to FaultSweep).
func FaultSweepAlgo(model *timing.Model, kind core.TransportKind, pol rcce.Policy, algo string, seed int64, n int, counts []int) []FaultPoint {
	base := measureFaultedAllreduce(model, kind, pol, algo, nil, n)
	horizon := base.Latency
	out := make([]FaultPoint, 0, len(counts))
	for _, count := range counts {
		if count == 0 {
			out = append(out, base)
			continue
		}
		plan := fault.Random(seed+int64(count)*7919, count, horizon, model)
		pt := measureFaultedAllreduce(model, kind, pol, algo, plan, n)
		pt.Faults = count
		out = append(out, pt)
	}
	return out
}

// WriteFaultTable renders one transport's sweep as an aligned table
// (the "Fig. R1" deliverable).
func WriteFaultTable(w io.Writer, title string, points []FaultPoint) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s  %8s  %12s  %9s  %8s  %11s  %11s  %6s  %6s\n",
		"faults", "fired", "latency", "slowdown", "timeouts", "retransmits", "recovery", "errs", "wrong"); err != nil {
		return err
	}
	var base float64
	for i, pt := range points {
		if i == 0 {
			base = pt.Latency.Micros()
		}
		slow := 0.0
		if base > 0 {
			slow = pt.Latency.Micros() / base
		}
		if _, err := fmt.Fprintf(w, "%8d  %8d  %10.2fus  %8.2fx  %8d  %11d  %9.2fus  %6d  %6d\n",
			pt.Faults, pt.Fired, pt.Latency.Micros(), slow,
			pt.Stats.Timeouts, pt.Stats.Retransmits, pt.Stats.Recovery.Micros(),
			pt.Errs, pt.Wrong); err != nil {
			return err
		}
	}
	return nil
}
