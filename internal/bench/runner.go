package bench

import (
	"runtime"
	"sync"

	"scc/internal/core"
	"scc/internal/fault"
	"scc/internal/rcce"
	"scc/internal/timing"
)

// Runner fans sweep cells out across a worker pool. Every cell of a
// panel — one (op, stack, n) measurement — builds its own fresh
// scc.Chip, so the cells are embarrassingly parallel; the runner only
// has to reassemble results in deterministic order. Because each cell's
// virtual-time result is independent of scheduling, the output of every
// Runner method is byte-identical to the serial bench functions at any
// worker count.
//
// The zero value runs with GOMAXPROCS workers; Workers=1 degenerates to
// the serial path (still through the pool, same results).
type Runner struct {
	// Workers is the worker-pool size. Values < 1 mean GOMAXPROCS.
	Workers int
}

// NewRunner returns a runner with the given pool size (< 1 = GOMAXPROCS).
func NewRunner(workers int) *Runner { return &Runner{Workers: workers} }

func (r *Runner) workers() int {
	if r == nil || r.Workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

// runCells executes fn for every index in [0, n) on the worker pool and
// returns once all cells are done. Panics inside cells (Measure panics
// on simulation failure) are captured and re-raised on the caller's
// goroutine, matching the serial path's behavior.
func (r *Runner) runCells(n int, fn func(i int)) {
	w := r.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg      sync.WaitGroup
		next    = make(chan int)
		mu      sync.Mutex
		panicky interface{}
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if p := recover(); p != nil {
							mu.Lock()
							if panicky == nil {
								panicky = p
							}
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicky != nil {
		panic(panicky)
	}
}

// Panel measures the complete Fig. 9 panel for op in parallel. The
// returned series are identical to Panel(model, op, sizes, reps).
func (r *Runner) Panel(model *timing.Model, op Op, sizes []int, reps int) []Series {
	panels := r.Panels(model, []Op{op}, sizes, reps)
	return panels[0]
}

// Panels measures several panels at once, fanning every (op, stack, n)
// cell of all of them into one pool so small panels cannot strand idle
// workers. Results come back in (ops, legend, sizes) order, identical to
// calling Panel serially per op.
func (r *Runner) Panels(model *timing.Model, ops []Op, sizes []int, reps int) [][]Series {
	return r.PanelsAlgo(model, ops, "", sizes, reps)
}

// PanelsAlgo is Panels over StacksForAlgo: every non-RCKMPI stack
// pinned to the named registry algorithm ("" = identical to Panels).
func (r *Runner) PanelsAlgo(model *timing.Model, ops []Op, algo string, sizes []int, reps int) [][]Series {
	// Pre-size the result grid so workers write to disjoint slots.
	out := make([][]Series, len(ops))
	type cell struct {
		pi, si, ni int
		op         Op
		st         Stack
		n          int
	}
	var cells []cell
	for pi, op := range ops {
		stacks := StacksForAlgo(op, algo)
		out[pi] = make([]Series, len(stacks))
		for si, st := range stacks {
			out[pi][si] = Series{Stack: st, Points: make([]Point, len(sizes))}
			for ni, n := range sizes {
				cells = append(cells, cell{pi: pi, si: si, ni: ni, op: op, st: st, n: n})
			}
		}
	}
	r.runCells(len(cells), func(i int) {
		c := cells[i]
		out[c.pi][c.si].Points[c.ni] = Point{N: c.n, Latency: Measure(model, c.op, c.st, c.n, reps)}
	})
	return out
}

// Summary computes the Sec. V-A summary table with all panels' cells
// pooled across the workers. Output is identical to Summary.
func (r *Runner) Summary(model *timing.Model, sizes []int, reps int) ([]SummaryRow, error) {
	return SummarizePanels(AllOps(), r.Panels(model, AllOps(), sizes, reps))
}

// FaultSweep parallelizes the Fig. R1 fault sweep. The fault-free
// baseline must run first (its latency seeds every plan's activation
// horizon), then the faulted counts fan out. Output is identical to
// FaultSweep.
func (r *Runner) FaultSweep(model *timing.Model, kind core.TransportKind, pol rcce.Policy, seed int64, n int, counts []int) []FaultPoint {
	return r.FaultSweepAlgo(model, kind, pol, "", seed, n, counts)
}

// FaultSweepAlgo parallelizes FaultSweepAlgo: the fault sweep with the
// Allreduce algorithm pinned to a registry name ("" = paper heuristic).
func (r *Runner) FaultSweepAlgo(model *timing.Model, kind core.TransportKind, pol rcce.Policy, algo string, seed int64, n int, counts []int) []FaultPoint {
	base := measureFaultedAllreduce(model, kind, pol, algo, nil, n)
	horizon := base.Latency
	out := make([]FaultPoint, len(counts))
	r.runCells(len(counts), func(i int) {
		count := counts[i]
		if count == 0 {
			out[i] = base
			return
		}
		plan := fault.Random(seed+int64(count)*7919, count, horizon, model)
		pt := measureFaultedAllreduce(model, kind, pol, algo, plan, n)
		pt.Faults = count
		out[i] = pt
	})
	return out
}

// SelfHealSweep parallelizes SelfHealSweep across algorithms. Each
// algorithm's kill times derive from its own fault-free baseline, so
// the per-algorithm pipeline stays serial; the algorithms themselves
// are independent cells. Output is identical to bench.SelfHealSweep.
func (r *Runner) SelfHealSweep(model *timing.Model, kind core.TransportKind, pol core.HealPolicy, algos []string, n int, fracs []float64) []HealPoint {
	rows := 1 + len(fracs)
	out := make([]HealPoint, len(algos)*rows)
	r.runCells(len(algos), func(i int) {
		copy(out[i*rows:(i+1)*rows], SelfHealSweep(model, kind, pol, algos[i:i+1], n, fracs))
	})
	return out
}
