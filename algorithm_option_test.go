package sccsim_test

import (
	"testing"

	sccsim "scc"
)

// runAllreduce executes one warm allreduce of n doubles on sys and
// returns the elapsed virtual time plus rank 0's first result element.
func runAllreduce(t *testing.T, sys *sccsim.System, n int) (sccsim.Duration, float64) {
	t.Helper()
	var first float64
	start := sys.Elapsed()
	err := sys.Run(func(r *sccsim.Rank) {
		src := r.AllocF64(n)
		dst := r.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(r.ID() + 1)
		}
		r.WriteF64s(src, v)
		if err := r.Allreduce(src, dst, n); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if r.ID() == 0 {
			out := make([]float64, n)
			r.ReadF64s(dst, out)
			first = out[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys.Elapsed() - start, first
}

// TestWithAlgorithmPinsRegistryChoice: pinning the naive linear
// baseline must still be correct but take observably longer than the
// default heuristic — proof the option reaches the dispatcher.
func TestWithAlgorithmPinsRegistryChoice(t *testing.T) {
	const n = 552
	wantSum := 0.0
	for id := 1; id <= 48; id++ {
		wantSum += float64(id)
	}

	latDefault, sum := runAllreduce(t, sccsim.New(), n)
	if sum != wantSum {
		t.Fatalf("default allreduce sum = %v, want %v", sum, wantSum)
	}
	latLinear, sum := runAllreduce(t, sccsim.New(sccsim.WithAlgorithm("linear")), n)
	if sum != wantSum {
		t.Fatalf("pinned allreduce sum = %v, want %v", sum, wantSum)
	}
	if float64(latLinear) < 2*float64(latDefault) {
		t.Errorf("WithAlgorithm(linear) should be much slower than the heuristic, got %v vs %v",
			latLinear, latDefault)
	}

	// An unknown name must degrade to the heuristic, not break.
	latTypo, sum := runAllreduce(t, sccsim.New(sccsim.WithAlgorithm("no-such")), n)
	if sum != wantSum {
		t.Fatalf("typo'd algorithm sum = %v, want %v", sum, wantSum)
	}
	if latTypo != latDefault {
		t.Errorf("WithAlgorithm(unknown) should match the default exactly: %v vs %v", latTypo, latDefault)
	}
}

// TestWithTunedNeverLoses: the tuned selector must not regress against
// the default heuristic on either side of the short-message threshold.
func TestWithTunedNeverLoses(t *testing.T) {
	for _, n := range []int{16, 552} {
		latDefault, _ := runAllreduce(t, sccsim.New(), n)
		latTuned, _ := runAllreduce(t, sccsim.New(sccsim.WithTuned()), n)
		if latTuned > latDefault {
			t.Errorf("n=%d: WithTuned %v slower than default %v", n, latTuned, latDefault)
		}
	}
}

func TestAlgorithmNames(t *testing.T) {
	names := sccsim.AlgorithmNames("allreduce")
	if len(names) == 0 || names[0] != "ring" {
		t.Fatalf("AlgorithmNames(allreduce) = %v, want ring first", names)
	}
	if got := sccsim.AlgorithmNames("frobnicate"); got != nil {
		t.Fatalf("AlgorithmNames(frobnicate) = %v, want nil", got)
	}
	// WithSelector with an explicit policy compiles and runs.
	if _, sum := runAllreduce(t, sccsim.New(sccsim.WithSelector(sccsim.Fixed("recdouble"))), 16); sum == 0 {
		t.Fatal("WithSelector(Fixed) produced no result")
	}
}
