// Quickstart: run one Allreduce on the simulated 48-core SCC under two
// communication stacks and compare their latency - the paper's headline
// experiment in a dozen lines.
package main

import (
	"fmt"

	sccsim "scc"
)

func main() {
	const n = 552 // the paper's application vector: 276 complex Fourier coefficients

	for _, stack := range []sccsim.Stack{sccsim.StackBlocking, sccsim.StackLightweightBalanced} {
		sys := sccsim.New(sccsim.WithStack(stack))
		var sum0 float64
		err := sys.Run(func(r *sccsim.Rank) {
			src := r.AllocF64(n)
			dst := r.AllocF64(n)

			// Every rank contributes its rank id in every element.
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(r.ID())
			}
			r.WriteF64s(src, v)

			r.Allreduce(src, dst, n)

			if r.ID() == 0 {
				out := make([]float64, n)
				r.ReadF64s(dst, out)
				sum0 = out[0]
			}
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-36s sum=%v (want %d)   latency %v\n",
			stack, sum0, (sys.NumCores()-1)*sys.NumCores()/2, sys.Elapsed())
	}
	fmt.Println("\nThe gap between the two lines is the paper's combined optimization")
	fmt.Println("(relaxed synchronization + lightweight primitives + load balancing).")
}
