// Thermo: a scaled-down run of the paper's thermodynamic application
// (grand-canonical Monte Carlo with Ewald long-range energies,
// Algorithms 1-2) under two communication stacks, reproducing the
// structure of Fig. 10 interactively.
//
// The physics engine lives in internal/gcmc; this example wires it to
// the public System/Rank API and prints the thermodynamic observables
// alongside the communication profile.
package main

import (
	"fmt"

	sccsim "scc"
	"scc/internal/bench"
	"scc/internal/core"
	"scc/internal/gcmc"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

func main() {
	p := gcmc.DefaultParams()
	p.Cycles = 20
	p.NumParticles = 480 // lighter than the Fig. 10 workload: this is a demo

	fmt.Printf("GCMC: %d molecules x %d atoms, %d k-vectors (%d-double Allreduce per energy), %d cycles\n\n",
		p.NumParticles, p.AtomsPerParticle, p.NumKVecs, 2*p.NumKVecs, p.Cycles)

	for _, stack := range []sccsim.Stack{sccsim.StackBlocking, sccsim.StackMPB} {
		st := bench.Stack{Name: stack.String()}
		if stack == sccsim.StackRCKMPI {
			st.RCKMPI = true
		} else {
			// Map the public stack onto the harness configuration.
			for _, cand := range bench.GCMCStacks() {
				if cand.Name == "blocking" && stack == sccsim.StackBlocking {
					st = cand
				}
				if cand.Name == "MPB-based Allreduce" && stack == sccsim.StackMPB {
					st = cand
				}
			}
		}
		r := bench.RunGCMC(timing.Default(), st, p)
		fmt.Printf("%-24s wall %9.1f ms | energy %12.3f | N %d | accepted %d/%d | flag-wait %4.1f%%\n",
			stack, r.WallTime.Millis(), r.FinalEnergy, r.FinalN,
			r.Accepted, r.Attempted, 100*r.WaitFraction())
	}
	fmt.Println("\nBoth stacks compute identical physics; only the virtual runtime differs.")

	// Sampled run: the thermodynamic observables the application exists
	// to estimate (internal energy, density, virial pressure).
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	var obs gcmc.Observables
	chip.Launch(func(c *scc.Core) {
		ctx := core.NewCtx(comm.UE(c.ID), core.ConfigBalanced)
		sim := gcmc.New(c, gcmc.CoreStack{Ctx: ctx}, comm.NumUEs(), p)
		_, o := sim.RunSampled(5, 3)
		if c.ID == 0 {
			obs = o
		}
	})
	if err := chip.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("\nobservables over %d samples:  <E> %.2f   <N> %.1f   density %.4f   pressure %.4f\n",
		obs.Samples, obs.MeanEnergy, obs.MeanN, obs.MeanDensity, obs.MeanVirialPressure)
	fmt.Println("Run cmd/gcmcapp for the full six-bar Fig. 10 reproduction.")
}
