// Wordcount: a MapReduce-style word-frequency job on the simulated SCC,
// exercising the Alltoall shuffle and an Allreduce aggregation - the
// data-heavy collectives of the paper's Fig. 9a/9b where the relaxed
// synchronization (not the lightweight primitives) delivers the win.
//
// Each rank "maps" a synthetic document shard into per-destination
// hash-bucket counts, shuffles bucket blocks with Alltoall so rank q
// receives every count destined for bucket range q, and reduces its
// range locally; a final Allgather rebuilds the global histogram
// everywhere to verify agreement.
package main

import (
	"fmt"
	"math/rand"

	sccsim "scc"
)

const (
	bucketsPerRank = 16
	wordsPerRank   = 6000
)

func main() {
	for _, stack := range []sccsim.Stack{sccsim.StackBlocking, sccsim.StackLightweightBalanced} {
		sys := sccsim.New(sccsim.WithStack(stack))
		var total float64
		err := sys.Run(func(r *sccsim.Rank) {
			p := r.N()
			nb := p * bucketsPerRank

			// "Map": count synthetic words into global buckets. The RNG
			// seed depends on the rank, so shards differ.
			rng := rand.New(rand.NewSource(int64(1000 + r.ID())))
			counts := make([]float64, nb)
			for w := 0; w < wordsPerRank; w++ {
				counts[rng.Intn(nb)]++
			}
			// ~20 cycles per mapped word (hash + increment) on the P54C.
			r.ComputeCycles(int64(20 * wordsPerRank))

			// "Shuffle": block q of the send buffer holds the counts for
			// rank q's bucket range.
			src := r.AllocF64(nb)
			shuf := r.AllocF64(nb)
			r.WriteF64s(src, counts)
			r.Alltoall(src, shuf, bucketsPerRank)

			// "Reduce": sum the p received blocks for my bucket range.
			recv := make([]float64, nb)
			r.ReadF64s(shuf, recv)
			mine := make([]float64, bucketsPerRank)
			for q := 0; q < p; q++ {
				for b := 0; b < bucketsPerRank; b++ {
					mine[b] += recv[q*bucketsPerRank+b]
				}
			}
			r.ComputeCycles(int64(2 * nb * 7))

			// Publish: gather every range so all ranks hold the full
			// histogram.
			mineAddr := r.AllocF64(bucketsPerRank)
			histAddr := r.AllocF64(nb)
			r.WriteF64s(mineAddr, mine)
			r.Allgather(mineAddr, bucketsPerRank, histAddr)

			if r.ID() == 0 {
				hist := make([]float64, nb)
				r.ReadF64s(histAddr, hist)
				for _, c := range hist {
					total += c
				}
			}
		})
		if err != nil {
			panic(err)
		}
		want := sys.NumCores() * wordsPerRank
		fmt.Printf("%-36s counted %.0f words (want %d) in %v\n",
			stack, total, want, sys.Elapsed())
	}
}
