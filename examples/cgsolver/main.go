// CG solver: a distributed conjugate-gradient solve of a 1D Poisson
// system on the simulated SCC. Each iteration needs two global dot
// products (1-element Allreduce apiece) and a halo exchange (Allgather
// of boundary values) - the classic communication-latency-bound kernel
// the paper's introduction has in mind when it argues that low-latency
// on-chip networks "allow finer-grained parallelization and enable the
// scaling of problems to higher core counts".
//
// On the blocking stack, the per-iteration Allreduce overhead dominates;
// the lightweight stacks recover most of it. The solve itself is real:
// the residual of A x = b drops below the tolerance and the result is
// verified against the direct solution.
package main

import (
	"fmt"
	"math"

	sccsim "scc"
)

const (
	rowsPerRank = 8
	tol         = 1e-8
	maxIters    = 600
)

func main() {
	for _, stack := range []sccsim.Stack{sccsim.StackBlocking, sccsim.StackLightweightBalanced} {
		sys := sccsim.New(sccsim.WithStack(stack))
		var iters int
		var resid, maxErr float64
		err := sys.Run(func(r *sccsim.Rank) {
			p := r.N()
			nLocal := rowsPerRank
			nGlobal := p * nLocal
			base := r.ID() * nLocal

			// A = 1D Laplacian (tridiagonal 2,-1), b = all ones.
			// Exact solution of A x = 1 with zero Dirichlet boundaries:
			// x_i = (i+1)(N-i)/2.
			x := make([]float64, nLocal)
			rv := make([]float64, nLocal) // residual
			pv := make([]float64, nLocal) // search direction
			for i := range rv {
				rv[i] = 1
				pv[i] = 1
			}

			dotSrc := r.AllocF64(1)
			dotDst := r.AllocF64(1)
			haloSrc := r.AllocF64(2)
			haloAll := r.AllocF64(2 * p)

			dot := func(a, b []float64) float64 {
				local := 0.0
				for i := range a {
					local += a[i] * b[i]
				}
				r.ComputeCycles(int64(4 * len(a) * 7))
				r.WriteF64s(dotSrc, []float64{local})
				r.Allreduce(dotSrc, dotDst, 1)
				out := make([]float64, 1)
				r.ReadF64s(dotDst, out)
				return out[0]
			}

			// matvec computes A*p using a halo exchange for the strip
			// boundaries (every rank publishes its first and last search-
			// direction entries; the Allgather stands in for the halo).
			matvec := func(pv []float64) []float64 {
				r.WriteF64s(haloSrc, []float64{pv[0], pv[nLocal-1]})
				r.Allgather(haloSrc, 2, haloAll)
				halos := make([]float64, 2*p)
				r.ReadF64s(haloAll, halos)
				out := make([]float64, nLocal)
				for i := 0; i < nLocal; i++ {
					g := base + i
					left, right := 0.0, 0.0
					switch {
					case i > 0:
						left = pv[i-1]
					case g > 0:
						left = halos[2*(r.ID()-1)+1] // left rank's last entry
					}
					switch {
					case i < nLocal-1:
						right = pv[i+1]
					case g < nGlobal-1:
						right = halos[2*(r.ID()+1)] // right rank's first entry
					}
					out[i] = 2*pv[i] - left - right
				}
				r.ComputeCycles(int64(5 * nLocal * 7))
				return out
			}

			rsold := dot(rv, rv)
			it := 0
			for ; it < maxIters && rsold > tol*tol; it++ {
				ap := matvec(pv)
				alpha := rsold / dot(pv, ap)
				for i := range x {
					x[i] += alpha * pv[i]
					rv[i] -= alpha * ap[i]
				}
				rsnew := dot(rv, rv)
				beta := rsnew / rsold
				for i := range pv {
					pv[i] = rv[i] + beta*pv[i]
				}
				r.ComputeCycles(int64(6 * nLocal * 7))
				rsold = rsnew
			}

			if r.ID() == 0 {
				iters = it
				resid = math.Sqrt(rsold)
			}
			// Verify against the closed-form solution; the global worst
			// error needs a max-Allreduce (local strips can be exact
			// while others still carry error).
			worst := 0.0
			for i := range x {
				g := float64(base + i)
				exact := (g + 1) * (float64(nGlobal) - g) / 2
				if e := math.Abs(x[i] - exact); e > worst {
					worst = e
				}
			}
			r.WriteF64s(dotSrc, []float64{worst})
			r.AllreduceOp(dotSrc, dotDst, 1, math.Max)
			out := make([]float64, 1)
			r.ReadF64s(dotDst, out)
			if r.ID() == 0 {
				maxErr = out[0]
			}
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-36s converged in %3d iters, residual %.2e, max error %.2e, time %v\n",
			stack, iters, resid, maxErr, sys.Elapsed())
	}
}
