// Heatmap: a 1D heat-diffusion solver on the simulated SCC, the kind of
// fine-grained iterative kernel the paper's introduction argues benefits
// from low-latency collectives ("the low latency of on-chip networks
// allows finer-grained parallelization").
//
// Each rank owns a strip of the rod; every step it updates its interior
// points and the ranks exchange boundary state with an Allgather. A
// global residual is computed with a one-element Allreduce each step -
// exactly the small-vector regime where per-call overhead dominates, so
// the stack choice changes the runtime dramatically.
package main

import (
	"fmt"
	"math"

	sccsim "scc"
)

const (
	pointsPerRank = 64
	steps         = 60
	alpha         = 0.23 // diffusion coefficient * dt / dx^2
)

func main() {
	for _, stack := range []sccsim.Stack{
		sccsim.StackBlocking,
		sccsim.StackIRCCE,
		sccsim.StackLightweightBalanced,
	} {
		sys := sccsim.New(sccsim.WithStack(stack))
		var finalResidual, peak float64
		err := sys.Run(func(r *sccsim.Rank) {
			p := r.N()
			n := pointsPerRank

			// Local strip plus the gathered global state of last step.
			local := make([]float64, n)
			if r.ID() == p/2 {
				local[n/2] = 1000 // initial hot spot mid-rod
			}
			src := r.AllocF64(n)
			global := r.AllocF64(p * n)
			resSrc := r.AllocF64(1)
			resDst := r.AllocF64(1)

			world := make([]float64, p*n)
			for step := 0; step < steps; step++ {
				// Share the full state (halo exchange generalized to an
				// Allgather, as RCCE_comm-era codes commonly did).
				r.WriteF64s(src, local)
				r.Allgather(src, n, global)
				r.ReadF64s(global, world)

				// Explicit Euler update of this rank's strip.
				base := r.ID() * n
				residual := 0.0
				for i := 0; i < n; i++ {
					g := base + i
					left, right := 0.0, 0.0
					if g > 0 {
						left = world[g-1]
					}
					if g < p*n-1 {
						right = world[g+1]
					}
					next := world[g] + alpha*(left-2*world[g]+right)
					residual += math.Abs(next - world[g])
					local[i] = next
				}
				// Charge the update loop to the simulated core: ~8 flops
				// per point.
				r.ComputeCycles(int64(8 * n * 7))

				// Global convergence check.
				r.WriteF64s(resSrc, []float64{residual})
				r.Allreduce(resSrc, resDst, 1)
			}
			if r.ID() == 0 {
				out := make([]float64, 1)
				r.ReadF64s(resDst, out)
				finalResidual = out[0]
				for _, v := range world {
					if v > peak {
						peak = v
					}
				}
			}
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-36s %3d steps in %10v   (residual %.3f, peak T %.1f)\n",
			stack, steps, sys.Elapsed(), finalResidual, peak)
	}
}
