module scc

go 1.22
