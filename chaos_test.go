package sccsim_test

import (
	"errors"
	"os"
	"strconv"
	"sync"
	"testing"

	sccsim "scc"
	"scc/internal/simtime"
)

// chaosOutcome is everything one chaos run is judged on.
type chaosOutcome struct {
	vals    map[int]float64
	errs    map[int]error
	epochs  map[int]uint32
	elapsed sccsim.Duration
}

// chaosRun executes one seeded chaos scenario: a burst of recoverable
// faults (link stalls, flag drops, MPB drops/corruptions) plus one
// unannounced core death, all under the self-healing runtime.
func chaosRun(t *testing.T, seed int64) chaosOutcome {
	t.Helper()
	const (
		n       = 256
		reps    = 3
		horizon = 3000 // µs over which the recoverable faults land
	)
	victim := int(seed*7+5) % 48
	killAt := sccsim.Microseconds(150 + (seed%7)*100)

	plan := sccsim.RandomFaultPlan(seed, 6, sccsim.Microseconds(horizon))
	plan.Add(sccsim.Fault{Kind: sccsim.FaultCoreDie, At: simtime.Time(killAt), Core: victim})

	sys := sccsim.New(
		sccsim.WithFaults(plan),
		sccsim.WithSelfHealing(sccsim.DefaultHealPolicy()),
	)

	out := chaosOutcome{
		vals:   make(map[int]float64),
		errs:   make(map[int]error),
		epochs: make(map[int]uint32),
	}
	var mu sync.Mutex
	err := sys.Run(func(r *sccsim.Rank) {
		src := r.AllocF64(n)
		dst := r.AllocF64(n)
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64(r.ID() + 1)
		}
		r.WriteF64s(src, buf)
		var rerr error
		for k := 0; k < reps && rerr == nil; k++ {
			rerr = r.Allreduce(src, dst, n)
		}
		got := make([]float64, 1)
		r.ReadF64s(dst, got)
		mu.Lock()
		defer mu.Unlock()
		out.vals[r.ID()] = got[0]
		out.errs[r.ID()] = rerr
		if rep := r.HealReport(); rep != nil {
			out.epochs[r.ID()] = rep.Epoch
		}
	})
	if err != nil {
		// Every wait in the self-healing stack is bounded, so no seed may
		// deadlock the engine — a run-level error is a protocol bug.
		t.Fatalf("seed %d: run failed: %v", seed, err)
	}
	out.elapsed = sys.Elapsed()
	return out
}

// TestChaosSoak drives seeded random fault bursts plus an unannounced
// core death through the self-healing runtime and asserts the safety
// contract: no deadlocks, only typed errors, completers that agreed on
// the same epoch agree bit-for-bit on the result, and the whole run is
// deterministic per seed. CHAOS_SOAK_SEEDS widens the sweep in CI.
func TestChaosSoak(t *testing.T) {
	seeds := 4
	if s := os.Getenv("CHAOS_SOAK_SEEDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("CHAOS_SOAK_SEEDS=%q is not a positive integer", s)
		}
		seeds = v
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			out := chaosRun(t, seed)
			victim := int(seed*7+5) % 48

			// Typed errors only: anything else is a protocol bug escaping
			// as a raw failure.
			for id, err := range out.errs {
				if err == nil || id == victim {
					continue
				}
				if !errors.Is(err, sccsim.ErrUnreachable) &&
					!errors.Is(err, sccsim.ErrEvicted) &&
					!errors.Is(err, sccsim.ErrNoQuorum) &&
					!errors.Is(err, sccsim.ErrHealGiveUp) {
					t.Errorf("core %d: untyped error: %v", id, err)
				}
			}

			// Agreement safety: completers on the same final epoch are in
			// the same committed group and must hold identical sums.
			byEpoch := make(map[uint32]float64)
			for id, err := range out.errs {
				if err != nil || id == victim {
					continue
				}
				e := out.epochs[id]
				if want, seen := byEpoch[e]; seen {
					if out.vals[id] != want {
						t.Errorf("core %d: epoch %d value %v disagrees with %v", id, e, out.vals[id], want)
					}
				} else {
					byEpoch[e] = out.vals[id]
				}
			}
		})
	}

	// Same-seed determinism: one full rerun must be bit-identical in
	// time, values, errors and epochs.
	a := chaosRun(t, 0)
	b := chaosRun(t, 0)
	if a.elapsed != b.elapsed {
		t.Fatalf("seed 0 reruns differ in elapsed time: %d vs %d ticks", a.elapsed, b.elapsed)
	}
	for id := 0; id < 48; id++ {
		if a.vals[id] != b.vals[id] || (a.errs[id] == nil) != (b.errs[id] == nil) || a.epochs[id] != b.epochs[id] {
			t.Fatalf("seed 0 reruns differ at core %d: val %v/%v err %v/%v epoch %d/%d",
				id, a.vals[id], b.vals[id], a.errs[id], b.errs[id], a.epochs[id], b.epochs[id])
		}
	}
}
