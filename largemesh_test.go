package sccsim_test

import (
	"crypto/sha256"
	"encoding/binary"
	"reflect"
	"testing"

	sccsim "scc"
	"scc/internal/bench"
	"scc/internal/timing"
)

// Large-mesh determinism: the pooled process execution and sparse
// per-core state exist to make 2,500- and 10,000-core runs practical,
// but they must not cost reproducibility. These tests pin the digest of
// a Barrier + Broadcast + Allreduce program — every rank's numerical
// result and finish time plus the run's elapsed virtual time — as
// byte-identical across repeated runs and across sweep worker counts.

// largeMeshDigest runs the three collectives on a rows x cols mesh of
// single-core tiles with n-element vectors and hashes everything a user
// could observe. The tuned selector matters here: past the widest
// measured row it clamps to that row's picks (tree broadcast, recursive
// doubling), where the untuned paper heuristic would pick ring — O(np)
// steps that turn a 2,500-core run from seconds into minutes.
func largeMeshDigest(t *testing.T, rows, cols, n int) [sha256.Size]byte {
	t.Helper()
	sys := sccsim.New(sccsim.WithTopology(rows, cols, 1), sccsim.WithTuned())
	cores := rows * cols
	sums := make([]float64, cores) // disjoint per-rank slots
	ends := make([]int64, cores)
	res, err := sys.RunResult(func(r *sccsim.Rank) {
		src := r.AllocF64(n)
		bc := r.AllocF64(n)
		dst := r.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(r.ID()) + float64(i)*0.5
		}
		r.WriteF64s(src, v)
		r.WriteF64s(bc, v)
		if err := r.Barrier(); err != nil {
			t.Error(err)
			return
		}
		if err := r.Broadcast(0, bc, n); err != nil {
			t.Error(err)
			return
		}
		if err := r.Allreduce(src, dst, n); err != nil {
			t.Error(err)
			return
		}
		out := make([]float64, n)
		r.ReadF64s(dst, out)
		var s float64
		for _, x := range out {
			s += x
		}
		bv := make([]float64, n)
		r.ReadF64s(bc, bv)
		for _, x := range bv {
			s += 3 * x // fold the broadcast payload in, distinguishably
		}
		sums[r.ID()] = s
		ends[r.ID()] = int64(r.Now())
	})
	if err != nil {
		t.Fatalf("%dx%d run: %v", rows, cols, err)
	}
	h := sha256.New()
	binary.Write(h, binary.LittleEndian, int64(res.Elapsed()))
	binary.Write(h, binary.LittleEndian, sums)
	binary.Write(h, binary.LittleEndian, ends)
	var d [sha256.Size]byte
	copy(d[:], h.Sum(nil))
	return d
}

func TestLargeMeshDeterminism50x50(t *testing.T) {
	first := largeMeshDigest(t, 50, 50, 64)
	if again := largeMeshDigest(t, 50, 50, 64); again != first {
		t.Fatalf("50x50 same-seed digests differ:\n  %x\n  %x", first, again)
	}
}

func TestLargeMeshDeterminism100x100(t *testing.T) {
	if testing.Short() {
		t.Skip("10,000-core run in -short mode")
	}
	first := largeMeshDigest(t, 100, 100, 8)
	if again := largeMeshDigest(t, 100, 100, 8); again != first {
		t.Fatalf("100x100 same-seed digests differ:\n  %x\n  %x", first, again)
	}
}

// TestLargeMeshPanelAnyWorkerCount: the parallel sweep runner must
// produce byte-identical panels on a 2,500-core mesh whatever the
// worker count — the pooled trampoline workers underneath change which
// OS goroutine runs a simulated process, never what it computes.
func TestLargeMeshPanelAnyWorkerCount(t *testing.T) {
	model := timing.Topology(50, 50, 1)
	sizes := []int{8, 16}
	serial := bench.NewRunner(1).Panel(model, bench.OpBroadcast, sizes, 1)
	for _, workers := range []int{2, 4} {
		par := bench.NewRunner(workers).Panel(model, bench.OpBroadcast, sizes, 1)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("50x50 broadcast panel differs between 1 and %d workers", workers)
		}
	}
}
