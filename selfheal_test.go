package sccsim_test

import (
	"errors"
	"sync"
	"testing"

	sccsim "scc"
	"scc/internal/simtime"
)

// healRun executes reps Allreduce calls of n elements under
// self-healing with core victim killed at killAt, returning per-core
// final values, per-core errors, final member counts and the elapsed
// virtual time.
func healRun(t *testing.T, algo string, n, victim int, killAt sccsim.Duration, reps int) (map[int]float64, map[int]error, map[int]int, sccsim.Duration) {
	t.Helper()
	plan := sccsim.NewFaultPlan()
	plan.Add(sccsim.Fault{Kind: sccsim.FaultCoreDie, At: simtime.Time(killAt), Core: victim})
	opts := []sccsim.Option{
		sccsim.WithFaults(plan),
		sccsim.WithSelfHealing(sccsim.DefaultHealPolicy()),
	}
	if algo != "" {
		opts = append(opts, sccsim.WithAlgorithm(algo))
	}
	sys := sccsim.New(opts...)

	var mu sync.Mutex
	vals := make(map[int]float64)
	errs := make(map[int]error)
	members := make(map[int]int)
	res, err := sys.RunResult(func(r *sccsim.Rank) {
		src := r.AllocF64(n)
		dst := r.AllocF64(n)
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64(r.ID() + 1)
		}
		r.WriteF64s(src, buf)
		var rerr error
		for k := 0; k < reps && rerr == nil; k++ {
			rerr = r.Allreduce(src, dst, n)
		}
		out := make([]float64, 1)
		r.ReadF64s(dst, out)
		rep := r.HealReport()
		mu.Lock()
		vals[r.ID()] = out[0]
		errs[r.ID()] = rerr
		if rep != nil {
			members[r.ID()] = 48 - int(rep.Evicted)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("algo %q: run failed: %v", algo, err)
	}
	return vals, errs, members, res.Elapsed()
}

// TestSelfHealingAllreduceCoreDeath is the tentpole acceptance check: a
// core killed mid-Allreduce with NO oracle (nobody calls DeadCores)
// must leave every survivor with a completed collective over the agreed
// survivor group, for every registered allreduce algorithm.
func TestSelfHealingAllreduceCoreDeath(t *testing.T) {
	const (
		n      = 2048
		victim = 17
		reps   = 4
	)
	killAt := sccsim.Microseconds(400) // inside the first few collectives
	for _, algo := range []string{"ring", "tree", "recdouble", "mpb", "linear"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			vals, errs, _, _ := healRun(t, algo, n, victim, killAt, reps)
			// Survivor sum: every core contributes ID+1; the victim's
			// contribution is gone from the re-executed epoch.
			want := 0.0
			for id := 0; id < 48; id++ {
				if id != victim {
					want += float64(id + 1)
				}
			}
			completed := 0
			for id := 0; id < 48; id++ {
				if id == victim {
					continue
				}
				err := errs[id]
				if err != nil {
					// A typed, honest error is permitted for cores on the
					// wrong side of an agreement window, never a wrong value.
					if !errors.Is(err, sccsim.ErrUnreachable) &&
						!errors.Is(err, sccsim.ErrEvicted) &&
						!errors.Is(err, sccsim.ErrNoQuorum) &&
						!errors.Is(err, sccsim.ErrHealGiveUp) {
						t.Fatalf("core %d: untyped error: %v", id, err)
					}
					continue
				}
				completed++
				if vals[id] != want {
					t.Errorf("core %d: dst = %v, want survivor sum %v", id, vals[id], want)
				}
			}
			// The quorum rule guarantees a strict majority completes.
			if completed < 48/2+1 {
				t.Fatalf("only %d cores completed, want a majority", completed)
			}
		})
	}
}

// TestSelfHealingDeterministic pins the reproducibility guarantee:
// same-seed (here: same plan) self-healing runs are bit-identical in
// results and virtual time.
func TestSelfHealingDeterministic(t *testing.T) {
	killAt := sccsim.Microseconds(350)
	v1, e1, _, t1 := healRun(t, "ring", 1024, 11, killAt, 3)
	v2, e2, _, t2 := healRun(t, "ring", 1024, 11, killAt, 3)
	if t1 != t2 {
		t.Fatalf("elapsed differs across identical runs: %d vs %d ticks", t1, t2)
	}
	for id := 0; id < 48; id++ {
		if v1[id] != v2[id] {
			t.Errorf("core %d: value differs: %v vs %v", id, v1[id], v2[id])
		}
		if (e1[id] == nil) != (e2[id] == nil) {
			t.Errorf("core %d: error presence differs: %v vs %v", id, e1[id], e2[id])
		}
	}
}

// TestCoreDeathWithoutRecoveryTyped (satellite): mid-run core death
// with no recovery configured must surface a typed ErrCoreDead from
// Run, not a bare deadlock report.
func TestCoreDeathWithoutRecoveryTyped(t *testing.T) {
	plan := sccsim.NewFaultPlan()
	plan.Add(sccsim.Fault{Kind: sccsim.FaultCoreDie, At: simtime.Time(sccsim.Microseconds(200)), Core: 5})
	sys := sccsim.New(sccsim.WithFaults(plan))
	err := sys.Run(func(r *sccsim.Rank) {
		src := r.AllocF64(512)
		dst := r.AllocF64(512)
		for k := 0; k < 4; k++ {
			if err := r.Allreduce(src, dst, 512); err != nil {
				return
			}
		}
	})
	if err == nil {
		t.Fatal("run with a dead core and no recovery unexpectedly succeeded")
	}
	if !errors.Is(err, sccsim.ErrCoreDead) {
		t.Fatalf("err = %v, want errors.Is(err, ErrCoreDead)", err)
	}
}
