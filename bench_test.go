// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Each iteration runs a full 48-core simulation; the reported custom
// metric "simlat_us" is the simulated latency the corresponding figure
// plots (wall ns/op only measures the simulator itself).
//
//	go test -bench=Fig9f -benchmem .       # one Allreduce panel
//	go test -bench=. -benchmem .           # everything
//
// The full-resolution sweeps behind EXPERIMENTS.md come from
// cmd/sccbench, cmd/blocktable and cmd/gcmcapp; these benchmarks pin the
// representative points so regressions show up in `go test -bench`.
package sccsim_test

import (
	"fmt"
	"testing"

	"scc/internal/bench"
	"scc/internal/core"
	"scc/internal/gcmc"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/timing"
)

// benchPanel measures every stack of one Fig. 9 panel at the paper's
// application vector size (552 doubles; the x-axis midpoint).
func benchPanel(b *testing.B, op bench.Op) {
	for _, st := range bench.StacksFor(op) {
		st := st
		b.Run(st.Name, func(b *testing.B) {
			model := timing.Default()
			var last float64
			for i := 0; i < b.N; i++ {
				last = bench.Measure(model, op, st, 552, 1).Micros()
			}
			b.ReportMetric(last, "simlat_us")
		})
	}
}

// BenchmarkFig9aAllgather regenerates Fig. 9a (Allgather latency).
func BenchmarkFig9aAllgather(b *testing.B) { benchPanel(b, bench.OpAllgather) }

// BenchmarkFig9bAlltoall regenerates Fig. 9b (Alltoall latency).
func BenchmarkFig9bAlltoall(b *testing.B) { benchPanel(b, bench.OpAlltoall) }

// BenchmarkFig9cReduceScatter regenerates Fig. 9c (ReduceScatter).
func BenchmarkFig9cReduceScatter(b *testing.B) { benchPanel(b, bench.OpReduceScatter) }

// BenchmarkFig9dBroadcast regenerates Fig. 9d (Broadcast).
func BenchmarkFig9dBroadcast(b *testing.B) { benchPanel(b, bench.OpBroadcast) }

// BenchmarkFig9eReduce regenerates Fig. 9e (Reduce).
func BenchmarkFig9eReduce(b *testing.B) { benchPanel(b, bench.OpReduce) }

// BenchmarkFig9fAllreduce regenerates Fig. 9f (Allreduce), the panel the
// paper's Sec. IV optimization ladder is calibrated against.
func BenchmarkFig9fAllreduce(b *testing.B) { benchPanel(b, bench.OpAllreduce) }

// BenchmarkFig6Partition regenerates Fig. 6: the block partitioning of
// both strategies for the paper's three vector lengths.
func BenchmarkFig6Partition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{528, 552, 575} {
			_ = core.Partition(n, 48)
			_ = core.PartitionBalanced(n, 48)
		}
	}
	// Report the paper's headline ratio for 575 elements (5.3:1 -> 1.1:1).
	b.ReportMetric(core.ImbalanceRatio(core.Partition(575, 48)), "std_ratio")
	b.ReportMetric(core.ImbalanceRatio(core.PartitionBalanced(575, 48)), "bal_ratio")
}

// BenchmarkFig10GCMC regenerates Fig. 10: the thermodynamic application
// under every communication stack (scaled-down cycle count; the ratios
// are what the figure shows).
func BenchmarkFig10GCMC(b *testing.B) {
	p := gcmc.DefaultParams()
	p.Cycles = 10
	for _, st := range bench.GCMCStacks() {
		st := st
		b.Run(st.Name, func(b *testing.B) {
			var last bench.GCMCResult
			for i := 0; i < b.N; i++ {
				last = bench.RunGCMC(timing.Default(), st, p)
			}
			b.ReportMetric(last.WallTime.Millis(), "simwall_ms")
			b.ReportMetric(100*last.WaitFraction(), "wait_pct")
		})
	}
}

// BenchmarkAblationBugFixed probes the paper's Sec. IV-D prediction: with
// the SCC's local-MPB erratum fixed (15-core-cycle local accesses), the
// MPB-direct Allreduce should pull clearly ahead of the lightweight
// balanced stack.
func BenchmarkAblationBugFixed(b *testing.B) {
	for _, fixed := range []bool{false, true} {
		fixed := fixed
		name := "buggy-hardware"
		if fixed {
			name = "bug-fixed-hardware"
		}
		b.Run(name, func(b *testing.B) {
			model := timing.Default()
			model.HardwareBugFixed = fixed
			var bal, mpb float64
			for i := 0; i < b.N; i++ {
				bal = bench.Measure(model, bench.OpAllreduce,
					bench.Stack{Name: "bal", Cfg: core.ConfigBalanced}, 552, 1).Micros()
				mpb = bench.Measure(model, bench.OpAllreduce,
					bench.Stack{Name: "mpb", Cfg: core.ConfigMPB}, 552, 1).Micros()
			}
			b.ReportMetric(bal, "balanced_us")
			b.ReportMetric(mpb, "mpb_us")
			b.ReportMetric(bal/mpb, "mpb_speedup")
		})
	}
}

// BenchmarkNativeRCCECollectives measures the naive serial-root RCCE
// collectives the paper's Sec. III dismisses ("do not scale well"),
// against the optimized ones - the related work ([8], [9]) reports >20x
// for Broadcast and >6x for Reduce over these.
func BenchmarkNativeRCCECollectives(b *testing.B) {
	run := func(b *testing.B, naive bool) float64 {
		chip := scc.New(timing.Default())
		comm := rcce.NewComm(chip)
		chip.Launch(func(c *scc.Core) {
			ue := comm.UE(c.ID)
			addr := c.AllocF64(552)
			if naive {
				ue.NativeBcast(0, addr, 552)
			} else {
				x := core.NewCtx(ue, core.ConfigBalanced)
				x.Broadcast(0, addr, 552)
			}
		})
		if err := chip.Run(); err != nil {
			b.Fatal(err)
		}
		return chip.Now().Micros()
	}
	for _, naive := range []bool{true, false} {
		naive := naive
		name := "optimized-broadcast"
		if naive {
			name = "native-serial-broadcast"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				last = run(b, naive)
			}
			b.ReportMetric(last, "simlat_us")
		})
	}
}

// BenchmarkBarriers compares RCCE's centralized barrier with the
// dissemination barrier added as an extension (both reusable,
// generation-counted). Not a paper figure, but the same
// "synchronize with fewer serialized flag waits" theme as Sec. IV-A.
func BenchmarkBarriers(b *testing.B) {
	run := func(b *testing.B, dissem bool) float64 {
		chip := scc.New(timing.Default())
		comm := rcce.NewComm(chip)
		const rounds = 10
		chip.Launch(func(c *scc.Core) {
			ue := comm.UE(c.ID)
			for i := 0; i < rounds; i++ {
				if dissem {
					ue.BarrierDissemination()
				} else {
					ue.Barrier()
				}
			}
		})
		if err := chip.Run(); err != nil {
			b.Fatal(err)
		}
		return chip.Now().Micros() / rounds
	}
	for _, dissem := range []bool{false, true} {
		dissem := dissem
		name := "centralized"
		if dissem {
			name = "dissemination"
		}
		b.Run(name, func(b *testing.B) {
			var perBarrier float64
			for i := 0; i < b.N; i++ {
				perBarrier = run(b, dissem)
			}
			b.ReportMetric(perBarrier, "simlat_us")
		})
	}
}

// BenchmarkRingVsRecursiveDoubling locates the algorithm crossover that
// justifies RCCE_comm's (and the paper's) use of the ring for long
// vectors: log-depth recursive doubling wins on latency-bound short
// vectors, the ring's lower data volume wins on long ones.
func BenchmarkRingVsRecursiveDoubling(b *testing.B) {
	lat := func(n int, recdouble bool) float64 {
		chip := scc.New(timing.Default())
		comm := rcce.NewComm(chip)
		chip.Launch(func(c *scc.Core) {
			x := core.NewCtx(comm.UE(c.ID), core.ConfigLightweight)
			src := c.AllocF64(n)
			dst := c.AllocF64(n)
			if recdouble {
				x.AllreduceRecursiveDoubling(src, dst, n, core.Sum)
			} else {
				x.Allreduce(src, dst, n, core.Sum)
			}
		})
		if err := chip.Run(); err != nil {
			b.Fatal(err)
		}
		return chip.Now().Micros()
	}
	for _, n := range []int{16, 128, 552, 4000} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var ring, rd float64
			for i := 0; i < b.N; i++ {
				ring = lat(n, false)
				rd = lat(n, true)
			}
			b.ReportMetric(ring, "ring_us")
			b.ReportMetric(rd, "recdouble_us")
		})
	}
}
