package sccsim

import (
	"fmt"

	"scc/internal/core"
	"scc/internal/fabric"
	"scc/internal/fault"
	"scc/internal/metrics"
	"scc/internal/rcce"
	"scc/internal/rckmpi"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

// ErrInvalid marks user errors (bad counts, out-of-range roots). All
// collective methods return it wrapped instead of panicking.
var ErrInvalid = core.ErrInvalid

// ErrCrossChip marks collectives that do not span chips: on a multi-chip
// System (WithChips > 1) only Allreduce, AllreduceOp, Broadcast and
// Barrier run system-wide; the rest return this typed error.
var ErrCrossChip = core.ErrCrossChip

// RecoveryPolicy bounds the hardened protocol's waits: Timeout per
// attempt, exponential Backoff factor, MaxRetries before a peer is
// declared unreachable.
type RecoveryPolicy = rcce.Policy

// DefaultRecoveryPolicy returns the standard hardened-protocol policy.
func DefaultRecoveryPolicy() RecoveryPolicy { return rcce.DefaultPolicy() }

// HealPolicy bounds the self-healing runtime: Detect is the hardened
// transport's policy (and the wait budget toward already-suspected
// peers), Member the longer budget toward members in good standing
// during votes and membership agreement, MaxRounds the cap on
// reconfigure/re-execute cycles per collective call.
type HealPolicy = core.HealPolicy

// DefaultHealPolicy returns the tuned self-healing defaults.
func DefaultHealPolicy() HealPolicy { return core.DefaultHealPolicy() }

// HealReport summarizes self-healing activity: detector transitions,
// outcome votes, committed membership agreements, re-executions, the
// communicator epoch and the detection/agreement timestamps.
type HealReport = core.RecoveryReport

// Typed failure errors, testable with errors.Is.
var (
	// ErrUnreachable: a peer stayed silent past the hardened protocol's
	// retry budget (the raw detection signal).
	ErrUnreachable = rcce.ErrUnreachable
	// ErrCoreDead: a core died mid-run and, with no recovery enabled,
	// the survivors stalled on its silent flags.
	ErrCoreDead = scc.ErrCoreDead
	// ErrEvicted: the agreed survivor view excludes this rank.
	ErrEvicted = core.ErrEvicted
	// ErrNoQuorum: membership agreement could not reach a majority of
	// the previous group.
	ErrNoQuorum = core.ErrNoQuorum
	// ErrHealGiveUp: the self-healing loop exhausted its rounds.
	ErrHealGiveUp = core.ErrHealGiveUp
)

// FaultPlan schedules deterministic faults on the simulated chip; build
// one with NewFaultPlan or RandomFaultPlan and install it with
// WithFaults.
type FaultPlan = fault.Plan

// Fault is one scheduled fault; which fields matter depends on Kind
// (see the FaultKind constants).
type Fault = fault.Fault

// FaultKind enumerates the fault classes a plan can inject.
type FaultKind = fault.Kind

// The fault classes, re-exported so programs outside this module can
// build plans (internal/fault is not importable from there).
const (
	FaultLinkStall  FaultKind = fault.LinkStall
	FaultFlagDrop   FaultKind = fault.FlagDrop
	FaultMPBDrop    FaultKind = fault.MPBDrop
	FaultMPBCorrupt FaultKind = fault.MPBCorrupt
	FaultCoreStall  FaultKind = fault.CoreStall
	FaultCoreDie    FaultKind = fault.CoreDie
)

// NewFaultPlan returns an empty plan; chain Add(Fault{...}) to fill it.
func NewFaultPlan() *FaultPlan { return fault.NewPlan() }

// RandomFaultPlan draws n recoverable faults (link stalls, flag drops,
// MPB drops and corruptions) uniformly over the horizon from a seeded
// generator; two calls with equal arguments yield identical plans.
func RandomFaultPlan(seed int64, n int, horizon Duration) *FaultPlan {
	return fault.Random(seed, n, horizon, timing.Default())
}

// Duration is virtual time on the simulated chip. It converts to wall
// units with Micros, Millis and Seconds. Duration doubles as an
// absolute virtual timestamp (Fault.At, Rank.Now).
type Duration = simtime.Duration

// Microseconds returns n microseconds of virtual time.
func Microseconds(n int64) Duration { return simtime.Microseconds(n) }

// Addr addresses a rank's private memory.
type Addr = scc.Addr

// Stack selects the communication stack, in the order the paper's
// figures list them.
type Stack int

// The measured stacks of the paper.
const (
	// StackBlocking is plain RCCE + RCCE_comm: blocking send/receive
	// with odd-even ordering (the baseline all speedups refer to).
	StackBlocking Stack = iota
	// StackIRCCE relaxes synchronization with iRCCE's non-blocking
	// primitives (Sec. IV-A).
	StackIRCCE
	// StackLightweight uses the paper's lightweight non-blocking
	// primitives (Sec. IV-B).
	StackLightweight
	// StackLightweightBalanced adds load-balanced block partitioning
	// (Sec. IV-C).
	StackLightweightBalanced
	// StackMPB additionally runs Allreduce directly on the MPBs with
	// double buffering (Sec. IV-D).
	StackMPB
	// StackRCKMPI is the MPICH-based comparator (Sec. III).
	StackRCKMPI
)

// String names the stack like the paper's figure legends.
func (s Stack) String() string {
	switch s {
	case StackBlocking:
		return "blocking"
	case StackIRCCE:
		return "iRCCE"
	case StackLightweight:
		return "lightweight non-blocking"
	case StackLightweightBalanced:
		return "lightweight non-blocking, balanced"
	case StackMPB:
		return "MPB-based Allreduce"
	case StackRCKMPI:
		return "RCKMPI"
	default:
		return fmt.Sprintf("Stack(%d)", int(s))
	}
}

// Stacks lists all six stacks in presentation order.
func Stacks() []Stack {
	return []Stack{StackRCKMPI, StackBlocking, StackIRCCE,
		StackLightweight, StackLightweightBalanced, StackMPB}
}

// coreConfig maps a Stack to the collectives configuration (not
// meaningful for StackRCKMPI).
func (s Stack) coreConfig() core.Config {
	switch s {
	case StackBlocking:
		return core.ConfigBlocking
	case StackIRCCE:
		return core.ConfigIRCCE
	case StackLightweight:
		return core.ConfigLightweight
	case StackLightweightBalanced:
		return core.ConfigBalanced
	case StackMPB:
		return core.ConfigMPB
	default:
		return core.ConfigBalanced
	}
}

// Selector is the per-call algorithm-selection policy of the registry
// layer; install one with WithSelector. Build them with Fixed,
// PaperHeuristic or Tuned.
type Selector = core.Selector

// Fixed returns a selector that always picks the named registry
// algorithm; collectives for which the name is not registered or not
// applicable fall back to the paper heuristic.
func Fixed(name string) Selector { return core.Fixed(name) }

// PaperHeuristic returns the paper's selection policy (the default):
// binomial trees below the 512-byte short-message threshold, the
// MPB-direct ring where StackMPB applies, the block-partitioned ring
// otherwise.
func PaperHeuristic() Selector { return core.PaperHeuristic() }

// Tuned returns the measured decision-table selector backed by the
// committed tuner output (regenerate with `sccbench -tune`).
func Tuned() Selector { return core.Tuned() }

// AlgorithmNames lists the registered algorithms for op ("allreduce",
// "broadcast" or "reduce"), in registration order. Unknown ops return
// nil.
func AlgorithmNames(op string) []string {
	k, err := core.ParseOpKind(op)
	if err != nil {
		return nil
	}
	return core.AlgorithmNames(k)
}

// Metrics is a frozen snapshot of a System's hardware and protocol
// counters: per-core time split by protocol phase, MPB and cache event
// counts, per-mesh-link utilization and per-collective breakdowns. It
// marshals to JSON directly and renders itself with WriteJSON, WriteCSV
// and WriteTable.
type Metrics = metrics.Snapshot

// config collects construction options.
type config struct {
	model    *timing.Model
	stack    Stack
	chips    int
	intra    string
	faults   *fault.Plan
	recovery *rcce.Policy
	selfheal *core.HealPolicy
	selector core.Selector
	metrics  bool
}

// Option customizes a System.
type Option func(*config)

// WithStack selects the communication stack (default
// StackLightweightBalanced, the paper's best general-purpose
// configuration).
func WithStack(s Stack) Option { return func(c *config) { c.stack = s } }

// WithModel supplies a custom timing model (default timing.Default(),
// the paper's standard preset: 533 MHz cores, 800 MHz mesh and DRAM).
func WithModel(m *timing.Model) Option { return func(c *config) { c.model = m } }

// WithTopology builds the chip as an arbitrary rows x cols tile mesh
// with coresPerTile cores per tile, derived from the paper's calibrated
// model: latency constants are unchanged while the MPB flag layout and
// per-core MPB size are resized for the new core count (see
// timing.Topology). WithTopology(4, 6, 2) is the paper's default chip.
// New panics on an impossible geometry; pre-validate user input with
// timing.Topology(...).Validate().
func WithTopology(rows, cols, coresPerTile int) Option {
	return func(c *config) { c.model = timing.Topology(rows, cols, coresPerTile) }
}

// WithChips joins k identical chips into one system through the
// inter-chip fabric (see internal/fabric): one gateway core per chip,
// Allreduce/Broadcast/Barrier run hierarchically (intra-chip phase,
// gateway exchange, intra-chip phase) and rank IDs become system-global
// (Rank.ID in [0, NumCores)). k <= 1 is the plain single-chip system.
// Multi-chip systems support the RCCE-based stacks, WithRecovery,
// WithSelector and WithIntraAlgorithm; New panics when combined with
// StackRCKMPI, WithFaults, WithSelfHealing or WithMetrics (those
// subsystems are single-chip scoped).
func WithChips(k int) Option { return func(c *config) { c.chips = k } }

// WithIntraAlgorithm forces the intra-chip phases of the hierarchical
// collectives to the named registry algorithm ("ring", "tree", ...);
// the default lets the configured selector pick per phase. Only
// meaningful with WithChips(k > 1).
func WithIntraAlgorithm(name string) Option { return func(c *config) { c.intra = name } }

// WithHardwareBugFixed removes the SCC's local-MPB erratum workaround,
// probing the paper's prediction that fixed silicon would make the
// MPB-direct Allreduce win clearly (Sec. IV-D).
func WithHardwareBugFixed() Option {
	return func(c *config) {
		m := *c.model
		m.HardwareBugFixed = true
		c.model = &m
	}
}

// WithFaults installs a deterministic fault plan on the chip: the
// scheduled link stalls, lost or corrupted MPB writes and core faults
// perturb the hardware model exactly as seeded, so runs stay
// reproducible tick for tick.
func WithFaults(p *FaultPlan) Option { return func(c *config) { c.faults = p } }

// WithAlgorithm pins every Allreduce, Broadcast and Reduce to the named
// registry algorithm ("ring", "tree", "recdouble", "mpb", "linear"; see
// AlgorithmNames). An algorithm that is not registered or not
// applicable for a call falls back to the paper heuristic, so a typo
// degrades performance, never correctness. Shorthand for
// WithSelector(Fixed(name)).
func WithAlgorithm(name string) Option { return WithSelector(Fixed(name)) }

// WithSelector installs an algorithm-selection policy for the
// registry-dispatched collectives (default PaperHeuristic). It has no
// effect on StackRCKMPI, which bypasses the registry entirely.
func WithSelector(sel Selector) Option { return func(c *config) { c.selector = sel } }

// WithTuned selects algorithms from the committed tuner-measured
// decision table instead of the paper heuristic. Shorthand for
// WithSelector(Tuned()).
func WithTuned() Option { return WithSelector(Tuned()) }

// WithMetrics attaches a metrics registry to the chip: every run then
// counts MPB traffic, cache events, flag synchronization, mesh-link
// utilization and the per-phase time split, retrievable with
// System.Metrics or Result.Metrics. Collection only reads simulator
// state and never adds simulated work, so enabling it changes no
// virtual-time result (pinned down by TestMetricsDoNotPerturbTiming).
func WithMetrics() Option { return func(c *config) { c.metrics = true } }

// WithRecovery runs the selected stack over the hardened protocol
// (sequence numbers, checksums, bounded waits, retransmit with backoff):
// collectives then return errors instead of hanging when faults exceed
// the retry budget. It has no effect on StackRCKMPI and disables the
// MPB-direct Allreduce fast path.
func WithRecovery(pol RecoveryPolicy) Option {
	return func(c *config) { p := pol; c.recovery = &p }
}

// WithSelfHealing runs the selected stack under the self-healing
// collective runtime: the hardened transport's bounded waits feed an
// in-band failure detector, collectives that hit an unreachable peer
// vote on the outcome, agree on the survivor membership over the MPB
// (no oracle — the runtime discovers who died), adopt a fresh
// communicator epoch, and re-execute on the agreed group. It implies
// WithRecovery(pol.Detect) unless WithRecovery is given explicitly, has
// no effect on StackRCKMPI, and disables the MPB-direct Allreduce fast
// path (which is not hardened). Healing state — suspicions, the agreed
// member set, the epoch — persists across Run calls on one System.
func WithSelfHealing(pol HealPolicy) Option {
	return func(c *config) { p := pol; c.selfheal = &p }
}

// System is one simulated SCC — or, with WithChips(k > 1), k of them
// joined by the inter-chip fabric — ready to run SPMD programs.
type System struct {
	cfg  config
	chip *scc.Chip
	comm *rcce.Comm
	// fab and comms are the multi-chip state (nil for a single chip):
	// the shared-engine fabric system plus one communicator per chip.
	// chip and comm then alias chip 0 so the single-chip accessors
	// (Model, Elapsed) keep working off the shared engine.
	fab   *fabric.System
	comms []*rcce.Comm
	// healers persist per core across Run calls (nil without
	// WithSelfHealing): suspicions, the agreed member set and the
	// communicator epoch are durable state of the runtime, not of one
	// program.
	healers []*core.Healer
}

// New builds a simulated SCC. Options default to the paper's hardware
// and the lightweight balanced stack.
func New(opts ...Option) *System {
	cfg := config{model: timing.Default(), stack: StackLightweightBalanced}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.chips > 1 {
		return newMultiChip(cfg)
	}
	chip := scc.New(cfg.model)
	if cfg.metrics {
		chip.SetMetrics(metrics.New(chip.NumCores()))
	}
	if cfg.faults != nil {
		fault.Install(chip, cfg.faults)
	}
	s := &System{cfg: cfg, chip: chip, comm: rcce.NewComm(chip)}
	if cfg.selfheal != nil {
		s.healers = make([]*core.Healer, chip.NumCores())
	}
	return s
}

// newMultiChip builds the fabric-joined variant (WithChips > 1).
func newMultiChip(cfg config) *System {
	switch {
	case cfg.stack == StackRCKMPI:
		panic("sccsim: WithChips: StackRCKMPI is single-chip only")
	case cfg.faults != nil:
		panic("sccsim: WithChips: fault plans are single-chip only")
	case cfg.selfheal != nil:
		panic("sccsim: WithChips: self-healing is single-chip only")
	case cfg.metrics:
		panic("sccsim: WithChips: metrics are single-chip only")
	}
	fab := fabric.New(cfg.model, cfg.chips)
	s := &System{cfg: cfg, fab: fab, chip: fab.Chips[0]}
	for _, chip := range fab.Chips {
		s.comms = append(s.comms, rcce.NewComm(chip))
	}
	s.comm = s.comms[0]
	return s
}

// NumCores returns the total rank count: the core count of the chip
// (48 on the paper's default geometry) times the chip count.
func (s *System) NumCores() int {
	if s.fab != nil {
		return s.fab.NumChips() * s.chip.NumCores()
	}
	return s.chip.NumCores()
}

// Chips returns how many chips the system spans (1 without WithChips).
func (s *System) Chips() int {
	if s.fab != nil {
		return s.fab.NumChips()
	}
	return 1
}

// Model exposes the timing model in use.
func (s *System) Model() *timing.Model { return s.chip.Model }

// Stack returns the configured communication stack.
func (s *System) Stack() Stack { return s.cfg.stack }

// Run executes program on every core simultaneously (SPMD) and blocks
// until the virtual machine is idle. It returns the simulation error
// (nil, deadlock, or a propagated panic from the program). A System can
// run several programs in sequence; virtual time keeps advancing. On a
// multi-chip system the program runs on every core of every chip, with
// system-global rank IDs.
func (s *System) Run(program func(r *Rank)) error {
	if s.fab != nil {
		for ci, chip := range s.fab.Chips {
			ci := ci
			chip.Launch(func(c *scc.Core) {
				program(s.newRankOnChip(ci, c))
			})
		}
		return s.fab.Run()
	}
	s.chip.Launch(func(c *scc.Core) {
		program(s.newRank(c))
	})
	return s.chip.Run()
}

// Elapsed reports the chip's virtual time.
func (s *System) Elapsed() Duration { return s.chip.Now() }

// Metrics returns a snapshot of everything counted so far, or nil when
// the System was built without WithMetrics. Snapshots are independent:
// taking one does not reset the counters, and later runs do not mutate
// snapshots already taken.
func (s *System) Metrics() *Metrics {
	reg := s.chip.Metrics()
	if reg == nil {
		return nil
	}
	return reg.Snapshot()
}

// Heal aggregates the self-healing activity of all ranks so far, or
// nil when the System was built without WithSelfHealing. Per-core
// activity counts (suspicions, clears, votes) are summed; global-event
// counts (reconfigurations, re-executions, evictions — every member
// observes the same committed events) and the epoch are maxima;
// FirstSuspectAt is the earliest suspicion on any core (detection
// latency) and LastAgreeAt the latest committed agreement.
func (s *System) Heal() *HealReport {
	if s.healers == nil {
		return nil
	}
	agg := HealReport{FirstSuspectAt: -1, LastAgreeAt: -1}
	for _, h := range s.healers {
		if h == nil {
			continue
		}
		r := h.Report()
		agg.Suspicions += r.Suspicions
		agg.Clears += r.Clears
		agg.Votes += r.Votes
		agg.VotesFailed += r.VotesFailed
		if r.Reconfigs > agg.Reconfigs {
			agg.Reconfigs = r.Reconfigs
		}
		if r.Reexecs > agg.Reexecs {
			agg.Reexecs = r.Reexecs
		}
		if r.Evicted > agg.Evicted {
			agg.Evicted = r.Evicted
		}
		if r.Epoch > agg.Epoch {
			agg.Epoch = r.Epoch
		}
		if r.FirstSuspectAt >= 0 && (agg.FirstSuspectAt < 0 || r.FirstSuspectAt < agg.FirstSuspectAt) {
			agg.FirstSuspectAt = r.FirstSuspectAt
		}
		if r.LastAgreeAt > agg.LastAgreeAt {
			agg.LastAgreeAt = r.LastAgreeAt
		}
	}
	return &agg
}

// Result describes one completed RunResult call.
type Result struct {
	elapsed Duration
	metrics *Metrics
	heal    *HealReport
}

// Elapsed is the virtual time the program took (from launch to the last
// core going idle), excluding any earlier runs on the same System.
func (r *Result) Elapsed() Duration { return r.elapsed }

// Metrics is the cumulative metrics snapshot taken right after the run,
// or nil without WithMetrics.
func (r *Result) Metrics() *Metrics { return r.metrics }

// Heal is the aggregated self-healing report taken right after the run,
// or nil without WithSelfHealing (see System.Heal for the aggregation
// rules).
func (r *Result) Heal() *HealReport { return r.heal }

// RunResult is Run plus measurement: it executes the program and
// returns how long it took in virtual time together with a metrics
// snapshot (when WithMetrics is active). The error is Run's error.
func (s *System) RunResult(program func(r *Rank)) (*Result, error) {
	t0 := s.chip.Now()
	err := s.Run(program)
	return &Result{elapsed: s.chip.Now() - t0, metrics: s.Metrics(), heal: s.Heal()}, err
}

// Rank is the per-core handle inside a Run program: private memory,
// compute-time charging, and the collective operations of the selected
// stack.
type Rank struct {
	core *scc.Core
	ue   *rcce.UE
	ctx  *core.Ctx   // nil for RCKMPI and evicted ranks
	mpi  *rckmpi.Lib // nil for core stacks
	// gid and gn are the system-global rank ID and rank count; on a
	// single chip they equal the core ID and core count. chipIdx is
	// which chip the rank lives on (0 on a single chip).
	gid, gn, chipIdx int
	// evicted holds the typed error a rank evicted by an earlier
	// membership agreement gets from every collective call.
	evicted error
}

func (s *System) newRank(c *scc.Core) *Rank {
	r := &Rank{core: c, ue: s.comm.UE(c.ID), gid: c.ID, gn: s.chip.NumCores()}
	if s.cfg.stack == StackRCKMPI {
		r.mpi = rckmpi.New(r.ue)
		return r
	}
	cfg := s.cfg.stack.coreConfig()
	cfg.Recovery = s.cfg.recovery
	cfg.Selector = s.cfg.selector
	if s.cfg.selfheal != nil {
		cfg.SelfHeal = s.cfg.selfheal
		h := s.healers[c.ID]
		if h == nil {
			h = core.NewHealer(r.ue, *s.cfg.selfheal)
			s.healers[c.ID] = h
		}
		ctx, err := core.NewCtxHealer(r.ue, cfg, h)
		if err != nil {
			r.evicted = err
			return r
		}
		r.ctx = ctx
		return r
	}
	r.ctx = core.NewCtx(r.ue, cfg)
	return r
}

// newRankOnChip builds a rank of a multi-chip system: the collectives
// context carries the chip's fabric port, so Allreduce/Broadcast/
// Barrier dispatch to the hierarchical "hier" composition.
func (s *System) newRankOnChip(ci int, c *scc.Core) *Rank {
	perChip := s.chip.NumCores()
	r := &Rank{
		core:    c,
		ue:      s.comms[ci].UE(c.ID),
		gid:     ci*perChip + c.ID,
		gn:      s.fab.NumChips() * perChip,
		chipIdx: ci,
	}
	cfg := s.cfg.stack.coreConfig()
	cfg.Recovery = s.cfg.recovery
	cfg.Selector = s.cfg.selector
	ctx, err := core.NewCtxFabric(r.ue, cfg, &core.Fabric{
		Port:  s.fab.Port(ci),
		Chip:  ci,
		Chips: s.fab.NumChips(),
		Intra: s.cfg.intra,
	})
	if err != nil {
		// Construction only fails on malformed fabric parameters, which
		// New's own wiring cannot produce — except an unknown
		// WithIntraAlgorithm name, surfaced on first collective call.
		r.evicted = err
		return r
	}
	r.ctx = ctx
	return r
}

// collectiveCtx returns the rank's context, or the eviction error for a
// rank an earlier membership agreement excluded.
func (r *Rank) collectiveCtx() (*core.Ctx, error) {
	if r.evicted != nil {
		return nil, r.evicted
	}
	return r.ctx, nil
}

// checkRoot validates a root rank for the RCKMPI comparator paths (the
// core stacks validate inside internal/core).
func (r *Rank) checkRoot(fn string, root int) error {
	if root < 0 || root >= r.N() {
		return fmt.Errorf("sccsim: %s: %w: root %d outside [0,%d)", fn, ErrInvalid, root, r.N())
	}
	return nil
}

// checkN rejects negative element counts on the RCKMPI paths.
func checkN(fn string, n int) error {
	if n < 0 {
		return fmt.Errorf("sccsim: %s: %w: negative count %d", fn, ErrInvalid, n)
	}
	return nil
}

// ID returns this rank's system-global number, in [0, N()). On a single
// chip it is the core ID; on a multi-chip system chip c's core k is
// rank c*coresPerChip + k.
func (r *Rank) ID() int { return r.gid }

// N returns the number of ranks across the whole system.
func (r *Rank) N() int { return r.gn }

// Chip returns which chip this rank lives on (0 on a single chip).
func (r *Rank) Chip() int { return r.chipIdx }

// Now returns the rank's current virtual time.
func (r *Rank) Now() Duration { return Duration(r.core.Now()) }

// AllocF64 reserves private memory for n float64 values.
func (r *Rank) AllocF64(n int) Addr { return r.core.AllocF64(n) }

// WriteF64s stores src at addr (cache-priced).
func (r *Rank) WriteF64s(addr Addr, src []float64) { r.core.WriteF64s(addr, src) }

// ReadF64s loads len(dst) values from addr (cache-priced).
func (r *Rank) ReadF64s(addr Addr, dst []float64) { r.core.ReadF64s(addr, dst) }

// ComputeCycles charges n core clock cycles of pure computation.
func (r *Rank) ComputeCycles(n int64) { r.core.ComputeCycles(n) }

// Profile returns the rank's instrumentation counters.
func (r *Rank) Profile() scc.Profile { return r.core.Prof() }

// Barrier synchronizes all ranks. It can only fail under WithRecovery,
// when a peer stays silent past the retry budget.
func (r *Rank) Barrier() error {
	if r.mpi != nil {
		r.ue.Barrier()
		return nil
	}
	x, err := r.collectiveCtx()
	if err != nil {
		return err
	}
	return x.Barrier()
}

// Allreduce sums n float64 values element-wise across all ranks,
// leaving the full result at dst on every rank.
func (r *Rank) Allreduce(src, dst Addr, n int) error {
	if r.mpi != nil {
		if err := checkN("Allreduce", n); err != nil {
			return err
		}
		r.mpi.Allreduce(src, dst, n, func(a, b float64) float64 { return a + b })
		return nil
	}
	x, err := r.collectiveCtx()
	if err != nil {
		return err
	}
	return x.Allreduce(src, dst, n, core.Sum)
}

// AllreduceOp is Allreduce with a custom associative operator.
func (r *Rank) AllreduceOp(src, dst Addr, n int, op func(a, b float64) float64) error {
	if r.mpi != nil {
		if err := checkN("AllreduceOp", n); err != nil {
			return err
		}
		r.mpi.Allreduce(src, dst, n, op)
		return nil
	}
	x, err := r.collectiveCtx()
	if err != nil {
		return err
	}
	return x.Allreduce(src, dst, n, core.Op(op))
}

// Reduce reduces to the root rank only.
func (r *Rank) Reduce(root int, src, dst Addr, n int) error {
	if r.mpi != nil {
		if err := checkN("Reduce", n); err != nil {
			return err
		}
		if err := r.checkRoot("Reduce", root); err != nil {
			return err
		}
		r.mpi.Reduce(root, src, dst, n, func(a, b float64) float64 { return a + b })
		return nil
	}
	x, err := r.collectiveCtx()
	if err != nil {
		return err
	}
	return x.Reduce(root, src, dst, n, core.Sum)
}

// Broadcast distributes n values at addr from root to every rank.
func (r *Rank) Broadcast(root int, addr Addr, n int) error {
	if r.mpi != nil {
		if err := checkN("Broadcast", n); err != nil {
			return err
		}
		if err := r.checkRoot("Broadcast", root); err != nil {
			return err
		}
		r.mpi.Bcast(root, addr, n)
		return nil
	}
	x, err := r.collectiveCtx()
	if err != nil {
		return err
	}
	return x.Broadcast(root, addr, n)
}

// Allgather concatenates each rank's nPer values into dst (N()*nPer,
// rank-ordered) on every rank.
func (r *Rank) Allgather(src Addr, nPer int, dst Addr) error {
	if r.mpi != nil {
		if err := checkN("Allgather", nPer); err != nil {
			return err
		}
		r.mpi.Allgather(src, nPer, dst)
		return nil
	}
	x, err := r.collectiveCtx()
	if err != nil {
		return err
	}
	return x.Allgather(src, nPer, dst)
}

// Alltoall exchanges nPer-value blocks between every pair of ranks.
func (r *Rank) Alltoall(src, dst Addr, nPer int) error {
	if r.mpi != nil {
		if err := checkN("Alltoall", nPer); err != nil {
			return err
		}
		r.mpi.Alltoall(src, dst, nPer)
		return nil
	}
	x, err := r.collectiveCtx()
	if err != nil {
		return err
	}
	return x.Alltoall(src, dst, nPer)
}

// ReduceScatter reduces element-wise and scatters blocks; dst receives
// this rank's block of the partition.
func (r *Rank) ReduceScatter(src, dst Addr, n int) error {
	if r.mpi != nil {
		if err := checkN("ReduceScatter", n); err != nil {
			return err
		}
		r.mpi.ReduceScatter(src, dst, n, func(a, b float64) float64 { return a + b })
		return nil
	}
	x, err := r.collectiveCtx()
	if err != nil {
		return err
	}
	_, err = x.ReduceScatter(src, dst, n, core.Sum)
	return err
}

// Scatter distributes block q of the root's src buffer (N()*nPer
// values) to rank q's dst. src is only read on the root. (RCKMPI
// implements scatter as a degenerate alltoall through its channel.)
func (r *Rank) Scatter(root int, src Addr, nPer int, dst Addr) error {
	if r.mpi != nil {
		if err := checkN("Scatter", nPer); err != nil {
			return err
		}
		if err := r.checkRoot("Scatter", root); err != nil {
			return err
		}
		if r.ID() == root {
			for q := 0; q < r.N(); q++ {
				if q == root {
					v := make([]float64, nPer)
					r.core.ReadF64s(src+Addr(8*nPer*q), v)
					r.core.WriteF64s(dst, v)
					continue
				}
				r.mpi.Send(q, src+Addr(8*nPer*q), 8*nPer)
			}
			return nil
		}
		r.mpi.Recv(root, dst, 8*nPer)
		return nil
	}
	x, err := r.collectiveCtx()
	if err != nil {
		return err
	}
	return x.Scatter(root, src, nPer, dst)
}

// Gather collects each rank's nPer values into the root's dst buffer,
// rank-ordered. dst is only written on the root.
func (r *Rank) Gather(root int, src Addr, nPer int, dst Addr) error {
	if r.mpi != nil {
		if err := checkN("Gather", nPer); err != nil {
			return err
		}
		if err := r.checkRoot("Gather", root); err != nil {
			return err
		}
		if r.ID() == root {
			for q := 0; q < r.N(); q++ {
				if q == root {
					v := make([]float64, nPer)
					r.core.ReadF64s(src, v)
					r.core.WriteF64s(dst+Addr(8*nPer*q), v)
					continue
				}
				r.mpi.Recv(q, dst+Addr(8*nPer*q), 8*nPer)
			}
			return nil
		}
		r.mpi.Send(root, src, 8*nPer)
		return nil
	}
	x, err := r.collectiveCtx()
	if err != nil {
		return err
	}
	return x.Gather(root, src, nPer, dst)
}

// Scan computes an inclusive prefix sum: rank k's dst receives the
// element-wise sum of ranks 0..k. Only available on the RCCE-based
// stacks (RCKMPI's scan is out of the comparator's scope).
func (r *Rank) Scan(src, dst Addr, n int) error {
	if r.mpi != nil {
		return fmt.Errorf("sccsim: Scan: %w: not implemented by the RCKMPI comparator", ErrInvalid)
	}
	x, err := r.collectiveCtx()
	if err != nil {
		return err
	}
	return x.Scan(src, dst, n, core.Sum)
}

// Recovery reports this rank's accumulated hardened-protocol statistics
// (all zero unless WithRecovery is active and faults occurred).
func (r *Rank) Recovery() rcce.RecoveryStats { return r.ue.Recovery() }

// HealReport returns this rank's self-healing activity, or nil without
// WithSelfHealing.
func (r *Rank) HealReport() *HealReport {
	if r.ctx == nil || r.ctx.Healer() == nil {
		return nil
	}
	rep := r.ctx.Healer().Report()
	return &rep
}

// SetFrequencyDivider changes this rank's core clock divider
// (RCCE_power-style DVFS; the SCC derives tile clocks from a 1600 MHz
// root, divider 3 = the 533 MHz standard preset). It returns the new
// frequency in MHz. Compute charges and the energy estimate scale
// accordingly; the mesh and memory stay in their own clock domain.
func (r *Rank) SetFrequencyDivider(div int) float64 {
	return r.core.SetFrequencyDivider(div)
}

// FrequencyMHz reports the rank's current core clock.
func (r *Rank) FrequencyMHz() float64 { return r.core.FrequencyMHz() }

// EnergyEstimate reports the rank's accumulated compute energy in
// preset-power-seconds (1.0 = one second of compute at 533 MHz).
func (r *Rank) EnergyEstimate() float64 { return r.core.EnergyEstimate() }
