package sccsim_test

import (
	"errors"
	"math"
	"testing"

	sccsim "scc"
	"scc/internal/fault"
	"scc/internal/simtime"
)

// TestUserErrorsReturned audits the façade's user-error paths: bad
// counts and bad roots come back as ErrInvalid on every stack instead of
// panicking the simulation.
func TestUserErrorsReturned(t *testing.T) {
	for _, stack := range []sccsim.Stack{sccsim.StackLightweightBalanced, sccsim.StackRCKMPI} {
		sys := sccsim.New(sccsim.WithStack(stack))
		var errNegN, errBadRoot, errNegRoot error
		err := sys.Run(func(r *sccsim.Rank) {
			a := r.AllocF64(8)
			if r.ID() == 0 {
				errNegN = r.Allreduce(a, a, -1)
				errBadRoot = r.Broadcast(r.N(), a, 4)
				errNegRoot = r.Reduce(-3, a, a, 4)
			}
		})
		if err != nil {
			t.Fatalf("%v: Run: %v", stack, err)
		}
		for name, e := range map[string]error{
			"negative count": errNegN, "root out of range": errBadRoot, "negative root": errNegRoot,
		} {
			if !errors.Is(e, sccsim.ErrInvalid) {
				t.Errorf("%v: %s: got %v, want ErrInvalid", stack, name, e)
			}
		}
	}
}

func TestRCKMPIScanReturnsError(t *testing.T) {
	sys := sccsim.New(sccsim.WithStack(sccsim.StackRCKMPI))
	var scanErr error
	err := sys.Run(func(r *sccsim.Rank) {
		a := r.AllocF64(4)
		if r.ID() == 0 {
			scanErr = r.Scan(a, a, 4)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(scanErr, sccsim.ErrInvalid) {
		t.Fatalf("RCKMPI Scan: got %v, want ErrInvalid", scanErr)
	}
}

// TestWithFaultsAndRecovery drives the fault options end to end through
// the façade: a lost flag write is retransmitted, the Allreduce result
// stays correct, and the per-rank recovery statistics are visible.
func TestWithFaultsAndRecovery(t *testing.T) {
	const n = 552
	plan := fault.NewPlan().Add(fault.Fault{
		Kind: fault.FlagDrop, At: simtime.Time(simtime.Microseconds(50)), Core: 5, Off: -1,
	})
	sys := sccsim.New(
		sccsim.WithFaults(plan),
		sccsim.WithRecovery(sccsim.DefaultRecoveryPolicy()),
	)
	p := sys.NumCores()
	var recovered int64
	results := make([][]float64, p)
	err := sys.Run(func(r *sccsim.Rank) {
		src := r.AllocF64(n)
		dst := r.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(r.ID()) + float64(i)*0.5
		}
		r.WriteF64s(src, v)
		if err := r.Allreduce(src, dst, n); err != nil {
			t.Errorf("rank %d Allreduce: %v", r.ID(), err)
			return
		}
		got := make([]float64, n)
		r.ReadF64s(dst, got)
		results[r.ID()] = got
		recovered += r.Recovery().Retransmits + r.Recovery().DupAcks
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(plan.Events()) != 1 {
		t.Fatalf("fault did not fire: %v", plan.Events())
	}
	if recovered == 0 {
		t.Fatal("no recovery work recorded despite an injected fault")
	}
	for i := 0; i < n; i++ {
		// sum over id of (id + i*0.5) = p(p-1)/2 + p*i*0.5
		want := float64(p*(p-1))/2 + float64(p)*float64(i)*0.5
		for id := 0; id < p; id++ {
			if math.Abs(results[id][i]-want) > 1e-9 {
				t.Fatalf("rank %d element %d = %v, want %v", id, i, results[id][i], want)
			}
		}
	}
}
