package sccsim_test

import (
	"fmt"

	sccsim "scc"
)

// Example runs the paper's headline operation: a 552-double Allreduce
// (the thermodynamic application's Fourier coefficient vector) on all 48
// simulated cores.
func Example() {
	sys := sccsim.New(sccsim.WithStack(sccsim.StackLightweightBalanced))
	err := sys.Run(func(r *sccsim.Rank) {
		src := r.AllocF64(552)
		dst := r.AllocF64(552)
		v := make([]float64, 552)
		for i := range v {
			v[i] = 1
		}
		r.WriteF64s(src, v)
		r.Allreduce(src, dst, 552)
		if r.ID() == 0 {
			out := make([]float64, 1)
			r.ReadF64s(dst, out)
			fmt.Printf("sum over 48 cores: %v\n", out[0])
		}
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// sum over 48 cores: 48
}

// ExampleStack_ordering shows the six measured stacks in the paper's
// speed order.
func ExampleStack_ordering() {
	for _, s := range sccsim.Stacks() {
		fmt.Println(s)
	}
	// Output:
	// RCKMPI
	// blocking
	// iRCCE
	// lightweight non-blocking
	// lightweight non-blocking, balanced
	// MPB-based Allreduce
}

// ExampleRank_Broadcast distributes a vector from rank 0 to everyone.
func ExampleRank_Broadcast() {
	sys := sccsim.New()
	err := sys.Run(func(r *sccsim.Rank) {
		a := r.AllocF64(4)
		if r.ID() == 0 {
			r.WriteF64s(a, []float64{1, 2, 3, 4})
		}
		r.Broadcast(0, a, 4)
		if r.ID() == 47 {
			out := make([]float64, 4)
			r.ReadF64s(a, out)
			fmt.Println(out)
		}
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// [1 2 3 4]
}

// ExampleRank_SetFrequencyDivider demonstrates the RCCE_power-style
// DVFS control: halving a core's clock doubles its compute time.
func ExampleRank_SetFrequencyDivider() {
	sys := sccsim.New()
	err := sys.Run(func(r *sccsim.Rank) {
		if r.ID() != 0 {
			return
		}
		t0 := r.Now()
		r.ComputeCycles(1000)
		atPreset := r.Now() - t0

		r.SetFrequencyDivider(6) // 533 MHz -> 266 MHz
		t1 := r.Now()
		r.ComputeCycles(1000)
		atHalf := r.Now() - t1
		fmt.Printf("half clock takes %vx longer\n", int64(atHalf)/int64(atPreset))
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// half clock takes 2x longer
}
