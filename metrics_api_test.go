package sccsim_test

import (
	"testing"

	sccsim "scc"
)

// allreduceProgram is a small SPMD body whose numeric results and
// virtual-time cost the metrics tests compare across configurations.
func allreduceProgram(n int, out []float64, elapsed []sccsim.Duration) func(r *sccsim.Rank) {
	return func(r *sccsim.Rank) {
		src := r.AllocF64(n)
		dst := r.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(r.ID()) + float64(i)*0.5
		}
		r.WriteF64s(src, v)
		if err := r.Allreduce(src, dst, n); err != nil {
			panic(err)
		}
		if r.ID() == 0 {
			r.ReadF64s(dst, out)
			elapsed[0] = r.Now()
		}
	}
}

// TestMetricsDoNotPerturbTiming builds the same system twice — once
// plain, once with WithMetrics — runs the same program, and demands
// identical numeric results and identical virtual-time behavior down to
// the tick. This is the facade-level statement of the PR's invariant:
// observability is free in simulated time.
func TestMetricsDoNotPerturbTiming(t *testing.T) {
	const n = 200
	run := func(opts ...sccsim.Option) ([]float64, sccsim.Duration, sccsim.Duration) {
		sys := sccsim.New(opts...)
		out := make([]float64, n)
		elapsed := make([]sccsim.Duration, 1)
		if err := sys.Run(allreduceProgram(n, out, elapsed)); err != nil {
			t.Fatal(err)
		}
		return out, elapsed[0], sys.Elapsed()
	}
	plainOut, plainNow, plainElapsed := run()
	instOut, instNow, instElapsed := run(sccsim.WithMetrics())

	if plainNow != instNow || plainElapsed != instElapsed {
		t.Errorf("virtual time diverged: plain (now %v, elapsed %v) vs metrics (now %v, elapsed %v)",
			plainNow, plainElapsed, instNow, instElapsed)
	}
	for i := range plainOut {
		if plainOut[i] != instOut[i] {
			t.Fatalf("result[%d] diverged: %v vs %v", i, plainOut[i], instOut[i])
		}
	}
}

func TestMetricsSnapshotContents(t *testing.T) {
	const n = 200
	sys := sccsim.New(sccsim.WithMetrics())
	out := make([]float64, n)
	elapsed := make([]sccsim.Duration, 1)
	res, err := sys.RunResult(allreduceProgram(n, out, elapsed))
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed() != sys.Elapsed() {
		t.Errorf("Result.Elapsed %v != System.Elapsed %v after a first run", res.Elapsed(), sys.Elapsed())
	}
	m := res.Metrics()
	if m == nil {
		t.Fatal("Result.Metrics is nil despite WithMetrics")
	}
	if len(m.Cores) != sys.NumCores() {
		t.Fatalf("snapshot has %d core rows, want %d", len(m.Cores), sys.NumCores())
	}
	if m.Totals.Counters["mpb-writes"] == 0 {
		t.Error("an allreduce recorded no MPB writes")
	}
	if m.Totals.Phases["transfer"] == 0 {
		t.Error("an allreduce recorded no transfer time")
	}
	if len(m.Collectives) == 0 {
		t.Error("no per-collective breakdown recorded")
	}
	var attributed int64
	for _, v := range m.Totals.Phases {
		attributed += v
	}
	// Phases are disjoint; their sum cannot exceed cores * elapsed.
	if budget := int64(sys.Elapsed()) * int64(sys.NumCores()); attributed > budget {
		t.Errorf("attributed phase time %d exceeds the chip's total time budget %d", attributed, budget)
	}
}

func TestMetricsNilWithoutOption(t *testing.T) {
	sys := sccsim.New()
	if sys.Metrics() != nil {
		t.Error("Metrics non-nil without WithMetrics")
	}
	res, err := sys.RunResult(func(r *sccsim.Rank) {})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics() != nil {
		t.Error("Result.Metrics non-nil without WithMetrics")
	}
}

// TestMetricsSnapshotsIndependent verifies that a snapshot is a frozen
// copy: a second run keeps counting in the registry without mutating
// the snapshot already taken.
func TestMetricsSnapshotsIndependent(t *testing.T) {
	const n = 64
	sys := sccsim.New(sccsim.WithMetrics())
	out := make([]float64, n)
	elapsed := make([]sccsim.Duration, 1)
	if err := sys.Run(allreduceProgram(n, out, elapsed)); err != nil {
		t.Fatal(err)
	}
	first := sys.Metrics()
	firstWrites := first.Totals.Counters["mpb-writes"]
	if err := sys.Run(allreduceProgram(n, out, elapsed)); err != nil {
		t.Fatal(err)
	}
	second := sys.Metrics()
	if first.Totals.Counters["mpb-writes"] != firstWrites {
		t.Error("second run mutated the first snapshot")
	}
	if second.Totals.Counters["mpb-writes"] <= firstWrites {
		t.Error("registry stopped accumulating after the first snapshot")
	}
}
