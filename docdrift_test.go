package sccsim_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"scc/internal/core"
)

// The doc-drift gate: the README and DESIGN.md are promoted to a spec,
// so the things a user can actually name — registered collective
// algorithms and public façade options — must appear in them. A PR that
// adds an algorithm or a With* option without documenting it fails
// here, not in review.
//
// This test deliberately reads only the committed registry state of the
// library (it never calls synth.RegisterDefaults: registration is a
// main()-time decision, and the scheduler-equivalence goldens pin the
// library's registry digest).

// docsUnion returns README.md + DESIGN.md as one searchable string.
func docsUnion(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for _, name := range []string{"README.md", "DESIGN.md"} {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("doc spec file missing: %v", err)
		}
		sb.Write(data)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestDocsMentionEveryRegisteredAlgorithm(t *testing.T) {
	docs := docsUnion(t)
	checked := 0
	for _, k := range core.OpKinds() {
		for _, name := range core.AlgorithmNames(k) {
			checked++
			if !strings.Contains(docs, name) {
				t.Errorf("algorithm %q (op %s) is registered but appears in neither README.md nor DESIGN.md", name, k)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no algorithms registered — the registry enumeration is broken")
	}
	// The synthesized schedules register at main()-time under a computed
	// name; the docs must still teach the pattern.
	if !strings.Contains(docs, "synth:<op>:<np>:<bucket>") {
		t.Error(`the synthesized-algorithm naming pattern "synth:<op>:<np>:<bucket>" is documented in neither README.md nor DESIGN.md`)
	}
}

func TestDocsMentionEveryFacadeOption(t *testing.T) {
	docs := docsUnion(t)
	optRE := regexp.MustCompile(`(?m)^func (With[A-Za-z0-9]+)\(`)
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range optRE.FindAllStringSubmatch(string(src), -1) {
			opt := m[1]
			checked++
			if !strings.Contains(docs, opt) {
				t.Errorf("façade option %s (in %s) appears in neither README.md nor DESIGN.md", opt, f)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("found only %d With* options — the source scan is broken", checked)
	}
}
