package sccsim

import (
	"testing"

	"scc/internal/core"
)

// TestStacksMatchCoreConfigs is the drift guard between the façade's
// Stack enumeration and the core package's config list: every non-RCKMPI
// stack, in Stacks() order, must map onto core.Configs() in the same
// order. A stack added to one side without the other — or a reordering —
// fails here instead of silently skewing benchmarks that zip the two
// lists together.
func TestStacksMatchCoreConfigs(t *testing.T) {
	var mapped []core.Config
	var names []string
	for _, s := range Stacks() {
		if s == StackRCKMPI {
			continue
		}
		mapped = append(mapped, s.coreConfig())
		names = append(names, s.String())
	}
	configs := core.Configs()
	if len(mapped) != len(configs) {
		t.Fatalf("Stacks() maps to %d core configs, core.Configs() has %d", len(mapped), len(configs))
	}
	for i := range mapped {
		if mapped[i] != configs[i] {
			t.Errorf("order drift at %d: stack %q maps to %q, core.Configs()[%d] is %q",
				i, names[i], mapped[i].Name(), i, configs[i].Name())
		}
	}
}

// TestStackNamesMatchConfigNames: the façade legend strings and the
// core config names must agree for the shared stacks, because bench
// output keys series by these names.
func TestStackNamesMatchConfigNames(t *testing.T) {
	for _, s := range Stacks() {
		if s == StackRCKMPI {
			continue
		}
		if got, want := s.String(), s.coreConfig().Name(); got != want {
			t.Errorf("stack %d: façade name %q != core config name %q", int(s), got, want)
		}
	}
}
