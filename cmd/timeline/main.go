// Command timeline reproduces the paper's protocol diagrams (Figs. 4
// and 5) as ASCII timelines: it runs a few rounds of the cyclic ring
// exchange on neighboring cores under the blocking odd-even scheme and
// under the non-blocking primitives, recording when each core copies
// (P/G), waits (.), and computes, and renders one row per core.
//
// The blocking rendering shows the barrier-like serialization of the
// two operations per round; the non-blocking one shows the copies
// overlapping across cores.
package main

import (
	"flag"
	"fmt"
	"os"

	"scc/internal/core"
	"scc/internal/rcce"
	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
	"scc/internal/trace"
)

func main() {
	rounds := flag.Int("rounds", 3, "ring rounds to trace")
	nElems := flag.Int("n", 64, "doubles exchanged per round")
	width := flag.Int("width", 100, "timeline width in characters")
	cores := flag.Int("cores", 4, "how many cores' rows to record (the ring still spans the whole chip)")
	chrome := flag.String("chrome", "", "also write the recorded spans as Chrome Trace Event JSON to this file (both schemes back to back, loadable in Perfetto)")
	flag.Parse()

	// Both schemes run on fresh chips starting at virtual t=0, so for the
	// combined Chrome trace the second scheme is shifted past the end of
	// the first: one timeline, blocking then non-blocking, same threads.
	var chromeSpans []trace.Span
	var chromeOffset simtime.Time
	for _, kind := range []core.TransportKind{core.TransportBlocking, core.TransportLightweight} {
		fmt.Printf("=== %s ring exchange (%d rounds of %d doubles) ===\n", kind, *rounds, *nElems)
		rec := runRing(kind, *rounds, *nElems, *cores)
		if *chrome != "" {
			var maxEnd simtime.Time
			for _, s := range rec.Spans() {
				s.Label = fmt.Sprintf("%s [%s]", s.Label, kind)
				s.Start += chromeOffset
				s.End += chromeOffset
				chromeSpans = append(chromeSpans, s)
				if s.End > maxEnd {
					maxEnd = s.End
				}
			}
			chromeOffset = maxEnd + simtime.Microseconds(5)
		}
		if err := trace.Render(os.Stdout, rec.Spans(), *width); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		shares := trace.WaitShare(rec.Spans())
		fmt.Printf("  wait share:")
		for id := 0; id < *cores; id++ {
			fmt.Printf("  core%d %4.0f%%", id, 100*shares[id])
		}
		fmt.Print("\n\n")
	}
	fmt.Println("Compare with the paper's Fig. 4 (blocking odd-even: the second operation")
	fmt.Println("cannot start until all cores finished the first) and Fig. 5 (non-blocking:")
	fmt.Println("isend and irecv posted together, copies overlap, one sync per round).")
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := trace.WriteChromeTrace(f, chromeSpans, map[string]any{
			"rounds": *rounds, "n": *nElems,
			"note": "blocking ring exchange first, then the lightweight non-blocking one, separated by a 5us gap",
		})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (open in https://ui.perfetto.dev or chrome://tracing)\n", *chrome)
	}
}

// runRing executes the ring rounds and returns the recorded spans of the
// first `record` cores.
func runRing(kind core.TransportKind, rounds, nElems, record int) *trace.Recorder {
	chip := scc.New(timing.Default())
	comm := rcce.NewComm(chip)
	rec := &trace.Recorder{}
	chip.Launch(func(c *scc.Core) {
		if c.ID < record {
			c.SetSpanRecorder(rec.Hook(c.ID))
		}
		ue := comm.UE(c.ID)
		ep := core.NewEndpoint(ue, kind)
		p := ue.NumUEs()
		right := (c.ID + 1) % p
		left := (c.ID + p - 1) % p
		src := c.AllocF64(nElems)
		dst := c.AllocF64(nElems)
		ue.Barrier()
		for r := 0; r < rounds; r++ {
			ep.Exchange(right, src, 8*nElems, left, dst, 8*nElems)
		}
	})
	if err := chip.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return rec
}
