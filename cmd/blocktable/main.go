// Command blocktable regenerates the paper's Fig. 6: the block sizes and
// worst-case imbalance ratios of the standard RCCE_comm partitioning
// versus the paper's balanced partitioning, for the vector lengths the
// figure shows (528, 552, 575 elements over 48 cores).
package main

import (
	"flag"
	"fmt"
	"strings"

	"scc/internal/core"
)

func main() {
	p := flag.Int("p", 48, "number of cores/blocks")
	extra := flag.String("n", "", "comma-separated extra vector lengths to tabulate")
	flag.Parse()

	lengths := []int{528, 552, 575}
	if *extra != "" {
		for _, s := range strings.Split(*extra, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err == nil {
				lengths = append(lengths, n)
			}
		}
	}

	fmt.Printf("Fig. 6: block sizes over %d cores\n\n", *p)
	for _, n := range lengths {
		std := core.Partition(n, *p)
		bal := core.PartitionBalanced(n, *p)
		fmt.Printf("%d elements:\n", n)
		fmt.Printf("  (a) standard (RCCE_comm):  %s   ratio %.1f:1\n",
			sizesSummary(std), core.ImbalanceRatio(std))
		fmt.Printf("  (b) optimized (balanced):  %s   ratio %.1f:1\n",
			sizesSummary(bal), core.ImbalanceRatio(bal))
	}
	fmt.Println("\npaper: 528 -> 1:1, 552 -> ~3.2:1 vs ~1.1:1, 575 -> ~5.3:1 vs ~1.1:1")
}

// sizesSummary prints the distinct block sizes with their counts, e.g.
// "1x35 + 47x11".
func sizesSummary(blocks []core.Block) string {
	counts := map[int]int{}
	order := []int{}
	for _, b := range blocks {
		if counts[b.Len] == 0 {
			order = append(order, b.Len)
		}
		counts[b.Len]++
	}
	parts := make([]string, 0, len(order))
	for _, l := range order {
		parts = append(parts, fmt.Sprintf("%dx%d", counts[l], l))
	}
	return strings.Join(parts, " + ")
}
