// Command gcmcapp regenerates the paper's Fig. 10: the runtime of the
// thermodynamic GCMC application linked against each communication
// stack, as horizontal bars, plus the profiling observation of Sec. IV-A
// (share of time spent waiting on MPB flags).
//
// The simulated run is scaled down (default 40 GCMC cycles instead of
// the paper's production run); the figure's information is in the bar
// *ratios*, which are cycle-count independent once past warm-up.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scc/internal/bench"
	"scc/internal/gcmc"
	"scc/internal/timing"
)

func main() {
	cycles := flag.Int("cycles", 40, "GCMC cycles to simulate")
	particles := flag.Int("particles", 0, "override particle count (0 = default workload)")
	seed := flag.Int64("seed", 1, "Monte Carlo seed")
	flag.Parse()

	if *cycles < 1 {
		fmt.Fprintf(os.Stderr, "gcmcapp: -cycles must be at least 1, got %d\n", *cycles)
		flag.Usage()
		os.Exit(2)
	}
	if *particles < 0 {
		fmt.Fprintf(os.Stderr, "gcmcapp: -particles must be non-negative, got %d\n", *particles)
		flag.Usage()
		os.Exit(2)
	}

	p := gcmc.DefaultParams()
	p.Cycles = *cycles
	p.Seed = *seed
	if *particles > 0 {
		p.NumParticles = *particles
	}

	fmt.Printf("Fig. 10: GCMC application performance (%d cycles, %d particles, %d k-vectors)\n\n",
		p.Cycles, p.NumParticles, p.NumKVecs)

	results := bench.RunFig10(timing.Default(), p)
	var blocking float64
	var maxWall float64
	for _, r := range results {
		if r.Stack.Name == "blocking" {
			blocking = r.WallTime.Seconds()
		}
		if w := r.WallTime.Seconds(); w > maxWall {
			maxWall = w
		}
	}
	for _, r := range results {
		w := r.WallTime.Seconds()
		barLen := int(40 * w / maxWall)
		fmt.Printf("  %-36s %s %8.1f ms  (%.2fx vs blocking, %4.1f%% flag-wait)\n",
			r.Stack.Name, strings.Repeat("#", barLen), r.WallTime.Millis(),
			w/blocking, 100*r.WaitFraction())
	}
	fin := results[len(results)-1]
	fmt.Printf("\n  physics check: final N=%d, E=%.4f, accepted %d/%d moves, %d Allreduce(552) calls\n",
		fin.FinalN, fin.FinalEnergy, fin.Accepted, fin.Attempted, fin.Allreduces)
	fmt.Println("  paper bars:  RCKMPI 55:27  blocking 25:36  iRCCE 23:09  lightweight 19:38  balanced 18:24  MPB 17:33")
	fmt.Printf("  combined optimization speedup vs blocking: %.2fx (paper: >1.40x)\n",
		blocking/results[len(results)-1].WallTime.Seconds())
}
