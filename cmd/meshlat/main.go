// Command meshlat explores the simulated SCC's raw communication fabric:
// per-hop MPB access latencies from a chosen core to every other core's
// MPB, and the local-access cost with and without the hardware erratum
// workaround. Useful for sanity-checking the timing model against the
// published SCC numbers (Sec. II and IV-D).
package main

import (
	"flag"
	"fmt"

	"scc/internal/scc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

func main() {
	from := flag.Int("from", 0, "core issuing the accesses")
	write := flag.Bool("write", false, "measure line writes instead of reads")
	flag.Parse()

	for _, fixed := range []bool{false, true} {
		model := timing.Default()
		model.HardwareBugFixed = fixed
		chip := scc.New(model)
		lat := make([]simtime.Duration, chip.NumCores())
		chip.LaunchOne(*from, func(c *scc.Core) {
			buf := make([]byte, model.CacheLineBytes)
			for target := 0; target < chip.NumCores(); target++ {
				t0 := c.Now()
				if *write {
					c.MPBWrite(chip.MPBBase(target), buf)
				} else {
					c.MPBRead(chip.MPBBase(target), buf)
				}
				lat[target] = c.Now() - t0
			}
		})
		if err := chip.Run(); err != nil {
			fmt.Println(err)
			return
		}
		kind := "read"
		if *write {
			kind = "write"
		}
		hw := "erratum workaround active"
		if fixed {
			hw = "hardware bug fixed"
		}
		fmt.Printf("one-line MPB %s latency from core %d (%s):\n", kind, *from, hw)
		fmt.Printf("%8s", "")
		for x := 0; x < model.MeshWidth; x++ {
			fmt.Printf("  tileX=%d        ", x)
		}
		fmt.Println()
		for y := 0; y < model.MeshHeight; y++ {
			fmt.Printf("tileY=%d ", y)
			for x := 0; x < model.MeshWidth; x++ {
				tile := y*model.MeshWidth + x
				c0, c1 := 2*tile, 2*tile+1
				fmt.Printf("  %5dns/%5dns", int64(lat[c0])*625/1000, int64(lat[c1])*625/1000)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
