// Command sccbench regenerates the paper's Fig. 9: the latency of each
// collective operation against the vector size, for every measured
// communication stack.
//
// Examples:
//
//	sccbench -op allreduce                      # one panel, quick sampling
//	sccbench -op all -lo 500 -hi 700 -step 1    # the paper's full x-axis
//	sccbench -op allreduce -csv fig9f.csv       # machine-readable output
//	sccbench -summary                           # Sec. V-A speedup table
//	sccbench -op allreduce -bugfixed            # hardware-bug ablation
//	sccbench -parallel 1                        # force the serial sweep path
//	sccbench -list-algos                        # registered collective algorithms
//	sccbench -op allreduce -algo recdouble      # pin one registry algorithm
//	sccbench -tune                              # tuner sweep -> decision table JSON
//	sccbench -synth                             # schedule synthesis sweep -> schedule table JSON
//	sccbench -synth -mesh 16x16x2               # synthesize for a 512-core mesh
//	sccbench -selfbench                         # host-throughput report -> BENCH_sim.json
//	sccbench -gate BENCH_sim.json               # fail on >15% perf regression vs the report
//	sccbench -mesh 100x100 -scale               # 10,000-core smoke: footprint + wall time
//	sccbench -op all -cpuprofile cpu.pprof      # profile the simulator itself
//	sccbench -op allreduce -metrics             # instrumented run -> counter table
//	sccbench -op allreduce -metrics -metricsout m.json -tracejson t.json
//	                                            # JSON snapshot + Perfetto timeline
//	sccbench -op allreduce -mesh 8x8x2          # the same panel on a 128-core mesh
//	sccbench -op allreduce -chips 4             # hierarchical sweep over 4 fabric-joined chips
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"scc/internal/bench"
	"scc/internal/core"
	"scc/internal/synth"
	"scc/internal/trace"
)

func main() {
	op := flag.String("op", "allreduce", "collective to sweep: allgather, alltoall, reducescatter, broadcast, reduce, allreduce, or all")
	lo := flag.Int("lo", 500, "smallest vector size (doubles)")
	hi := flag.Int("hi", 700, "largest vector size (doubles)")
	step := flag.Int("step", 4, "vector size step (1 reproduces the paper's spikes at full resolution)")
	reps := flag.Int("reps", 1, "timed repetitions per point (first run is always a discarded warm-up)")
	csv := flag.String("csv", "", "write the panel as CSV to this file instead of a table")
	plot := flag.Bool("plot", false, "render the panel as an ASCII chart instead of a table")
	summary := flag.Bool("summary", false, "print the Sec. V-A per-collective speedup summary and exit")
	algo := flag.String("algo", "", "pin every non-RCKMPI stack to this registry algorithm (allreduce/broadcast/reduce panels only)")
	listAlgos := flag.Bool("list-algos", false, "list the registered collective algorithms and exit")
	tune := flag.Bool("tune", false, "run the tuner sweep and write the winning decision table as JSON")
	tuneout := flag.String("tuneout", "tuned_default.json", "decision-table output path (with -tune)")
	synthRun := flag.Bool("synth", false, "run the schedule-synthesis sweep and write the winning schedules as JSON")
	synthout := flag.String("synthout", "synth_default.json", "schedule-table output path (with -synth)")
	bugfixed := flag.Bool("bugfixed", false, "simulate the chip with the local-MPB erratum fixed (Sec. IV-D ablation)")
	parallel := flag.Int("parallel", 0, "sweep worker-pool size; 0 = GOMAXPROCS, 1 = serial (output is identical at any value)")
	selfbench := flag.Bool("selfbench", false, "measure the simulator's own host throughput and write the report")
	scale := flag.Bool("scale", false, "run one Barrier+Broadcast on every core of the -mesh chip and report host wall time and memory footprint")
	benchout := flag.String("benchout", "BENCH_sim.json", "self-benchmark report path (with -selfbench)")
	gate := flag.String("gate", "", "run the self-benchmark and fail if ns_per_op or allocs_per_op regresses past -gate-tol vs this baseline report (no report is written)")
	gateTol := flag.Float64("gate-tol", 0.15, "fractional regression slack for -gate (0.15 = 15%)")
	gateRuns := flag.Int("gate-runs", 3, "best-of-N retries for -gate: wall clock is one-sidedly noisy, so any clean run passes")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	metricsOn := flag.Bool("metrics", false, "run one instrumented measurement (op at -lo doubles) and report its metrics")
	metricsout := flag.String("metricsout", "", "metrics snapshot path; .json or .csv by extension, default: text table on stdout (implies -metrics)")
	tracejson := flag.String("tracejson", "", "write the instrumented run's timeline as Chrome Trace Event JSON, loadable in Perfetto (implies -metrics)")
	stack := flag.String("stack", "balanced", "stack for the instrumented run: rckmpi, blocking, ircce, lwnb, balanced, or mpb")
	meshSpec := flag.String("mesh", "", "mesh geometry as ROWSxCOLSxCORES_PER_TILE, e.g. 8x8x2 (default: the paper's 4x6x2 chip)")
	chipsSpec := flag.String("chips", "1", "chips joined by the inter-chip fabric; >1 sweeps the hierarchical collectives (allreduce and broadcast panels only)")
	flag.Parse()

	// The committed synthesized schedules join the registry for every
	// sccbench mode (-list-algos, -algo synth:..., panels, the tuner).
	// Registration is explicit here, not at package init: library tests
	// pin registry digests to the hand-written set.
	synth.RegisterDefaults()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sccbench: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *lo < 0 {
		fail("-lo must be non-negative, got %d", *lo)
	}
	if *hi < *lo {
		fail("-hi (%d) must be at least -lo (%d)", *hi, *lo)
	}
	if *step < 1 {
		fail("-step must be at least 1, got %d", *step)
	}
	if *reps < 1 {
		fail("-reps must be at least 1, got %d", *reps)
	}
	if *parallel < 0 {
		fail("-parallel must be non-negative, got %d", *parallel)
	}
	model, err := bench.ParseMeshSpec(*meshSpec)
	if err != nil {
		fail("%v", err)
	}
	model.HardwareBugFixed = *bugfixed
	nChips, err := bench.ParseChips(*chipsSpec)
	if err != nil {
		fail("%v", err)
	}
	if nChips > 1 && (*summary || *tune || *synthRun || *selfbench || *gate != "" ||
		*metricsOn || *metricsout != "" || *tracejson != "") {
		fail("-chips > 1 applies to the hierarchical panel sweep only (not -summary/-tune/-synth/-selfbench/-gate/-metrics)")
	}

	if *listAlgos {
		for _, k := range core.OpKinds() {
			fmt.Printf("%s:\n", k)
			for _, a := range core.AlgorithmsFor(k) {
				fmt.Printf("  %-10s %s\n", a.Name(), a.Describe())
			}
		}
		os.Exit(0)
	}
	if *algo != "" {
		k, err := core.ParseOpKind(*op)
		if err != nil {
			var kinds []string
			for _, kk := range core.OpKinds() {
				kinds = append(kinds, kk.String())
			}
			fail("-algo applies to the registry-dispatched collectives (%s), not -op %q",
				strings.Join(kinds, ", "), *op)
		}
		if core.LookupAlgorithm(k, *algo) == nil {
			fail("unknown %s algorithm %q (available: %s)",
				*op, *algo, strings.Join(core.AlgorithmNames(k), ", "))
		}
	}

	stopProfiles, err := bench.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sccbench:", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	runner := bench.NewRunner(*parallel)

	if *scale {
		fp := bench.MeasureFootprint(model)
		fmt.Printf("scale run: %d cores (%s)\n", fp.Cores, bench.MeshLabel(model, 1))
		fmt.Printf("  barrier    %12d ticks virtual\n", fp.BarrierTicks)
		fmt.Printf("  broadcast  %12d ticks virtual\n", fp.BroadcastTicks)
		fmt.Printf("  wall       %12.0f ms\n", fp.WallMs)
		fmt.Printf("  footprint  %12.0f bytes/core live (%.1f MB peak heap)\n",
			fp.BytesPerCore, fp.PeakHeapMB)
		exit(0)
	}

	if *metricsOn || *metricsout != "" || *tracejson != "" {
		o := bench.Op(*op)
		if !validOp(o) {
			fail("-metrics needs a single concrete -op, got %q", *op)
		}
		st, ok := stackByName(*stack)
		if !ok {
			fail("unknown -stack %q (rckmpi, blocking, ircce, lwnb, balanced, mpb)", *stack)
		}
		if *algo != "" && !st.RCKMPI {
			st.Algo = *algo
		}
		run := bench.MeasureInstrumented(model, o, st, *lo, *reps)
		fmt.Printf("instrumented run: op=%s stack=%q n=%d reps=%d  avg latency %.1fus\n",
			o, st.Label(), *lo, *reps, run.Latency.Micros())
		if err := writeMetricsSnapshot(run, *metricsout); err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		if *tracejson != "" {
			if err := writeTraceJSON(run, o, st, *lo, *tracejson); err != nil {
				fmt.Fprintln(os.Stderr, "sccbench:", err)
				exit(1)
			}
			fmt.Printf("wrote %s (open in https://ui.perfetto.dev or chrome://tracing)\n", *tracejson)
		}
		exit(0)
	}

	if *gate != "" {
		f, err := os.Open(*gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		baseline, err := bench.ReadSelfBench(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		var violations []string
		for attempt := 1; attempt <= *gateRuns; attempt++ {
			results := bench.SelfBench(model, *parallel)
			for _, r := range results {
				fmt.Printf("  %-20s %12.1f ns/op  %8.1f allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
			}
			violations = bench.GateSelfBench(baseline, results, *gateTol)
			if len(violations) == 0 {
				fmt.Printf("perf gate passed (attempt %d/%d): no metric regressed more than %.0f%% vs %s\n",
					attempt, *gateRuns, *gateTol*100, *gate)
				exit(0)
			}
			fmt.Printf("attempt %d/%d regressed; %d violation(s)\n", attempt, *gateRuns, len(violations))
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "sccbench: perf regression:", v)
		}
		exit(1)
	}

	if *selfbench {
		results := bench.SelfBench(model, *parallel)
		f, err := os.Create(*benchout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		if err := bench.WriteSelfBench(f, results); err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		f.Close()
		for _, r := range results {
			fmt.Printf("  %-20s %12.1f ns/op  %8.1f allocs/op  %10.1f ms", r.Name, r.NsPerOp, r.AllocsPerOp, r.WallMs)
			if r.CellsPerSec > 0 {
				fmt.Printf("  %6.2f cells/s (workers=%d)", r.CellsPerSec, r.Workers)
			}
			if r.SpeedupVsSerial > 0 {
				fmt.Printf("  %.2fx vs serial", r.SpeedupVsSerial)
			}
			fmt.Println()
		}
		fmt.Printf("wrote %s\n", *benchout)
		exit(0)
	}

	if *tune {
		table, cells, err := bench.Tune(runner, model, bench.TuneSpecFor(model.NumCores()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		fmt.Println("Tuner crossover table (winner per op / np / size bucket; latencies summed over bucket edges):")
		for _, c := range cells {
			bucket := "unbounded"
			if c.MaxN != 0 {
				bucket = fmt.Sprintf("n<=%d", c.MaxN)
			}
			fmt.Printf("  %-9s np=%-2d %-9s -> %-9s", c.Op, c.NP, bucket, c.Winner)
			for _, name := range core.AlgorithmNames(c.Op) {
				if lat, ok := c.Latency[name]; ok {
					fmt.Printf("  %s=%.1fus", name, lat.Micros())
				}
			}
			fmt.Println()
		}
		data, err := json.MarshalIndent(table, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		if err := os.WriteFile(*tuneout, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		fmt.Printf("wrote %s\n", *tuneout)
		exit(0)
	}

	if *synthRun {
		table, cells, err := bench.Synthesize(runner, model, bench.SynthSpecFor(model.NumCores()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		fmt.Println("Schedule synthesis (best candidate per op / np / size bucket vs hand-written algorithms):")
		for _, c := range cells {
			bucket := "unbounded"
			if c.MaxN != 0 {
				bucket = fmt.Sprintf("n<=%d", c.MaxN)
			}
			verdict := " "
			if c.BeatsAll {
				verdict = "*" // beats every hand-written algorithm
			}
			fmt.Printf("%s %-9s np=%-3d %-9s\n", verdict, c.Op, c.NP, bucket)
			for _, cand := range c.Cands {
				fmt.Printf("    synth %-8s steps=%-2d moves=%-5d %10.1fus\n",
					cand.Gen, cand.Steps, cand.Moves, cand.Latency.Micros())
			}
			for _, name := range core.AlgorithmNames(c.Op) {
				if lat, ok := c.Hand[name]; ok {
					fmt.Printf("    hand  %-8s %29.1fus\n", name, lat.Micros())
				}
			}
		}
		data, err := table.Marshal()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		if err := os.WriteFile(*synthout, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		fmt.Printf("wrote %s (%d schedules; * = beats all hand-written algorithms on its cell)\n",
			*synthout, len(table.Entries))
		exit(0)
	}

	if *summary {
		sizes := bench.Sizes(*lo, *hi, max(*step, 25))
		rows, err := runner.Summary(model, sizes, *reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sccbench:", err)
			exit(1)
		}
		fmt.Printf("Per-collective average speedup over blocking RCCE/RCCE_comm (sizes %d..%d):\n", *lo, *hi)
		fmt.Println("(paper, Sec. V-A: between ~1.6x for Alltoall and ~2.8x for Allgather)")
		for _, row := range rows {
			fmt.Printf("  %-14s %5.2fx   (best: %s)\n", row.Op, row.Speedup, row.BestName)
		}
		exit(0)
	}

	ops := []bench.Op{bench.Op(*op)}
	if *op == "all" {
		ops = bench.AllOps()
	} else if !validOp(bench.Op(*op)) {
		fail("unknown op %q", *op)
	}

	sizes := bench.Sizes(*lo, *hi, *step)
	var panels [][]bench.Series
	if nChips > 1 {
		// Multi-chip: only the hierarchically-composed collectives sweep.
		for _, o := range ops {
			if o != bench.OpAllreduce && o != bench.OpBroadcast {
				fail("-chips > 1 supports the hierarchical collectives (allreduce, broadcast), not -op %q", o)
			}
		}
		for _, o := range ops {
			panels = append(panels, []bench.Series{bench.HierSweep(model, nChips, *algo, o, sizes, *reps)})
		}
	} else {
		panels = runner.PanelsAlgo(model, ops, *algo, sizes, *reps)
	}
	for i, o := range ops {
		panel := panels[i]
		title := fmt.Sprintf("Fig. 9 (%s): latency [us] vs vector size [doubles], %s (%d cores)",
			o, bench.MeshLabel(model, nChips), nChips*model.NumCores())
		if *bugfixed {
			title += " [hardware bug fixed]"
		}
		if *algo != "" {
			title += fmt.Sprintf(" [algo=%s]", *algo)
		}
		if *csv != "" && len(ops) == 1 {
			f, err := os.Create(*csv)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(1)
			}
			if err := bench.WriteTopologyCSV(f, model, nChips, panel); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *csv)
			continue
		}
		if *plot {
			if err := bench.RenderChart(os.Stdout, title, panel, 100, 22); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(1)
			}
		} else if err := bench.WriteTable(os.Stdout, title, panel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Println()
	}
	exit(0)
}

// stackByName maps the -stack flag's short names to bench stacks.
func stackByName(name string) (bench.Stack, bool) {
	switch name {
	case "rckmpi":
		return bench.Stack{Name: "RCKMPI", RCKMPI: true}, true
	case "blocking":
		return bench.Stack{Name: "blocking", Cfg: core.ConfigBlocking}, true
	case "ircce":
		return bench.Stack{Name: "iRCCE", Cfg: core.ConfigIRCCE}, true
	case "lwnb":
		return bench.Stack{Name: "lightweight non-blocking", Cfg: core.ConfigLightweight}, true
	case "balanced":
		return bench.Stack{Name: "lightweight non-blocking, balanced", Cfg: core.ConfigBalanced}, true
	case "mpb":
		return bench.Stack{Name: "MPB-based Allreduce", Cfg: core.ConfigMPB}, true
	default:
		return bench.Stack{}, false
	}
}

// writeMetricsSnapshot renders the snapshot as a table on stdout, or as
// JSON/CSV when a -metricsout path is given (format by extension).
func writeMetricsSnapshot(run bench.InstrumentedRun, path string) error {
	if path == "" {
		return run.Metrics.WriteTable(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".csv"):
		err = run.Metrics.WriteCSV(f)
	case strings.HasSuffix(path, ".json"):
		err = run.Metrics.WriteJSON(f)
	default:
		err = run.Metrics.WriteTable(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeTraceJSON emits the instrumented run's spans as a Chrome trace;
// the metrics snapshot rides along under otherData so one file carries
// both the timeline and the counters.
func writeTraceJSON(run bench.InstrumentedRun, op bench.Op, st bench.Stack, n int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteChromeTrace(f, run.Spans, map[string]any{
		"op":      string(op),
		"stack":   st.Label(),
		"n":       n,
		"metrics": run.Metrics,
	})
}

func validOp(op bench.Op) bool {
	for _, o := range bench.AllOps() {
		if o == op {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
