// Command faultbench regenerates the robustness evaluation ("Fig. R1"):
// completion latency of a hardened full-chip Allreduce against the number
// of injected faults, for the blocking and lightweight transports. All
// faults are drawn deterministically from -seed, so two runs with the
// same flags produce bit-identical output.
//
// Examples:
//
//	faultbench                         # default sweep, 552 doubles
//	faultbench -seed 7 -n 1000         # different fault history and size
//	faultbench -faults 0,1,2,4,8,16,32 # denser fault axis
//	faultbench -jitter 4               # de-correlated retransmit storms
//	faultbench -selfheal               # Fig. R2: self-healing decomposition
//	faultbench -mesh 8x8x2 -selfheal   # the same sweep on a 128-core mesh
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"scc/internal/bench"
	"scc/internal/core"
	"scc/internal/rcce"
	"scc/internal/simtime"
	"scc/internal/synth"
)

func main() {
	seed := flag.Int64("seed", 1, "fault-plan seed (same seed: bit-identical output)")
	n := flag.Int("n", 552, "vector size in doubles (552 is the paper's thermodynamic application)")
	faultsFlag := flag.String("faults", "0,1,2,4,8,16", "comma-separated fault counts to sweep")
	algo := flag.String("algo", "", "pin the Allreduce to this registry algorithm (default: paper heuristic)")
	timeoutUs := flag.Int64("timeout", 300, "retransmit timeout in microseconds")
	retries := flag.Int("retries", 8, "retransmit attempts before a peer is declared unreachable")
	jitter := flag.Int("jitter", 0, "deterministic retransmit jitter (0 = none; 4 stretches backed-off windows by up to 25%)")
	selfheal := flag.Bool("selfheal", false, "run the self-healing sweep (Fig. R2) instead of the fault-count sweep: one core killed mid-Allreduce, detection/agreement/recovery decomposed per algorithm")
	parallel := flag.Int("parallel", 0, "sweep worker-pool size; 0 = GOMAXPROCS, 1 = serial (output is identical at any value)")
	meshSpec := flag.String("mesh", "", "mesh geometry as ROWSxCOLSxCORES_PER_TILE, e.g. 8x8x2 (default: the paper's 4x6x2 chip)")
	chipsSpec := flag.String("chips", "1", "chips joined by the inter-chip fabric (the fault and self-healing sweeps are single-chip, so only 1 is accepted)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	// Synthesized schedules are selectable with -algo synth:<op>:<np>:<bucket>.
	synth.RegisterDefaults()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "faultbench: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *n < 1 {
		fail("-n must be at least 1, got %d", *n)
	}
	if *timeoutUs < 1 {
		fail("-timeout must be at least 1us, got %d", *timeoutUs)
	}
	if *retries < 1 {
		fail("-retries must be at least 1, got %d", *retries)
	}
	counts, err := parseCounts(*faultsFlag)
	if err != nil {
		fail("%v", err)
	}
	if *parallel < 0 {
		fail("-parallel must be non-negative, got %d", *parallel)
	}
	if *jitter < 0 {
		fail("-jitter must be non-negative, got %d", *jitter)
	}
	model, err := bench.ParseMeshSpec(*meshSpec)
	if err != nil {
		fail("%v", err)
	}
	nChips, err := bench.ParseChips(*chipsSpec)
	if err != nil {
		fail("%v", err)
	}
	if nChips != 1 {
		fail("-chips=%d: the fault and self-healing sweeps are single-chip; use sccbench for hierarchical panels", nChips)
	}
	if *algo != "" {
		if core.LookupAlgorithm(core.KindAllreduce, *algo) == nil {
			fail("unknown allreduce algorithm %q (available: %s)",
				*algo, strings.Join(core.AlgorithmNames(core.KindAllreduce), ", "))
		}
		if *algo == "mpb" {
			fmt.Fprintln(os.Stderr, "faultbench: note: \"mpb\" is not applicable under the hardened protocol; the sweep falls back to the paper heuristic")
		}
	}

	stopProfiles, err := bench.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultbench:", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "faultbench:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	runner := bench.NewRunner(*parallel)
	pol := rcce.Policy{Timeout: simtime.Microseconds(*timeoutUs), Backoff: 2, MaxRetries: *retries, Jitter: *jitter}

	if *selfheal {
		heal := core.DefaultHealPolicy()
		heal.Detect.Jitter = *jitter
		algos := core.AlgorithmNames(core.KindAllreduce)
		fracs := []float64{0.25, 0.5, 0.75}
		fmt.Printf("Fig. R2: self-healing Allreduce, %d cores (%s), %d doubles, core %d killed mid-collective\n",
			model.NumCores(), bench.MeshLabel(model, 1), *n, bench.HealVictimFor(model.NumCores()))
		fmt.Println("(no oracle: in-band detection, agreed membership, epoched re-execution;")
		fmt.Println(" plain = hardened stack fault-free, oracle = survivors known for free,")
		fmt.Println(" total = end-to-end with the kill, killat in fractions of each algo's plain run)")
		fmt.Println()
		for _, kind := range []core.TransportKind{core.TransportBlocking, core.TransportLightweight} {
			points := runner.SelfHealSweep(model, kind, heal, algos, *n, fracs)
			if err := bench.WriteHealTable(os.Stdout, "transport: "+kind.String(), points); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(1)
			}
			fmt.Println()
		}
		exit(0)
	}

	fmt.Printf("Fig. R1: hardened Allreduce, %d cores (%s), %d doubles, seed %d\n",
		model.NumCores(), bench.MeshLabel(model, 1), *n, *seed)
	fmt.Printf("(completion latency vs injected fault count; timeout %dus, %d retries)\n", *timeoutUs, *retries)
	if *algo != "" {
		fmt.Printf("(allreduce algorithm pinned: %s)\n", *algo)
	}
	fmt.Println()
	for _, kind := range []core.TransportKind{core.TransportBlocking, core.TransportLightweight} {
		points := runner.FaultSweepAlgo(model, kind, pol, *algo, *seed, *n, counts)
		if err := bench.WriteFaultTable(os.Stdout, "transport: "+kind.String(), points); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Println()
	}
	exit(0)
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("-faults entries must be non-negative integers, got %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-faults must list at least one count")
	}
	return out, nil
}
