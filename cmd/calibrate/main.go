// Command calibrate prints the simulator's reproduction of the paper's
// per-step Allreduce speedups (Sec. IV) and per-collective averages
// (Sec. V-A) next to the paper's published values. It is the tool used
// to fit the software-overhead constants in internal/timing; see
// EXPERIMENTS.md for the recorded outcome.
package main

import (
	"flag"
	"fmt"
	"os"

	"scc/internal/bench"
	"scc/internal/gcmc"
	"scc/internal/simtime"
	"scc/internal/timing"
)

func main() {
	reps := flag.Int("reps", 2, "timed repetitions per point")
	quick := flag.Bool("quick", false, "only the n=552 Allreduce ladder")
	withGCMC := flag.Bool("gcmc", false, "also print the Fig. 10 application ratio ladder")
	flag.Parse()

	model := timing.Default()

	if *withGCMC {
		p := gcmc.DefaultParams()
		p.Cycles = 25
		fmt.Println("== Fig. 10 application runtime ratios (vs blocking) ==")
		var blocking float64
		for _, r := range bench.RunFig10(model, p) {
			if r.Stack.Name == "blocking" {
				blocking = r.WallTime.Seconds()
			}
			rel := "-"
			if blocking > 0 {
				rel = fmt.Sprintf("%.3f", r.WallTime.Seconds()/blocking)
			}
			fmt.Printf("  %-36s %9.1f ms  rel=%s  flag-wait=%4.1f%%\n",
				r.Stack.Name, r.WallTime.Millis(), rel, 100*r.WaitFraction())
		}
		fmt.Println("  paper: RCKMPI 2.17, blocking 1.0, iRCCE 0.904, lightweight 0.767, balanced 0.719, MPB 0.686")
		fmt.Println()
	}

	fmt.Println("== Allreduce optimization ladder at n = 552 (Sec. IV) ==")
	stacks := bench.StacksFor(bench.OpAllreduce)
	lat := make(map[string]simtime.Duration)
	for _, st := range stacks {
		d := bench.Measure(model, bench.OpAllreduce, st, 552, *reps)
		lat[st.Name] = d
		fmt.Printf("  %-36s %10.1f us\n", st.Name, d.Micros())
	}
	step := func(from, to, paper string) {
		f, t := lat[from], lat[to]
		if t == 0 {
			return
		}
		fmt.Printf("  %-24s -> %-28s speedup %.2fx   (paper: %s)\n",
			from, to, float64(f)/float64(t), paper)
	}
	step("blocking", "iRCCE", "~1.25x")
	step("iRCCE", "lightweight non-blocking", "~1.65x")
	step("lightweight non-blocking", "lightweight non-blocking, balanced", "~1.28x")
	step("lightweight non-blocking, balanced", "MPB-based Allreduce", "~1.10x")
	step("blocking", "lightweight non-blocking, balanced", "(combined)")
	fmt.Printf("  RCKMPI vs blocking: %.2fx worse (paper: ~2-5x in most panels)\n",
		float64(lat["RCKMPI"])/float64(lat["blocking"]))

	if *quick {
		return
	}

	fmt.Println()
	fmt.Println("== Per-collective average speedups over [500..700] sample (Sec. V-A) ==")
	sizes := []int{500, 524, 552, 575, 600, 648, 700}
	for _, op := range bench.AllOps() {
		panel := bench.Panel(model, op, sizes, *reps)
		var baseline, best bench.Series
		for _, s := range panel {
			if s.Stack.Name == "blocking" {
				baseline = s
			}
		}
		bestName := ""
		bestSpeed := 0.0
		for _, s := range panel {
			if s.Stack.RCKMPI || s.Stack.Name == "blocking" || s.Stack.Cfg.MPBDirect {
				continue
			}
			if sp := bench.SpeedupVsBaseline(baseline, s); sp > bestSpeed {
				bestSpeed, bestName, best = sp, s.Stack.Name, s
			}
		}
		_ = best
		var rk bench.Series
		for _, s := range panel {
			if s.Stack.RCKMPI {
				rk = s
			}
		}
		fmt.Printf("  %-14s best=%-36s speedup %.2fx   blocking mean %9.1f us   RCKMPI/blocking %.2fx\n",
			op, bestName, bestSpeed, bench.MeanLatency(baseline),
			bench.MeanLatency(rk)/bench.MeanLatency(baseline))
	}
	_ = os.Stdout
}
