package sccsim_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	sccsim "scc"
	"scc/internal/simtime"
)

// The scheduler hands the control token between process goroutines
// directly, so every abnormal exit must unwind 48 parked goroutines by
// hand. This pins the chaos-kill path end to end: an injected core
// death panics the victim's process, the survivors deadlock, Run
// returns a typed ErrCoreDead — and nothing is left parked on a resume
// channel. Process goroutines run on pooled workers that legitimately
// stay parked after a run; draining the pool before counting separates
// that expected state from a real leak.
func TestChaosKillLeavesNoGoroutines(t *testing.T) {
	simtime.DrainWorkerPool()
	base := runtime.NumGoroutine()

	plan := sccsim.NewFaultPlan()
	plan.Add(sccsim.Fault{Kind: sccsim.FaultCoreDie, At: simtime.Time(sccsim.Microseconds(150)), Core: 7})
	sys := sccsim.New(sccsim.WithFaults(plan))
	err := sys.Run(func(r *sccsim.Rank) {
		src := r.AllocF64(256)
		dst := r.AllocF64(256)
		for k := 0; k < 4; k++ {
			if err := r.Allreduce(src, dst, 256); err != nil {
				return
			}
		}
	})
	if !errors.Is(err, sccsim.ErrCoreDead) {
		t.Fatalf("err = %v, want ErrCoreDead", err)
	}

	simtime.DrainWorkerPool()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("chaos kill leaked %d goroutines past baseline %d\n%s",
				runtime.NumGoroutine()-base, base, buf)
		}
		time.Sleep(time.Millisecond)
	}
}
