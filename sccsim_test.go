package sccsim_test

import (
	"math"
	"testing"

	sccsim "scc"
)

func TestQuickstartAllreduce(t *testing.T) {
	sys := sccsim.New()
	if sys.NumCores() != 48 {
		t.Fatalf("NumCores = %d, want 48", sys.NumCores())
	}
	n := 552
	results := make([][]float64, sys.NumCores())
	err := sys.Run(func(r *sccsim.Rank) {
		src := r.AllocF64(n)
		dst := r.AllocF64(n)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(r.ID()) + float64(i)*0.5
		}
		r.WriteF64s(src, v)
		r.Allreduce(src, dst, n)
		got := make([]float64, n)
		r.ReadF64s(dst, got)
		results[r.ID()] = got
	})
	if err != nil {
		t.Fatal(err)
	}
	sumIDs := float64(47 * 48 / 2)
	for id, got := range results {
		for i := range got {
			want := sumIDs + 48*0.5*float64(i)
			if math.Abs(got[i]-want) > 1e-9 {
				t.Fatalf("rank %d element %d = %v, want %v", id, i, got[i], want)
			}
		}
	}
	if sys.Elapsed() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestEveryStackProducesSameSums(t *testing.T) {
	// n = 552 is the paper's application vector size; the stack ordering
	// assertion below only holds inside the paper's measured range
	// (500-700 doubles) - for tiny vectors iRCCE's per-call overhead
	// genuinely loses to blocking RCCE, as Sec. IV-B explains.
	n := 552
	var wall []sccsim.Duration
	for _, st := range sccsim.Stacks() {
		sys := sccsim.New(sccsim.WithStack(st))
		var got []float64
		err := sys.Run(func(r *sccsim.Rank) {
			src := r.AllocF64(n)
			dst := r.AllocF64(n)
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(r.ID()%7) + float64(i)
			}
			r.WriteF64s(src, v)
			r.Allreduce(src, dst, n)
			if r.ID() == 0 {
				got = make([]float64, n)
				r.ReadF64s(dst, got)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		for i := range got {
			var want float64
			for id := 0; id < 48; id++ {
				want += float64(id%7) + float64(i)
			}
			if math.Abs(got[i]-want) > 1e-9 {
				t.Fatalf("%v: element %d = %v, want %v", st, i, got[i], want)
			}
		}
		wall = append(wall, sys.Elapsed())
	}
	// The paper's ordering: RCKMPI slowest, then blocking, ..., MPB
	// fastest (Stacks() returns them in that order).
	for i := 1; i < len(wall); i++ {
		if wall[i] >= wall[i-1] {
			t.Fatalf("stack %v (%v) not faster than %v (%v)",
				sccsim.Stacks()[i], wall[i], sccsim.Stacks()[i-1], wall[i-1])
		}
	}
}

func TestStackStrings(t *testing.T) {
	want := map[sccsim.Stack]string{
		sccsim.StackBlocking:            "blocking",
		sccsim.StackIRCCE:               "iRCCE",
		sccsim.StackLightweight:         "lightweight non-blocking",
		sccsim.StackLightweightBalanced: "lightweight non-blocking, balanced",
		sccsim.StackMPB:                 "MPB-based Allreduce",
		sccsim.StackRCKMPI:              "RCKMPI",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestAllCollectivesThroughPublicAPI(t *testing.T) {
	sys := sccsim.New(sccsim.WithStack(sccsim.StackLightweightBalanced))
	nPer := 10
	err := sys.Run(func(r *sccsim.Rank) {
		p := r.N()
		// Broadcast.
		b := r.AllocF64(nPer)
		if r.ID() == 0 {
			r.WriteF64s(b, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
		}
		r.Broadcast(0, b, nPer)
		got := make([]float64, nPer)
		r.ReadF64s(b, got)
		for i := range got {
			if got[i] != float64(i+1) {
				panic("broadcast wrong")
			}
		}
		// Allgather.
		src := r.AllocF64(nPer)
		all := r.AllocF64(p * nPer)
		mine := make([]float64, nPer)
		for i := range mine {
			mine[i] = float64(r.ID())
		}
		r.WriteF64s(src, mine)
		r.Allgather(src, nPer, all)
		gath := make([]float64, p*nPer)
		r.ReadF64s(all, gath)
		for q := 0; q < p; q++ {
			if gath[q*nPer] != float64(q) {
				panic("allgather wrong")
			}
		}
		// Reduce to root 5.
		rs := r.AllocF64(nPer)
		rd := r.AllocF64(nPer)
		r.WriteF64s(rs, mine)
		r.Reduce(5, rs, rd, nPer)
		if r.ID() == 5 {
			out := make([]float64, nPer)
			r.ReadF64s(rd, out)
			if out[0] != float64(47*48/2) {
				panic("reduce wrong")
			}
		}
		// Alltoall.
		as := r.AllocF64(p * 2)
		ad := r.AllocF64(p * 2)
		v := make([]float64, p*2)
		for q := 0; q < p; q++ {
			v[2*q] = float64(r.ID()*100 + q)
			v[2*q+1] = -v[2*q]
		}
		r.WriteF64s(as, v)
		r.Alltoall(as, ad, 2)
		av := make([]float64, p*2)
		r.ReadF64s(ad, av)
		for q := 0; q < p; q++ {
			if av[2*q] != float64(q*100+r.ID()) {
				panic("alltoall wrong")
			}
		}
		// ReduceScatter.
		n := 96 // 2 elements per rank
		ss := r.AllocF64(n)
		sd := r.AllocF64(n)
		w := make([]float64, n)
		for i := range w {
			w[i] = 1
		}
		r.WriteF64s(ss, w)
		r.ReduceScatter(ss, sd, n)
		blk := make([]float64, 2)
		r.ReadF64s(sd, blk)
		if blk[0] != 48 || blk[1] != 48 {
			panic("reducescatter wrong")
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCustomOperator(t *testing.T) {
	sys := sccsim.New()
	var got float64
	err := sys.Run(func(r *sccsim.Rank) {
		src := r.AllocF64(1)
		dst := r.AllocF64(1)
		r.WriteF64s(src, []float64{float64(r.ID())})
		r.AllreduceOp(src, dst, 1, func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
		if r.ID() == 0 {
			out := make([]float64, 1)
			r.ReadF64s(dst, out)
			got = out[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 47 {
		t.Fatalf("max allreduce = %v, want 47", got)
	}
}

func TestBugFixedOptionSpeedsUpMPBStack(t *testing.T) {
	run := func(opts ...sccsim.Option) sccsim.Duration {
		sys := sccsim.New(append(opts, sccsim.WithStack(sccsim.StackMPB))...)
		err := sys.Run(func(r *sccsim.Rank) {
			src := r.AllocF64(552)
			dst := r.AllocF64(552)
			r.Allreduce(src, dst, 552)
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys.Elapsed()
	}
	buggy := run()
	fixed := run(sccsim.WithHardwareBugFixed())
	if fixed >= buggy {
		t.Fatalf("bug-fixed hardware (%v) not faster than buggy (%v)", fixed, buggy)
	}
}

func TestSequentialProgramsAccumulateTime(t *testing.T) {
	sys := sccsim.New()
	if err := sys.Run(func(r *sccsim.Rank) { r.Barrier() }); err != nil {
		t.Fatal(err)
	}
	t1 := sys.Elapsed()
	if err := sys.Run(func(r *sccsim.Rank) { r.Barrier() }); err != nil {
		t.Fatal(err)
	}
	if sys.Elapsed() <= t1 {
		t.Fatal("second program did not advance virtual time")
	}
}

func TestProfileExposed(t *testing.T) {
	sys := sccsim.New(sccsim.WithStack(sccsim.StackBlocking))
	var waits int64
	err := sys.Run(func(r *sccsim.Rank) {
		src := r.AllocF64(100)
		dst := r.AllocF64(100)
		r.Allreduce(src, dst, 100)
		if r.ID() == 0 {
			waits = r.Profile().FlagWaits
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if waits == 0 {
		t.Fatal("no flag waits recorded under the blocking stack")
	}
}

func TestScatterGatherScanPublicAPI(t *testing.T) {
	for _, st := range []sccsim.Stack{sccsim.StackLightweightBalanced, sccsim.StackRCKMPI} {
		sys := sccsim.New(sccsim.WithStack(st))
		nPer := 4
		var back []float64
		var scanOK = true
		err := sys.Run(func(r *sccsim.Rank) {
			p := r.N()
			// Scatter a ramp from root 2, gather it back to root 2.
			full := r.AllocF64(p * nPer)
			mine := r.AllocF64(nPer)
			rt := r.AllocF64(p * nPer)
			if r.ID() == 2 {
				v := make([]float64, p*nPer)
				for i := range v {
					v[i] = float64(i) * 0.5
				}
				r.WriteF64s(full, v)
			}
			r.Scatter(2, full, nPer, mine)
			r.Gather(2, mine, nPer, rt)
			if r.ID() == 2 {
				back = make([]float64, p*nPer)
				r.ReadF64s(rt, back)
			}
			// Scan: prefix sums of rank ids (core stacks only).
			if st != sccsim.StackRCKMPI {
				ss := r.AllocF64(1)
				sd := r.AllocF64(1)
				r.WriteF64s(ss, []float64{float64(r.ID())})
				r.Scan(ss, sd, 1)
				out := make([]float64, 1)
				r.ReadF64s(sd, out)
				want := float64(r.ID() * (r.ID() + 1) / 2)
				if out[0] != want {
					scanOK = false
				}
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		for i := range back {
			if back[i] != float64(i)*0.5 {
				t.Fatalf("%v: scatter/gather round trip wrong at %d", st, i)
			}
		}
		if !scanOK {
			t.Fatalf("%v: scan produced wrong prefix sums", st)
		}
	}
}

func TestDVFSThroughPublicAPI(t *testing.T) {
	sys := sccsim.New()
	var fastTime, slowTime sccsim.Duration
	var fastEnergy, slowEnergy float64
	err := sys.Run(func(r *sccsim.Rank) {
		if r.ID() == 0 {
			t0 := r.Now()
			r.ComputeCycles(500000)
			fastTime = r.Now() - t0
			fastEnergy = r.EnergyEstimate()

			if mhz := r.SetFrequencyDivider(12); mhz < 133 || mhz > 134 {
				panic("divider 12 should be ~133 MHz")
			}
			t1 := r.Now()
			r.ComputeCycles(500000)
			slowTime = r.Now() - t1
			slowEnergy = r.EnergyEstimate() - fastEnergy
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if slowTime != 4*fastTime {
		t.Fatalf("divider 12 compute %v, want 4x the preset %v", slowTime, fastTime)
	}
	if slowEnergy >= fastEnergy {
		t.Fatalf("low-frequency energy %v not below preset %v", slowEnergy, fastEnergy)
	}
}
