package sccsim_test

import (
	"errors"
	"sync"
	"testing"

	sccsim "scc"
	"scc/internal/simtime"
)

// Façade-level topology tests: arbitrary meshes and multi-chip systems
// through the public API only.

// TestTopologyFacadeAllreduce: a non-default mesh runs every public
// collective path end-to-end with the exact all-ranks sum.
func TestTopologyFacadeAllreduce(t *testing.T) {
	for _, g := range []struct{ rows, cols, per int }{
		{4, 4, 1},
		{8, 8, 2},
	} {
		sys := sccsim.New(sccsim.WithTopology(g.rows, g.cols, g.per))
		cores := g.rows * g.cols * g.per
		if sys.NumCores() != cores {
			t.Fatalf("%dx%dx%d: NumCores = %d, want %d", g.rows, g.cols, g.per, sys.NumCores(), cores)
		}
		want := 0.0
		for id := 0; id < cores; id++ {
			want += float64(id + 1)
		}
		var mu sync.Mutex
		vals := make(map[int]float64)
		err := sys.Run(func(r *sccsim.Rank) {
			if r.N() != cores {
				t.Errorf("rank %d: N() = %d, want %d", r.ID(), r.N(), cores)
			}
			src := r.AllocF64(1)
			dst := r.AllocF64(1)
			r.WriteF64s(src, []float64{float64(r.ID() + 1)})
			if err := r.Allreduce(src, dst, 1); err != nil {
				t.Errorf("rank %d: %v", r.ID(), err)
				return
			}
			out := make([]float64, 1)
			r.ReadF64s(dst, out)
			mu.Lock()
			vals[r.ID()] = out[0]
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("%dx%dx%d: %v", g.rows, g.cols, g.per, err)
		}
		for id := 0; id < cores; id++ {
			if vals[id] != want {
				t.Errorf("%dx%dx%d rank %d: sum = %v, want %v", g.rows, g.cols, g.per, id, vals[id], want)
			}
		}
	}
}

// TestHierarchicalFacadeAllreduce: a 2-chip system through the façade
// computes the global sum on all 96 ranks, reports global IDs and chip
// placement, types cross-chip-unsupported collectives, and is
// bit-identical across two same-configuration runs.
func TestHierarchicalFacadeAllreduce(t *testing.T) {
	run := func() (map[int]float64, map[int]int, sccsim.Duration) {
		sys := sccsim.New(sccsim.WithChips(2), sccsim.WithIntraAlgorithm("ring"))
		if got := sys.Chips(); got != 2 {
			t.Fatalf("Chips() = %d, want 2", got)
		}
		total := sys.NumCores()
		if total != 96 {
			t.Fatalf("NumCores() = %d, want 96", total)
		}
		var mu sync.Mutex
		vals := make(map[int]float64)
		chips := make(map[int]int)
		res, err := sys.RunResult(func(r *sccsim.Rank) {
			perChip := total / 2
			if want := r.ID() / perChip; r.Chip() != want {
				t.Errorf("rank %d: Chip() = %d, want %d", r.ID(), r.Chip(), want)
			}
			src := r.AllocF64(4)
			dst := r.AllocF64(4)
			v := []float64{float64(r.ID() + 1), 1, 2, 3}
			r.WriteF64s(src, v)
			if err := r.Allreduce(src, dst, 4); err != nil {
				t.Errorf("rank %d: Allreduce: %v", r.ID(), err)
				return
			}
			// Collectives without a hierarchical form must fail typed.
			if err := r.Alltoall(src, dst, 1); !errors.Is(err, sccsim.ErrCrossChip) {
				t.Errorf("rank %d: Alltoall = %v, want ErrCrossChip", r.ID(), err)
			}
			if err := r.Barrier(); err != nil {
				t.Errorf("rank %d: Barrier: %v", r.ID(), err)
			}
			out := make([]float64, 1)
			r.ReadF64s(dst, out)
			mu.Lock()
			vals[r.ID()] = out[0]
			chips[r.ID()] = r.Chip()
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		return vals, chips, res.Elapsed()
	}

	vals1, chips, t1 := run()
	vals2, _, t2 := run()

	want := 0.0
	for id := 0; id < 96; id++ {
		want += float64(id + 1)
	}
	for id := 0; id < 96; id++ {
		if vals1[id] != want {
			t.Errorf("rank %d: sum = %v, want %v", id, vals1[id], want)
		}
		if vals1[id] != vals2[id] {
			t.Errorf("rank %d: nondeterministic across identical runs: %v vs %v", id, vals1[id], vals2[id])
		}
	}
	if t1 != t2 {
		t.Errorf("elapsed differs across identical runs: %d vs %d", t1, t2)
	}
	if chips[0] != 0 || chips[95] != 1 {
		t.Errorf("chip placement wrong: rank 0 on chip %d, rank 95 on chip %d", chips[0], chips[95])
	}
}

// TestTopologySelfHealKill: self-healing on non-default meshes — a
// mid-run core death on a 16-core and a 128-core chip must end with
// every completing survivor holding the survivor-group sum.
func TestTopologySelfHealKill(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, g := range []struct {
		rows, cols, per, victim int
	}{
		{4, 4, 1, 9},
		{8, 8, 2, 77},
	} {
		cores := g.rows * g.cols * g.per
		plan := sccsim.NewFaultPlan()
		plan.Add(sccsim.Fault{
			Kind: sccsim.FaultCoreDie,
			At:   simtime.Time(sccsim.Microseconds(400)),
			Core: g.victim,
		})
		sys := sccsim.New(
			sccsim.WithTopology(g.rows, g.cols, g.per),
			sccsim.WithFaults(plan),
			sccsim.WithSelfHealing(sccsim.DefaultHealPolicy()),
		)
		const n, reps = 1024, 4
		var mu sync.Mutex
		vals := make(map[int]float64)
		errs := make(map[int]error)
		err := sys.Run(func(r *sccsim.Rank) {
			src := r.AllocF64(n)
			dst := r.AllocF64(n)
			buf := make([]float64, n)
			for i := range buf {
				buf[i] = float64(r.ID() + 1)
			}
			r.WriteF64s(src, buf)
			var rerr error
			for k := 0; k < reps && rerr == nil; k++ {
				rerr = r.Allreduce(src, dst, n)
			}
			out := make([]float64, 1)
			r.ReadF64s(dst, out)
			mu.Lock()
			vals[r.ID()] = out[0]
			errs[r.ID()] = rerr
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("%dx%dx%d: run failed: %v", g.rows, g.cols, g.per, err)
		}
		want := 0.0
		for id := 0; id < cores; id++ {
			if id != g.victim {
				want += float64(id + 1)
			}
		}
		completed := 0
		for id := 0; id < cores; id++ {
			if id == g.victim {
				continue
			}
			if err := errs[id]; err != nil {
				if !errors.Is(err, sccsim.ErrUnreachable) &&
					!errors.Is(err, sccsim.ErrEvicted) &&
					!errors.Is(err, sccsim.ErrNoQuorum) &&
					!errors.Is(err, sccsim.ErrHealGiveUp) {
					t.Fatalf("%dx%dx%d core %d: untyped error: %v", g.rows, g.cols, g.per, id, err)
				}
				continue
			}
			completed++
			if vals[id] != want {
				t.Errorf("%dx%dx%d core %d: dst = %v, want survivor sum %v",
					g.rows, g.cols, g.per, id, vals[id], want)
			}
		}
		if completed < cores/2+1 {
			t.Fatalf("%dx%dx%d: only %d cores completed, want a majority", g.rows, g.cols, g.per, completed)
		}
	}
}
